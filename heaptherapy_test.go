package heaptherapy

import (
	"bytes"
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the whole public surface the way
// the README's quick start does: define a vulnerable program, attack
// it, generate patches, deploy, verify.
func TestPublicAPIQuickstart(t *testing.T) {
	p := MustLink(&Program{
		Name: "quickstart",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Alloc{Dst: "buf", Size: C(32)},
				Alloc{Dst: "secret", Size: C(32)},
				StoreBytes{Base: V("secret"), Data: []byte("credit-card-4242")},
				ReadInput{Dst: "n", N: C(1)},
				Output{Base: V("buf"), N: And(V("n"), C(0xFF))},
			}},
		},
	})

	sys, err := New(p, Options{})
	if err != nil {
		t.Fatal(err)
	}

	attack := []byte{200} // read 200 bytes from a 32-byte buffer
	res, err := sys.RunNative(attack)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(res.Output, []byte("credit-card")) {
		t.Fatalf("attack does not leak natively: %q", res.Output)
	}

	patches, report, err := sys.PatchCycle(attack)
	if err != nil {
		t.Fatal(err)
	}
	if patches.Len() == 0 {
		t.Fatal("no patches generated")
	}
	var sb strings.Builder
	if err := report.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "OVERFLOW") {
		t.Errorf("report missing OVERFLOW:\n%s", sb.String())
	}

	run, err := sys.RunDefended(attack, patches)
	if err != nil {
		t.Fatal(err)
	}
	// Either the guard page stopped the overread (crash), or the read
	// stayed inside the guarded buffer's own padding; in both cases the
	// secret must not appear.
	if bytes.Contains(run.Result.Output, []byte("credit-card")) {
		t.Errorf("defended run leaks: %q", run.Result.Output)
	}
	if run.Stats.PatchedAllocs == 0 {
		t.Error("patch did not match the vulnerable allocation")
	}
}

// TestPatchConfigRoundTripPublic drives the patch config I/O through
// the public names.
func TestPatchConfigRoundTripPublic(t *testing.T) {
	set := NewPatchSet(
		Patch{Fn: FnMalloc, CCID: 0x1234, Types: TypeOverflow | TypeUninitRead},
		Patch{Fn: FnMemalign, CCID: 7, Types: TypeUseAfterFree},
	)
	var buf bytes.Buffer
	if err := set.WriteConfig(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPatchConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Errorf("round trip Len = %d, want 2", back.Len())
	}
}

// TestSchemeAndEncoderConstants ensures the re-exported enums line up
// with their internal values (a regression guard on the aliases).
func TestSchemeAndEncoderConstants(t *testing.T) {
	if SchemeFCS.String() != "FCS" || SchemeIncremental.String() != "Incremental" {
		t.Error("scheme aliases broken")
	}
	if EncoderPCC.String() != "PCC" || EncoderDeltaPath.String() != "DeltaPath" {
		t.Error("encoder aliases broken")
	}
	if FnMalloc.String() != "malloc" || FnAlignedAlloc.String() != "aligned_alloc" {
		t.Error("alloc fn aliases broken")
	}
}
