// Command htp-fuzz runs the generative campaign: seeded random
// programs with injected heap vulnerabilities, each driven through
// the full differential matrix (tree-walker vs VM engine, boundary-
// tag heap vs pool allocator, native vs shadow-analyzed vs defended)
// with the heap-invariant walker attached, and every cell checked
// against the injected ground truth.
//
//	htp-fuzz -seeds 1000                    # campaign over seeds 0..999
//	htp-fuzz -start 5000 -seeds 100 -json   # JSON report on stdout
//	htp-fuzz -kinds uaf-read,double-free    # restrict vulnerability kinds
//	htp-fuzz -reduce                        # minimize any failing program
//	htp-fuzz -emit-corpus testdata/campaign -seeds 20
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"heaptherapy/internal/campaign"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/progtext"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the machine-readable campaign summary.
type report struct {
	Start    uint64             `json:"start"`
	Seeds    uint64             `json:"seeds"`
	Kinds    []string           `json:"kinds"`
	Engines  []string           `json:"engines"`
	Allocs   []string           `json:"allocators"`
	Cases    int                `json:"cases"`
	ByKind   map[string]int     `json:"by_kind"`
	Failed   int                `json:"failed"`
	Failures []campaign.Failure `json:"failures,omitempty"`
	Reduced  []reducedCase      `json:"reduced,omitempty"`
	Ms       int64              `json:"duration_ms"`
}

type reducedCase struct {
	Seed       uint64 `json:"seed"`
	Kind       string `json:"kind"`
	Class      string `json:"class"`
	Statements int    `json:"statements"`
	Source     string `json:"source"`
}

// manifestEntry describes one emitted corpus case.
type manifestEntry struct {
	Seed     uint64 `json:"seed"`
	Kind     string `json:"kind"`
	File     string `json:"file"`
	Benign   string `json:"benign"`
	Attack   string `json:"attack"`
	Secret   string `json:"secret,omitempty"`
	Sentinel string `json:"sentinel,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("htp-fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seeds      = fs.Uint64("seeds", 100, "number of seeds to campaign over")
		start      = fs.Uint64("start", 0, "first seed")
		kindsFlag  = fs.String("kinds", "", "comma-separated vulnerability kinds (default: all)")
		engines    = fs.String("engines", "", "comma-separated engines: tree,vm,compiled (default: all)")
		allocs     = fs.String("allocators", "", "comma-separated allocators: heap,pool (default: all)")
		jsonOut    = fs.Bool("json", false, "emit a JSON report on stdout")
		reduce     = fs.Bool("reduce", false, "minimize each failing program and include it in the report")
		emitCorpus = fs.String("emit-corpus", "", "write generated programs and a manifest into this directory instead of running the oracle")
		maxFail    = fs.Int("max-failures", 20, "stop after this many failing seeds (0 = never)")
		verbose    = fs.Bool("v", false, "log each seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var cfg campaign.GenConfig
	if *kindsFlag != "" {
		for _, name := range strings.Split(*kindsFlag, ",") {
			k, err := campaign.ParseKind(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			cfg.Kinds = append(cfg.Kinds, k)
		}
	}
	oracle := campaign.Oracle{}
	if *engines != "" {
		for _, name := range strings.Split(*engines, ",") {
			e, err := prog.ParseEngine(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			oracle.Engines = append(oracle.Engines, e)
		}
	}
	if *allocs != "" {
		for _, name := range strings.Split(*allocs, ",") {
			switch strings.TrimSpace(name) {
			case "heap":
				oracle.Allocators = append(oracle.Allocators, campaign.AllocHeap)
			case "pool":
				oracle.Allocators = append(oracle.Allocators, campaign.AllocPool)
			default:
				fmt.Fprintf(stderr, "unknown allocator %q (want heap or pool)\n", name)
				return 2
			}
		}
	}

	if *emitCorpus != "" {
		if err := emit(*emitCorpus, *start, *seeds, cfg); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d cases to %s\n", *seeds, *emitCorpus)
		return 0
	}

	began := time.Now()
	rep := &report{Start: *start, Seeds: *seeds, ByKind: map[string]int{}}
	for _, k := range cfg.Kinds {
		rep.Kinds = append(rep.Kinds, k.String())
	}
	failedSeeds := 0
	for seed := *start; seed < *start+*seeds; seed++ {
		g, err := campaign.Generate(seed, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "seed %d: %v\n", seed, err)
			return 1
		}
		res := oracle.Check(g)
		rep.Cases++
		rep.ByKind[g.Kind.String()]++
		if *verbose {
			status := "ok"
			if !res.OK() {
				status = fmt.Sprintf("FAIL (%d)", len(res.Failures))
			}
			fmt.Fprintf(stderr, "seed %d %v: %s\n", seed, g.Kind, status)
		}
		if res.OK() {
			continue
		}
		failedSeeds++
		rep.Failed++
		rep.Failures = append(rep.Failures, res.Failures...)
		if *reduce {
			rep.Reduced = append(rep.Reduced, minimize(g, oracle, res))
		}
		if *maxFail > 0 && failedSeeds >= *maxFail {
			fmt.Fprintf(stderr, "stopping after %d failing seeds\n", failedSeeds)
			break
		}
	}
	rep.Ms = time.Since(began).Milliseconds()
	for _, e := range oracleEngines(oracle) {
		rep.Engines = append(rep.Engines, e.String())
	}
	for _, a := range oracleAllocs(oracle) {
		rep.Allocs = append(rep.Allocs, a.String())
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else {
		summarize(stdout, rep)
	}
	if rep.Failed > 0 {
		return 1
	}
	return 0
}

func oracleEngines(o campaign.Oracle) []prog.Engine {
	if len(o.Engines) > 0 {
		return o.Engines
	}
	return prog.AllEngines()
}

func oracleAllocs(o campaign.Oracle) []campaign.AllocKind {
	if len(o.Allocators) > 0 {
		return o.Allocators
	}
	return campaign.AllAllocators()
}

// minimize shrinks a failing case while its oracle verdict keeps the
// same leading failure class, and packages the witness.
func minimize(g *campaign.Generated, oracle campaign.Oracle, res *campaign.Report) reducedCase {
	class := res.Failures[0].Class
	stillFails := func(p *prog.Program) bool {
		cand := *g
		cand.Program = p
		r := oracle.Check(&cand)
		for _, f := range r.Failures {
			if f.Class == class {
				return true
			}
		}
		return false
	}
	reduced := campaign.Reduce(g.Program, stillFails, 0)
	return reducedCase{
		Seed:       g.Seed,
		Kind:       g.Kind.String(),
		Class:      class,
		Statements: campaign.CountStatements(reduced),
		Source:     progtext.Print(reduced),
	}
}

func summarize(w io.Writer, rep *report) {
	fmt.Fprintf(w, "htp-fuzz: %d cases (seeds %d..%d) in %dms\n",
		rep.Cases, rep.Start, rep.Start+rep.Seeds-1, rep.Ms)
	kinds := make([]string, 0, len(rep.ByKind))
	for k := range rep.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-16s %d\n", k, rep.ByKind[k])
	}
	if rep.Failed == 0 {
		fmt.Fprintf(w, "all %d cases passed the differential oracle\n", rep.Cases)
		return
	}
	fmt.Fprintf(w, "%d FAILING seeds, %d assertion failures:\n", rep.Failed, len(rep.Failures))
	for _, f := range rep.Failures {
		fmt.Fprintf(w, "  seed %d (%s) [%s @ %s]: %s\n", f.Seed, f.Kind, f.Class, f.Cell, f.Detail)
	}
	for _, r := range rep.Reduced {
		fmt.Fprintf(w, "reduced witness for seed %d (%s, %d statements):\n%s\n",
			r.Seed, r.Class, r.Statements, r.Source)
	}
}

// emit writes seed-<n>.htp sources plus inputs and ground truth into
// dir as a replayable golden corpus.
func emit(dir string, start, count uint64, cfg campaign.GenConfig) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var manifest []manifestEntry
	for seed := start; seed < start+count; seed++ {
		g, err := campaign.Generate(seed, cfg)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("seed-%d.htp", seed)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(g.Source), 0o644); err != nil {
			return err
		}
		manifest = append(manifest, manifestEntry{
			Seed:     seed,
			Kind:     g.Kind.String(),
			File:     name,
			Benign:   hex.EncodeToString(g.Benign),
			Attack:   hex.EncodeToString(g.Attack),
			Secret:   hex.EncodeToString(g.Secret),
			Sentinel: hex.EncodeToString(g.Sentinel),
		})
	}
	data, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), append(data, '\n'), 0o644)
}
