// Command htp-fuzz runs the generative campaign: seeded random
// programs with injected heap vulnerabilities, each driven through
// the full differential matrix (tree-walker vs VM vs tier-up engine,
// boundary-tag heap vs pool allocator, native vs shadow-analyzed vs
// defended) with the heap-invariant walker attached, and every cell
// checked against the injected ground truth.
//
// Seeds run on the sharded parallel runtime: N workers, each owning a
// pooled oracle workbench, steal contiguous seed shards and merge
// their verdicts deterministically — the report is identical at any
// worker count (modulo timing fields).
//
//	htp-fuzz -seeds 1000                    # campaign over seeds 0..999
//	htp-fuzz -seeds 100000 -workers 8       # sharded across 8 workbenches
//	htp-fuzz -guided                        # bias scheduling toward failing kinds
//	htp-fuzz -start 5000 -seeds 100 -json   # JSON report on stdout
//	htp-fuzz -kinds uaf-read,double-free    # restrict vulnerability kinds
//	htp-fuzz -policy all                    # defended cells under every policy family
//	htp-fuzz -reduce                        # minimize any failing program
//	htp-fuzz -forensics out/                # write per-seed forensic bundles
//	htp-fuzz -emit-corpus testdata/campaign -seeds 20
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"heaptherapy/internal/campaign"
	"heaptherapy/internal/defense"
	"heaptherapy/internal/prog"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the machine-readable campaign summary: the merged run
// report plus the matrix configuration it ran under.
type report struct {
	Start     uint64   `json:"start"`
	Seeds     uint64   `json:"seeds"`
	Workers   int      `json:"workers"`
	ShardSize int      `json:"shard_size"`
	Guided    bool     `json:"guided"`
	Kinds     []string `json:"kinds"`
	Engines   []string `json:"engines"`
	Allocs    []string `json:"allocators"`
	Policies  []string `json:"policies"`

	Cases    int                    `json:"cases"`
	ByKind   map[string]int         `json:"by_kind"`
	Failed   int                    `json:"failed"`
	Failures []campaign.Failure     `json:"failures,omitempty"`
	Reduced  []campaign.ReducedCase `json:"reduced,omitempty"`
	Stopped  bool                   `json:"stopped,omitempty"`

	Ms          int64                 `json:"duration_ms"`
	SeedsPerSec float64               `json:"seeds_per_sec"`
	PerWorker   []campaign.WorkerStat `json:"per_worker"`
}

// manifestEntry describes one emitted corpus case.
type manifestEntry struct {
	Seed     uint64 `json:"seed"`
	Kind     string `json:"kind"`
	File     string `json:"file"`
	Benign   string `json:"benign"`
	Attack   string `json:"attack"`
	Secret   string `json:"secret,omitempty"`
	Sentinel string `json:"sentinel,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("htp-fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seeds      = fs.Uint64("seeds", 100, "number of seeds to campaign over")
		start      = fs.Uint64("start", 0, "first seed")
		kindsFlag  = fs.String("kinds", "", "comma-separated vulnerability kinds (default: all)")
		engines    = fs.String("engines", "", "comma-separated engines: tree,vm,compiled (default: all)")
		allocs     = fs.String("allocators", "", "comma-separated allocators: heap,pool (default: all)")
		policies   = fs.String("policy", "", `comma-separated defense policy families: ht,shadowbound,mesh, or "all" (default: ht)`)
		workers    = fs.Int("workers", 0, "parallel oracle workbenches (0 = GOMAXPROCS)")
		shardSize  = fs.Int("shard-size", 0, "seeds per work-stealing shard (0 = auto)")
		guided     = fs.Bool("guided", false, "bias shard scheduling toward vulnerability kinds that produced failures")
		jsonOut    = fs.Bool("json", false, "emit a JSON report on stdout")
		reduce     = fs.Bool("reduce", false, "minimize each failing program and include it in the report")
		forensics  = fs.String("forensics", "", "write a replayable bundle-<seed>.json per failing seed into this directory")
		emitCorpus = fs.String("emit-corpus", "", "write generated programs and a manifest into this directory instead of running the oracle")
		maxFail    = fs.Int("max-failures", 20, "stop after this many failing seeds (0 = never)")
		verbose    = fs.Bool("v", false, "log each seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var cfg campaign.GenConfig
	if *kindsFlag != "" {
		for _, name := range strings.Split(*kindsFlag, ",") {
			k, err := campaign.ParseKind(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			cfg.Kinds = append(cfg.Kinds, k)
		}
	}
	oracle := campaign.Oracle{}
	if *engines != "" {
		for _, name := range strings.Split(*engines, ",") {
			e, err := prog.ParseEngine(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			oracle.Engines = append(oracle.Engines, e)
		}
	}
	if *allocs != "" {
		for _, name := range strings.Split(*allocs, ",") {
			switch strings.TrimSpace(name) {
			case "heap":
				oracle.Allocators = append(oracle.Allocators, campaign.AllocHeap)
			case "pool":
				oracle.Allocators = append(oracle.Allocators, campaign.AllocPool)
			default:
				fmt.Fprintf(stderr, "unknown allocator %q (want heap or pool)\n", name)
				return 2
			}
		}
	}

	if *policies != "" {
		if strings.EqualFold(strings.TrimSpace(*policies), "all") {
			oracle.Policies = defense.AllFamilies()
		} else {
			for _, name := range strings.Split(*policies, ",") {
				f, err := defense.ParseFamily(name)
				if err != nil {
					fmt.Fprintln(stderr, err)
					return 2
				}
				oracle.Policies = append(oracle.Policies, f)
			}
		}
	}

	if *emitCorpus != "" {
		if err := emit(*emitCorpus, *start, *seeds, cfg); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d cases to %s\n", *seeds, *emitCorpus)
		return 0
	}

	rc := campaign.RunConfig{
		Start:           *start,
		Seeds:           *seeds,
		Gen:             cfg,
		Oracle:          oracle,
		Workers:         *workers,
		ShardSize:       *shardSize,
		MaxFailingSeeds: *maxFail,
		Guided:          *guided,
		Reduce:          *reduce,
	}
	if *verbose {
		// Workers log concurrently; the mutex keeps lines whole (their
		// interleaving across shards is inherently scheduling-order).
		var mu sync.Mutex
		rc.OnSeed = func(seed uint64, kind campaign.VulnKind, rep *campaign.Report) {
			status := "ok"
			if !rep.OK() {
				status = fmt.Sprintf("FAIL (%d)", len(rep.Failures))
			}
			mu.Lock()
			fmt.Fprintf(stderr, "seed %d %v: %s\n", seed, kind, status)
			mu.Unlock()
		}
	}

	res, err := campaign.Run(rc)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if res.Stopped {
		fmt.Fprintf(stderr, "stopping after %d failing seeds\n", res.FailingSeeds)
	}
	if *forensics != "" && len(res.Bundles) > 0 {
		if err := writeBundles(*forensics, res.Bundles); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %d forensic bundles to %s\n", len(res.Bundles), *forensics)
	}

	rep := &report{
		Start:       res.Start,
		Seeds:       res.Seeds,
		Workers:     res.Workers,
		ShardSize:   res.ShardSize,
		Guided:      res.Guided,
		Cases:       res.Cases,
		ByKind:      res.ByKind,
		Failed:      res.FailingSeeds,
		Failures:    res.Failures,
		Reduced:     res.Reduced,
		Stopped:     res.Stopped,
		Ms:          res.ElapsedMs,
		SeedsPerSec: res.SeedsPerSec,
		PerWorker:   res.WorkerStats,
	}
	for _, k := range cfg.Kinds {
		rep.Kinds = append(rep.Kinds, k.String())
	}
	for _, e := range oracleEngines(oracle) {
		rep.Engines = append(rep.Engines, e.String())
	}
	for _, a := range oracleAllocs(oracle) {
		rep.Allocs = append(rep.Allocs, a.String())
	}
	for _, p := range oraclePolicies(oracle) {
		rep.Policies = append(rep.Policies, p.String())
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else {
		summarize(stdout, rep)
	}
	if rep.Failed > 0 {
		return 1
	}
	return 0
}

func oracleEngines(o campaign.Oracle) []prog.Engine {
	if len(o.Engines) > 0 {
		return o.Engines
	}
	return prog.AllEngines()
}

func oracleAllocs(o campaign.Oracle) []campaign.AllocKind {
	if len(o.Allocators) > 0 {
		return o.Allocators
	}
	return campaign.AllAllocators()
}

func oraclePolicies(o campaign.Oracle) []defense.Family {
	if len(o.Policies) > 0 {
		return o.Policies
	}
	return []defense.Family{defense.FamilyHT}
}

func summarize(w io.Writer, rep *report) {
	fmt.Fprintf(w, "htp-fuzz: %d cases (seeds %d..%d) in %dms — %.1f seeds/sec, %d workers (shard %d",
		rep.Cases, rep.Start, rep.Start+rep.Seeds-1, rep.Ms, rep.SeedsPerSec, rep.Workers, rep.ShardSize)
	if rep.Guided {
		fmt.Fprint(w, ", guided")
	}
	fmt.Fprintln(w, ")")
	if len(rep.Policies) > 1 || (len(rep.Policies) == 1 && rep.Policies[0] != "ht") {
		fmt.Fprintf(w, "  policies: %s\n", strings.Join(rep.Policies, ","))
	}
	kinds := make([]string, 0, len(rep.ByKind))
	for k := range rep.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-16s %d\n", k, rep.ByKind[k])
	}
	for _, st := range rep.PerWorker {
		fmt.Fprintf(w, "  worker %d: %d seeds over %d shards, busy %dms\n",
			st.Worker, st.Seeds, st.Shards, st.BusyMs)
	}
	if rep.Failed == 0 {
		fmt.Fprintf(w, "all %d cases passed the differential oracle\n", rep.Cases)
		return
	}
	fmt.Fprintf(w, "%d FAILING seeds, %d assertion failures:\n", rep.Failed, len(rep.Failures))
	for _, f := range rep.Failures {
		fmt.Fprintf(w, "  seed %d (%s) [%s @ %s]: %s\n", f.Seed, f.Kind, f.Class, f.Cell, f.Detail)
	}
	for _, r := range rep.Reduced {
		fmt.Fprintf(w, "reduced witness for seed %d (%s, %d statements):\n%s\n",
			r.Seed, r.Class, r.Statements, r.Source)
	}
}

// writeBundles dumps each failing seed's replayable forensic bundle as
// bundle-<seed>.json.
func writeBundles(dir string, bundles []*campaign.Bundle) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, b := range bundles {
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		name := fmt.Sprintf("bundle-%d.json", b.Seed)
		if err := os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// emit writes seed-<n>.htp sources plus inputs and ground truth into
// dir as a replayable golden corpus.
func emit(dir string, start, count uint64, cfg campaign.GenConfig) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var manifest []manifestEntry
	for seed := start; seed < start+count; seed++ {
		g, err := campaign.Generate(seed, cfg)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("seed-%d.htp", seed)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(g.Source), 0o644); err != nil {
			return err
		}
		manifest = append(manifest, manifestEntry{
			Seed:     seed,
			Kind:     g.Kind.String(),
			File:     name,
			Benign:   hex.EncodeToString(g.Benign),
			Attack:   hex.EncodeToString(g.Attack),
			Secret:   hex.EncodeToString(g.Secret),
			Sentinel: hex.EncodeToString(g.Sentinel),
		})
	}
	data, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), append(data, '\n'), 0o644)
}
