package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunCleanCampaign(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-seeds", "10")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "all 10 cases passed") {
		t.Fatalf("stdout: %s", stdout)
	}
}

func TestRunJSONReport(t *testing.T) {
	code, stdout, _ := runCLI(t, "-seeds", "5", "-start", "100", "-json")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var rep report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout)
	}
	if rep.Cases != 5 || rep.Start != 100 || rep.Failed != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if len(rep.Engines) == 0 || len(rep.Allocs) == 0 {
		t.Fatalf("matrix axes missing from report: %+v", rep)
	}
	if rep.SeedsPerSec <= 0 {
		t.Errorf("seeds_per_sec missing: %+v", rep)
	}
	if rep.Workers < 1 || len(rep.PerWorker) != rep.Workers {
		t.Errorf("per-worker breakdown missing: workers=%d per_worker=%v", rep.Workers, rep.PerWorker)
	}
}

// TestRunParallelParity pins the CLI-level determinism contract: the
// same campaign at different worker counts (and with guidance on)
// produces identical JSON reports once timing and per-worker fields
// are zeroed.
func TestRunParallelParity(t *testing.T) {
	parse := func(args ...string) report {
		code, stdout, stderr := runCLI(t, args...)
		if code != 0 {
			t.Fatalf("args %v: exit %d, stderr: %s", args, code, stderr)
		}
		var rep report
		if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, stdout)
		}
		// Timing and scheduling fields are the documented exceptions.
		rep.Workers = 0
		rep.ShardSize = 0
		rep.Guided = false
		rep.Ms = 0
		rep.SeedsPerSec = 0
		rep.PerWorker = nil
		return rep
	}
	seq := parse("-seeds", "8", "-json", "-workers", "1", "-shard-size", "2")
	par := parse("-seeds", "8", "-json", "-workers", "4", "-shard-size", "2")
	gui := parse("-seeds", "8", "-json", "-workers", "4", "-shard-size", "2", "-guided")
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel report diverges:\n seq: %+v\n par: %+v", seq, par)
	}
	if !reflect.DeepEqual(seq, gui) {
		t.Errorf("guided report diverges:\n seq: %+v\n gui: %+v", seq, gui)
	}
}

func TestRunSummaryThroughput(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-seeds", "6", "-workers", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "seeds/sec") {
		t.Errorf("summary lacks throughput: %s", stdout)
	}
	if !strings.Contains(stdout, "worker 0:") || !strings.Contains(stdout, "worker 1:") {
		t.Errorf("summary lacks per-worker breakdown: %s", stdout)
	}
}

func TestRunKindAndMatrixSelection(t *testing.T) {
	code, _, stderr := runCLI(t,
		"-seeds", "3", "-kinds", "uaf-read,double-free",
		"-engines", "vm", "-allocators", "heap")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
}

func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-kinds", "heap-spray"},
		{"-engines", "jit"},
		{"-allocators", "slab"},
		{"-no-such-flag"},
	} {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestEmitCorpus(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t, "-emit-corpus", dir, "-seeds", "4", "-start", "7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "wrote 4 cases") {
		t.Fatalf("stdout: %s", stdout)
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var entries []manifestEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || entries[0].Seed != 7 {
		t.Fatalf("manifest: %+v", entries)
	}
	for _, e := range entries {
		if _, err := os.Stat(filepath.Join(dir, e.File)); err != nil {
			t.Errorf("missing corpus file: %v", err)
		}
	}
}
