// Command htp-run executes a corpus program natively or under the
// Online Defense Generator with a patch configuration file: the
// deployment half of code-less patching.
//
// Usage:
//
//	htp-run -case heartbleed                         # native, built-in attack
//	htp-run -case heartbleed -patches patches.conf   # defended
//	htp-run -case heartbleed -benign 0               # first benign input
//	htp-run -case heartbleed -patches patches.conf -telemetry table
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"heaptherapy/internal/core"
	"heaptherapy/internal/defense"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/progtext"
	"heaptherapy/internal/telemetry"
	"heaptherapy/internal/vuln"
)

// caseOracle wraps an optional attack-success oracle; programs loaded
// from files have none.
type caseOracle struct {
	oracle func(*prog.Result) bool
}

// Success applies the oracle; without one, nothing counts as success.
func (c caseOracle) Success(r *prog.Result) bool {
	return c.oracle != nil && c.oracle(r)
}

// HasOracle reports whether an oracle exists.
func (c caseOracle) HasOracle() bool { return c.oracle != nil }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "htp-run:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("htp-run", flag.ContinueOnError)
	caseName := fs.String("case", "", "corpus program to run (see htp-patchgen -list)")
	programFile := fs.String("program", "", "run a progtext program file instead of a corpus case")
	patchFile := fs.String("patches", "", "patch configuration file; empty runs natively")
	inputFile := fs.String("input-file", "", "read program input from this file instead of the built-in exploit")
	benign := fs.Int("benign", -1, "use the N-th built-in benign input instead of the attack")
	threads := fs.Int("threads", 1, "run N copies concurrently over one shared heap")
	encoderName := fs.String("encoder", "PCC", "calling-context encoder; must match the one htp-patchgen used")
	engineName := fs.String("engine", "tree", "execution engine: tree (reference interpreter), vm (bytecode), or compiled (tier-up closures)")
	tierUp := fs.Uint64("tierup", 0, "compiled-engine promotion threshold in calls (0 = default)")
	policyName := fs.String("policy", "ht", "defense policy family for defended runs: ht, shadowbound, or mesh")
	telemetryFmt := fs.String("telemetry", "", `append a telemetry report after the run: "table" or "json"`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *threads < 1 {
		return fmt.Errorf("-threads must be >= 1")
	}
	var tcol *telemetry.Collector
	switch *telemetryFmt {
	case "":
	case "table", "json":
		tcol = telemetry.New(telemetry.Config{})
	default:
		return fmt.Errorf(`-telemetry must be "table" or "json", not %q`, *telemetryFmt)
	}

	var (
		program *prog.Program
		input   []byte
		oracle  func(*prog.Result) bool
	)
	switch {
	case *caseName != "" && *programFile != "":
		return fmt.Errorf("-case and -program are mutually exclusive")
	case *caseName != "":
		c := vuln.ByName(*caseName)
		if c == nil {
			return fmt.Errorf("unknown case %q", *caseName)
		}
		program, input, oracle = c.Program, c.Attack, c.Success
		if *benign >= 0 {
			if *benign >= len(c.Benign) {
				return fmt.Errorf("case has %d benign inputs", len(c.Benign))
			}
			input = c.Benign[*benign]
		}
	case *programFile != "":
		src, err := os.ReadFile(*programFile)
		if err != nil {
			return fmt.Errorf("reading program: %w", err)
		}
		p, err := progtext.Parse(string(src))
		if err != nil {
			return err
		}
		program = p
	default:
		return fmt.Errorf("-case or -program is required")
	}
	if *inputFile != "" {
		data, err := os.ReadFile(*inputFile)
		if err != nil {
			return fmt.Errorf("reading input: %w", err)
		}
		input = data
	}

	encKind, err := encoding.ParseEncoder(*encoderName)
	if err != nil {
		return err
	}
	engine, err := prog.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	family, err := defense.ParseFamily(*policyName)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(program, core.Options{Encoder: encKind, Engine: engine, TierUp: *tierUp, Family: family, Telemetry: tcol})
	if err != nil {
		return err
	}
	c := caseOracle{oracle: oracle}

	if *patchFile == "" && family == defense.FamilyHT {
		res, err := sys.RunNative(input)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "mode: native\n")
		printResult(stdout, res.Crashed(), res.Fault, res.Output, c, res)
		return printTelemetry(stdout, tcol, *telemetryFmt)
	}

	// A non-HT policy defends every allocation and needs no patch
	// configuration; -patches remains optional for those families.
	patches := patch.NewSet()
	if *patchFile != "" {
		f, err := os.Open(*patchFile)
		if err != nil {
			return fmt.Errorf("opening patches: %w", err)
		}
		var perr error
		patches, perr = patch.ReadConfig(f)
		if cerr := f.Close(); cerr != nil && perr == nil {
			perr = cerr
		}
		if perr != nil {
			return fmt.Errorf("loading patches: %w", perr)
		}
	}

	if *threads > 1 {
		inputs := make([][]byte, *threads)
		for i := range inputs {
			inputs[i] = input
		}
		results, stats, err := sys.RunDefendedThreads(inputs, patches)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "mode: defended [%s], %d threads sharing one heap (%d patches loaded)\n",
			family, *threads, patches.Len())
		succeeded := 0
		for i, res := range results {
			if c.Success(res) {
				succeeded++
			}
			fmt.Fprintf(stdout, "thread %d: crashed=%v output=%q\n", i, res.Crashed(), clip(res.Output, 48))
		}
		fmt.Fprintf(stdout, "attack oracle: %d/%d threads' attacks succeeded\n", succeeded, *threads)
		fmt.Fprintf(stdout, "defense: %d allocs intercepted, %d recognized vulnerable, %d deferred frees\n",
			stats.Allocs, stats.PatchedAllocs, stats.DeferredFrees)
		return printTelemetry(stdout, tcol, *telemetryFmt)
	}

	run, err := sys.RunDefended(input, patches)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "mode: defended [%s] (%d patches loaded)\n", family, patches.Len())
	printResult(stdout, run.Result.Crashed(), run.Result.Fault, run.Result.Output, c, run.Result)
	st := run.Stats
	fmt.Fprintf(stdout, "defense: %d allocs intercepted, %d recognized vulnerable, %d guard pages, %d zero fills, %d deferred frees\n",
		st.Allocs, st.PatchedAllocs, st.GuardPages, st.ZeroFills, st.DeferredFrees)
	return printTelemetry(stdout, tcol, *telemetryFmt)
}

// printTelemetry appends the collector's snapshot in the requested
// format; a nil collector (no -telemetry flag) prints nothing.
func printTelemetry(w io.Writer, tcol *telemetry.Collector, format string) error {
	if tcol == nil {
		return nil
	}
	snap := tcol.Snapshot()
	if format == "json" {
		return snap.WriteJSON(w)
	}
	_, err := io.WriteString(w, snap.Render())
	return err
}

func printResult(w io.Writer, crashed bool, fault error, output []byte, c caseOracle, res *prog.Result) {
	if crashed {
		fmt.Fprintf(w, "execution: terminated by fault: %v\n", fault)
	} else {
		fmt.Fprintf(w, "execution: completed\n")
	}
	fmt.Fprintf(w, "output (%d bytes): %q\n", len(output), clip(output, 96))
	switch {
	case !c.HasOracle():
		fmt.Fprintln(w, "attack oracle: none (program loaded from file)")
	case c.Success(res):
		fmt.Fprintln(w, "attack oracle: ATTACK SUCCEEDED")
	default:
		fmt.Fprintln(w, "attack oracle: attack did not succeed")
	}
}

func clip(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	return b[:n]
}
