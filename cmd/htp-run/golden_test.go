package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestGolden pins the CLI's end-to-end output byte for byte against
// committed goldens. Everything the tool prints is derived from the
// deterministic virtual-machine run (virtual cycles, not wall clock),
// so the full output — including the telemetry report — is stable
// across hosts. Regenerate with: go test ./cmd/htp-run -run Golden -update
func TestGolden(t *testing.T) {
	hbPatches := writePatches(t, "heartbleed")
	opPatches := writePatches(t, "optipng")
	cases := []struct {
		name string
		args []string
	}{
		{"native-heartbleed", []string{"-case", "heartbleed"}},
		{"native-heartbleed-vm", []string{"-case", "heartbleed", "-engine", "vm"}},
		{"native-wavpack-benign", []string{"-case", "wavpack", "-benign", "0"}},
		{"defended-heartbleed", []string{"-case", "heartbleed", "-patches", hbPatches}},
		{"defended-heartbleed-telemetry-table", []string{"-case", "heartbleed", "-patches", hbPatches, "-telemetry", "table"}},
		{"defended-heartbleed-telemetry-json", []string{"-case", "heartbleed", "-patches", hbPatches, "-telemetry", "json"}},
		{"defended-optipng-threads", []string{"-case", "optipng", "-patches", opPatches, "-threads", "3", "-telemetry", "table"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(c.args, &out); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, filepath.Join("testdata", c.name+".golden"), out.Bytes())
		})
	}
}

// compareGolden diffs got against the golden file, rewriting it under
// -update.
func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (rerun with -update after verifying):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
