package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"heaptherapy/internal/core"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/vuln"
)

// runOut runs the CLI with an in-memory stdout and returns what it
// printed.
func runOut(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

// writePatches generates a real patch file for a case.
func writePatches(t *testing.T, caseName string) string {
	t.Helper()
	c := vuln.ByName(caseName)
	if c == nil {
		t.Fatalf("unknown case %s", caseName)
	}
	sys, err := core.NewSystem(c.Program, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.GeneratePatches(c.Attack)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.conf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Patches.WriteConfig(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNativeAttack(t *testing.T) {
	out, err := runOut(t, "-case", "wavpack")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mode: native") || !strings.Contains(out, "ATTACK SUCCEEDED") {
		t.Errorf("native attack output:\n%s", out)
	}
}

func TestDefendedAttack(t *testing.T) {
	patches := writePatches(t, "wavpack")
	out, err := runOut(t, "-case", "wavpack", "-patches", patches)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mode: defended", "attack did not succeed", "deferred frees"} {
		if !strings.Contains(out, want) {
			t.Errorf("defended output missing %q:\n%s", want, out)
		}
	}
}

func TestBenignInput(t *testing.T) {
	out, err := runOut(t, "-case", "wavpack", "-benign", "0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "attack did not succeed") {
		t.Errorf("benign run output:\n%s", out)
	}
}

func TestInputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "in.bin")
	if err := os.WriteFile(path, []byte{0x00, 1, 2, 3}, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := runOut(t, "-case", "bc", "-input-file", path); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Error("missing -case accepted")
	}
	if err := run([]string{"-case", "nope"}, io.Discard); err == nil {
		t.Error("unknown case accepted")
	}
	if err := run([]string{"-case", "bc", "-benign", "99"}, io.Discard); err == nil {
		t.Error("out-of-range benign index accepted")
	}
	if err := run([]string{"-case", "bc", "-patches", "/nonexistent"}, io.Discard); err == nil {
		t.Error("missing patch file accepted")
	}
	if err := run([]string{"-case", "bc", "-telemetry", "xml"}, io.Discard); err == nil {
		t.Error("bogus telemetry format accepted")
	}
}

func TestDefendedThreads(t *testing.T) {
	patches := writePatches(t, "optipng")
	out, err := runOut(t, "-case", "optipng", "-patches", patches, "-threads", "3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"3 threads sharing one heap", "0/3 threads' attacks succeeded"} {
		if !strings.Contains(out, want) {
			t.Errorf("threaded output missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"-case", "optipng", "-threads", "0"}, io.Discard); err == nil {
		t.Error("-threads 0 accepted")
	}
}

func TestEncoderFlagRoundTrip(t *testing.T) {
	// Patches generated under PCCE deploy under PCCE.
	c := vuln.ByName("ghostxps")
	sys, err := core.NewSystem(c.Program, core.Options{Encoder: encoding.EncoderPCCE})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.GeneratePatches(c.Attack)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.conf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Patches.WriteConfig(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := runOut(t, "-case", "ghostxps", "-patches", path, "-encoder", "PCCE")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "attack did not succeed") || !strings.Contains(out, "1 recognized vulnerable") {
		t.Errorf("PCCE round trip failed:\n%s", out)
	}
	if err := run([]string{"-case", "ghostxps", "-encoder", "Bogus"}, io.Discard); err == nil {
		t.Error("bogus encoder accepted")
	}
}

// TestTelemetryFlag checks both report formats over a defended run: the
// table must show the patch-hit counter and event trace, the JSON must
// parse-roundtrip through the snapshot schema (covered by the golden
// test; here we pin the load-bearing lines).
func TestTelemetryFlag(t *testing.T) {
	patches := writePatches(t, "heartbleed")
	out, err := runOut(t, "-case", "heartbleed", "-patches", patches, "-telemetry", "table")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"telemetry:", "patch_hits", "patch-hit", "histogram alloc_size"} {
		if !strings.Contains(out, want) {
			t.Errorf("telemetry table missing %q:\n%s", want, out)
		}
	}
	out, err = runOut(t, "-case", "heartbleed", "-patches", patches, "-telemetry", "json")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"counters"`, `"patch_hits": 1`, `"events"`} {
		if !strings.Contains(out, want) {
			t.Errorf("telemetry JSON missing %q:\n%s", want, out)
		}
	}
}
