// Command htp-serve is the live-traffic front-end: it serves a
// vulnerable service stand-in over HTTP behind the defended fleet
// runtime and patches itself — without restarting — from the crashes
// attackers hand it. A wild heap fault is trapped, re-analyzed off the
// request path, and the resulting code-less patches are sealed into a
// new table that is swapped in atomically under load.
//
// Usage:
//
//	htp-serve -service nginx -addr 127.0.0.1:8470    # live server (SIGTERM drains)
//	htp-serve -service nginx -demo                   # scripted rollout demonstration
//	htp-serve -service mysql -engine vm -workers 8 -telemetry
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"syscall"
	"time"

	"heaptherapy/internal/defense"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/serve"
	"heaptherapy/internal/telemetry"
	"heaptherapy/internal/workload"
)

// demoBenign is how many benign requests each demo phase sends.
const demoBenign = 4

// announce prints operational (non-deterministic) notices: the bound
// listen address. Stdout is reserved for deterministic output so the
// golden tests can pin it. Tests override this to learn the address.
var announce = func(msg string) { fmt.Fprintln(os.Stderr, msg) }

// testStop lets tests trigger the graceful-drain path without a
// signal; the nil default never fires.
var testStop chan struct{}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "htp-serve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("htp-serve", flag.ContinueOnError)
	serviceName := fs.String("service", "nginx", "vulnerable service stand-in: nginx or mysql")
	engineName := fs.String("engine", "tree", "execution engine: tree, vm, or compiled")
	tierUp := fs.Uint64("tierup", 0, "compiled-engine promotion threshold in calls (0 = default)")
	policyName := fs.String("policy", "ht", "defense policy family for every tenant: ht, shadowbound, or mesh")
	workers := fs.Int("workers", 4, "worker goroutines, one defended tenant context each")
	maxInFlight := fs.Int("max-in-flight", 0, "admission bound before 429s (0 = 4*workers)")
	quota := fs.Int("tenant-quota", 0, "one tenant's share of max-in-flight (0 = no isolation)")
	patchFile := fs.String("patches", "", "initial patch configuration file (empty starts unpatched)")
	withTelemetry := fs.Bool("telemetry", false, "attach a telemetry collector (patch hit counts, /metrics snapshot)")
	addr := fs.String("addr", "127.0.0.1:8470", "listen address (live mode)")
	demo := fs.Bool("demo", false, "run the scripted live-rollout demonstration and exit; no listener")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var svc *workload.Service
	switch *serviceName {
	case "nginx":
		svc = workload.Nginx()
	case "mysql":
		svc = workload.MySQL()
	default:
		return fmt.Errorf("unknown service %q (nginx or mysql)", *serviceName)
	}
	program, err := svc.VulnerableProgram()
	if err != nil {
		return err
	}
	engine, err := prog.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	family, err := defense.ParseFamily(*policyName)
	if err != nil {
		return err
	}
	patches := patch.NewSet()
	if *patchFile != "" {
		f, err := os.Open(*patchFile)
		if err != nil {
			return fmt.Errorf("opening patches: %w", err)
		}
		patches, err = patch.ReadConfig(f)
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("loading patches: %w", err)
		}
	}
	var tcol *telemetry.Collector
	if *withTelemetry {
		tcol = telemetry.New(telemetry.Config{})
	}

	// Resolve the serve defaults here so the banner states the real
	// admission geometry.
	if *workers <= 0 {
		*workers = 4
	}
	if *maxInFlight <= 0 {
		*maxInFlight = 4 * *workers
	}
	if *quota <= 0 || *quota > *maxInFlight {
		*quota = *maxInFlight
	}

	s, err := serve.New(serve.Config{
		Program:      program,
		BenignSample: svc.BenignRequest(),
		Workers:      *workers,
		MaxInFlight:  *maxInFlight,
		TenantQuota:  *quota,
		Patches:      patches,
		Engine:       engine,
		TierUp:       *tierUp,
		Family:       family,
		Telemetry:    tcol,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "htp-serve: %s | engine %s | policy %s | workers %d | max in-flight %d | tenant quota %d | initial patches %d\n",
		program.Name, engine, family, *workers, *maxInFlight, *quota, patches.Len())

	if *demo {
		return runDemo(s, svc, family, stdout)
	}
	return serveLive(s, *addr, stdout)
}

// serveLive binds the listener and serves until SIGINT/SIGTERM, then
// drains: the listener stops accepting, in-flight requests finish on
// whichever table they started with, and the summary line reports what
// the fleet absorbed.
func serveLive(s *serve.Server, addr string, stdout io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	announce("listening on http://" + ln.Addr().String())

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	select {
	case err := <-errc:
		return err
	case <-stop:
	case <-testStop:
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		return err
	}
	s.Drain()
	m := s.Metrics()
	fmt.Fprintf(stdout, "drained: %d requests served (%d contained, %d wild), %d rollouts, %d table swaps\n",
		m.Requests, m.Front.Contained, m.Front.Wild, m.Front.Rollouts, m.TableSwaps)
	return nil
}

// runDemo drives the whole incident through the real HTTP handler,
// sequentially, printing one deterministic line per act: benign
// traffic, the attack escaping an unpatched fleet, the live rollout,
// the contained replay, traffic continuing, the /metrics document, and
// the drain. This is the golden-testable face of the E2E story.
func runDemo(s *serve.Server, svc *workload.Service, family defense.Family, stdout io.Writer) error {
	h := s.Handler()
	do := func(method, path string, body []byte) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, bytes.NewReader(body))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}
	benignWave := func() (ok int, epoch string) {
		for i := 0; i < demoBenign; i++ {
			rr := do("POST", "/request", svc.BenignRequest())
			if rr.Code == http.StatusOK && uint64(rr.Body.Len()) == svc.BufSize {
				ok++
			}
			epoch = rr.Result().Header.Get("X-HTP-Epoch")
		}
		return ok, epoch
	}

	fmt.Fprintln(stdout, "demo: zero-downtime code-less patch rollout under live traffic")

	ok, epoch := benignWave()
	fmt.Fprintf(stdout, "[1] benign x%d: %d ok, %d-byte replies, epoch %s\n", demoBenign, ok, svc.BufSize, epoch)

	rr := do("POST", "/request?tenant=attacker", svc.CrashRequest())
	outcome := rr.Result().Header.Get("X-HTP-Outcome")
	fmt.Fprintf(stdout, "[2] attack: %s (HTTP %d) — heap fault trapped, forensic bundle captured\n", outcome, rr.Code)

	if outcome == serve.OutcomeWild {
		deadline := time.Now().Add(30 * time.Second)
		for {
			st := s.Stats()
			if st.Rollouts > 0 {
				break
			}
			if st.RolloutFails > 0 {
				return fmt.Errorf("demo: live rollout failed")
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("demo: rollout never completed")
			}
			time.Sleep(2 * time.Millisecond)
		}
		m := s.Metrics()
		fmt.Fprintf(stdout, "[3] rollout: %d patch(es) live after table swap %d — no restart\n", m.Patches, m.TableSwaps)
	} else {
		fmt.Fprintln(stdout, "[3] rollout: not needed, the initial patch table already contains the attack")
	}

	rr = do("POST", "/request?tenant=attacker", svc.CrashRequest())
	replay := rr.Result().Header.Get("X-HTP-Outcome")
	note := "guard page absorbed the overflow"
	if replay != serve.OutcomeContained {
		note = "the " + family.String() + " policy does not contain this kind"
	} else if family != defense.FamilyHT {
		note = "the " + family.String() + " policy contained it without patches"
	}
	fmt.Fprintf(stdout, "[4] attack replay: %s (HTTP %d) — %s\n", replay, rr.Code, note)

	ok, epoch = benignWave()
	fmt.Fprintf(stdout, "[5] benign x%d: %d ok, epoch %s — traffic never stopped\n", demoBenign, ok, epoch)

	fmt.Fprintln(stdout, "[6] GET /metrics:")
	rr = do("GET", "/metrics", nil)
	stdout.Write(rr.Body.Bytes())

	s.Drain()
	rr = do("POST", "/request", svc.BenignRequest())
	fmt.Fprintf(stdout, "[7] drain: complete — post-drain request rejected with HTTP %d\n", rr.Code)
	return nil
}
