package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestGolden pins the demo mode's output byte for byte: the startup
// banner, the scripted incident (benign traffic, wild attack, live
// rollout, contained replay), the /metrics JSON document, and the
// drain exit line. Everything printed is derived from deterministic
// executions over virtual memory, so it is stable across hosts — the
// telemetry-attached case runs one worker so per-shard attribution is
// fixed too; fleet-level sums are order-independent, which is why the
// two-worker case holds without telemetry.
// Regenerate with: go test ./cmd/htp-serve -run Golden -update
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"demo-nginx-tree", []string{"-demo", "-service", "nginx", "-workers", "1", "-telemetry"}},
		{"demo-nginx-vm", []string{"-demo", "-service", "nginx", "-workers", "2", "-engine", "vm"}},
		{"demo-mysql-compiled", []string{"-demo", "-service", "mysql", "-workers", "1", "-engine", "compiled"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(c.args, &out); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, filepath.Join("testdata", c.name+".golden"), out.Bytes())
		})
	}
}

// compareGolden diffs got against the golden file, rewriting it under
// -update.
func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (rerun with -update after verifying):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
