package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"heaptherapy/internal/analysis"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/workload"
)

// runOut runs the CLI with an in-memory stdout and returns what it
// printed.
func runOut(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

// writePatches runs the offline analyzer over the service's crashing
// request — the same analysis a live rollout performs — and writes the
// patch configuration file an operator would deploy with.
func writePatches(t *testing.T, svc *workload.Service) string {
	t.Helper()
	p, err := svc.VulnerableProgram()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}
	a := &analysis.Analyzer{Coder: coder}
	rep, err := a.Analyze(p, svc.CrashRequest())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Patches.Len() == 0 {
		t.Fatal("analysis produced no patches")
	}
	path := filepath.Join(t.TempDir(), "p.conf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Patches.WriteConfig(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDemoPrepatched: with an initial patch configuration the attack
// never escapes, so the demo reports containment and skips the
// rollout.
func TestDemoPrepatched(t *testing.T) {
	patches := writePatches(t, workload.Nginx())
	out, err := runOut(t, "-demo", "-workers", "1", "-patches", patches)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"initial patches 1",
		"[2] attack: contained (HTTP 502)",
		"[3] rollout: not needed",
		"[7] drain: complete",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("demo output missing %q:\n%s", want, out)
		}
	}
}

// TestLiveServe exercises the real listener: bind :0, serve traffic
// over TCP, then drain through the signal path's test seam and check
// the shutdown summary.
func TestLiveServe(t *testing.T) {
	addrCh := make(chan string, 1)
	oldAnnounce := announce
	announce = func(msg string) { addrCh <- strings.TrimPrefix(msg, "listening on ") }
	testStop = make(chan struct{})
	defer func() { announce = oldAnnounce; testStop = nil }()

	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-workers", "2", "-addr", "127.0.0.1:0"}, &buf)
	}()

	var url string
	select {
	case url = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("server never announced its address")
	}
	svc := workload.Nginx()
	resp, err := http.Post(url+"/request", "application/octet-stream", bytes.NewReader(svc.BenignRequest()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || uint64(len(body)) != svc.BufSize {
		t.Fatalf("live request: %d (%d bytes)", resp.StatusCode, len(body))
	}
	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}

	close(testStop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain never completed")
	}
	if !strings.Contains(buf.String(), "drained: 1 requests served") {
		t.Errorf("shutdown summary missing:\n%s", buf.String())
	}
}

func TestErrors(t *testing.T) {
	if _, err := runOut(t, "-service", "apache"); err == nil {
		t.Error("unknown service accepted")
	}
	if _, err := runOut(t, "-engine", "jit"); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := runOut(t, "-patches", filepath.Join(t.TempDir(), "missing.conf")); err == nil {
		t.Error("missing patch file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.conf")
	if err := os.WriteFile(bad, []byte("patch malloc NOT-A-NUMBER overflow\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runOut(t, "-patches", bad); err == nil {
		t.Error("malformed patch file accepted")
	}
	if _, err := runOut(t, "-addr", "999.999.999.999:0"); err == nil {
		t.Error("unbindable address accepted")
	}
}
