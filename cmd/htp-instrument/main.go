// Command htp-instrument is the Program Instrumentation Tool CLI: it
// plans calling-context-encoding instrumentation for a call graph and
// prints per-scheme instrumentation sets, site counts, and the
// size-increase model (the data behind Table III).
//
// Usage:
//
//	htp-instrument -figure2                   # the paper's example graph
//	htp-instrument -bench 400.perlbench       # a SPEC-like benchmark graph
//	htp-instrument -bench 401.bzip2 -dot out.dot -scheme Slim
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"heaptherapy/internal/callgraph"
	"heaptherapy/internal/ccprof"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/instrument"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/progtext"
	"heaptherapy/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "htp-instrument:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("htp-instrument", flag.ContinueOnError)
	fig2 := fs.Bool("figure2", false, "use the paper's Figure 2 example graph")
	bench := fs.String("bench", "", "use this SPEC benchmark's synthetic call graph")
	programFile := fs.String("program", "", "plan instrumentation for a progtext program file")
	dotOut := fs.String("dot", "", "write a Graphviz rendering of the chosen scheme's plan here")
	schemeName := fs.String("scheme", "Incremental", "scheme for -dot and site listing: FCS, TCS, Slim, Incremental")
	listSites := fs.Bool("sites", false, "list the instrumented call sites of -scheme")
	profile := fs.Bool("profile", false, "run the program (bench or -program) and print its hottest allocation contexts")
	rewriteOut := fs.String("rewrite", "", "write the instrumented program (per -scheme, PCC arithmetic) as progtext to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		g       *callgraph.Graph
		targets []callgraph.NodeID
		name    string
		size    func(callgraph.NodeID) uint64
		program *prog.Program
	)
	switch {
	case *fig2:
		g, targets = callgraph.Figure2()
		name = "figure-2 example"
	case *bench != "":
		b, err := workload.BenchmarkByName(*bench)
		if err != nil {
			return err
		}
		var gerr error
		g, targets, gerr = b.Graph()
		if gerr != nil {
			return gerr
		}
		name = b.Name
		size = b.FuncSize()
		if *profile {
			program, _, err = b.Program(workload.ProgramConfig{Scale: 100_000})
			if err != nil {
				return err
			}
		}
	case *programFile != "":
		src, err := os.ReadFile(*programFile)
		if err != nil {
			return fmt.Errorf("reading program: %w", err)
		}
		p, err := progtext.Parse(string(src))
		if err != nil {
			return err
		}
		g, targets = p.Graph(), p.Targets()
		name = p.Name
		program = p
	default:
		return fmt.Errorf("one of -figure2, -bench, or -program is required")
	}

	fmt.Fprintf(stdout, "graph: %s (%d functions, %d call sites, %d targets)\n\n",
		name, g.NumNodes(), g.NumEdges(), len(targets))
	fmt.Fprintf(stdout, "%-12s  %-6s  %-6s  %-8s\n", "scheme", "sites", "funcs", "size(+%)")
	for _, scheme := range encoding.AllSchemes() {
		plan, err := encoding.NewPlan(scheme, g, targets)
		if err != nil {
			return err
		}
		rep := encoding.Cost(g, plan, encoding.EncoderPCC, size)
		fmt.Fprintf(stdout, "%-12s  %-6d  %-6d  %.2f\n",
			scheme, rep.InstrumentedSites, rep.InstrumentedFuncs, rep.SizeIncreasePercent())
	}

	scheme, err := encoding.ParseScheme(*schemeName)
	if err != nil {
		return err
	}
	plan, err := encoding.NewPlan(scheme, g, targets)
	if err != nil {
		return err
	}
	if *listSites {
		fmt.Fprintf(stdout, "\n%s instrumentation set:\n", scheme)
		for _, label := range plan.SiteLabels(g) {
			fmt.Fprintln(stdout, " ", label)
		}
	}
	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(g.DOT(targets, plan.SiteSet())), 0o644); err != nil {
			return fmt.Errorf("writing DOT: %w", err)
		}
		fmt.Fprintf(stdout, "\nwrote %s plan rendering to %s\n", scheme, *dotOut)
	}
	if *profile {
		if program == nil {
			return fmt.Errorf("-profile needs a runnable program (-bench or -program)")
		}
		samples, err := profileProgram(program)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nhottest allocation contexts of %s:\n%s", program.Name, ccprof.Render(samples, 15))
	}
	if *rewriteOut != "" {
		if program == nil {
			return fmt.Errorf("-rewrite needs a program (-program, or -bench with -profile)")
		}
		progPlan, err := encoding.NewPlan(scheme, program.Graph(), program.Targets())
		if err != nil {
			return err
		}
		coder, err := encoding.NewCoder(encoding.EncoderPCC, program.Graph(), progPlan)
		if err != nil {
			return err
		}
		rewritten, err := instrument.Rewrite(program, coder)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*rewriteOut, []byte(progtext.Print(rewritten)), 0o644); err != nil {
			return fmt.Errorf("writing instrumented program: %w", err)
		}
		fmt.Fprintf(stdout, "\nwrote %s-instrumented program to %s\n", scheme, *rewriteOut)
	}
	return nil
}

// profileProgram runs one profiling execution with PCCE instrumentation
// so contexts can be symbolized.
func profileProgram(p *prog.Program) ([]ccprof.Sample, error) {
	plan, err := encoding.NewPlan(encoding.SchemeTCS, p.Graph(), p.Targets())
	if err != nil {
		return nil, err
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCCE, p.Graph(), plan)
	if err != nil {
		return nil, err
	}
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return nil, err
	}
	backend, err := prog.NewNativeBackend(space)
	if err != nil {
		return nil, err
	}
	return ccprof.Profile(p, backend, coder, nil, prog.EngineTree)
}
