package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestGolden pins the CLI's end-to-end output byte for byte: the
// per-scheme cost table, instrumentation-site listings, and the
// profiling report. Graph construction, encoding plans, and the
// profiling run are all deterministic, so the output is stable across
// hosts. Regenerate with: go test ./cmd/htp-instrument -run Golden -update
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"figure2-incremental-sites", []string{"-figure2", "-sites", "-scheme", "Incremental"}},
		{"bench-perlbench", []string{"-bench", "400.perlbench"}},
		{"bench-bzip2-slim-sites", []string{"-bench", "401.bzip2", "-scheme", "Slim", "-sites"}},
		{"profile-libquantum", []string{"-bench", "462.libquantum", "-profile"}},
		{"program-leaky-server", []string{"-program", "../../testdata/leaky-server.htp", "-scheme", "Slim", "-sites"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(c.args, &out); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, filepath.Join("testdata", c.name+".golden"), out.Bytes())
		})
	}
}

// compareGolden diffs got against the golden file, rewriting it under
// -update.
func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (rerun with -update after verifying):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
