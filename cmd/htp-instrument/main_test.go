package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runOut runs the CLI with an in-memory stdout and returns what it
// printed.
func runOut(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestFigure2(t *testing.T) {
	out, err := runOut(t, "-figure2", "-sites", "-scheme", "Incremental")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"10 functions", "FCS", "Incremental", "A->B#0", "C->F#0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The Incremental set for Figure 2 must not include F's sites.
	if strings.Contains(out, "F->T1#0") {
		t.Error("Incremental listing includes pruned site F->T1#0")
	}
}

func TestBenchGraph(t *testing.T) {
	out, err := runOut(t, "-bench", "401.bzip2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "401.bzip2") {
		t.Errorf("output missing benchmark name:\n%s", out)
	}
}

func TestDOTOutput(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "g.dot")
	if _, err := runOut(t, "-figure2", "-dot", dot, "-scheme", "Slim"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph", "color=red"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("DOT file missing %q", want)
		}
	}
}

func TestErrors(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Error("no graph selection accepted")
	}
	if err := run([]string{"-bench", "999.none"}, io.Discard); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run([]string{"-figure2", "-scheme", "Bogus"}, io.Discard); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestProfileBenchmark(t *testing.T) {
	out, err := runOut(t, "-bench", "462.libquantum", "-profile")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hottest allocation contexts", "main -> spec_iter", "calloc"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
}

func TestProfileNeedsProgram(t *testing.T) {
	if err := run([]string{"-figure2", "-profile"}, io.Discard); err == nil {
		t.Error("-profile with -figure2 accepted (no runnable program)")
	}
}

func TestRewriteFlag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "instr.htp")
	if _, err := runOut(t, "-program", "../../testdata/leaky-server.htp", "-scheme", "Slim", "-rewrite", out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"setglobal __cc_v", "ctx global(__cc_v)", "let __cc_t = global(__cc_v)"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("instrumented output missing %q", want)
		}
	}
	if err := run([]string{"-figure2", "-rewrite", out}, io.Discard); err == nil {
		t.Error("-rewrite without a runnable program accepted")
	}
}
