// Command htp-patchgen is the Offline Patch Generator CLI: it replays
// an attack input against a corpus program under the shadow-memory
// analyzer and writes the generated patches to a configuration file
// that htp-run can deploy.
//
// Usage:
//
//	htp-patchgen -list
//	htp-patchgen -case heartbleed [-o patches.conf] [-attack-file f | built-in attack]
//	htp-patchgen -program server.htp -attack-file exploit.bin -o patches.conf
//	htp-patchgen -case heartbleed -dump   # export the corpus program as progtext
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"heaptherapy/internal/core"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/progtext"
	"heaptherapy/internal/vuln"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "htp-patchgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("htp-patchgen", flag.ContinueOnError)
	list := fs.Bool("list", false, "list corpus programs and exit")
	caseName := fs.String("case", "", "corpus program to analyze (see -list)")
	programFile := fs.String("program", "", "analyze a progtext program file instead of a corpus case")
	dump := fs.Bool("dump", false, "print the selected case's program as progtext and exit")
	attackFile := fs.String("attack-file", "", "read the attack input from this file instead of the built-in exploit")
	out := fs.String("o", "", "write the patch configuration here (default: stdout)")
	encoderName := fs.String("encoder", "PCC", "calling-context encoder: PCC, PCCE (decodable contexts in reports), DeltaPath; htp-run must use the same")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, c := range vuln.AllCases() {
			fmt.Fprintf(stdout, "%-28s %-38s %s\n", c.Name, c.Ref, c.Types)
		}
		return nil
	}

	var (
		program *prog.Program
		attack  []byte
	)
	switch {
	case *caseName != "" && *programFile != "":
		return fmt.Errorf("-case and -program are mutually exclusive")
	case *caseName != "":
		c := vuln.ByName(*caseName)
		if c == nil {
			return fmt.Errorf("unknown case %q (use -list)", *caseName)
		}
		program, attack = c.Program, c.Attack
		if *dump {
			fmt.Fprint(stdout, progtext.Print(program))
			return nil
		}
	case *programFile != "":
		src, err := os.ReadFile(*programFile)
		if err != nil {
			return fmt.Errorf("reading program: %w", err)
		}
		p, err := progtext.Parse(string(src))
		if err != nil {
			return err
		}
		program = p
		if *attackFile == "" {
			return fmt.Errorf("-program requires -attack-file (there is no built-in exploit)")
		}
	default:
		return fmt.Errorf("-case or -program is required (use -list to see corpus programs)")
	}

	if *attackFile != "" {
		data, err := os.ReadFile(*attackFile)
		if err != nil {
			return fmt.Errorf("reading attack input: %w", err)
		}
		attack = data
	}

	encKind, err := encoding.ParseEncoder(*encoderName)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(program, core.Options{Encoder: encKind})
	if err != nil {
		return err
	}
	rep, err := sys.GeneratePatches(attack)
	if err != nil {
		return err
	}
	if err := rep.Write(stderr); err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *out, err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(stderr, "htp-patchgen: closing output:", cerr)
			}
		}()
		w = f
	}
	if err := rep.Patches.WriteConfig(w); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(stderr, "wrote %d patch(es) to %s\n", rep.Patches.Len(), *out)
	}
	return nil
}
