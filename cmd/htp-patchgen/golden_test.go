package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestGolden pins the generator's end-to-end output — both streams —
// byte for byte. The analysis replay is deterministic (virtual cycles,
// fixed CCID arithmetic), so the report, the patch config, and the
// corpus listing are all stable. Regenerate with:
// go test ./cmd/htp-patchgen -run Golden -update
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"list", []string{"-list"}},
		{"heartbleed", []string{"-case", "heartbleed"}},
		{"heartbleed-pcce", []string{"-case", "heartbleed", "-encoder", "PCCE"}},
		{"wavpack", []string{"-case", "wavpack"}},
		{"dump-bc", []string{"-case", "bc", "-dump"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if err := run(c.args, &stdout, &stderr); err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			out.WriteString("-- stdout --\n")
			out.Write(stdout.Bytes())
			out.WriteString("-- stderr --\n")
			out.Write(stderr.Bytes())
			compareGolden(t, filepath.Join("testdata", c.name+".golden"), out.Bytes())
		})
	}
}

// compareGolden diffs got against the golden file, rewriting it under
// -update.
func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (rerun with -update after verifying):\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
