package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"heaptherapy/internal/patch"
)

// capture redirects stdout around fn and returns what was printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	if cerr := w.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"heartbleed", "CVE-2014-0160", "samate-ur-realloc-d2"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestGenerateToFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "patches.conf")
	if err := run([]string{"-case", "heartbleed", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	set, err := patch.ReadConfig(f)
	if err != nil {
		t.Fatalf("generated config does not parse: %v", err)
	}
	if set.Len() == 0 {
		t.Error("generated config is empty")
	}
	for _, p := range set.Patches() {
		if !p.Types.Has(patch.TypeUninitRead) {
			t.Errorf("heartbleed patch %v lacks UNINIT_READ", p)
		}
	}
}

func TestGenerateWithAttackFile(t *testing.T) {
	dir := t.TempDir()
	attack := filepath.Join(dir, "attack.bin")
	// A benign heartbeat: no patches expected.
	if err := os.WriteFile(attack, []byte{0x18, 5, 0, 'h', 'e', 'l', 'l', 'o'}, 0o600); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "patches.conf")
	if err := run([]string{"-case", "heartbleed", "-attack-file", attack, "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	set, err := patch.ReadConfig(f)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 0 {
		t.Errorf("benign input generated %d patches (zero false positives required)", set.Len())
	}
}

func TestErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no -case accepted")
	}
	if err := run([]string{"-case", "nonesuch"}); err == nil {
		t.Error("unknown case accepted")
	}
	if err := run([]string{"-case", "bc", "-attack-file", "/nonexistent/x"}); err == nil {
		t.Error("missing attack file accepted")
	}
}

func TestProgramFileWorkflow(t *testing.T) {
	out := filepath.Join(t.TempDir(), "p.conf")
	if err := run([]string{
		"-program", "../../testdata/leaky-server.htp",
		"-attack-file", "../../testdata/leaky-server.attack",
		"-o", out,
	}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	set, err := patch.ReadConfig(f)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 {
		t.Fatal("no patches for file-based program")
	}
	var union patch.TypeMask
	for _, p := range set.Patches() {
		union |= p.Types
	}
	if !union.Has(patch.TypeUninitRead) || !union.Has(patch.TypeOverflow) {
		t.Errorf("types = %v, want UNINIT_READ|OVERFLOW", union)
	}
}

func TestDumpCase(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-case", "bc", "-dump"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"program bc", "func main", "func parse_numbers", "alloc arr = malloc(128)"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestProgramRequiresAttackFile(t *testing.T) {
	if err := run([]string{"-program", "../../testdata/leaky-server.htp"}); err == nil {
		t.Error("-program without -attack-file accepted")
	}
	if err := run([]string{"-program", "x", "-case", "bc"}); err == nil {
		t.Error("-program with -case accepted")
	}
}
