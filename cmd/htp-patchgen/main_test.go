package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"heaptherapy/internal/patch"
)

// runOut runs the CLI with in-memory streams and returns stdout.
func runOut(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf, io.Discard)
	return buf.String(), err
}

func TestList(t *testing.T) {
	out, err := runOut(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"heartbleed", "CVE-2014-0160", "samate-ur-realloc-d2"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestGenerateToFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "patches.conf")
	if err := run([]string{"-case", "heartbleed", "-o", out}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	set, err := patch.ReadConfig(f)
	if err != nil {
		t.Fatalf("generated config does not parse: %v", err)
	}
	if set.Len() == 0 {
		t.Error("generated config is empty")
	}
	for _, p := range set.Patches() {
		if !p.Types.Has(patch.TypeUninitRead) {
			t.Errorf("heartbleed patch %v lacks UNINIT_READ", p)
		}
	}
}

func TestGenerateWithAttackFile(t *testing.T) {
	dir := t.TempDir()
	attack := filepath.Join(dir, "attack.bin")
	// A benign heartbeat: no patches expected.
	if err := os.WriteFile(attack, []byte{0x18, 5, 0, 'h', 'e', 'l', 'l', 'o'}, 0o600); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "patches.conf")
	if err := run([]string{"-case", "heartbleed", "-attack-file", attack, "-o", out}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	set, err := patch.ReadConfig(f)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 0 {
		t.Errorf("benign input generated %d patches (zero false positives required)", set.Len())
	}
}

func TestErrors(t *testing.T) {
	if err := run(nil, io.Discard, io.Discard); err == nil {
		t.Error("no -case accepted")
	}
	if err := run([]string{"-case", "nonesuch"}, io.Discard, io.Discard); err == nil {
		t.Error("unknown case accepted")
	}
	if err := run([]string{"-case", "bc", "-attack-file", "/nonexistent/x"}, io.Discard, io.Discard); err == nil {
		t.Error("missing attack file accepted")
	}
}

func TestProgramFileWorkflow(t *testing.T) {
	out := filepath.Join(t.TempDir(), "p.conf")
	if err := run([]string{
		"-program", "../../testdata/leaky-server.htp",
		"-attack-file", "../../testdata/leaky-server.attack",
		"-o", out,
	}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	set, err := patch.ReadConfig(f)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 {
		t.Fatal("no patches for file-based program")
	}
	var union patch.TypeMask
	for _, p := range set.Patches() {
		union |= p.Types
	}
	if !union.Has(patch.TypeUninitRead) || !union.Has(patch.TypeOverflow) {
		t.Errorf("types = %v, want UNINIT_READ|OVERFLOW", union)
	}
}

func TestDumpCase(t *testing.T) {
	out, err := runOut(t, "-case", "bc", "-dump")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"program bc", "func main", "func parse_numbers", "alloc arr = malloc(128)"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestProgramRequiresAttackFile(t *testing.T) {
	if err := run([]string{"-program", "../../testdata/leaky-server.htp"}, io.Discard, io.Discard); err == nil {
		t.Error("-program without -attack-file accepted")
	}
	if err := run([]string{"-program", "x", "-case", "bc"}, io.Discard, io.Discard); err == nil {
		t.Error("-program with -case accepted")
	}
}

// TestReportGoesToStderr pins the stream split: the analysis report is
// commentary on stderr, the machine-readable patch config is stdout.
func TestReportGoesToStderr(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-case", "heartbleed"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if _, err := patch.ReadConfig(bytes.NewReader(stdout.Bytes())); err != nil {
		t.Errorf("stdout is not a clean patch config: %v\n%s", err, stdout.String())
	}
	if !strings.Contains(stderr.String(), "warning") {
		t.Errorf("analysis report not on stderr:\n%s", stderr.String())
	}
}
