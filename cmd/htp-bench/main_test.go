package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan struct{})
	var out []byte
	go func() {
		defer close(done)
		out, _ = io.ReadAll(r)
	}()
	runErr := fn()
	if cerr := w.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	<-done
	os.Stdout = old
	return string(out), runErr
}

func TestTable3Experiment(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-exp", "table3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table III", "400.perlbench", "Incremental"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q", want)
		}
	}
}

func TestGuardExperiment(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-exp", "guard", "-quick"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "targeted saving") {
		t.Errorf("guard output:\n%s", out)
	}
}

func TestQuickServices(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-exp", "services", "-quick"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"nginx", "mysql", "AVERAGE"} {
		if !strings.Contains(out, want) {
			t.Errorf("services output missing %q", want)
		}
	}
}

func TestMultipleExperiments(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-exp", "table3,ablation", "-quick"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table III") || !strings.Contains(out, "queue quota") {
		t.Errorf("comma-separated selection output:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "table99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
