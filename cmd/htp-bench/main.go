// Command htp-bench regenerates every table and figure of the
// HeapTherapy+ evaluation (Section VIII of the paper) and prints them
// in the paper's shape, alongside the paper's reported values.
//
// Usage:
//
//	htp-bench [-exp all|encoding|table2|table3|table4|fig8|fig9|services|ablation|guard|fleet|serve|campaign|telemetry|policy|vm|tierup] [-quick] [-scale N] [-engine tree|vm|compiled] [-tierup N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"heaptherapy/internal/experiments"
	"heaptherapy/internal/prog"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "htp-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("htp-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to run: all, encoding, table2, table3, table4, fig8, fig9, services, concurrent, ablation, stackoffset, scaling, guard, fleet, serve, campaign, telemetry, policy, vm, tierup")
	quick := fs.Bool("quick", false, "trim sweeps for a fast run")
	scale := fs.Uint64("scale", 0, "divisor for Table IV allocation counts (default 10000)")
	jsonOut := fs.Bool("json", false, "emit per-experiment wall time and allocations as JSON instead of rendered tables")
	engineName := fs.String("engine", "vm", "execution engine for measured runs: tree, vm, or compiled (results are bit-identical; vm and compiled are faster)")
	tierUp := fs.Uint64("tierup", 0, "compiled-engine promotion threshold in calls (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := prog.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	cfg := experiments.Config{Quick: *quick, Scale: *scale, Engine: engine, TierUp: *tierUp}

	type runner struct {
		name string
		fn   func() (fmt.Stringer, error)
	}
	// vmResult / tierUpResult capture the engine comparisons so -json
	// can record the speedups and zero-alloc pins alongside the wall
	// time.
	var vmResult *experiments.VMComparisonResult
	var tierUpResult *experiments.TierUpComparisonResult
	var campaignResult *experiments.CampaignThroughputResult
	var serveResult *experiments.ServeThroughputResult
	var policyResult *experiments.PolicyMatrixResult
	wrap := func(f func(experiments.Config) (interface{ Render() string }, error)) func() (fmt.Stringer, error) {
		return func() (fmt.Stringer, error) {
			r, err := f(cfg)
			if err != nil {
				return nil, err
			}
			return stringer{r.Render()}, nil
		}
	}

	all := []runner{
		{"table2", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			return experiments.TableII(c)
		})},
		{"encoding", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			return experiments.EncodingOverhead(c)
		})},
		{"table3", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			return experiments.TableIII(c)
		})},
		{"table4", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			return experiments.TableIV(c)
		})},
		{"fig8", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			return experiments.Figure8(c)
		})},
		{"fig9", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			return experiments.Figure9(c)
		})},
		{"services", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			return experiments.Services(c)
		})},
		{"concurrent", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			return experiments.ConcurrentServices(c)
		})},
		{"ablation", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			return experiments.Ablation(c)
		})},
		{"stackoffset", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			return experiments.StackOffsetBaseline(c)
		})},
		{"scaling", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			return experiments.PatchScaling(c)
		})},
		{"fleet", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			return experiments.Fleet(c)
		})},
		{"serve", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			r, err := experiments.ServeThroughput(c)
			if err == nil {
				serveResult = r
			}
			return r, err
		})},
		{"telemetry", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			return experiments.TelemetryOverhead(c)
		})},
		{"campaign", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			r, err := experiments.CampaignThroughput(c)
			if err == nil {
				campaignResult = r
			}
			return r, err
		})},
		{"policy", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			r, err := experiments.PolicyMatrix(c)
			if err == nil {
				policyResult = r
			}
			return r, err
		})},
		{"vm", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			r, err := experiments.VMComparison(c)
			if err == nil {
				vmResult = r
			}
			return r, err
		})},
		{"tierup", wrap(func(c experiments.Config) (interface{ Render() string }, error) {
			r, err := experiments.TierUpComparison(c)
			if err == nil {
				tierUpResult = r
			}
			return r, err
		})},
		{"guard", func() (fmt.Stringer, error) {
			global, targeted, err := experiments.GlobalGuardBaseline(cfg)
			if err != nil {
				return nil, err
			}
			return stringer{fmt.Sprintf(
				"Guard-page policy baseline (paper motivation: per-buffer guard pages are prohibitively expensive)\n"+
					"  guard every buffer:      +%.1f%% allocation-path cycles\n"+
					"  guard patched buffers:   +%.1f%% allocation-path cycles\n"+
					"  targeted saving:         %.1fx\n",
				global, targeted, global/targeted)}, nil
		}},
	}

	selected := strings.Split(*exp, ",")
	var results []benchResult
	ran := 0
	for _, r := range all {
		if *exp != "all" && !contains(selected, r.name) {
			continue
		}
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		out, err := r.fn()
		elapsed := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", r.name, err)
		}
		if *jsonOut {
			br := benchResult{
				Name:       r.name,
				NsOp:       elapsed.Nanoseconds(),
				AllocsOp:   after.Mallocs - before.Mallocs,
				BytesAlloc: after.TotalAlloc - before.TotalAlloc,
			}
			if r.name == "vm" && vmResult != nil {
				br.Detail = map[string]float64{
					"geomean_speedup":        vmResult.GeomeanSpeedup,
					"steady_state_allocs_op": vmResult.SteadyStateAllocs,
				}
			}
			if r.name == "tierup" && tierUpResult != nil {
				br.Detail = map[string]float64{
					"geomean_vs_vm":          tierUpResult.GeomeanVsVM,
					"geomean_vs_tree":        tierUpResult.GeomeanVsTree,
					"tierup_threshold":       float64(tierUpResult.Threshold),
					"steady_state_allocs_op": tierUpResult.SteadyStateAllocs,
				}
			}
			if r.name == "serve" && serveResult != nil {
				best := 0.0
				for _, row := range serveResult.Rows {
					if row.ReqPerSec > best {
						best = row.ReqPerSec
					}
				}
				br.Detail = map[string]float64{
					"best_req_per_sec": best,
					"swap_p50_ns":      float64(serveResult.SwapP50.Nanoseconds()),
					"swap_p99_ns":      float64(serveResult.SwapP99.Nanoseconds()),
					"swaps":            float64(serveResult.SwapCount),
				}
			}
			if r.name == "policy" && policyResult != nil {
				br.Detail = map[string]float64{}
				for _, row := range policyResult.Rows {
					br.Detail[row.Family+"_contained_rate"] = row.ObservedRate
					br.Detail[row.Family+"_cycles_overhead_pct"] = row.OverheadPct
					br.Detail[row.Family+"_mem_overhead_pct"] = row.MemOverheadPct
				}
			}
			if r.name == "campaign" && campaignResult != nil {
				best := 0.0
				for _, row := range campaignResult.Rows {
					if row.SeedsPerSec > best {
						best = row.SeedsPerSec
					}
				}
				br.Detail = map[string]float64{
					"sequential_seeds_per_sec": campaignResult.SequentialSeedsPerSec,
					"best_seeds_per_sec":       best,
					"speedup":                  best / campaignResult.SequentialSeedsPerSec,
				}
			}
			results = append(results, br)
		} else {
			fmt.Println(out.String())
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		tierUpRecorded := *tierUp
		if tierUpRecorded == 0 {
			tierUpRecorded = prog.DefaultTierUp
		}
		return enc.Encode(benchReport{
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Engine:      engine.String(),
			TierUp:      tierUpRecorded,
			Quick:       *quick,
			Experiments: results,
		})
	}
	return nil
}

// benchReport is the machine-readable output of -json: one timing
// record per experiment, suitable for committed BENCH_*.json baselines
// and cross-run comparison.
type benchReport struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Engine     string `json:"engine"`
	// TierUp is the compiled engine's promotion threshold in effect for
	// this report (the resolved default when -tierup was not given).
	TierUp      uint64        `json:"tierup_threshold"`
	Quick       bool          `json:"quick"`
	Experiments []benchResult `json:"experiments"`
}

type benchResult struct {
	Name       string `json:"name"`
	NsOp       int64  `json:"ns_op"`
	AllocsOp   uint64 `json:"allocs_op"`
	BytesAlloc uint64 `json:"bytes_alloc"`
	// Detail carries experiment-specific headline numbers (currently
	// the vm experiment's geomean speedup and zero-alloc pin).
	Detail map[string]float64 `json:"detail,omitempty"`
}

type stringer struct{ s string }

func (s stringer) String() string { return s.s }

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
