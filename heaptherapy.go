// Package heaptherapy is a Go reproduction of "HeapTherapy+: Efficient
// Handling of (Almost) All Heap Vulnerabilities Using Targeted
// Calling-Context Encoding" (DSN 2019).
//
// HeapTherapy+ turns heap-vulnerability handling into configuration:
// given one attack input, an offline shadow-memory analysis identifies
// the vulnerable buffer's allocation-time calling context and emits a
// patch {FUN, CCID, T}; the online defense generator intercepts
// allocations, recognizes buffers allocated in patched contexts in
// O(1), and enhances exactly those buffers (guard page for overflows,
// zero fill for uninitialized reads, deferred reuse for use after
// free) — no code change, no allocator dependency, and overheads of a
// few percent.
//
// Because the Go runtime manages its own heap and cannot interpose
// malloc, this reproduction builds the full substrate in simulation: a
// byte-addressable address space with page protection (mem), a
// boundary-tag allocator (heapsim), a program model and interpreter
// (prog), Memcheck-style shadow memory (shadow), and the defense layer
// (defense). Calling-context encoding and the paper's targeted
// optimizations (TCS, Slim, Incremental) live in encoding and are a
// separate, reusable contribution.
//
// # Quick start
//
//	p := heaptherapy.MustLink(&heaptherapy.Program{ ... })
//	sys, err := heaptherapy.New(p, heaptherapy.Options{})
//	patches, report, err := sys.PatchCycle(attackInput)
//	run, err := sys.RunDefended(attackInput, patches)
//
// See examples/ for complete programs and cmd/htp-bench for the
// harness that regenerates every table and figure of the paper.
package heaptherapy

import (
	"io"

	"heaptherapy/internal/analysis"
	"heaptherapy/internal/core"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/instrument"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/progtext"
)

// --- pipeline --------------------------------------------------------------

// Options configures a System; the zero value selects the paper's
// deployed configuration (PCC encoding, Incremental planning).
type Options = core.Options

// System is an instrumented program with offline analysis and online
// defense attached.
type System = core.System

// DefendedRun is the outcome of a protected execution.
type DefendedRun = core.DefendedRun

// Report is an offline analysis report.
type Report = analysis.Report

// New instruments a linked program and returns the pipeline around it.
func New(p *Program, opts Options) (*System, error) {
	return core.NewSystem(p, opts)
}

// --- program model -----------------------------------------------------------

// Program is a program under protection. Construct one literally and
// call Link (or MustLink) before use.
type Program = prog.Program

// Func is a program function.
type Func = prog.Func

// Stmt is a program statement; see the statement types re-exported
// below.
type Stmt = prog.Stmt

// Expr is a side-effect-free expression.
type Expr = prog.Expr

// Result reports one program execution.
type Result = prog.Result

// Value is a runtime value.
type Value = prog.Value

// Statements.
type (
	// Assign stores an expression into a variable.
	Assign = prog.Assign
	// Alloc is a heap allocation (malloc/calloc/memalign family).
	Alloc = prog.Alloc
	// ReallocStmt resizes an allocation.
	ReallocStmt = prog.ReallocStmt
	// FreeStmt releases a buffer.
	FreeStmt = prog.FreeStmt
	// Load reads memory into a variable.
	Load = prog.Load
	// Store writes a scalar to memory.
	Store = prog.Store
	// StoreVar writes a variable's bytes to memory.
	StoreVar = prog.StoreVar
	// StoreBytes writes literal bytes to memory.
	StoreBytes = prog.StoreBytes
	// Memcpy copies between heap buffers.
	Memcpy = prog.Memcpy
	// Memset fills memory.
	Memset = prog.Memset
	// ReadInput consumes program input.
	ReadInput = prog.ReadInput
	// Output emits memory to the program output (a system call).
	Output = prog.Output
	// OutputVar emits a variable to the program output.
	OutputVar = prog.OutputVar
	// If branches on a condition.
	If = prog.If
	// While loops on a condition.
	While = prog.While
	// Call invokes another function.
	Call = prog.Call
	// Return ends the current function.
	Return = prog.Return
	// Nop burns one step.
	Nop = prog.Nop
)

// Expression constructors.
var (
	// C builds a constant.
	C = prog.C
	// V reads a variable.
	V = prog.V
	// Add, Sub, Mul, And, Lt, Le, Eq, Ne, Gt build binary expressions.
	Add = prog.Add
	Sub = prog.Sub
	Mul = prog.Mul
	And = prog.And
	Lt  = prog.Lt
	Le  = prog.Le
	Eq  = prog.Eq
	Ne  = prog.Ne
	Gt  = prog.Gt
)

// Link finalizes a program: validates calls, derives the call graph,
// and assigns call-site IDs.
func Link(p *Program) error { return prog.Link(p) }

// MustLink links p and panics on error.
func MustLink(p *Program) *Program { return prog.MustLink(p) }

// ParseProgram parses the .htp program text format (see
// testdata/leaky-server.htp for a commented example) into a linked
// Program.
func ParseProgram(src string) (*Program, error) { return progtext.Parse(src) }

// PrintProgram renders a program back to .htp text.
func PrintProgram(p *Program) string { return progtext.Print(p) }

// Instrument runs the Program Instrumentation Tool: it rewrites the
// system's program so that calling-context maintenance is explicit
// code (a per-thread global V with update/restore statements and
// explicit context expressions at allocation sites). The result runs
// without any runtime encoding support and computes bit-identical
// CCIDs.
func Instrument(sys *System) (*Program, error) {
	return instrument.Rewrite(sys.Program(), sys.Coder())
}

// --- patches -----------------------------------------------------------------

// Patch is a code-less heap patch {FUN, CCID, T}.
type Patch = patch.Patch

// PatchSet is a deduplicated patch collection; the online defense's
// hash table is built from one.
type PatchSet = patch.Set

// TypeMask is the vulnerability-type bitmask.
type TypeMask = patch.TypeMask

// Vulnerability types.
const (
	// TypeOverflow covers overwrite and overread.
	TypeOverflow = patch.TypeOverflow
	// TypeUseAfterFree defers reuse of freed blocks.
	TypeUseAfterFree = patch.TypeUseAfterFree
	// TypeUninitRead zero-fills buffers at allocation.
	TypeUninitRead = patch.TypeUninitRead
)

// NewPatchSet builds a patch set.
func NewPatchSet(patches ...Patch) *PatchSet { return patch.NewSet(patches...) }

// ReadPatchConfig parses a patch configuration file (patches are
// written with PatchSet.WriteConfig).
func ReadPatchConfig(r io.Reader) (*PatchSet, error) { return patch.ReadConfig(r) }

// --- allocation API ------------------------------------------------------------

// AllocFn identifies an allocation function.
type AllocFn = heapsim.AllocFn

// Allocation functions.
const (
	FnMalloc       = heapsim.FnMalloc
	FnCalloc       = heapsim.FnCalloc
	FnRealloc      = heapsim.FnRealloc
	FnMemalign     = heapsim.FnMemalign
	FnAlignedAlloc = heapsim.FnAlignedAlloc
)

// --- encoding -----------------------------------------------------------------

// Scheme selects the instrumentation planner.
type Scheme = encoding.Scheme

// Planner schemes.
const (
	// SchemeFCS instruments every call site.
	SchemeFCS = encoding.SchemeFCS
	// SchemeTCS instruments target-reaching sites only.
	SchemeTCS = encoding.SchemeTCS
	// SchemeSlim prunes non-branching nodes.
	SchemeSlim = encoding.SchemeSlim
	// SchemeIncremental prunes false branching nodes (Algorithm 1).
	SchemeIncremental = encoding.SchemeIncremental
)

// EncoderKind selects the encoding arithmetic.
type EncoderKind = encoding.EncoderKind

// Encoder kinds.
const (
	// EncoderPCC is probabilistic calling context (V = 3t + c).
	EncoderPCC = encoding.EncoderPCC
	// EncoderPCCE is precise additive encoding with decoding support.
	EncoderPCCE = encoding.EncoderPCCE
	// EncoderDeltaPath is additive with per-target ID ranges.
	EncoderDeltaPath = encoding.EncoderDeltaPath
)
