module heaptherapy

go 1.22
