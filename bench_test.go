package heaptherapy

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper plus micro-benchmarks for the mechanisms. Wall-clock ns/op
// measures this Go implementation; the paper-comparable overhead
// percentages are computed on the deterministic virtual-cycle axis and
// attached via b.ReportMetric (suffix "ovh%"). Run:
//
//	go test -bench=. -benchmem
//
// cmd/htp-bench prints the same experiments as full paper-shaped
// tables.

import (
	"fmt"
	"testing"

	"heaptherapy/internal/callgraph"
	"heaptherapy/internal/core"
	"heaptherapy/internal/defense"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/experiments"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/shadow"
	"heaptherapy/internal/vuln"
	"heaptherapy/internal/workload"
)

// --- micro: the simulated allocator -----------------------------------------

func BenchmarkAllocatorMallocFree(b *testing.B) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		b.Fatal(err)
	}
	h, err := heapsim.New(space)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := h.Malloc(uint64(16 + i%1024))
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro: defended allocation (Figure 8's mechanism costs) ----------------

func benchDefendedAlloc(b *testing.B, types patch.TypeMask) {
	const ccid = 0x42
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		b.Fatal(err)
	}
	var ps *patch.Set
	if types != 0 {
		ps = patch.NewSet(patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: types})
	}
	d, err := defense.New(space, defense.Config{Patches: ps})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := d.Malloc(ccid, 256)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDefendedAllocUnpatched(b *testing.B) { benchDefendedAlloc(b, 0) }
func BenchmarkDefendedAllocZeroFill(b *testing.B)  { benchDefendedAlloc(b, patch.TypeUninitRead) }
func BenchmarkDefendedAllocGuardPage(b *testing.B) { benchDefendedAlloc(b, patch.TypeOverflow) }

func BenchmarkDefendedAllocDeferredFree(b *testing.B) {
	const ccid = 0x42
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		b.Fatal(err)
	}
	d, err := defense.New(space, defense.Config{
		QueueQuota: 1 << 16, // keep the queue cycling
		Patches:    patch.NewSet(patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeUseAfterFree}),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := d.Malloc(ccid, 256)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro: encoding updates -------------------------------------------------

func BenchmarkEncodingUpdate(b *testing.B) {
	g, targets := workloadGraph(b)
	for _, kind := range encoding.AllEncoders() {
		b.Run(kind.String(), func(b *testing.B) {
			plan, err := encoding.NewPlan(encoding.SchemeFCS, g, targets)
			if err != nil {
				b.Fatal(err)
			}
			coder, err := encoding.NewCoder(kind, g, plan)
			if err != nil {
				b.Fatal(err)
			}
			var v uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v = coder.Update(v, 0)
			}
			_ = v
		})
	}
}

func workloadGraph(b *testing.B) (*callgraph.Graph, []callgraph.NodeID) {
	bench, err := workload.BenchmarkByName("456.hmmer")
	if err != nil {
		b.Fatal(err)
	}
	g, targets, err := bench.Graph()
	if err != nil {
		b.Fatal(err)
	}
	return g, targets
}

// --- planning (Table III's machinery) ---------------------------------------

func BenchmarkPlanners(b *testing.B) {
	g, targets := workloadGraph(b)
	for _, scheme := range encoding.AllSchemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := encoding.NewPlan(scheme, g, targets); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Section VIII-B1: encoding runtime overhead ------------------------------

// BenchmarkEncodingOverhead runs the hmmer-like workload per scheme;
// ns/op is this implementation's wall time, "ovh%" the cycle-model
// overhead versus the uninstrumented run (paper: FCS 2.4% ...
// Incremental 0.4% on average across SPEC).
func BenchmarkEncodingOverhead(b *testing.B) {
	bench, err := workload.BenchmarkByName("456.hmmer")
	if err != nil {
		b.Fatal(err)
	}
	p, _, err := bench.Program(workload.ProgramConfig{Scale: 1_000_000})
	if err != nil {
		b.Fatal(err)
	}
	base := runWorkload(b, p, nil, nil, 0)
	for _, scheme := range encoding.AllSchemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			plan, err := encoding.NewPlan(scheme, p.Graph(), p.Targets())
			if err != nil {
				b.Fatal(err)
			}
			coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = runWorkload(b, p, coder, nil, 0)
			}
			reportOverhead(b, base, cycles)
		})
	}
}

// runWorkload executes p once and returns its cycle cost. mode 0 =
// native, 1 = interpose, 2 = full defense with patches.
func runWorkload(b *testing.B, p *prog.Program, coder *encoding.Coder, patches *patch.Set, mode int) uint64 {
	b.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		b.Fatal(err)
	}
	var backend prog.HeapBackend
	switch mode {
	case 0:
		nb, err := prog.NewNativeBackend(space)
		if err != nil {
			b.Fatal(err)
		}
		backend = nb
	case 1:
		db, err := defense.NewBackend(space, defense.Config{Mode: defense.ModeInterpose})
		if err != nil {
			b.Fatal(err)
		}
		backend = db
	default:
		db, err := defense.NewBackend(space, defense.Config{Mode: defense.ModeFull, Patches: patches})
		if err != nil {
			b.Fatal(err)
		}
		backend = db
	}
	it, err := prog.New(p, prog.Config{Backend: backend, Coder: coder})
	if err != nil {
		b.Fatal(err)
	}
	res, err := it.Run(nil)
	if err != nil {
		b.Fatal(err)
	}
	if res.Crashed() {
		b.Fatalf("workload crashed: %v", res.Fault)
	}
	return res.Cycles
}

func reportOverhead(b *testing.B, base, got uint64) {
	b.Helper()
	if base == 0 {
		return
	}
	b.ReportMetric(100*(float64(got)-float64(base))/float64(base), "ovh%")
}

// --- Figure 8: deployment overheads ------------------------------------------

// BenchmarkFigure8 measures the perlbench-like workload under the
// paper's four deployment levels (paper averages: interposition 1.9%,
// 0 patches 4.3%, 1 patch 4.7%, 5 patches 5.2%).
func BenchmarkFigure8(b *testing.B) {
	bench, err := workload.BenchmarkByName("400.perlbench")
	if err != nil {
		b.Fatal(err)
	}
	p, _, err := bench.Program(workload.ProgramConfig{Scale: 1_000_000})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
	if err != nil {
		b.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		b.Fatal(err)
	}
	base := runWorkload(b, p, nil, nil, 0)

	b.Run("interpose", func(b *testing.B) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			cycles = runWorkload(b, p, coder, nil, 1)
		}
		reportOverhead(b, base, cycles)
	})
	for _, n := range []int{0, 1, 5} {
		n := n
		b.Run(fmt.Sprintf("patches-%d", n), func(b *testing.B) {
			patches := medianPatches(b, p, coder, n)
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = runWorkload(b, p, coder, patches, 2)
			}
			reportOverhead(b, base, cycles)
		})
	}
}

// medianPatches profiles allocation CCIDs and patches the median ones
// (the paper's Figure 8 protocol), reusing the experiments package's
// selection through a tiny local reimplementation to keep the bench
// self-contained.
func medianPatches(b *testing.B, p *prog.Program, coder *encoding.Coder, n int) *patch.Set {
	b.Helper()
	if n == 0 {
		return patch.NewSet()
	}
	r, err := experiments.Figure8PatchSelection(p, coder, n)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// --- Figure 9: memory overhead ------------------------------------------------

func BenchmarkFigure9Memory(b *testing.B) {
	bench, err := workload.BenchmarkByName("471.omnetpp")
	if err != nil {
		b.Fatal(err)
	}
	p, err := bench.LiveHeapProgram(workload.ProgramConfig{})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
	if err != nil {
		b.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		b.Fatal(err)
	}

	measure := func(defended bool) uint64 {
		space, err := mem.NewSpace(mem.Config{})
		if err != nil {
			b.Fatal(err)
		}
		var backend prog.HeapBackend
		var heap *heapsim.Heap
		if defended {
			db, err := defense.NewBackend(space, defense.Config{})
			if err != nil {
				b.Fatal(err)
			}
			backend, heap = db, db.Defender().Heap()
		} else {
			nb, err := prog.NewNativeBackend(space)
			if err != nil {
				b.Fatal(err)
			}
			backend, heap = nb, nb.Heap()
		}
		it, err := prog.New(p, prog.Config{Backend: backend, Coder: coder})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := it.Run(nil); err != nil {
			b.Fatal(err)
		}
		return heap.Stats().PeakInUseBytes
	}

	var nat, def uint64
	for i := 0; i < b.N; i++ {
		nat = measure(false)
		def = measure(true)
	}
	reportOverhead(b, nat, def)
}

// --- Table II: the effectiveness pipeline -------------------------------------

// BenchmarkTableIIPipeline times the full handle-one-vulnerability
// cycle (offline analysis + patch generation + defended re-run) on the
// Heartbleed case.
func BenchmarkTableIIPipeline(b *testing.B) {
	c := vuln.Heartbleed()
	sys, err := core.NewSystem(c.Program, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		patches, _, err := sys.PatchCycle(c.Attack)
		if err != nil {
			b.Fatal(err)
		}
		run, err := sys.RunDefended(c.Attack, patches)
		if err != nil {
			b.Fatal(err)
		}
		if c.Success(run.Result) {
			b.Fatal("attack succeeded under defense")
		}
	}
}

// BenchmarkOfflineAnalysis times the shadow-memory replay alone.
func BenchmarkOfflineAnalysis(b *testing.B) {
	c := vuln.Heartbleed()
	sys, err := core.NewSystem(c.Program, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.GeneratePatches(c.Attack); err != nil {
			b.Fatal(err)
		}
	}
}

// --- services (Section VIII-B2) ------------------------------------------------

func BenchmarkServiceThroughput(b *testing.B) {
	for _, svc := range []*workload.Service{workload.Nginx(), workload.MySQL()} {
		svc := svc
		b.Run(svc.Name, func(b *testing.B) {
			p, err := svc.Program(500, 50)
			if err != nil {
				b.Fatal(err)
			}
			plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
			if err != nil {
				b.Fatal(err)
			}
			coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
			if err != nil {
				b.Fatal(err)
			}
			base := runWorkload(b, p, nil, nil, 0)
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles = runWorkload(b, p, coder, nil, 2)
			}
			reportOverhead(b, base, cycles)
		})
	}
}

// --- shadow memory micro -------------------------------------------------------

func BenchmarkShadowLoadStore(b *testing.B) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		b.Fatal(err)
	}
	sb, err := shadow.New(space, shadow.Config{})
	if err != nil {
		b.Fatal(err)
	}
	p, err := sb.Alloc(heapsim.FnMalloc, 1, 1, 4096, 0)
	if err != nil {
		b.Fatal(err)
	}
	v := prog.Value{Bytes: make([]byte, 64)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sb.Store(p, v, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := sb.Load(p, 64, 1); err != nil {
			b.Fatal(err)
		}
	}
}
