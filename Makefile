GO ?= go
PKGS := ./...
# Packages with concurrent components (interpreter threads, defended
# allocator under concurrency, the parallel fleet runtime) that the
# race detector must cover.
RACE_PKGS := ./internal/defense/ ./internal/prog/ ./internal/fleet/

.PHONY: all build test race vet fmt-check bench bench-json bench-fleet bench-vm bench-smoke check

all: check

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet $(PKGS)

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Hot-path kernel benchmarks (mem/shadow/defense). Compare runs with
# benchstat: make bench > new.txt && benchstat old.txt new.txt
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMemKernels|BenchmarkShadow|BenchmarkPatchLookup' -benchmem \
		./internal/mem/ ./internal/shadow/ ./internal/defense/

# Machine-readable end-to-end experiment timings (see BENCH_*.json).
bench-json:
	$(GO) run ./cmd/htp-bench -quick -json

# Fleet runtime benchmarks: worker setup (fresh vs pooled) and
# parallel serve throughput at 1/2/4/8 workers.
bench-fleet:
	$(GO) test -run '^$$' -bench 'BenchmarkFleet' -benchmem ./internal/fleet/

# Interpreter engine benchmarks: tree-walker vs bytecode VM plus the
# one-time compile cost. BENCHTIME=1x gives a fast smoke run.
BENCHTIME ?= 1s
bench-vm:
	$(GO) test -run '^$$' -bench 'BenchmarkEngines|BenchmarkCompile' -benchmem \
		-benchtime $(BENCHTIME) ./internal/prog/

# One-iteration pass over every benchmark in the repo: catches bitrot
# in benchmark code without paying for stable timings. CI runs this.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x $(PKGS)

check: build vet fmt-check test race
