GO ?= go
PKGS := ./...
# Packages with concurrent components (interpreter threads, defended
# allocator under concurrency) that the race detector must cover.
RACE_PKGS := ./internal/defense/ ./internal/prog/

.PHONY: all build test race vet fmt-check bench bench-json check

all: check

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet $(PKGS)

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Hot-path kernel benchmarks (mem/shadow/defense). Compare runs with
# benchstat: make bench > new.txt && benchstat old.txt new.txt
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMemKernels|BenchmarkShadow|BenchmarkPatchLookup' -benchmem \
		./internal/mem/ ./internal/shadow/ ./internal/defense/

# Machine-readable end-to-end experiment timings (see BENCH_*.json).
bench-json:
	$(GO) run ./cmd/htp-bench -quick -json

check: build vet fmt-check test race
