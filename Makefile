GO ?= go
PKGS := ./...
# Packages with concurrent components (interpreter threads, defended
# allocator under concurrency, the parallel fleet runtime, the HTTP
# front-end's hot-swap/soak layer) that the race detector must cover,
# plus the campaign harness whose matrix replays cross all of them.
RACE_PKGS := ./internal/defense/ ./internal/prog/ ./internal/fleet/ ./internal/serve/ ./internal/campaign/ ./internal/telemetry/
# Packages whose statement coverage is gated in CI: the allocator the
# campaign walker audits, the campaign rig itself, the runtime layers
# the telemetry sweep pinned (defense/shadow/mem/telemetry), and the
# serving stack (fleet + serve front-end).
COVER_GATE_PKGS := ./internal/heapsim/ ./internal/campaign/ ./internal/defense/ ./internal/shadow/ ./internal/mem/ ./internal/telemetry/ ./internal/fleet/ ./internal/serve/
COVER_MIN := 80

.PHONY: all build test race vet fmt-check bench bench-json bench-campaign bench-campaign-json bench-fleet bench-policy bench-policy-json bench-serve bench-serve-json bench-vm bench-compiled bench-encoding bench-smoke bench-telemetry check cover corpus fuzz-smoke

all: check

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

race:
	$(GO) test -race -timeout 15m $(RACE_PKGS)

vet:
	$(GO) vet $(PKGS)

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Hot-path kernel benchmarks (mem/shadow/defense). Compare runs with
# benchstat: make bench > new.txt && benchstat old.txt new.txt
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMemKernels|BenchmarkShadow|BenchmarkPatchLookup' -benchmem \
		./internal/mem/ ./internal/shadow/ ./internal/defense/

# Machine-readable end-to-end experiment timings (see BENCH_*.json).
bench-json:
	$(GO) run ./cmd/htp-bench -quick -json

# Fleet runtime benchmarks: worker setup (fresh vs pooled) and
# parallel serve throughput at 1/2/4/8 workers.
bench-fleet:
	$(GO) test -run '^$$' -bench 'BenchmarkFleet' -benchmem ./internal/fleet/

# Serve front-end: end-to-end HTTP req/s at 1/2/4/8 workers while a
# swapper performs continuous live patch rollouts, plus SwapTable
# latency percentiles under that load (record with:
# make bench-serve-json, fold into BENCH_$(shell date +%F).json).
bench-serve:
	$(GO) run ./cmd/htp-bench -exp serve

bench-serve-json:
	$(GO) run ./cmd/htp-bench -exp serve -json

# Interpreter engine benchmarks: tree-walker vs bytecode VM plus the
# one-time compile cost. BENCHTIME=1x gives a fast smoke run.
BENCHTIME ?= 1s
bench-vm:
	$(GO) test -run '^$$' -bench 'BenchmarkEngines|BenchmarkCompile' -benchmem \
		-benchtime $(BENCHTIME) ./internal/prog/

# Tier-up compiled engine: the encoded-call benchmarks across all
# three engines, the promotion-parity and zero-alloc pins, and the
# tierup experiment's three-engine geomean table (the committed
# BENCH_*.json baseline requires >= 1.5x geomean over the VM).
bench-compiled:
	$(GO) test -run 'Machine|EncodedCall' -count 1 -v ./internal/prog/ | grep -E '^(--- (PASS|FAIL)|ok|FAIL)'
	$(GO) test -run '^$$' -bench 'BenchmarkEncodedCall' -benchmem \
		-benchtime $(BENCHTIME) ./internal/prog/
	$(GO) run ./cmd/htp-bench -exp tierup

# Encoding-path benchmarks and allocation pins: planner scratch reuse,
# the per-call update arithmetic (0 allocs/op), and the end-to-end
# encoded-call path on both engines, plus the dense-vs-reference
# differential tests that prove the dense representations equivalent.
bench-encoding:
	$(GO) test -run 'DenseEquivalence|UpdatePathZeroAlloc|PlannerSteadyState|EncodedCall' -count 1 -v \
		./internal/encoding/ ./internal/prog/ | grep -E '^(--- (PASS|FAIL)|ok|FAIL)'
	$(GO) test -run '^$$' -bench 'BenchmarkEncodingPlan|BenchmarkCoderUpdate|BenchmarkEncodedCall' -benchmem \
		-benchtime $(BENCHTIME) ./internal/encoding/ ./internal/prog/

# Campaign runtime pins and throughput: the pooled-vs-fresh oracle
# bit-identity and parallel-vs-sequential report-parity differentials,
# the recycle allocation pins, then the seeds/sec scaling table at
# 1/2/4/8 workers against the fresh-construction sequential baseline
# (record with: make bench-campaign-json >> BENCH_$(shell date +%F).json).
bench-campaign:
	$(GO) test -run 'WorkbenchBitIdentical|ParallelMatchesSequential|GuidedMatchesUnguided|PooledSetupAllocs|BackendResetDifferential|ResetPatchesMatchesFresh|CollectorReset' -count 1 -v \
		./internal/campaign/ ./internal/shadow/ ./internal/defense/ ./internal/telemetry/ | grep -E '^(--- (PASS|FAIL)|ok|FAIL)'
	$(GO) run ./cmd/htp-bench -exp campaign

bench-campaign-json:
	$(GO) run ./cmd/htp-bench -exp campaign -json

# Defense-policy head-to-head: the cross-family differential suite
# (containment matrix, honest expected misses, benign bit-identity,
# the policy fuzz target's seed corpus), then the policy matrix
# experiment — per-family containment rate, benign cycle overhead,
# and memory footprint against the native baseline (record with:
# make bench-policy-json, fold into BENCH_$(shell date +%F).json).
bench-policy:
	$(GO) test -run 'PolicyContainmentMatrix|PolicyExpectedMisses|PolicyEquivalence|FleetPolicy|ServePolicy' -count 1 -v \
		./internal/campaign/ ./internal/fleet/ ./internal/serve/ | grep -E '^(--- (PASS|FAIL)|ok|FAIL)'
	$(GO) run ./cmd/htp-bench -exp policy

bench-policy-json:
	$(GO) run ./cmd/htp-bench -exp policy -json

# Telemetry overhead pins: the disabled hot path must be 0 allocs/op
# (AllocsPerRun tests in defense/mem/telemetry) and the fleet-level
# enabled-vs-disabled throughput delta is reported by the experiment.
bench-telemetry:
	$(GO) test -run 'ZeroAlloc|LookupAllocs|MemKernelAllocs' -count 1 -v \
		./internal/telemetry/ ./internal/defense/ ./internal/mem/ | grep -E '^(--- (PASS|FAIL)|ok|FAIL)'
	$(GO) run ./cmd/htp-bench -quick -exp telemetry

# One-iteration pass over every benchmark in the repo: catches bitrot
# in benchmark code without paying for stable timings. CI runs this.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x $(PKGS)

# Coverage gate: each package in COVER_GATE_PKGS must hold at least
# COVER_MIN% statement coverage.
cover:
	@fail=0; \
	for pkg in $(COVER_GATE_PKGS); do \
		pct=$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "$$pkg: no coverage reported"; fail=1; continue; fi; \
		ok=$$(echo "$$pct $(COVER_MIN)" | awk '{print ($$1 >= $$2) ? 1 : 0}'); \
		if [ "$$ok" = 1 ]; then \
			echo "$$pkg: $$pct% (>= $(COVER_MIN)%)"; \
		else \
			echo "$$pkg: $$pct% BELOW the $(COVER_MIN)% gate"; fail=1; \
		fi; \
	done; exit $$fail

# Regenerate the golden campaign corpus after an intentional generator
# change (TestCorpusMatchesGenerator pins it).
corpus:
	$(GO) run ./cmd/htp-fuzz -emit-corpus testdata/campaign -seeds 20

# Short native-fuzzing shake of the campaign generator and reducer.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzGenerate -fuzztime 10s ./internal/campaign/
	$(GO) test -run '^$$' -fuzz FuzzReduce -fuzztime 10s ./internal/campaign/

check: build vet fmt-check test race cover
