package main

import "testing"

// TestHeartbleedExampleRuns keeps the example compiling and completing
// successfully as the library evolves.
func TestHeartbleedExampleRuns(t *testing.T) {
	if err := run(); err != nil {
		t.Fatalf("heartbleed example failed: %v", err)
	}
}
