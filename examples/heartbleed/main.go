// Heartbleed (CVE-2014-0160), the paper's flagship case study
// (Section VIII-A): a heartbeat handler trusts the attacker-supplied
// payload length, leaking recycled heap memory — a private key — from
// the record buffer. The same vulnerability is exploitable in two
// regimes: pure uninitialized read (claimed length within the record
// buffer) and uninitialized read + overread (claimed length beyond
// it). HeapTherapy+ detects the exact mix offline and generates one
// patch that covers both.
//
//	go run ./examples/heartbleed
package main

import (
	"bytes"
	"fmt"
	"os"

	"heaptherapy/internal/core"
	"heaptherapy/internal/vuln"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "heartbleed:", err)
		os.Exit(1)
	}
}

func run() error {
	long := vuln.Heartbleed()       // UR + overread regime
	short := vuln.HeartbleedShort() // pure UR regime

	sys, err := core.NewSystem(long.Program, core.Options{})
	if err != nil {
		return err
	}

	fmt.Println("=== the Heartbleed attack, undefended ===")
	for _, c := range []*vuln.Case{short, long} {
		res, err := sys.RunNative(c.Attack)
		if err != nil {
			return err
		}
		leak := findSecret(res.Output)
		fmt.Printf("%-18s response %5d bytes; leaked: %q\n", c.Name+":", len(res.Output), leak)
	}

	fmt.Println("\n=== offline analysis of ONE attack input ===")
	rep, err := sys.GeneratePatches(long.Attack)
	if err != nil {
		return err
	}
	if err := rep.Write(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nNote the type mask: the analyzer found BOTH the uninitialized")
	fmt.Println("read and the overread, and attributed them to the record buffer's")
	fmt.Println("allocation context — exactly the paper's account of Heartbleed.")

	fmt.Println("\n=== the same attacks, patched ===")
	for _, c := range []*vuln.Case{short, long} {
		run, err := sys.RunDefended(c.Attack, rep.Patches)
		if err != nil {
			return err
		}
		switch {
		case run.Result.Crashed():
			fmt.Printf("%-18s guard page stopped the overread (%v)\n", c.Name+":", run.Result.Fault)
		default:
			leak := findSecret(run.Result.Output)
			zeros := countZeros(run.Result.Output[7:])
			fmt.Printf("%-18s response %5d bytes; leaked: %q; %d/%d leak bytes are zeros\n",
				c.Name+":", len(run.Result.Output), leak, zeros, len(run.Result.Output)-7)
		}
	}
	fmt.Println("\n\"We then tried different attack inputs, and no data was leaked")
	fmt.Println(" except for the zeros filled in the buffers.\" — Section VIII-A")

	fmt.Println("\n=== benign heartbeats still answered ===")
	for i, in := range long.Benign {
		nat, err := sys.RunNative(in)
		if err != nil {
			return err
		}
		def, err := sys.RunDefended(in, rep.Patches)
		if err != nil {
			return err
		}
		fmt.Printf("benign %d: native %q == defended %q: %v\n",
			i, nat.Output, def.Result.Output, bytes.Equal(nat.Output, def.Result.Output))
	}
	return nil
}

// findSecret reports which part of the planted secret appears in out.
func findSecret(out []byte) string {
	secret := []byte(vuln.Secret)
	if i := bytes.Index(out, secret); i >= 0 {
		return string(secret)
	}
	// Partial leak?
	for n := len(secret) - 1; n >= 8; n-- {
		if bytes.Contains(out, secret[:n]) {
			return string(secret[:n]) + "..."
		}
	}
	return ""
}

func countZeros(b []byte) int {
	n := 0
	for _, v := range b {
		if v == 0 {
			n++
		}
	}
	return n
}
