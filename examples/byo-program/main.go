// Bring-your-own program: the full adoption story for code you write
// yourself, start to finish — parse the .htp text, watch the attack
// leak, generate a patch with symbolized contexts and a leak check,
// deploy it, inspect the literal instrumentation, and finally run the
// identical defense over a completely different underlying allocator.
//
//	go run ./examples/byo-program
package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"heaptherapy"
	"heaptherapy/internal/defense"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
)

// source is an .htp program: a tiny TLV parser whose value length is
// attacker-controlled.
const source = `
program tlv-parser

func main {
    call session_setup
    call parse_record
}

func session_setup {
    # Credentials from an earlier record linger in recycled memory.
    alloc cred = malloc(512)
    storebytes (cred + 64), "cred=TOPSECRET-TOKEN-1337"
    free cred
}

func parse_record {
    alloc record = malloc(512)
    input tag, 1
    input claimed, 2
    input payload, rest
    storevar record, payload
    # The bug: the response echoes 'claimed' bytes of the record.
    alloc resp = malloc(claimed + 1)
    store resp, tag, 1
    memcpy (resp + 1), record, claimed
    output resp, claimed + 1
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "byo-program:", err)
		os.Exit(1)
	}
}

func run() error {
	program, err := heaptherapy.ParseProgram(source)
	if err != nil {
		return err
	}
	// PCCE instead of the default PCC: same pipeline, plus decodable
	// CCIDs so reports can symbolize contexts.
	sys, err := heaptherapy.New(program, heaptherapy.Options{Encoder: heaptherapy.EncoderPCCE})
	if err != nil {
		return err
	}

	attack := []byte{0x01, 0x2C, 0x01, 'h', 'i'} // claim 300 bytes, send 2
	benign := []byte{0x01, 0x02, 0x00, 'h', 'i'} // claim exactly 2

	fmt.Println("=== 1. the attack against your program, undefended ===")
	res, err := sys.RunNative(attack)
	if err != nil {
		return err
	}
	fmt.Printf("response leaks: %v\n", bytes.Contains(res.Output, []byte("TOPSECRET")))

	fmt.Println("\n=== 2. one attack input -> patch, with symbolized context ===")
	patches, report, err := sys.PatchCycle(attack)
	if err != nil {
		return err
	}
	if err := report.Write(os.Stdout); err != nil {
		return err
	}

	fmt.Println("\n=== 3. deployed ===")
	defended, err := sys.RunDefended(attack, patches)
	if err != nil {
		return err
	}
	fmt.Printf("response leaks: %v; %d allocation(s) recognized vulnerable\n",
		bytes.Contains(defended.Result.Output, []byte("TOPSECRET")),
		defended.Stats.PatchedAllocs)

	fmt.Println("\n=== 4. what the instrumentation pass actually emits ===")
	instrumented, err := heaptherapy.Instrument(sys)
	if err != nil {
		return err
	}
	text := heaptherapy.PrintProgram(instrumented)
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "__cc") || strings.Contains(line, "func ") {
			fmt.Println(line)
		}
	}

	fmt.Println("\n=== 5. the same defense over a different allocator ===")
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return err
	}
	pool, err := heapsim.NewPool(space) // slab allocator, FIFO reuse
	if err != nil {
		return err
	}
	backend, err := defense.NewBackendWithAllocator(space, pool, defense.Config{Patches: patches})
	if err != nil {
		return err
	}
	it, err := prog.New(program, prog.Config{Backend: backend, Coder: sys.Coder()})
	if err != nil {
		return err
	}
	poolRes, err := it.Run(attack)
	if err != nil {
		return err
	}
	fmt.Printf("over the slab allocator, response leaks: %v (stats: %d recognized, %d zero-filled)\n",
		bytes.Contains(poolRes.Output, []byte("TOPSECRET")),
		backend.Defender().Stats().PatchedAllocs,
		backend.Defender().Stats().ZeroFills)

	// Benign traffic is untouched in all configurations.
	nat, err := sys.RunNative(benign)
	if err != nil {
		return err
	}
	def, err := sys.RunDefended(benign, patches)
	if err != nil {
		return err
	}
	fmt.Printf("\nbenign response identical under defense: %v\n", bytes.Equal(nat.Output, def.Result.Output))
	return nil
}
