package main

import "testing"

// TestBYOProgramRuns keeps the example compiling and completing
// successfully as the library evolves.
func TestBYOProgramRuns(t *testing.T) {
	if err := run(); err != nil {
		t.Fatalf("byo-program example failed: %v", err)
	}
}
