package main

import "testing"

// TestUAFDefenseExampleRuns keeps the example compiling and completing
// successfully as the library evolves.
func TestUAFDefenseExampleRuns(t *testing.T) {
	if err := run(); err != nil {
		t.Fatalf("uaf-defense example failed: %v", err)
	}
}
