// Use-after-free defense: how deferring reuse through the
// freed-blocks FIFO queue (Section VI) breaks exploitation.
//
//	go run ./examples/uaf-defense
//
// Part 1 replays the optipng-style dangling-pointer hijack from the
// corpus. Part 2 measures reuse distance directly: how many
// allocations it takes before a freed block is handed out again, with
// and without the UAF patch, and how the queue quota bounds memory —
// the entropy argument the paper makes for deferred reuse.
package main

import (
	"fmt"
	"os"

	"heaptherapy/internal/core"
	"heaptherapy/internal/defense"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/vuln"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uaf-defense:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := part1(); err != nil {
		return err
	}
	return part2()
}

// part1: the optipng CVE-2015-7801 model end to end.
func part1() error {
	c := vuln.OptiPNG()
	sys, err := core.NewSystem(c.Program, core.Options{})
	if err != nil {
		return err
	}

	fmt.Println("=== part 1: dangling-pointer hijack (optipng, CVE-2015-7801) ===")
	res, err := sys.RunNative(c.Attack)
	if err != nil {
		return err
	}
	fmt.Printf("undefended: the freed callback table is recycled for the attacker's\n")
	fmt.Printf("            comment buffer; the stale dereference yields %#x\n", leUint(res.Output))
	if c.Success(res) {
		fmt.Println("            --> control value is ATTACKER-CHOSEN (0xDEADF00D)")
	}

	rep, err := sys.GeneratePatches(c.Attack)
	if err != nil {
		return err
	}
	fmt.Printf("\noffline analysis: %d warning(s), patch: %s\n",
		len(rep.Warnings), rep.Patches.Patches()[0])

	def, err := sys.RunDefended(c.Attack, rep.Patches)
	if err != nil {
		return err
	}
	fmt.Printf("\ndefended:   the freed block is parked in the FIFO queue, the groom\n")
	fmt.Printf("            allocation gets fresh memory, and the stale dereference\n")
	fmt.Printf("            still sees the ORIGINAL handler: %#x\n", leUint(def.Result.Output))
	fmt.Printf("            deferred frees: %d\n\n", def.Stats.DeferredFrees)
	return nil
}

// part2: reuse distance with and without deferral.
func part2() error {
	fmt.Println("=== part 2: reuse distance of a freed block ===")
	const (
		vulnCCID = 0x501
		size     = 256
	)
	measure := func(patched bool, quota uint64) (int, defense.Stats, error) {
		space, err := mem.NewSpace(mem.Config{})
		if err != nil {
			return 0, defense.Stats{}, err
		}
		cfg := defense.Config{QueueQuota: quota}
		if patched {
			cfg.Patches = patch.NewSet(patch.Patch{
				Fn: heapsim.FnMalloc, CCID: vulnCCID, Types: patch.TypeUseAfterFree,
			})
		}
		d, err := defense.New(space, cfg)
		if err != nil {
			return 0, defense.Stats{}, err
		}
		victim, err := d.Malloc(vulnCCID, size)
		if err != nil {
			return 0, defense.Stats{}, err
		}
		if err := d.Free(victim); err != nil {
			return 0, defense.Stats{}, err
		}
		// The attacker grooms with same-sized allocations, counting how
		// many it takes to land on the victim's block.
		for i := 1; i <= 10000; i++ {
			p, err := d.Malloc(0x1, size)
			if err != nil {
				return 0, defense.Stats{}, err
			}
			if p == victim {
				return i, d.Stats(), nil
			}
		}
		return -1, d.Stats(), nil
	}

	unpatched, _, err := measure(false, defense.DefaultQueueQuota)
	if err != nil {
		return err
	}
	fmt.Printf("unpatched: attacker reclaims the freed block after %d allocation(s)\n", unpatched)

	patched, st, err := measure(true, defense.DefaultQueueQuota)
	if err != nil {
		return err
	}
	if patched < 0 {
		fmt.Printf("patched:   10000 grooming allocations never reclaimed it (queue holds %d bytes)\n", st.QueueBytes)
	} else {
		fmt.Printf("patched:   reclaimed only after %d allocations\n", patched)
	}

	fmt.Println("\nquota ablation: a smaller quota evicts sooner (memory bound vs safety window)")
	for _, quota := range []uint64{1 << 10, 64 << 10, 8 << 20} {
		n, st, err := measureChurn(quota)
		if err != nil {
			return err
		}
		fmt.Printf("  quota %8d B: %4d evictions over %d UAF-patched frees, final queue %d B\n",
			quota, st.QueueEvictions, n, st.QueueBytes)
	}
	return nil
}

// measureChurn frees many patched blocks under a quota.
func measureChurn(quota uint64) (int, defense.Stats, error) {
	const ccid = 0x501
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return 0, defense.Stats{}, err
	}
	d, err := defense.New(space, defense.Config{
		QueueQuota: quota,
		Patches: patch.NewSet(patch.Patch{
			Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeUseAfterFree,
		}),
	})
	if err != nil {
		return 0, defense.Stats{}, err
	}
	const rounds = 500
	for i := 0; i < rounds; i++ {
		p, err := d.Malloc(ccid, 512)
		if err != nil {
			return 0, defense.Stats{}, err
		}
		if err := d.Free(p); err != nil {
			return 0, defense.Stats{}, err
		}
	}
	return rounds, d.Stats(), nil
}

func leUint(b []byte) uint64 {
	var v uint64
	for i := 0; i < len(b) && i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
