// Encoding planner walkthrough: the paper's Figure 2 example, the
// four instrumentation planners, and what each buys — the "separate
// contribution" of targeted calling-context encoding (Section IV).
//
//	go run ./examples/encoding-planner
package main

import (
	"fmt"
	"os"

	"heaptherapy/internal/callgraph"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "encoding-planner:", err)
		os.Exit(1)
	}
}

func run() error {
	g, targets := callgraph.Figure2()
	fmt.Println("=== Figure 2: the paper's example graph ===")
	fmt.Println("functions: A B C D E F H I; targets: T1 T2")
	fmt.Println("contexts:  A-B-T1, A-C-E-T2, A-C-F-T1, A-C-F-T2")
	fmt.Println()

	for _, scheme := range encoding.AllSchemes() {
		plan, err := encoding.NewPlan(scheme, g, targets)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s instruments %d/%d sites: %v\n",
			scheme, plan.NumSites(), g.NumEdges(), plan.SiteLabels(g))
	}
	fmt.Println()
	fmt.Println("TCS drops D->H and H->I (they cannot reach a target);")
	fmt.Println("Slim drops B's and E's sites (non-branching nodes);")
	fmt.Println("Incremental drops F's sites too: F's edges reach DIFFERENT")
	fmt.Println("targets, and the interceptor already knows which target fired,")
	fmt.Println("so {TargetFn, CCID} pairs stay distinguishable (Algorithm 1).")

	fmt.Println("\n=== every scheme still distinguishes every context ===")
	for _, scheme := range encoding.AllSchemes() {
		for _, kind := range encoding.AllEncoders() {
			plan, err := encoding.NewPlan(scheme, g, targets)
			if err != nil {
				return err
			}
			coder, err := encoding.NewCoder(kind, g, plan)
			if err != nil {
				return err
			}
			n, collisions := encoding.VerifyDistinguishability(g, coder, 0)
			fmt.Printf("%-12s + %-9s %d contexts, %d collisions\n", scheme, kind, n, len(collisions))
		}
	}

	fmt.Println("\n=== CCIDs and decoding (PCCE) ===")
	plan, err := encoding.NewPlan(encoding.SchemeSlim, g, targets)
	if err != nil {
		return err
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCCE, g, plan)
	if err != nil {
		return err
	}
	root := g.NodeByName("A")
	for _, path := range g.EnumerateContexts(targets, 0) {
		ccid := coder.EncodePath(path)
		target := g.Edge(path[len(path)-1]).To
		decoded, err := coder.Decode(root, target, ccid)
		if err != nil {
			return err
		}
		var labels []string
		for _, s := range decoded {
			labels = append(labels, g.SiteLabel(s))
		}
		fmt.Printf("ccid %#x @ %s decodes to %v\n", ccid, g.Name(target), labels)
	}

	fmt.Println("\n=== the same planners on a SPEC-like graph (Table III) ===")
	b, err := workload.BenchmarkByName("456.hmmer")
	if err != nil {
		return err
	}
	bg, btargets, err := b.Graph()
	if err != nil {
		return err
	}
	fmt.Printf("%s graph: %d functions, %d call sites\n", b.Name, bg.NumNodes(), bg.NumEdges())
	for _, scheme := range encoding.AllSchemes() {
		plan, err := encoding.NewPlan(scheme, bg, btargets)
		if err != nil {
			return err
		}
		rep := encoding.Cost(bg, plan, encoding.EncoderPCC, b.FuncSize())
		fmt.Printf("%-12s %4d sites  -> +%.2f%% binary size\n",
			scheme, rep.InstrumentedSites, rep.SizeIncreasePercent())
	}
	fmt.Println("\n(paper's hmmer row: FCS 18.9%, TCS 5.9%, Slim 2.4%, Incremental 1.2%)")
	return nil
}
