package main

import "testing"

// TestEncodingPlannerExampleRuns keeps the example compiling and
// completing successfully as the library evolves.
func TestEncodingPlannerExampleRuns(t *testing.T) {
	if err := run(); err != nil {
		t.Fatalf("encoding-planner example failed: %v", err)
	}
}
