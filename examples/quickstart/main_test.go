package main

import "testing"

// TestQuickstartRuns keeps the example compiling and completing
// successfully as the library evolves.
func TestQuickstartRuns(t *testing.T) {
	if err := run(); err != nil {
		t.Fatalf("quickstart example failed: %v", err)
	}
}
