// Quickstart: the whole HeapTherapy+ workflow on a small vulnerable
// program, using only the public API.
//
//	go run ./examples/quickstart
//
// The program parses a length field from its input and copies that
// many bytes out of a fixed-size heap buffer — the classic
// attacker-controlled-length overread. The example (1) shows the
// attack leaking a secret natively, (2) generates a patch from that
// one attack input, and (3) shows the patched run leaking nothing,
// all without changing a line of the program.
package main

import (
	"bytes"
	"fmt"
	"os"

	"heaptherapy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A tiny "server": it keeps a session secret on the heap next to a
	// reply buffer, and trusts the request's length field.
	program := heaptherapy.MustLink(&heaptherapy.Program{
		Name: "echo-server",
		Funcs: map[string]*heaptherapy.Func{
			"main": {Body: []heaptherapy.Stmt{
				heaptherapy.Call{Callee: "handle"},
			}},
			"handle": {Body: []heaptherapy.Stmt{
				heaptherapy.Alloc{Dst: "reply", Size: heaptherapy.C(64)},
				heaptherapy.Alloc{Dst: "session", Size: heaptherapy.C(64)},
				heaptherapy.StoreBytes{Base: heaptherapy.V("session"), Data: []byte("session-key=hunter2")},
				heaptherapy.Memset{Dst: heaptherapy.V("reply"), B: heaptherapy.C('.'), N: heaptherapy.C(64)},
				heaptherapy.ReadInput{Dst: "len", N: heaptherapy.C(2)},
				// The bug: len is attacker-controlled and unchecked.
				heaptherapy.Output{Base: heaptherapy.V("reply"), N: heaptherapy.V("len")},
			}},
		},
	})

	sys, err := heaptherapy.New(program, heaptherapy.Options{})
	if err != nil {
		return err
	}

	benign := []byte{64, 0}  // read exactly the reply buffer
	attack := []byte{200, 0} // read 200 bytes: overread into the secret

	fmt.Println("=== 1. the attack, undefended ===")
	res, err := sys.RunNative(attack)
	if err != nil {
		return err
	}
	fmt.Printf("server replied %d bytes: %q\n", len(res.Output), res.Output)
	if bytes.Contains(res.Output, []byte("hunter2")) {
		fmt.Println("--> the session key LEAKED")
	}

	fmt.Println("\n=== 2. offline patch generation (one attack input) ===")
	patches, report, err := sys.PatchCycle(attack)
	if err != nil {
		return err
	}
	if err := report.Write(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\npatch configuration file:")
	if err := patches.WriteConfig(os.Stdout); err != nil {
		return err
	}

	fmt.Println("\n=== 3. the attack, with the patch deployed ===")
	defended, err := sys.RunDefended(attack, patches)
	if err != nil {
		return err
	}
	if defended.Result.Crashed() {
		fmt.Printf("the guard page stopped the overread: %v\n", defended.Result.Fault)
	} else {
		fmt.Printf("server replied %d bytes: %q\n", len(defended.Result.Output), defended.Result.Output)
	}
	if !bytes.Contains(defended.Result.Output, []byte("hunter2")) {
		fmt.Println("--> nothing leaked")
	}
	st := defended.Stats
	fmt.Printf("defense stats: %d allocations intercepted, %d recognized vulnerable, %d guard pages\n",
		st.Allocs, st.PatchedAllocs, st.GuardPages)

	fmt.Println("\n=== 4. benign traffic still works ===")
	nat, err := sys.RunNative(benign)
	if err != nil {
		return err
	}
	def, err := sys.RunDefended(benign, patches)
	if err != nil {
		return err
	}
	fmt.Printf("native:   %q\n", nat.Output)
	fmt.Printf("defended: %q\n", def.Result.Output)
	if bytes.Equal(nat.Output, def.Result.Output) {
		fmt.Println("--> identical: code-less patching changed nothing for legitimate inputs")
	}
	return nil
}
