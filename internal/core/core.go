// Package core wires the HeapTherapy+ pipeline end to end: program
// instrumentation (calling-context encoding), offline attack analysis
// and patch generation, and online defended execution. It is the
// programmatic equivalent of Figure 1's three components and the
// engine behind the public heaptherapy package, the CLI tools, and the
// examples.
package core

import (
	"fmt"

	"heaptherapy/internal/analysis"
	"heaptherapy/internal/defense"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/shadow"
	"heaptherapy/internal/telemetry"
)

// Options selects the encoding configuration. The paper's deployed
// system uses PCC arithmetic with the Incremental plan; both axes stay
// configurable for the evaluation's comparisons.
type Options struct {
	// Scheme is the instrumentation planner (default SchemeIncremental).
	Scheme encoding.Scheme
	// Encoder is the update arithmetic (default EncoderPCC).
	Encoder encoding.EncoderKind
	// QueueQuota bounds the online deferred-free queue (0 = default).
	QueueQuota uint64
	// Family selects the defense policy family for defended runs
	// (default defense.FamilyHT). Offline analysis always runs the
	// shadow engine and is unaffected.
	Family defense.Family
	// MaxSteps bounds each execution (0 = interpreter default).
	MaxSteps uint64
	// Engine selects the execution substrate for every pipeline stage
	// (offline analysis, native baseline, defended runs). The engines
	// are differentially verified bit-identical, so patches generated
	// under one apply under the other.
	Engine prog.Engine
	// TierUp is the compiled engine's promotion threshold in calls
	// before a function is lowered to closure code (0 = default; only
	// consulted when Engine is prog.EngineCompiled).
	TierUp uint64
	// Telemetry, when non-nil, instruments every pipeline stage run
	// through this System: each run binds one scope for its space,
	// allocator, and (where applicable) defense or shadow layer, plus
	// quantum-boundary timing. Nil runs carry zero instrumentation
	// overhead beyond a per-site nil check.
	Telemetry *telemetry.Collector
}

func (o Options) withDefaults() Options {
	if o.Scheme == 0 {
		o.Scheme = encoding.SchemeIncremental
	}
	if o.Encoder == 0 {
		o.Encoder = encoding.EncoderPCC
	}
	return o
}

// System is an instrumented program plus the pipeline around it. The
// instrumentation step is one-time (as in the paper); the resulting
// coder is shared by offline analysis and online defense, which is the
// property that makes offline CCIDs match online allocations.
type System struct {
	opts    Options
	program *prog.Program
	coder   *encoding.Coder
}

// NewSystem instruments a linked program.
func NewSystem(p *prog.Program, opts Options) (*System, error) {
	opts = opts.withDefaults()
	if p.Graph() == nil {
		return nil, fmt.Errorf("core: program %s is not linked", p.Name)
	}
	if len(p.Targets()) == 0 {
		return nil, fmt.Errorf("core: program %s performs no heap allocation", p.Name)
	}
	plan, err := encoding.NewPlan(opts.Scheme, p.Graph(), p.Targets())
	if err != nil {
		return nil, fmt.Errorf("core: planning instrumentation: %w", err)
	}
	coder, err := encoding.NewCoder(opts.Encoder, p.Graph(), plan)
	if err != nil {
		return nil, fmt.Errorf("core: building coder: %w", err)
	}
	return &System{opts: opts, program: p, coder: coder}, nil
}

// Program returns the instrumented program.
func (s *System) Program() *prog.Program { return s.program }

// Coder returns the calling-context coder.
func (s *System) Coder() *encoding.Coder { return s.coder }

// GeneratePatches replays an attack input offline and returns the
// analysis report with generated patches.
func (s *System) GeneratePatches(attackInput []byte) (*analysis.Report, error) {
	a := &analysis.Analyzer{
		Coder:        s.coder,
		MaxSteps:     s.opts.MaxSteps,
		Engine:       s.opts.Engine,
		TierUp:       s.opts.TierUp,
		ShadowConfig: shadow.Config{Telemetry: s.scope()},
	}
	return a.Analyze(s.program, attackInput)
}

// scope binds a fresh telemetry tenant for one pipeline-stage run, or
// nil when the System is untelemetered.
func (s *System) scope() *telemetry.Scope {
	if s.opts.Telemetry == nil {
		return nil
	}
	return s.opts.Telemetry.Scope()
}

// Telemetry returns the System's collector (nil when disabled).
func (s *System) Telemetry() *telemetry.Collector { return s.opts.Telemetry }

// RunNative executes the program with no defense (and no encoding):
// the baseline.
func (s *System) RunNative(input []byte) (*prog.Result, error) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return nil, fmt.Errorf("core: creating space: %w", err)
	}
	tel := s.scope()
	space.SetTelemetry(tel)
	backend, err := prog.NewNativeBackend(space)
	if err != nil {
		return nil, fmt.Errorf("core: creating native backend: %w", err)
	}
	if h := backend.Heap(); h != nil {
		h.SetTelemetry(tel)
	}
	it, err := prog.NewExec(s.program, prog.Config{Backend: backend, MaxSteps: s.opts.MaxSteps, Engine: s.opts.Engine, TierUp: s.opts.TierUp})
	if err != nil {
		return nil, fmt.Errorf("core: building interpreter: %w", err)
	}
	attachQuantumTelemetry(it, backend, tel)
	res, err := it.Run(input)
	if err != nil {
		return nil, fmt.Errorf("core: native run: %w", err)
	}
	return res, nil
}

// DefendedRun is the outcome of a protected execution.
type DefendedRun struct {
	// Result is the program execution result.
	Result *prog.Result
	// Stats is the defense layer's activity.
	Stats defense.Stats
	// HeapErr reports underlying-allocator corruption detected after
	// the run (nil = arena consistent). A defended program whose
	// patched attacks were contained must leave the heap consistent;
	// an UNPATCHED attack may legitimately corrupt chunk metadata, so
	// this is surfaced rather than treated as an execution error.
	HeapErr error
}

// RunDefended executes the program under the Online Defense Generator
// with the given patch configuration.
func (s *System) RunDefended(input []byte, patches *patch.Set) (*DefendedRun, error) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return nil, fmt.Errorf("core: creating space: %w", err)
	}
	tel := s.scope()
	space.SetTelemetry(tel)
	backend, err := defense.NewBackend(space, defense.Config{
		Mode:       defense.ModeFull,
		Family:     s.opts.Family,
		Patches:    patches,
		QueueQuota: s.opts.QueueQuota,
		Telemetry:  tel,
	})
	if err != nil {
		return nil, fmt.Errorf("core: creating defended backend: %w", err)
	}
	it, err := prog.NewExec(s.program, prog.Config{
		Backend:  backend,
		Coder:    s.coder,
		MaxSteps: s.opts.MaxSteps,
		Engine:   s.opts.Engine,
		TierUp:   s.opts.TierUp,
	})
	if err != nil {
		return nil, fmt.Errorf("core: building interpreter: %w", err)
	}
	attachQuantumTelemetry(it, backend, tel)
	res, err := it.Run(input)
	if err != nil {
		return nil, fmt.Errorf("core: defended run: %w", err)
	}
	out := &DefendedRun{Result: res, Stats: backend.Defender().Stats()}
	if h := backend.Defender().Heap(); h != nil {
		out.HeapErr = h.CheckIntegrity()
	}
	return out, nil
}

// PatchCycle is the full workflow of the paper's Figure 1 for one
// attack input: analyze the attack offline, generate patches, and
// return them ready for deployment.
func (s *System) PatchCycle(attackInput []byte) (*patch.Set, *analysis.Report, error) {
	rep, err := s.GeneratePatches(attackInput)
	if err != nil {
		return nil, nil, err
	}
	return rep.Patches, rep, nil
}

// HandleAttacks runs a defense-generation cycle per attack input and
// merges the resulting patches. This is Section IX's answer to
// vulnerabilities exploitable through multiple calling contexts: when
// an attacker develops a new input that exploits a buffer allocated in
// a different context, "our system simply treats it as a new
// vulnerability and starts another defense generation cycle". Reports
// are returned in input order.
func (s *System) HandleAttacks(attackInputs [][]byte) (*patch.Set, []*analysis.Report, error) {
	merged := patch.NewSet()
	reports := make([]*analysis.Report, 0, len(attackInputs))
	for i, input := range attackInputs {
		rep, err := s.GeneratePatches(input)
		if err != nil {
			return nil, nil, fmt.Errorf("core: attack %d: %w", i, err)
		}
		merged.Merge(rep.Patches)
		reports = append(reports, rep)
	}
	return merged, reports, nil
}

// RunDefendedThreads executes one program instance per input, all
// sharing a single defended heap, interleaved deterministically. V is
// thread-local, exactly as in the paper's multithreaded deployments.
func (s *System) RunDefendedThreads(inputs [][]byte, patches *patch.Set) ([]*prog.Result, defense.Stats, error) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return nil, defense.Stats{}, fmt.Errorf("core: creating space: %w", err)
	}
	tel := s.scope()
	space.SetTelemetry(tel)
	backend, err := defense.NewBackend(space, defense.Config{
		Mode:       defense.ModeFull,
		Family:     s.opts.Family,
		Patches:    patches,
		QueueQuota: s.opts.QueueQuota,
		Telemetry:  tel,
	})
	if err != nil {
		return nil, defense.Stats{}, fmt.Errorf("core: creating defended backend: %w", err)
	}
	results, err := prog.RunThreads(s.program, prog.Config{
		Backend:  backend,
		Coder:    s.coder,
		MaxSteps: s.opts.MaxSteps,
		Engine:   s.opts.Engine,
		TierUp:   s.opts.TierUp,
	}, inputs, prog.DefaultQuantum)
	if err != nil {
		return nil, defense.Stats{}, fmt.Errorf("core: defended threads: %w", err)
	}
	return results, backend.Defender().Stats(), nil
}

// GeneratePatchesPartitioned is the quota-partitioned analysis of
// Section IX: the attack replays n times, each deferring frees for one
// CCID subspace, bounding per-run memory to ~1/n of the freed bytes.
func (s *System) GeneratePatchesPartitioned(attackInput []byte, n int) (*analysis.Report, error) {
	a := &analysis.Analyzer{
		Coder:        s.coder,
		MaxSteps:     s.opts.MaxSteps,
		Engine:       s.opts.Engine,
		TierUp:       s.opts.TierUp,
		ShadowConfig: shadow.Config{Telemetry: s.scope()},
	}
	return a.AnalyzePartitioned(s.program, attackInput, n)
}

// attachQuantumTelemetry samples the backend's virtual-cycle
// accumulator at quantum boundaries (every 256 statements), recording
// one CtrQuanta tick and a HistQuantumCycles observation per quantum.
// A nil scope leaves the hook seam untouched.
func attachQuantumTelemetry(it prog.Exec, backend prog.HeapBackend, tel *telemetry.Scope) {
	if tel == nil {
		return
	}
	const every = 256
	var last uint64
	prog.SetQuantumHook(it, every, func() {
		now := backend.Cycles()
		if now < last {
			last = now
			return
		}
		tel.Inc(telemetry.CtrQuanta)
		tel.Observe(telemetry.HistQuantumCycles, now-last)
		last = now
	})
}
