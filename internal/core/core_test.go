package core

import (
	"strings"
	"testing"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

// leakProgram outputs a buffer without initializing it when the input
// flag is zero.
func leakProgram() *prog.Program {
	return prog.MustLink(&prog.Program{
		Name: "leaker",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Alloc{Dst: "old", Size: prog.C(64)},
				prog.StoreBytes{Base: prog.V("old"), Data: []byte("residual secret!")},
				prog.FreeStmt{Ptr: prog.V("old")},
				prog.Alloc{Dst: "buf", Size: prog.C(64)},
				prog.ReadInput{Dst: "f", N: prog.C(1)},
				prog.If{Cond: prog.Ne(prog.Bin{Op: prog.OpAnd, A: prog.V("f"), B: prog.C(0xFF)}, prog.C(0)), Then: []prog.Stmt{
					prog.Memset{Dst: prog.V("buf"), B: prog.C('x'), N: prog.C(64)},
				}},
				prog.Output{Base: prog.V("buf"), N: prog.C(64)},
			}},
		},
	})
}

func TestSystemDefaults(t *testing.T) {
	sys, err := NewSystem(leakProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Coder().Kind() != encoding.EncoderPCC {
		t.Errorf("default encoder = %v, want PCC", sys.Coder().Kind())
	}
	if sys.Coder().Plan().Scheme != encoding.SchemeIncremental {
		t.Errorf("default scheme = %v, want Incremental", sys.Coder().Plan().Scheme)
	}
}

func TestSystemRejectsUnlinked(t *testing.T) {
	p := &prog.Program{Name: "raw", Funcs: map[string]*prog.Func{"main": {}}}
	if _, err := NewSystem(p, Options{}); err == nil {
		t.Error("NewSystem accepted unlinked program")
	}
}

func TestSystemRejectsAllocationFree(t *testing.T) {
	p := prog.MustLink(&prog.Program{
		Name:  "pure",
		Funcs: map[string]*prog.Func{"main": {Body: []prog.Stmt{prog.Nop{}}}},
	})
	if _, err := NewSystem(p, Options{}); err == nil || !strings.Contains(err.Error(), "allocation") {
		t.Errorf("err = %v, want no-allocation error", err)
	}
}

func TestEndToEndPatchCycle(t *testing.T) {
	sys, err := NewSystem(leakProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Attack leaks natively.
	res, err := sys.RunNative([]byte{0})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Output), "residual secret!") {
		t.Fatalf("native attack does not leak: %q", res.Output)
	}

	// One call generates deployable patches.
	patches, rep, err := sys.PatchCycle([]byte{0})
	if err != nil {
		t.Fatal(err)
	}
	if patches.Len() == 0 {
		t.Fatalf("no patches; warnings: %v", rep.Warnings)
	}

	// The defended run leaks only zeros.
	run, err := sys.RunDefended([]byte{0}, patches)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(run.Result.Output), "residual") {
		t.Errorf("defended run still leaks: %q", run.Result.Output)
	}
	for i, b := range run.Result.Output {
		if b != 0 {
			t.Fatalf("defended output byte %d = %#x, want 0", i, b)
		}
	}
	if run.Stats.ZeroFills == 0 {
		t.Error("defense applied no zero fill")
	}

	// Benign path unchanged.
	nat, err := sys.RunNative([]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	def, err := sys.RunDefended([]byte{1}, patches)
	if err != nil {
		t.Fatal(err)
	}
	if string(nat.Output) != string(def.Result.Output) {
		t.Errorf("benign output changed: %q vs %q", nat.Output, def.Result.Output)
	}
}

func TestRunDefendedWithEmptyPatchSet(t *testing.T) {
	sys, err := NewSystem(leakProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.RunDefended([]byte{1}, patch.NewSet())
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.Crashed() {
		t.Fatalf("defended run with no patches crashed: %v", run.Result.Fault)
	}
	if run.Stats.PatchedAllocs != 0 {
		t.Error("empty patch set matched allocations")
	}
	if run.Stats.Lookups == 0 {
		t.Error("full mode performed no lookups")
	}
}

func TestRunDefendedWithNilPatches(t *testing.T) {
	sys, err := NewSystem(leakProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunDefended([]byte{1}, nil); err != nil {
		t.Fatalf("nil patch set: %v", err)
	}
}

func TestOptionsPropagate(t *testing.T) {
	sys, err := NewSystem(leakProgram(), Options{
		Scheme:  encoding.SchemeFCS,
		Encoder: encoding.EncoderPCCE,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Coder().Kind() != encoding.EncoderPCCE || sys.Coder().Plan().Scheme != encoding.SchemeFCS {
		t.Error("options not propagated to coder")
	}
}
