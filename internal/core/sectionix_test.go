package core

import (
	"fmt"
	"testing"

	"heaptherapy/internal/analysis"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/shadow"
)

// analyzerWithQuota builds an analyzer sharing the system's coder but
// with a custom freed-block queue quota.
func analyzerWithQuota(sys *System, quota uint64) *analysis.Analyzer {
	return &analysis.Analyzer{
		Coder:        sys.Coder(),
		ShadowConfig: shadow.Config{QueueQuota: quota},
	}
}

// multiContextProgram allocates its vulnerable buffer through one of
// two calling contexts, selected by the first input byte, then
// overreads it into an adjacent secret.
func multiContextProgram() *prog.Program {
	leakBody := []prog.Stmt{
		prog.Alloc{Dst: "buf", Size: prog.C(32)},
		prog.Return{E: prog.V("buf")},
	}
	return prog.MustLink(&prog.Program{
		Name: "two-paths",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.ReadInput{Dst: "which", N: prog.C(1)},
				prog.If{Cond: prog.Eq(prog.And(prog.V("which"), prog.C(0xFF)), prog.C(1)), Then: []prog.Stmt{
					prog.Call{Dst: "buf", Callee: "path_a"},
				}, Else: []prog.Stmt{
					prog.Call{Dst: "buf", Callee: "path_b"},
				}},
				prog.Alloc{Dst: "secret", Size: prog.C(32)},
				prog.StoreBytes{Base: prog.V("secret"), Data: []byte("classified-blob!")},
				prog.ReadInput{Dst: "n", N: prog.C(1)},
				prog.Output{Base: prog.V("buf"), N: prog.And(prog.V("n"), prog.C(0xFF))},
			}},
			"path_a": {Body: leakBody},
			"path_b": {Body: leakBody},
		},
	})
}

// TestHandleAttacksMultiContext reproduces the Section IX scenario: an
// attacker develops a second exploit through a different calling
// context; each attack input triggers its own defense-generation
// cycle and the merged patch set covers both.
func TestHandleAttacksMultiContext(t *testing.T) {
	p := multiContextProgram()
	sys, err := NewSystem(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	attackA := []byte{1, 200}
	attackB := []byte{2, 200}

	// A patch generated from attack A alone does not recognize the
	// buffer allocated through path B.
	patchesA, _, err := sys.PatchCycle(attackA)
	if err != nil {
		t.Fatal(err)
	}
	if patchesA.Len() != 1 {
		t.Fatalf("attack A patches = %d, want 1", patchesA.Len())
	}
	runB, err := sys.RunDefended(attackB, patchesA)
	if err != nil {
		t.Fatal(err)
	}
	if runB.Stats.PatchedAllocs != 0 {
		t.Fatal("path-A patch matched a path-B allocation; contexts not distinguished")
	}

	// HandleAttacks merges a cycle per input.
	merged, reports, err := sys.HandleAttacks([][]byte{attackA, attackB})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(reports))
	}
	if merged.Len() != 2 {
		t.Fatalf("merged patches = %d, want 2 (one per context)", merged.Len())
	}
	for _, attack := range [][]byte{attackA, attackB} {
		run, err := sys.RunDefended(attack, merged)
		if err != nil {
			t.Fatal(err)
		}
		if run.Stats.PatchedAllocs == 0 {
			t.Errorf("merged patches did not match attack %v's allocation", attack[:1])
		}
	}
}

// uafFloodProgram frees one victim buffer and many filler buffers
// (each from its own call site, hence its own CCID), then reads
// through the dangling victim pointer. The fillers flood the
// freed-block queue.
func uafFloodProgram(fillers int) *prog.Program {
	body := []prog.Stmt{
		prog.Call{Dst: "victim", Callee: "alloc_victim"},
	}
	for i := 0; i < fillers; i++ {
		body = append(body, prog.Alloc{Dst: fmt.Sprintf("f%d", i), Size: prog.C(1000)})
	}
	body = append(body, prog.FreeStmt{Ptr: prog.V("victim")})
	for i := 0; i < fillers; i++ {
		body = append(body, prog.FreeStmt{Ptr: prog.V(fmt.Sprintf("f%d", i))})
	}
	body = append(body,
		prog.Load{Dst: "stale", Base: prog.V("victim"), N: prog.C(8)},
		prog.OutputVar{Src: "stale"},
	)
	return prog.MustLink(&prog.Program{
		Name: "uaf-flood",
		Funcs: map[string]*prog.Func{
			"main": {Body: body},
			"alloc_victim": {Body: []prog.Stmt{
				prog.Alloc{Dst: "p", Size: prog.C(1000)},
				prog.Return{E: prog.V("p")},
			}},
		},
	})
}

// TestPartitionedAnalysisRecoversEvictedUAF reproduces Section IX's
// quota discussion: with a queue quota far below the freed bytes, a
// single analysis run evicts the victim before the dangling access and
// misses the UAF; partitioned replays (1/N of frees deferred per run)
// keep the victim parked in one of the runs and recover the patch.
func TestPartitionedAnalysisRecoversEvictedUAF(t *testing.T) {
	p := uafFloodProgram(48)
	sys, err := NewSystem(p, Options{})
	if err != nil {
		t.Fatal(err)
	}

	hasUAF := func(set *patch.Set) bool {
		for _, pp := range set.Patches() {
			if pp.Types.Has(patch.TypeUseAfterFree) {
				return true
			}
		}
		return false
	}

	// Single run with a quota of ~4 buffers: the victim is evicted by
	// the 48 filler frees before the stale load.
	a := analyzerWithQuota(sys, 4*1000)
	single, err := a.Analyze(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hasUAF(single.Patches) {
		t.Fatalf("single run detected the UAF despite quota exhaustion; patches: %v",
			single.Patches.Patches())
	}

	// Partitioned into 16 subspaces under the same quota: the run
	// deferring the victim's subspace parks only ~1/16 of the frees,
	// keeping the victim resident.
	partitioned, err := a.AnalyzePartitioned(p, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !hasUAF(partitioned.Patches) {
		t.Fatalf("partitioned analysis missed the UAF; warnings: %v", partitioned.Warnings)
	}
}

func TestPartitionedAnalysisValidation(t *testing.T) {
	p := uafFloodProgram(2)
	sys, err := NewSystem(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := analyzerWithQuota(sys, 0)
	if _, err := a.AnalyzePartitioned(p, nil, 0); err == nil {
		t.Error("partition count 0 accepted")
	}
	// n=1 must behave exactly like Analyze.
	r1, err := a.AnalyzePartitioned(p, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Analyze(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Patches.Len() != r2.Patches.Len() {
		t.Errorf("n=1 partitioned (%d patches) differs from plain analysis (%d)",
			r1.Patches.Len(), r2.Patches.Len())
	}
}
