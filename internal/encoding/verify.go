package encoding

import (
	"fmt"

	"heaptherapy/internal/callgraph"
)

// Collision describes two distinct calling contexts that received the
// same CCID under a coder.
type Collision struct {
	// Target is the function both contexts invoke.
	Target callgraph.NodeID
	// CCID is the shared encoding.
	CCID uint64
	// PathA and PathB are the colliding contexts (site IDs).
	PathA, PathB []callgraph.SiteID
}

func (c Collision) String() string {
	return fmt.Sprintf("target %d: ccid %#x encodes %v and %v", c.Target, c.CCID, c.PathA, c.PathB)
}

// VerifyDistinguishability enumerates up to limit acyclic calling
// contexts of the plan's targets and checks the paper's correctness
// property: distinct contexts of the same target function must receive
// distinct {TargetFn, CCID} pairs. (For FCS/TCS/Slim the CCID alone
// must distinguish same-target contexts; Incremental is defined only up
// to the pair, which is what interception observes.)
//
// Contexts that traverse a DFS back edge are skipped for additive
// (precise) encoders: those encoders deliberately collapse recursive
// contexts onto their acyclic skeleton, exactly as PCCE's recursion
// handling does, so uniqueness is only promised for back-edge-free
// paths. PCC contexts are all checked — its hash covers recursion.
//
// It returns the contexts examined and any collisions found.
func VerifyDistinguishability(g *callgraph.Graph, coder *Coder, limit int) (int, []Collision) {
	paths := g.EnumerateContexts(coder.Plan().Targets, limit)
	type key struct {
		target callgraph.NodeID
		ccid   uint64
	}
	seen := make(map[key][]callgraph.SiteID, len(paths))
	var collisions []Collision
	examined := 0
	for _, p := range paths {
		if len(p) == 0 {
			continue
		}
		if coder.Precise() && coder.TraversesBackEdge(p) {
			continue
		}
		examined++
		target := g.Edge(p[len(p)-1]).To
		ccid := coder.EncodePath(p)
		k := key{target: target, ccid: ccid}
		if prev, ok := seen[k]; ok {
			if !samePath(prev, p) {
				collisions = append(collisions, Collision{
					Target: target, CCID: ccid, PathA: prev, PathB: p,
				})
			}
			continue
		}
		seen[k] = p
	}
	return examined, collisions
}

func samePath(a, b []callgraph.SiteID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
