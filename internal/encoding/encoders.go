package encoding

import (
	"errors"
	"fmt"
	"strings"

	"heaptherapy/internal/callgraph"
)

// EncoderKind selects the arithmetic used at instrumented call sites.
type EncoderKind uint8

// Encoder kinds.
const (
	// EncoderPCC is probabilistic calling context: V = 3*t + c with a
	// per-site hash constant. No decoding; collisions are possible but
	// astronomically unlikely with 64-bit values.
	EncoderPCC EncoderKind = iota + 1
	// EncoderPCCE is precise calling-context encoding: V = t + c with
	// constants from Ball-Larus path numbering over the instrumented,
	// target-reaching subgraph. Supports decoding.
	EncoderPCCE
	// EncoderDeltaPath is a DeltaPath-style additive encoder: PCCE
	// numbering plus per-target disjoint ID ranges, so the target
	// function is recoverable from the CCID's high bits when the final
	// edge into the target is instrumented.
	EncoderDeltaPath
)

func (k EncoderKind) String() string {
	switch k {
	case EncoderPCC:
		return "PCC"
	case EncoderPCCE:
		return "PCCE"
	case EncoderDeltaPath:
		return "DeltaPath"
	default:
		return fmt.Sprintf("EncoderKind(%d)", uint8(k))
	}
}

// AllEncoders lists the encoder kinds.
func AllEncoders() []EncoderKind {
	return []EncoderKind{EncoderPCC, EncoderPCCE, EncoderDeltaPath}
}

// ParseEncoder parses an encoder name (as printed by String).
func ParseEncoder(s string) (EncoderKind, error) {
	names := make([]string, 0, len(AllEncoders()))
	for _, k := range AllEncoders() {
		if k.String() == s {
			return k, nil
		}
		names = append(names, k.String())
	}
	return 0, fmt.Errorf("encoding: unknown encoder %q (valid: %s)", s, strings.Join(names, ", "))
}

// ErrNoDecode is returned when an encoder cannot decode CCIDs (PCC).
var ErrNoDecode = errors.New("encoding: encoder does not support decoding")

// deltaTargetShift positions the per-target base in DeltaPath CCIDs.
const deltaTargetShift = 48

// Coder binds an encoder kind to a plan over a concrete graph: it holds
// the per-site constants the instrumentation pass would embed in the
// binary, and implements the V-update arithmetic the interpreter
// executes at instrumented sites.
type Coder struct {
	kind EncoderKind
	g    *callgraph.Graph
	plan *Plan

	consts []uint64 // per site; meaningful only for instrumented sites

	// Additive-encoder state for decoding, all held densely (indexed by
	// NodeID or SiteID) so lookups on hot paths are array loads.
	numEnc     []uint64             // contexts encodable from each node
	dagOut     [][]callgraph.SiteID // target-reaching non-back out-edges
	targetIdx  []int32              // node → index in plan.Targets, -1 if not a target
	reachByTgt [][]bool             // per-target node reachability, by target index
	isTarget   []bool               // target set, by node
	targetBase []uint64             // DeltaPath per-target base, by node
	backEdges  []bool               // DFS back edges by site (additive only)
}

// Precise reports whether the encoder guarantees collision-free CCIDs
// for acyclic contexts (additive encoders). PCC is probabilistic: its
// 64-bit hash makes collisions astronomically unlikely but possible, so
// it reports false.
func (c *Coder) Precise() bool { return c.kind != EncoderPCC }

// TraversesBackEdge reports whether a context path crosses a DFS back
// edge. Additive encoders assign back edges constant 0 (mirroring
// PCCE's recursion handling), so such contexts intentionally collapse
// onto their acyclic skeleton and precision is only guaranteed for
// paths that avoid them. For PCC (which carries no back-edge set) this
// always reports false: the hash distinguishes recursive contexts too.
func (c *Coder) TraversesBackEdge(path []callgraph.SiteID) bool {
	if c.backEdges == nil {
		return false
	}
	for _, s := range path {
		if s >= 0 && int(s) < len(c.backEdges) && c.backEdges[s] {
			return true
		}
	}
	return false
}

// NewCoder builds the per-site constants for kind under plan.
func NewCoder(kind EncoderKind, g *callgraph.Graph, plan *Plan) (*Coder, error) {
	c := &Coder{
		kind:   kind,
		g:      g,
		plan:   plan,
		consts: make([]uint64, g.NumEdges()),
	}
	switch kind {
	case EncoderPCC:
		for s := range c.consts {
			c.consts[s] = splitmix64(uint64(s) + 0x9E3779B97F4A7C15)
		}
	case EncoderPCCE, EncoderDeltaPath:
		if err := c.numberAdditive(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("encoding: unknown encoder kind %v", kind)
	}
	return c, nil
}

// Kind returns the encoder kind.
func (c *Coder) Kind() EncoderKind { return c.kind }

// Plan returns the bound instrumentation plan.
func (c *Coder) Plan() *Plan { return c.plan }

// Instrumented reports whether site s updates V at runtime.
func (c *Coder) Instrumented(s callgraph.SiteID) bool { return c.plan.Instrumented(s) }

// SiteConst returns the constant embedded at site s.
func (c *Coder) SiteConst(s callgraph.SiteID) uint64 { return c.consts[s] }

// SiteUpdate is the compiled form of one site's V-update: everything a
// code generator needs to emit the update arithmetic without consulting
// the plan or the constant table again. The update is
//
//	V = t + Const        (additive encoders)
//	V = 3*t + Const      (Mul3, i.e. PCC)
//
// for instrumented sites, and the identity otherwise. This is exactly
// the per-site delta an instrumentation pass embeds in the binary, so a
// bytecode compiler can resolve it once at compile time instead of
// paying a plan-set lookup per executed call.
type SiteUpdate struct {
	// Instrumented reports whether the site updates V at all.
	Instrumented bool
	// Mul3 selects the PCC arithmetic V = 3*t + Const; additive
	// encoders use V = t + Const.
	Mul3 bool
	// Const is the per-site constant (meaningful only if Instrumented).
	Const uint64
}

// Apply computes the V update on a prologue value t.
func (u SiteUpdate) Apply(t uint64) uint64 {
	if !u.Instrumented {
		return t
	}
	if u.Mul3 {
		return 3*t + u.Const
	}
	return t + u.Const
}

// CompileSite returns the precomputed update record for site s. It is
// pure per site: the record never changes after the Coder is built, so
// cached copies (bytecode operands, inline caches) stay valid for the
// Coder's lifetime.
func (c *Coder) CompileSite(s callgraph.SiteID) SiteUpdate {
	if !c.plan.Instrumented(s) {
		return SiteUpdate{}
	}
	return SiteUpdate{Instrumented: true, Mul3: c.kind == EncoderPCC, Const: c.consts[s]}
}

// Update computes the V value for a call through site s given the
// caller's prologue value t. For uninstrumented sites V is unchanged.
func (c *Coder) Update(t uint64, s callgraph.SiteID) uint64 {
	if !c.plan.Instrumented(s) {
		return t
	}
	if c.kind == EncoderPCC {
		return 3*t + c.consts[s]
	}
	return t + c.consts[s]
}

// EncodePath folds Update over a call path (a slice of site IDs from
// the root to the target), yielding the CCID observed at the target
// invocation. Thanks to the save/restore discipline this equals the
// runtime V exactly.
func (c *Coder) EncodePath(path []callgraph.SiteID) uint64 {
	var v uint64
	for _, s := range path {
		v = c.Update(v, s)
	}
	return v
}

// numberAdditive computes Ball-Larus-style constants over the
// instrumented, target-reaching subgraph.
//
// Correctness sketch (also exercised by property tests): define
// numEnc(v) as an upper bound on CCID offsets of contexts from v. At a
// node, the planner guarantees that edges sharing a reachable target
// are either all instrumented (branching/true-branching node) or the
// node has exactly one edge reaching that target (pruned). Instrumented
// edges receive cumulative offsets, so same-target paths through
// different edges land in disjoint ranges; pruned edges contribute 0,
// and any two paths diverging there lead to different targets, which
// {TargetFn, CCID} pairs distinguish.
//
// Back edges (recursion) receive constant 0 and are excluded from
// numbering, mirroring PCCE's special handling of recursion: recursive
// contexts collapse onto their acyclic skeleton.
func (c *Coder) numberAdditive() error {
	g := c.g
	reaches := g.ReachesTargets(c.plan.Targets)
	c.isTarget = make([]bool, g.NumNodes())
	c.targetIdx = make([]int32, g.NumNodes())
	for i := range c.targetIdx {
		c.targetIdx[i] = -1
	}
	for i, t := range c.plan.Targets {
		c.isTarget[t] = true
		c.targetIdx[t] = int32(i)
	}

	c.backEdges = c.findBackEdges()

	// DeltaPath: per-target bases occupy disjoint high-bit ranges.
	if c.kind == EncoderDeltaPath {
		c.targetBase = make([]uint64, g.NumNodes())
		for i, t := range c.plan.Targets {
			c.targetBase[t] = uint64(i) << deltaTargetShift
		}
	}

	back := c.backEdges

	// Build the target-reaching DAG adjacency and a reverse topological
	// order over it.
	n := g.NumNodes()
	c.dagOut = make([][]callgraph.SiteID, n)
	indeg := make([]int, n)
	for s := 0; s < g.NumEdges(); s++ {
		sid := callgraph.SiteID(s)
		e := g.Edge(sid)
		if back[sid] || !reaches[e.To] {
			continue
		}
		// Contexts end at the target invocation; edges out of targets
		// are irrelevant to numbering.
		if c.isTarget[e.From] {
			continue
		}
		c.dagOut[e.From] = append(c.dagOut[e.From], sid)
		indeg[e.To]++
	}
	topo := make([]callgraph.NodeID, 0, n)
	queue := make([]callgraph.NodeID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, callgraph.NodeID(v))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		topo = append(topo, v)
		for _, s := range c.dagOut[v] {
			to := g.Edge(s).To
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(topo) != n {
		return fmt.Errorf("encoding: internal: DAG topological sort visited %d of %d nodes", len(topo), n)
	}

	// Number in reverse topological order.
	c.numEnc = make([]uint64, n)
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		if c.isTarget[v] {
			c.numEnc[v] = 1
			continue
		}
		var acc, maxUninstr uint64
		for _, s := range c.dagOut[v] {
			w := g.Edge(s).To
			sub := c.numEnc[w]
			if c.plan.Instrumented(s) {
				c.consts[s] = acc
				if c.kind == EncoderDeltaPath && c.isTarget[w] {
					c.consts[s] += c.targetBase[w]
				}
				acc += sub
			} else if sub > maxUninstr {
				maxUninstr = sub
			}
		}
		c.numEnc[v] = acc
		if maxUninstr > c.numEnc[v] {
			c.numEnc[v] = maxUninstr
		}
	}

	// Per-target reachability, used by Decode to disambiguate pruned
	// edges.
	c.reachByTgt = make([][]bool, len(c.plan.Targets))
	for i, t := range c.plan.Targets {
		c.reachByTgt[i] = g.ReachesTargets([]callgraph.NodeID{t})
	}
	return nil
}

// findBackEdges returns the DFS back edges, densely by SiteID.
func (c *Coder) findBackEdges() []bool {
	g := c.g
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, g.NumNodes())
	back := make([]bool, g.NumEdges())

	type frame struct {
		node callgraph.NodeID
		next int
	}
	visit := func(root callgraph.NodeID) {
		if color[root] != white {
			return
		}
		stack := []frame{{node: root}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			out := g.OutSites(f.node)
			if f.next >= len(out) {
				color[f.node] = black
				stack = stack[:len(stack)-1]
				continue
			}
			s := out[f.next]
			f.next++
			to := g.Edge(s).To
			switch color[to] {
			case white:
				color[to] = gray
				stack = append(stack, frame{node: to})
			case gray:
				back[s] = true
			}
		}
	}
	for _, r := range g.Roots() {
		visit(r)
	}
	for v := 0; v < g.NumNodes(); v++ {
		visit(callgraph.NodeID(v))
	}
	return back
}

// TargetOf recovers the target function from a DeltaPath CCID's
// per-target base range — the feature that lets DeltaPath dispatch on
// the CCID alone. It reports false for other encoders, for CCIDs whose
// final edge into the target was pruned (the base never added), and
// for out-of-range values.
func (c *Coder) TargetOf(ccid uint64) (callgraph.NodeID, bool) {
	if c.kind != EncoderDeltaPath {
		return 0, false
	}
	idx := int(ccid >> deltaTargetShift)
	if idx >= len(c.plan.Targets) {
		return 0, false
	}
	return c.plan.Targets[idx], true
}

// Decode reconstructs the call path (site IDs) for a CCID observed at
// target, starting from root. Only additive encoders support decoding;
// PCC returns ErrNoDecode, matching the paper's characterization.
func (c *Coder) Decode(root, target callgraph.NodeID, ccid uint64) ([]callgraph.SiteID, error) {
	if c.kind == EncoderPCC {
		return nil, ErrNoDecode
	}
	if target < 0 || int(target) >= len(c.targetIdx) || c.targetIdx[target] < 0 {
		return nil, fmt.Errorf("encoding: %v is not a target function", target)
	}
	reach := c.reachByTgt[c.targetIdx[target]]
	if c.kind == EncoderDeltaPath {
		// Strip the per-target base if the final edge carried it; the
		// base may be absent when that edge is uninstrumented.
		if base := c.targetBase[target]; ccid >= base {
			ccid -= base
		}
	}
	var path []callgraph.SiteID
	cur := root
	remaining := ccid
	for steps := 0; cur != target; steps++ {
		if steps > c.g.NumNodes() {
			return nil, fmt.Errorf("encoding: decode exceeded maximum path length")
		}
		var chosen callgraph.SiteID = -1
		var chosenConst uint64
		candidates := 0
		for _, s := range c.dagOut[cur] {
			w := c.g.Edge(s).To
			if !reach[w] {
				continue
			}
			lo := uint64(0)
			if c.plan.Instrumented(s) {
				lo = c.consts[s]
				if c.kind == EncoderDeltaPath && c.isTarget[w] {
					// Interval comparison is on the numbering component.
					lo -= c.targetBase[w]
				}
			}
			hi := lo + c.numEnc[w]
			if remaining >= lo && remaining < hi {
				candidates++
				chosen = s
				chosenConst = lo
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("encoding: CCID %#x does not decode from %s", ccid, c.g.Name(root))
		}
		if candidates > 1 {
			return nil, fmt.Errorf("encoding: CCID %#x is ambiguous at %s under plan %s", ccid, c.g.Name(cur), c.plan.Scheme)
		}
		path = append(path, chosen)
		remaining -= chosenConst
		cur = c.g.Edge(chosen).To
	}
	if remaining != 0 {
		return nil, fmt.Errorf("encoding: CCID %#x has residue %d after decoding", ccid, remaining)
	}
	return path, nil
}

// splitmix64 is the SplitMix64 finalizer, used for PCC site constants.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
