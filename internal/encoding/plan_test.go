package encoding

import (
	"reflect"
	"testing"

	"heaptherapy/internal/callgraph"
)

func mustPlan(t *testing.T, scheme Scheme, g *callgraph.Graph, targets []callgraph.NodeID) *Plan {
	t.Helper()
	p, err := NewPlan(scheme, g, targets)
	if err != nil {
		t.Fatalf("NewPlan(%v): %v", scheme, err)
	}
	return p
}

// TestFigure2Plans locks in the exact instrumentation sets the paper
// derives for its Figure 2 example graph.
func TestFigure2Plans(t *testing.T) {
	g, targets := callgraph.Figure2()

	cases := []struct {
		scheme Scheme
		want   []string
	}{
		{SchemeFCS, []string{
			"A->B#0", "A->C#0", "B->T1#0", "C->E#0", "C->F#0",
			"D->H#0", "E->T2#0", "F->T1#0", "F->T2#0", "H->I#0",
		}},
		{SchemeTCS, []string{
			"A->B#0", "A->C#0", "B->T1#0", "C->E#0", "C->F#0",
			"E->T2#0", "F->T1#0", "F->T2#0",
		}},
		{SchemeSlim, []string{
			"A->B#0", "A->C#0", "C->E#0", "C->F#0", "F->T1#0", "F->T2#0",
		}},
		{SchemeIncremental, []string{
			"A->B#0", "A->C#0", "C->E#0", "C->F#0",
		}},
	}
	for _, c := range cases {
		t.Run(c.scheme.String(), func(t *testing.T) {
			p := mustPlan(t, c.scheme, g, targets)
			got := p.SiteLabels(g)
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("%v plan = %v, want %v", c.scheme, got, c.want)
			}
		})
	}
}

// TestPlanMonotonicity checks FCS ⊇ TCS ⊇ Slim ⊇ Incremental on random
// graphs: each optimization only removes instrumentation.
func TestPlanMonotonicity(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g, targets, err := callgraph.Generate(callgraph.GenConfig{
			Funcs: 120, Layers: 6, FanOut: 2.5,
			Targets:         []string{"malloc", "calloc", "memalign"},
			AllocCallerFrac: 0.25, DupSiteFrac: 0.15, BackEdgeFrac: 0.05,
			Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		var prev *Plan
		for _, scheme := range AllSchemes() {
			p := mustPlan(t, scheme, g, targets)
			if prev != nil {
				for _, s := range p.SiteIDs() {
					if !prev.Instrumented(s) {
						t.Errorf("seed %d: %v instruments %s but %v does not",
							seed, scheme, g.SiteLabel(s), prev.Scheme)
					}
				}
				if p.NumSites() > prev.NumSites() {
					t.Errorf("seed %d: %v has %d sites > %v's %d",
						seed, scheme, p.NumSites(), prev.Scheme, prev.NumSites())
				}
			}
			prev = p
		}
	}
}

func TestPlanRequiresTargets(t *testing.T) {
	g, _ := callgraph.Figure2()
	if _, err := NewPlan(SchemeTCS, g, nil); err == nil {
		t.Error("NewPlan with no targets succeeded")
	}
}

func TestSchemeStringRoundTrip(t *testing.T) {
	for _, s := range AllSchemes() {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("ParseScheme(bogus) succeeded")
	}
}

// TestIncrementalKeepsTrueBranching builds a graph with a true
// branching node for a single target and verifies its sites stay.
func TestIncrementalKeepsTrueBranching(t *testing.T) {
	b := callgraph.NewBuilder()
	b.AddCall("main", "A")
	b.AddCall("main", "B")
	b.AddCall("A", "malloc")
	b.AddCall("B", "malloc")
	g := b.Build()
	targets := []callgraph.NodeID{g.NodeByName("malloc")}
	p := mustPlan(t, SchemeIncremental, g, targets)
	want := []string{"main->A#0", "main->B#0"}
	if got := p.SiteLabels(g); !reflect.DeepEqual(got, want) {
		t.Errorf("Incremental plan = %v, want %v", got, want)
	}
}

// TestIncrementalPrunesFalseBranching: a node whose two edges reach
// different targets needs no instrumentation.
func TestIncrementalPrunesFalseBranching(t *testing.T) {
	b := callgraph.NewBuilder()
	b.AddCall("main", "malloc")
	b.AddCall("main", "calloc")
	g := b.Build()
	targets := []callgraph.NodeID{g.NodeByName("malloc"), g.NodeByName("calloc")}
	p := mustPlan(t, SchemeIncremental, g, targets)
	if p.NumSites() != 0 {
		t.Errorf("Incremental plan = %v, want empty (false branching)", p.SiteLabels(g))
	}
	// Slim, by contrast, must keep both: main has two target-reaching
	// edges and is a branching node under its coarser definition.
	slim := mustPlan(t, SchemeSlim, g, targets)
	if slim.NumSites() != 2 {
		t.Errorf("Slim plan = %v, want both sites", slim.SiteLabels(g))
	}
}

// TestSlimPrunesLinearChain: a chain main->a->b->malloc has no
// branching at all, so Slim needs zero instrumentation.
func TestSlimPrunesLinearChain(t *testing.T) {
	b := callgraph.NewBuilder()
	b.AddCall("main", "a")
	b.AddCall("a", "b")
	b.AddCall("b", "malloc")
	g := b.Build()
	targets := []callgraph.NodeID{g.NodeByName("malloc")}
	p := mustPlan(t, SchemeSlim, g, targets)
	if p.NumSites() != 0 {
		t.Errorf("Slim plan on chain = %v, want empty", p.SiteLabels(g))
	}
	tcs := mustPlan(t, SchemeTCS, g, targets)
	if tcs.NumSites() != 3 {
		t.Errorf("TCS plan on chain has %d sites, want 3", tcs.NumSites())
	}
}

// TestIncrementalHandlesRecursion verifies Algorithm 1 terminates and
// produces a sane set on cyclic graphs (the visited check in the BFS).
func TestIncrementalHandlesRecursion(t *testing.T) {
	b := callgraph.NewBuilder()
	b.AddCall("main", "A")
	b.AddCall("A", "B")
	b.AddCall("B", "A") // cycle
	b.AddCall("A", "malloc")
	b.AddCall("B", "malloc")
	g := b.Build()
	targets := []callgraph.NodeID{g.NodeByName("malloc")}
	p := mustPlan(t, SchemeIncremental, g, targets)
	// A has two malloc-reaching out edges (A->B via B->malloc, and
	// A->malloc): true branching. B has B->A and B->malloc: also two.
	if p.NumSites() != 4 {
		t.Errorf("Incremental on recursive graph = %v, want 4 sites", p.SiteLabels(g))
	}
}

func TestCostReportOrdering(t *testing.T) {
	g, targets, err := callgraph.Generate(callgraph.GenConfig{
		Funcs: 200, Layers: 7, FanOut: 3,
		Targets:         []string{"malloc", "calloc"},
		AllocCallerFrac: 0.2, DupSiteFrac: 0.2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	var prevScheme Scheme
	for i, scheme := range AllSchemes() {
		p := mustPlan(t, scheme, g, targets)
		r := Cost(g, p, EncoderPCC, nil)
		if r.InstrumentedSites != p.NumSites() {
			t.Errorf("%v: report sites %d != plan sites %d", scheme, r.InstrumentedSites, p.NumSites())
		}
		pct := r.SizeIncreasePercent()
		if i > 0 && pct > prev {
			t.Errorf("%v size increase %.2f%% > %v's %.2f%%; optimizations must not grow the binary",
				scheme, pct, prevScheme, prev)
		}
		prev, prevScheme = pct, scheme
	}
}

func TestCostUsesFuncSizes(t *testing.T) {
	g, targets := callgraph.Figure2()
	p := mustPlan(t, SchemeFCS, g, targets)
	small := Cost(g, p, EncoderPCC, func(callgraph.NodeID) uint64 { return 100 })
	big := Cost(g, p, EncoderPCC, func(callgraph.NodeID) uint64 { return 10000 })
	if small.SizeIncreasePercent() <= big.SizeIncreasePercent() {
		t.Error("smaller functions should show larger relative size increase")
	}
	if small.AddedBytes != big.AddedBytes {
		t.Error("added bytes should not depend on function sizes")
	}
}
