package encoding

import (
	"errors"
	"fmt"
	"testing"

	"heaptherapy/internal/callgraph"
)

func mustCoder(t *testing.T, kind EncoderKind, g *callgraph.Graph, plan *Plan) *Coder {
	t.Helper()
	c, err := NewCoder(kind, g, plan)
	if err != nil {
		t.Fatalf("NewCoder(%v, %v): %v", kind, plan.Scheme, err)
	}
	return c
}

// TestDistinguishabilityFigure2 checks the paper's core claim on its
// own example: every scheme × encoder distinguishes the four contexts.
func TestDistinguishabilityFigure2(t *testing.T) {
	g, targets := callgraph.Figure2()
	for _, scheme := range AllSchemes() {
		for _, kind := range AllEncoders() {
			t.Run(fmt.Sprintf("%v/%v", scheme, kind), func(t *testing.T) {
				plan := mustPlan(t, scheme, g, targets)
				coder := mustCoder(t, kind, g, plan)
				n, collisions := VerifyDistinguishability(g, coder, 0)
				if n != 4 {
					t.Fatalf("examined %d contexts, want 4", n)
				}
				for _, c := range collisions {
					t.Errorf("collision: %v", c)
				}
			})
		}
	}
}

// TestDistinguishabilityRandomGraphs property-tests distinguishability
// over randomly generated call graphs for every scheme and encoder.
// This is the strongest check that the targeted optimizations are
// correct: pruning must never merge two same-target contexts.
func TestDistinguishabilityRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, targets, err := callgraph.Generate(callgraph.GenConfig{
			Funcs: 80, Layers: 6, FanOut: 2.2,
			Targets:         []string{"malloc", "calloc", "memalign"},
			AllocCallerFrac: 0.3, DupSiteFrac: 0.25, BackEdgeFrac: 0.1,
			Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range AllSchemes() {
			for _, kind := range AllEncoders() {
				plan := mustPlan(t, scheme, g, targets)
				coder := mustCoder(t, kind, g, plan)
				n, collisions := VerifyDistinguishability(g, coder, 20000)
				if n == 0 {
					t.Fatalf("seed %d: no contexts to verify", seed)
				}
				for _, c := range collisions {
					t.Errorf("seed %d %v/%v: collision %v", seed, scheme, kind, c)
				}
			}
		}
	}
}

// TestPCCUpdateFormula pins the paper's arithmetic: V = 3*t + c.
func TestPCCUpdateFormula(t *testing.T) {
	g, targets := callgraph.Figure2()
	plan := mustPlan(t, SchemeFCS, g, targets)
	coder := mustCoder(t, EncoderPCC, g, plan)
	s := callgraph.SiteID(0)
	c := coder.SiteConst(s)
	if c == 0 {
		t.Fatal("PCC site constant is zero")
	}
	if got := coder.Update(7, s); got != 3*7+c {
		t.Errorf("Update(7) = %d, want 3*7+%d", got, c)
	}
}

// TestAdditiveUpdateFormula pins PCCE's V = t + c.
func TestAdditiveUpdateFormula(t *testing.T) {
	g, targets := callgraph.Figure2()
	plan := mustPlan(t, SchemeFCS, g, targets)
	coder := mustCoder(t, EncoderPCCE, g, plan)
	for s := 0; s < g.NumEdges(); s++ {
		sid := callgraph.SiteID(s)
		c := coder.SiteConst(sid)
		if got := coder.Update(100, sid); got != 100+c {
			t.Errorf("site %d: Update(100) = %d, want %d", s, got, 100+c)
		}
	}
}

// TestUninstrumentedSiteLeavesV checks pruned sites are free.
func TestUninstrumentedSiteLeavesV(t *testing.T) {
	g, targets := callgraph.Figure2()
	plan := mustPlan(t, SchemeSlim, g, targets)
	coder := mustCoder(t, EncoderPCC, g, plan)
	bt1, err := g.SiteByLabel("B->T1#0")
	if err != nil {
		t.Fatal(err)
	}
	if coder.Instrumented(bt1) {
		t.Fatal("B->T1 should be pruned under Slim")
	}
	if got := coder.Update(12345, bt1); got != 12345 {
		t.Errorf("Update through pruned site = %d, want 12345", got)
	}
}

// TestPCCEDecodeRoundTrip checks decode(encode(path)) == path for all
// contexts under FCS, TCS and Slim plans.
func TestPCCEDecodeRoundTrip(t *testing.T) {
	g, targets := callgraph.Figure2()
	root := g.NodeByName("A")
	for _, scheme := range []Scheme{SchemeFCS, SchemeTCS, SchemeSlim, SchemeIncremental} {
		plan := mustPlan(t, scheme, g, targets)
		coder := mustCoder(t, EncoderPCCE, g, plan)
		for _, path := range g.EnumerateContexts(targets, 0) {
			target := g.Edge(path[len(path)-1]).To
			ccid := coder.EncodePath(path)
			got, err := coder.Decode(root, target, ccid)
			if err != nil {
				t.Errorf("%v: Decode(%#x): %v", scheme, ccid, err)
				continue
			}
			if !samePath(got, path) {
				t.Errorf("%v: Decode(%#x) = %v, want %v", scheme, ccid, got, path)
			}
		}
	}
}

// TestPCCEDecodeRandomGraphs round-trips decoding on random DAGs.
func TestPCCEDecodeRandomGraphs(t *testing.T) {
	for seed := int64(20); seed < 25; seed++ {
		g, targets, err := callgraph.Generate(callgraph.GenConfig{
			Funcs: 60, Layers: 5, FanOut: 2,
			Targets:         []string{"malloc", "calloc"},
			AllocCallerFrac: 0.3, DupSiteFrac: 0.2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		root := g.NodeByName("main")
		for _, scheme := range AllSchemes() {
			plan := mustPlan(t, scheme, g, targets)
			coder := mustCoder(t, EncoderPCCE, g, plan)
			paths := g.EnumerateContexts(targets, 2000)
			for _, path := range paths {
				if g.Edge(path[0]).From != root {
					continue // decoding is defined from the entry point
				}
				target := g.Edge(path[len(path)-1]).To
				ccid := coder.EncodePath(path)
				got, err := coder.Decode(root, target, ccid)
				if err != nil {
					t.Errorf("seed %d %v: Decode(%#x): %v", seed, scheme, ccid, err)
					continue
				}
				if !samePath(got, path) {
					t.Errorf("seed %d %v: Decode(%#x) = %v, want %v", seed, scheme, ccid, got, path)
				}
			}
		}
	}
}

// TestPCCDoesNotDecode pins the paper's characterization of PCC.
func TestPCCDoesNotDecode(t *testing.T) {
	g, targets := callgraph.Figure2()
	plan := mustPlan(t, SchemeFCS, g, targets)
	coder := mustCoder(t, EncoderPCC, g, plan)
	_, err := coder.Decode(g.NodeByName("A"), targets[0], 42)
	if !errors.Is(err, ErrNoDecode) {
		t.Errorf("PCC Decode err = %v, want ErrNoDecode", err)
	}
}

// TestDeltaPathTargetRanges verifies that DeltaPath CCIDs for different
// targets occupy disjoint high-bit ranges under FCS.
func TestDeltaPathTargetRanges(t *testing.T) {
	g, targets := callgraph.Figure2()
	plan := mustPlan(t, SchemeFCS, g, targets)
	coder := mustCoder(t, EncoderDeltaPath, g, plan)
	for _, path := range g.EnumerateContexts(targets, 0) {
		target := g.Edge(path[len(path)-1]).To
		ccid := coder.EncodePath(path)
		wantIdx := -1
		for i, tgt := range plan.Targets {
			if tgt == target {
				wantIdx = i
			}
		}
		if got := int(ccid >> deltaTargetShift); got != wantIdx {
			t.Errorf("ccid %#x high bits = %d, want target index %d", ccid, got, wantIdx)
		}
	}
}

// TestDecodeRejectsGarbage checks error paths.
func TestDecodeRejectsGarbage(t *testing.T) {
	g, targets := callgraph.Figure2()
	plan := mustPlan(t, SchemeFCS, g, targets)
	coder := mustCoder(t, EncoderPCCE, g, plan)
	if _, err := coder.Decode(g.NodeByName("A"), targets[0], 0xFFFFFFFF); err == nil {
		t.Error("Decode of garbage CCID succeeded")
	}
	if _, err := coder.Decode(g.NodeByName("A"), g.NodeByName("B"), 0); err == nil {
		t.Error("Decode with non-target function succeeded")
	}
}

// TestEncodePathDeterminism: same path, same CCID, across coders built
// twice from the same inputs.
func TestEncodePathDeterminism(t *testing.T) {
	g, targets := callgraph.Figure2()
	for _, kind := range AllEncoders() {
		plan := mustPlan(t, SchemeSlim, g, targets)
		c1 := mustCoder(t, kind, g, plan)
		c2 := mustCoder(t, kind, g, plan)
		for _, path := range g.EnumerateContexts(targets, 0) {
			if c1.EncodePath(path) != c2.EncodePath(path) {
				t.Errorf("%v: nondeterministic encoding for %v", kind, path)
			}
		}
	}
}

// TestRecursiveExecutionEncoding simulates the runtime discipline on a
// recursive program: recursion must not break termination or the
// base-context encoding.
func TestRecursiveExecutionEncoding(t *testing.T) {
	b := callgraph.NewBuilder()
	sMainA := b.AddCall("main", "A")
	sAA := b.AddCall("A", "A") // direct recursion
	sAM := b.AddCall("A", "malloc")
	g := b.Build()
	targets := []callgraph.NodeID{g.NodeByName("malloc")}
	plan := mustPlan(t, SchemeTCS, g, targets)
	coder := mustCoder(t, EncoderPCCE, g, plan)

	// The recursive edge is a back edge: constant 0, so contexts at
	// different recursion depths intentionally collapse.
	depth1 := coder.EncodePath([]callgraph.SiteID{sMainA, sAM})
	depth3 := coder.EncodePath([]callgraph.SiteID{sMainA, sAA, sAA, sAM})
	if depth1 != depth3 {
		t.Errorf("recursive contexts encode to %#x and %#x; additive encoding should collapse recursion", depth1, depth3)
	}
}

func TestEncoderKindString(t *testing.T) {
	want := map[EncoderKind]string{
		EncoderPCC:       "PCC",
		EncoderPCCE:      "PCCE",
		EncoderDeltaPath: "DeltaPath",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

// TestDeltaPathTargetOf: the target function is recoverable from a
// DeltaPath CCID under full instrumentation.
func TestDeltaPathTargetOf(t *testing.T) {
	g, targets := callgraph.Figure2()
	plan := mustPlan(t, SchemeFCS, g, targets)
	coder := mustCoder(t, EncoderDeltaPath, g, plan)
	for _, path := range g.EnumerateContexts(targets, 0) {
		want := g.Edge(path[len(path)-1]).To
		got, ok := coder.TargetOf(coder.EncodePath(path))
		if !ok || got != want {
			t.Errorf("TargetOf = %v, %v; want %v", got, ok, want)
		}
	}
	// PCC cannot dispatch on the CCID.
	pcc := mustCoder(t, EncoderPCC, g, plan)
	if _, ok := pcc.TargetOf(1); ok {
		t.Error("PCC TargetOf reported success")
	}
	// Out-of-range high bits.
	if _, ok := coder.TargetOf(uint64(99) << 48); ok {
		t.Error("out-of-range base accepted")
	}
}

// TestCCIDStabilityAcrossReleases pins concrete CCID values for the
// Figure 2 contexts. Deployed patch configuration files embed CCIDs;
// if a code change alters the constants' derivation, every deployed
// patch silently stops matching — this test makes that loud instead.
func TestCCIDStabilityAcrossReleases(t *testing.T) {
	g, targets := callgraph.Figure2()
	plan := mustPlan(t, SchemeIncremental, g, targets)

	pcc := mustCoder(t, EncoderPCC, g, plan)
	pcce := mustCoder(t, EncoderPCCE, g, plan)
	paths := g.EnumerateContexts(targets, 0)
	if len(paths) != 4 {
		t.Fatal("figure 2 context count changed")
	}
	gotPCC := make([]uint64, len(paths))
	gotPCCE := make([]uint64, len(paths))
	for i, p := range paths {
		gotPCC[i] = pcc.EncodePath(p)
		gotPCCE[i] = pcce.EncodePath(p)
	}
	// PCCE assigns small dense IDs; pin them exactly.
	wantPCCE := []uint64{0, 1, 2, 2}
	for i := range wantPCCE {
		if gotPCCE[i] != wantPCCE[i] {
			t.Errorf("PCCE ccid[%d] = %d, want %d (constant derivation changed!)", i, gotPCCE[i], wantPCCE[i])
		}
	}
	// Contexts 2 and 3 (A-C-F-T1 and A-C-F-T2) intentionally share a
	// CCID under Incremental: the pruned F sites leave the pair
	// {TargetFn, CCID} to distinguish them.
	if gotPCCE[2] != gotPCCE[3] || gotPCC[2] != gotPCC[3] {
		t.Error("false-branching contexts no longer share CCIDs; Incremental semantics changed")
	}
	// PCC constants come from splitmix64 of the site ID; pin one value.
	const wantFirstPCC = uint64(0x6e789e6aa1b965f4)
	if gotPCC[0] != wantFirstPCC {
		t.Errorf("PCC ccid[0] = %#x, want %#x (hash derivation changed; deployed patches would break)",
			gotPCC[0], wantFirstPCC)
	}
}
