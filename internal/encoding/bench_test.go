package encoding

// Benchmarks and allocation pins for the planning and update hot
// paths: a reused Planner plans against scratch buffers, and the
// per-call update surface (Coder.Update, a precompiled
// SiteUpdate.Apply, Plan.Instrumented) is allocation-free.

import (
	"testing"

	"heaptherapy/internal/callgraph"
)

// benchGraph approximates a perlbench-sized call graph: a few hundred
// functions, duplicate sites, a sprinkle of recursion.
func benchGraph(tb testing.TB) (*callgraph.Graph, []callgraph.NodeID) {
	tb.Helper()
	g, targets, err := callgraph.Generate(callgraph.GenConfig{
		Funcs: 220, Layers: 8, FanOut: 3.0,
		Targets:         []string{"malloc", "calloc", "memalign"},
		AllocCallerFrac: 0.4, DupSiteFrac: 0.25, BackEdgeFrac: 0.05,
		Seed: 17,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return g, targets
}

// BenchmarkEncodingPlan measures steady-state planning with a reused
// Planner (the scratch buffers amortize after the first plan).
func BenchmarkEncodingPlan(b *testing.B) {
	g, targets := benchGraph(b)
	for _, scheme := range AllSchemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			pl := NewPlanner()
			if _, err := pl.Plan(scheme, g, targets); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pl.Plan(scheme, g, targets); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoderUpdate measures the per-call update arithmetic: one
// Coder.Update per instrumented site, and the precompiled
// SiteUpdate.Apply variant the engines use.
func BenchmarkCoderUpdate(b *testing.B) {
	g, targets := benchGraph(b)
	plan, err := NewPlan(SchemeIncremental, g, targets)
	if err != nil {
		b.Fatal(err)
	}
	sites := plan.SiteIDs()
	if len(sites) == 0 {
		b.Fatal("benchmark graph has no Incremental sites")
	}
	for _, kind := range AllEncoders() {
		coder, err := NewCoder(kind, g, plan)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			var v uint64
			for i := 0; i < b.N; i++ {
				v = coder.Update(v, sites[i%len(sites)])
			}
			sinkUint = v
		})
		b.Run(kind.String()+"/compiled", func(b *testing.B) {
			upd := make([]SiteUpdate, len(sites))
			for i, s := range sites {
				upd[i] = coder.CompileSite(s)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var v uint64
			for i := 0; i < b.N; i++ {
				v = upd[i%len(upd)].Apply(v)
			}
			sinkUint = v
		})
	}
}

var sinkUint uint64

// TestUpdatePathZeroAlloc pins the whole per-call update surface at
// zero allocations: Update, CompileSite, Apply, and Instrumented, for
// every scheme × encoder.
func TestUpdatePathZeroAlloc(t *testing.T) {
	g, targets := benchGraph(t)
	for _, scheme := range AllSchemes() {
		plan, err := NewPlan(scheme, g, targets)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range AllEncoders() {
			coder, err := NewCoder(kind, g, plan)
			if err != nil {
				t.Fatal(err)
			}
			var v uint64
			allocs := testing.AllocsPerRun(100, func() {
				for s := 0; s < g.NumEdges(); s++ {
					sid := callgraph.SiteID(s)
					if plan.Instrumented(sid) {
						v = coder.Update(v, sid)
					}
					v = coder.CompileSite(sid).Apply(v)
				}
			})
			if allocs != 0 {
				t.Errorf("%v/%v: update path allocates %.1f objects/run, want 0", scheme, kind, allocs)
			}
			sinkUint = v
		}
	}
}

// TestPlannerSteadyStateAllocs pins the reused Planner: after warmup,
// a plan costs only its output (the Plan, its dense site set, the id
// list, and the copied target slice) — a handful of allocations
// independent of how much scratch the algorithms needed.
func TestPlannerSteadyStateAllocs(t *testing.T) {
	g, targets := benchGraph(t)
	pl := NewPlanner()
	for _, scheme := range AllSchemes() {
		if _, err := pl.Plan(scheme, g, targets); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := pl.Plan(scheme, g, targets); err != nil {
				t.Fatal(err)
			}
		})
		// Plan struct + sites []bool + ids slice + targets copy.
		if allocs > 4 {
			t.Errorf("%v: steady-state plan allocates %.1f objects, want <= 4 (output only)", scheme, allocs)
		}
	}
}
