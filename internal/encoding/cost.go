package encoding

import (
	"fmt"

	"heaptherapy/internal/callgraph"
)

// Instruction-size model for the instrumentation, in bytes of x86-64
// code, used to reproduce Table III's binary-size-increase comparison.
// A prologue reads the thread-local V into a local t (one mov); an
// instrumented call site computes V = Update(t, c) before the call and
// restores V = t after it.
const (
	// PrologueBytes is the per-function cost of reading V into t; paid
	// by every function that contains at least one instrumented site.
	PrologueBytes = 8
	// SiteBytesPCC is the per-site cost of lea/imul+add plus the
	// restoring mov for the multiplicative PCC update.
	SiteBytesPCC = 14
	// SiteBytesAdditive is the per-site cost of add/sub (PCCE,
	// DeltaPath).
	SiteBytesAdditive = 10
)

// CostReport summarizes the static footprint of an instrumentation
// plan over a program whose function sizes are known.
type CostReport struct {
	// Scheme is the planner that produced the plan.
	Scheme Scheme
	// TotalSites is the number of call sites in the program.
	TotalSites int
	// InstrumentedSites is the number of sites the plan instruments.
	InstrumentedSites int
	// InstrumentedFuncs is the number of functions needing a prologue.
	InstrumentedFuncs int
	// BaseBytes is the uninstrumented program size.
	BaseBytes uint64
	// AddedBytes is the instrumentation code size.
	AddedBytes uint64
}

// SizeIncreasePercent returns the binary-size increase as a percentage
// of the base size, the quantity Table III reports.
func (r CostReport) SizeIncreasePercent() float64 {
	if r.BaseBytes == 0 {
		return 0
	}
	return 100 * float64(r.AddedBytes) / float64(r.BaseBytes)
}

func (r CostReport) String() string {
	return fmt.Sprintf("%s: %d/%d sites, %d funcs, +%d B (%.2f%%)",
		r.Scheme, r.InstrumentedSites, r.TotalSites, r.InstrumentedFuncs,
		r.AddedBytes, r.SizeIncreasePercent())
}

// Cost computes the static cost of plan for a program whose function
// body sizes (bytes) are given per node; funcSize may be nil, in which
// case a uniform default size is assumed.
func Cost(g *callgraph.Graph, plan *Plan, kind EncoderKind, funcSize func(callgraph.NodeID) uint64) CostReport {
	const defaultFuncBytes = 512
	siteBytes := uint64(SiteBytesAdditive)
	if kind == EncoderPCC {
		siteBytes = SiteBytesPCC
	}

	r := CostReport{
		Scheme:            plan.Scheme,
		TotalSites:        g.NumEdges(),
		InstrumentedSites: plan.NumSites(),
	}
	withSites := make(map[callgraph.NodeID]bool)
	for _, s := range plan.SiteIDs() {
		withSites[g.Edge(s).From] = true
	}
	r.InstrumentedFuncs = len(withSites)

	for n := 0; n < g.NumNodes(); n++ {
		sz := uint64(defaultFuncBytes)
		if funcSize != nil {
			sz = funcSize(callgraph.NodeID(n))
		}
		r.BaseBytes += sz
	}
	r.AddedBytes = uint64(r.InstrumentedFuncs)*PrologueBytes + uint64(r.InstrumentedSites)*siteBytes
	return r
}
