package encoding

import (
	"math/rand"

	"heaptherapy/internal/callgraph"
)

// Stack-offset context identification: the alternative technique the
// paper contrasts with ([51] in its references). Instead of
// maintaining an encoded value, that system profiles runs offline to
// learn a mapping from the stack pointer's offset to calling contexts,
// then uses the offset as the context ID at runtime. Its two failure
// modes, which the paper calls out, are reproduced here:
//
//   - ambiguity: distinct contexts can produce identical stack offsets
//     (here modeled as call-path frame depth, since the simulated
//     machine has uniform frames), so the ID cannot separate them;
//
//   - profiling coverage: a context that never appeared in the
//     profiling runs cannot be decoded at all (the paper quotes a 27%
//     decoding failure rate).
//
// StackOffsetStats quantifies both on a call graph, for comparison
// against the zero-failure encodings of this package.
type StackOffsetStats struct {
	// Contexts is the number of acyclic contexts examined.
	Contexts int
	// Ambiguous is the number of contexts sharing their
	// {target, offset} key with at least one other context.
	Ambiguous int
	// UnseenFailures is the number of contexts that decode to nothing
	// because profiling (at the given coverage) never observed their
	// offset key.
	UnseenFailures int
	// Coverage is the fraction of contexts the profiling runs saw.
	Coverage float64
}

// AmbiguityRate is the fraction of contexts with colliding IDs.
func (s StackOffsetStats) AmbiguityRate() float64 {
	if s.Contexts == 0 {
		return 0
	}
	return float64(s.Ambiguous) / float64(s.Contexts)
}

// FailureRate is the fraction of contexts that fail to decode
// (ambiguous or unseen) — the quantity the paper reports as 27% for
// the profiling-based system.
func (s StackOffsetStats) FailureRate() float64 {
	if s.Contexts == 0 {
		return 0
	}
	return float64(s.Ambiguous+s.UnseenFailures) / float64(s.Contexts)
}

// StackOffsetBaseline evaluates the stack-offset technique on a graph:
// contexts are enumerated (up to limit), keyed by {target, depth}, and
// a profiling phase observes `coverage` of them chosen pseudo-randomly
// with the given seed.
func StackOffsetBaseline(g *callgraph.Graph, targets []callgraph.NodeID, limit int, coverage float64, seed int64) StackOffsetStats {
	paths := g.EnumerateContexts(targets, limit)
	type key struct {
		target callgraph.NodeID
		depth  int
	}
	byKey := make(map[key]int)
	keys := make([]key, len(paths))
	for i, p := range paths {
		k := key{target: g.Edge(p[len(p)-1]).To, depth: len(p)}
		keys[i] = k
		byKey[k]++
	}

	st := StackOffsetStats{Contexts: len(paths), Coverage: coverage}
	for _, k := range keys {
		if byKey[k] > 1 {
			st.Ambiguous++
		}
	}

	// Profiling: observe a fraction of contexts; an unambiguous context
	// whose key was never profiled cannot be decoded.
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[key]bool)
	for i, k := range keys {
		_ = i
		if rng.Float64() < coverage {
			seen[k] = true
		}
	}
	for _, k := range keys {
		if byKey[k] == 1 && !seen[k] {
			st.UnseenFailures++
		}
	}
	return st
}
