package encoding

import (
	"testing"

	"heaptherapy/internal/callgraph"
)

// checkDenseEquivalence proves the dense Plan/Coder bit-identical to
// the retained map-based reference (reference.go) on one graph: same
// site sets, same per-site constants, same CCIDs over enumerated
// contexts, and same Decode paths/errors — for every scheme × encoder.
func checkDenseEquivalence(t testing.TB, g *callgraph.Graph, targets []callgraph.NodeID) {
	ctxs := g.EnumerateContexts(targets, 200)
	pl := NewPlanner() // shared across schemes to exercise scratch reuse
	for _, scheme := range AllSchemes() {
		dp, err := pl.Plan(scheme, g, targets)
		if err != nil {
			t.Fatalf("Plan(%v): %v", scheme, err)
		}
		rp, err := newRefPlan(scheme, g, targets)
		if err != nil {
			t.Fatalf("newRefPlan(%v): %v", scheme, err)
		}

		// Site sets must match exactly, including order.
		refIDs := callgraph.SortedSites(rp.sites)
		if len(dp.SiteIDs()) != len(refIDs) {
			t.Fatalf("%v: dense has %d sites, reference %d", scheme, len(dp.SiteIDs()), len(refIDs))
		}
		for i, s := range dp.SiteIDs() {
			if refIDs[i] != s {
				t.Fatalf("%v: dense site[%d] = %d, reference %d", scheme, i, s, refIDs[i])
			}
		}
		// Instrumented must agree on every ID, including out-of-range
		// probes the map reference tolerates by construction.
		for s := -2; s <= g.NumEdges()+2; s++ {
			sid := callgraph.SiteID(s)
			if dp.Instrumented(sid) != rp.instrumented(sid) {
				t.Fatalf("%v: Instrumented(%d): dense %v, reference %v",
					scheme, s, dp.Instrumented(sid), rp.instrumented(sid))
			}
		}

		for _, kind := range AllEncoders() {
			dc, err := NewCoder(kind, g, dp)
			if err != nil {
				t.Fatalf("NewCoder(%v, %v): %v", kind, scheme, err)
			}
			rc, err := newRefCoder(kind, g, rp)
			if err != nil {
				t.Fatalf("newRefCoder(%v, %v): %v", kind, scheme, err)
			}
			for s := 0; s < g.NumEdges(); s++ {
				sid := callgraph.SiteID(s)
				if dc.SiteConst(sid) != rc.consts[s] {
					t.Fatalf("%v/%v: const[%d]: dense %#x, reference %#x",
						scheme, kind, s, dc.SiteConst(sid), rc.consts[s])
				}
				u := dc.CompileSite(sid)
				if got := u.Apply(12345); got != rc.update(12345, sid) {
					t.Fatalf("%v/%v: site %d: compiled Apply %#x, reference update %#x",
						scheme, kind, s, got, rc.update(12345, sid))
				}
			}
			for _, path := range ctxs {
				if dc.EncodePath(path) != rc.encodePath(path) {
					t.Fatalf("%v/%v: EncodePath(%v): dense %#x, reference %#x",
						scheme, kind, path, dc.EncodePath(path), rc.encodePath(path))
				}
				if dc.TraversesBackEdge(path) != rc.traversesBackEdge(path) {
					t.Fatalf("%v/%v: TraversesBackEdge(%v) disagrees", scheme, kind, path)
				}
				if kind == EncoderPCC || len(path) == 0 || dc.TraversesBackEdge(path) {
					continue
				}
				root := g.Edge(path[0]).From
				target := g.Edge(path[len(path)-1]).To
				ccid := dc.EncodePath(path)
				dPath, dErr := dc.Decode(root, target, ccid)
				rPath, rErr := rc.decode(root, target, ccid)
				if (dErr == nil) != (rErr == nil) {
					t.Fatalf("%v/%v: Decode(%#x): dense err %v, reference err %v",
						scheme, kind, ccid, dErr, rErr)
				}
				if dErr != nil {
					if dErr.Error() != rErr.Error() {
						t.Fatalf("%v/%v: Decode(%#x) errors differ: %q vs %q",
							scheme, kind, ccid, dErr, rErr)
					}
					continue
				}
				if len(dPath) != len(rPath) {
					t.Fatalf("%v/%v: Decode(%#x): dense path %v, reference %v",
						scheme, kind, ccid, dPath, rPath)
				}
				for i := range dPath {
					if dPath[i] != rPath[i] {
						t.Fatalf("%v/%v: Decode(%#x): dense path %v, reference %v",
							scheme, kind, ccid, dPath, rPath)
					}
				}
			}
		}
	}
}

// TestDenseEquivalenceFigure2 pins the dense representations to the
// reference on the paper's example graph.
func TestDenseEquivalenceFigure2(t *testing.T) {
	g, targets := callgraph.Figure2()
	checkDenseEquivalence(t, g, targets)
}

// TestDenseEquivalenceRandom runs the differential check over seeded
// random graphs spanning recursion, duplicate sites, and sparse target
// reachability.
func TestDenseEquivalenceRandom(t *testing.T) {
	configs := []callgraph.GenConfig{
		{Funcs: 40, Layers: 4, FanOut: 2.0, Targets: []string{"malloc"},
			AllocCallerFrac: 0.3, DupSiteFrac: 0.2, BackEdgeFrac: 0},
		{Funcs: 120, Layers: 6, FanOut: 2.5, Targets: []string{"malloc", "calloc", "memalign"},
			AllocCallerFrac: 0.25, DupSiteFrac: 0.15, BackEdgeFrac: 0.05},
		{Funcs: 60, Layers: 5, FanOut: 3.0, Targets: []string{"malloc", "calloc"},
			AllocCallerFrac: 0.1, DupSiteFrac: 0.4, BackEdgeFrac: 0.15},
	}
	for ci, cfg := range configs {
		for seed := int64(0); seed < 6; seed++ {
			cfg.Seed = seed
			g, targets, err := callgraph.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Run("", func(t *testing.T) {
				checkDenseEquivalence(t, g, targets)
			})
			_ = ci
		}
	}
}

// TestInstrumentedOutOfRange locks the bounds-safety contract: probing
// a plan (or coder) with SiteIDs outside the planned graph must report
// uninstrumented rather than fault.
func TestInstrumentedOutOfRange(t *testing.T) {
	g, targets := callgraph.Figure2()
	for _, scheme := range AllSchemes() {
		p := mustPlan(t, scheme, g, targets)
		for _, s := range []callgraph.SiteID{-1, -100, callgraph.SiteID(g.NumEdges()), callgraph.SiteID(g.NumEdges() + 37)} {
			if p.Instrumented(s) {
				t.Errorf("%v: Instrumented(%d) = true for out-of-range site", scheme, s)
			}
		}
		c, err := NewCoder(EncoderPCCE, g, p)
		if err != nil {
			t.Fatal(err)
		}
		if c.Instrumented(callgraph.SiteID(g.NumEdges() + 1)) {
			t.Errorf("%v: coder Instrumented out-of-range = true", scheme)
		}
		if u := c.CompileSite(callgraph.SiteID(-5)); u.Instrumented {
			t.Errorf("%v: CompileSite(-5).Instrumented = true", scheme)
		}
	}
}

// FuzzDensePlanEquivalence drives the same differential oracle from
// fuzzed graph-generator parameters: any divergence between the dense
// planner/coder and the map-based reference — site sets, constants,
// EncodePath, or Decode round trips, for all schemes × encoders — is a
// crash.
func FuzzDensePlanEquivalence(f *testing.F) {
	f.Add(uint8(40), uint8(4), uint8(20), uint8(30), uint8(20), uint8(5), int64(1), uint8(1))
	f.Add(uint8(120), uint8(6), uint8(25), uint8(25), uint8(15), uint8(0), int64(7), uint8(3))
	f.Add(uint8(12), uint8(2), uint8(35), uint8(80), uint8(50), uint8(30), int64(42), uint8(2))
	f.Fuzz(func(t *testing.T, funcs, layers, fanOut, allocFrac, dupFrac, backFrac uint8, seed int64, nTargets uint8) {
		allNames := []string{"malloc", "calloc", "memalign"}
		cfg := callgraph.GenConfig{
			Funcs:           2 + int(funcs)%150,
			FanOut:          0.5 + float64(fanOut%40)/10,
			Targets:         allNames[:1+int(nTargets)%3],
			AllocCallerFrac: float64(allocFrac%101) / 100,
			DupSiteFrac:     float64(dupFrac%101) / 100,
			BackEdgeFrac:    float64(backFrac%101) / 100,
			Seed:            seed,
		}
		cfg.Layers = 2 + int(layers)%7
		if cfg.Layers > cfg.Funcs {
			cfg.Layers = cfg.Funcs
		}
		g, targets, err := callgraph.Generate(cfg)
		if err != nil {
			t.Skip(err)
		}
		checkDenseEquivalence(t, g, targets)
	})
}
