package encoding

import (
	"fmt"

	"heaptherapy/internal/callgraph"
)

// This file retains the original map-based planner and coder as a
// reference implementation. The production Plan/Coder hold their site
// sets and per-node state densely (plan.go, encoders.go); the
// differential and fuzz tests (dense_equiv_test.go) check that the
// dense representations produce bit-identical site sets, constants,
// CCIDs, and Decode paths against this oracle on randomized graphs —
// the repo's established way of proving an optimized path equivalent
// to its reference.

// refPlan is the map-based instrumentation plan.
type refPlan struct {
	scheme  Scheme
	targets []callgraph.NodeID
	sites   map[callgraph.SiteID]bool
}

func (p *refPlan) instrumented(s callgraph.SiteID) bool { return p.sites[s] }

// newRefPlan runs the given planner scheme with the original map-based
// algorithms.
func newRefPlan(scheme Scheme, g *callgraph.Graph, targets []callgraph.NodeID) (*refPlan, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("encoding: no target functions given")
	}
	p := &refPlan{scheme: scheme, targets: append([]callgraph.NodeID(nil), targets...)}
	switch scheme {
	case SchemeFCS:
		p.sites = refPlanFCS(g)
	case SchemeTCS:
		p.sites = g.TargetReachingSites(targets)
	case SchemeSlim:
		p.sites = refPlanSlim(g, targets)
	case SchemeIncremental:
		p.sites = refPlanIncremental(g, targets)
	default:
		return nil, fmt.Errorf("encoding: unknown scheme %v", scheme)
	}
	return p, nil
}

func refPlanFCS(g *callgraph.Graph) map[callgraph.SiteID]bool {
	set := make(map[callgraph.SiteID]bool, g.NumEdges())
	for s := 0; s < g.NumEdges(); s++ {
		set[callgraph.SiteID(s)] = true
	}
	return set
}

func refPlanSlim(g *callgraph.Graph, targets []callgraph.NodeID) map[callgraph.SiteID]bool {
	tcs := g.TargetReachingSites(targets)
	reachingOut := make([]int, g.NumNodes())
	for s := range tcs {
		reachingOut[g.Edge(s).From]++
	}
	set := make(map[callgraph.SiteID]bool)
	for s := range tcs {
		if reachingOut[g.Edge(s).From] >= 2 {
			set[s] = true
		}
	}
	return set
}

func refPlanIncremental(g *callgraph.Graph, targets []callgraph.NodeID) map[callgraph.SiteID]bool {
	set := make(map[callgraph.SiteID]bool)
	for _, t := range targets {
		reaches := g.ReachesTargets([]callgraph.NodeID{t})
		perNode := make(map[callgraph.NodeID][]callgraph.SiteID)
		for s := 0; s < g.NumEdges(); s++ {
			e := g.Edge(callgraph.SiteID(s))
			if reaches[e.To] {
				perNode[e.From] = append(perNode[e.From], e.ID)
			}
		}
		for _, edges := range perNode {
			if len(edges) > 1 {
				for _, s := range edges {
					set[s] = true
				}
			}
		}
	}
	return set
}

// refCoder is the map-based coder: identical arithmetic to Coder, with
// the original map-backed plan and per-node state.
type refCoder struct {
	kind EncoderKind
	g    *callgraph.Graph
	plan *refPlan

	consts []uint64

	numEnc     []uint64
	dagOut     [][]callgraph.SiteID
	reachesTgt map[callgraph.NodeID][]bool
	isTarget   map[callgraph.NodeID]bool
	targetBase map[callgraph.NodeID]uint64
	backEdges  map[callgraph.SiteID]bool
}

// newRefCoder builds the per-site constants for kind under plan, using
// the original map-based numbering.
func newRefCoder(kind EncoderKind, g *callgraph.Graph, plan *refPlan) (*refCoder, error) {
	c := &refCoder{
		kind:   kind,
		g:      g,
		plan:   plan,
		consts: make([]uint64, g.NumEdges()),
	}
	switch kind {
	case EncoderPCC:
		for s := range c.consts {
			c.consts[s] = splitmix64(uint64(s) + 0x9E3779B97F4A7C15)
		}
	case EncoderPCCE, EncoderDeltaPath:
		if err := c.numberAdditive(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("encoding: unknown encoder kind %v", kind)
	}
	return c, nil
}

func (c *refCoder) update(t uint64, s callgraph.SiteID) uint64 {
	if !c.plan.instrumented(s) {
		return t
	}
	if c.kind == EncoderPCC {
		return 3*t + c.consts[s]
	}
	return t + c.consts[s]
}

func (c *refCoder) encodePath(path []callgraph.SiteID) uint64 {
	var v uint64
	for _, s := range path {
		v = c.update(v, s)
	}
	return v
}

func (c *refCoder) traversesBackEdge(path []callgraph.SiteID) bool {
	if c.backEdges == nil {
		return false
	}
	for _, s := range path {
		if c.backEdges[s] {
			return true
		}
	}
	return false
}

func (c *refCoder) numberAdditive() error {
	g := c.g
	reaches := g.ReachesTargets(c.plan.targets)
	c.isTarget = make(map[callgraph.NodeID]bool, len(c.plan.targets))
	for _, t := range c.plan.targets {
		c.isTarget[t] = true
	}

	c.backEdges = c.findBackEdges()

	if c.kind == EncoderDeltaPath {
		c.targetBase = make(map[callgraph.NodeID]uint64, len(c.plan.targets))
		for i, t := range c.plan.targets {
			c.targetBase[t] = uint64(i) << deltaTargetShift
		}
	}

	back := c.backEdges

	n := g.NumNodes()
	c.dagOut = make([][]callgraph.SiteID, n)
	indeg := make([]int, n)
	for s := 0; s < g.NumEdges(); s++ {
		sid := callgraph.SiteID(s)
		e := g.Edge(sid)
		if back[sid] || !reaches[e.To] {
			continue
		}
		if c.isTarget[e.From] {
			continue
		}
		c.dagOut[e.From] = append(c.dagOut[e.From], sid)
		indeg[e.To]++
	}
	topo := make([]callgraph.NodeID, 0, n)
	queue := make([]callgraph.NodeID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, callgraph.NodeID(v))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		topo = append(topo, v)
		for _, s := range c.dagOut[v] {
			to := g.Edge(s).To
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(topo) != n {
		return fmt.Errorf("encoding: internal: DAG topological sort visited %d of %d nodes", len(topo), n)
	}

	c.numEnc = make([]uint64, n)
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		if c.isTarget[v] {
			c.numEnc[v] = 1
			continue
		}
		var acc, maxUninstr uint64
		for _, s := range c.dagOut[v] {
			w := g.Edge(s).To
			sub := c.numEnc[w]
			if c.plan.instrumented(s) {
				c.consts[s] = acc
				if c.kind == EncoderDeltaPath && c.isTarget[w] {
					c.consts[s] += c.targetBase[w]
				}
				acc += sub
			} else if sub > maxUninstr {
				maxUninstr = sub
			}
		}
		c.numEnc[v] = acc
		if maxUninstr > c.numEnc[v] {
			c.numEnc[v] = maxUninstr
		}
	}

	c.reachesTgt = make(map[callgraph.NodeID][]bool, len(c.plan.targets))
	for _, t := range c.plan.targets {
		c.reachesTgt[t] = g.ReachesTargets([]callgraph.NodeID{t})
	}
	return nil
}

func (c *refCoder) findBackEdges() map[callgraph.SiteID]bool {
	g := c.g
	const (
		white = 0
		gray  = 1
	)
	color := make([]byte, g.NumNodes())
	back := make(map[callgraph.SiteID]bool)

	type frame struct {
		node callgraph.NodeID
		next int
	}
	visit := func(root callgraph.NodeID) {
		if color[root] != white {
			return
		}
		stack := []frame{{node: root}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			out := g.OutSites(f.node)
			if f.next >= len(out) {
				color[f.node] = 2 // black
				stack = stack[:len(stack)-1]
				continue
			}
			s := out[f.next]
			f.next++
			to := g.Edge(s).To
			switch color[to] {
			case white:
				color[to] = gray
				stack = append(stack, frame{node: to})
			case gray:
				back[s] = true
			}
		}
	}
	for _, r := range g.Roots() {
		visit(r)
	}
	for v := 0; v < g.NumNodes(); v++ {
		visit(callgraph.NodeID(v))
	}
	return back
}

// decode mirrors Coder.Decode over the map-based state.
func (c *refCoder) decode(root, target callgraph.NodeID, ccid uint64) ([]callgraph.SiteID, error) {
	if c.kind == EncoderPCC {
		return nil, ErrNoDecode
	}
	reach, ok := c.reachesTgt[target]
	if !ok {
		return nil, fmt.Errorf("encoding: %v is not a target function", target)
	}
	if c.kind == EncoderDeltaPath {
		if base := c.targetBase[target]; ccid >= base {
			ccid -= base
		}
	}
	var path []callgraph.SiteID
	cur := root
	remaining := ccid
	for steps := 0; cur != target; steps++ {
		if steps > c.g.NumNodes() {
			return nil, fmt.Errorf("encoding: decode exceeded maximum path length")
		}
		var chosen callgraph.SiteID = -1
		var chosenConst uint64
		candidates := 0
		for _, s := range c.dagOut[cur] {
			w := c.g.Edge(s).To
			if !reach[w] {
				continue
			}
			lo := uint64(0)
			if c.plan.instrumented(s) {
				lo = c.consts[s]
				if c.kind == EncoderDeltaPath && c.isTarget[w] {
					lo -= c.targetBase[w]
				}
			}
			hi := lo + c.numEnc[w]
			if remaining >= lo && remaining < hi {
				candidates++
				chosen = s
				chosenConst = lo
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("encoding: CCID %#x does not decode from %s", ccid, c.g.Name(root))
		}
		if candidates > 1 {
			return nil, fmt.Errorf("encoding: CCID %#x is ambiguous at %s under plan %s", ccid, c.g.Name(cur), c.plan.scheme)
		}
		path = append(path, chosen)
		remaining -= chosenConst
		cur = c.g.Edge(chosen).To
	}
	if remaining != 0 {
		return nil, fmt.Errorf("encoding: CCID %#x has residue %d after decoding", ccid, remaining)
	}
	return path, nil
}
