// Package encoding implements calling-context encoding and the paper's
// targeted calling-context encoding optimizations (Section IV).
//
// A calling-context encoding scheme has two independent axes:
//
//   - the *planner* decides WHICH call sites are instrumented:
//     FCS (all sites, as in the original PCC/PCCE/DeltaPath papers),
//     TCS (only sites that can reach a target function),
//     Slim (TCS minus sites in non-branching nodes), and
//     Incremental (only sites in true branching nodes, Algorithm 1);
//
//   - the *encoder* decides HOW an instrumented site updates the
//     thread-local context value V: PCC uses the multiplicative hash
//     V = 3*t + c, PCCE-style encoding uses precise additive constants
//     from Ball-Larus path numbering (and supports decoding), and the
//     DeltaPath-style encoder uses additive constants in per-target
//     disjoint ranges.
//
// Update discipline. This implementation maintains the invariant that,
// at every program point, V encodes exactly the instrumented edges on
// the *current* call stack: each function reads t = V at its prologue,
// sets V = Update(t, c) before an instrumented call, and restores V = t
// when that call returns. PCC as published instead recomputes V at
// every call site and never restores; that is equivalent under full
// instrumentation but becomes execution-order dependent once sites are
// pruned (a completed call into an instrumented subtree would leave a
// stale V behind for a later pruned site). The restore discipline — one
// extra move per instrumented site, exactly PCCE's +c/-c pattern —
// keeps every scheme deterministic under all four planners.
package encoding

import (
	"fmt"
	"sort"
	"strings"

	"heaptherapy/internal/callgraph"
)

// Scheme enumerates the instrumentation planners.
type Scheme uint8

// Planner schemes, in increasing order of optimization.
const (
	// SchemeFCS instruments every call site (Full-Call-Site, the
	// baseline used by PCC/PCCE/DeltaPath).
	SchemeFCS Scheme = iota + 1
	// SchemeTCS instruments only target-reaching call sites.
	SchemeTCS
	// SchemeSlim additionally prunes sites in non-branching nodes.
	SchemeSlim
	// SchemeIncremental instruments only sites in true branching nodes,
	// distinguishing contexts by the {TargetFn, CCID} pair.
	SchemeIncremental
)

func (s Scheme) String() string {
	switch s {
	case SchemeFCS:
		return "FCS"
	case SchemeTCS:
		return "TCS"
	case SchemeSlim:
		return "Slim"
	case SchemeIncremental:
		return "Incremental"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// AllSchemes lists the planners in evaluation order.
func AllSchemes() []Scheme {
	return []Scheme{SchemeFCS, SchemeTCS, SchemeSlim, SchemeIncremental}
}

// ParseScheme parses a scheme name (case sensitive, as printed).
func ParseScheme(s string) (Scheme, error) {
	names := make([]string, 0, len(AllSchemes()))
	for _, sc := range AllSchemes() {
		if sc.String() == s {
			return sc, nil
		}
		names = append(names, sc.String())
	}
	return 0, fmt.Errorf("encoding: unknown scheme %q (valid: %s)", s, strings.Join(names, ", "))
}

// Plan is the result of instrumentation planning: the set of call sites
// to instrument for a given graph and target set.
type Plan struct {
	// Scheme is the planner that produced this plan.
	Scheme Scheme
	// Targets are the functions whose calling contexts are of interest
	// (the allocation APIs, for HeapTherapy+).
	Targets []callgraph.NodeID
	// Sites is the instrumented call-site set.
	Sites map[callgraph.SiteID]bool
}

// Instrumented reports whether site s is instrumented under this plan.
func (p *Plan) Instrumented(s callgraph.SiteID) bool { return p.Sites[s] }

// NumSites returns the size of the instrumentation set.
func (p *Plan) NumSites() int { return len(p.Sites) }

// SiteLabels renders the instrumented sites as sorted labels; used in
// tests and the planner CLI.
func (p *Plan) SiteLabels(g *callgraph.Graph) []string {
	labels := make([]string, 0, len(p.Sites))
	for _, s := range callgraph.SortedSites(p.Sites) {
		labels = append(labels, g.SiteLabel(s))
	}
	sort.Strings(labels)
	return labels
}

// NewPlan runs the given planner scheme over the graph.
func NewPlan(scheme Scheme, g *callgraph.Graph, targets []callgraph.NodeID) (*Plan, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("encoding: no target functions given")
	}
	p := &Plan{Scheme: scheme, Targets: append([]callgraph.NodeID(nil), targets...)}
	switch scheme {
	case SchemeFCS:
		p.Sites = planFCS(g)
	case SchemeTCS:
		p.Sites = g.TargetReachingSites(targets)
	case SchemeSlim:
		p.Sites = planSlim(g, targets)
	case SchemeIncremental:
		p.Sites = planIncremental(g, targets)
	default:
		return nil, fmt.Errorf("encoding: unknown scheme %v", scheme)
	}
	return p, nil
}

// planFCS instruments every call site, as PCC, PCCE, and DeltaPath do.
func planFCS(g *callgraph.Graph) map[callgraph.SiteID]bool {
	set := make(map[callgraph.SiteID]bool, g.NumEdges())
	for s := 0; s < g.NumEdges(); s++ {
		set[callgraph.SiteID(s)] = true
	}
	return set
}

// planSlim keeps only target-reaching sites whose containing function
// is a branching node: one with two or more target-reaching out-edges
// (Section IV-B). Sites in non-branching nodes cannot affect the
// distinguishability of encodings, because between two instrumented
// sites the path through non-branching nodes is unique.
func planSlim(g *callgraph.Graph, targets []callgraph.NodeID) map[callgraph.SiteID]bool {
	tcs := g.TargetReachingSites(targets)
	reachingOut := make([]int, g.NumNodes())
	for s := range tcs {
		reachingOut[g.Edge(s).From]++
	}
	set := make(map[callgraph.SiteID]bool)
	for s := range tcs {
		if reachingOut[g.Edge(s).From] >= 2 {
			set[s] = true
		}
	}
	return set
}

// planIncremental implements Algorithm 1 of the paper. Because the
// interception function already knows WHICH target was invoked,
// contexts are distinguished by the pair {TargetFn, CCID}; therefore a
// node needs instrumentation only if it is a *true* branching node for
// some single target t: two or more of its out-edges reach that same t.
// False branching nodes — whose target-reaching edges each lead to a
// different target — are pruned.
func planIncremental(g *callgraph.Graph, targets []callgraph.NodeID) map[callgraph.SiteID]bool {
	set := make(map[callgraph.SiteID]bool)
	for _, t := range targets {
		// Backward BFS from t (Lines 4-10 of Algorithm 1); the visited
		// check handles back edges.
		reaches := g.ReachesTargets([]callgraph.NodeID{t})
		// For each node, collect its out-edges that reach t
		// (Lines 11-17); instrument them if there are two or more.
		perNode := make(map[callgraph.NodeID][]callgraph.SiteID)
		for s := 0; s < g.NumEdges(); s++ {
			e := g.Edge(callgraph.SiteID(s))
			if reaches[e.To] {
				perNode[e.From] = append(perNode[e.From], e.ID)
			}
		}
		for _, edges := range perNode {
			if len(edges) > 1 {
				for _, s := range edges {
					set[s] = true
				}
			}
		}
	}
	return set
}
