// Package encoding implements calling-context encoding and the paper's
// targeted calling-context encoding optimizations (Section IV).
//
// A calling-context encoding scheme has two independent axes:
//
//   - the *planner* decides WHICH call sites are instrumented:
//     FCS (all sites, as in the original PCC/PCCE/DeltaPath papers),
//     TCS (only sites that can reach a target function),
//     Slim (TCS minus sites in non-branching nodes), and
//     Incremental (only sites in true branching nodes, Algorithm 1);
//
//   - the *encoder* decides HOW an instrumented site updates the
//     thread-local context value V: PCC uses the multiplicative hash
//     V = 3*t + c, PCCE-style encoding uses precise additive constants
//     from Ball-Larus path numbering (and supports decoding), and the
//     DeltaPath-style encoder uses additive constants in per-target
//     disjoint ranges.
//
// Update discipline. This implementation maintains the invariant that,
// at every program point, V encodes exactly the instrumented edges on
// the *current* call stack: each function reads t = V at its prologue,
// sets V = Update(t, c) before an instrumented call, and restores V = t
// when that call returns. PCC as published instead recomputes V at
// every call site and never restores; that is equivalent under full
// instrumentation but becomes execution-order dependent once sites are
// pruned (a completed call into an instrumented subtree would leave a
// stale V behind for a later pruned site). The restore discipline — one
// extra move per instrumented site, exactly PCCE's +c/-c pattern —
// keeps every scheme deterministic under all four planners.
package encoding

import (
	"fmt"
	"sort"
	"strings"

	"heaptherapy/internal/callgraph"
)

// Scheme enumerates the instrumentation planners.
type Scheme uint8

// Planner schemes, in increasing order of optimization.
const (
	// SchemeFCS instruments every call site (Full-Call-Site, the
	// baseline used by PCC/PCCE/DeltaPath).
	SchemeFCS Scheme = iota + 1
	// SchemeTCS instruments only target-reaching call sites.
	SchemeTCS
	// SchemeSlim additionally prunes sites in non-branching nodes.
	SchemeSlim
	// SchemeIncremental instruments only sites in true branching nodes,
	// distinguishing contexts by the {TargetFn, CCID} pair.
	SchemeIncremental
)

func (s Scheme) String() string {
	switch s {
	case SchemeFCS:
		return "FCS"
	case SchemeTCS:
		return "TCS"
	case SchemeSlim:
		return "Slim"
	case SchemeIncremental:
		return "Incremental"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// AllSchemes lists the planners in evaluation order.
func AllSchemes() []Scheme {
	return []Scheme{SchemeFCS, SchemeTCS, SchemeSlim, SchemeIncremental}
}

// ParseScheme parses a scheme name (case sensitive, as printed).
func ParseScheme(s string) (Scheme, error) {
	names := make([]string, 0, len(AllSchemes()))
	for _, sc := range AllSchemes() {
		if sc.String() == s {
			return sc, nil
		}
		names = append(names, sc.String())
	}
	return 0, fmt.Errorf("encoding: unknown scheme %q (valid: %s)", s, strings.Join(names, ", "))
}

// Plan is the result of instrumentation planning: the set of call sites
// to instrument for a given graph and target set. The site set is held
// densely — one bool per SiteID — so Instrumented is an array load on
// the interpreter's per-call path rather than a map probe.
type Plan struct {
	// Scheme is the planner that produced this plan.
	Scheme Scheme
	// Targets are the functions whose calling contexts are of interest
	// (the allocation APIs, for HeapTherapy+).
	Targets []callgraph.NodeID

	// sites is the instrumented set, indexed by SiteID.
	sites []bool
	// ids lists the instrumented SiteIDs in ascending order.
	ids []callgraph.SiteID
}

// Instrumented reports whether site s is instrumented under this plan.
// Out-of-range SiteIDs (negative, or beyond the planned graph's edge
// count) are never instrumented.
func (p *Plan) Instrumented(s callgraph.SiteID) bool {
	return s >= 0 && int(s) < len(p.sites) && p.sites[s]
}

// NumSites returns the size of the instrumentation set.
func (p *Plan) NumSites() int { return len(p.ids) }

// SiteIDs returns the instrumented SiteIDs in ascending order. The
// slice is shared with the plan; callers must not mutate it.
func (p *Plan) SiteIDs() []callgraph.SiteID { return p.ids }

// SiteSet materializes the instrumented set as a map, for callers that
// still want set semantics (DOT rendering, diffing).
func (p *Plan) SiteSet() map[callgraph.SiteID]bool {
	set := make(map[callgraph.SiteID]bool, len(p.ids))
	for _, s := range p.ids {
		set[s] = true
	}
	return set
}

// SiteLabels renders the instrumented sites as sorted labels; used in
// tests and the planner CLI. Labels are built in site order and sorted
// once lexically.
func (p *Plan) SiteLabels(g *callgraph.Graph) []string {
	labels := make([]string, 0, len(p.ids))
	for _, s := range p.ids {
		labels = append(labels, g.SiteLabel(s))
	}
	sort.Strings(labels)
	return labels
}

// Planner runs instrumentation planning with reusable scratch buffers,
// so repeated planning over same-sized graphs (experiment sweeps, the
// fuzzers) does not re-allocate reachability state per call. A Planner
// is not safe for concurrent use; the produced Plans are immutable and
// freely shareable.
type Planner struct {
	reaches []bool             // reachability scratch (per node)
	queue   []callgraph.NodeID // BFS worklist scratch
	count   []int32            // per-node target-reaching out-edge counts
	one     [1]callgraph.NodeID
}

// NewPlanner returns a Planner with empty scratch; buffers grow to the
// largest graph planned and are reused afterwards.
func NewPlanner() *Planner { return &Planner{} }

// NewPlan runs the given planner scheme over the graph.
func NewPlan(scheme Scheme, g *callgraph.Graph, targets []callgraph.NodeID) (*Plan, error) {
	return NewPlanner().Plan(scheme, g, targets)
}

// Plan runs the given planner scheme over the graph, reusing the
// Planner's scratch buffers.
func (pl *Planner) Plan(scheme Scheme, g *callgraph.Graph, targets []callgraph.NodeID) (*Plan, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("encoding: no target functions given")
	}
	p := &Plan{
		Scheme:  scheme,
		Targets: append([]callgraph.NodeID(nil), targets...),
		sites:   make([]bool, g.NumEdges()),
	}
	switch scheme {
	case SchemeFCS:
		for s := range p.sites {
			p.sites[s] = true
		}
	case SchemeTCS:
		pl.planTCS(p, g, targets)
	case SchemeSlim:
		pl.planSlim(p, g, targets)
	case SchemeIncremental:
		pl.planIncremental(p, g, targets)
	default:
		return nil, fmt.Errorf("encoding: unknown scheme %v", scheme)
	}
	n := 0
	for _, on := range p.sites {
		if on {
			n++
		}
	}
	if n > 0 {
		p.ids = make([]callgraph.SiteID, 0, n)
		for s, on := range p.sites {
			if on {
				p.ids = append(p.ids, callgraph.SiteID(s))
			}
		}
	}
	return p, nil
}

// grow sizes the scratch buffers for graph g.
func (pl *Planner) grow(g *callgraph.Graph) {
	n := g.NumNodes()
	if cap(pl.queue) < n {
		pl.queue = make([]callgraph.NodeID, 0, n)
	}
	if cap(pl.count) < n {
		pl.count = make([]int32, n)
	}
}

// planTCS instruments every target-reaching call site (SchemeFCS
// instruments all sites; TCS is the first targeted refinement).
func (pl *Planner) planTCS(p *Plan, g *callgraph.Graph, targets []callgraph.NodeID) {
	pl.grow(g)
	pl.reaches = g.ReachesTargetsInto(pl.reaches, pl.queue, targets)
	for s := 0; s < g.NumEdges(); s++ {
		p.sites[s] = pl.reaches[g.Edge(callgraph.SiteID(s)).To]
	}
}

// planSlim keeps only target-reaching sites whose containing function
// is a branching node: one with two or more target-reaching out-edges
// (Section IV-B). Sites in non-branching nodes cannot affect the
// distinguishability of encodings, because between two instrumented
// sites the path through non-branching nodes is unique.
func (pl *Planner) planSlim(p *Plan, g *callgraph.Graph, targets []callgraph.NodeID) {
	pl.grow(g)
	pl.reaches = g.ReachesTargetsInto(pl.reaches, pl.queue, targets)
	count := pl.count[:g.NumNodes()]
	for i := range count {
		count[i] = 0
	}
	for s := 0; s < g.NumEdges(); s++ {
		e := g.Edge(callgraph.SiteID(s))
		if pl.reaches[e.To] {
			count[e.From]++
		}
	}
	for s := 0; s < g.NumEdges(); s++ {
		e := g.Edge(callgraph.SiteID(s))
		p.sites[s] = pl.reaches[e.To] && count[e.From] >= 2
	}
}

// planIncremental implements Algorithm 1 of the paper. Because the
// interception function already knows WHICH target was invoked,
// contexts are distinguished by the pair {TargetFn, CCID}; therefore a
// node needs instrumentation only if it is a *true* branching node for
// some single target t: two or more of its out-edges reach that same t.
// False branching nodes — whose target-reaching edges each lead to a
// different target — are pruned.
func (pl *Planner) planIncremental(p *Plan, g *callgraph.Graph, targets []callgraph.NodeID) {
	pl.grow(g)
	count := pl.count[:g.NumNodes()]
	for _, t := range targets {
		// Backward BFS from t (Lines 4-10 of Algorithm 1); the visited
		// check handles back edges.
		pl.one[0] = t
		pl.reaches = g.ReachesTargetsInto(pl.reaches, pl.queue, pl.one[:])
		// For each node, count its out-edges that reach t
		// (Lines 11-17); instrument them if there are two or more.
		for i := range count {
			count[i] = 0
		}
		for s := 0; s < g.NumEdges(); s++ {
			if pl.reaches[g.Edge(callgraph.SiteID(s)).To] {
				count[g.Edge(callgraph.SiteID(s)).From]++
			}
		}
		for s := 0; s < g.NumEdges(); s++ {
			e := g.Edge(callgraph.SiteID(s))
			if pl.reaches[e.To] && count[e.From] >= 2 {
				p.sites[s] = true
			}
		}
	}
}
