package shadow

import (
	"fmt"

	"heaptherapy/internal/prog"
)

// Load implements prog.HeapBackend: it returns the data together with
// its V-bit masks and origin tags, checking A-bits per byte. Access
// violations are recorded and execution resumes with the raw bytes
// (Valgrind's behaviour), so one run can expose multiple bugs.
func (b *Backend) Load(addr, n, ccid uint64) (prog.Value, error) {
	b.cycles += (prog.CycMemOp + n/prog.CycBytesPerCycle) * shadowCostFactor
	if err := b.checkMapped(addr, n); err != nil {
		return prog.Value{}, err
	}
	data, err := b.space.RawRead(addr, n)
	if err != nil {
		return prog.Value{}, fmt.Errorf("shadow: raw read: %w", err)
	}
	v := prog.Value{
		Bytes:  data,
		Valid:  make([]byte, n),
		Origin: make([]uint32, n),
	}
	violated := false
	for i := uint64(0); i < n; i++ {
		o, ok := b.off(addr + i)
		if !ok {
			break
		}
		if !b.access[o] {
			if !violated {
				b.recordAccessViolation(addr+i, n, ccid, false)
				violated = true
			}
			// Data read from inaccessible memory is also invalid.
			v.Valid[i] = 0
			v.Origin[i] = b.originT[o]
			continue
		}
		v.Valid[i] = b.vmask[o]
		v.Origin[i] = b.originT[o]
	}
	return v, nil
}

// Store implements prog.HeapBackend: it writes data and propagates the
// value's V-bits and origins into the shadow planes. Bytes landing in
// inaccessible memory are recorded as violations; they are materialized
// only inside red zones or freed buffers (regions this tool owns) and
// dropped elsewhere to keep the analysis heap intact.
func (b *Backend) Store(addr uint64, v prog.Value, ccid uint64) error {
	n := uint64(len(v.Bytes))
	b.cycles += (prog.CycMemOp + n/prog.CycBytesPerCycle) * shadowCostFactor
	if err := b.checkMapped(addr, n); err != nil {
		return err
	}
	violated := false
	for i := uint64(0); i < n; i++ {
		o, ok := b.off(addr + i)
		if !ok {
			break
		}
		vm := byte(0xFF)
		if v.Valid != nil && int(i) < len(v.Valid) {
			vm = v.Valid[i]
		}
		var org uint32
		if v.Origin != nil && int(i) < len(v.Origin) {
			org = v.Origin[i]
		}
		if !b.access[o] {
			if !violated {
				b.recordAccessViolation(addr+i, n, ccid, true)
				violated = true
			}
			if c := b.findContaining(addr + i); c == nil {
				continue // would corrupt untracked memory: drop
			}
			// Falls in a red zone or freed buffer: safe to land.
		}
		if err := b.space.RawWrite(addr+i, []byte{v.Bytes[i]}); err != nil {
			return fmt.Errorf("shadow: raw write: %w", err)
		}
		if b.access[o] {
			b.vmask[o] = vm
			b.originT[o] = org
		}
	}
	return nil
}

// Memcpy implements prog.HeapBackend with byte-wise shadow propagation:
// V-bits and origins travel with the data, which is what lets origin
// tracking trace a leak at an output call back to the uninitialized
// allocation it started from.
func (b *Backend) Memcpy(dst, src, n, ccid uint64) error {
	b.cycles += (prog.CycMemOp + n/prog.CycBytesPerCycle) * shadowCostFactor
	v, err := b.Load(src, n, ccid)
	if err != nil {
		return err
	}
	// Load already accounted cycles; compensate to avoid double cost.
	b.cycles -= (prog.CycMemOp + n/prog.CycBytesPerCycle) * shadowCostFactor
	return b.Store(dst, v, ccid)
}

// Memset implements prog.HeapBackend; the filled range becomes fully
// valid.
func (b *Backend) Memset(addr uint64, c byte, n, ccid uint64) error {
	data := make([]byte, n)
	for i := range data {
		data[i] = c
	}
	return b.Store(addr, prog.Value{Bytes: data}, ccid)
}

// CheckUse implements prog.HeapBackend: V-bits are checked only here —
// when a value decides control flow, forms an address, or reaches a
// system call — never at loads, so padding copies (Figure 4) cannot
// raise false positives. The first invalid byte's origin tag leads the
// warning back to the vulnerable allocation.
func (b *Backend) CheckUse(v prog.Value, use prog.UseKind, ccid uint64) {
	b.cycles += shadowCostFactor
	if v.FullyValid() {
		return
	}
	tag := v.InvalidOrigin()
	b.recordUninit(tag, use, ccid, fmt.Sprintf("uninitialized value used as %s", use))
}

// checkMapped verifies the range lies inside the simulated space;
// running off the mapping is a hard fault even under analysis (a real
// process would die under Valgrind too).
func (b *Backend) checkMapped(addr, n uint64) error {
	if n == 0 {
		return nil
	}
	if !b.space.Contains(addr, n) {
		// Out-of-space accesses crash the analysis run like a real
		// SIGSEGV; record what we know first.
		b.recordAccessViolation(addr, n, 0, false)
		return b.space.CheckRead(addr, n)
	}
	return nil
}
