package shadow

import (
	"fmt"

	"heaptherapy/internal/prog"
)

// accessCost is the virtual-cycle charge for one n-byte shadowed
// memory operation. All cycle accounting happens in the public entry
// points; the kernels below are uncounted, so fast and slow paths —
// and the refXxx predecessors — charge identically.
func accessCost(n uint64) uint64 {
	return (prog.CycMemOp + n/prog.CycBytesPerCycle) * shadowCostFactor
}

// Load implements prog.HeapBackend: it returns the data together with
// its V-bit masks and origin tags, checking A-bits per byte. Access
// violations are recorded and execution resumes with the raw bytes
// (Valgrind's behaviour), so one run can expose multiple bugs.
func (b *Backend) Load(addr, n, ccid uint64) (prog.Value, error) {
	var v prog.Value
	if err := b.LoadInto(&v, addr, n, ccid); err != nil {
		return prog.Value{}, err
	}
	return v, nil
}

// LoadInto is the allocation-free variant of Load: it reuses dst's
// Bytes/Valid/Origin capacity instead of allocating fresh planes per
// call. It implements prog.BulkLoader.
func (b *Backend) LoadInto(dst *prog.Value, addr, n, ccid uint64) error {
	b.cycles += accessCost(n)
	return b.loadInto(dst, addr, n, ccid)
}

// loadInto is the uncounted load kernel shared by Load and Memcpy.
// The all-accessible common case bulk-copies the data, vmask, and
// originT planes; any inaccessible byte in range falls back to the
// precise per-byte reference path.
func (b *Backend) loadInto(dst *prog.Value, addr, n, ccid uint64) error {
	if b.forceRef {
		return b.refLoadInto(dst, addr, n, ccid)
	}
	if err := b.checkMapped(addr, n); err != nil {
		return err
	}
	dst.Bytes = growBytes(dst.Bytes, n)
	dst.Valid = growBytes(dst.Valid, n)
	dst.Origin = growU32(dst.Origin, n)
	// The raw view doubles as the bounds check even for n == 0, matching
	// the historical RawRead-based behaviour.
	view, err := b.space.RawView(addr, n)
	if err != nil {
		return fmt.Errorf("shadow: raw read: %w", err)
	}
	if n == 0 {
		return nil
	}
	if o, ok := b.planeRange(addr, n); ok && allTrue(b.access[o:o+n]) {
		copy(dst.Bytes, view)
		copy(dst.Valid, b.vmask[o:o+n])
		copy(dst.Origin, b.originT[o:o+n])
		return nil
	}
	return b.refLoadInto(dst, addr, n, ccid)
}

// refLoadInto is the naive per-byte predecessor of the load kernel.
func (b *Backend) refLoadInto(dst *prog.Value, addr, n, ccid uint64) error {
	if err := b.checkMapped(addr, n); err != nil {
		return err
	}
	dst.Bytes = growBytes(dst.Bytes, n)
	dst.Valid = growBytes(dst.Valid, n)
	dst.Origin = growU32(dst.Origin, n)
	view, err := b.space.RawView(addr, n)
	if err != nil {
		return fmt.Errorf("shadow: raw read: %w", err)
	}
	if n == 0 {
		return nil
	}
	copy(dst.Bytes, view)
	violated := false
	for i := uint64(0); i < n; i++ {
		o, ok := b.off(addr + i)
		if !ok {
			clear(dst.Valid[i:])
			clear(dst.Origin[i:])
			break
		}
		if !b.access[o] {
			if !violated {
				b.recordAccessViolation(addr+i, n, ccid, false)
				violated = true
			}
			// Data read from inaccessible memory is also invalid.
			dst.Valid[i] = 0
			dst.Origin[i] = b.originT[o]
			continue
		}
		dst.Valid[i] = b.vmask[o]
		dst.Origin[i] = b.originT[o]
	}
	return nil
}

// Store implements prog.HeapBackend: it writes data and propagates the
// value's V-bits and origins into the shadow planes. Bytes landing in
// inaccessible memory are recorded as violations; they are materialized
// only inside red zones or freed buffers (regions this tool owns) and
// dropped elsewhere to keep the analysis heap intact.
func (b *Backend) Store(addr uint64, v prog.Value, ccid uint64) error {
	b.cycles += accessCost(uint64(len(v.Bytes)))
	return b.store(addr, v, ccid)
}

// store is the uncounted store kernel shared by Store, Memcpy, and
// Memset.
func (b *Backend) store(addr uint64, v prog.Value, ccid uint64) error {
	if b.forceRef {
		return b.refStore(addr, v, ccid)
	}
	n := uint64(len(v.Bytes))
	if err := b.checkMapped(addr, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	if o, ok := b.planeRange(addr, n); ok && allTrue(b.access[o:o+n]) {
		if err := b.space.RawWrite(addr, v.Bytes); err != nil {
			return fmt.Errorf("shadow: raw write: %w", err)
		}
		b.notePlanes(o, n)
		vm := b.vmask[o : o+n]
		if v.Valid == nil {
			fill(vm, byte(0xFF))
		} else {
			m := copy(vm, v.Valid)
			fill(vm[m:], byte(0xFF))
		}
		ot := b.originT[o : o+n]
		if v.Origin == nil {
			fill(ot, uint32(0))
		} else {
			m := copy(ot, v.Origin)
			fill(ot[m:], uint32(0))
		}
		return nil
	}
	return b.refStore(addr, v, ccid)
}

// refStore is the naive per-byte predecessor of the store kernel.
func (b *Backend) refStore(addr uint64, v prog.Value, ccid uint64) error {
	n := uint64(len(v.Bytes))
	if err := b.checkMapped(addr, n); err != nil {
		return err
	}
	if end := addr + n; n > 0 && end >= addr {
		if end > b.space.End() {
			end = b.space.End()
		}
		if o, ok := b.off(addr); ok {
			b.notePlanes(o, end-addr)
		}
	}
	violated := false
	for i := uint64(0); i < n; i++ {
		o, ok := b.off(addr + i)
		if !ok {
			break
		}
		vm := byte(0xFF)
		if v.Valid != nil && int(i) < len(v.Valid) {
			vm = v.Valid[i]
		}
		var org uint32
		if v.Origin != nil && int(i) < len(v.Origin) {
			org = v.Origin[i]
		}
		if !b.access[o] {
			if !violated {
				b.recordAccessViolation(addr+i, n, ccid, true)
				violated = true
			}
			if c := b.findContaining(addr + i); c == nil {
				continue // would corrupt untracked memory: drop
			}
			// Falls in a red zone or freed buffer: safe to land.
		}
		if err := b.space.RawWriteByte(addr+i, v.Bytes[i]); err != nil {
			return fmt.Errorf("shadow: raw write: %w", err)
		}
		if b.access[o] {
			b.vmask[o] = vm
			b.originT[o] = org
		}
	}
	return nil
}

// Memcpy implements prog.HeapBackend with byte-wise shadow propagation:
// V-bits and origins travel with the data, which is what lets origin
// tracking trace a leak at an output call back to the uninitialized
// allocation it started from. When both ranges are fully accessible,
// the data and both shadow planes move with three bulk copies; any
// red-zone, freed, or unmapped byte falls back to the load-then-store
// path through a reusable scratch value.
func (b *Backend) Memcpy(dst, src, n, ccid uint64) error {
	if b.forceRef {
		return b.refMemcpy(dst, src, n, ccid)
	}
	// One load charge and one store charge, folded into a single
	// charge site so the two halves cannot drift apart.
	b.cycles += 2 * accessCost(n)
	if n > 0 && b.space.Contains(src, n) && b.space.Contains(dst, n) {
		so, sok := b.planeRange(src, n)
		do, dok := b.planeRange(dst, n)
		if sok && dok && allTrue(b.access[so:so+n]) && allTrue(b.access[do:do+n]) {
			if err := b.space.RawMemmove(dst, src, n); err != nil {
				return fmt.Errorf("shadow: raw copy: %w", err)
			}
			b.notePlanes(do, n)
			copy(b.vmask[do:do+n], b.vmask[so:so+n])
			copy(b.originT[do:do+n], b.originT[so:so+n])
			return nil
		}
	}
	if err := b.loadInto(&b.cpScratch, src, n, ccid); err != nil {
		return err
	}
	return b.store(dst, b.cpScratch, ccid)
}

// refMemcpy is the naive predecessor of Memcpy, preserving its
// historical cycle arithmetic (charge, re-charge on load, compensate,
// charge on store — net two charges).
func (b *Backend) refMemcpy(dst, src, n, ccid uint64) error {
	b.cycles += accessCost(n)
	b.cycles += accessCost(n) // what Load charged
	var v prog.Value
	if err := b.refLoadInto(&v, src, n, ccid); err != nil {
		return err
	}
	b.cycles -= accessCost(n) // the historical compensation
	b.cycles += accessCost(n) // what Store charged
	return b.refStore(dst, v, ccid)
}

// Memset implements prog.HeapBackend; the filled range becomes fully
// valid. The all-accessible case fills the data plane natively and the
// shadow planes with bulk fills, never materializing an n-byte temp.
func (b *Backend) Memset(addr uint64, c byte, n, ccid uint64) error {
	if b.forceRef {
		return b.refMemset(addr, c, n, ccid)
	}
	b.cycles += accessCost(n)
	if err := b.checkMapped(addr, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	if o, ok := b.planeRange(addr, n); ok && allTrue(b.access[o:o+n]) {
		if err := b.space.RawMemset(addr, c, n); err != nil {
			return fmt.Errorf("shadow: raw fill: %w", err)
		}
		b.notePlanes(o, n)
		fill(b.vmask[o:o+n], byte(0xFF))
		fill(b.originT[o:o+n], uint32(0))
		return nil
	}
	b.setScratch = growBytes(b.setScratch, n)
	fill(b.setScratch, c)
	return b.store(addr, prog.Value{Bytes: b.setScratch}, ccid)
}

// refMemset is the naive predecessor of Memset: materialize the fill
// buffer, then store it (the store carries the cycle charge).
func (b *Backend) refMemset(addr uint64, c byte, n, ccid uint64) error {
	data := make([]byte, n)
	for i := range data {
		data[i] = c
	}
	b.cycles += accessCost(n)
	return b.refStore(addr, prog.Value{Bytes: data}, ccid)
}

// CheckUse implements prog.HeapBackend: V-bits are checked only here —
// when a value decides control flow, forms an address, or reaches a
// system call — never at loads, so padding copies (Figure 4) cannot
// raise false positives. The first invalid byte's origin tag leads the
// warning back to the vulnerable allocation.
func (b *Backend) CheckUse(v prog.Value, use prog.UseKind, ccid uint64) {
	b.cycles += shadowCostFactor
	if v.FullyValid() {
		return
	}
	tag := v.InvalidOrigin()
	b.recordUninit(tag, use, ccid, fmt.Sprintf("uninitialized value used as %s", use))
}

// ObservesUse implements prog.UseObserver: shadow analysis both charges
// cycles and records warnings at use points, so CheckUse calls must
// never be elided.
func (b *Backend) ObservesUse() bool { return true }

// checkMapped verifies the range lies inside the simulated space;
// running off the mapping is a hard fault even under analysis (a real
// process would die under Valgrind too).
func (b *Backend) checkMapped(addr, n uint64) error {
	if n == 0 {
		return nil
	}
	if !b.space.Contains(addr, n) {
		// Out-of-space accesses crash the analysis run like a real
		// SIGSEGV; record what we know first.
		b.recordAccessViolation(addr, n, 0, false)
		return b.space.CheckRead(addr, n)
	}
	return nil
}

// growBytes returns a length-n slice, reusing b's capacity when it
// suffices. Contents are unspecified; callers overwrite every element.
func growBytes(b []byte, n uint64) []byte {
	if uint64(cap(b)) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

// growU32 is growBytes for origin-tag planes.
func growU32(b []uint32, n uint64) []uint32 {
	if uint64(cap(b)) >= n {
		return b[:n]
	}
	return make([]uint32, n)
}
