package shadow

import (
	"testing"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
)

// benchBackend builds a backend with two disjoint buffers for copy
// benchmarks.
func benchBackend(b *testing.B, size uint64) (*Backend, uint64, uint64) {
	b.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		b.Fatal(err)
	}
	sb, err := New(space, Config{})
	if err != nil {
		b.Fatal(err)
	}
	src, err := sb.Alloc(heapsim.FnMalloc, 1, 1, size, 0)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := sb.Alloc(heapsim.FnMalloc, 2, 1, size, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := sb.Memset(src, 0xAB, size, 1); err != nil {
		b.Fatal(err)
	}
	return sb, src, dst
}

// BenchmarkShadowMemcpy is the memcpy-heavy workload the word-parallel
// kernels target: V-bits and origins travel with every byte.
func BenchmarkShadowMemcpy(b *testing.B) {
	for _, size := range []uint64{64, 1024, 16384} {
		b.Run(sizeName(size), func(b *testing.B) {
			sb, src, dst := benchBackend(b, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sb.Memcpy(dst, src, size, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkShadowStore(b *testing.B) {
	const size = 1024
	sb, _, dst := benchBackend(b, size)
	v := prog.Value{Bytes: make([]byte, size)}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sb.Store(dst, v, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShadowLoad(b *testing.B) {
	const size = 1024
	sb, src, _ := benchBackend(b, size)
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sb.Load(src, size, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShadowMemset(b *testing.B) {
	const size = 1024
	sb, _, dst := benchBackend(b, size)
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sb.Memset(dst, 0x5A, size, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeName(n uint64) string {
	switch {
	case n >= 1024:
		return itoa(n/1024) + "KiB"
	default:
		return itoa(n) + "B"
	}
}

func itoa(n uint64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
