package shadow

import (
	"testing"

	"heaptherapy/internal/heapsim"
)

func TestLeaksGroupedByContext(t *testing.T) {
	b := newBackend(t, Config{})
	// Two leaks from context 0xA, one from 0xB, one freed (no leak).
	p1 := mustAlloc(t, b, heapsim.FnMalloc, 0xA, 1, 100, 0)
	_ = p1
	mustAlloc(t, b, heapsim.FnMalloc, 0xA, 1, 50, 0)
	mustAlloc(t, b, heapsim.FnCalloc, 0xB, 2, 10, 0)
	freed := mustAlloc(t, b, heapsim.FnMalloc, 0xC, 1, 64, 0)
	if err := b.Free(freed, 1); err != nil {
		t.Fatal(err)
	}

	leaks := b.Leaks()
	if len(leaks) != 2 {
		t.Fatalf("leaks = %v, want 2 contexts", leaks)
	}
	// Sorted by bytes descending: context 0xA (150 B) first.
	if leaks[0].AllocCCID != 0xA || leaks[0].Buffers != 2 || leaks[0].Bytes != 150 {
		t.Errorf("leaks[0] = %+v, want 2 buffers / 150 B from 0xA", leaks[0])
	}
	if leaks[1].AllocCCID != 0xB || leaks[1].Bytes != 20 {
		t.Errorf("leaks[1] = %+v, want 20 B from 0xB", leaks[1])
	}
}

func TestDeferredFreeIsNotALeak(t *testing.T) {
	b := newBackend(t, Config{})
	p := mustAlloc(t, b, heapsim.FnMalloc, 0xA, 1, 64, 0)
	if err := b.Free(p, 1); err != nil {
		t.Fatal(err)
	}
	// The block sits in the deferred queue; the program DID free it.
	if leaks := b.Leaks(); len(leaks) != 0 {
		t.Errorf("deferred block reported as leak: %v", leaks)
	}
}

func TestLeakString(t *testing.T) {
	l := Leak{AllocFn: heapsim.FnMalloc, AllocCCID: 0x99, Buffers: 3, Bytes: 300}
	want := "300 byte(s) in 3 buffer(s) from malloc@0x99"
	if got := l.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
