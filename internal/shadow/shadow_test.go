package shadow

import (
	"strings"
	"testing"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

func newBackend(t *testing.T, cfg Config) *Backend {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(space, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustAlloc(t *testing.T, b *Backend, fn heapsim.AllocFn, ccid, n, size, align uint64) uint64 {
	t.Helper()
	p, err := b.Alloc(fn, ccid, n, size, align)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	return p
}

func warningsOfType(b *Backend, typ patch.TypeMask) []Warning {
	var out []Warning
	for _, w := range b.Warnings() {
		if w.Type == typ {
			out = append(out, w)
		}
	}
	return out
}

func TestOverflowWriteDetected(t *testing.T) {
	b := newBackend(t, Config{})
	p := mustAlloc(t, b, heapsim.FnMalloc, 0xAAA, 1, 16, 0)

	// In-bounds write: no warning.
	if err := b.Store(p, prog.Value{Bytes: make([]byte, 16)}, 1); err != nil {
		t.Fatal(err)
	}
	if len(b.Warnings()) != 0 {
		t.Fatalf("in-bounds write warned: %v", b.Warnings())
	}

	// One byte past the end: overflow into the red zone.
	if err := b.Store(p+16, prog.Value{Bytes: []byte{0x41}}, 2); err != nil {
		t.Fatal(err)
	}
	ws := warningsOfType(b, patch.TypeOverflow)
	if len(ws) != 1 {
		t.Fatalf("overflow warnings = %d, want 1 (%v)", len(ws), b.Warnings())
	}
	w := ws[0]
	if w.AllocCCID != 0xAAA || w.AllocFn != heapsim.FnMalloc {
		t.Errorf("warning blames %s@%#x, want malloc@0xaaa", w.AllocFn, w.AllocCCID)
	}
	if !w.Write {
		t.Error("overwrite not marked as write")
	}
	if got := w.Patch(); got.Types != patch.TypeOverflow || got.CCID != 0xAAA {
		t.Errorf("Patch() = %v", got)
	}
}

func TestOverreadDetected(t *testing.T) {
	b := newBackend(t, Config{})
	p := mustAlloc(t, b, heapsim.FnMalloc, 0xBBB, 1, 32, 0)
	// Read 48 bytes from a 32-byte buffer: Heartbleed's pattern.
	if _, err := b.Load(p, 48, 7); err != nil {
		t.Fatal(err)
	}
	ws := warningsOfType(b, patch.TypeOverflow)
	if len(ws) != 1 {
		t.Fatalf("overread warnings = %d, want 1", len(ws))
	}
	if ws[0].Write {
		t.Error("overread marked as write")
	}
	if ws[0].AccessCCID != 7 {
		t.Errorf("access CCID = %#x, want 7", ws[0].AccessCCID)
	}
}

func TestUseAfterFreeDetected(t *testing.T) {
	b := newBackend(t, Config{})
	p := mustAlloc(t, b, heapsim.FnMalloc, 0xCCC, 1, 64, 0)
	if err := b.Free(p, 0x111); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Load(p, 8, 0x222); err != nil {
		t.Fatal(err)
	}
	ws := warningsOfType(b, patch.TypeUseAfterFree)
	if len(ws) != 1 {
		t.Fatalf("UAF warnings = %d, want 1 (%v)", len(ws), b.Warnings())
	}
	if ws[0].AllocCCID != 0xCCC {
		t.Errorf("UAF blames CCID %#x, want allocation CCID 0xccc", ws[0].AllocCCID)
	}
	if !strings.Contains(ws[0].Detail, "0x111") {
		t.Errorf("detail %q missing free-time CCID", ws[0].Detail)
	}
}

func TestFreedBlockNotReused(t *testing.T) {
	b := newBackend(t, Config{})
	p := mustAlloc(t, b, heapsim.FnMalloc, 1, 1, 128, 0)
	if err := b.Free(p, 2); err != nil {
		t.Fatal(err)
	}
	// Same-size allocation must NOT get the freed block back while it
	// sits in the deferred queue.
	q := mustAlloc(t, b, heapsim.FnMalloc, 3, 1, 128, 0)
	if q == p {
		t.Error("freed block reused despite FIFO deferral")
	}
}

func TestQueueQuotaEviction(t *testing.T) {
	b := newBackend(t, Config{QueueQuota: 256})
	var ptrs []uint64
	for i := 0; i < 8; i++ {
		ptrs = append(ptrs, mustAlloc(t, b, heapsim.FnMalloc, uint64(i), 1, 100, 0))
	}
	for _, p := range ptrs {
		if err := b.Free(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	// 8 x 100 bytes through a 256-byte queue: most must be evicted.
	if b.queueBytes > 256 {
		t.Errorf("queueBytes = %d > quota 256", b.queueBytes)
	}
	if len(b.queue) > 2 {
		t.Errorf("queue holds %d blocks, want <= 2", len(b.queue))
	}
}

func TestDoubleFreeWarnsAndContinues(t *testing.T) {
	b := newBackend(t, Config{})
	p := mustAlloc(t, b, heapsim.FnMalloc, 5, 1, 32, 0)
	if err := b.Free(p, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(p, 2); err != nil {
		t.Fatalf("double free returned hard error %v; analysis should continue", err)
	}
	if len(warningsOfType(b, patch.TypeUseAfterFree)) == 0 {
		t.Error("double free produced no warning")
	}
}

func TestUninitReadAtOutput(t *testing.T) {
	b := newBackend(t, Config{})
	p := mustAlloc(t, b, heapsim.FnMalloc, 0xDDD, 1, 64, 0)
	v, err := b.Load(p, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.FullyValid() {
		t.Fatal("fresh malloc memory is valid; want invalid")
	}
	// The load alone must not warn (checked only at use points).
	if len(b.Warnings()) != 0 {
		t.Fatalf("load of uninit memory warned: %v", b.Warnings())
	}
	b.CheckUse(v, prog.UseOutput, 9)
	ws := warningsOfType(b, patch.TypeUninitRead)
	if len(ws) != 1 {
		t.Fatalf("UR warnings = %d, want 1", len(ws))
	}
	if ws[0].AllocCCID != 0xDDD || ws[0].AllocFn != heapsim.FnMalloc {
		t.Errorf("UR blames %s@%#x, want malloc@0xddd", ws[0].AllocFn, ws[0].AllocCCID)
	}
	if ws[0].Use != prog.UseOutput {
		t.Errorf("use kind = %v, want output", ws[0].Use)
	}
}

func TestCallocIsInitialized(t *testing.T) {
	b := newBackend(t, Config{})
	p := mustAlloc(t, b, heapsim.FnCalloc, 1, 4, 16, 0)
	v, err := b.Load(p, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.FullyValid() {
		t.Error("calloc memory reported uninitialized")
	}
	b.CheckUse(v, prog.UseOutput, 1)
	if len(b.Warnings()) != 0 {
		t.Errorf("calloc use warned: %v", b.Warnings())
	}
}

func TestInitializedBytesAreValid(t *testing.T) {
	b := newBackend(t, Config{})
	p := mustAlloc(t, b, heapsim.FnMalloc, 1, 1, 32, 0)
	if err := b.Store(p, prog.Value{Bytes: []byte("abcdefgh")}, 1); err != nil {
		t.Fatal(err)
	}
	v, err := b.Load(p, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.FullyValid() {
		t.Error("stored bytes read back invalid")
	}
	// The suffix is still uninitialized.
	v2, err := b.Load(p+8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v2.FullyValid() {
		t.Error("unwritten suffix reads valid")
	}
}

// TestPaddingCopyNoFalsePositive reproduces Figure 4: copying a
// partially-initialized struct (including padding) must not warn as
// long as the padding is never used at a use point.
func TestPaddingCopyNoFalsePositive(t *testing.T) {
	b := newBackend(t, Config{})
	p := mustAlloc(t, b, heapsim.FnMalloc, 1, 1, 8, 0)
	// Initialize 5 of 8 bytes (uint32 i + uint8 c; 3 bytes padding).
	if err := b.Store(p, prog.Value{Bytes: []byte{1, 2, 3, 4, 5}}, 1); err != nil {
		t.Fatal(err)
	}
	q := mustAlloc(t, b, heapsim.FnMalloc, 2, 1, 8, 0)
	// y = *p: the compiler copies all 8 bytes.
	if err := b.Memcpy(q, p, 8, 1); err != nil {
		t.Fatal(err)
	}
	if len(b.Warnings()) != 0 {
		t.Fatalf("padding copy warned: %v", b.Warnings())
	}
	// Using the initialized field is fine too.
	v, _ := b.Load(q, 4, 1)
	b.CheckUse(v, prog.UseControlFlow, 1)
	if len(b.Warnings()) != 0 {
		t.Fatalf("use of initialized field warned: %v", b.Warnings())
	}
	// Only using the padding itself warns.
	pad, _ := b.Load(q+5, 3, 1)
	b.CheckUse(pad, prog.UseControlFlow, 1)
	if len(warningsOfType(b, patch.TypeUninitRead)) != 1 {
		t.Error("use of padding did not warn")
	}
}

// TestOriginTracksThroughCopy: a leak via an intermediate buffer must
// be traced back to the original allocation (origin tracking).
func TestOriginTracksThroughCopy(t *testing.T) {
	b := newBackend(t, Config{})
	src := mustAlloc(t, b, heapsim.FnMalloc, 0x123, 1, 32, 0)
	dst := mustAlloc(t, b, heapsim.FnCalloc, 0x456, 4, 8, 0)
	if err := b.Memcpy(dst, src, 32, 1); err != nil {
		t.Fatal(err)
	}
	v, err := b.Load(dst, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.CheckUse(v, prog.UseOutput, 1)
	ws := warningsOfType(b, patch.TypeUninitRead)
	if len(ws) != 1 {
		t.Fatalf("UR warnings = %d, want 1", len(ws))
	}
	if ws[0].AllocCCID != 0x123 {
		t.Errorf("origin CCID = %#x, want 0x123 (the source allocation)", ws[0].AllocCCID)
	}
}

func TestChainedWarningsSuppressed(t *testing.T) {
	b := newBackend(t, Config{})
	p := mustAlloc(t, b, heapsim.FnMalloc, 1, 1, 16, 0)
	v, _ := b.Load(p, 8, 1)
	for i := 0; i < 10; i++ {
		b.CheckUse(v, prog.UseOutput, 1)
	}
	if got := len(warningsOfType(b, patch.TypeUninitRead)); got != 1 {
		t.Errorf("repeated use warned %d times, want 1", got)
	}
	// A different use kind is a distinct finding.
	b.CheckUse(v, prog.UseControlFlow, 1)
	if got := len(warningsOfType(b, patch.TypeUninitRead)); got != 2 {
		t.Errorf("distinct use kind suppressed (got %d warnings)", got)
	}
}

func TestMemalignRedZonesAndAlignment(t *testing.T) {
	b := newBackend(t, Config{})
	p := mustAlloc(t, b, heapsim.FnMemalign, 1, 1, 100, 64)
	if p%64 != 0 {
		t.Fatalf("memalign payload %#x not 64-aligned", p)
	}
	// Both sides must be red.
	if _, err := b.Load(p-1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Store(p+100, prog.Value{Bytes: []byte{1}}, 1); err != nil {
		t.Fatal(err)
	}
	if got := len(warningsOfType(b, patch.TypeOverflow)); got != 2 {
		t.Errorf("red-zone probes warned %d, want 2 (%v)", got, b.Warnings())
	}
}

func TestReallocShrinkGrow(t *testing.T) {
	b := newBackend(t, Config{})
	p := mustAlloc(t, b, heapsim.FnMalloc, 0x1, 1, 64, 0)
	if err := b.Store(p, prog.Value{Bytes: []byte("persisted!")}, 1); err != nil {
		t.Fatal(err)
	}

	// Grow: data survives, new region is invalid, CCID updates.
	q, err := b.Realloc(0x2, p, 256)
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.Load(q, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Bytes) != "persisted!" {
		t.Errorf("data after grow = %q", v.Bytes)
	}
	if !v.FullyValid() {
		t.Error("initialized prefix lost validity across realloc")
	}
	tail, err := b.Load(q+64, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tail.FullyValid() {
		t.Error("grown region reads valid; want invalid")
	}
	b.CheckUse(tail, prog.UseOutput, 1)
	ws := warningsOfType(b, patch.TypeUninitRead)
	if len(ws) != 1 || ws[0].AllocCCID != 0x2 || ws[0].AllocFn != heapsim.FnRealloc {
		t.Errorf("realloc UR warning = %v, want realloc@0x2", ws)
	}

	// Shrink: the cut-off region becomes inaccessible.
	r, err := b.Realloc(0x3, q, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Load(r+20, 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := len(warningsOfType(b, patch.TypeOverflow)); got != 1 {
		t.Errorf("access past shrunk buffer warned %d, want 1", got)
	}
}

func TestReallocNilIsAlloc(t *testing.T) {
	b := newBackend(t, Config{})
	p, err := b.Realloc(0x9, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p == 0 {
		t.Fatal("realloc(nil) returned nil")
	}
	v, _ := b.Load(p, 8, 1)
	if v.FullyValid() {
		t.Error("realloc(nil) memory valid; want uninitialized")
	}
}

func TestWarningString(t *testing.T) {
	w := Warning{
		Type: patch.TypeOverflow, Addr: 0x2000, Size: 4,
		AllocFn: heapsim.FnMalloc, AllocCCID: 0x77, Detail: "test",
	}
	s := w.String()
	for _, want := range []string{"OVERFLOW", "0x2000", "malloc", "0x77"} {
		if !strings.Contains(s, want) {
			t.Errorf("warning string %q missing %q", s, want)
		}
	}
}

func TestWildAccessRecorded(t *testing.T) {
	b := newBackend(t, Config{})
	// An address inside the space but in no tracked chunk (allocator
	// metadata region) — writes there are dropped.
	space := b.space
	addr := space.Base() + space.Size() - 8
	_ = addr
	// Use an address beyond every chunk but inside the arena page.
	p := mustAlloc(t, b, heapsim.FnMalloc, 1, 1, 16, 0)
	far := p + 4096
	if space.Contains(far, 1) {
		if err := b.Store(far, prog.Value{Bytes: []byte{1}}, 1); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFreeNilNoop(t *testing.T) {
	b := newBackend(t, Config{})
	if err := b.Free(0, 1); err != nil {
		t.Errorf("free(nil) = %v", err)
	}
	if len(b.Warnings()) != 0 {
		t.Error("free(nil) warned")
	}
}
