package shadow

import (
	"reflect"
	"testing"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
)

// violate drives one fixed warning-producing workload: an allocation,
// an in-bounds store, an overflow into the red zone, an uninitialized
// read, and a double free. Returns the warning strings.
func violate(t *testing.T, b *Backend) []string {
	t.Helper()
	p := mustAlloc(t, b, heapsim.FnMalloc, 0xAAA, 1, 32, 0)
	if err := b.Store(p, prog.Value{Bytes: make([]byte, 8)}, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Store(p+32, prog.Value{Bytes: []byte{0x41}}, 2); err != nil {
		t.Fatal(err)
	}
	v, err := b.Load(p+8, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	b.CheckUse(v, prog.UseOutput, 3)
	if err := b.Free(p, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(p, 5); err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, w := range b.Warnings() {
		out = append(out, w.String())
	}
	return out
}

// TestBackendResetDifferential pins the pooled-analysis contract: a
// Reset backend must behave bit-identically to a fresh one — same
// warnings, same addresses, same leak state — across repeated
// workloads, including after the plane watermark has grown.
func TestBackendResetDifferential(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	recycled, err := New(space, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := violate(t, newBackend(t, Config{}))
	if len(want) == 0 {
		t.Fatal("workload produced no warnings")
	}
	for round := 0; round < 3; round++ {
		if round > 0 {
			space.Reset()
			if err := recycled.Reset(); err != nil {
				t.Fatal(err)
			}
		}
		got := violate(t, recycled)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d diverges from fresh:\n got:  %q\n want: %q", round, got, want)
		}
	}
}

// TestBackendResetPreservesHandedOutWarnings pins the aliasing hazard
// that forced Reset to drop (not truncate) the warning buffer: a
// report holding the previous run's Warnings slice must survive the
// backend's recycling intact.
func TestBackendResetPreservesHandedOutWarnings(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(space, Config{})
	if err != nil {
		t.Fatal(err)
	}
	first := violate(t, b)
	held := b.Warnings() // what an analysis.Report would retain
	space.Reset()
	if err := b.Reset(); err != nil {
		t.Fatal(err)
	}
	if len(b.Warnings()) != 0 {
		t.Fatalf("warnings survive reset: %v", b.Warnings())
	}
	violate(t, b)
	var after []string
	for _, w := range held {
		after = append(after, w.String())
	}
	if !reflect.DeepEqual(after, first) {
		t.Fatalf("held warnings clobbered by post-reset run:\n got:  %q\n want: %q", after, first)
	}
}

// TestBackendResetClearsState walks the observable surfaces one by
// one: after Reset nothing of the previous run may remain.
func TestBackendResetClearsState(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(space, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := mustAlloc(t, b, heapsim.FnMalloc, 0xBBB, 1, 16, 0)
	if err := b.Store(p+16, prog.Value{Bytes: []byte{1}}, 1); err != nil {
		t.Fatal(err)
	}
	// p is never freed: a leak.
	if len(b.Warnings()) == 0 || len(b.Leaks()) == 0 {
		t.Fatalf("setup: warnings=%d leaks=%d", len(b.Warnings()), len(b.Leaks()))
	}
	space.Reset()
	if err := b.Reset(); err != nil {
		t.Fatal(err)
	}
	if len(b.Warnings()) != 0 {
		t.Errorf("warnings after reset: %v", b.Warnings())
	}
	if leaks := b.Leaks(); len(leaks) != 0 {
		t.Errorf("leaks after reset: %v", leaks)
	}
	if c := b.Cycles(); c != 0 {
		t.Errorf("cycles after reset: %d", c)
	}
	// A duplicate of the pre-reset warning must be reported again (the
	// dedup set was cleared), at the same address (the heap rewound).
	q := mustAlloc(t, b, heapsim.FnMalloc, 0xBBB, 1, 16, 0)
	if q != p {
		t.Errorf("allocation address moved across reset: %#x -> %#x", p, q)
	}
	if err := b.Store(q+16, prog.Value{Bytes: []byte{1}}, 1); err != nil {
		t.Fatal(err)
	}
	if len(b.Warnings()) != 1 {
		t.Errorf("deduped warning not re-reported after reset: %v", b.Warnings())
	}
}
