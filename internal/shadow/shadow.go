// Package shadow implements the offline attack-analysis heap: a
// Memcheck-style shadow memory over the simulated address space,
// extended — as Section V of the paper describes — to associate every
// heap buffer with its allocation-time calling-context ID.
//
// For every byte of memory the backend maintains an Accessibility bit
// (A-bit) and a V-bit mask (one validity bit per data bit); for every
// byte it also tracks an origin tag that leads back to the allocating
// {FUN, CCID}. Heap buffers are surrounded by 16-byte red zones marked
// inaccessible; freed buffers are marked inaccessible and parked in a
// quota-bounded FIFO queue so stale pointers keep faulting instead of
// hitting recycled memory. V-bits propagate on every copy and are
// checked only at use points (control flow, addresses, system calls),
// which avoids the padding false positives of Figure 4.
//
// Unlike the online defense, this backend never stops the program: it
// records warnings and resumes (Section V, "How to handle multiple
// vulnerabilities"), so a single attack input can reveal every
// vulnerability it exercises. Writes that fault are applied only where
// they land in red zones or freed buffers — regions this tool owns —
// and dropped where they would corrupt live program or allocator
// state, keeping long analysis runs alive.
package shadow

import (
	"fmt"
	"sort"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/telemetry"
)

// Defaults for Config.
const (
	// DefaultRedZone is the red-zone size on each side of a buffer.
	DefaultRedZone = 16
	// DefaultQueueQuota bounds the freed-block FIFO queue. The paper
	// uses 2 GiB on real workloads; analysis programs in this
	// simulation are far smaller, so the default is scaled down while
	// remaining far above any corpus program's live heap.
	DefaultQueueQuota = 8 << 20
)

// Config parameterizes the analysis backend.
type Config struct {
	// RedZone is the per-side red-zone size (0 = DefaultRedZone).
	RedZone uint64
	// QueueQuota bounds the total bytes parked in the freed-block
	// queue (0 = DefaultQueueQuota).
	QueueQuota uint64
	// DeferFilter, when non-nil, restricts free-deferral to buffers
	// whose allocation-time CCID it accepts; other buffers are released
	// immediately. This implements Section IX's quota-partitioned
	// analysis: when a program's freed memory exceeds the queue quota,
	// the attack is replayed N times, each run deferring only one
	// CCID subspace, so every run consumes ~1/N of the memory.
	DeferFilter func(allocCCID uint64) bool
	// Telemetry, when non-nil, receives a counter and trace event per
	// recorded warning and per block the freed-block quarantine could
	// not retain (filter rejection or quota eviction).
	Telemetry *telemetry.Scope
}

// chunk tracks one live or freed heap buffer.
type chunk struct {
	base     uint64 // underlying allocation address
	user     uint64 // user-visible payload address
	size     uint64 // user-visible size
	fn       heapsim.AllocFn
	ccid     uint64 // allocation-time CCID
	originID uint32
	aligned  bool
	freed    bool
	freeCCID uint64 // context of the free() call, for UAF reports
	released bool   // evicted from the FIFO queue; memory returned
}

func (c *chunk) end() uint64 { return c.user + c.size }

// origin records where an origin tag came from.
type origin struct {
	fn   heapsim.AllocFn
	ccid uint64
}

// Backend is the shadow-memory heap; it implements prog.HeapBackend.
type Backend struct {
	heap  *heapsim.Heap
	space *mem.Space
	cfg   Config

	// Shadow planes, indexed by address-space offset.
	access  []bool   // A-bits (true = accessible)
	vmask   []byte   // V-bit mask per byte (0xFF = fully valid)
	originT []uint32 // origin tag per byte

	origins []origin // origin table; tag N is origins[N-1]

	// Chunk index: sorted by user address for containment lookups.
	chunks []*chunk

	// Freed-block FIFO.
	queue      []*chunk
	queueBytes uint64

	warnings []Warning
	warnSeen map[warnKey]bool

	cycles uint64

	// touchLo/touchHi watermark the plane region dirtied since the last
	// Reset (plane offsets, lo > hi when untouched), so Reset restores
	// defaults only over what a run actually wrote instead of
	// re-clearing megabytes of already-default plane.
	touchLo, touchHi uint64

	// cpScratch and setScratch are reusable buffers for the Memcpy and
	// Memset slow paths, so falling off the fast path costs a copy, not
	// an allocation per call.
	cpScratch  prog.Value
	setScratch []byte

	// forceRef routes every kernel through its naive refXxx
	// predecessor; set only by the differential tests.
	forceRef bool
}

var (
	_ prog.HeapBackend = (*Backend)(nil)
	_ prog.BulkLoader  = (*Backend)(nil)
)

// warnKey dedupes chained warnings: once a buffer has warned for a
// vulnerability type at a use kind, repeats are suppressed, mirroring
// the paper's set-valid-after-check rule.
type warnKey struct {
	originID uint32
	chunkID  uint64 // chunk user address for overflow/UAF
	typ      patch.TypeMask
	use      prog.UseKind
	write    bool // overwrite vs overread are distinct findings
}

// New creates a shadow backend with a fresh heap in space.
func New(space *mem.Space, cfg Config) (*Backend, error) {
	h, err := heapsim.New(space)
	if err != nil {
		return nil, fmt.Errorf("shadow: creating analysis heap: %w", err)
	}
	if cfg.RedZone == 0 {
		cfg.RedZone = DefaultRedZone
	}
	if cfg.QueueQuota == 0 {
		cfg.QueueQuota = DefaultQueueQuota
	}
	// Allocator-level counts flow into the same scope as the analysis
	// events.
	h.SetTelemetry(cfg.Telemetry)
	return &Backend{
		heap:     h,
		space:    space,
		cfg:      cfg,
		warnSeen: make(map[warnKey]bool),
		touchLo:  ^uint64(0),
	}, nil
}

// Reset recycles the backend for a fresh analysis run. The caller must
// Reset the space first; the underlying heap then re-establishes its
// arena at the same address a fresh construction would, and the chunk
// index, origin table, freed-block queue, warnings, and cycle count
// clear. The shadow planes restore their defaults (accessible, fully
// valid, no origin) over the touched watermark only, so reset cost is
// proportional to what the previous run dirtied — the same contract as
// mem.Space.Reset. The campaign's pooled-vs-fresh differential test
// proves a Reset backend bit-identical to a new one over the full
// oracle matrix.
//
// The warnings slice is dropped rather than truncated: Warnings()
// hands out the live slice, and reports taken from a previous run must
// not see their findings overwritten by the next one.
func (b *Backend) Reset() error {
	if err := b.heap.Reset(); err != nil {
		return fmt.Errorf("shadow: reset: %w", err)
	}
	if b.touchLo < b.touchHi {
		lo, hi := b.touchLo, b.touchHi
		if n := uint64(len(b.access)); hi > n {
			hi = n
		}
		if lo < hi {
			fill(b.access[lo:hi], true)
			fill(b.vmask[lo:hi], byte(0xFF))
			fill(b.originT[lo:hi], uint32(0))
		}
	}
	b.touchLo, b.touchHi = ^uint64(0), 0
	b.origins = b.origins[:0]
	b.chunks = b.chunks[:0]
	b.queue = b.queue[:0]
	b.queueBytes = 0
	b.warnings = nil
	clear(b.warnSeen)
	b.cycles = 0
	return nil
}

// notePlanes widens the touch watermark to cover n plane bytes at
// offset o. Every plane write site calls it (conservatively — noting
// more than was written only makes Reset clear a few extra default
// bytes, never miss a dirty one).
func (b *Backend) notePlanes(o, n uint64) {
	if n == 0 {
		return
	}
	if o < b.touchLo {
		b.touchLo = o
	}
	if o+n > b.touchHi {
		b.touchHi = o + n
	}
}

// Heap exposes the underlying allocator for statistics.
func (b *Backend) Heap() *heapsim.Heap { return b.heap }

// Warnings returns all recorded warnings in detection order.
func (b *Backend) Warnings() []Warning { return b.warnings }

// Cycles implements prog.HeapBackend. Shadow execution is heavyweight
// by design (Valgrind's Memcheck costs ~22x); the multiplier documents
// that, though offline analysis time is not part of any paper table.
func (b *Backend) Cycles() uint64 { return b.cycles }

// --- shadow plane bookkeeping ----------------------------------------------

// off converts an address to a shadow-plane index, growing the planes
// on demand. Returns false for addresses outside the space.
func (b *Backend) off(addr uint64) (uint64, bool) {
	if addr < b.space.Base() || addr >= b.space.End() {
		return 0, false
	}
	o := addr - b.space.Base()
	if o >= uint64(len(b.access)) {
		grow := b.space.Size()
		newAccess := make([]bool, grow)
		copy(newAccess, b.access)
		b.access = newAccess
		newV := make([]byte, grow)
		copy(newV, b.vmask)
		// Memory outside tracked heap buffers (globals, allocator
		// slack) defaults to accessible and valid.
		for i := uint64(len(b.originT)); i < grow; i++ {
			newAccess[i] = true
			newV[i] = 0xFF
		}
		b.vmask = newV
		newO := make([]uint32, grow)
		copy(newO, b.originT)
		b.originT = newO
	}
	return o, true
}

// planeRange grows the planes to cover [addr, addr+n) and returns the
// plane offset of addr; n must be nonzero and the range in-space.
func (b *Backend) planeRange(addr, n uint64) (uint64, bool) {
	o, ok := b.off(addr)
	if !ok {
		return 0, false
	}
	if _, ok := b.off(addr + n - 1); !ok {
		return 0, false
	}
	return o, true
}

// markRange sets A-bits, V-masks, and origins over [addr, addr+n),
// clamped to the space, with bulk plane fills.
func (b *Backend) markRange(addr, n uint64, accessible bool, vm byte, org uint32) {
	if b.forceRef {
		b.refMarkRange(addr, n, accessible, vm, org)
		return
	}
	if n == 0 {
		return
	}
	end := addr + n
	if end < addr || end > b.space.End() {
		end = b.space.End()
	}
	if addr >= end {
		return
	}
	m := end - addr
	o, ok := b.planeRange(addr, m)
	if !ok {
		return
	}
	b.notePlanes(o, m)
	fill(b.access[o:o+m], accessible)
	fill(b.vmask[o:o+m], vm)
	fill(b.originT[o:o+m], org)
}

// refMarkRange is the naive per-byte predecessor of markRange.
func (b *Backend) refMarkRange(addr, n uint64, accessible bool, vm byte, org uint32) {
	if end := addr + n; n > 0 && end >= addr {
		if end > b.space.End() {
			end = b.space.End()
		}
		if o, ok := b.off(addr); ok {
			b.notePlanes(o, end-addr)
		}
	}
	for i := uint64(0); i < n; i++ {
		o, ok := b.off(addr + i)
		if !ok {
			return
		}
		b.access[o] = accessible
		b.vmask[o] = vm
		b.originT[o] = org
	}
}

// fill sets every element of dst to v at copy bandwidth: zero values
// compile to a memclr, nonzero values seed one element and double with
// copy.
func fill[T bool | byte | uint32](dst []T, v T) {
	var zero T
	if v == zero {
		clear(dst)
		return
	}
	if len(dst) == 0 {
		return
	}
	dst[0] = v
	for filled := 1; filled < len(dst); filled *= 2 {
		copy(dst[filled:], dst[:filled])
	}
}

// allTrue reports whether every A-bit in the slice is set: the
// fast-path predicate for "no red zone, freed block, or unmapped byte
// in range".
func allTrue(a []bool) bool {
	for _, v := range a {
		if !v {
			return false
		}
	}
	return true
}

// newOrigin allocates an origin tag.
func (b *Backend) newOrigin(fn heapsim.AllocFn, ccid uint64) uint32 {
	b.origins = append(b.origins, origin{fn: fn, ccid: ccid})
	return uint32(len(b.origins))
}

// originInfo resolves an origin tag.
func (b *Backend) originInfo(tag uint32) (origin, bool) {
	if tag == 0 || int(tag) > len(b.origins) {
		return origin{}, false
	}
	return b.origins[tag-1], true
}

// --- chunk index -------------------------------------------------------------

// insertChunk adds c to the sorted index, evicting any stale released
// chunks that overlap its full footprint.
func (b *Backend) insertChunk(c *chunk) {
	lo := c.base
	hi := c.end() + b.cfg.RedZone
	kept := b.chunks[:0]
	for _, old := range b.chunks {
		if old.released && old.base < hi && lo < old.end()+b.cfg.RedZone {
			continue // region recycled by the allocator
		}
		kept = append(kept, old)
	}
	b.chunks = kept
	i := sort.Search(len(b.chunks), func(i int) bool { return b.chunks[i].user >= c.user })
	b.chunks = append(b.chunks, nil)
	copy(b.chunks[i+1:], b.chunks[i:])
	b.chunks[i] = c
}

// findByUser returns the chunk whose user address is exactly ptr.
func (b *Backend) findByUser(ptr uint64) *chunk {
	i := sort.Search(len(b.chunks), func(i int) bool { return b.chunks[i].user >= ptr })
	if i < len(b.chunks) && b.chunks[i].user == ptr && !b.chunks[i].released {
		return b.chunks[i]
	}
	return nil
}

// findContaining returns the chunk whose footprint (red zones and
// alignment padding included) contains addr. It runs a linear scan:
// it is only called to classify an access violation, which is rare,
// and chunk footprints are disjoint but variably padded, which defeats
// a simple binary search on user addresses.
func (b *Backend) findContaining(addr uint64) *chunk {
	for _, c := range b.chunks {
		if c.released {
			continue
		}
		if addr >= c.base && addr < c.end()+b.cfg.RedZone {
			return c
		}
	}
	return nil
}

// --- allocation --------------------------------------------------------------

// Alloc implements prog.HeapBackend.
func (b *Backend) Alloc(fn heapsim.AllocFn, ccid, n, size, align uint64) (uint64, error) {
	b.cycles += prog.CycAlloc * shadowCostFactor
	rz := b.cfg.RedZone
	userSize := size
	if fn == heapsim.FnCalloc {
		userSize = n * size
	}

	var base, user uint64
	var err error
	aligned := false
	switch fn {
	case heapsim.FnMalloc, heapsim.FnCalloc, heapsim.FnRealloc:
		base, err = b.heap.Malloc(userSize + 2*rz)
		user = base + rz
	case heapsim.FnMemalign, heapsim.FnAlignedAlloc:
		aligned = true
		if align < rz {
			align = rz
		}
		pre := align
		for pre < rz {
			pre += align
		}
		base, err = b.heap.Memalign(align, userSize+pre+rz)
		user = base + pre
	default:
		return 0, fmt.Errorf("shadow: Alloc with unsupported function %v", fn)
	}
	if err != nil {
		return 0, fmt.Errorf("shadow: underlying allocation: %w", err)
	}

	org := b.newOrigin(fn, ccid)
	c := &chunk{
		base: base, user: user, size: userSize,
		fn: fn, ccid: ccid, originID: org, aligned: aligned,
	}
	b.insertChunk(c)

	// Leading red zone, payload, trailing red zone.
	b.markRange(base, user-base, false, 0, org)
	if fn == heapsim.FnCalloc {
		if err := b.space.RawMemset(user, 0, userSize); err != nil {
			return 0, fmt.Errorf("shadow: zeroing calloc payload: %w", err)
		}
		b.markRange(user, userSize, true, 0xFF, 0) // calloc: initialized
	} else {
		b.markRange(user, userSize, true, 0x00, org) // accessible, invalid
	}
	b.markRange(user+userSize, rz, false, 0, org)
	return user, nil
}

// Realloc implements prog.HeapBackend, following the paper's rules: a
// shrink marks the cut-off region inaccessible; a grow marks the added
// region accessible-but-invalid; and the buffer's allocation-time CCID
// is updated to the realloc call's context.
func (b *Backend) Realloc(ccid, ptr, size uint64) (uint64, error) {
	b.cycles += prog.CycAlloc * shadowCostFactor
	if ptr == 0 {
		return b.Alloc(heapsim.FnRealloc, ccid, 1, size, 0)
	}
	c := b.findByUser(ptr)
	if c == nil || c.freed {
		b.recordInvalidFree(ptr, ccid, "realloc of invalid pointer", c)
		// Keep the analysis running: treat as a fresh allocation.
		return b.Alloc(heapsim.FnRealloc, ccid, 1, size, 0)
	}
	rz := b.cfg.RedZone

	// Preserve the old shadow for the surviving prefix.
	keep := c.size
	if size < keep {
		keep = size
	}
	oldV := make([]byte, keep)
	oldO := make([]uint32, keep)
	for i := uint64(0); i < keep; i++ {
		o, ok := b.off(c.user + i)
		if !ok {
			break
		}
		oldV[i] = b.vmask[o]
		oldO[i] = b.originT[o]
	}

	newBase, err := b.heap.Realloc(c.base, size+2*rz)
	if err != nil {
		return 0, fmt.Errorf("shadow: underlying realloc: %w", err)
	}

	// Retire the old identity; the realloc'd buffer gets a fresh CCID
	// and origin, per Section V.
	org := b.newOrigin(heapsim.FnRealloc, ccid)
	nc := &chunk{
		base: newBase, user: newBase + rz, size: size,
		fn: heapsim.FnRealloc, ccid: ccid, originID: org,
	}
	b.removeChunk(c)
	b.insertChunk(nc)

	b.markRange(newBase, rz, false, 0, org)
	b.markRange(nc.user, size, true, 0x00, org)
	for i := uint64(0); i < keep; i++ {
		o, ok := b.off(nc.user + i)
		if !ok {
			break
		}
		b.vmask[o] = oldV[i]
		b.originT[o] = oldO[i]
	}
	b.markRange(nc.user+size, rz, false, 0, org)
	return nc.user, nil
}

// removeChunk drops c from the index.
func (b *Backend) removeChunk(c *chunk) {
	for i, cc := range b.chunks {
		if cc == c {
			b.chunks = append(b.chunks[:i], b.chunks[i+1:]...)
			return
		}
	}
}

// Free implements prog.HeapBackend: the buffer is marked inaccessible
// and parked in the FIFO queue; reuse is deferred until quota eviction.
func (b *Backend) Free(ptr, ccid uint64) error {
	b.cycles += prog.CycFree * shadowCostFactor
	if ptr == 0 {
		return nil
	}
	c := b.findByUser(ptr)
	if c == nil {
		b.recordInvalidFree(ptr, ccid, "free of unallocated pointer", nil)
		return nil
	}
	if c.freed {
		b.recordInvalidFree(ptr, ccid, "double free", c)
		return nil
	}
	c.freed = true
	c.freeCCID = ccid
	// The whole footprint (red zones included) goes inaccessible.
	b.markRange(c.base, c.end()+b.cfg.RedZone-c.base, false, 0, c.originID)

	if b.cfg.DeferFilter != nil && !b.cfg.DeferFilter(c.ccid) {
		// Outside this run's CCID subspace: release immediately, with
		// the region behaving like ordinary reusable memory (UAF on
		// this buffer goes undetected in this run, by design); a
		// partitioned replay with the complementary subspace catches
		// it.
		c.released = true
		if tel := b.cfg.Telemetry; tel != nil {
			tel.Inc(telemetry.CtrQuarantineRefusals)
			tel.Event(telemetry.EvQuarantineRefusal, c.ccid, c.user, c.size)
		}
		b.markRange(c.base, c.end()+b.cfg.RedZone-c.base, true, 0xFF, 0)
		if err := b.heap.Free(c.base); err != nil {
			return fmt.Errorf("shadow: releasing filtered block: %w", err)
		}
		return nil
	}

	b.queue = append(b.queue, c)
	b.queueBytes += c.size
	for b.queueBytes > b.cfg.QueueQuota && len(b.queue) > 0 {
		old := b.queue[0]
		b.queue = b.queue[1:]
		b.queueBytes -= old.size
		old.released = true
		if tel := b.cfg.Telemetry; tel != nil {
			tel.Inc(telemetry.CtrQuarantineRefusals)
			tel.Event(telemetry.EvQuarantineRefusal, old.ccid, old.user, old.size)
		}
		if err := b.heap.Free(old.base); err != nil {
			return fmt.Errorf("shadow: releasing deferred block: %w", err)
		}
	}
	return nil
}

// shadowCostFactor models Memcheck-style slowdown in the virtual-cycle
// accounting.
const shadowCostFactor = 20
