package shadow

import (
	"fmt"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/telemetry"
)

// Warning is one detected memory-safety violation. Warnings carry the
// allocation identity of the affected buffer — the {FUN, CCID} pair —
// which is exactly what the patch generator turns into patches.
type Warning struct {
	// Type is the vulnerability bit (exactly one of the three).
	Type patch.TypeMask
	// Addr is the faulting or leaking address (0 for pure value uses).
	Addr uint64
	// Size is the access size in bytes.
	Size uint64
	// Write distinguishes overwrite from overread for overflows.
	Write bool
	// Use is the use point kind for uninitialized reads.
	Use prog.UseKind
	// AccessCCID is the calling context of the faulting access.
	AccessCCID uint64
	// AllocFn and AllocCCID identify the vulnerable buffer's
	// allocation: the patch key.
	AllocFn   heapsim.AllocFn
	AllocCCID uint64
	// Detail is a human-readable description.
	Detail string
}

func (w Warning) String() string {
	return fmt.Sprintf("%s at %#x (size %d): buffer from %s@%#x: %s",
		w.Type, w.Addr, w.Size, w.AllocFn, w.AllocCCID, w.Detail)
}

// Patch converts the warning into its heap patch.
func (w Warning) Patch() patch.Patch {
	return patch.Patch{Fn: w.AllocFn, CCID: w.AllocCCID, Types: w.Type}
}

// record appends a warning unless an equivalent one (same buffer, same
// type, same use kind) was already recorded — the chained-warning
// suppression of Section V.
func (b *Backend) record(w Warning, key warnKey) {
	if b.warnSeen[key] {
		return
	}
	b.warnSeen[key] = true
	b.warnings = append(b.warnings, w)
	if tel := b.cfg.Telemetry; tel != nil {
		tel.Inc(telemetry.CtrShadowWarnings)
		// The site is the buffer's allocation identity — the patch key
		// the generator would emit — while the CCID field carries the
		// faulting access's context.
		site := telemetry.PackSite(uint8(w.AllocFn), w.AllocCCID)
		tel.Event(telemetry.EvShadowWarning, w.AccessCCID, site, w.Addr)
	}
}

// recordAccessViolation classifies an inaccessible-byte access and
// records the matching warning.
func (b *Backend) recordAccessViolation(addr, size, ccid uint64, write bool) {
	c := b.findContaining(addr)
	if c == nil {
		b.record(Warning{
			Type: patch.TypeOverflow, Addr: addr, Size: size, Write: write,
			AccessCCID: ccid, Detail: "wild access outside any tracked buffer",
		}, warnKey{chunkID: addr, typ: patch.TypeOverflow})
		return
	}
	if c.freed {
		verb := "read"
		if write {
			verb = "write"
		}
		b.record(Warning{
			Type: patch.TypeUseAfterFree, Addr: addr, Size: size, Write: write,
			AccessCCID: ccid, AllocFn: c.fn, AllocCCID: c.ccid,
			Detail: fmt.Sprintf("%s of freed buffer (freed at CCID %#x)", verb, c.freeCCID),
		}, warnKey{chunkID: c.user, typ: patch.TypeUseAfterFree})
		return
	}
	verb := "overread"
	if write {
		verb = "overwrite"
	}
	side := "after"
	if addr < c.user {
		side = "before"
	}
	b.record(Warning{
		Type: patch.TypeOverflow, Addr: addr, Size: size, Write: write,
		AccessCCID: ccid, AllocFn: c.fn, AllocCCID: c.ccid,
		Detail: fmt.Sprintf("%s into red zone %s buffer [%#x,%#x)", verb, side, c.user, c.end()),
	}, warnKey{chunkID: c.user, typ: patch.TypeOverflow, write: write})
}

// recordUninit records an uninitialized-value use, resolving the origin
// tag back to the allocation.
func (b *Backend) recordUninit(tag uint32, use prog.UseKind, ccid uint64, detail string) {
	org, ok := b.originInfo(tag)
	w := Warning{
		Type: patch.TypeUninitRead, Use: use, AccessCCID: ccid, Detail: detail,
	}
	key := warnKey{originID: tag, typ: patch.TypeUninitRead, use: use}
	if ok {
		w.AllocFn = org.fn
		w.AllocCCID = org.ccid
	} else {
		w.Detail = detail + " (origin unknown)"
	}
	b.record(w, key)
}

// recordInvalidFree notes free()/realloc() API misuse. These are not
// one of the paper's three patchable types, but the analyzer reports
// them for completeness; they surface as UAF when the pointer refers
// to a freed chunk.
func (b *Backend) recordInvalidFree(ptr, ccid uint64, detail string, c *chunk) {
	w := Warning{
		Type: patch.TypeUseAfterFree, Addr: ptr, AccessCCID: ccid, Detail: detail,
	}
	key := warnKey{chunkID: ptr, typ: patch.TypeUseAfterFree, use: prog.UseKind(0xFF)}
	if c != nil {
		w.AllocFn = c.fn
		w.AllocCCID = c.ccid
		key.chunkID = c.user
	}
	b.record(w, key)
}
