package shadow

import (
	"bytes"
	"math/rand"
	"testing"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
)

// diffPair drives two backends — one using the word-parallel kernels,
// one with forceRef routing every operation through the naive per-byte
// predecessors — through identical operation sequences and asserts they
// remain bit-identical: data bytes, A-bits, V-masks, origin tags,
// warnings, errors, and virtual cycles.
type diffPair struct {
	t    *testing.T
	fast *Backend
	ref  *Backend
}

func newDiffPair(t *testing.T, cfg Config) *diffPair {
	t.Helper()
	mk := func() *Backend {
		space, err := mem.NewSpace(mem.Config{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(space, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	p := &diffPair{t: t, fast: mk(), ref: mk()}
	p.ref.forceRef = true
	return p
}

// checkErrs asserts both sides agreed on success/failure.
func (p *diffPair) checkErrs(op string, ferr, rerr error) {
	p.t.Helper()
	if (ferr == nil) != (rerr == nil) {
		p.t.Fatalf("%s: fast err = %v, ref err = %v", op, ferr, rerr)
	}
	if ferr != nil && ferr.Error() != rerr.Error() {
		p.t.Fatalf("%s: fast err %q, ref err %q", op, ferr, rerr)
	}
}

// compare checks every observable output of the two backends.
func (p *diffPair) compare(op string) {
	p.t.Helper()
	f, r := p.fast, p.ref
	fd, _ := f.space.RawView(f.space.Base(), f.space.Size())
	rd, _ := r.space.RawView(r.space.Base(), r.space.Size())
	if !bytes.Equal(fd, rd) {
		p.t.Fatalf("%s: space data diverged (first diff at +%#x)", op, firstDiff(fd, rd))
	}
	if len(f.access) != len(r.access) {
		p.t.Fatalf("%s: plane lengths diverged: fast %d, ref %d", op, len(f.access), len(r.access))
	}
	for i := range f.access {
		if f.access[i] != r.access[i] {
			p.t.Fatalf("%s: A-bits diverged at +%#x: fast %v, ref %v", op, i, f.access[i], r.access[i])
		}
	}
	if !bytes.Equal(f.vmask, r.vmask) {
		p.t.Fatalf("%s: V-masks diverged (first diff at +%#x)", op, firstDiff(f.vmask, r.vmask))
	}
	for i := range f.originT {
		if f.originT[i] != r.originT[i] {
			p.t.Fatalf("%s: origin tags diverged at +%#x: fast %d, ref %d", op, i, f.originT[i], r.originT[i])
		}
	}
	if f.cycles != r.cycles {
		p.t.Fatalf("%s: cycles diverged: fast %d, ref %d", op, f.cycles, r.cycles)
	}
	fw, rw := f.Warnings(), r.Warnings()
	if len(fw) != len(rw) {
		p.t.Fatalf("%s: warning counts diverged: fast %d %v, ref %d %v", op, len(fw), fw, len(rw), rw)
	}
	for i := range fw {
		if fw[i] != rw[i] {
			p.t.Fatalf("%s: warning %d diverged:\nfast %+v\nref  %+v", op, i, fw[i], rw[i])
		}
	}
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			return i
		}
	}
	return len(a)
}

// TestDifferentialShadowOps is the main fuzz driver: a long random
// sequence of allocs, frees, reallocs, loads, stores, memcpys, memsets,
// and use checks, with addresses biased to straddle red zones, freed
// buffers, and unmapped space.
func TestDifferentialShadowOps(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		seed := seed
		t.Run("", func(t *testing.T) {
			runDifferentialShadowOps(t, seed)
		})
	}
}

func runDifferentialShadowOps(t *testing.T, seed int64) {
	p := newDiffPair(t, Config{})
	rng := rand.New(rand.NewSource(seed))

	type buf struct {
		ptr  uint64
		size uint64
		dead bool // freed (deferred, never released in this config)
	}
	var bufs []buf

	pickLen := func() uint64 {
		switch rng.Intn(4) {
		case 0:
			return uint64(rng.Intn(8))
		case 1:
			return uint64(rng.Intn(64))
		default:
			return uint64(rng.Intn(512))
		}
	}
	// pickReadAddr: reads are side-effect free, so they may land
	// anywhere — payloads, red zones, freed buffers, allocator
	// metadata, or outside the space entirely.
	pickReadAddr := func() uint64 {
		if len(bufs) == 0 || rng.Intn(10) == 0 {
			base := p.fast.space.Base()
			return base + uint64(rng.Intn(int(p.fast.space.Size())))
		}
		b := bufs[rng.Intn(len(bufs))]
		off := int64(rng.Intn(int(b.size)+2*DefaultRedZone)) - DefaultRedZone
		return uint64(int64(b.ptr) + off)
	}
	// pickWriteRange constrains writes to chunk footprints (payload and
	// red zones of live or freed-but-deferred buffers — memory the
	// analyzer owns) or to out-of-space addresses that fault. Truly wild
	// in-space writes would corrupt allocator metadata — faithfully and
	// identically on both backends, but heapsim then panics and ends the
	// run early.
	pickWriteRange := func() (uint64, uint64) {
		if len(bufs) == 0 || rng.Intn(10) == 0 {
			sp := p.fast.space
			switch rng.Intn(3) {
			case 0:
				return sp.Base() - 1 - uint64(rng.Intn(64)), 1 + pickLen()
			case 1:
				return sp.End() + uint64(rng.Intn(1<<16)), 1 + pickLen()
			default:
				return ^uint64(0) - uint64(rng.Intn(16)), 1 + pickLen()
			}
		}
		b := bufs[rng.Intn(len(bufs))]
		lo := b.ptr - DefaultRedZone
		hi := b.ptr + b.size + DefaultRedZone
		addr := lo + uint64(rng.Intn(int(hi-lo)))
		n := pickLen()
		if addr+n > hi {
			n = hi - addr
		}
		return addr, n
	}

	ccid := uint64(0x100)
	for i := 0; i < 1500; i++ {
		ccid++
		switch op := rng.Intn(10); op {
		case 0, 1: // alloc
			fn := heapsim.FnMalloc
			n, align := uint64(1), uint64(0)
			switch rng.Intn(3) {
			case 1:
				fn = heapsim.FnCalloc
				n = uint64(1 + rng.Intn(4))
			case 2:
				fn = heapsim.FnMemalign
				align = uint64(1) << (3 + rng.Intn(5))
			}
			size := uint64(1 + rng.Intn(256))
			fp, ferr := p.fast.Alloc(fn, ccid, n, size, align)
			rp, rerr := p.ref.Alloc(fn, ccid, n, size, align)
			p.checkErrs("alloc", ferr, rerr)
			if ferr == nil {
				if fp != rp {
					t.Fatalf("alloc: fast ptr %#x, ref ptr %#x", fp, rp)
				}
				userSize := size
				if fn == heapsim.FnCalloc {
					userSize = n * size
				}
				bufs = append(bufs, buf{ptr: fp, size: userSize})
			}
		case 2: // free (sometimes stale or wild)
			var ptr uint64
			switch {
			case len(bufs) > 0 && rng.Intn(4) > 0:
				j := rng.Intn(len(bufs))
				ptr = bufs[j].ptr
				bufs[j].dead = true
			case rng.Intn(2) == 0:
				ptr = pickReadAddr() // wild or interior free
			default:
				ptr = 0 // free(NULL)
			}
			// A wild pick can coincide with a live user pointer and
			// genuinely free it; keep the bookkeeping honest.
			for j := range bufs {
				if bufs[j].ptr == ptr {
					bufs[j].dead = true
				}
			}
			p.checkErrs("free", p.fast.Free(ptr, ccid), p.ref.Free(ptr, ccid))
		case 3: // realloc (sometimes of a freed or wild pointer)
			var ptr uint64
			if len(bufs) > 0 && rng.Intn(4) > 0 {
				j := rng.Intn(len(bufs))
				ptr = bufs[j].ptr
				if !bufs[j].dead {
					// A live realloc may move the block; the old region
					// returns to the allocator immediately, so it must
					// leave the write-target pool.
					bufs[j] = bufs[len(bufs)-1]
					bufs = bufs[:len(bufs)-1]
				}
			} else if rng.Intn(2) == 0 {
				ptr = pickReadAddr()
				for j := 0; j < len(bufs); j++ {
					if bufs[j].ptr == ptr && !bufs[j].dead {
						// Coincidental hit on a live chunk: this is a real
						// realloc, so the old region leaves the pool.
						bufs[j] = bufs[len(bufs)-1]
						bufs = bufs[:len(bufs)-1]
						j--
					}
				}
			}
			size := uint64(1 + rng.Intn(256))
			fp, ferr := p.fast.Realloc(ccid, ptr, size)
			rp, rerr := p.ref.Realloc(ccid, ptr, size)
			p.checkErrs("realloc", ferr, rerr)
			if ferr == nil {
				if fp != rp {
					t.Fatalf("realloc: fast ptr %#x, ref ptr %#x", fp, rp)
				}
				bufs = append(bufs, buf{ptr: fp, size: size})
			}
		case 4, 5: // store with randomized V-bits and origins
			addr, n := pickWriteRange()
			v := prog.Value{Bytes: make([]byte, n)}
			rng.Read(v.Bytes)
			if rng.Intn(2) == 0 {
				v.Valid = make([]byte, rng.Intn(int(n)+1)) // possibly short
				rng.Read(v.Valid)
			}
			if rng.Intn(2) == 0 {
				v.Origin = make([]uint32, rng.Intn(int(n)+1))
				for j := range v.Origin {
					v.Origin[j] = uint32(rng.Intn(8))
				}
			}
			p.checkErrs("store", p.fast.Store(addr, v, ccid), p.ref.Store(addr, v, ccid))
		case 6, 7: // load, plus a use check on the result
			addr, n := pickReadAddr(), pickLen()
			fv, ferr := p.fast.Load(addr, n, ccid)
			rv, rerr := p.ref.Load(addr, n, ccid)
			p.checkErrs("load", ferr, rerr)
			if ferr == nil {
				if !bytes.Equal(fv.Bytes, rv.Bytes) || !bytes.Equal(fv.Valid, rv.Valid) {
					t.Fatalf("load(%#x, %d): values diverged\nfast %+v\nref  %+v", addr, n, fv, rv)
				}
				for j := range fv.Origin {
					if fv.Origin[j] != rv.Origin[j] {
						t.Fatalf("load(%#x, %d): origin %d diverged: fast %d, ref %d",
							addr, n, j, fv.Origin[j], rv.Origin[j])
					}
				}
				use := []prog.UseKind{prog.UseControlFlow, prog.UseAddress, prog.UseOutput}[rng.Intn(3)]
				p.fast.CheckUse(fv, use, ccid)
				p.ref.CheckUse(rv, use, ccid)
			}
		case 8: // memcpy, overlapping allowed
			dst, n := pickWriteRange()
			src := pickReadAddr()
			if rng.Intn(3) == 0 { // bias toward overlap
				src = dst + uint64(rng.Intn(16))
			}
			p.checkErrs("memcpy",
				p.fast.Memcpy(dst, src, n, ccid),
				p.ref.Memcpy(dst, src, n, ccid))
		case 9: // memset
			addr, n := pickWriteRange()
			c := byte(rng.Intn(256))
			p.checkErrs("memset",
				p.fast.Memset(addr, c, n, ccid),
				p.ref.Memset(addr, c, n, ccid))
		}
		if i%16 == 0 {
			p.compare("step")
		}
	}
	p.compare("final")
	if len(p.fast.Warnings()) == 0 {
		t.Error("differential run recorded no warnings; op mix is not exercising violations")
	}
}

// TestDifferentialDeferFilter repeats a smaller run with a CCID-
// partitioned defer filter, exercising the immediate-release path
// (released chunks, recycled regions) on both kernels.
func TestDifferentialDeferFilter(t *testing.T) {
	cfg := Config{
		QueueQuota:  1024, // force FIFO evictions
		DeferFilter: func(ccid uint64) bool { return ccid%2 == 0 },
	}
	p := newDiffPair(t, cfg)
	rng := rand.New(rand.NewSource(99))
	var ptrs []uint64
	for i := 0; i < 400; i++ {
		ccid := uint64(i)
		switch rng.Intn(3) {
		case 0, 1:
			size := uint64(1 + rng.Intn(512))
			fp, ferr := p.fast.Alloc(heapsim.FnMalloc, ccid, 1, size, 0)
			rp, rerr := p.ref.Alloc(heapsim.FnMalloc, ccid, 1, size, 0)
			p.checkErrs("alloc", ferr, rerr)
			if ferr == nil && fp == rp {
				ptrs = append(ptrs, fp)
			}
		case 2:
			if len(ptrs) == 0 {
				continue
			}
			j := rng.Intn(len(ptrs))
			ptr := ptrs[j]
			ptrs = append(ptrs[:j], ptrs[j+1:]...)
			p.checkErrs("free", p.fast.Free(ptr, ccid), p.ref.Free(ptr, ccid))
			// Poke the just-freed buffer: UAF on deferred blocks,
			// silent on released ones — both sides must agree.
			v := prog.Value{Bytes: []byte{0xEE}}
			p.checkErrs("uaf store", p.fast.Store(ptr, v, ccid), p.ref.Store(ptr, v, ccid))
		}
		if i%8 == 0 {
			p.compare("step")
		}
	}
	p.compare("final")
}

// TestShadowOpAllocs pins the zero-allocation guarantee on the
// steady-state operation paths (LoadInto, Store, Memcpy, Memset) over
// live, fully accessible buffers.
func TestShadowOpAllocs(t *testing.T) {
	b := newBackend(t, Config{})
	src := mustAlloc(t, b, heapsim.FnMalloc, 1, 1, 1024, 0)
	dst := mustAlloc(t, b, heapsim.FnMalloc, 2, 1, 1024, 0)
	if err := b.Memset(src, 0xAB, 1024, 1); err != nil {
		t.Fatal(err)
	}
	var scratch prog.Value
	if err := b.LoadInto(&scratch, src, 1024, 1); err != nil {
		t.Fatal(err)
	}
	stored := prog.Value{Bytes: make([]byte, 512), Valid: make([]byte, 512)}
	cases := []struct {
		name string
		fn   func()
	}{
		{"LoadInto", func() {
			if err := b.LoadInto(&scratch, src, 1024, 1); err != nil {
				t.Fatal(err)
			}
		}},
		{"Store", func() {
			if err := b.Store(dst, stored, 1); err != nil {
				t.Fatal(err)
			}
		}},
		{"Memcpy", func() {
			if err := b.Memcpy(dst, src, 1024, 1); err != nil {
				t.Fatal(err)
			}
		}},
		{"Memset", func() {
			if err := b.Memset(dst, 0x55, 1024, 1); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if avg := testing.AllocsPerRun(200, c.fn); avg != 0 {
				t.Errorf("%s allocates %.1f per op, want 0", c.name, avg)
			}
		})
	}
}
