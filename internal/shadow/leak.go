package shadow

import (
	"fmt"
	"sort"

	"heaptherapy/internal/heapsim"
)

// Leak describes a buffer still live when the analysis ended,
// aggregated by allocation context — the classic Memcheck leak-check
// output, keyed by the same {FUN, CCID} identity as patches so leak
// reports can be cross-referenced with the rest of the analysis.
type Leak struct {
	// AllocFn and AllocCCID identify the allocation context.
	AllocFn   heapsim.AllocFn
	AllocCCID uint64
	// Buffers is the number of live buffers from this context.
	Buffers int
	// Bytes is their total user size.
	Bytes uint64
}

func (l Leak) String() string {
	return fmt.Sprintf("%d byte(s) in %d buffer(s) from %s@%#x",
		l.Bytes, l.Buffers, l.AllocFn, l.AllocCCID)
}

// Leaks reports buffers never freed during the run, grouped by
// allocation context and sorted by descending byte count. Buffers
// parked in the deferred-free queue were freed by the program, so they
// do not count.
func (b *Backend) Leaks() []Leak {
	type key struct {
		fn   heapsim.AllocFn
		ccid uint64
	}
	agg := make(map[key]*Leak)
	for _, c := range b.chunks {
		if c.freed || c.released {
			continue
		}
		k := key{fn: c.fn, ccid: c.ccid}
		l, ok := agg[k]
		if !ok {
			l = &Leak{AllocFn: c.fn, AllocCCID: c.ccid}
			agg[k] = l
		}
		l.Buffers++
		l.Bytes += c.size
	}
	out := make([]Leak, 0, len(agg))
	for _, l := range agg {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].AllocCCID < out[j].AllocCCID
	})
	return out
}
