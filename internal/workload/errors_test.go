package workload

import (
	"strings"
	"testing"
)

// TestServiceProgramRejectsBadShape: non-positive request/concurrency
// counts are driver bugs and must not silently produce empty programs.
func TestServiceProgramRejectsBadShape(t *testing.T) {
	for _, svc := range []*Service{Nginx(), MySQL()} {
		for _, shape := range [][2]int{{0, 1}, {-3, 1}, {4, 0}, {4, -2}} {
			_, err := svc.Program(shape[0], shape[1])
			if err == nil || !strings.Contains(err.Error(), "positive") {
				t.Errorf("%s.Program(%d, %d) = %v, want positive-count error",
					svc.Name, shape[0], shape[1], err)
			}
		}
	}
}

// TestServiceProgramClampsConcurrency: more connections than requests
// degrades to one batch, not an invalid program.
func TestServiceProgramClampsConcurrency(t *testing.T) {
	p, err := Nginx().Program(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != "main" {
		t.Fatalf("entry = %q", p.Entry)
	}
}

// TestTargetsFallback: a benchmark with no recorded allocation counts
// still targets malloc (every driver allocates through something).
func TestTargetsFallback(t *testing.T) {
	b := &Benchmark{Name: "synthetic"}
	got := b.Targets()
	if len(got) != 1 || got[0] != "malloc" {
		t.Fatalf("Targets() = %v, want [malloc]", got)
	}
	b = &Benchmark{Name: "realloc-heavy", Mallocs: 1, Callocs: 2, Reallocs: 3}
	if got := b.Targets(); len(got) != 3 {
		t.Fatalf("Targets() = %v, want all three", got)
	}
}

// TestLiveHeapProgramClampsAllocSize: benchmarks with multi-megabyte
// average allocations must respect the configured ceiling so the
// simulated space stays bounded.
func TestLiveHeapProgramClampsAllocSize(t *testing.T) {
	b := &Benchmark{Name: "huge-allocs", AvgAllocSize: 1 << 30, LiveBuffers: 3}
	p, err := b.LiveHeapProgram(ProgramConfig{MaxAllocSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || p.Funcs["main"] == nil {
		t.Fatal("no program")
	}
}
