package workload

import (
	"fmt"

	"heaptherapy/internal/prog"
)

// Service models a request-driven server for the throughput evaluation
// of Section VIII-B2 (Nginx 1.2 and MySQL 5.5.9 in the paper).
// Throughput overhead is driven by allocations per request relative to
// per-request compute, so the two stand-ins differ exactly there:
// the web server allocates several short-lived buffers per request
// with modest parsing work; the database does far more compute per
// query over fewer allocations (which is why the paper observes no
// measurable MySQL overhead).
type Service struct {
	// Name identifies the service.
	Name string
	// AllocsPerRequest is the number of heap buffers each request
	// churns through.
	AllocsPerRequest int
	// BufSize is the typical buffer size.
	BufSize uint64
	// ComputePerRequest is the modeled per-request work (loop rounds).
	ComputePerRequest uint64
}

// Nginx returns the web-server stand-in.
func Nginx() *Service {
	return &Service{
		Name:              "nginx",
		AllocsPerRequest:  6, // connection, headers-in, uri, headers-out, body, log
		BufSize:           1024,
		ComputePerRequest: 500,
	}
}

// MySQL returns the database stand-in.
func MySQL() *Service {
	return &Service{
		Name:              "mysql",
		AllocsPerRequest:  4, // THD, parse tree, result set, net buffer
		BufSize:           4096,
		ComputePerRequest: 4000,
	}
}

// Program builds the service driver: `requests` requests processed at
// the given concurrency. Concurrency is modeled as the number of
// in-flight connections whose buffers stay live while a batch is
// processed — matching how Apache Benchmark's -c flag scales the live
// heap of a real server.
func (s *Service) Program(requests, concurrency int) (*prog.Program, error) {
	if requests <= 0 || concurrency <= 0 {
		return nil, fmt.Errorf("workload: requests and concurrency must be positive")
	}
	if concurrency > requests {
		concurrency = requests
	}

	// One request handler: allocate the per-request buffers, touch
	// them, run the parse/compute loop, free everything.
	handler := []prog.Stmt{}
	for i := 0; i < s.AllocsPerRequest; i++ {
		v := fmt.Sprintf("b%d", i)
		sz := s.BufSize / uint64(1<<uint(i%3)) // mix of sizes
		handler = append(handler,
			prog.Alloc{Dst: v, Size: prog.C(sz)},
			prog.Store{Base: prog.V(v), Src: prog.C(0x7E9), N: prog.C(8)},
		)
	}
	handler = append(handler,
		prog.Assign{Dst: "w", E: prog.C(0)},
		prog.While{Cond: prog.Lt(prog.V("w"), prog.C(s.ComputePerRequest)), Body: []prog.Stmt{
			prog.Assign{Dst: "acc", E: prog.Add(prog.V("w"), prog.V("w"))},
			prog.Assign{Dst: "w", E: prog.Add(prog.V("w"), prog.C(1))},
		}},
	)
	for i := 0; i < s.AllocsPerRequest; i++ {
		handler = append(handler, prog.FreeStmt{Ptr: prog.V(fmt.Sprintf("b%d", i))})
	}

	// Connection setup holds a live buffer per in-flight connection.
	var setup, teardown []prog.Stmt
	for c := 0; c < concurrency; c++ {
		v := fmt.Sprintf("conn%d", c)
		setup = append(setup, prog.Alloc{Dst: v, Size: prog.C(s.BufSize)})
		teardown = append(teardown, prog.FreeStmt{Ptr: prog.V(v)})
	}

	main := append([]prog.Stmt{}, setup...)
	main = append(main,
		prog.Assign{Dst: "r", E: prog.C(0)},
		prog.While{Cond: prog.Lt(prog.V("r"), prog.C(uint64(requests))), Body: []prog.Stmt{
			prog.Call{Callee: "handle_request"},
			prog.Assign{Dst: "r", E: prog.Add(prog.V("r"), prog.C(1))},
		}},
	)
	main = append(main, teardown...)

	p := &prog.Program{
		Name: fmt.Sprintf("%s-c%d", s.Name, concurrency),
		Funcs: map[string]*prog.Func{
			"main":           {Body: main},
			"handle_request": {Body: handler},
		},
	}
	if err := prog.Link(p); err != nil {
		return nil, fmt.Errorf("workload: linking service %s: %w", s.Name, err)
	}
	return p, nil
}
