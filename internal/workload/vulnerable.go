package workload

// The vulnerable service variant: the same request-driven server shape
// as Service.Program, but the reply path carries the classic
// attacker-controlled-length overread (CVE-2014-0160's shape — a
// length field trusted straight into a heap read). It exists for the
// live-rollout evaluation: the serve front-end runs one instance per
// request, a crafted request faults a defended tenant, the offline
// pipeline re-analyzes the crashing input, and the resulting overflow
// patch is rolled out with no restart.

import (
	"encoding/binary"
	"fmt"

	"heaptherapy/internal/prog"
)

// secretSize is the session buffer's allocation size. It matches no
// particular server; it only needs to hold the secret and sit directly
// above the reply buffer so an overread can reach it.
const secretSize = 64

// leakSlack is how far past the reply buffer a leaking request reads:
// enough to cross the allocator's chunk header into the session
// buffer, small enough to stay inside the mapped arena.
const leakSlack = 256

// crashLen is the reply length of a crashing request: the maximum a
// 2-byte length field encodes, far past the arena's high-water mark,
// so the read runs off the mapping — a wild fault, not a contained
// one.
const crashLen = 0xFFFF

// Secret returns the per-service session secret the vulnerable
// program keeps on the heap next to its reply buffer.
func (s *Service) Secret() []byte {
	return []byte(fmt.Sprintf("%s-session-key=hunter2", s.Name))
}

// Request encodes a service request asking for n reply bytes: the
// 2-byte little-endian length field the vulnerable handler trusts.
func Request(n uint64) []byte {
	if n > crashLen {
		n = crashLen
	}
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], uint16(n))
	return b[:]
}

// BenignRequest reads exactly the reply buffer — the legitimate
// traffic shape.
func (s *Service) BenignRequest() []byte { return Request(s.BufSize) }

// LeakRequest overreads past the reply buffer into the adjacent
// session secret without leaving the mapped arena: natively it leaks,
// it never faults undefended, and under an overflow patch the guard
// page converts it to a contained crash.
func (s *Service) LeakRequest() []byte { return Request(s.BufSize + leakSlack) }

// CrashRequest overreads off the end of the mapped arena: a wild
// fault on an undefended or unpatched tenant — the signal that
// triggers a live patch rollout.
func (s *Service) CrashRequest() []byte { return Request(crashLen) }

// VulnerableProgram builds the one-request handler with the unchecked
// length field. Layout is load-bearing: the filler buffers (the
// service's ordinary per-request churn) are allocated first, then the
// reply buffer, then the session secret, so reply and secret are the
// two topmost live chunks — an overread from reply crosses into the
// secret and then off the arena. The handler frees everything on the
// benign path; a faulting Output abandons the frees exactly as a real
// crash abandons a request.
func (s *Service) VulnerableProgram() (*prog.Program, error) {
	if s.BufSize+secretSize+leakSlack >= crashLen {
		return nil, fmt.Errorf("workload: BufSize %d too large for a 2-byte length field", s.BufSize)
	}
	fillers := s.AllocsPerRequest - 2 // reply and session are the other two
	if fillers < 0 {
		fillers = 0
	}

	handler := []prog.Stmt{}
	for i := 0; i < fillers; i++ {
		v := fmt.Sprintf("b%d", i)
		handler = append(handler,
			prog.Alloc{Dst: v, Size: prog.C(s.BufSize / 2)},
			prog.Store{Base: prog.V(v), Src: prog.C(0x7E9), N: prog.C(8)},
		)
	}
	handler = append(handler,
		prog.Alloc{Dst: "reply", Size: prog.C(s.BufSize)},
		prog.Alloc{Dst: "session", Size: prog.C(secretSize)},
		prog.StoreBytes{Base: prog.V("session"), Data: s.Secret()},
		prog.Memset{Dst: prog.V("reply"), B: prog.C('.'), N: prog.C(s.BufSize)},
		// The service's per-request compute, so defended throughput
		// numbers mean something.
		prog.Assign{Dst: "w", E: prog.C(0)},
		prog.While{Cond: prog.Lt(prog.V("w"), prog.C(s.ComputePerRequest)), Body: []prog.Stmt{
			prog.Assign{Dst: "acc", E: prog.Add(prog.V("w"), prog.V("w"))},
			prog.Assign{Dst: "w", E: prog.Add(prog.V("w"), prog.C(1))},
		}},
		prog.ReadInput{Dst: "len", N: prog.C(2)},
		// The bug: len is attacker-controlled and unchecked.
		prog.Output{Base: prog.V("reply"), N: prog.V("len")},
		prog.FreeStmt{Ptr: prog.V("session")},
		prog.FreeStmt{Ptr: prog.V("reply")},
	)
	for i := 0; i < fillers; i++ {
		handler = append(handler, prog.FreeStmt{Ptr: prog.V(fmt.Sprintf("b%d", i))})
	}

	p := &prog.Program{
		Name: fmt.Sprintf("%s-vulnerable", s.Name),
		Funcs: map[string]*prog.Func{
			"main":   {Body: []prog.Stmt{prog.Call{Callee: "handle"}}},
			"handle": {Body: handler},
		},
	}
	if err := prog.Link(p); err != nil {
		return nil, fmt.Errorf("workload: linking vulnerable %s: %w", s.Name, err)
	}
	return p, nil
}
