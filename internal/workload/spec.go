// Package workload generates the evaluation workloads: SPEC CPU2006
// stand-ins parameterized from the paper's own measurements, and
// Nginx/MySQL-like service loads.
//
// SPEC binaries cannot run on the simulated heap, so each benchmark is
// modeled by two paper-sourced parameter sets:
//
//   - Table IV gives each benchmark's real malloc/calloc/realloc call
//     counts; the generated program reproduces those proportions
//     (scaled down by a configurable factor) along with a per-benchmark
//     compute intensity, since interposition overhead is a function of
//     allocation frequency relative to other work.
//
//   - Table III's per-benchmark size-increase ratios reflect call-graph
//     shape: how much of the program reaches an allocator (TCS), and
//     how much of that branches (Slim/Incremental). Each benchmark gets
//     a synthetic call graph whose shape knobs are set to approximate
//     its row.
//
// The same graphs and programs drive the encoding-overhead comparison
// (Section VIII-B1) and the Figure 8/9 runtime and memory overheads.
package workload

import (
	"fmt"
	"math/rand"

	"heaptherapy/internal/callgraph"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/prog"
)

// Benchmark describes one SPEC CPU2006 stand-in.
type Benchmark struct {
	// Name is the SPEC benchmark name.
	Name string
	// Mallocs, Callocs, Reallocs are the paper's Table IV counts.
	Mallocs, Callocs, Reallocs uint64
	// ComputePerAlloc is the modeled non-allocating work (interpreter
	// statements) per allocation, controlling allocation intensity:
	// allocation-heavy benchmarks (perlbench) have low values, compute
	// benchmarks (bzip2, sjeng) very high ones.
	ComputePerAlloc uint64
	// Graph shape parameters approximating the Table III row.
	Funcs           int
	Layers          int
	FanOut          float64
	AllocCallerFrac float64
	DupSiteFrac     float64
	FuncBytes       uint64 // average function size for the size model
	// AvgAllocSize is the typical object size for this benchmark.
	AvgAllocSize uint64
	// LiveBuffers approximates the benchmark's steady-state live heap
	// object count (scaled), driving the Figure 9 memory overheads.
	LiveBuffers int
}

// SpecBenchmarks returns the twelve SPEC CPU2006 integer benchmarks
// with Table IV's allocation counts and shape parameters chosen to
// approximate Table III. Sparse allocators (bzip2, mcf, sjeng,
// libquantum) get near-zero AllocCallerFrac — their TCS sets collapse,
// exactly as the paper's rows do — while perlbench/gcc/xalancbmk stay
// allocation-saturated.
func SpecBenchmarks() []*Benchmark {
	return []*Benchmark{
		{
			Name: "400.perlbench", Mallocs: 346_405_116, Callocs: 0, Reallocs: 11_736_402,
			ComputePerAlloc: 60,
			Funcs:           220, Layers: 8, FanOut: 3.0, AllocCallerFrac: 0.55, DupSiteFrac: 0.30,
			FuncBytes: 640, AvgAllocSize: 64, LiveBuffers: 700,
		},
		{
			Name: "401.bzip2", Mallocs: 174, Callocs: 0, Reallocs: 0,
			ComputePerAlloc: 200_000,
			Funcs:           90, Layers: 5, FanOut: 2.4, AllocCallerFrac: 0.012, DupSiteFrac: 0.05,
			FuncBytes: 900, AvgAllocSize: 256 * 1024, LiveBuffers: 12,
		},
		{
			Name: "403.gcc", Mallocs: 23_690_559, Callocs: 4_723_237, Reallocs: 44_688,
			ComputePerAlloc: 180,
			Funcs:           260, Layers: 8, FanOut: 2.8, AllocCallerFrac: 0.50, DupSiteFrac: 0.25,
			FuncBytes: 700, AvgAllocSize: 96, LiveBuffers: 900,
		},
		{
			Name: "429.mcf", Mallocs: 5, Callocs: 3, Reallocs: 0,
			ComputePerAlloc: 400_000,
			Funcs:           40, Layers: 4, FanOut: 2.0, AllocCallerFrac: 0.03, DupSiteFrac: 0.02,
			FuncBytes: 1400, AvgAllocSize: 1 << 20, LiveBuffers: 6,
		},
		{
			Name: "445.gobmk", Mallocs: 606_463, Callocs: 0, Reallocs: 52_115,
			ComputePerAlloc: 2500,
			Funcs:           180, Layers: 7, FanOut: 2.6, AllocCallerFrac: 0.12, DupSiteFrac: 0.18,
			FuncBytes: 800, AvgAllocSize: 128, LiveBuffers: 120,
		},
		{
			Name: "456.hmmer", Mallocs: 1_983_014, Callocs: 122_564, Reallocs: 368_696,
			ComputePerAlloc: 900,
			Funcs:           130, Layers: 6, FanOut: 2.5, AllocCallerFrac: 0.30, DupSiteFrac: 0.04,
			FuncBytes: 620, AvgAllocSize: 192, LiveBuffers: 260,
		},
		{
			Name: "458.sjeng", Mallocs: 5, Callocs: 0, Reallocs: 0,
			ComputePerAlloc: 400_000,
			Funcs:           70, Layers: 5, FanOut: 2.3, AllocCallerFrac: 0.015, DupSiteFrac: 0.05,
			FuncBytes: 1000, AvgAllocSize: 2 << 20, LiveBuffers: 4,
		},
		{
			Name: "462.libquantum", Mallocs: 1, Callocs: 121, Reallocs: 58,
			ComputePerAlloc: 300_000,
			Funcs:           50, Layers: 4, FanOut: 2.2, AllocCallerFrac: 0.10, DupSiteFrac: 0.06,
			FuncBytes: 520, AvgAllocSize: 512 * 1024, LiveBuffers: 8,
		},
		{
			Name: "464.h264ref", Mallocs: 7_270, Callocs: 170_518, Reallocs: 0,
			ComputePerAlloc: 8000,
			Funcs:           150, Layers: 6, FanOut: 2.5, AllocCallerFrac: 0.12, DupSiteFrac: 0.10,
			FuncBytes: 850, AvgAllocSize: 2048, LiveBuffers: 300,
		},
		{
			Name: "471.omnetpp", Mallocs: 267_064_936, Callocs: 0, Reallocs: 0,
			ComputePerAlloc: 80,
			Funcs:           200, Layers: 7, FanOut: 2.7, AllocCallerFrac: 0.30, DupSiteFrac: 0.22,
			FuncBytes: 720, AvgAllocSize: 80, LiveBuffers: 800,
		},
		{
			Name: "473.astar", Mallocs: 4_799_959, Callocs: 0, Reallocs: 0,
			ComputePerAlloc: 700,
			// astar: almost everything reaches malloc (TCS ~= FCS in
			// Table III) but through straight-line call chains, so Slim
			// collapses the set (7.0% -> 0.2%): Layers close to Funcs
			// makes the graph a bundle of chains with few branches.
			Funcs: 60, Layers: 55, FanOut: 1.0, AllocCallerFrac: 0.10, DupSiteFrac: 0,
			FuncBytes: 760, AvgAllocSize: 64, LiveBuffers: 350,
		},
		{
			Name: "483.xalancbmk", Mallocs: 135_155_553, Callocs: 0, Reallocs: 0,
			ComputePerAlloc: 110,
			Funcs:           280, Layers: 8, FanOut: 2.8, AllocCallerFrac: 0.25, DupSiteFrac: 0.20,
			FuncBytes: 680, AvgAllocSize: 72, LiveBuffers: 1000,
		},
	}
}

// BenchmarkByName finds a benchmark by SPEC name.
func BenchmarkByName(name string) (*Benchmark, error) {
	for _, b := range SpecBenchmarks() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Targets returns the allocation APIs this benchmark uses, matching
// Table IV's nonzero columns (realloc is always reachable through the
// drivers when used).
func (b *Benchmark) Targets() []string {
	var t []string
	if b.Mallocs > 0 {
		t = append(t, "malloc")
	}
	if b.Callocs > 0 {
		t = append(t, "calloc")
	}
	if b.Reallocs > 0 {
		t = append(t, "realloc")
	}
	if len(t) == 0 {
		t = []string{"malloc"}
	}
	return t
}

// Graph generates the benchmark's synthetic call graph and target set.
func (b *Benchmark) Graph() (*callgraph.Graph, []callgraph.NodeID, error) {
	return callgraph.Generate(callgraph.GenConfig{
		Funcs:           b.Funcs,
		Layers:          b.Layers,
		FanOut:          b.FanOut,
		Targets:         b.Targets(),
		AllocCallerFrac: b.AllocCallerFrac,
		DupSiteFrac:     b.DupSiteFrac,
		Seed:            seedFor(b.Name),
	})
}

// FuncSize returns the size-model callback for Table III's size
// percentages.
func (b *Benchmark) FuncSize() func(callgraph.NodeID) uint64 {
	return func(callgraph.NodeID) uint64 { return b.FuncBytes }
}

// seedFor derives a stable per-benchmark seed.
func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}

// ProgramConfig controls workload program generation.
type ProgramConfig struct {
	// Scale divides Table IV's allocation counts (default 10000).
	// Counts below 1000 are kept as-is: tiny allocators like bzip2
	// really do allocate a handful of buffers.
	Scale uint64
	// MaxAllocSize caps object sizes so scaled runs stay in the arena.
	MaxAllocSize uint64
}

func (c ProgramConfig) withDefaults() ProgramConfig {
	if c.Scale == 0 {
		c.Scale = 10_000
	}
	if c.MaxAllocSize == 0 {
		c.MaxAllocSize = 64 * 1024
	}
	return c
}

func (c ProgramConfig) scaled(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	if n < 1000 {
		return n
	}
	s := n / c.Scale
	if s < 100 {
		s = 100
	}
	return s
}

// RunPlan reports how a generated workload program was sized.
type RunPlan struct {
	// Iterations is the driver loop count.
	Iterations uint64
	// AllocsPerIteration is the allocation calls one graph traversal
	// performs (path multiplicity included).
	AllocsPerIteration uint64
	// PlannedAllocs is Iterations * AllocsPerIteration.
	PlannedAllocs uint64
	// ComputePerIteration is the modeled compute loop count.
	ComputePerIteration uint64
}

// Program generates the benchmark's workload program: a driver loop
// over the benchmark's call graph in which every allocation site
// exercises its allocator with realistic sizes, interleaved with the
// benchmark's compute intensity. The program is linked and carries the
// SAME call-graph shape as b.Graph() (plus the driver function), so
// instrumentation plans built for it behave like the benchmark's.
func (b *Benchmark) Program(cfg ProgramConfig) (*prog.Program, *RunPlan, error) {
	cfg = cfg.withDefaults()
	g, targets, err := b.Graph()
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seedFor(b.Name) ^ 0x5EED))

	isTarget := make(map[callgraph.NodeID]bool, len(targets))
	for _, t := range targets {
		isTarget[t] = true
	}

	// Per-iteration visit counts over the DAG: visits(main)=1,
	// visits(n) = sum of callers' visits. Gives allocations per driver
	// iteration so the loop count can hit the Table IV totals.
	visits := make([]uint64, g.NumNodes())
	visits[g.NodeByName("main")] = 1
	// Nodes were created in roughly topological (layer) order by the
	// generator; a relaxation pass is robust regardless.
	for pass := 0; pass < g.NumNodes(); pass++ {
		changed := false
		for n := 0; n < g.NumNodes(); n++ {
			var v uint64
			if n == 0 {
				v = 1
			}
			for _, s := range g.InSites(callgraph.NodeID(n)) {
				v += visits[g.Edge(s).From]
			}
			if v != visits[n] {
				visits[n] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	var allocSitesPerIter uint64
	for s := 0; s < g.NumEdges(); s++ {
		e := g.Edge(callgraph.SiteID(s))
		if isTarget[e.To] {
			allocSitesPerIter += visits[e.From]
		}
	}
	if allocSitesPerIter == 0 {
		return nil, nil, fmt.Errorf("workload: %s graph has no reachable allocation sites", b.Name)
	}

	totalAllocs := cfg.scaled(b.Mallocs) + cfg.scaled(b.Callocs) + cfg.scaled(b.Reallocs)
	iters := totalAllocs / allocSitesPerIter
	if iters == 0 {
		iters = 1
	}

	size := b.AvgAllocSize
	if size > cfg.MaxAllocSize {
		size = cfg.MaxAllocSize
	}

	funcs := make(map[string]*prog.Func, g.NumNodes()+1)
	for n := 0; n < g.NumNodes(); n++ {
		node := callgraph.NodeID(n)
		name := g.Name(node)
		if isTarget[node] {
			continue // allocation APIs are intrinsic, not program funcs
		}
		var body []prog.Stmt
		allocVar := 0
		for _, s := range g.OutSites(node) {
			callee := g.Edge(s).To
			if isTarget[callee] {
				v := fmt.Sprintf("p%d", allocVar)
				allocVar++
				sz := 16 + rng.Uint64()%size
				var st prog.Stmt
				switch g.Name(callee) {
				case "calloc":
					st = prog.Alloc{Dst: v, Fn: heapsim.FnCalloc, Size: prog.C(8), N: prog.C(sz / 8)}
				case "realloc":
					st = prog.ReallocStmt{Dst: v, Ptr: prog.C(0), Size: prog.C(sz)}
				default:
					st = prog.Alloc{Dst: v, Fn: heapsim.FnMalloc, Size: prog.C(sz)}
				}
				body = append(body,
					st,
					prog.Store{Base: prog.V(v), Src: prog.C(0xA110C), N: prog.C(8)},
					prog.FreeStmt{Ptr: prog.V(v)},
				)
				continue
			}
			body = append(body, prog.Call{Callee: g.Name(callee)})
		}
		if len(body) == 0 {
			body = []prog.Stmt{prog.Nop{}}
		}
		if name == "main" {
			// main becomes the per-iteration driver body under a loop.
			driver := &prog.Func{Name: "spec_iter", Body: body}
			funcs["spec_iter"] = driver
			continue
		}
		funcs[name] = &prog.Func{Name: name, Body: body}
	}

	// Per-iteration compute: total modeled compute is allocation count
	// times intensity, clamped so every benchmark's run stays in a
	// practical step budget (the clamp preserves the ordering — sparse
	// allocators remain compute-dominated).
	totalCompute := totalAllocs * b.ComputePerAlloc
	const minCompute, maxCompute = 200_000, 2_500_000
	if totalCompute < minCompute {
		totalCompute = minCompute
	}
	if totalCompute > maxCompute {
		totalCompute = maxCompute
	}
	compute := totalCompute / iters / 4
	funcs["main"] = &prog.Func{Body: []prog.Stmt{
		prog.Assign{Dst: "it", E: prog.C(0)},
		prog.While{Cond: prog.Lt(prog.V("it"), prog.C(iters)), Body: []prog.Stmt{
			prog.Call{Callee: "spec_iter"},
			// Modeled compute between allocation bursts: a counted loop
			// whose body is 3 statements, so each round is ~4 steps.
			prog.Assign{Dst: "j", E: prog.C(0)},
			prog.While{Cond: prog.Lt(prog.V("j"), prog.C(compute)), Body: []prog.Stmt{
				prog.Assign{Dst: "x", E: prog.Add(prog.V("j"), prog.V("it"))},
				prog.Nop{},
				prog.Assign{Dst: "j", E: prog.Add(prog.V("j"), prog.C(1))},
			}},
			prog.Assign{Dst: "it", E: prog.Add(prog.V("it"), prog.C(1))},
		}},
	}}

	p := &prog.Program{Name: b.Name, Funcs: funcs}
	if err := prog.Link(p); err != nil {
		return nil, nil, fmt.Errorf("workload: linking %s: %w", b.Name, err)
	}
	plan := &RunPlan{
		Iterations:          iters,
		AllocsPerIteration:  allocSitesPerIter,
		PlannedAllocs:       iters * allocSitesPerIter,
		ComputePerIteration: compute,
	}
	return p, plan, nil
}

// LiveHeapProgram builds the Figure 9 memory workload: LiveBuffers
// allocations held live for the program's lifetime plus an alloc/free
// churn phase, so the defended arena footprint can be compared against
// native on a realistic steady-state heap.
func (b *Benchmark) LiveHeapProgram(cfg ProgramConfig) (*prog.Program, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seedFor(b.Name) ^ 0x11FE))
	size := b.AvgAllocSize
	if size > cfg.MaxAllocSize {
		size = cfg.MaxAllocSize
	}

	var body []prog.Stmt
	for i := 0; i < b.LiveBuffers; i++ {
		v := fmt.Sprintf("live%d", i)
		sz := 16 + rng.Uint64()%size
		body = append(body,
			prog.Alloc{Dst: v, Size: prog.C(sz)},
			prog.Store{Base: prog.V(v), Src: prog.C(uint64(i)), N: prog.C(8)},
		)
	}
	// Churn: allocate and free in a loop to exercise reuse.
	churn := uint64(b.LiveBuffers * 4)
	body = append(body,
		prog.Assign{Dst: "i", E: prog.C(0)},
		prog.While{Cond: prog.Lt(prog.V("i"), prog.C(churn)), Body: []prog.Stmt{
			prog.Alloc{Dst: "tmp", Size: prog.C(16 + size/2)},
			prog.FreeStmt{Ptr: prog.V("tmp")},
			prog.Assign{Dst: "i", E: prog.Add(prog.V("i"), prog.C(1))},
		}},
	)

	p := &prog.Program{
		Name:  b.Name + "-liveheap",
		Funcs: map[string]*prog.Func{"main": {Body: body}},
	}
	if err := prog.Link(p); err != nil {
		return nil, fmt.Errorf("workload: linking live-heap %s: %w", b.Name, err)
	}
	return p, nil
}
