package workload

import (
	"bytes"
	"testing"

	"heaptherapy/internal/analysis"
	"heaptherapy/internal/defense"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

func vulnCoder(t *testing.T, p *prog.Program) *encoding.Coder {
	t.Helper()
	plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}
	return coder
}

func runNative(t *testing.T, p *prog.Program, coder *encoding.Coder, input []byte) *prog.Result {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := prog.NewNativeBackend(space)
	if err != nil {
		t.Fatal(err)
	}
	it, err := prog.New(p, prog.Config{Backend: nb, Coder: coder})
	if err != nil {
		t.Fatal(err)
	}
	res, err := it.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestVulnerableProgramNative pins the undefended behaviour of every
// request class: benign replies are clean, the leak request exfiltrates
// the adjacent session secret without faulting, and the crash request
// runs off the mapping — a wild fault, not a guard-page hit.
func TestVulnerableProgramNative(t *testing.T) {
	for _, svc := range []*Service{Nginx(), MySQL()} {
		t.Run(svc.Name, func(t *testing.T) {
			p, err := svc.VulnerableProgram()
			if err != nil {
				t.Fatal(err)
			}
			coder := vulnCoder(t, p)

			benign := runNative(t, p, coder, svc.BenignRequest())
			if benign.Crashed() {
				t.Fatalf("benign request crashed: %v", benign.Fault)
			}
			if uint64(len(benign.Output)) != svc.BufSize {
				t.Errorf("benign reply %d bytes, want %d", len(benign.Output), svc.BufSize)
			}
			if bytes.Contains(benign.Output, svc.Secret()) {
				t.Error("benign reply contains the secret")
			}

			leak := runNative(t, p, coder, svc.LeakRequest())
			if leak.Crashed() {
				t.Fatalf("leak request crashed natively: %v", leak.Fault)
			}
			if !bytes.Contains(leak.Output, svc.Secret()) {
				t.Error("leak request did not exfiltrate the secret")
			}

			crash := runNative(t, p, coder, svc.CrashRequest())
			if !crash.Crashed() {
				t.Fatal("crash request did not fault natively")
			}
		})
	}
}

// TestVulnerablePatchCycle is the offline half of the rollout story:
// re-analyzing the CRASHING input (the one a live server actually
// captures) yields an overflow patch for the reply buffer, and a
// defended run under that patch converts both attacks to contained
// guard-page hits while leaving benign traffic byte-identical.
func TestVulnerablePatchCycle(t *testing.T) {
	svc := Nginx()
	p, err := svc.VulnerableProgram()
	if err != nil {
		t.Fatal(err)
	}
	coder := vulnCoder(t, p)

	a := &analysis.Analyzer{Coder: coder}
	rep, err := a.Analyze(p, svc.CrashRequest())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Patches.Len() == 0 {
		t.Fatalf("crash input produced no patches; warnings: %v", rep.Warnings)
	}
	overflow := false
	for _, pt := range rep.Patches.Patches() {
		if pt.Types&patch.TypeOverflow != 0 {
			overflow = true
		}
	}
	if !overflow {
		t.Fatalf("no overflow patch in %v", rep.Patches.Patches())
	}

	table := defense.SealTable(rep.Patches)
	runDefended := func(input []byte) *prog.Result {
		t.Helper()
		space, err := mem.NewSpace(mem.Config{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := defense.NewBackend(space, defense.Config{SharedTable: table})
		if err != nil {
			t.Fatal(err)
		}
		it, err := prog.New(p, prog.Config{Backend: b, Coder: coder})
		if err != nil {
			t.Fatal(err)
		}
		res, err := it.Run(input)
		if err != nil {
			t.Fatal(err)
		}
		if res.Crashed() {
			// Classify: a contained crash faults on a guard page
			// (ProtNone), a wild one runs off the mapping.
			f, ok := mem.AsFault(res.Fault)
			if !ok {
				t.Fatalf("crash with a non-fault error: %v", res.Fault)
			}
			if prot, err := space.ProtAt(f.Addr); err != nil || prot != mem.ProtNone {
				t.Fatalf("defended fault at %#x not on a guard page (prot %v, err %v)", f.Addr, prot, err)
			}
		}
		return res
	}

	if res := runDefended(svc.CrashRequest()); !res.Crashed() {
		t.Error("patched crash request did not hit the guard page")
	}
	// The small overread lands in the chunk's page-granularity pad:
	// depending on alignment it is either contained by the guard page
	// or reads harmless pad bytes — never the secret (the guarded
	// chunk relocated it away from the reply buffer).
	if res := runDefended(svc.LeakRequest()); bytes.Contains(res.Output, svc.Secret()) {
		t.Error("patched leak request still exfiltrated the secret")
	}

	benign := runDefended(svc.BenignRequest())
	if benign.Crashed() {
		t.Fatalf("patched benign request crashed: %v", benign.Fault)
	}
	native := runNative(t, p, coder, svc.BenignRequest())
	if !bytes.Equal(benign.Output, native.Output) {
		t.Error("patched benign reply differs from native")
	}
}
