package workload

import (
	"testing"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
)

func TestSpecBenchmarksTableIV(t *testing.T) {
	benches := SpecBenchmarks()
	if len(benches) != 12 {
		t.Fatalf("benchmarks = %d, want 12 (SPEC CPU2006 integer)", len(benches))
	}
	// Pin a few Table IV rows exactly.
	rows := map[string][3]uint64{
		"400.perlbench":  {346_405_116, 0, 11_736_402},
		"401.bzip2":      {174, 0, 0},
		"429.mcf":        {5, 3, 0},
		"462.libquantum": {1, 121, 58},
		"483.xalancbmk":  {135_155_553, 0, 0},
	}
	for name, want := range rows {
		b, err := BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.Mallocs != want[0] || b.Callocs != want[1] || b.Reallocs != want[2] {
			t.Errorf("%s counts = %d/%d/%d, want %d/%d/%d",
				name, b.Mallocs, b.Callocs, b.Reallocs, want[0], want[1], want[2])
		}
	}
	if _, err := BenchmarkByName("500.nonesuch"); err == nil {
		t.Error("BenchmarkByName accepted unknown name")
	}
}

func TestTargetsFollowTableIV(t *testing.T) {
	b, _ := BenchmarkByName("401.bzip2")
	if got := b.Targets(); len(got) != 1 || got[0] != "malloc" {
		t.Errorf("bzip2 targets = %v, want [malloc]", got)
	}
	b, _ = BenchmarkByName("462.libquantum")
	if got := b.Targets(); len(got) != 3 {
		t.Errorf("libquantum targets = %v, want malloc+calloc+realloc", got)
	}
}

func TestGraphsDeterministic(t *testing.T) {
	b, _ := BenchmarkByName("403.gcc")
	g1, t1, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := b.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Error("benchmark graph not deterministic")
	}
	if len(t1) == 0 {
		t.Error("no targets in benchmark graph")
	}
}

// TestTableIIIOrdering: for every benchmark, the instrumentation-size
// ordering FCS >= TCS >= Slim >= Incremental must hold, and sparse
// allocators must show a dramatic FCS->TCS collapse (the bzip2 row).
func TestTableIIIOrdering(t *testing.T) {
	for _, b := range SpecBenchmarks() {
		g, targets, err := b.Graph()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		var prev float64 = 1e18
		pcts := make(map[encoding.Scheme]float64, 4)
		for _, scheme := range encoding.AllSchemes() {
			plan, err := encoding.NewPlan(scheme, g, targets)
			if err != nil {
				t.Fatal(err)
			}
			rep := encoding.Cost(g, plan, encoding.EncoderPCC, b.FuncSize())
			pct := rep.SizeIncreasePercent()
			if pct > prev {
				t.Errorf("%s: %v size %.2f%% > previous scheme's %.2f%%", b.Name, scheme, pct, prev)
			}
			prev = pct
			pcts[scheme] = pct
		}
		if pcts[encoding.SchemeFCS] == 0 {
			t.Errorf("%s: FCS size increase is zero", b.Name)
		}
	}

	// The bzip2-style collapse: TCS is a tiny fraction of FCS.
	b, _ := BenchmarkByName("401.bzip2")
	g, targets, _ := b.Graph()
	fcs, _ := encoding.NewPlan(encoding.SchemeFCS, g, targets)
	tcs, _ := encoding.NewPlan(encoding.SchemeTCS, g, targets)
	if ratio := float64(tcs.NumSites()) / float64(fcs.NumSites()); ratio > 0.25 {
		t.Errorf("bzip2 TCS/FCS site ratio = %.2f, want < 0.25 (paper: 0.12%%/8.8%%)", ratio)
	}

	// The astar-style collapse: TCS close to FCS, Slim tiny.
	b, _ = BenchmarkByName("473.astar")
	g, targets, _ = b.Graph()
	fcs, _ = encoding.NewPlan(encoding.SchemeFCS, g, targets)
	tcs, _ = encoding.NewPlan(encoding.SchemeTCS, g, targets)
	slim, _ := encoding.NewPlan(encoding.SchemeSlim, g, targets)
	if ratio := float64(tcs.NumSites()) / float64(fcs.NumSites()); ratio < 0.5 {
		t.Errorf("astar TCS/FCS = %.2f, want > 0.5 (paper: 7.0%%/7.0%%)", ratio)
	}
	if ratio := float64(slim.NumSites()) / float64(tcs.NumSites()); ratio > 0.5 {
		t.Errorf("astar Slim/TCS = %.2f, want < 0.5 (paper: 0.2%%/7.0%%)", ratio)
	}
}

func runProgram(t *testing.T, p *prog.Program) *prog.Result {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := prog.NewNativeBackend(space)
	if err != nil {
		t.Fatal(err)
	}
	it, err := prog.New(p, prog.Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	res, err := it.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed() {
		t.Fatalf("workload crashed: %v", res.Fault)
	}
	return res
}

// TestProgramsRunAndAllocate generates and executes every benchmark
// program at high scale, checking allocation counts land in the right
// ballpark of the scaled Table IV totals.
func TestProgramsRunAndAllocate(t *testing.T) {
	cfg := ProgramConfig{Scale: 1_000_000}
	for _, b := range SpecBenchmarks() {
		p, plan, err := b.Program(cfg)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		res := runProgram(t, p)
		if res.Allocs == 0 {
			t.Errorf("%s: no allocations executed", b.Name)
		}
		if res.Allocs != plan.PlannedAllocs {
			t.Errorf("%s: %d allocs executed, plan says %d", b.Name, res.Allocs, plan.PlannedAllocs)
		}
		scaledTotal := cfg.scaled(b.Mallocs) + cfg.scaled(b.Callocs) + cfg.scaled(b.Reallocs)
		// The driver rounds up to whole graph traversals; one full
		// traversal is the floor.
		limit := 3 * scaledTotal
		if plan.AllocsPerIteration > limit {
			limit = 2 * plan.AllocsPerIteration
		}
		if res.Allocs > limit {
			t.Errorf("%s: %d allocs, want about %d (<= %d)", b.Name, res.Allocs, scaledTotal, limit)
		}
		if res.Frees != res.Allocs {
			t.Errorf("%s: %d frees != %d allocs (workload must be leak-free)", b.Name, res.Frees, res.Allocs)
		}
	}
}

// TestAllocationIntensityOrdering: perlbench must be far more
// allocation-intensive than bzip2 per unit of work, since that ratio
// is what drives the Figure 8 overhead differences.
func TestAllocationIntensityOrdering(t *testing.T) {
	cfg := ProgramConfig{Scale: 1_000_000}
	intensity := func(name string) float64 {
		b, err := BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, _, err := b.Program(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := runProgram(t, p)
		return float64(res.Allocs) / float64(res.Steps)
	}
	perl := intensity("400.perlbench")
	bzip := intensity("401.bzip2")
	if perl < 20*bzip {
		t.Errorf("perlbench intensity %.6f not >> bzip2's %.6f", perl, bzip)
	}
}

func TestLiveHeapProgram(t *testing.T) {
	b, _ := BenchmarkByName("471.omnetpp")
	p, err := b.LiveHeapProgram(ProgramConfig{})
	if err != nil {
		t.Fatal(err)
	}
	space, _ := mem.NewSpace(mem.Config{})
	backend, _ := prog.NewNativeBackend(space)
	it, err := prog.New(p, prog.Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	res, err := it.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed() {
		t.Fatalf("live-heap program crashed: %v", res.Fault)
	}
	live := backend.Heap().Stats().InUseChunks
	if live != uint64(b.LiveBuffers) {
		t.Errorf("live chunks = %d, want %d", live, b.LiveBuffers)
	}
}

func TestServicePrograms(t *testing.T) {
	for _, s := range []*Service{Nginx(), MySQL()} {
		p, err := s.Program(200, 20)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		res := runProgram(t, p)
		wantAllocs := uint64(200*s.AllocsPerRequest + 20)
		if res.Allocs != wantAllocs {
			t.Errorf("%s: allocs = %d, want %d", s.Name, res.Allocs, wantAllocs)
		}
		if res.Frees != res.Allocs {
			t.Errorf("%s: leaks: %d allocs, %d frees", s.Name, res.Allocs, res.Frees)
		}
	}
}

func TestServiceValidation(t *testing.T) {
	if _, err := Nginx().Program(0, 10); err == nil {
		t.Error("zero requests accepted")
	}
	if _, err := Nginx().Program(10, 0); err == nil {
		t.Error("zero concurrency accepted")
	}
	// Concurrency above requests is clamped, not an error.
	if _, err := Nginx().Program(5, 50); err != nil {
		t.Errorf("clamped concurrency: %v", err)
	}
}

// TestMySQLLessAllocIntensive pins the reason MySQL shows no
// observable overhead in the paper.
func TestMySQLLessAllocIntensive(t *testing.T) {
	run := func(s *Service) float64 {
		p, err := s.Program(100, 10)
		if err != nil {
			t.Fatal(err)
		}
		res := runProgram(t, p)
		return float64(res.Allocs) / float64(res.Steps)
	}
	if nginx, mysql := run(Nginx()), run(MySQL()); mysql > nginx/5 {
		t.Errorf("MySQL intensity %.6f not << nginx %.6f", mysql, nginx)
	}
}
