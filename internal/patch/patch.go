// Package patch defines HeapTherapy+'s heap patches: the configuration
// entries that drive the online defense.
//
// A patch is the tuple {FUN, CCID, T} from Section V of the paper: FUN
// is the allocation function used to request the vulnerable buffer,
// CCID is its allocation-time calling-context ID, and T is a three-bit
// vulnerability-type mask (overflow, use after free, uninitialized
// read). Patches are "code-less": installing one changes only the
// configuration file the Online Defense Generator loads at startup.
package patch

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"heaptherapy/internal/heapsim"
)

// TypeMask is the vulnerability-type bitmask (the T field).
type TypeMask uint8

// Vulnerability type bits, matching the paper's three-bit encoding.
const (
	// TypeOverflow covers both overwrite and overread; the defense is
	// a guard page appended to the buffer.
	TypeOverflow TypeMask = 1 << iota
	// TypeUseAfterFree defers reuse through the freed-blocks FIFO.
	TypeUseAfterFree
	// TypeUninitRead zero-fills the buffer at allocation.
	TypeUninitRead
)

// AllTypes is the mask with every vulnerability bit set.
const AllTypes = TypeOverflow | TypeUseAfterFree | TypeUninitRead

// Has reports whether m includes all bits of t.
func (m TypeMask) Has(t TypeMask) bool { return m&t == t }

func (m TypeMask) String() string {
	if m == 0 {
		return "NONE"
	}
	var parts []string
	if m.Has(TypeOverflow) {
		parts = append(parts, "OVERFLOW")
	}
	if m.Has(TypeUseAfterFree) {
		parts = append(parts, "UAF")
	}
	if m.Has(TypeUninitRead) {
		parts = append(parts, "UNINIT_READ")
	}
	if extra := m &^ AllTypes; extra != 0 {
		parts = append(parts, fmt.Sprintf("TypeMask(%#x)", uint8(extra)))
	}
	return strings.Join(parts, "|")
}

// ParseTypeMask parses the String form ("OVERFLOW|UAF").
func ParseTypeMask(s string) (TypeMask, error) {
	if s == "NONE" || s == "" {
		return 0, nil
	}
	var m TypeMask
	for _, part := range strings.Split(s, "|") {
		switch part {
		case "OVERFLOW":
			m |= TypeOverflow
		case "UAF":
			m |= TypeUseAfterFree
		case "UNINIT_READ":
			m |= TypeUninitRead
		default:
			return 0, fmt.Errorf("patch: unknown vulnerability type %q", part)
		}
	}
	return m, nil
}

// Patch is one configuration entry: buffers allocated by Fn under
// calling context CCID are treated as vulnerable to Types.
type Patch struct {
	// Fn is the allocation function (FUN).
	Fn heapsim.AllocFn
	// CCID is the allocation-time calling-context ID.
	CCID uint64
	// Types is the vulnerability mask (T).
	Types TypeMask
}

func (p Patch) String() string {
	return fmt.Sprintf("FUN=%s CCID=%#x T=%s", p.Fn, p.CCID, p.Types)
}

// Key identifies the hash-table key {FUN, CCID} the online defense
// looks up on every allocation.
type Key struct {
	Fn   heapsim.AllocFn
	CCID uint64
}

// Key returns the patch's lookup key.
func (p Patch) Key() Key { return Key{Fn: p.Fn, CCID: p.CCID} }

// Set is a collection of patches, deduplicated by key: patches for the
// same {FUN, CCID} merge their type masks (a buffer can be vulnerable
// to several attacks, Section VI).
type Set struct {
	byKey map[Key]TypeMask
}

// NewSet builds a set from the given patches.
func NewSet(patches ...Patch) *Set {
	s := &Set{byKey: make(map[Key]TypeMask, len(patches))}
	for _, p := range patches {
		s.Add(p)
	}
	return s
}

// Add merges a patch into the set.
func (s *Set) Add(p Patch) {
	if s.byKey == nil {
		s.byKey = make(map[Key]TypeMask)
	}
	s.byKey[p.Key()] |= p.Types
}

// Merge folds another set into this one.
func (s *Set) Merge(other *Set) {
	if other == nil {
		return
	}
	for k, t := range other.byKey {
		if s.byKey == nil {
			s.byKey = make(map[Key]TypeMask)
		}
		s.byKey[k] |= t
	}
}

// Lookup returns the type mask for an allocation key (0 if unpatched).
func (s *Set) Lookup(k Key) TypeMask {
	if s == nil || s.byKey == nil {
		return 0
	}
	return s.byKey[k]
}

// Len returns the number of distinct patched contexts.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.byKey)
}

// Patches returns the set's contents sorted by (Fn, CCID).
func (s *Set) Patches() []Patch {
	if s == nil {
		return nil
	}
	out := make([]Patch, 0, len(s.byKey))
	for k, t := range s.byKey {
		out = append(out, Patch{Fn: k.Fn, CCID: k.CCID, Types: t})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].CCID < out[j].CCID
	})
	return out
}

// WriteConfig serializes the set in the configuration-file format the
// Online Defense Generator reads: one "FUN=... CCID=... T=..." line per
// patch, '#' comments allowed.
func (s *Set) WriteConfig(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# HeapTherapy+ patch configuration"); err != nil {
		return fmt.Errorf("patch: writing config: %w", err)
	}
	for _, p := range s.Patches() {
		if _, err := fmt.Fprintln(bw, p.String()); err != nil {
			return fmt.Errorf("patch: writing config: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("patch: writing config: %w", err)
	}
	return nil
}

// ReadConfig parses a configuration file produced by WriteConfig.
func ReadConfig(r io.Reader) (*Set, error) {
	s := NewSet()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("patch: config line %d: %w", lineNo, err)
		}
		s.Add(p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("patch: reading config: %w", err)
	}
	return s, nil
}

func parseLine(line string) (Patch, error) {
	var p Patch
	seen := make(map[string]bool, 3)
	for _, field := range strings.Fields(line) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Patch{}, fmt.Errorf("malformed field %q", field)
		}
		if seen[k] {
			return Patch{}, fmt.Errorf("duplicate field %q", k)
		}
		seen[k] = true
		switch k {
		case "FUN":
			fn, err := heapsim.ParseAllocFn(v)
			if err != nil {
				return Patch{}, err
			}
			p.Fn = fn
		case "CCID":
			id, err := strconv.ParseUint(v, 0, 64)
			if err != nil {
				return Patch{}, fmt.Errorf("bad CCID %q: %w", v, err)
			}
			p.CCID = id
		case "T":
			t, err := ParseTypeMask(v)
			if err != nil {
				return Patch{}, err
			}
			p.Types = t
		default:
			return Patch{}, fmt.Errorf("unknown field %q", k)
		}
	}
	if !seen["FUN"] || !seen["CCID"] || !seen["T"] {
		return Patch{}, fmt.Errorf("line %q is missing FUN, CCID, or T", line)
	}
	if p.Types == 0 {
		return Patch{}, fmt.Errorf("patch with empty type mask")
	}
	return p, nil
}
