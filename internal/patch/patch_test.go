package patch

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"heaptherapy/internal/heapsim"
)

func TestTypeMaskString(t *testing.T) {
	cases := []struct {
		m    TypeMask
		want string
	}{
		{0, "NONE"},
		{TypeOverflow, "OVERFLOW"},
		{TypeUseAfterFree, "UAF"},
		{TypeUninitRead, "UNINIT_READ"},
		{TypeOverflow | TypeUninitRead, "OVERFLOW|UNINIT_READ"},
		{AllTypes, "OVERFLOW|UAF|UNINIT_READ"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("%#x.String() = %q, want %q", uint8(c.m), got, c.want)
		}
		back, err := ParseTypeMask(c.want)
		if err != nil || back != c.m {
			t.Errorf("ParseTypeMask(%q) = %v, %v; want %#x", c.want, back, err, uint8(c.m))
		}
	}
	if _, err := ParseTypeMask("SPECTRE"); err == nil {
		t.Error("ParseTypeMask accepted unknown type")
	}
}

func TestTypeMaskHas(t *testing.T) {
	m := TypeOverflow | TypeUninitRead
	if !m.Has(TypeOverflow) || !m.Has(TypeUninitRead) {
		t.Error("Has misses set bits")
	}
	if m.Has(TypeUseAfterFree) {
		t.Error("Has reports unset bit")
	}
	if !m.Has(TypeOverflow | TypeUninitRead) {
		t.Error("Has fails on multi-bit query")
	}
}

func TestSetMergesSameKey(t *testing.T) {
	s := NewSet(
		Patch{Fn: heapsim.FnMalloc, CCID: 0x10, Types: TypeOverflow},
		Patch{Fn: heapsim.FnMalloc, CCID: 0x10, Types: TypeUninitRead},
		Patch{Fn: heapsim.FnCalloc, CCID: 0x10, Types: TypeUseAfterFree},
	)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (same-key patches merge)", s.Len())
	}
	got := s.Lookup(Key{Fn: heapsim.FnMalloc, CCID: 0x10})
	if got != TypeOverflow|TypeUninitRead {
		t.Errorf("merged mask = %v, want OVERFLOW|UNINIT_READ", got)
	}
	if s.Lookup(Key{Fn: heapsim.FnMalloc, CCID: 0x11}) != 0 {
		t.Error("Lookup of unpatched key is nonzero")
	}
}

func TestNilSetLookup(t *testing.T) {
	var s *Set
	if s.Lookup(Key{Fn: heapsim.FnMalloc, CCID: 1}) != 0 {
		t.Error("nil set lookup nonzero")
	}
	if s.Len() != 0 {
		t.Error("nil set Len nonzero")
	}
	if s.Patches() != nil {
		t.Error("nil set Patches non-nil")
	}
}

func TestZeroValueSetUsable(t *testing.T) {
	var s Set
	s.Add(Patch{Fn: heapsim.FnMalloc, CCID: 5, Types: TypeOverflow})
	if s.Len() != 1 {
		t.Error("zero-value Set unusable")
	}
}

func TestMerge(t *testing.T) {
	a := NewSet(Patch{Fn: heapsim.FnMalloc, CCID: 1, Types: TypeOverflow})
	b := NewSet(
		Patch{Fn: heapsim.FnMalloc, CCID: 1, Types: TypeUseAfterFree},
		Patch{Fn: heapsim.FnMemalign, CCID: 2, Types: TypeUninitRead},
	)
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged Len = %d, want 2", a.Len())
	}
	if got := a.Lookup(Key{Fn: heapsim.FnMalloc, CCID: 1}); got != TypeOverflow|TypeUseAfterFree {
		t.Errorf("merged mask = %v", got)
	}
	a.Merge(nil) // must not panic
}

func TestPatchesSorted(t *testing.T) {
	s := NewSet(
		Patch{Fn: heapsim.FnRealloc, CCID: 9, Types: TypeOverflow},
		Patch{Fn: heapsim.FnMalloc, CCID: 7, Types: TypeOverflow},
		Patch{Fn: heapsim.FnMalloc, CCID: 3, Types: TypeOverflow},
	)
	ps := s.Patches()
	if len(ps) != 3 {
		t.Fatalf("len = %d", len(ps))
	}
	if ps[0].CCID != 3 || ps[1].CCID != 7 || ps[2].Fn != heapsim.FnRealloc {
		t.Errorf("patches not sorted: %v", ps)
	}
}

func TestConfigRoundTrip(t *testing.T) {
	s := NewSet(
		Patch{Fn: heapsim.FnMalloc, CCID: 0xDEADBEEF, Types: TypeOverflow | TypeUninitRead},
		Patch{Fn: heapsim.FnMemalign, CCID: 42, Types: TypeUseAfterFree},
		Patch{Fn: heapsim.FnCalloc, CCID: 0xFFFFFFFFFFFFFFFF, Types: AllTypes},
	)
	var buf bytes.Buffer
	if err := s.WriteConfig(&buf); err != nil {
		t.Fatalf("WriteConfig: %v", err)
	}
	got, err := ReadConfig(&buf)
	if err != nil {
		t.Fatalf("ReadConfig: %v", err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip Len = %d, want %d", got.Len(), s.Len())
	}
	for _, p := range s.Patches() {
		if got.Lookup(p.Key()) != p.Types {
			t.Errorf("round trip lost %v", p)
		}
	}
}

func TestReadConfigComments(t *testing.T) {
	in := `# comment
FUN=malloc CCID=0x10 T=OVERFLOW

# another
FUN=calloc CCID=16 T=UAF|UNINIT_READ
`
	s, err := ReadConfig(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadConfig: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if got := s.Lookup(Key{Fn: heapsim.FnCalloc, CCID: 16}); got != TypeUseAfterFree|TypeUninitRead {
		t.Errorf("calloc patch = %v", got)
	}
}

func TestReadConfigErrors(t *testing.T) {
	bad := []string{
		"FUN=mmap CCID=1 T=OVERFLOW",
		"FUN=malloc CCID=xyz T=OVERFLOW",
		"FUN=malloc CCID=1 T=BANANA",
		"FUN=malloc CCID=1",
		"CCID=1 T=OVERFLOW",
		"FUN=malloc CCID=1 T=NONE",
		"FUN=malloc FUN=malloc CCID=1 T=OVERFLOW",
		"garbage line",
	}
	for _, line := range bad {
		if _, err := ReadConfig(strings.NewReader(line)); err == nil {
			t.Errorf("ReadConfig(%q) succeeded, want error", line)
		}
	}
}

func TestPatchString(t *testing.T) {
	p := Patch{Fn: heapsim.FnMalloc, CCID: 0xABC, Types: TypeOverflow}
	want := "FUN=malloc CCID=0xabc T=OVERFLOW"
	if got := p.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// TestQuickConfigRoundTrip property-tests serialization over arbitrary
// patch contents.
func TestQuickConfigRoundTrip(t *testing.T) {
	fns := []heapsim.AllocFn{
		heapsim.FnMalloc, heapsim.FnCalloc, heapsim.FnRealloc,
		heapsim.FnMemalign, heapsim.FnAlignedAlloc,
	}
	f := func(ccid uint64, fnIdx, typeBits uint8) bool {
		types := TypeMask(typeBits)&AllTypes | TypeOverflow // nonzero
		p := Patch{Fn: fns[int(fnIdx)%len(fns)], CCID: ccid, Types: types}
		var buf bytes.Buffer
		s := NewSet(p)
		if err := s.WriteConfig(&buf); err != nil {
			return false
		}
		got, err := ReadConfig(&buf)
		if err != nil {
			return false
		}
		return got.Lookup(p.Key()) == p.Types
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
