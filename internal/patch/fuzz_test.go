package patch

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadConfig ensures arbitrary configuration bytes never panic the
// parser, and accepted configs round-trip.
func FuzzReadConfig(f *testing.F) {
	f.Add("FUN=malloc CCID=0x10 T=OVERFLOW\n")
	f.Add("# comment\nFUN=calloc CCID=16 T=UAF|UNINIT_READ\n")
	f.Add("FUN=memalign CCID=18446744073709551615 T=OVERFLOW|UAF|UNINIT_READ\n")
	f.Add("")
	f.Add("garbage\n")
	f.Fuzz(func(t *testing.T, src string) {
		set, err := ReadConfig(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := set.WriteConfig(&buf); err != nil {
			t.Fatalf("accepted config fails to serialize: %v", err)
		}
		back, err := ReadConfig(&buf)
		if err != nil {
			t.Fatalf("serialized config does not re-parse: %v\n%s", err, buf.String())
		}
		if back.Len() != set.Len() {
			t.Fatalf("round trip changed size: %d -> %d", set.Len(), back.Len())
		}
	})
}
