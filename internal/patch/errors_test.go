package patch

import (
	"errors"
	"strings"
	"testing"

	"heaptherapy/internal/heapsim"
)

// failAfterWriter errors once n bytes have been written, so bufio's
// internal buffering cannot hide the failure.
type failAfterWriter struct {
	n       int
	written int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errors.New("disk full")
	}
	w.written += len(p)
	return len(p), nil
}

// TestWriteConfigPropagatesWriterErrors: a failing sink must surface
// as an error, not a silently truncated configuration file.
func TestWriteConfigPropagatesWriterErrors(t *testing.T) {
	s := NewSet()
	// Enough patches to overflow bufio's buffer mid-loop.
	for i := uint64(0); i < 400; i++ {
		s.Add(Patch{Fn: heapsim.FnMalloc, CCID: i, Types: TypeOverflow})
	}
	for _, limit := range []int{0, 10, 4096, 8000} {
		err := s.WriteConfig(&failAfterWriter{n: limit})
		if err == nil {
			t.Errorf("limit %d: WriteConfig succeeded on a failing writer", limit)
		} else if !strings.Contains(err.Error(), "writing config") {
			t.Errorf("limit %d: error %v lacks context", limit, err)
		}
	}
}

// failReader always errors, exercising ReadConfig's scanner-error
// path.
type failReader struct{}

func (failReader) Read([]byte) (int, error) { return 0, errors.New("io timeout") }

func TestReadConfigPropagatesReaderErrors(t *testing.T) {
	if _, err := ReadConfig(failReader{}); err == nil || !strings.Contains(err.Error(), "reading config") {
		t.Fatalf("ReadConfig = %v, want reading-config error", err)
	}
}

// TestReadConfigRejectsMalformedLines walks every parseLine rejection.
func TestReadConfigRejectsMalformedLines(t *testing.T) {
	cases := map[string]string{
		"no equals":            "FUN=malloc CCID=1 T",
		"duplicate field":      "FUN=malloc FUN=malloc CCID=1 T=OVERFLOW",
		"unknown field":        "FUN=malloc CCID=1 T=OVERFLOW X=1",
		"bad fn":               "FUN=alloca CCID=1 T=OVERFLOW",
		"bad ccid":             "FUN=malloc CCID=zebra T=OVERFLOW",
		"bad type":             "FUN=malloc CCID=1 T=SEGV",
		"missing FUN":          "CCID=1 T=OVERFLOW",
		"missing CCID":         "FUN=malloc T=OVERFLOW",
		"missing T":            "FUN=malloc CCID=1",
		"line number in error": "# comment\n\nFUN=",
	}
	for name, input := range cases {
		if _, err := ReadConfig(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ReadConfig accepted %q", name, input)
		}
	}
	// The line number must point at the offending line, not the count
	// of non-blank lines.
	_, err := ReadConfig(strings.NewReader("# ok\n\nFUN=bogus CCID=1 T=OVERFLOW\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %v does not name line 3", err)
	}
}

// TestMergeEdgeCases: merging nil and merging into a zero-value set.
func TestMergeEdgeCases(t *testing.T) {
	var s Set
	s.Merge(nil)
	if s.Len() != 0 {
		t.Fatal("merging nil changed the set")
	}
	other := NewSet()
	other.Add(Patch{Fn: heapsim.FnMalloc, CCID: 7, Types: TypeUninitRead})
	other.Add(Patch{Fn: heapsim.FnCalloc, CCID: 9, Types: TypeUseAfterFree})
	s.Merge(other) // s.byKey is nil here; Merge must materialize it
	if s.Len() != 2 {
		t.Fatalf("Len = %d after merge, want 2", s.Len())
	}
	if got := s.Lookup(Key{Fn: heapsim.FnMalloc, CCID: 7}); got != TypeUninitRead {
		t.Fatalf("Lookup = %v", got)
	}
	// Merging again must OR type masks, not duplicate keys.
	again := NewSet()
	again.Add(Patch{Fn: heapsim.FnMalloc, CCID: 7, Types: TypeOverflow})
	s.Merge(again)
	if got := s.Lookup(Key{Fn: heapsim.FnMalloc, CCID: 7}); got != TypeUninitRead|TypeOverflow {
		t.Fatalf("merged mask = %v", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after re-merge, want 2", s.Len())
	}
}

// TestTypeMaskStringUnknownBits: stray bits outside AllTypes are
// printed, not dropped — a corrupted mask must be visible in logs.
func TestTypeMaskStringUnknownBits(t *testing.T) {
	m := TypeOverflow | TypeMask(0x40)
	s := m.String()
	if !strings.Contains(s, "OVERFLOW") || !strings.Contains(s, "0x40") {
		t.Fatalf("String() = %q, want OVERFLOW and the stray bit", s)
	}
}
