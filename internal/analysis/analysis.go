// Package analysis implements the Offline Patch Generator (Section V):
// it replays a program on an attack input over the shadow-memory heap,
// collects the warnings, and distills them into heap patches keyed by
// allocation-time calling context.
//
// The paper builds this phase on Valgrind; here the same instrumented
// program (same call graph, same encoding plan, same per-site
// constants) runs under the shadow backend, which is what guarantees
// that a CCID recorded offline matches the CCID the online defense
// computes for the same allocation context.
package analysis

import (
	"fmt"
	"io"
	"strings"

	"heaptherapy/internal/callgraph"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/shadow"
)

// Report is the outcome of analyzing one attack input.
type Report struct {
	// Program is the analyzed program's name.
	Program string
	// InputLen is the attack input's size.
	InputLen int
	// Result is the interpreter result of the replay (the run may
	// crash; analysis still yields whatever was detected first).
	Result *prog.Result
	// Warnings are the detected violations, in detection order.
	Warnings []shadow.Warning
	// Patches is the generated patch set.
	Patches *patch.Set
	// Skipped counts warnings that could not be attributed to an
	// allocation context (wild accesses) and yielded no patch.
	Skipped int
	// Leaks lists buffers never freed during the replay, grouped by
	// allocation context (a Memcheck-style leak check; informational,
	// not a patchable vulnerability type).
	Leaks []shadow.Leak
	// Contexts maps each patch key to its decoded call path when the
	// analyzer's encoder supports decoding (PCCE/DeltaPath). PCC —
	// the paper's deployed choice — cannot decode, so the map stays
	// empty then; the defense needs only the opaque CCID either way.
	Contexts map[patch.Key]string
}

// Analyzer generates patches by replaying attacks.
type Analyzer struct {
	// Coder is the calling-context instrumentation; it MUST be the
	// same coder (graph, plan, constants) the online system uses, or
	// offline CCIDs will not match online allocations.
	Coder *encoding.Coder
	// ShadowConfig tunes the analysis heap.
	ShadowConfig shadow.Config
	// MaxSteps bounds the replay (0 = interpreter default).
	MaxSteps uint64
	// Engine selects the replay substrate (tree interpreter, bytecode
	// VM, or tier-up machine); all record identical warning streams.
	Engine prog.Engine
	// TierUp is the compiled engine's promotion threshold (0 = default).
	TierUp uint64
}

// Analyze replays the program on the attack input and generates
// patches from every warning the shadow heap raises.
func (a *Analyzer) Analyze(p *prog.Program, attackInput []byte) (*Report, error) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return nil, fmt.Errorf("analysis: creating space: %w", err)
	}
	backend, err := shadow.New(space, a.ShadowConfig)
	if err != nil {
		return nil, fmt.Errorf("analysis: creating shadow heap: %w", err)
	}
	it, err := prog.NewExec(p, prog.Config{
		Backend:  backend,
		Coder:    a.Coder,
		MaxSteps: a.MaxSteps,
		Engine:   a.Engine,
		TierUp:   a.TierUp,
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: building interpreter: %w", err)
	}
	return a.AnalyzeWith(p, attackInput, backend, it)
}

// AnalyzeWith replays the attack over a caller-prepared shadow backend
// and executor and distills the warnings into patches — the
// construction-free seam the campaign's pooled workbench drives. The
// backend must be freshly constructed or Reset, and it must be bound
// to the backend with this analyzer's coder; under those conditions
// repeated calls over recycled substrate are bit-identical to
// Analyze's fresh-construction path.
func (a *Analyzer) AnalyzeWith(p *prog.Program, attackInput []byte, backend *shadow.Backend, it prog.Exec) (*Report, error) {
	res, err := it.Run(attackInput)
	if err != nil {
		return nil, fmt.Errorf("analysis: replaying attack: %w", err)
	}

	rep := &Report{
		Program:  p.Name,
		InputLen: len(attackInput),
		Result:   res,
		Warnings: backend.Warnings(),
		Patches:  patch.NewSet(),
		Leaks:    backend.Leaks(),
	}
	for _, w := range rep.Warnings {
		if w.AllocFn == 0 {
			rep.Skipped++
			continue
		}
		rep.Patches.Add(w.Patch())
	}
	rep.Contexts = a.decodeContexts(p, rep.Patches)
	return rep, nil
}

// decodeContexts symbolizes patch CCIDs into call paths where the
// bound encoder supports decoding.
func (a *Analyzer) decodeContexts(p *prog.Program, set *patch.Set) map[patch.Key]string {
	if a.Coder == nil || !a.Coder.Precise() {
		return nil
	}
	g := p.Graph()
	root := g.NodeByName(p.Entry)
	out := make(map[patch.Key]string)
	for _, pp := range set.Patches() {
		target := g.NodeByName(pp.Fn.String())
		if root == callgraph.InvalidNode || target == callgraph.InvalidNode {
			continue
		}
		path, err := a.Coder.Decode(root, target, pp.CCID)
		if err != nil {
			continue // recursion or cross-root context: leave opaque
		}
		parts := []string{p.Entry}
		for _, s := range path {
			parts = append(parts, g.Name(g.Edge(s).To))
		}
		out[pp.Key()] = strings.Join(parts, " -> ")
	}
	return out
}

// WriteTo renders a human-readable analysis report; it implements a
// io.WriterTo-style helper (but returns only an error, as the byte
// count is uninteresting here).
func (r *Report) Write(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== HeapTherapy+ offline analysis: %s ===\n", r.Program)
	fmt.Fprintf(&sb, "attack input: %d bytes\n", r.InputLen)
	if r.Result.Crashed() {
		fmt.Fprintf(&sb, "replay: crashed (%v)\n", r.Result.Fault)
	} else {
		fmt.Fprintf(&sb, "replay: completed, %d steps, %d allocations\n", r.Result.Steps, r.Result.Allocs)
	}
	fmt.Fprintf(&sb, "warnings: %d (%d unattributable)\n", len(r.Warnings), r.Skipped)
	for i, warn := range r.Warnings {
		fmt.Fprintf(&sb, "  [%d] %s\n", i+1, warn)
	}
	fmt.Fprintf(&sb, "patches generated: %d\n", r.Patches.Len())
	for _, p := range r.Patches.Patches() {
		fmt.Fprintf(&sb, "  %s\n", p)
		if ctx, ok := r.Contexts[p.Key()]; ok {
			fmt.Fprintf(&sb, "    context: %s\n", ctx)
		}
	}
	if len(r.Leaks) > 0 {
		fmt.Fprintf(&sb, "leak check: %d leaking context(s)\n", len(r.Leaks))
		for _, l := range r.Leaks {
			fmt.Fprintf(&sb, "  %s\n", l)
		}
	}
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return fmt.Errorf("analysis: writing report: %w", err)
	}
	return nil
}
