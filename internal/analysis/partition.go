package analysis

import (
	"fmt"

	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/shadow"
)

// AnalyzePartitioned implements Section IX's answer to quota
// exhaustion: when a program's freed memory outruns the freed-block
// queue quota, the attack is replayed N times; run i defers
// deallocation only for buffers whose allocation-time CCID falls in
// subspace i (CCID mod N == i), so each run parks roughly 1/N of the
// freed bytes. Warnings and patches from all runs are merged.
func (a *Analyzer) AnalyzePartitioned(p *prog.Program, attackInput []byte, n int) (*Report, error) {
	if n < 1 {
		return nil, fmt.Errorf("analysis: partition count %d, need >= 1", n)
	}
	if n == 1 {
		return a.Analyze(p, attackInput)
	}
	merged := &Report{
		Program:  p.Name,
		InputLen: len(attackInput),
		Patches:  patch.NewSet(),
	}
	seen := make(map[string]bool)
	for i := 0; i < n; i++ {
		i := uint64(i)
		space, err := mem.NewSpace(mem.Config{})
		if err != nil {
			return nil, fmt.Errorf("analysis: creating space: %w", err)
		}
		cfg := a.ShadowConfig
		cfg.DeferFilter = func(ccid uint64) bool { return ccid%uint64(n) == i }
		backend, err := shadow.New(space, cfg)
		if err != nil {
			return nil, fmt.Errorf("analysis: creating shadow heap: %w", err)
		}
		it, err := prog.NewExec(p, prog.Config{
			Backend:  backend,
			Coder:    a.Coder,
			MaxSteps: a.MaxSteps,
			Engine:   a.Engine,
			TierUp:   a.TierUp,
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: building interpreter: %w", err)
		}
		res, err := it.Run(attackInput)
		if err != nil {
			return nil, fmt.Errorf("analysis: partition %d replay: %w", i, err)
		}
		merged.Result = res // keep the last run's execution summary
		for _, w := range backend.Warnings() {
			key := w.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			merged.Warnings = append(merged.Warnings, w)
			if w.AllocFn == 0 {
				merged.Skipped++
				continue
			}
			merged.Patches.Add(w.Patch())
		}
	}
	return merged, nil
}
