package analysis

import (
	"strings"
	"testing"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/workload"
)

// overflowProgram writes `n` 8-byte entries into a 64-byte buffer,
// where n comes from the input.
func overflowProgram() *prog.Program {
	return prog.MustLink(&prog.Program{
		Name: "of-test",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Call{Callee: "fill"},
			}},
			"fill": {Body: []prog.Stmt{
				prog.Alloc{Dst: "buf", Size: prog.C(64)},
				prog.ReadInput{Dst: "n", N: prog.C(1)},
				prog.Assign{Dst: "i", E: prog.C(0)},
				prog.While{Cond: prog.Lt(prog.V("i"), prog.Bin{Op: prog.OpAnd, A: prog.V("n"), B: prog.C(0xFF)}), Body: []prog.Stmt{
					prog.Store{Base: prog.V("buf"), Off: prog.Mul(prog.V("i"), prog.C(8)), Src: prog.C(0x41), N: prog.C(8)},
					prog.Assign{Dst: "i", E: prog.Add(prog.V("i"), prog.C(1))},
				}},
			}},
		},
	})
}

func newAnalyzer(t *testing.T, p *prog.Program) *Analyzer {
	t.Helper()
	plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}
	return &Analyzer{Coder: coder}
}

func TestAnalyzeGeneratesOverflowPatch(t *testing.T) {
	p := overflowProgram()
	a := newAnalyzer(t, p)
	rep, err := a.Analyze(p, []byte{12}) // 12*8 = 96 > 64
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if rep.Patches.Len() != 1 {
		t.Fatalf("patches = %d, want 1 (%v)", rep.Patches.Len(), rep.Warnings)
	}
	got := rep.Patches.Patches()[0]
	if got.Fn != heapsim.FnMalloc {
		t.Errorf("patch FUN = %v, want malloc", got.Fn)
	}
	if !got.Types.Has(patch.TypeOverflow) {
		t.Errorf("patch types = %v, want OVERFLOW", got.Types)
	}
}

func TestAnalyzeBenignInputNoPatches(t *testing.T) {
	p := overflowProgram()
	a := newAnalyzer(t, p)
	rep, err := a.Analyze(p, []byte{8}) // exactly fits
	if err != nil {
		t.Fatal(err)
	}
	if rep.Patches.Len() != 0 {
		t.Errorf("benign input produced %d patches: %v (zero false positives required)",
			rep.Patches.Len(), rep.Patches.Patches())
	}
}

func TestAnalyzeReportRendering(t *testing.T) {
	p := overflowProgram()
	a := newAnalyzer(t, p)
	rep, err := a.Analyze(p, []byte{12})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"of-test", "OVERFLOW", "patches generated: 1", "FUN=malloc"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeMultipleVulnerabilitiesOneRun(t *testing.T) {
	// A single input that both overflows one buffer and leaks another:
	// the analyzer must resume after the first warning and catch both
	// (Section V, "How to handle multiple vulnerabilities").
	p := prog.MustLink(&prog.Program{
		Name: "multi",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Alloc{Dst: "a", Size: prog.C(32)},
				prog.Alloc{Dst: "b", Size: prog.C(32)},
				// Overread a.
				prog.Output{Base: prog.V("a"), N: prog.C(40)},
				// Uninitialized output of b... already triggered by the
				// overread above? No: b is a separate buffer and origin.
				prog.Output{Base: prog.V("b"), N: prog.C(8)},
			}},
		},
	})
	a := newAnalyzer(t, p)
	rep, err := a.Analyze(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	var union patch.TypeMask
	for _, pp := range rep.Patches.Patches() {
		union |= pp.Types
	}
	if !union.Has(patch.TypeOverflow) || !union.Has(patch.TypeUninitRead) {
		t.Errorf("union = %v, want OVERFLOW|UNINIT_READ from one run (warnings: %v)", union, rep.Warnings)
	}
	if rep.Patches.Len() < 2 {
		t.Errorf("patches = %d, want >= 2 distinct contexts", rep.Patches.Len())
	}
}

func TestAnalyzeCrashingAttackStillYieldsPatch(t *testing.T) {
	// An attack that would eventually run the program off the rails
	// still produces a patch from the warnings gathered before.
	p := prog.MustLink(&prog.Program{
		Name: "crashy",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Alloc{Dst: "buf", Size: prog.C(16)},
				// Overflow into the red zone first...
				prog.Store{Base: prog.V("buf"), Off: prog.C(16), Src: prog.C(1), N: prog.C(8)},
				// ...then jump far outside the mapped space.
				prog.Store{Base: prog.V("buf"), Off: prog.C(1 << 40), Src: prog.C(1), N: prog.C(8)},
			}},
		},
	})
	a := newAnalyzer(t, p)
	rep, err := a.Analyze(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Crashed() {
		t.Error("expected the replay to crash")
	}
	if rep.Patches.Len() == 0 {
		t.Error("no patch despite pre-crash warning")
	}
}

func TestAnalyzeWithoutCoder(t *testing.T) {
	// A nil coder means CCIDs are all zero: analysis still works but
	// every context collapses; patches are still emitted.
	p := overflowProgram()
	a := &Analyzer{}
	rep, err := a.Analyze(p, []byte{12})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Patches.Len() != 1 {
		t.Errorf("patches = %d, want 1", rep.Patches.Len())
	}
	if rep.Patches.Patches()[0].CCID != 0 {
		t.Errorf("CCID = %#x, want 0 without instrumentation", rep.Patches.Patches()[0].CCID)
	}
}

// TestWorkloadsNoFalsePositives replays memory-safe SPEC-like workload
// programs under full shadow analysis: the analyzer must stay silent.
// This is the strongest zero-false-positive check in the suite — tens
// of thousands of statements, thousands of allocation/free/realloc
// operations across every allocation API, and not one warning.
func TestWorkloadsNoFalsePositives(t *testing.T) {
	for _, name := range []string{"400.perlbench", "403.gcc", "456.hmmer", "462.libquantum"} {
		b, err := workload.BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, _, err := b.Program(workload.ProgramConfig{Scale: 1_000_000})
		if err != nil {
			t.Fatal(err)
		}
		a := newAnalyzer(t, p)
		rep, err := a.Analyze(p, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Result.Crashed() {
			t.Fatalf("%s crashed under analysis: %v", name, rep.Result.Fault)
		}
		if len(rep.Warnings) != 0 {
			t.Errorf("%s: %d false positives: %v", name, len(rep.Warnings), rep.Warnings)
		}
		if rep.Patches.Len() != 0 {
			t.Errorf("%s: %d spurious patches", name, rep.Patches.Len())
		}
		if len(rep.Leaks) != 0 {
			t.Errorf("%s: %d spurious leaks: %v", name, len(rep.Leaks), rep.Leaks)
		}
	}
}

// TestDecodedContexts: with a decoding-capable encoder (PCCE), patch
// reports include the symbolized allocation call path.
func TestDecodedContexts(t *testing.T) {
	p := overflowProgram()
	plan, err := encoding.NewPlan(encoding.SchemeTCS, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCCE, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{Coder: coder}
	rep, err := a.Analyze(p, []byte{12})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Patches.Len() != 1 {
		t.Fatalf("patches = %d", rep.Patches.Len())
	}
	key := rep.Patches.Patches()[0].Key()
	ctx, ok := rep.Contexts[key]
	if !ok {
		t.Fatalf("no decoded context for %v", key)
	}
	if ctx != "main -> fill -> malloc" {
		t.Errorf("decoded context = %q, want main -> fill -> malloc", ctx)
	}
	var sb strings.Builder
	if err := rep.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "context: main -> fill -> malloc") {
		t.Errorf("report missing symbolized context:\n%s", sb.String())
	}
}

// TestNoContextsUnderPCC: the paper's deployed encoder cannot decode;
// reports stay opaque without failing.
func TestNoContextsUnderPCC(t *testing.T) {
	p := overflowProgram()
	a := newAnalyzer(t, p) // PCC
	rep, err := a.Analyze(p, []byte{12})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Contexts) != 0 {
		t.Errorf("PCC produced decoded contexts: %v", rep.Contexts)
	}
}

// TestPartitionedMatchesPlainOnSmallHeaps: partitioning must not lose
// findings when the quota is ample.
func TestPartitionedMatchesPlainOnSmallHeaps(t *testing.T) {
	p := overflowProgram()
	a := newAnalyzer(t, p)
	plain, err := a.Analyze(p, []byte{12})
	if err != nil {
		t.Fatal(err)
	}
	part, err := a.AnalyzePartitioned(p, []byte{12}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if part.Patches.Len() != plain.Patches.Len() {
		t.Errorf("partitioned found %d patches, plain %d", part.Patches.Len(), plain.Patches.Len())
	}
	for _, pp := range plain.Patches.Patches() {
		if part.Patches.Lookup(pp.Key()) != pp.Types {
			t.Errorf("partitioned missing %v", pp)
		}
	}
}
