package vuln

import (
	"encoding/binary"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

// recordSize is the heartbeat record buffer size; the real bug has a
// 34 KB buffer and up to 64 KB reads, scaled here to 2 KB / 4 KB.
const recordSize = 2048

// Heartbleed models CVE-2014-0160. A previous "connection" leaves a
// private key in a freed heap block; the heartbeat handler trusts the
// attacker-supplied payload length, so the response memcpy overreads
// the (recycled, partly uninitialized) record buffer and leaks memory.
// Depending on the claimed length the attack is pure uninitialized
// read (len <= record size) or a mix with overread — exactly the two
// regimes Section VIII-A describes.
func Heartbleed() *Case {
	p := prog.MustLink(&prog.Program{
		Name: "heartbleed",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				// A previous session stores a private key, then frees
				// the buffer: the allocator recycles it for the record.
				prog.Call{Callee: "previous_session"},
				prog.Call{Callee: "handle_heartbeat"},
			}},
			"previous_session": {Body: []prog.Stmt{
				prog.Alloc{Dst: "key", Size: prog.C(recordSize)},
				prog.StoreBytes{Base: prog.V("key"), Off: prog.C(100), Data: []byte(Secret)},
				prog.FreeStmt{Ptr: prog.V("key")},
			}},
			"handle_heartbeat": {Body: []prog.Stmt{
				prog.ReadInput{Dst: "rtype", N: prog.C(1)},
				prog.ReadInput{Dst: "plen", N: prog.C(2)},
				prog.ReadInput{Dst: "payload", N: prog.InputRemaining{}},
				// The record buffer: the vulnerable allocation.
				prog.Alloc{Dst: "pl", Size: prog.C(recordSize)},
				prog.StoreVar{Base: prog.V("pl"), Src: "payload"},
				// Response: 1 type byte + 2 length bytes + payload_len
				// bytes copied back — trusting plen (the bug).
				prog.Alloc{Dst: "bp", Size: prog.Add(prog.C(3), prog.V("plen"))},
				prog.Store{Base: prog.V("bp"), Src: prog.V("rtype"), N: prog.C(1)},
				prog.Store{Base: prog.V("bp"), Off: prog.C(1), Src: prog.V("plen"), N: prog.C(2)},
				prog.Memcpy{
					Dst: prog.Add(prog.V("bp"), prog.C(3)),
					Src: prog.V("pl"),
					N:   prog.V("plen"),
				},
				prog.Output{Base: prog.V("bp"), N: prog.Add(prog.C(3), prog.V("plen"))},
			}},
		},
	})
	return &Case{
		Name:    "heartbleed",
		Ref:     "CVE-2014-0160",
		Types:   patch.TypeUninitRead | patch.TypeOverflow,
		Program: p,
		Benign:  [][]byte{heartbeat(5, []byte("hello")), heartbeat(11, []byte("keep-alive!"))},
		// Claim 2600 bytes with a 4-byte payload: uninitialized read of
		// the recycled record buffer plus overread past its end.
		Attack: heartbeat(2600, []byte("EVIL")),
		Success: func(res *prog.Result) bool {
			return !res.Crashed() && ContainsSecret(res.Output)
		},
	}
}

// HeartbleedShort returns the pure-uninitialized-read variant: the
// claimed length stays within the record buffer, so no overread occurs
// (the paper's l < 34K regime).
func HeartbleedShort() *Case {
	c := Heartbleed()
	c.Name = "heartbleed-short"
	c.Types = patch.TypeUninitRead
	c.Attack = heartbeat(1200, []byte("EVIL"))
	return c
}

// heartbeat builds a heartbeat request claiming plen payload bytes.
func heartbeat(plen uint16, payload []byte) []byte {
	req := []byte{0x18}
	req = binary.LittleEndian.AppendUint16(req, plen)
	return append(req, payload...)
}

// BC models the BugBench bc-1.06 heap overflow: the parser stores
// array elements with no bounds check, so extra input overwrites
// adjacent heap data (here, a privilege flag).
func BC() *Case {
	p := prog.MustLink(&prog.Program{
		Name: "bc",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Call{Callee: "parse_numbers"},
			}},
			"parse_numbers": {Body: []prog.Stmt{
				// 16 slots of 8 bytes.
				prog.Alloc{Dst: "arr", Size: prog.C(128)},
				// Adjacent allocation: corruption target.
				prog.Alloc{Dst: "flag", Size: prog.C(16)},
				prog.Store{Base: prog.V("flag"), Src: prog.C(0)},
				prog.Assign{Dst: "i", E: prog.C(0)},
				prog.Assign{Dst: "n", E: prog.InputLen{}},
				prog.While{Cond: prog.Lt(prog.V("i"), prog.V("n")), Body: []prog.Stmt{
					prog.ReadInput{Dst: "b", N: prog.C(1)},
					// The bug: i is never checked against capacity.
					prog.Store{
						Base: prog.V("arr"),
						Off:  prog.Mul(prog.V("i"), prog.C(8)),
						Src:  prog.V("b"), N: prog.C(8),
					},
					prog.Assign{Dst: "i", E: prog.Add(prog.V("i"), prog.C(1))},
				}},
				prog.Load{Dst: "f", Base: prog.V("flag"), N: prog.C(8)},
				prog.If{Cond: prog.Ne(prog.V("f"), prog.C(0)), Then: []prog.Stmt{
					prog.OutputVar{Src: "f"}, // corrupted: attacker value escaped
				}, Else: []prog.Stmt{
					prog.Assign{Dst: "ok", E: prog.C(0)},
					prog.OutputVar{Src: "ok"},
				}},
			}},
		},
	})
	attack := make([]byte, 20) // 20 entries: writes through the neighbor
	for i := range attack {
		attack[i] = 0x41
	}
	return &Case{
		Name:    "bc",
		Ref:     "BugBench bc-1.06",
		Types:   patch.TypeOverflow,
		Program: p,
		Benign:  [][]byte{{1, 2, 3}, make([]byte, 16)},
		Attack:  attack,
		Success: func(res *prog.Result) bool {
			if res.Crashed() || len(res.Output) != 8 {
				return false
			}
			return (prog.Value{Bytes: res.Output}).Uint() != 0
		},
	}
}

// GhostXPS models CVE-2017-9740: glyph entries whose initialization is
// skipped for crafted flag bytes are rendered (output) anyway, leaking
// recycled heap memory.
func GhostXPS() *Case {
	p := prog.MustLink(&prog.Program{
		Name: "ghostxps",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Call{Callee: "stale_document"},
				prog.Call{Callee: "render_glyphs"},
			}},
			"stale_document": {Body: []prog.Stmt{
				// Earlier document processing leaves secrets in a block
				// the glyph table will recycle.
				prog.Alloc{Dst: "doc", Size: prog.C(128)},
				prog.StoreBytes{Base: prog.V("doc"), Off: prog.C(8), Data: []byte(Secret)},
				prog.FreeStmt{Ptr: prog.V("doc")},
			}},
			"render_glyphs": {Body: []prog.Stmt{
				prog.Alloc{Dst: "glyphs", Size: prog.C(128)}, // 16 entries x 8
				prog.Assign{Dst: "i", E: prog.C(0)},
				prog.While{Cond: prog.Lt(prog.V("i"), prog.C(16)), Body: []prog.Stmt{
					prog.ReadInput{Dst: "flag", N: prog.C(1)},
					// The bug: entries with flag 0 are never initialized
					// but rendered below regardless.
					prog.If{Cond: prog.Ne(prog.Bin{Op: prog.OpAnd, A: prog.V("flag"), B: prog.C(0xFF)}, prog.C(0)), Then: []prog.Stmt{
						prog.Store{
							Base: prog.V("glyphs"),
							Off:  prog.Mul(prog.V("i"), prog.C(8)),
							Src:  prog.C(0x676C797068), N: prog.C(8),
						},
					}},
					prog.Assign{Dst: "i", E: prog.Add(prog.V("i"), prog.C(1))},
				}},
				prog.Output{Base: prog.V("glyphs"), N: prog.C(128)},
			}},
		},
	})
	ones := bytes16(1)
	return &Case{
		Name:    "ghostxps",
		Ref:     "CVE-2017-9740",
		Types:   patch.TypeUninitRead,
		Program: p,
		Benign:  [][]byte{ones},
		Attack:  bytes16(0), // skip all initialization
		Success: func(res *prog.Result) bool {
			return !res.Crashed() && ContainsSecret(res.Output)
		},
	}
}

func bytes16(b byte) []byte {
	out := make([]byte, 16)
	for i := range out {
		out[i] = b
	}
	return out
}

// OptiPNG models CVE-2015-7801: an error path frees the callback
// table but the pointer stays live; attacker-controlled data recycled
// into the same block redirects the later "indirect call".
func OptiPNG() *Case {
	const goodHandler = 0x600D
	p := prog.MustLink(&prog.Program{
		Name: "optipng",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Call{Callee: "process_png"},
			}},
			"process_png": {Body: []prog.Stmt{
				prog.Alloc{Dst: "cb", Size: prog.C(64)},
				prog.Store{Base: prog.V("cb"), Src: prog.C(goodHandler)},
				prog.ReadInput{Dst: "magic", N: prog.C(1)},
				// The bug: the malformed-palette path frees cb but the
				// pointer is used below regardless.
				prog.If{Cond: prog.Eq(prog.Bin{Op: prog.OpAnd, A: prog.V("magic"), B: prog.C(0xFF)}, prog.C(0xFF)), Then: []prog.Stmt{
					prog.FreeStmt{Ptr: prog.V("cb")},
				}},
				// Attacker-controlled "comment" allocation grooms the
				// freed block.
				prog.Alloc{Dst: "comment", Size: prog.C(64)},
				prog.ReadInput{Dst: "cdata", N: prog.C(8)},
				prog.StoreVar{Base: prog.V("comment"), Src: "cdata"},
				// Victim dereferences the dangling pointer.
				prog.Load{Dst: "handler", Base: prog.V("cb"), N: prog.C(8)},
				prog.OutputVar{Src: "handler"},
			}},
		},
	})
	evil := []byte{0x0D, 0xF0, 0xAD, 0xDE, 0, 0, 0, 0} // 0xDEADF00D
	return &Case{
		Name:    "optipng",
		Ref:     "CVE-2015-7801",
		Types:   patch.TypeUseAfterFree,
		Program: p,
		Benign:  [][]byte{append([]byte{0x00}, evil...)},
		Attack:  append([]byte{0xFF}, evil...),
		Success: func(res *prog.Result) bool {
			if res.Crashed() || len(res.Output) != 8 {
				return false
			}
			return (prog.Value{Bytes: res.Output}).Uint() == 0xDEADF00D
		},
	}
}

// Tiff models CVE-2017-9935 (t2p_write_pdf heap overflow): tile data
// of attacker-controlled length is copied into a fixed PDF buffer,
// overwriting adjacent metadata.
func Tiff() *Case {
	marker := []byte("METAOK__")
	p := prog.MustLink(&prog.Program{
		Name: "tiff",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Call{Callee: "read_tiff"},
			}},
			"read_tiff": {Body: []prog.Stmt{
				prog.Call{Callee: "t2p_write_pdf"},
			}},
			"t2p_write_pdf": {Body: []prog.Stmt{
				prog.Alloc{Dst: "pdfbuf", Size: prog.C(256)},
				prog.Alloc{Dst: "meta", Size: prog.C(32)},
				prog.StoreBytes{Base: prog.V("meta"), Data: marker},
				prog.ReadInput{Dst: "tile", N: prog.InputRemaining{}},
				// The bug: tile length is never validated against the
				// 256-byte PDF buffer.
				prog.StoreVar{Base: prog.V("pdfbuf"), Src: "tile"},
				prog.Output{Base: prog.V("meta"), N: prog.C(8)},
			}},
		},
	})
	attack := make([]byte, 280)
	for i := range attack {
		attack[i] = 0xCC
	}
	return &Case{
		Name:    "tiff",
		Ref:     "CVE-2017-9935",
		Types:   patch.TypeOverflow,
		Program: p,
		Benign:  [][]byte{[]byte("small tile"), make([]byte, 256)},
		Attack:  attack,
		Success: func(res *prog.Result) bool {
			if res.Crashed() {
				return false
			}
			return string(res.Output) != string(marker)
		},
	}
}

// WavPack models CVE-2018-7253: a malformed chunk frees the header
// buffer, a later legitimate allocation reuses the block, and a stale
// write through the dangling pointer corrupts the new owner.
func WavPack() *Case {
	token := []byte("AUTH-TOKEN-GOOD!")
	p := prog.MustLink(&prog.Program{
		Name: "wavpack",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Call{Callee: "decode"},
			}},
			"decode": {Body: []prog.Stmt{
				prog.Alloc{Dst: "hdr", Size: prog.C(48)},
				prog.ReadInput{Dst: "tag", N: prog.C(1)},
				prog.If{Cond: prog.Eq(prog.Bin{Op: prog.OpAnd, A: prog.V("tag"), B: prog.C(0xFF)}, prog.C(0xBD)), Then: []prog.Stmt{
					prog.FreeStmt{Ptr: prog.V("hdr")}, // malformed chunk path
				}},
				// New owner of the (possibly recycled) block.
				prog.Alloc{Dst: "session", Size: prog.C(48)},
				prog.StoreBytes{Base: prog.V("session"), Data: token},
				// The bug: stale pointer write.
				prog.ReadInput{Dst: "inject", N: prog.C(16)},
				prog.StoreVar{Base: prog.V("hdr"), Src: "inject"},
				prog.Output{Base: prog.V("session"), N: prog.C(16)},
			}},
		},
	})
	inject := []byte("AUTH-TOKEN-EVIL!")
	return &Case{
		Name:    "wavpack",
		Ref:     "CVE-2018-7253",
		Types:   patch.TypeUseAfterFree,
		Program: p,
		Benign:  [][]byte{append([]byte{0x00}, inject...)},
		Attack:  append([]byte{0xBD}, inject...),
		Success: func(res *prog.Result) bool {
			if res.Crashed() {
				return false
			}
			return string(res.Output) == string(inject)
		},
	}
}

// LibMing models CVE-2018-7877: the frame count trusted from the SWF
// header exceeds the fixed frame table, overflowing into adjacent
// control data. The table is calloc'd, exercising a second allocation
// API in the corpus.
func LibMing() *Case {
	p := prog.MustLink(&prog.Program{
		Name: "libming",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Call{Callee: "parse_swf"},
			}},
			"parse_swf": {Body: []prog.Stmt{
				prog.ReadInput{Dst: "nframes", N: prog.C(1)},
				prog.Assign{Dst: "n", E: prog.Bin{Op: prog.OpAnd, A: prog.V("nframes"), B: prog.C(0xFF)}},
				prog.Alloc{Dst: "frames", Fn: heapsim.FnCalloc, Size: prog.C(4), N: prog.C(8)},
				prog.Alloc{Dst: "auth", Size: prog.C(16)},
				prog.Store{Base: prog.V("auth"), Src: prog.C(0)},
				prog.Assign{Dst: "i", E: prog.C(0)},
				prog.While{Cond: prog.Lt(prog.V("i"), prog.V("n")), Body: []prog.Stmt{
					prog.ReadInput{Dst: "fb", N: prog.C(1)},
					prog.Store{
						Base: prog.V("frames"),
						Off:  prog.Mul(prog.V("i"), prog.C(4)),
						Src:  prog.V("fb"), N: prog.C(4),
					},
					prog.Assign{Dst: "i", E: prog.Add(prog.V("i"), prog.C(1))},
				}},
				prog.Load{Dst: "a", Base: prog.V("auth"), N: prog.C(8)},
				prog.OutputVar{Src: "a"},
			}},
		},
	})
	attack := append([]byte{14}, bytes16(0x77)[:14]...)
	return &Case{
		Name:    "libming",
		Ref:     "CVE-2018-7877",
		Types:   patch.TypeOverflow,
		Program: p,
		Benign:  [][]byte{append([]byte{4}, 1, 2, 3, 4)},
		Attack:  attack,
		Success: func(res *prog.Result) bool {
			if res.Crashed() || len(res.Output) != 8 {
				return false
			}
			return (prog.Value{Bytes: res.Output}).Uint() != 0
		},
	}
}
