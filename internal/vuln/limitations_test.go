package vuln

import (
	"bytes"
	"testing"

	"heaptherapy/internal/core"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

// This file encodes Section IX's stated limitations as executable
// facts: each test constructs an attack the paper says HeapTherapy+
// cannot handle and verifies the reproduction behaves the same way.
// If an implementation change ever starts "fixing" one of these, the
// test fails — the reproduction would have silently diverged from the
// system being reproduced.

// TestLimitationDiscreteWriteOverflow: "it can only handle the
// overflow caused by continuous writes or reads ... overflows due to
// discrete writes cannot be handled." A single store far past the
// buffer skips both the red zone (offline) and the guard page
// (online).
func TestLimitationDiscreteWriteOverflow(t *testing.T) {
	p := prog.MustLink(&prog.Program{
		Name: "discrete-write",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Alloc{Dst: "buf", Size: prog.C(64)},
				prog.Alloc{Dst: "big", Size: prog.C(64 * 1024)}, // distant victim
				prog.Alloc{Dst: "flag", Size: prog.C(16)},
				prog.Store{Base: prog.V("flag"), Src: prog.C(0)},
				prog.ReadInput{Dst: "off", N: prog.C(4)},
				// The bug: an attacker-controlled index used directly —
				// one discrete write at buf[off], no contiguous sweep.
				prog.Store{
					Base: prog.V("buf"),
					Off:  prog.Bin{Op: prog.OpAnd, A: prog.V("off"), B: prog.C(0xFFFFF)},
					Src:  prog.C(0x41), N: prog.C(8),
				},
				prog.Load{Dst: "f", Base: prog.V("flag"), N: prog.C(8)},
				prog.OutputVar{Src: "f"},
			}},
		},
	})
	sys, err := core.NewSystem(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Compute the exact offset of flag from buf natively: buf's chunk
	// is 80 bytes (64+8 rounded), big's is 64K+..., flag payload after.
	// Rather than hardcoding, probe: find an offset that corrupts flag.
	var attack []byte
	for off := uint64(64*1024 + 64); off < 64*1024+512; off += 8 {
		in := []byte{byte(off), byte(off >> 8), byte(off >> 16), 0}
		res, err := sys.RunNative(in)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Crashed() && len(res.Output) == 8 && res.Output[0] != 0 {
			attack = in
			break
		}
	}
	if attack == nil {
		t.Skip("could not find a corrupting discrete offset under this layout")
	}

	// Offline analysis: the discrete write lands outside buf's red zone
	// in untracked-or-other territory; no patch can attribute it to buf.
	rep, err := sys.GeneratePatches(attack)
	if err != nil {
		t.Fatal(err)
	}
	for _, pp := range rep.Patches.Patches() {
		t.Logf("analysis produced %v (attribution may hit the victim chunk, never buf's guard)", pp)
	}

	// Even patching EVERY context with overflow does not stop the
	// discrete write: it jumps clean over any guard page.
	patches, _, err := sys.HandleAttacks([][]byte{attack})
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.RunDefended(attack, patches)
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.Crashed() {
		t.Skip("layout shifted the discrete write onto a fault; limitation not exercised")
	}
	// The limitation: no deterministic protection for discrete writes.
	// (The write may or may not corrupt the same victim under the
	// defended layout; the point is that nothing stopped it.)
	t.Logf("defended discrete write completed uninterrupted (output %x), as Section IX concedes", run.Result.Output)
}

// TestLimitationStructInternalArray: "if an overflow runs over an
// array which is an internal field of a structure, HeapTherapy+
// cannot detect it" — the write stays inside one allocation, where no
// red zone or guard page exists.
func TestLimitationStructInternalArray(t *testing.T) {
	// struct conn { char name[16]; u64 is_admin; } — one allocation.
	p := prog.MustLink(&prog.Program{
		Name: "intra-struct",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Alloc{Dst: "conn", Size: prog.C(24)},
				prog.Store{Base: prog.V("conn"), Off: prog.C(16), Src: prog.C(0)}, // is_admin = 0
				prog.ReadInput{Dst: "name", N: prog.InputRemaining{}},
				// The bug: strcpy(conn->name, input) with no bound.
				prog.StoreVar{Base: prog.V("conn"), Src: "name"},
				prog.Load{Dst: "admin", Base: prog.V("conn"), Off: prog.C(16), N: prog.C(8)},
				prog.OutputVar{Src: "admin"},
			}},
		},
	})
	sys, err := core.NewSystem(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	attack := bytes.Repeat([]byte{0xFF}, 24) // overruns name into is_admin

	// Natively the attack works.
	res, err := sys.RunNative(attack)
	if err != nil {
		t.Fatal(err)
	}
	if (prog.Value{Bytes: res.Output}).Uint() == 0 {
		t.Fatal("intra-struct overflow did not corrupt the flag natively")
	}

	// Offline analysis sees nothing: the write is fully in-bounds at
	// allocation granularity. This is the shared limitation of
	// allocation-granularity tools (AddressSanitizer included).
	rep, err := sys.GeneratePatches(attack)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Patches.Len() != 0 {
		t.Errorf("analysis generated patches for an intra-allocation overflow: %v", rep.Patches.Patches())
	}

	// And the defense cannot stop it either, even with a guard on the
	// allocation.
	run, err := sys.RunDefended(attack, allOverflowPatches(t, sys, attack))
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.Crashed() {
		t.Error("defense faulted an in-bounds write")
	}
	if (prog.Value{Bytes: run.Result.Output}).Uint() == 0 {
		t.Error("intra-struct overflow unexpectedly stopped; limitation no longer reproduced")
	}
}

// allOverflowPatches returns whatever patches analysis yields for the
// input (possibly none) — the strongest deployment analysis offers.
func allOverflowPatches(t *testing.T, sys *core.System, input []byte) *patch.Set {
	t.Helper()
	rep, err := sys.GeneratePatches(input)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Patches
}

// TestLimitationCustomPoolAllocator: "a common challenge for heap
// security tools that work via interception of allocation calls is to
// make them work with custom allocators." A program that carves
// sub-buffers out of one big malloc'd pool hides its object boundaries
// from the interposition layer entirely.
func TestLimitationCustomPoolAllocator(t *testing.T) {
	p := prog.MustLink(&prog.Program{
		Name: "custom-pool",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				// One visible allocation: the pool.
				prog.Alloc{Dst: "pool", Size: prog.C(4096)},
				// pool_alloc(64) twice: adjacent sub-buffers.
				prog.Assign{Dst: "obj", E: prog.V("pool")},
				prog.Assign{Dst: "secretbuf", E: prog.Add(prog.V("pool"), prog.C(64))},
				prog.StoreBytes{Base: prog.V("secretbuf"), Data: []byte(Secret)},
				prog.ReadInput{Dst: "n", N: prog.C(2)},
				// Overflow of obj inside the pool.
				prog.Output{Base: prog.V("obj"), N: prog.Bin{Op: prog.OpAnd, A: prog.V("n"), B: prog.C(0xFFF)}},
			}},
		},
	})
	sys, err := core.NewSystem(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	attack := []byte{200, 0} // read 200 bytes from a 64-byte sub-buffer

	res, err := sys.RunNative(attack)
	if err != nil {
		t.Fatal(err)
	}
	if !ContainsSecret(res.Output) {
		t.Fatal("pool overread did not leak natively")
	}

	// The overread never crosses the POOL's boundary, so neither the
	// analyzer's red zones nor a guard page can see the sub-buffer
	// violation: no OVERFLOW patch is possible. (The analyzer may still
	// flag the pool's uninitialized bytes reaching the output — that is
	// a genuine, separate finding — but zero-filling cannot remove a
	// secret the program itself wrote into the pool.)
	rep, err := sys.GeneratePatches(attack)
	if err != nil {
		t.Fatal(err)
	}
	for _, pp := range rep.Patches.Patches() {
		if pp.Types.Has(patch.TypeOverflow) {
			t.Errorf("analysis attributed an intra-pool OVERFLOW: %v", pp)
		}
	}
	run, err := sys.RunDefended(attack, rep.Patches)
	if err != nil {
		t.Fatal(err)
	}
	if !ContainsSecret(run.Result.Output) {
		t.Error("intra-pool overread unexpectedly stopped; limitation no longer reproduced")
	}
}
