package vuln

import (
	"math/rand"
	"testing"

	"heaptherapy/internal/core"
)

// TestRandomInputsNeverBreakTheRuntime throws random inputs at every
// corpus program, natively and defended: the interpreter and defense
// layers must never report an internal error. Program crashes
// (Result.Fault) are fine — that is a program outcome, not a runtime
// bug — but errors are not.
func TestRandomInputsNeverBreakTheRuntime(t *testing.T) {
	rng := rand.New(rand.NewSource(0xF0CC))
	for _, c := range AllCases() {
		sys, err := core.NewSystem(c.Program, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		// Patches generated from the case's own attack are the most
		// interesting defended configuration for fuzzing.
		rep, err := sys.GeneratePatches(c.Attack)
		if err != nil {
			t.Fatalf("%s: analyze: %v", c.Name, err)
		}
		for trial := 0; trial < 12; trial++ {
			n := rng.Intn(64)
			input := make([]byte, n)
			if _, err := rng.Read(input); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.RunNative(input); err != nil {
				t.Errorf("%s: native run on %x: internal error %v", c.Name, input, err)
			}
			if _, err := sys.RunDefended(input, rep.Patches); err != nil {
				t.Errorf("%s: defended run on %x: internal error %v", c.Name, input, err)
			}
		}
	}
}

// TestRandomInputsUnderAnalysis fuzzes the shadow analyzer the same
// way: random inputs may raise warnings or crash the replay, but the
// analyzer itself must not error, and no warning may lack a type.
func TestRandomInputsUnderAnalysis(t *testing.T) {
	rng := rand.New(rand.NewSource(0xA11A))
	for _, c := range Named() {
		sys, err := core.NewSystem(c.Program, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 6; trial++ {
			n := rng.Intn(48)
			input := make([]byte, n)
			if _, err := rng.Read(input); err != nil {
				t.Fatal(err)
			}
			rep, err := sys.GeneratePatches(input)
			if err != nil {
				t.Errorf("%s: analyzer internal error on %x: %v", c.Name, input, err)
				continue
			}
			for _, w := range rep.Warnings {
				if w.Type == 0 {
					t.Errorf("%s: typeless warning: %v", c.Name, w)
				}
			}
		}
	}
}
