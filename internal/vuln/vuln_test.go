package vuln

import (
	"bytes"
	"testing"

	"heaptherapy/internal/core"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/patch"
)

// TestTableII runs the paper's effectiveness evaluation over the whole
// corpus: for every program, (1) benign inputs work natively, (2) the
// attack succeeds natively, (3) the Offline Patch Generator detects
// the right vulnerability type(s) and emits patches, (4) the patched
// Online Defense defeats the attack, and (5) benign behaviour is
// unchanged under the defense.
func TestTableII(t *testing.T) {
	for _, c := range AllCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			sys, err := core.NewSystem(c.Program, core.Options{})
			if err != nil {
				t.Fatalf("NewSystem: %v", err)
			}

			// (1) Benign inputs behave natively.
			benignOut := make([][]byte, len(c.Benign))
			for i, in := range c.Benign {
				res, err := sys.RunNative(in)
				if err != nil {
					t.Fatalf("benign native run: %v", err)
				}
				if res.Crashed() {
					t.Fatalf("benign input %d crashed natively: %v", i, res.Fault)
				}
				if c.Success(res) {
					t.Fatalf("benign input %d triggers the attack oracle", i)
				}
				benignOut[i] = res.Output
			}

			// (2) The attack succeeds on the undefended program.
			res, err := sys.RunNative(c.Attack)
			if err != nil {
				t.Fatalf("attack native run: %v", err)
			}
			if !c.Success(res) {
				t.Fatalf("attack does not succeed natively (crashed=%v output=%q)", res.Crashed(), res.Output)
			}

			// (3) Offline analysis generates patches of the right types.
			rep, err := sys.GeneratePatches(c.Attack)
			if err != nil {
				t.Fatalf("GeneratePatches: %v", err)
			}
			if rep.Patches.Len() == 0 {
				t.Fatalf("no patches generated; warnings: %v", rep.Warnings)
			}
			var union patch.TypeMask
			for _, p := range rep.Patches.Patches() {
				union |= p.Types
			}
			if !union.Has(c.Types) {
				t.Errorf("patch types %v do not cover expected %v", union, c.Types)
			}

			// (4) The defended program defeats the attack.
			dres, err := sys.RunDefended(c.Attack, rep.Patches)
			if err != nil {
				t.Fatalf("defended attack run: %v", err)
			}
			if c.Success(dres.Result) {
				t.Errorf("attack still succeeds under defense (output %q)", dres.Result.Output)
			}
			if dres.Stats.PatchedAllocs == 0 {
				t.Errorf("defense recognized no vulnerable allocations; CCIDs mismatched?")
			}
			if dres.HeapErr != nil {
				t.Errorf("underlying heap corrupted despite contained attack: %v", dres.HeapErr)
			}

			// (5) Benign behaviour is preserved under the defense.
			for i, in := range c.Benign {
				bres, err := sys.RunDefended(in, rep.Patches)
				if err != nil {
					t.Fatalf("benign defended run: %v", err)
				}
				if bres.Result.Crashed() {
					t.Fatalf("benign input %d crashed under defense: %v", i, bres.Result.Fault)
				}
				if !bytes.Equal(bres.Result.Output, benignOut[i]) {
					t.Errorf("benign input %d output changed under defense:\n  native:   %q\n  defended: %q",
						i, benignOut[i], bres.Result.Output)
				}
				if bres.HeapErr != nil {
					t.Errorf("benign input %d corrupted the defended heap: %v", i, bres.HeapErr)
				}
			}
		})
	}
}

// TestCorpusSize pins the Table II shape: 7 named programs plus 23
// SAMATE-style cases.
func TestCorpusSize(t *testing.T) {
	if got := len(Named()); got != 7 {
		t.Errorf("named cases = %d, want 7", got)
	}
	if got := len(SamateCases()); got != 23 {
		t.Errorf("SAMATE cases = %d, want 23", got)
	}
	if got := len(AllCases()); got != 30 {
		t.Errorf("total cases = %d, want 30", got)
	}
	names := make(map[string]bool)
	for _, c := range AllCases() {
		if names[c.Name] {
			t.Errorf("duplicate case name %q", c.Name)
		}
		names[c.Name] = true
		if c.Program == nil || c.Attack == nil || len(c.Benign) == 0 || c.Success == nil {
			t.Errorf("case %q is incomplete", c.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if c := ByName("heartbleed"); c == nil || c.Ref != "CVE-2014-0160" {
		t.Error("ByName(heartbleed) failed")
	}
	if ByName("no-such-case") != nil {
		t.Error("ByName of unknown case non-nil")
	}
}

// TestHeartbleedShortVariant checks the paper's l < record-size regime:
// a pure uninitialized read with no overread.
func TestHeartbleedShortVariant(t *testing.T) {
	c := HeartbleedShort()
	sys, err := core.NewSystem(c.Program, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunNative(c.Attack)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Success(res) {
		t.Fatal("short heartbleed attack does not leak natively")
	}
	rep, err := sys.GeneratePatches(c.Attack)
	if err != nil {
		t.Fatal(err)
	}
	var union patch.TypeMask
	for _, p := range rep.Patches.Patches() {
		union |= p.Types
	}
	if !union.Has(patch.TypeUninitRead) {
		t.Errorf("short variant types = %v, want UNINIT_READ", union)
	}
	if union.Has(patch.TypeOverflow) {
		t.Errorf("short variant reported overflow; l < record size must not overread")
	}
	// Defended: the response must contain only zeros where the leak was.
	dres, err := sys.RunDefended(c.Attack, rep.Patches)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Result.Crashed() {
		t.Fatalf("short variant crashed under defense: %v", dres.Result.Fault)
	}
	out := dres.Result.Output
	if len(out) < 100 {
		t.Fatalf("defended output too short: %d bytes", len(out))
	}
	// Skip the 3-byte header and the 4 echoed payload bytes.
	for i := 7; i < len(out); i++ {
		if out[i] != 0 {
			t.Fatalf("defended leak byte %d = %#x; want zero-filled", i, out[i])
		}
	}
}

// TestTableIIAcrossSchemes runs the flagship case under every planner
// and encoder combination: patches generated under one instrumentation
// must match online under the same instrumentation, regardless of the
// scheme chosen.
func TestTableIIAcrossSchemes(t *testing.T) {
	for _, scheme := range encoding.AllSchemes() {
		for _, kind := range encoding.AllEncoders() {
			c := Heartbleed()
			sys, err := core.NewSystem(c.Program, core.Options{Scheme: scheme, Encoder: kind})
			if err != nil {
				t.Fatalf("%v/%v: %v", scheme, kind, err)
			}
			rep, err := sys.GeneratePatches(c.Attack)
			if err != nil {
				t.Fatalf("%v/%v: analyze: %v", scheme, kind, err)
			}
			if rep.Patches.Len() == 0 {
				t.Fatalf("%v/%v: no patches", scheme, kind)
			}
			dres, err := sys.RunDefended(c.Attack, rep.Patches)
			if err != nil {
				t.Fatalf("%v/%v: defended run: %v", scheme, kind, err)
			}
			if c.Success(dres.Result) {
				t.Errorf("%v/%v: attack succeeds under defense", scheme, kind)
			}
			if dres.Stats.PatchedAllocs == 0 {
				t.Errorf("%v/%v: offline CCID did not match online allocation", scheme, kind)
			}
		}
	}
}
