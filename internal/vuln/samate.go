package vuln

import (
	"fmt"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

// SamateCases builds the 23-program synthetic suite standing in for
// NIST's SAMATE dataset (Table II's last row: "23 heap bugs"). The
// cases cover the three vulnerability classes across allocation APIs
// (malloc, calloc, memalign, realloc), call depths, and read/write
// variants, so the pipeline's patch keys exercise every {FUN, CCID}
// shape the online defense must match.
func SamateCases() []*Case {
	var cases []*Case

	// Overflow writes: 6 cases over {malloc, calloc, memalign} x depth.
	for _, fn := range []heapsim.AllocFn{heapsim.FnMalloc, heapsim.FnCalloc, heapsim.FnMemalign} {
		for _, depth := range []int{1, 2} {
			cases = append(cases, overflowWriteCase(fn, depth))
		}
	}
	// Overflow reads: 4 cases over {malloc, memalign} x depth.
	for _, fn := range []heapsim.AllocFn{heapsim.FnMalloc, heapsim.FnMemalign} {
		for _, depth := range []int{1, 2} {
			cases = append(cases, overflowReadCase(fn, depth))
		}
	}
	// Use-after-free reads: 4 cases over {malloc, calloc} x depth.
	for _, fn := range []heapsim.AllocFn{heapsim.FnMalloc, heapsim.FnCalloc} {
		for _, depth := range []int{1, 2} {
			cases = append(cases, uafReadCase(fn, depth))
		}
	}
	// Use-after-free writes: 3 cases.
	for _, depth := range []int{1, 2, 3} {
		cases = append(cases, uafWriteCase(depth))
	}
	// Uninitialized reads: 6 cases over {malloc, memalign, realloc} x depth.
	for _, kind := range []string{"malloc", "memalign", "realloc"} {
		for _, depth := range []int{1, 2} {
			cases = append(cases, uninitReadCase(kind, depth))
		}
	}
	return cases
}

// wrapDepth nests body inside `depth` intermediate functions, giving
// each case a distinct calling-context shape.
func wrapDepth(funcs map[string]*prog.Func, depth int, body []prog.Stmt) {
	funcs["main"] = &prog.Func{Body: []prog.Stmt{prog.Call{Callee: "level1"}}}
	for i := 1; i < depth; i++ {
		funcs[fmt.Sprintf("level%d", i)] = &prog.Func{
			Body: []prog.Stmt{prog.Call{Callee: fmt.Sprintf("level%d", i+1)}},
		}
	}
	funcs[fmt.Sprintf("level%d", depth)] = &prog.Func{Body: body}
}

// allocStmt builds an allocation of the requested API for size bytes.
func allocStmt(dst string, fn heapsim.AllocFn, size uint64) prog.Stmt {
	switch fn {
	case heapsim.FnCalloc:
		return prog.Alloc{Dst: dst, Fn: fn, Size: prog.C(8), N: prog.C(size / 8)}
	case heapsim.FnMemalign, heapsim.FnAlignedAlloc:
		return prog.Alloc{Dst: dst, Fn: fn, Size: prog.C(size), Align: prog.C(64)}
	default:
		return prog.Alloc{Dst: dst, Fn: fn, Size: prog.C(size)}
	}
}

// overflowWriteCase: input bytes are stored at 8-byte stride with no
// bounds check; the neighbor's first word is the corruption oracle.
func overflowWriteCase(fn heapsim.AllocFn, depth int) *Case {
	const bufSize = 64
	funcs := make(map[string]*prog.Func)
	wrapDepth(funcs, depth, []prog.Stmt{
		allocStmt("buf", fn, bufSize),
		// A large victim is always carved from the wilderness right
		// after buf's chunk, even when memalign splits off a free
		// prefix that a small allocation would land in instead.
		prog.Alloc{Dst: "victim", Size: prog.C(512)},
		prog.Store{Base: prog.V("victim"), Src: prog.C(0)},
		prog.Assign{Dst: "i", E: prog.C(0)},
		prog.Assign{Dst: "n", E: prog.InputLen{}},
		prog.While{Cond: prog.Lt(prog.V("i"), prog.V("n")), Body: []prog.Stmt{
			prog.ReadInput{Dst: "b", N: prog.C(1)},
			prog.Store{
				Base: prog.V("buf"),
				Off:  prog.Mul(prog.V("i"), prog.C(8)),
				Src:  prog.V("b"), N: prog.C(8),
			},
			prog.Assign{Dst: "i", E: prog.Add(prog.V("i"), prog.C(1))},
		}},
		prog.Load{Dst: "v", Base: prog.V("victim"), N: prog.C(8)},
		prog.OutputVar{Src: "v"},
	})
	p := prog.MustLink(&prog.Program{
		Name:  fmt.Sprintf("samate-ofw-%s-d%d", fn, depth),
		Funcs: funcs,
	})
	// Enough one-byte entries to stride across the neighbor's header
	// and metadata into its payload under every backend layout,
	// including the memalign prefix/tail remainders.
	attack := make([]byte, 40)
	for i := range attack {
		attack[i] = 0x61
	}
	return &Case{
		Name:    p.Name,
		Ref:     "SAMATE-style heap overflow (write)",
		Types:   patch.TypeOverflow,
		Program: p,
		Benign:  [][]byte{{7, 7, 7}, make([]byte, 8)},
		Attack:  attack,
		Success: func(res *prog.Result) bool {
			if res.Crashed() || len(res.Output) != 8 {
				return false
			}
			return (prog.Value{Bytes: res.Output}).Uint() != 0
		},
	}
}

// overflowReadCase: the attacker-supplied length drives an output of
// the buffer, overreading into the neighboring secret.
func overflowReadCase(fn heapsim.AllocFn, depth int) *Case {
	const bufSize = 64
	funcs := make(map[string]*prog.Func)
	wrapDepth(funcs, depth, []prog.Stmt{
		allocStmt("buf", fn, bufSize),
		prog.Alloc{Dst: "priv", Size: prog.C(64)},
		prog.StoreBytes{Base: prog.V("priv"), Data: []byte(Secret)},
		prog.Memset{Dst: prog.V("buf"), B: prog.C('A'), N: prog.C(bufSize)},
		prog.ReadInput{Dst: "len", N: prog.C(2)},
		prog.Output{Base: prog.V("buf"), N: prog.V("len")},
	})
	p := prog.MustLink(&prog.Program{
		Name:  fmt.Sprintf("samate-ofr-%s-d%d", fn, depth),
		Funcs: funcs,
	})
	return &Case{
		Name:    p.Name,
		Ref:     "SAMATE-style heap overflow (read)",
		Types:   patch.TypeOverflow,
		Program: p,
		Benign:  [][]byte{{bufSize, 0}, {16, 0}},
		Attack:  []byte{0, 1}, // 256 bytes: reads across the neighbor
		Success: func(res *prog.Result) bool {
			return !res.Crashed() && ContainsSecret(res.Output)
		},
	}
}

// uafReadCase: an error path frees the handler table; a groom
// allocation recycles the block; the stale read leaks attacker data.
func uafReadCase(fn heapsim.AllocFn, depth int) *Case {
	const goodHandler = 0x0600D
	funcs := make(map[string]*prog.Func)
	wrapDepth(funcs, depth, []prog.Stmt{
		allocStmt("obj", fn, 64),
		prog.Store{Base: prog.V("obj"), Src: prog.C(goodHandler)},
		prog.ReadInput{Dst: "trigger", N: prog.C(1)},
		prog.If{Cond: prog.Eq(prog.Bin{Op: prog.OpAnd, A: prog.V("trigger"), B: prog.C(0xFF)}, prog.C(0xEE)), Then: []prog.Stmt{
			prog.FreeStmt{Ptr: prog.V("obj")},
		}},
		prog.Alloc{Dst: "groom", Size: prog.C(64)},
		prog.ReadInput{Dst: "payload", N: prog.C(8)},
		prog.StoreVar{Base: prog.V("groom"), Src: "payload"},
		prog.Load{Dst: "h", Base: prog.V("obj"), N: prog.C(8)},
		prog.OutputVar{Src: "h"},
	})
	p := prog.MustLink(&prog.Program{
		Name:  fmt.Sprintf("samate-uafr-%s-d%d", fn, depth),
		Funcs: funcs,
	})
	evil := []byte{0xBE, 0xBA, 0xFE, 0xCA, 0, 0, 0, 0}
	// The groom allocation reuses the freed block only when the
	// underlying request sizes match; calloc objects are 64 bytes too.
	return &Case{
		Name:    p.Name,
		Ref:     "SAMATE-style use after free (read)",
		Types:   patch.TypeUseAfterFree,
		Program: p,
		Benign:  [][]byte{append([]byte{0x00}, evil...)},
		Attack:  append([]byte{0xEE}, evil...),
		Success: func(res *prog.Result) bool {
			if res.Crashed() || len(res.Output) != 8 {
				return false
			}
			return (prog.Value{Bytes: res.Output}).Uint() == 0xCAFEBABE
		},
	}
}

// uafWriteCase: the dangling pointer is written after the block has a
// new owner, corrupting the owner's data.
func uafWriteCase(depth int) *Case {
	token := []byte("token-GOOD")
	funcs := make(map[string]*prog.Func)
	wrapDepth(funcs, depth, []prog.Stmt{
		prog.Alloc{Dst: "stale", Size: prog.C(80)},
		prog.ReadInput{Dst: "trigger", N: prog.C(1)},
		prog.If{Cond: prog.Eq(prog.Bin{Op: prog.OpAnd, A: prog.V("trigger"), B: prog.C(0xFF)}, prog.C(0xEE)), Then: []prog.Stmt{
			prog.FreeStmt{Ptr: prog.V("stale")},
		}},
		prog.Alloc{Dst: "owner", Size: prog.C(80)},
		prog.StoreBytes{Base: prog.V("owner"), Data: token},
		prog.ReadInput{Dst: "inject", N: prog.C(10)},
		prog.StoreVar{Base: prog.V("stale"), Src: "inject"},
		prog.Output{Base: prog.V("owner"), N: prog.C(10)},
	})
	p := prog.MustLink(&prog.Program{
		Name:  fmt.Sprintf("samate-uafw-d%d", depth),
		Funcs: funcs,
	})
	inject := []byte("token-EVIL")
	return &Case{
		Name:    p.Name,
		Ref:     "SAMATE-style use after free (write)",
		Types:   patch.TypeUseAfterFree,
		Program: p,
		Benign:  [][]byte{append([]byte{0x00}, inject...)},
		Attack:  append([]byte{0xEE}, inject...),
		Success: func(res *prog.Result) bool {
			return !res.Crashed() && string(res.Output) == string(inject)
		},
	}
}

// uninitReadCase: initialization is skipped for the attack input, and
// the recycled buffer contents reach the output.
func uninitReadCase(kind string, depth int) *Case {
	const size = 128
	var (
		alloc prog.Stmt
		fn    heapsim.AllocFn
	)
	body := []prog.Stmt{
		// Plant the secret in a block the vulnerable buffer recycles.
		prog.Alloc{Dst: "old", Size: prog.C(size)},
		prog.StoreBytes{Base: prog.V("old"), Off: prog.C(16), Data: []byte(Secret)},
		prog.FreeStmt{Ptr: prog.V("old")},
	}
	switch kind {
	case "memalign":
		fn = heapsim.FnMemalign
		alloc = allocStmt("buf", fn, size)
		// Recycle bait shaped like the memalign request.
		body = []prog.Stmt{
			allocStmt("old", fn, size),
			prog.StoreBytes{Base: prog.V("old"), Off: prog.C(16), Data: []byte(Secret)},
			prog.FreeStmt{Ptr: prog.V("old")},
		}
	case "realloc":
		fn = heapsim.FnRealloc
	default:
		fn = heapsim.FnMalloc
		alloc = allocStmt("buf", fn, size)
	}

	if kind == "realloc" {
		// buf starts small and fully initialized; the realloc'd tail is
		// not, and the move lands on the recycled secret block. The
		// bait is planted AFTER buf and its blocker so that buf's own
		// allocation cannot consume the freed secret block first.
		body = []prog.Stmt{
			prog.Alloc{Dst: "buf", Size: prog.C(32)},
			prog.Memset{Dst: prog.V("buf"), B: prog.C('B'), N: prog.C(32)},
			prog.Alloc{Dst: "blocker", Size: prog.C(16)}, // forces realloc to move
			prog.Alloc{Dst: "old", Size: prog.C(size)},
			prog.StoreBytes{Base: prog.V("old"), Off: prog.C(40), Data: []byte(Secret)},
			prog.FreeStmt{Ptr: prog.V("old")},
		}
		body = append(body,
			prog.ReadInput{Dst: "doinit", N: prog.C(1)},
			prog.ReallocStmt{Dst: "buf", Ptr: prog.V("buf"), Size: prog.C(size)},
			prog.If{Cond: prog.Ne(prog.Bin{Op: prog.OpAnd, A: prog.V("doinit"), B: prog.C(0xFF)}, prog.C(0)), Then: []prog.Stmt{
				prog.Memset{Dst: prog.V("buf"), B: prog.C('B'), N: prog.C(size)},
			}},
			prog.Output{Base: prog.V("buf"), N: prog.C(size)},
		)
	} else {
		body = append(body,
			alloc,
			prog.ReadInput{Dst: "doinit", N: prog.C(1)},
			prog.If{Cond: prog.Ne(prog.Bin{Op: prog.OpAnd, A: prog.V("doinit"), B: prog.C(0xFF)}, prog.C(0)), Then: []prog.Stmt{
				prog.Memset{Dst: prog.V("buf"), B: prog.C('I'), N: prog.C(size)},
			}},
			prog.Output{Base: prog.V("buf"), N: prog.C(size)},
		)
	}

	funcs := make(map[string]*prog.Func)
	wrapDepth(funcs, depth, body)
	p := prog.MustLink(&prog.Program{
		Name:  fmt.Sprintf("samate-ur-%s-d%d", kind, depth),
		Funcs: funcs,
	})
	return &Case{
		Name:    p.Name,
		Ref:     "SAMATE-style uninitialized read",
		Types:   patch.TypeUninitRead,
		Program: p,
		Benign:  [][]byte{{1}},
		Attack:  []byte{0},
		Success: func(res *prog.Result) bool {
			return !res.Crashed() && ContainsSecret(res.Output)
		},
	}
}
