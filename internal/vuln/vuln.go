// Package vuln is the vulnerable-program corpus used to evaluate
// HeapTherapy+'s effectiveness (Table II of the paper).
//
// The paper evaluates on real CVEs: Heartbleed (CVE-2014-0160), bc
// from BugBench, GhostXPS (CVE-2017-9740), optipng (CVE-2015-7801),
// LibTIFF (CVE-2017-9935), WavPack (CVE-2018-7253), libming
// (CVE-2018-7877), and NIST's SAMATE dataset (23 heap bugs). Those
// binaries cannot run on the simulated heap, so each corpus entry
// models the CVE's vulnerability class and exploit mechanics — the
// attacker-controlled length driving an overread, the dangling pointer
// over a recycled block, the skipped initialization leaking recycled
// memory — as a program for the interpreter. Attack success is defined
// observably (secret bytes in the output, corrupted adjacent state,
// hijacked "handler" values), so the same checker shows the attack
// working natively and defeated under the generated patches.
package vuln

import (
	"bytes"

	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

// Case is one vulnerable program with its inputs and attack oracle.
type Case struct {
	// Name identifies the case (program name in Table II).
	Name string
	// Ref is the modeled CVE or dataset reference.
	Ref string
	// Types is the vulnerability classes the offline analysis must
	// find for the attack input.
	Types patch.TypeMask
	// Program is the linked program.
	Program *prog.Program
	// Benign are inputs a legitimate client would send; defended
	// behaviour must match native behaviour on them.
	Benign [][]byte
	// Attack is the exploit input.
	Attack []byte
	// Success inspects an execution and reports whether the attack
	// achieved its goal (leaked the secret, corrupted state, hijacked
	// the handler). A crashed run is never a success: the attack was
	// stopped even if ungracefully.
	Success func(res *prog.Result) bool
}

// Secret is the sensitive string corpus programs plant in heap memory;
// attack oracles look for it in program output.
const Secret = "PRIVATE-KEY-0xD15EA5E-DO-NOT-LEAK"

// ContainsSecret reports whether the output leaks the planted secret.
func ContainsSecret(out []byte) bool {
	return bytes.Contains(out, []byte(Secret))
}

// AllCases returns the full corpus: the seven named programs of
// Table II plus the 23 SAMATE-style cases.
func AllCases() []*Case {
	cases := []*Case{
		Heartbleed(),
		BC(),
		GhostXPS(),
		OptiPNG(),
		Tiff(),
		WavPack(),
		LibMing(),
	}
	cases = append(cases, SamateCases()...)
	return cases
}

// Named returns only the seven named Table II programs.
func Named() []*Case {
	return []*Case{
		Heartbleed(), BC(), GhostXPS(), OptiPNG(), Tiff(), WavPack(), LibMing(),
	}
}

// ByName finds a case by name, or nil.
func ByName(name string) *Case {
	for _, c := range AllCases() {
		if c.Name == name {
			return c
		}
	}
	return nil
}
