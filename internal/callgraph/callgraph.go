// Package callgraph models program call graphs: nodes are functions and
// every edge is one call site (two distinct calls from A to B are two
// edges). The targeted calling-context encoding algorithms of the paper
// (Section IV) are reachability and branching analyses over this graph,
// implemented in package encoding.
package callgraph

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a function in a Graph.
type NodeID int

// SiteID identifies a call site (an edge) in a Graph.
type SiteID int

// InvalidNode is returned by lookups that fail.
const InvalidNode NodeID = -1

// Edge is a call site: a single static call from one function to
// another.
type Edge struct {
	// ID is the site identifier, unique within the graph.
	ID SiteID
	// From is the calling function.
	From NodeID
	// To is the callee.
	To NodeID
}

// Graph is an immutable call graph. Build one with a Builder.
type Graph struct {
	names  []string
	byName map[string]NodeID
	edges  []Edge
	out    [][]SiteID
	in     [][]SiteID
}

// Builder accumulates functions and call sites for a Graph.
type Builder struct {
	g Graph
}

// NewBuilder returns an empty call graph builder.
func NewBuilder() *Builder {
	return &Builder{g: Graph{byName: make(map[string]NodeID)}}
}

// AddFunc adds a function (idempotently) and returns its node.
func (b *Builder) AddFunc(name string) NodeID {
	if id, ok := b.g.byName[name]; ok {
		return id
	}
	id := NodeID(len(b.g.names))
	b.g.names = append(b.g.names, name)
	b.g.byName[name] = id
	b.g.out = append(b.g.out, nil)
	b.g.in = append(b.g.in, nil)
	return id
}

// AddCall adds a call site from caller to callee, adding the functions
// as needed, and returns the new site's ID.
func (b *Builder) AddCall(caller, callee string) SiteID {
	from := b.AddFunc(caller)
	to := b.AddFunc(callee)
	id := SiteID(len(b.g.edges))
	b.g.edges = append(b.g.edges, Edge{ID: id, From: from, To: to})
	b.g.out[from] = append(b.g.out[from], id)
	b.g.in[to] = append(b.g.in[to], id)
	return id
}

// Build finalizes and returns the graph. The builder must not be used
// afterwards.
func (b *Builder) Build() *Graph {
	g := b.g
	b.g = Graph{}
	return &g
}

// NumNodes returns the number of functions.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges returns the number of call sites.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Name returns the function name for a node.
func (g *Graph) Name(n NodeID) string { return g.names[n] }

// NodeByName looks a function up by name, returning InvalidNode if
// absent.
func (g *Graph) NodeByName(name string) NodeID {
	if id, ok := g.byName[name]; ok {
		return id
	}
	return InvalidNode
}

// Edge returns the edge for a site ID.
func (g *Graph) Edge(s SiteID) Edge { return g.edges[s] }

// OutSites returns the call sites contained in function n.
func (g *Graph) OutSites(n NodeID) []SiteID { return g.out[n] }

// InSites returns the call sites whose callee is n.
func (g *Graph) InSites(n NodeID) []SiteID { return g.in[n] }

// SiteLabel renders a human-readable "caller->callee#k" label, where k
// disambiguates multiple sites between the same pair.
func (g *Graph) SiteLabel(s SiteID) string {
	e := g.edges[s]
	k := 0
	for _, o := range g.out[e.From] {
		if o == s {
			break
		}
		if g.edges[o].To == e.To {
			k++
		}
	}
	return fmt.Sprintf("%s->%s#%d", g.names[e.From], g.names[e.To], k)
}

// SiteByLabel resolves a label produced by SiteLabel.
func (g *Graph) SiteByLabel(label string) (SiteID, error) {
	for s := range g.edges {
		if g.SiteLabel(SiteID(s)) == label {
			return SiteID(s), nil
		}
	}
	return 0, fmt.Errorf("callgraph: no site labeled %q", label)
}

// ReachesTargets computes, for every node, whether some call path from
// it reaches any node in targets. Targets trivially reach themselves.
// The analysis is a backward breadth-first search over incoming edges
// and handles cycles (Section IV-A of the paper).
func (g *Graph) ReachesTargets(targets []NodeID) []bool {
	return g.ReachesTargetsInto(nil, nil, targets)
}

// ReachesTargetsInto is ReachesTargets with caller-provided scratch:
// reaches is reused as the result slice and queue as the BFS worklist
// when their capacity suffices (their contents need not be zeroed).
// It returns the result slice, which aliases reaches when it fit.
// Planners call this in a loop per target, so reusing both buffers
// makes repeated reachability queries allocation-free.
func (g *Graph) ReachesTargetsInto(reaches []bool, queue []NodeID, targets []NodeID) []bool {
	if cap(reaches) >= len(g.names) {
		reaches = reaches[:len(g.names)]
		for i := range reaches {
			reaches[i] = false
		}
	} else {
		reaches = make([]bool, len(g.names))
	}
	if queue == nil {
		queue = make([]NodeID, 0, len(targets))
	} else {
		queue = queue[:0]
	}
	for _, t := range targets {
		if !reaches[t] {
			reaches[t] = true
			queue = append(queue, t)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, s := range g.in[n] {
			m := g.edges[s].From
			if !reaches[m] {
				reaches[m] = true
				queue = append(queue, m)
			}
		}
	}
	return reaches
}

// TargetReachingSites returns the set of call sites (m, n) where n can
// reach a target (or is one): the TCS instrumentation set.
func (g *Graph) TargetReachingSites(targets []NodeID) map[SiteID]bool {
	reaches := g.ReachesTargets(targets)
	set := make(map[SiteID]bool)
	for _, e := range g.edges {
		if reaches[e.To] {
			set[e.ID] = true
		}
	}
	return set
}

// Roots returns nodes with no incoming edges, in ID order.
func (g *Graph) Roots() []NodeID {
	var roots []NodeID
	for n := range g.names {
		if len(g.in[n]) == 0 {
			roots = append(roots, NodeID(n))
		}
	}
	return roots
}

// EnumerateContexts returns every acyclic call path from any root to
// any target, as slices of site IDs, capped at limit paths (0 = no
// cap). Paths are used by encoding tests to verify distinguishability.
func (g *Graph) EnumerateContexts(targets []NodeID, limit int) [][]SiteID {
	isTarget := make([]bool, len(g.names))
	for _, t := range targets {
		isTarget[t] = true
	}
	var out [][]SiteID
	onPath := make([]bool, len(g.names))
	var path []SiteID

	var dfs func(n NodeID) bool
	dfs = func(n NodeID) bool {
		if isTarget[n] {
			cp := make([]SiteID, len(path))
			copy(cp, path)
			out = append(out, cp)
			if limit > 0 && len(out) >= limit {
				return false
			}
			// A target may also call onward; the paper's contexts end at
			// the target invocation, so stop here.
			return true
		}
		onPath[n] = true
		defer func() { onPath[n] = false }()
		for _, s := range g.out[n] {
			to := g.edges[s].To
			if onPath[to] {
				continue // skip back edges: contexts are acyclic
			}
			path = append(path, s)
			ok := dfs(to)
			path = path[:len(path)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	for _, r := range g.Roots() {
		if !dfs(r) {
			break
		}
	}
	return out
}

// DOT renders the graph in Graphviz format, marking targets and
// highlighting instrumented sites if a non-nil set is given.
func (g *Graph) DOT(targets []NodeID, instrumented map[SiteID]bool) string {
	isTarget := make(map[NodeID]bool, len(targets))
	for _, t := range targets {
		isTarget[t] = true
	}
	var sb strings.Builder
	sb.WriteString("digraph callgraph {\n")
	for n, name := range g.names {
		attrs := ""
		if isTarget[NodeID(n)] {
			attrs = " [shape=doublecircle,style=filled,fillcolor=lightblue]"
		}
		fmt.Fprintf(&sb, "  %q%s;\n", name, attrs)
	}
	for _, e := range g.edges {
		attrs := ""
		if instrumented != nil && instrumented[e.ID] {
			attrs = " [color=red,penwidth=2]"
		}
		fmt.Fprintf(&sb, "  %q -> %q%s;\n", g.names[e.From], g.names[e.To], attrs)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// SortedSites returns the site IDs of set in ascending order; a helper
// for deterministic output.
func SortedSites(set map[SiteID]bool) []SiteID {
	out := make([]SiteID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Figure2 builds the example graph from Figure 2 of the paper: targets
// T1 and T2; A and C are (true) branching nodes; B and E are
// non-branching; F is a false branching node (its two edges reach
// different targets); D, H, I form a component that cannot reach any
// target. The expected instrumentation sets are locked in by tests in
// package encoding:
//
//	FCS:         every site
//	TCS:         A->B, A->C, B->T1, C->E, C->F, E->T2, F->T1, F->T2
//	Slim:        A->B, A->C, C->E, C->F, F->T1, F->T2
//	Incremental: A->B, A->C, C->E, C->F
func Figure2() (*Graph, []NodeID) {
	b := NewBuilder()
	b.AddCall("A", "B")
	b.AddCall("A", "C")
	b.AddCall("B", "T1")
	b.AddCall("C", "E")
	b.AddCall("C", "F")
	b.AddCall("E", "T2")
	b.AddCall("F", "T1")
	b.AddCall("F", "T2")
	b.AddCall("D", "H")
	b.AddCall("H", "I")
	g := b.Build()
	return g, []NodeID{g.NodeByName("T1"), g.NodeByName("T2")}
}
