package callgraph

import (
	"sort"
	"strings"
	"testing"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	a := b.AddFunc("A")
	if got := b.AddFunc("A"); got != a {
		t.Errorf("AddFunc twice returned %v then %v, want idempotent", a, got)
	}
	s1 := b.AddCall("A", "B")
	s2 := b.AddCall("A", "B") // second static site, same pair
	g := b.Build()

	if g.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if s1 == s2 {
		t.Error("two call sites between the same pair got the same SiteID")
	}
	if g.Name(g.NodeByName("B")) != "B" {
		t.Error("NodeByName/Name round trip failed")
	}
	if g.NodeByName("missing") != InvalidNode {
		t.Error("NodeByName(missing) != InvalidNode")
	}
}

func TestSiteLabels(t *testing.T) {
	b := NewBuilder()
	s1 := b.AddCall("A", "B")
	s2 := b.AddCall("A", "B")
	s3 := b.AddCall("A", "C")
	g := b.Build()

	if got := g.SiteLabel(s1); got != "A->B#0" {
		t.Errorf("SiteLabel(s1) = %q, want A->B#0", got)
	}
	if got := g.SiteLabel(s2); got != "A->B#1" {
		t.Errorf("SiteLabel(s2) = %q, want A->B#1", got)
	}
	if got := g.SiteLabel(s3); got != "A->C#0" {
		t.Errorf("SiteLabel(s3) = %q, want A->C#0", got)
	}
	back, err := g.SiteByLabel("A->B#1")
	if err != nil || back != s2 {
		t.Errorf("SiteByLabel(A->B#1) = %v, %v; want %v", back, err, s2)
	}
	if _, err := g.SiteByLabel("X->Y#0"); err == nil {
		t.Error("SiteByLabel of unknown label succeeded")
	}
}

func TestReachesTargetsFigure2(t *testing.T) {
	g, targets := Figure2()
	reaches := g.ReachesTargets(targets)

	wantReach := map[string]bool{
		"A": true, "B": true, "C": true, "E": true, "F": true,
		"T1": true, "T2": true,
		"D": false, "H": false, "I": false,
	}
	for name, want := range wantReach {
		n := g.NodeByName(name)
		if n == InvalidNode {
			t.Fatalf("node %s missing", name)
		}
		if reaches[n] != want {
			t.Errorf("reaches[%s] = %v, want %v", name, reaches[n], want)
		}
	}
}

func TestTargetReachingSitesFigure2(t *testing.T) {
	g, targets := Figure2()
	set := g.TargetReachingSites(targets)

	var labels []string
	for _, s := range SortedSites(set) {
		labels = append(labels, g.SiteLabel(s))
	}
	sort.Strings(labels)
	want := []string{
		"A->B#0", "A->C#0", "B->T1#0", "C->E#0",
		"C->F#0", "E->T2#0", "F->T1#0", "F->T2#0",
	}
	if len(labels) != len(want) {
		t.Fatalf("TCS set = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("TCS set = %v, want %v", labels, want)
		}
	}
}

func TestReachesHandlesCycles(t *testing.T) {
	b := NewBuilder()
	b.AddCall("main", "A")
	b.AddCall("A", "B")
	b.AddCall("B", "A") // recursion
	b.AddCall("B", "malloc")
	g := b.Build()
	targets := []NodeID{g.NodeByName("malloc")}
	reaches := g.ReachesTargets(targets)
	for _, name := range []string{"main", "A", "B", "malloc"} {
		if !reaches[g.NodeByName(name)] {
			t.Errorf("reaches[%s] = false, want true despite cycle", name)
		}
	}
}

func TestRoots(t *testing.T) {
	g, _ := Figure2()
	roots := g.Roots()
	var names []string
	for _, r := range roots {
		names = append(names, g.Name(r))
	}
	sort.Strings(names)
	if len(names) != 2 || names[0] != "A" || names[1] != "D" {
		t.Errorf("Roots = %v, want [A D]", names)
	}
}

func TestEnumerateContextsFigure2(t *testing.T) {
	g, targets := Figure2()
	paths := g.EnumerateContexts(targets, 0)
	// Contexts: A-B-T1, A-C-E-T2, A-C-F-T1, A-C-F-T2.
	if len(paths) != 4 {
		t.Fatalf("EnumerateContexts found %d paths, want 4", len(paths))
	}
	var rendered []string
	for _, p := range paths {
		var parts []string
		for _, s := range p {
			parts = append(parts, g.SiteLabel(s))
		}
		rendered = append(rendered, strings.Join(parts, ","))
	}
	sort.Strings(rendered)
	want := []string{
		"A->B#0,B->T1#0",
		"A->C#0,C->E#0,E->T2#0",
		"A->C#0,C->F#0,F->T1#0",
		"A->C#0,C->F#0,F->T2#0",
	}
	for i := range want {
		if rendered[i] != want[i] {
			t.Fatalf("contexts = %v, want %v", rendered, want)
		}
	}
}

func TestEnumerateContextsLimit(t *testing.T) {
	g, targets := Figure2()
	paths := g.EnumerateContexts(targets, 2)
	if len(paths) != 2 {
		t.Errorf("limited enumeration returned %d paths, want 2", len(paths))
	}
}

func TestEnumerateContextsSkipsCycles(t *testing.T) {
	b := NewBuilder()
	b.AddCall("main", "A")
	b.AddCall("A", "A") // self recursion
	b.AddCall("A", "malloc")
	g := b.Build()
	paths := g.EnumerateContexts([]NodeID{g.NodeByName("malloc")}, 0)
	if len(paths) != 1 {
		t.Fatalf("contexts with self-loop = %d paths, want 1", len(paths))
	}
}

func TestDOT(t *testing.T) {
	g, targets := Figure2()
	instr := g.TargetReachingSites(targets)
	dot := g.DOT(targets, instr)
	for _, want := range []string{"digraph", `"T1"`, "doublecircle", "color=red"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{Funcs: 1, Layers: 2, FanOut: 2, Targets: []string{"malloc"}},
		{Funcs: 10, Layers: 1, FanOut: 2, Targets: []string{"malloc"}},
		{Funcs: 10, Layers: 3, FanOut: 2},
		{Funcs: 10, Layers: 3, FanOut: 0, Targets: []string{"malloc"}},
	}
	for i, cfg := range bad {
		if _, _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: Generate accepted invalid config %+v", i, cfg)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{
		Funcs: 50, Layers: 5, FanOut: 3,
		Targets:         []string{"malloc", "calloc"},
		AllocCallerFrac: 0.3, DupSiteFrac: 0.1, Seed: 7,
	}
	g1, t1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, t2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Error("same seed produced different graphs")
	}
	if len(t1) != len(t2) {
		t.Error("same seed produced different target sets")
	}
	if g1.DOT(t1, nil) != g2.DOT(t2, nil) {
		t.Error("same seed produced structurally different graphs")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := GenConfig{
		Funcs: 200, Layers: 8, FanOut: 3,
		Targets:         []string{"malloc"},
		AllocCallerFrac: 0.2, Seed: 11,
	}
	g, targets, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeByName("main") != 0 {
		t.Error("main is not node 0")
	}
	if len(targets) != 1 {
		t.Fatalf("targets = %v, want 1 entry", targets)
	}
	// main must reach the allocation function.
	reaches := g.ReachesTargets(targets)
	if !reaches[g.NodeByName("main")] {
		t.Error("main cannot reach malloc in generated graph")
	}
	// The TCS set must be a strict subset of all sites for a sparse
	// alloc-caller fraction.
	tcs := g.TargetReachingSites(targets)
	if len(tcs) >= g.NumEdges() {
		t.Errorf("TCS set (%d) is not smaller than all sites (%d)", len(tcs), g.NumEdges())
	}
}

func TestGenerateWithBackEdges(t *testing.T) {
	cfg := GenConfig{
		Funcs: 100, Layers: 6, FanOut: 3,
		Targets:         []string{"malloc"},
		AllocCallerFrac: 0.25, BackEdgeFrac: 0.2, Seed: 3,
	}
	g, targets, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Analyses must terminate and be sane even with cycles.
	reaches := g.ReachesTargets(targets)
	n := 0
	for _, r := range reaches {
		if r {
			n++
		}
	}
	if n == 0 {
		t.Error("no node reaches targets")
	}
	paths := g.EnumerateContexts(targets, 1000)
	if len(paths) == 0 {
		t.Error("no acyclic contexts found")
	}
}
