package callgraph

import (
	"fmt"
	"math/rand"
)

// GenConfig parameterizes synthetic call-graph generation. The
// generator produces layered, mostly-acyclic graphs whose shape knobs
// map directly onto what the paper's optimizations exploit: how much of
// the program can reach an allocation function (TCS), and how often
// nodes branch toward targets (Slim/Incremental).
type GenConfig struct {
	// Funcs is the number of ordinary functions (targets are extra).
	Funcs int
	// Layers is the call-depth layering; functions are spread evenly.
	Layers int
	// FanOut is the average number of call sites per function.
	FanOut float64
	// Targets names the target functions (e.g. allocation APIs). Each
	// becomes a node callable from alloc-calling functions.
	Targets []string
	// AllocCallerFrac is the fraction of functions that directly call a
	// target. Lower values shrink the TCS instrumentation set.
	AllocCallerFrac float64
	// DupSiteFrac is the probability an added call site is duplicated
	// (two static calls to the same callee), creating true branching
	// nodes that Incremental must keep.
	DupSiteFrac float64
	// BackEdgeFrac is the probability of adding a cycle-forming edge
	// (recursion), which the analyses must tolerate.
	BackEdgeFrac float64
	// Seed makes generation deterministic.
	Seed int64
}

// Validate checks the configuration for consistency.
func (c GenConfig) Validate() error {
	if c.Funcs < 2 {
		return fmt.Errorf("callgraph: GenConfig.Funcs = %d, need >= 2", c.Funcs)
	}
	if c.Layers < 2 || c.Layers > c.Funcs {
		return fmt.Errorf("callgraph: GenConfig.Layers = %d, need in [2, Funcs]", c.Layers)
	}
	if len(c.Targets) == 0 {
		return fmt.Errorf("callgraph: GenConfig.Targets is empty")
	}
	if c.FanOut <= 0 {
		return fmt.Errorf("callgraph: GenConfig.FanOut = %v, need > 0", c.FanOut)
	}
	return nil
}

// Generate builds a synthetic call graph and returns it with the target
// node IDs. The graph always has a single root named "main" in layer 0.
func Generate(cfg GenConfig) (*Graph, []NodeID, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder()

	// Assign functions to layers; f0 is main.
	names := make([]string, cfg.Funcs)
	layerOf := make([]int, cfg.Funcs)
	names[0] = "main"
	layerOf[0] = 0
	b.AddFunc("main")
	for i := 1; i < cfg.Funcs; i++ {
		names[i] = fmt.Sprintf("f%03d", i)
		// Spread across layers 1..Layers-1.
		layerOf[i] = 1 + (i-1)*(cfg.Layers-1)/max(cfg.Funcs-1, 1)
		b.AddFunc(names[i])
	}
	byLayer := make([][]int, cfg.Layers)
	for i := 0; i < cfg.Funcs; i++ {
		byLayer[layerOf[i]] = append(byLayer[layerOf[i]], i)
	}

	// Guarantee connectivity: every non-main function gets one incoming
	// call from some function in an earlier layer.
	for i := 1; i < cfg.Funcs; i++ {
		l := layerOf[i]
		caller := 0
		if l > 1 {
			prev := byLayer[l-1]
			if len(prev) > 0 {
				caller = prev[rng.Intn(len(prev))]
			}
		}
		b.AddCall(names[caller], names[i])
	}

	// Add fan-out edges.
	extra := int(cfg.FanOut*float64(cfg.Funcs)) - (cfg.Funcs - 1)
	for e := 0; e < extra; e++ {
		from := rng.Intn(cfg.Funcs)
		fromLayer := layerOf[from]
		if cfg.BackEdgeFrac > 0 && rng.Float64() < cfg.BackEdgeFrac && fromLayer > 1 {
			// Back edge to an earlier-or-same layer function, but never
			// into layer 0: main must remain the entry point.
			cands := byLayer[1+rng.Intn(fromLayer)]
			if len(cands) > 0 {
				b.AddCall(names[from], names[cands[rng.Intn(len(cands))]])
			}
			continue
		}
		if fromLayer == cfg.Layers-1 {
			continue // leaves get target edges below
		}
		toLayer := fromLayer + 1 + rng.Intn(cfg.Layers-1-fromLayer)
		cands := byLayer[toLayer]
		if len(cands) == 0 {
			continue
		}
		to := cands[rng.Intn(len(cands))]
		b.AddCall(names[from], names[to])
		if rng.Float64() < cfg.DupSiteFrac {
			b.AddCall(names[from], names[to]) // duplicate static site
		}
	}

	// Target edges: a fraction of functions call an allocation API.
	callers := 0
	for i := 0; i < cfg.Funcs; i++ {
		if rng.Float64() < cfg.AllocCallerFrac {
			t := cfg.Targets[rng.Intn(len(cfg.Targets))]
			b.AddCall(names[i], t)
			callers++
			if rng.Float64() < cfg.DupSiteFrac {
				b.AddCall(names[i], t)
			}
		}
	}
	if callers == 0 {
		// Ensure at least one allocation site exists.
		b.AddCall(names[cfg.Funcs-1], cfg.Targets[0])
	}

	g := b.Build()
	targets := make([]NodeID, 0, len(cfg.Targets))
	for _, t := range cfg.Targets {
		if id := g.NodeByName(t); id != InvalidNode {
			targets = append(targets, id)
		}
	}
	return g, targets, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
