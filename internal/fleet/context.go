package fleet

import (
	"fmt"

	"heaptherapy/internal/defense"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/telemetry"
)

// resettableBackend is what a worker needs from its execution
// substrate: the interpreter-facing backend interface plus in-place
// recycling. Both prog.NativeBackend and defense.Backend satisfy it.
type resettableBackend interface {
	prog.HeapBackend
	Reset() error
}

// Context is one worker's private execution state: an address space,
// an allocator, and (when defended) a defense layer over the fleet's
// shared table. A Context is owned by exactly one goroutine between
// Acquire and Release; nothing in it is synchronized.
type Context struct {
	space    *mem.Space
	backend  resettableBackend
	defender *defense.Defender      // nil for native contexts
	pool     *heapsim.PoolAllocator // non-nil only for AllocPool

	// tel is this worker's telemetry scope (its tenant identity);
	// pooled reuse keeps the scope, so a context's counters accumulate
	// across every request it ever serves. Nil when the fleet has no
	// collector.
	tel *telemetry.Scope
}

// Space returns the context's private address space.
func (c *Context) Space() *mem.Space { return c.space }

// Backend returns the context's execution backend for building an
// interpreter.
func (c *Context) Backend() prog.HeapBackend { return c.backend }

// Defender returns the context's defense layer, nil for a native
// context.
func (c *Context) Defender() *defense.Defender { return c.defender }

// Telemetry returns the context's telemetry scope, nil when the fleet
// runs without a collector.
func (c *Context) Telemetry() *telemetry.Scope { return c.tel }

// Reset recycles the context to its post-construction state. The
// order is load-bearing: the space rewinds first (zeroing only dirty
// pages and returning the break to the initial reserve), then the
// backend rebuilds over the clean space, then a custom allocator
// re-zeroes its own bookkeeping. After one warm cycle this path
// performs no Go allocations, which is what makes pooled reuse cheap.
func (c *Context) Reset() error {
	c.space.Reset()
	if err := c.backend.Reset(); err != nil {
		return err
	}
	if c.pool != nil {
		c.pool.Reset()
	}
	return nil
}

// SyncTable re-points the context's defense layer at the fleet's
// CURRENT sealed table, reporting whether a swap occurred. A pooled
// context may have been built before a SwapTable; syncing at checkout
// is what makes a rollout reach recycled workers — the Defender's
// generation bump then invalidates every engine verdict cache bound to
// this context's backend. Native contexts have nothing to sync.
//
// Must be called by the context's owning goroutine (between Acquire
// and Release), like every other Context method.
func (c *Context) SyncTable(f *Fleet) bool {
	if c.defender == nil {
		return false
	}
	cur := f.Table()
	if cur == nil || c.defender.SharedTable() == cur {
		return false
	}
	// The swap cannot fail: fleet defenders are always built over a
	// shared table and cur is non-nil.
	if err := c.defender.SwapSharedTable(cur); err != nil {
		panic(fmt.Sprintf("fleet: syncing context table: %v", err))
	}
	return true
}

// Acquire returns a ready-to-use worker context: a pooled one when
// available (already Reset, re-pointed at the current sealed table), a
// freshly built one otherwise.
func (f *Fleet) Acquire() (*Context, error) {
	if c, ok := f.ctxPool.Get().(*Context); ok {
		c.SyncTable(f)
		return c, nil
	}
	return f.newContext()
}

// DrainPool discards every pooled context and reports how many were
// dropped. Use it when the fleet goes quiet (graceful shutdown) so
// worker spaces are released to the garbage collector, or in tests
// that need the next Acquire to construct from scratch. Contexts
// currently checked out are unaffected.
func (f *Fleet) DrainPool() int {
	n := 0
	for {
		if _, ok := f.ctxPool.Get().(*Context); !ok {
			return n
		}
		n++
	}
}

// Release returns a context to the pool for reuse. The context must
// be Reset (Serve's request loop leaves it so); a dirty context would
// leak one request's heap state into another tenant's execution.
func (f *Fleet) Release(c *Context) {
	f.ctxPool.Put(c)
}

// newContext builds a worker context from scratch — the expensive
// path the pool exists to avoid.
func (f *Fleet) newContext() (*Context, error) {
	space, err := mem.NewSpace(f.cfg.Space)
	if err != nil {
		return nil, fmt.Errorf("fleet: worker space: %w", err)
	}
	c := &Context{space: space}
	if f.cfg.Telemetry != nil {
		c.tel = f.cfg.Telemetry.Scope()
		space.SetTelemetry(c.tel)
	}
	if !f.cfg.Defended {
		nb, err := prog.NewNativeBackend(space)
		if err != nil {
			return nil, fmt.Errorf("fleet: native backend: %w", err)
		}
		if h := nb.Heap(); h != nil {
			h.SetTelemetry(c.tel)
		}
		c.backend = nb
		f.contextsBuilt.Add(1)
		return c, nil
	}

	dcfg := defense.Config{
		Mode:        f.cfg.Mode,
		Family:      f.cfg.Family,
		SharedTable: f.Table(),
		QueueQuota:  f.cfg.QueueQuota,
		Telemetry:   c.tel,
	}
	switch f.cfg.Alloc {
	case AllocPool:
		pool, err := heapsim.NewPool(space)
		if err != nil {
			return nil, fmt.Errorf("fleet: pool allocator: %w", err)
		}
		pool.SetTelemetry(c.tel)
		b, err := defense.NewBackendWithAllocator(space, pool, dcfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: defended backend: %w", err)
		}
		c.pool = pool
		c.backend = b
		c.defender = b.Defender()
	default:
		b, err := defense.NewBackend(space, dcfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: defended backend: %w", err)
		}
		c.backend = b
		c.defender = b.Defender()
	}
	f.contextsBuilt.Add(1)
	return c, nil
}
