package fleet

import (
	"errors"
	"testing"

	"heaptherapy/internal/defense"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

// snapshot is everything observable about one request's execution:
// if a pooled context differs from a fresh one in ANY field here, the
// recycling is leaking state between tenants.
type snapshot struct {
	output     string
	steps      uint64
	cycles     uint64
	encUpdates uint64
	crashed    bool
	faultAddr  uint64
	faultKind  mem.AccessKind
	stats      defense.Stats
}

func snap(t *testing.T, res *prog.Result, d *defense.Defender) snapshot {
	t.Helper()
	s := snapshot{
		output:     string(res.Output),
		steps:      res.Steps,
		cycles:     res.Cycles,
		encUpdates: res.EncUpdates,
		crashed:    res.Crashed(),
		stats:      d.Stats(),
	}
	if res.Fault != nil {
		var fe *mem.FaultError
		if !errors.As(res.Fault, &fe) {
			t.Fatalf("fault is not a FaultError: %v", res.Fault)
		}
		s.faultAddr = fe.Addr
		s.faultKind = fe.Kind
	}
	return s
}

// runOn executes one request on a context and snapshots it. The
// caller decides whether the context is fresh or recycled.
func runOn(t *testing.T, ctx *Context, p *prog.Program, coder *encoding.Coder, input []byte) snapshot {
	t.Helper()
	it, err := prog.New(p, prog.Config{Backend: ctx.Backend(), Coder: coder})
	if err != nil {
		t.Fatal(err)
	}
	res, err := it.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	return snap(t, res, ctx.Defender())
}

// TestFleetPooledBitIdentical: a worker context recycled through
// Reset must be observationally indistinguishable from a freshly
// constructed one — outputs, step and cycle counts, encoding updates,
// defense statistics, and (for crashing requests) the exact fault
// address. Exercised over both allocators and over both a benign/UAF
// workload and a guard-page-crashing overflow, in a mixed request
// order so each request sees a context dirtied by a DIFFERENT prior
// request.
func TestFleetPooledBitIdentical(t *testing.T) {
	uaf := uafProgram()
	uafCoder, uafPatches := analyzeUAF(t, uaf)
	ovf := overflowProgram()
	ovfCoder, ovfPatches := overflowSetup(t, ovf)

	cases := []struct {
		name    string
		p       *prog.Program
		coder   *encoding.Coder
		patches *patch.Set
		inputs  [][]byte
	}{
		{"uaf", uaf, uafCoder, uafPatches, [][]byte{{0x00}, {0xEE}, {0x00}, {0xEE}, {0xEE}, {0x00}}},
		{"guard-crash", ovf, ovfCoder, ovfPatches, [][]byte{{0}, {1}, {0}, {1}, {1}, {0}}},
	}
	allocs := []AllocKind{AllocBoundaryTag, AllocPool}

	for _, kind := range allocs {
		for _, c := range cases {
			t.Run(kind.String()+"/"+c.name, func(t *testing.T) {
				cfg := Config{Workers: 1, Defended: true, Patches: c.patches, Alloc: kind}

				// Pooled: ONE context recycled through every request.
				pooledFleet := New(cfg)
				pooled, err := pooledFleet.newContext()
				if err != nil {
					t.Fatal(err)
				}
				var pooledSnaps []snapshot
				for _, in := range c.inputs {
					pooledSnaps = append(pooledSnaps, runOn(t, pooled, c.p, c.coder, in))
					if err := pooled.Reset(); err != nil {
						t.Fatal(err)
					}
				}

				// Fresh: a brand-new context per request.
				freshFleet := New(cfg)
				for i, in := range c.inputs {
					fresh, err := freshFleet.newContext()
					if err != nil {
						t.Fatal(err)
					}
					want := runOn(t, fresh, c.p, c.coder, in)
					if pooledSnaps[i] != want {
						t.Errorf("request %d (%x): pooled context diverges from fresh\npooled: %+v\nfresh:  %+v",
							i, in, pooledSnaps[i], want)
					}
					if c.name == "guard-crash" && in[0] == 1 && !want.crashed {
						t.Fatalf("request %d: overflow did not crash (test is vacuous)", i)
					}
				}
			})
		}
	}
}

// TestFleetPooledBitIdenticalAfterCrash: the hardest recycle — a
// context whose LAST request died mid-request at its guard page (live
// buffer never freed, deferred queue non-empty, protections changed)
// must still recycle into a bit-identical fresh state.
func TestFleetPooledBitIdenticalAfterCrash(t *testing.T) {
	p := overflowProgram()
	coder, patches := overflowSetup(t, p)
	for _, kind := range []AllocKind{AllocBoundaryTag, AllocPool} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := Config{Workers: 1, Defended: true, Patches: patches, Alloc: kind}
			f := New(cfg)
			ctx, err := f.newContext()
			if err != nil {
				t.Fatal(err)
			}
			crash := runOn(t, ctx, p, coder, []byte{1})
			if !crash.crashed {
				t.Fatal("overflow did not crash")
			}
			if err := ctx.Reset(); err != nil {
				t.Fatal(err)
			}
			afterCrash := runOn(t, ctx, p, coder, []byte{0})

			fresh, err := New(cfg).newContext()
			if err != nil {
				t.Fatal(err)
			}
			want := runOn(t, fresh, p, coder, []byte{0})
			if afterCrash != want {
				t.Errorf("post-crash recycle diverges from fresh\ngot:  %+v\nwant: %+v", afterCrash, want)
			}
		})
	}
}
