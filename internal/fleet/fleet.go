// Package fleet is the parallel serving runtime: M independent
// defended tenants — one mem.Space, one allocator, one defense layer
// each — executing across real goroutines, all probing ONE immutable
// sealed patch table. This is the paper's deployment shape scaled out:
// a fleet of defended server processes on a multi-core host share the
// read-only patch configuration (one mapping, many readers) while
// every mutable structure (heap arena, metadata words, deferred-free
// queue, statistics) stays strictly process-private. Here goroutines
// stand in for processes, the SealedTable for the shared read-only
// mapping, and Go immutability for page protection.
//
// Worker contexts are expensive to build (a space reservation, an
// allocator, a defense layer) and cheap to recycle (Reset costs are
// proportional to pages touched, not address-space size), so the fleet
// pools them through sync.Pool: steady-state request handling builds
// nothing and the per-request setup cost is a Reset, not a
// construction.
//
// Concurrency model — the invariant everything here rests on:
//
//   - shared and immutable: the SealedTable, the Program, the Coder.
//   - worker-private and mutable: everything else, owned by exactly
//     one goroutine (the Backend contract in package defense).
//   - fleet-level statistics: merged with atomics only.
package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"heaptherapy/internal/defense"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/telemetry"
)

// AllocKind selects the allocator beneath each worker's defense layer.
type AllocKind uint8

// Allocator kinds.
const (
	// AllocBoundaryTag uses the dlmalloc-style boundary-tag heap.
	AllocBoundaryTag AllocKind = iota
	// AllocPool uses the slab-style segregated pool allocator.
	AllocPool
)

func (k AllocKind) String() string {
	switch k {
	case AllocBoundaryTag:
		return "boundary-tag"
	case AllocPool:
		return "pool"
	default:
		return fmt.Sprintf("AllocKind(%d)", uint8(k))
	}
}

// Config configures a Fleet.
type Config struct {
	// Workers is the number of parallel worker goroutines Serve uses
	// (0 = runtime.GOMAXPROCS(0)).
	Workers int
	// Defended selects defended execution; false runs the native
	// (uninstrumented) backend for baseline measurement.
	Defended bool
	// Patches is sealed once at New into the table every defended
	// worker shares. Ignored when Defended is false.
	Patches *patch.Set
	// Alloc selects the underlying allocator for defended workers
	// (native workers always use the boundary-tag heap).
	Alloc AllocKind
	// Space configures each worker's private address space.
	Space mem.Config
	// Mode is the defense mode (default defense.ModeFull).
	Mode defense.Mode
	// Family selects each defended worker's policy family (default
	// defense.FamilyHT). Non-HT families keep the shared-table seams —
	// rollouts still bump every worker's generation — but never consult
	// the table's contents.
	Family defense.Family
	// QueueQuota bounds each worker's deferred-free FIFO
	// (0 = defense.DefaultQueueQuota).
	QueueQuota uint64
	// Engine selects each worker's execution substrate (tree
	// interpreter, bytecode VM, or tier-up compiled engine). Under
	// EngineVM and EngineCompiled, Serve compiles the program once and
	// every worker runs the shared immutable bytecode with its own
	// private state — the same shape as the sealed patch table: one
	// read-only artifact, many readers. EngineCompiled additionally
	// shares one closure cache, so a hot function any worker promotes
	// is compiled exactly once fleet-wide.
	Engine prog.Engine
	// TierUp is the compiled engine's promotion threshold (0 =
	// prog.DefaultTierUp). Ignored by the other engines.
	TierUp uint64
	// Telemetry, when non-nil, collects per-worker counters, histograms
	// (allocation sizes, patch-lookup cost, per-quantum cycles), and
	// defense trace events. Each worker context binds its own scope, so
	// the collector's per-shard breakdown is the per-tenant aggregation;
	// Stats surfaces the merged snapshot. Enabling telemetry on a
	// defended fleet also turns on per-patch hit counting on the shared
	// sealed table.
	Telemetry *telemetry.Collector
}

// Stats is a snapshot of fleet-wide activity: request accounting plus
// the sum of every worker's defense counters, merged atomically as
// each request completes. Defense.QueueBytes is a gauge, not a
// counter, and worker recycling empties the queue — so it is omitted
// from the merged Defense stats (always zero there).
type Stats struct {
	// Requests is the number of requests served.
	Requests uint64
	// Crashes is the number of requests that ended in a fault.
	Crashes uint64
	// ContextsBuilt counts full worker-context constructions (pool
	// misses); the pooling win is Requests >> ContextsBuilt.
	ContextsBuilt uint64
	// Resets counts context recycles.
	Resets uint64
	// TableSwaps counts SwapTable installs (code-less patch rollouts).
	TableSwaps uint64
	// Defense is the sum of all workers' defense counters.
	Defense defense.Stats
	// Telemetry is the merged telemetry snapshot, nil when the fleet
	// runs without a collector.
	Telemetry *telemetry.Snapshot
	// PatchHits is the fleet-wide per-patch lookup hit tally from the
	// shared sealed table; nil unless telemetry is enabled on a
	// defended fleet.
	PatchHits map[patch.Key]uint64
}

// Fleet is the parallel serving runtime. Construct with New; a Fleet
// is safe for concurrent use (Serve may itself be called from
// multiple goroutines — workers never share contexts).
type Fleet struct {
	cfg Config

	// table is the CURRENT shared sealed table (nil when !cfg.Defended).
	// It is an atomic pointer because SwapTable replaces it under live
	// traffic: readers (Acquire's table sync, Stats) load the pointer,
	// in-flight workers keep probing whichever table their Defender was
	// pointed at when they acquired their context — the old table stays
	// valid forever (immutable), it just stops being handed out.
	table atomic.Pointer[defense.SealedTable]

	ctxPool sync.Pool // *Context

	requests      atomic.Uint64
	crashes       atomic.Uint64
	contextsBuilt atomic.Uint64
	resets        atomic.Uint64
	swaps         atomic.Uint64

	// Merged defense counters (see Stats.Defense).
	dAllocs        atomic.Uint64
	dLookups       atomic.Uint64
	dLookupFaults  atomic.Uint64
	dPatchedAllocs atomic.Uint64
	dGuardPages    atomic.Uint64
	dZeroFills     atomic.Uint64
	dDeferredFrees atomic.Uint64
	dEvictions     atomic.Uint64
	dFrees         atomic.Uint64
}

// New builds a fleet, sealing the patch set into the shared table
// exactly once.
func New(cfg Config) *Fleet {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	f := &Fleet{cfg: cfg}
	if cfg.Defended {
		f.table.Store(f.seal(cfg.Patches))
	}
	return f
}

// seal builds a shareable sealed table from a patch set, with hit
// counting enabled before anything can probe it when the fleet is
// telemetered.
func (f *Fleet) seal(patches *patch.Set) *defense.SealedTable {
	t := defense.SealTable(patches)
	if f.cfg.Telemetry != nil {
		// Must happen before any worker shares the table.
		t.EnableHitCounts()
	}
	return t
}

// Workers returns the configured worker count.
func (f *Fleet) Workers() int { return f.cfg.Workers }

// Table returns the CURRENT shared sealed patch table (nil for a
// native fleet).
func (f *Fleet) Table() *defense.SealedTable { return f.table.Load() }

// SwapTable seals a new patch set and installs it as the fleet's
// current table — the code-less patch rollout, performed under live
// traffic with no restart:
//
//   - the new table is built and (if telemetered) hit-enabled BEFORE
//     it becomes visible, so no worker ever sees a half-built table;
//   - the install is one atomic pointer store: contexts acquired after
//     it observe the new table (Acquire re-points pooled Defenders,
//     bumping their generation so every engine verdict cache
//     revalidates), while contexts already in flight keep serving on
//     the old table, which is immutable and therefore valid forever;
//   - nothing is ever mutated in place, so there is no window where a
//     request can fail because of the swap.
//
// The returned table is the installed one. Swapping a native fleet is
// an error — there is no table to swap.
func (f *Fleet) SwapTable(patches *patch.Set) (*defense.SealedTable, error) {
	if !f.cfg.Defended {
		return nil, fmt.Errorf("fleet: SwapTable on a native (undefended) fleet")
	}
	t := f.seal(patches)
	f.table.Store(t)
	f.swaps.Add(1)
	return t, nil
}

// Stats returns a consistent-enough snapshot of fleet statistics:
// each counter is read atomically; the set is not a single atomic
// snapshot (call after Serve returns for exact totals).
func (f *Fleet) Stats() Stats {
	var snap *telemetry.Snapshot
	var hits map[patch.Key]uint64
	if f.cfg.Telemetry != nil {
		snap = f.cfg.Telemetry.Snapshot()
		if t := f.table.Load(); t != nil {
			// Swapped-out tables keep their tallies; the snapshot
			// reports the CURRENT table's hits (post-rollout traffic).
			hits = t.HitCounts()
		}
	}
	return Stats{
		Telemetry:     snap,
		PatchHits:     hits,
		Requests:      f.requests.Load(),
		Crashes:       f.crashes.Load(),
		ContextsBuilt: f.contextsBuilt.Load(),
		Resets:        f.resets.Load(),
		TableSwaps:    f.swaps.Load(),
		Defense: defense.Stats{
			Allocs:         f.dAllocs.Load(),
			Lookups:        f.dLookups.Load(),
			LookupFaults:   f.dLookupFaults.Load(),
			PatchedAllocs:  f.dPatchedAllocs.Load(),
			GuardPages:     f.dGuardPages.Load(),
			ZeroFills:      f.dZeroFills.Load(),
			DeferredFrees:  f.dDeferredFrees.Load(),
			QueueEvictions: f.dEvictions.Load(),
			Frees:          f.dFrees.Load(),
		},
	}
}

// merge folds one request's defense-counter delta into the fleet
// totals. The delta is simply the worker's stats since its last Reset
// (Reset zeroes them), so no subtraction bookkeeping is needed.
func (f *Fleet) merge(s defense.Stats) {
	f.dAllocs.Add(s.Allocs)
	f.dLookups.Add(s.Lookups)
	f.dLookupFaults.Add(s.LookupFaults)
	f.dPatchedAllocs.Add(s.PatchedAllocs)
	f.dGuardPages.Add(s.GuardPages)
	f.dZeroFills.Add(s.ZeroFills)
	f.dDeferredFrees.Add(s.DeferredFrees)
	f.dEvictions.Add(s.QueueEvictions)
	f.dFrees.Add(s.Frees)
}

// Serve executes one run of p per input across the fleet's workers
// and returns the i-th result in the i-th slot. Work is distributed
// dynamically (an atomic next-index), so slow requests don't stall a
// fixed shard. A request that faults is a normal outcome — its
// Result.Fault is set, the worker recycles its context, and serving
// continues (crash isolation: one tenant's SIGSEGV never touches
// another's heap). Only infrastructure errors (context construction,
// interpreter setup, a failed recycle) abort the run.
//
// coder may be nil to run without calling-context encoding.
func (f *Fleet) Serve(p *prog.Program, coder *encoding.Coder, inputs [][]byte) ([]*prog.Result, error) {
	n := len(inputs)
	if n == 0 {
		return nil, fmt.Errorf("fleet: Serve with no inputs")
	}
	workers := f.cfg.Workers
	if workers > n {
		workers = n
	}

	// Under the bytecode engines the program is translated once per
	// Serve and shared read-only by every worker; the compiled engine
	// also shares one closure cache so each hot function is lowered at
	// most once fleet-wide, no matter which worker promotes it first.
	var compiled *prog.Compiled
	var closures *prog.ClosureCache
	switch f.cfg.Engine {
	case prog.EngineTree:
	case prog.EngineVM, prog.EngineCompiled:
		var err error
		if compiled, err = prog.Compile(p, coder); err != nil {
			return nil, fmt.Errorf("fleet: compiling program: %w", err)
		}
		if f.cfg.Engine == prog.EngineCompiled {
			closures = prog.NewClosureCache(compiled)
		}
	default:
		return nil, fmt.Errorf("fleet: unknown engine %v", f.cfg.Engine)
	}

	results := make([]*prog.Result, n)
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = f.serveWorker(p, compiled, closures, coder, inputs, results, &next)
		}(w)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// serveWorker is one worker goroutine's request loop over its private
// context.
func (f *Fleet) serveWorker(p *prog.Program, compiled *prog.Compiled, closures *prog.ClosureCache, coder *encoding.Coder, inputs [][]byte, results []*prog.Result, next *atomic.Int64) error {
	ctx, err := f.Acquire()
	if err != nil {
		return err
	}
	var it prog.Exec
	switch {
	case closures != nil:
		it, err = prog.NewMachine(compiled, prog.Config{
			Backend: ctx.backend, Coder: coder,
			TierUp: f.cfg.TierUp, Closures: closures,
		})
	case compiled != nil:
		it, err = prog.NewVM(compiled, prog.Config{Backend: ctx.backend, Coder: coder})
	default:
		it, err = prog.New(p, prog.Config{Backend: ctx.backend, Coder: coder})
	}
	if err != nil {
		f.Release(ctx)
		return fmt.Errorf("fleet: interpreter: %w", err)
	}
	attachQuantumTelemetry(it, ctx.backend, ctx.tel)
	for {
		i := int(next.Add(1)) - 1
		if i >= len(inputs) {
			break
		}
		res, err := it.Run(inputs[i])
		if err != nil {
			return fmt.Errorf("fleet: request %d: %w", i, err)
		}
		results[i] = res
		f.requests.Add(1)
		ctx.tel.Inc(telemetry.CtrRequests)
		if res.Crashed() {
			f.crashes.Add(1)
			ctx.tel.Inc(telemetry.CtrCrashes)
		}
		if ctx.defender != nil {
			f.merge(ctx.defender.Stats())
		}
		// Recycle for the next request (and for Release below): even a
		// faulted request leaves the context fully reusable.
		if err := ctx.Reset(); err != nil {
			return fmt.Errorf("fleet: recycling context: %w", err)
		}
		f.resets.Add(1)
	}
	f.Release(ctx)
	return nil
}

// Swaps returns the number of SwapTable installs so far — the cheap
// per-request read (Stats builds a full snapshot; this is one atomic
// load, suitable for stamping responses with the table epoch that
// served them).
func (f *Fleet) Swaps() uint64 { return f.swaps.Load() }

// FinishRequest accounts one request served on c outside Serve — the
// seam for request-driven front-ends that check contexts out per
// request instead of per batch. It performs exactly what Serve's worker
// loop does after a run: fleet and tenant counters, the defense-stat
// delta merge, and the context recycle, leaving c ready for its next
// checkout. A crashed request is a normal outcome here too.
func (f *Fleet) FinishRequest(c *Context, crashed bool) error {
	f.requests.Add(1)
	c.tel.Inc(telemetry.CtrRequests)
	if crashed {
		f.crashes.Add(1)
		c.tel.Inc(telemetry.CtrCrashes)
	}
	if c.defender != nil {
		f.merge(c.defender.Stats())
	}
	if err := c.Reset(); err != nil {
		return fmt.Errorf("fleet: recycling context: %w", err)
	}
	f.resets.Add(1)
	return nil
}

// telemetryQuantum is the statement interval at which a telemetry-
// enabled worker samples its backend's virtual-cycle accumulator.
const telemetryQuantum = 256

// attachQuantumTelemetry hooks quantum-boundary timing onto it: every
// telemetryQuantum statements the worker counts one quantum and
// histograms the virtual cycles its backend charged since the previous
// boundary. A nil scope leaves the execution unhooked, so untelemetered
// fleets keep the hook seam free for other users (e.g. the campaign
// invariant walker).
func attachQuantumTelemetry(it prog.Exec, backend prog.HeapBackend, tel *telemetry.Scope) {
	if tel == nil {
		return
	}
	var last uint64
	prog.SetQuantumHook(it, telemetryQuantum, func() {
		now := backend.Cycles()
		if now < last {
			last = now // backend was recycled between quanta
			return
		}
		tel.Inc(telemetry.CtrQuanta)
		tel.Observe(telemetry.HistQuantumCycles, now-last)
		last = now
	})
}
