package fleet

import (
	"testing"

	"heaptherapy/internal/defense"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

// TestFleetPolicyServeMatchesSingleRuns: the policy axis must be
// invisible to the pooling/parallelism machinery — for every family, a
// 4-worker fleet produces exactly the results a standalone defended
// context produces, request for request. Under `go test -race` this
// also pins the policies' concurrency contract: per-worker state
// (bounds index, quarantine queue) never crosses goroutines.
func TestFleetPolicyServeMatchesSingleRuns(t *testing.T) {
	p := uafProgram()
	coder, patches := analyzeUAF(t, p)

	inputs := make([][]byte, 24)
	for i := range inputs {
		if i%3 == 1 {
			inputs[i] = []byte{0xEE} // attack request
		} else {
			inputs[i] = []byte{0x00}
		}
	}

	for _, fam := range defense.AllFamilies() {
		fam := fam
		t.Run(fam.String(), func(t *testing.T) {
			t.Parallel()
			f := New(Config{Workers: 4, Defended: true, Patches: patches, Family: fam})
			results, err := f.Serve(p, coder, inputs)
			if err != nil {
				t.Fatal(err)
			}

			ref := New(Config{Workers: 1, Defended: true, Patches: patches, Family: fam})
			for i, in := range inputs {
				ctx, err := ref.newContext()
				if err != nil {
					t.Fatal(err)
				}
				it, err := prog.New(p, prog.Config{Backend: ctx.Backend(), Coder: coder})
				if err != nil {
					t.Fatal(err)
				}
				want, err := it.Run(in)
				if err != nil {
					t.Fatal(err)
				}
				got := results[i]
				if got == nil {
					t.Fatalf("request %d has no result", i)
				}
				if string(got.Output) != string(want.Output) || got.Steps != want.Steps {
					t.Errorf("request %d diverged from standalone %v run", i, fam)
				}
				if got.Crashed() != want.Crashed() {
					t.Errorf("request %d crashed=%v, standalone %v", i, got.Crashed(), want.Crashed())
				}
			}

			st := f.Stats()
			if st.Requests != uint64(len(inputs)) {
				t.Errorf("Requests=%d, want %d", st.Requests, len(inputs))
			}
			if st.ContextsBuilt > 4 {
				t.Errorf("ContextsBuilt=%d, want <= 4 (pooling intact under %v)", st.ContextsBuilt, fam)
			}
		})
	}
}

// TestFleetPolicyOutcomes pins what each family actually does with the
// UAF attack when served through the fleet: HT neutralizes it (the
// deferred free keeps the safe value), MESH neutralizes it for every
// allocation (quarantine without needing the patch), and ShadowBound
// misses it (the dangling pointer lands in the recycled groom object,
// in bounds by construction) — its documented temporal gap.
func TestFleetPolicyOutcomes(t *testing.T) {
	p := uafProgram()
	coder, patches := analyzeUAF(t, p)
	attack := [][]byte{{0xEE}}

	safe := func(fam defense.Family, set *patch.Set) uint64 {
		t.Helper()
		f := New(Config{Workers: 1, Defended: true, Patches: set, Family: fam})
		res, err := f.Serve(p, coder, attack)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Crashed() {
			t.Fatalf("%v: UAF read crashed: %v", fam, res[0].Fault)
		}
		return (prog.Value{Bytes: res[0].Output}).Uint()
	}

	if got := safe(defense.FamilyHT, patches); got != 0x5AFE {
		t.Errorf("HT read %#x, want 0x5AFE (deferred free)", got)
	}
	// MESH quarantines without patches at all.
	if got := safe(defense.FamilyMESH, patch.NewSet()); got != 0x5AFE {
		t.Errorf("MESH read %#x, want 0x5AFE (universal quarantine)", got)
	}
	if got := safe(defense.FamilyShadowBound, patches); got != 0xBAD {
		t.Errorf("ShadowBound read %#x, want the groomed 0xBAD (documented temporal miss)", got)
	}
}

// TestFleetPolicySwapKeepsServing: the rollout seam survives the
// policy axis — every family accepts live SwapTable installs and keeps
// serving bit-stable results (non-HT families ignore the table's
// contents but must keep the swap protocol alive for the front-end).
func TestFleetPolicySwapKeepsServing(t *testing.T) {
	p := uafProgram()
	coder, patches := analyzeUAF(t, p)
	inputs := [][]byte{{0x00}, {0x00}, {0x00}, {0x00}}

	for _, fam := range defense.AllFamilies() {
		fam := fam
		t.Run(fam.String(), func(t *testing.T) {
			f := New(Config{Workers: 2, Defended: true, Patches: patch.NewSet(), Family: fam})
			first, err := f.Serve(p, coder, inputs)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.SwapTable(patches); err != nil {
				t.Fatalf("SwapTable under %v: %v", fam, err)
			}
			if f.Swaps() != 1 {
				t.Fatalf("Swaps=%d after install, want 1", f.Swaps())
			}
			second, err := f.Serve(p, coder, inputs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range inputs {
				if string(first[i].Output) != string(second[i].Output) {
					t.Errorf("benign request %d changed across swap under %v", i, fam)
				}
			}
		})
	}
}

// TestFleetPolicyStatsMerge: the merged defense counters reflect each
// family's mechanism — MESH quarantines and zero-fills every
// allocation with no patch consulting, ShadowBound does neither.
func TestFleetPolicyStatsMerge(t *testing.T) {
	p := uafProgram()
	coder, patches := analyzeUAF(t, p)
	inputs := [][]byte{{0x00}, {0x00}, {0x00}, {0x00}}

	mesh := New(Config{Workers: 2, Defended: true, Patches: patches, Family: defense.FamilyMESH})
	if _, err := mesh.Serve(p, coder, inputs); err != nil {
		t.Fatal(err)
	}
	st := mesh.Stats()
	if st.Defense.DeferredFrees == 0 || st.Defense.ZeroFills == 0 {
		t.Errorf("MESH merged stats missing its mechanisms: %+v", st.Defense)
	}
	if st.Defense.PatchedAllocs != 0 {
		t.Errorf("MESH consulted the patch table: PatchedAllocs=%d", st.Defense.PatchedAllocs)
	}

	sb := New(Config{Workers: 2, Defended: true, Patches: patches, Family: defense.FamilyShadowBound})
	if _, err := sb.Serve(p, coder, inputs); err != nil {
		t.Fatal(err)
	}
	st = sb.Stats()
	if st.Defense.DeferredFrees != 0 || st.Defense.ZeroFills != 0 || st.Defense.PatchedAllocs != 0 {
		t.Errorf("ShadowBound merged stats show foreign mechanisms: %+v", st.Defense)
	}
	if st.Defense.Allocs == 0 || st.Defense.Frees == 0 {
		t.Errorf("ShadowBound lost shared alloc/free accounting: %+v", st.Defense)
	}
}
