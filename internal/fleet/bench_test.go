package fleet

import (
	"fmt"
	"testing"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/workload"
)

// benchSetup builds the shared fixtures for the fleet benchmarks: the
// nginx stand-in, its coder, and a patch on one of its per-request
// allocation contexts (so defended serving exercises the full patched
// path, not just table misses). The context is recorded from one
// native run: the CCID seen most often is a handler-loop site.
func benchSetup(tb testing.TB) (*prog.Program, *encoding.Coder, *patch.Set) {
	tb.Helper()
	p, err := workload.Nginx().Program(4, 2)
	if err != nil {
		tb.Fatal(err)
	}
	plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
	if err != nil {
		tb.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		tb.Fatal(err)
	}
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	nb, err := prog.NewNativeBackend(space)
	if err != nil {
		tb.Fatal(err)
	}
	rec := &ccidRecorder{HeapBackend: nb}
	it, err := prog.New(p, prog.Config{Backend: rec, Coder: coder})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := it.Run(nil); err != nil {
		tb.Fatal(err)
	}
	counts := make(map[uint64]int)
	var hot uint64
	for _, c := range rec.ccids {
		counts[c]++
		if counts[c] > counts[hot] || hot == 0 {
			hot = c
		}
	}
	set := patch.NewSet()
	set.Add(patch.Patch{Fn: heapsim.FnMalloc, CCID: hot, Types: patch.TypeUseAfterFree})
	return p, coder, set
}

// dirty runs a small representative request-worth of heap traffic on
// a context, so pooled-setup measurements recycle a USED context, not
// a pristine one.
func dirty(b *testing.B, ctx *Context) {
	b.Helper()
	be := ctx.Backend()
	var ptrs [8]uint64
	for i := range ptrs {
		p, err := be.Alloc(heapsim.FnMalloc, 0x1000+uint64(i), 1, 256, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := be.Memset(p, 0x5A, 256, 0); err != nil {
			b.Fatal(err)
		}
		ptrs[i] = p
	}
	for _, p := range ptrs {
		if err := be.Free(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetSetup compares per-request worker setup: building a
// full fresh context versus recycling a pooled one (including the
// request's worth of dirtying traffic the recycle has to undo). The
// pooled path must be >= 10x cheaper — the number the fleet's
// sync.Pool design banks on, recorded in the benchmark trajectory.
func BenchmarkFleetSetup(b *testing.B) {
	_, _, set := benchSetup(b)
	cfg := Config{Workers: 1, Defended: true, Patches: set}
	b.Run("fresh", func(b *testing.B) {
		f := New(cfg)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx, err := f.newContext()
			if err != nil {
				b.Fatal(err)
			}
			dirty(b, ctx)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		f := New(cfg)
		ctx, err := f.newContext()
		if err != nil {
			b.Fatal(err)
		}
		dirty(b, ctx)
		if err := ctx.Reset(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dirty(b, ctx)
			if err := ctx.Reset(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestFleetPooledSetupAdvantage pins the >= 10x claim outside the
// bench harness so plain `go test` catches a regression. Measured
// with testing.Benchmark to keep timer discipline.
func TestFleetPooledSetupAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, _, set := benchSetup(t)
	cfg := Config{Workers: 1, Defended: true, Patches: set}

	fresh := testing.Benchmark(func(b *testing.B) {
		f := New(cfg)
		for i := 0; i < b.N; i++ {
			ctx, err := f.newContext()
			if err != nil {
				b.Fatal(err)
			}
			dirty(b, ctx)
		}
	})
	pooled := testing.Benchmark(func(b *testing.B) {
		f := New(cfg)
		ctx, err := f.newContext()
		if err != nil {
			b.Fatal(err)
		}
		dirty(b, ctx)
		if err := ctx.Reset(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dirty(b, ctx)
			if err := ctx.Reset(); err != nil {
				b.Fatal(err)
			}
		}
	})
	fr := float64(fresh.NsPerOp())
	po := float64(pooled.NsPerOp())
	if po <= 0 {
		t.Skip("pooled path too fast to time")
	}
	if ratio := fr / po; ratio < 10 {
		t.Errorf("pooled setup only %.1fx cheaper than fresh (%v vs %v), want >= 10x",
			ratio, pooled.NsPerOp(), fresh.NsPerOp())
	}
}

// TestFleetSteadyStateAllocFree pins the zero-allocation property of
// the defended worker hot path: request traffic plus the recycle must
// not grow the Go heap once warm. (Pinned on an explicit context, not
// through sync.Pool — GC may legitimately drain the pool mid-run.)
func TestFleetSteadyStateAllocFree(t *testing.T) {
	_, _, set := benchSetup(t)
	f := New(Config{Workers: 1, Defended: true, Patches: set})
	ctx, err := f.newContext()
	if err != nil {
		t.Fatal(err)
	}
	be := ctx.Backend()
	cycle := func() {
		var ptrs [8]uint64
		for i := range ptrs {
			p, err := be.Alloc(heapsim.FnMalloc, 0x1000+uint64(i), 1, 256, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := be.Memset(p, 0x5A, 256, 0); err != nil {
				t.Fatal(err)
			}
			ptrs[i] = p
		}
		for _, p := range ptrs {
			if err := be.Free(p, 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := ctx.Reset(); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm
	if avg := testing.AllocsPerRun(100, cycle); avg > 0 {
		t.Errorf("steady-state worker cycle allocates %.1f per run, want 0", avg)
	}
}

// BenchmarkFleetServe measures defended end-to-end request throughput
// at several worker counts over the nginx stand-in (the -exp fleet
// experiment's engine, pinned here for the trajectory file).
func BenchmarkFleetServe(b *testing.B) {
	p, coder, set := benchSetup(b)
	inputs := make([][]byte, 64)
	for i := range inputs {
		inputs[i] = nil
	}
	// Worker counts beyond GOMAXPROCS still run (goroutines multiplex)
	// so the committed trajectory always has the full 1/2/4/8 curve;
	// interpret it against the recorded GOMAXPROCS.
	for _, w := range []int{1, 2, 4, 8} {
		for _, defended := range []bool{false, true} {
			name := fmt.Sprintf("native/w%d", w)
			cfg := Config{Workers: w}
			if defended {
				name = fmt.Sprintf("defended/w%d", w)
				cfg = Config{Workers: w, Defended: true, Patches: set}
			}
			b.Run(name, func(b *testing.B) {
				f := New(cfg)
				if _, err := f.Serve(p, coder, inputs); err != nil { // warm pool
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := f.Serve(p, coder, inputs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
