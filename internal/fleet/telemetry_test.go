package fleet

import (
	"reflect"
	"testing"

	"heaptherapy/internal/prog"
	"heaptherapy/internal/telemetry"
)

// TestFleetTelemetryMerge serves a defended fleet with a live collector
// and checks the merged snapshot against the fleet's own counters: the
// per-worker scopes must account for every request exactly once, the
// sealed table's per-patch hit tally must agree with the patch-hit
// counter, and the patch-hit events must carry the deployed patch keys.
func TestFleetTelemetryMerge(t *testing.T) {
	p := uafProgram()
	coder, patches := analyzeUAF(t, p)

	col := telemetry.New(telemetry.Config{})
	f := New(Config{Workers: 4, Defended: true, Patches: patches, Telemetry: col})
	inputs := make([][]byte, 32)
	for i := range inputs {
		if i%4 == 0 {
			inputs[i] = []byte{0xEE} // attack
		} else {
			inputs[i] = []byte{0x00}
		}
	}
	if _, err := f.Serve(p, coder, inputs); err != nil {
		t.Fatal(err)
	}

	stats := f.Stats()
	snap := stats.Telemetry
	if snap == nil {
		t.Fatal("Stats.Telemetry is nil with a collector configured")
	}
	if got := snap.Counter(telemetry.CtrRequests); got != uint64(len(inputs)) {
		t.Errorf("requests counter = %d, want %d", got, len(inputs))
	}
	if got := snap.Counter(telemetry.CtrRequests); got != stats.Requests {
		t.Errorf("telemetry requests %d disagrees with fleet stats %d", got, stats.Requests)
	}
	if snap.Counter(telemetry.CtrAllocs) == 0 {
		t.Error("no allocator activity recorded")
	}
	if snap.Counter(telemetry.CtrPatchHits) == 0 {
		t.Error("no patch hits recorded for a patched workload")
	}

	// The sealed table's tally is kept by the shared read-only table
	// itself; it must agree with the sum of per-worker patch-hit
	// counters, and every tallied key must be a deployed patch. Keys
	// compare in packed-site form, since both the table and the event
	// trace keep the CCID's low 56 bits.
	truth := map[uint64]bool{}
	for _, dp := range patches.Patches() {
		truth[telemetry.PackSite(uint8(dp.Fn), dp.CCID)] = true
	}
	if len(stats.PatchHits) == 0 {
		t.Fatal("Stats.PatchHits empty with telemetry enabled")
	}
	var tableHits uint64
	for key, n := range stats.PatchHits {
		tableHits += n
		if !truth[telemetry.PackSite(uint8(key.Fn), key.CCID)] {
			t.Errorf("sealed-table hits on %v, which is not a deployed patch", key)
		}
	}
	if counted := snap.Counter(telemetry.CtrPatchHits); tableHits != counted {
		t.Errorf("sealed-table hits %d != patch_hits counter %d", tableHits, counted)
	}

	// Per-shard breakdown is the per-tenant-group aggregation: shard
	// request counts must sum to the total.
	var perShard uint64
	for _, sh := range snap.PerShard {
		perShard += sh.Counters[telemetry.CtrRequests.String()]
	}
	if perShard != uint64(len(inputs)) {
		t.Errorf("per-shard requests sum to %d, want %d", perShard, len(inputs))
	}

	for _, e := range snap.EventsOfKind(telemetry.EvPatchHit) {
		if !truth[e.Site] {
			t.Errorf("patch-hit event site %#x is not a deployed patch", e.Site)
		}
	}
}

// TestFleetTelemetryEngineParity pins the promotion-transparency
// contract at the observability layer: the exact same defended corpus,
// served single-worker so the event stream is deterministic, must
// produce identical telemetry — counter totals, sealed-table patch-hit
// tallies, and the full retained event trace, sequence numbers
// included — whether requests execute on the tree interpreter, the
// bytecode VM, or the tier-up machine promoting functions mid-corpus.
// A compiled closure that skipped an allocator event, double-counted a
// patch hit, or reordered the trace would diverge here.
func TestFleetTelemetryEngineParity(t *testing.T) {
	p := uafProgram()
	coder, patches := analyzeUAF(t, p)
	inputs := make([][]byte, 16)
	for i := range inputs {
		if i%4 == 0 {
			inputs[i] = []byte{0xEE} // attack
		} else {
			inputs[i] = []byte{0x00}
		}
	}
	serve := func(engine prog.Engine, tierUp uint64) (*telemetry.Snapshot, Stats) {
		col := telemetry.New(telemetry.Config{})
		f := New(Config{Workers: 1, Defended: true, Patches: patches,
			Engine: engine, TierUp: tierUp, Telemetry: col})
		if _, err := f.Serve(p, coder, inputs); err != nil {
			t.Fatal(err)
		}
		st := f.Stats()
		return st.Telemetry, st
	}
	tsnap, tstats := serve(prog.EngineTree, 0)
	for _, c := range []struct {
		name   string
		engine prog.Engine
		tierUp uint64
	}{
		{"vm", prog.EngineVM, 0},
		{"compiled-mid-corpus", prog.EngineCompiled, 3},
	} {
		snap, stats := serve(c.engine, c.tierUp)
		if !reflect.DeepEqual(tsnap.Counters, snap.Counters) {
			t.Errorf("%s: counters diverge\ntree: %v\n%s:   %v", c.name, tsnap.Counters, c.name, snap.Counters)
		}
		if tsnap.EventsTotal != snap.EventsTotal {
			t.Errorf("%s: events_total %d != tree %d", c.name, snap.EventsTotal, tsnap.EventsTotal)
		}
		if !reflect.DeepEqual(tsnap.Events, snap.Events) {
			t.Errorf("%s: event traces diverge (tree %d events, %s %d events)",
				c.name, len(tsnap.Events), c.name, len(snap.Events))
		}
		if !reflect.DeepEqual(tstats.PatchHits, stats.PatchHits) {
			t.Errorf("%s: sealed-table patch hits diverge\ntree: %v\n%s:   %v",
				c.name, tstats.PatchHits, c.name, stats.PatchHits)
		}
	}
}

// TestFleetWithoutCollector pins the disabled contract: no collector,
// no snapshot, no table tally.
func TestFleetWithoutCollector(t *testing.T) {
	p := uafProgram()
	coder, patches := analyzeUAF(t, p)
	f := New(Config{Workers: 2, Defended: true, Patches: patches})
	if _, err := f.Serve(p, coder, make([][]byte, 8)); err != nil {
		t.Fatal(err)
	}
	stats := f.Stats()
	if stats.Telemetry != nil {
		t.Error("Stats.Telemetry non-nil without a collector")
	}
	if stats.PatchHits != nil {
		t.Error("Stats.PatchHits non-nil without a collector")
	}
}
