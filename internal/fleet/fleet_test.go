package fleet

import (
	"runtime"
	"testing"
	"time"

	"heaptherapy/internal/analysis"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

// uafProgram is a request handler with a use-after-free on its error
// path (input 0xEE): the freed object is regroomed and dereferenced.
func uafProgram() *prog.Program {
	const good, evil = 0x5AFE, 0xBAD
	return prog.MustLink(&prog.Program{
		Name: "fleet-uaf",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Call{Callee: "serve"},
			}},
			"serve": {Body: []prog.Stmt{
				prog.ReadInput{Dst: "kind", N: prog.C(1)},
				prog.Alloc{Dst: "obj", Size: prog.C(96)},
				prog.Store{Base: prog.V("obj"), Src: prog.C(good), N: prog.C(8)},
				prog.If{Cond: prog.Eq(prog.And(prog.V("kind"), prog.C(0xFF)), prog.C(0xEE)), Then: []prog.Stmt{
					prog.FreeStmt{Ptr: prog.V("obj")},
					prog.Alloc{Dst: "groom", Size: prog.C(96)},
					prog.Store{Base: prog.V("groom"), Src: prog.C(evil), N: prog.C(8)},
					prog.Load{Dst: "h", Base: prog.V("obj"), N: prog.C(8)},
					prog.FreeStmt{Ptr: prog.V("groom")},
					prog.OutputVar{Src: "h"},
					prog.Return{},
				}},
				prog.Load{Dst: "h", Base: prog.V("obj"), N: prog.C(8)},
				prog.FreeStmt{Ptr: prog.V("obj")},
				prog.OutputVar{Src: "h"},
			}},
		},
	})
}

// analyzeUAF runs the offline pipeline over the attack input and
// returns the coder and generated patches.
func analyzeUAF(t *testing.T, p *prog.Program) (*encoding.Coder, *patch.Set) {
	t.Helper()
	plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}
	a := &analysis.Analyzer{Coder: coder}
	rep, err := a.Analyze(p, []byte{0xEE})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Patches.Len() == 0 {
		t.Fatalf("no patches from attack replay; warnings: %v", rep.Warnings)
	}
	return coder, rep.Patches
}

// overflowProgram handles a request over a 100-byte buffer; input 1
// drives a contiguous overflow well past the buffer's end (4 KiB),
// which under an overflow patch runs into the guard page.
func overflowProgram() *prog.Program {
	return prog.MustLink(&prog.Program{
		Name: "fleet-overflow",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.ReadInput{Dst: "kind", N: prog.C(1)},
				prog.Alloc{Dst: "buf", Size: prog.C(100)},
				prog.Store{Base: prog.V("buf"), Src: prog.C(0x600D), N: prog.C(8)},
				prog.If{Cond: prog.Eq(prog.And(prog.V("kind"), prog.C(0xFF)), prog.C(1)), Then: []prog.Stmt{
					prog.Assign{Dst: "off", E: prog.C(96)},
					prog.While{Cond: prog.Lt(prog.V("off"), prog.C(4200)), Body: []prog.Stmt{
						prog.Store{Base: prog.Add(prog.V("buf"), prog.V("off")), Src: prog.C(0xAB), N: prog.C(8)},
						prog.Assign{Dst: "off", E: prog.Add(prog.V("off"), prog.C(8))},
					}},
				}},
				prog.Load{Dst: "back", Base: prog.V("buf"), N: prog.C(8)},
				prog.FreeStmt{Ptr: prog.V("buf")},
				prog.OutputVar{Src: "back"},
			}},
		},
	})
}

// ccidRecorder wraps a backend and records the allocation-time CCID of
// every Alloc, so tests can key patches on real encoded contexts.
type ccidRecorder struct {
	prog.HeapBackend
	ccids []uint64
}

func (r *ccidRecorder) Alloc(fn heapsim.AllocFn, ccid, n, size, align uint64) (uint64, error) {
	r.ccids = append(r.ccids, ccid)
	return r.HeapBackend.Alloc(fn, ccid, n, size, align)
}

// overflowSetup builds the coder and an overflow patch for the
// program's single allocation site, recorded from a benign run.
func overflowSetup(t *testing.T, p *prog.Program) (*encoding.Coder, *patch.Set) {
	t.Helper()
	plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := prog.NewNativeBackend(space)
	if err != nil {
		t.Fatal(err)
	}
	rec := &ccidRecorder{HeapBackend: nb}
	it, err := prog.New(p, prog.Config{Backend: rec, Coder: coder})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Run([]byte{0}); err != nil {
		t.Fatal(err)
	}
	if len(rec.ccids) != 1 {
		t.Fatalf("recorded %d CCIDs, want 1", len(rec.ccids))
	}
	set := patch.NewSet()
	set.Add(patch.Patch{Fn: heapsim.FnMalloc, CCID: rec.ccids[0], Types: patch.TypeOverflow})
	return coder, set
}

// TestFleetServeMatchesSingleRuns: the parallel fleet must produce,
// for every input, exactly the result a standalone defended run of
// that input produces — parallelism and context pooling are invisible
// to each tenant.
func TestFleetServeMatchesSingleRuns(t *testing.T) {
	p := uafProgram()
	coder, patches := analyzeUAF(t, p)

	inputs := make([][]byte, 16)
	for i := range inputs {
		if i%3 == 1 {
			inputs[i] = []byte{0xEE} // attack request
		} else {
			inputs[i] = []byte{0x00}
		}
	}

	f := New(Config{Workers: 4, Defended: true, Patches: patches})
	results, err := f.Serve(p, coder, inputs)
	if err != nil {
		t.Fatal(err)
	}

	ref := New(Config{Workers: 1, Defended: true, Patches: patches})
	for i, in := range inputs {
		ctx, err := ref.newContext()
		if err != nil {
			t.Fatal(err)
		}
		it, err := prog.New(p, prog.Config{Backend: ctx.Backend(), Coder: coder})
		if err != nil {
			t.Fatal(err)
		}
		want, err := it.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		got := results[i]
		if got == nil {
			t.Fatalf("request %d has no result", i)
		}
		if string(got.Output) != string(want.Output) {
			t.Errorf("request %d output %x, standalone %x", i, got.Output, want.Output)
		}
		if got.Steps != want.Steps || got.EncUpdates != want.EncUpdates {
			t.Errorf("request %d steps/enc (%d, %d), standalone (%d, %d)",
				i, got.Steps, got.EncUpdates, want.Steps, want.EncUpdates)
		}
		if got.Crashed() != want.Crashed() {
			t.Errorf("request %d crashed=%v, standalone %v", i, got.Crashed(), want.Crashed())
		}
		// Every request — benign or attack — must read the safe value:
		// the UAF is neutralized by the deferred free.
		if out := (prog.Value{Bytes: got.Output}).Uint(); out != 0x5AFE {
			t.Errorf("request %d read %#x, want 0x5AFE", i, out)
		}
	}

	st := f.Stats()
	if st.Requests != 16 || st.Crashes != 0 {
		t.Errorf("Requests=%d Crashes=%d, want 16, 0", st.Requests, st.Crashes)
	}
	if st.Resets != 16 {
		t.Errorf("Resets=%d, want 16 (one per request)", st.Resets)
	}
	if st.ContextsBuilt > 4 {
		t.Errorf("ContextsBuilt=%d, want <= 4 workers (pooling)", st.ContextsBuilt)
	}
	// Stats merge: the patched obj allocation fires once per request.
	if st.Defense.PatchedAllocs != 16 {
		t.Errorf("merged PatchedAllocs=%d, want 16", st.Defense.PatchedAllocs)
	}
	if st.Defense.DeferredFrees != 16 {
		t.Errorf("merged DeferredFrees=%d, want 16", st.Defense.DeferredFrees)
	}
	if st.Defense.QueueBytes != 0 {
		t.Errorf("merged QueueBytes=%d, want 0 (gauge excluded)", st.Defense.QueueBytes)
	}
}

// TestFleetCrashIsolation: a request that runs into its guard page
// crashes alone; its worker recycles the context and later requests
// (including on that same worker) are untouched.
func TestFleetCrashIsolation(t *testing.T) {
	p := overflowProgram()
	coder, patches := overflowSetup(t, p)

	inputs := make([][]byte, 12)
	attacks := 0
	for i := range inputs {
		if i%4 == 2 {
			inputs[i] = []byte{1} // overflow request
			attacks++
		} else {
			inputs[i] = []byte{0}
		}
	}

	f := New(Config{Workers: 3, Defended: true, Patches: patches})
	results, err := f.Serve(p, coder, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if inputs[i][0] == 1 {
			if !res.Crashed() {
				t.Errorf("overflow request %d did not crash", i)
			} else if !mem.IsFault(res.Fault) {
				t.Errorf("overflow request %d fault = %v, want guard-page fault", i, res.Fault)
			}
			continue
		}
		if res.Crashed() {
			t.Errorf("benign request %d crashed: %v", i, res.Fault)
		}
		if out := (prog.Value{Bytes: res.Output}).Uint(); out != 0x600D {
			t.Errorf("benign request %d read %#x, want 0x600D", i, out)
		}
	}
	st := f.Stats()
	if st.Crashes != uint64(attacks) {
		t.Errorf("Crashes=%d, want %d", st.Crashes, attacks)
	}
	if st.Requests != uint64(len(inputs)) {
		t.Errorf("Requests=%d, want %d (service continued past crashes)", st.Requests, len(inputs))
	}
	if st.Defense.GuardPages != uint64(len(inputs)) {
		t.Errorf("GuardPages=%d, want %d (patched site fires every request)", st.Defense.GuardPages, len(inputs))
	}
}

// TestFleetNativeBaseline: an undefended fleet serves correctly with
// zero defense activity — the baseline side of the scaling experiment.
func TestFleetNativeBaseline(t *testing.T) {
	p := uafProgram()
	f := New(Config{Workers: 2, Defended: false})
	inputs := [][]byte{{0}, {0}, {0}, {0}}
	results, err := f.Serve(p, nil, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Crashed() {
			t.Fatalf("request %d crashed: %v", i, res.Fault)
		}
		if out := (prog.Value{Bytes: res.Output}).Uint(); out != 0x5AFE {
			t.Errorf("request %d read %#x", i, out)
		}
	}
	st := f.Stats()
	if st.Defense != (Stats{}).Defense {
		t.Errorf("native fleet has defense activity: %+v", st.Defense)
	}
	if f.Table() != nil {
		t.Error("native fleet sealed a table")
	}
}

// TestFleetValidation covers config and input edges.
func TestFleetValidation(t *testing.T) {
	if w := New(Config{}).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Errorf("default Workers=%d, want GOMAXPROCS=%d", w, runtime.GOMAXPROCS(0))
	}
	f := New(Config{Workers: 2, Defended: true})
	if _, err := f.Serve(uafProgram(), nil, nil); err == nil {
		t.Error("Serve with no inputs succeeded")
	}
	// More workers than inputs: must not deadlock or drop requests.
	res, err := f.Serve(uafProgram(), nil, [][]byte{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] == nil {
		t.Fatal("single-input serve dropped its result")
	}
}

// TestFleetPoolReuseAcrossServes: a second Serve must be satisfied by
// pooled contexts, not fresh construction.
func TestFleetPoolReuseAcrossServes(t *testing.T) {
	p := uafProgram()
	coder, patches := analyzeUAF(t, p)
	f := New(Config{Workers: 2, Defended: true, Patches: patches})
	inputs := [][]byte{{0}, {0xEE}, {0}, {0}, {0xEE}, {0}}
	if _, err := f.Serve(p, coder, inputs); err != nil {
		t.Fatal(err)
	}
	built := f.Stats().ContextsBuilt
	if _, err := f.Serve(p, coder, inputs); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Requests != 12 {
		t.Errorf("Requests=%d, want 12", st.Requests)
	}
	// sync.Pool may theoretically drop entries under GC pressure, so
	// allow slack but catch the build-every-time regression.
	if st.ContextsBuilt > built+2 {
		t.Errorf("second Serve built %d new contexts (total %d), want pooled reuse",
			st.ContextsBuilt-built, st.ContextsBuilt)
	}
}

// TestFleetParallelSpeedup: with real cores available, defended
// serving must scale. Skipped on starved runners — the scaling curve
// is measured honestly by the fleet experiment instead.
func TestFleetParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		t.Skipf("GOMAXPROCS=%d, need >= 4 for a meaningful scaling check", procs)
	}
	p := uafProgram()
	coder, patches := analyzeUAF(t, p)
	inputs := make([][]byte, 512)
	for i := range inputs {
		inputs[i] = []byte{0}
	}
	measure := func(workers int) time.Duration {
		f := New(Config{Workers: workers, Defended: true, Patches: patches})
		if _, err := f.Serve(p, coder, inputs); err != nil { // warm the pool
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := f.Serve(p, coder, inputs); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	serial := measure(1)
	parallel := measure(4)
	if parallel >= serial {
		t.Errorf("4 workers (%v) not faster than 1 (%v)", parallel, serial)
	}
}
