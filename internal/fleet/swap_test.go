package fleet

import (
	"testing"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/telemetry"
)

func overflowPatch(ccid uint64) *patch.Set {
	set := patch.NewSet()
	set.Add(patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeOverflow})
	return set
}

// TestSwapTable pins the fleet-level rollout seam: SwapTable installs
// a new sealed table atomically, pooled contexts are re-pointed at
// checkout (with the generation bump that invalidates engine verdict
// caches), and contexts checked out before the swap keep their old —
// still immutable, still valid — table until they come back through
// Acquire.
func TestSwapTable(t *testing.T) {
	f := New(Config{Workers: 2, Defended: true, Patches: overflowPatch(0x1)})
	oldTable := f.Table()
	if oldTable == nil {
		t.Fatal("defended fleet has no table")
	}

	// One context checked out across the swap, one pooled through it.
	held, err := f.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := f.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	genPooled := pooled.Defender().TableGeneration()
	f.Release(pooled)

	newTable, err := f.SwapTable(overflowPatch(0x2))
	if err != nil {
		t.Fatal(err)
	}
	if f.Table() != newTable || newTable == oldTable {
		t.Fatal("SwapTable did not install a fresh table")
	}
	if st := f.Stats(); st.TableSwaps != 1 {
		t.Errorf("TableSwaps=%d, want 1", st.TableSwaps)
	}

	// The held context is untouched: swapping under a checked-out
	// worker would violate the Defender ownership contract.
	if held.Defender().SharedTable() != oldTable {
		t.Error("checked-out context re-pointed mid-flight")
	}
	if !held.Defender().ProbePatched(heapsim.FnMalloc, 0x1) {
		t.Error("old table no longer serves its in-flight context")
	}

	// The pooled context picks up the new table at its next checkout.
	// (Under -race sync.Pool may drop the Put; a fresh build points at
	// the new table too, so the table assertion holds either way — the
	// generation-bump check needs the recycled identity.)
	c, err := f.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if c.Defender().SharedTable() != newTable {
		t.Error("Acquire did not re-point the pooled context")
	}
	if c == pooled && c.Defender().TableGeneration() <= genPooled {
		t.Error("re-pointing did not advance the table generation")
	}
	if !c.Defender().ProbePatched(heapsim.FnMalloc, 0x2) {
		t.Error("new patch not probed after re-pointing")
	}
	if c.Defender().ProbePatched(heapsim.FnMalloc, 0x1) {
		t.Error("old patch still probed after re-pointing")
	}

	// Re-acquiring with no intervening swap is a no-op.
	f.Release(c)
	gen := c.Defender().TableGeneration()
	c2, err := f.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c && c2.Defender().TableGeneration() != gen {
		t.Error("Acquire bumped the generation without a table change")
	}
}

// TestSwapTableContract: only defended fleets can swap, and a swap
// with hit counting enabled preserves the telemetry wiring (the new
// table must be sealed with counters BEFORE it is shared).
func TestSwapTableContract(t *testing.T) {
	native := New(Config{Workers: 1})
	if _, err := native.SwapTable(overflowPatch(0x1)); err == nil {
		t.Error("SwapTable on a native fleet succeeded")
	}

	col := telemetry.New(telemetry.Config{})
	f := New(Config{Workers: 1, Defended: true, Patches: overflowPatch(0x1), Telemetry: col})
	nt, err := f.SwapTable(overflowPatch(0x2))
	if err != nil {
		t.Fatal(err)
	}
	nt.Lookup(patch.Key{Fn: heapsim.FnMalloc, CCID: 0x2})
	hits := f.Stats().PatchHits
	key := patch.Key{Fn: heapsim.FnMalloc, CCID: 0x2}
	if hits[key] != 1 {
		t.Errorf("swapped table does not count hits: %+v", hits)
	}
}

// TestDrainPool: draining discards pooled contexts so the next Acquire
// builds from scratch.
func TestDrainPool(t *testing.T) {
	f := New(Config{Workers: 2, Defended: true, Patches: overflowPatch(0x1)})
	a, err := f.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	f.Release(a)
	f.Release(b)

	if n := f.DrainPool(); n > 2 {
		t.Fatalf("DrainPool dropped %d contexts, want <= 2", n)
	} // (< 2 is possible under -race: sync.Pool drops Puts there)
	if n := f.DrainPool(); n != 0 {
		t.Fatalf("second DrainPool dropped %d contexts, want 0", n)
	}

	built := f.Stats().ContextsBuilt
	c, err := f.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if c == a || c == b {
		t.Error("Acquire returned a drained context")
	}
	if got := f.Stats().ContextsBuilt; got != built+1 {
		t.Errorf("ContextsBuilt=%d after drain+Acquire, want %d", got, built+1)
	}
}

// TestFinishRequest: the per-request accounting seam mirrors Serve's
// worker loop — counters, defense-stat merge, recycle.
func TestFinishRequest(t *testing.T) {
	p := uafProgram()
	coder, patches := analyzeUAF(t, p)
	f := New(Config{Workers: 1, Defended: true, Patches: patches})

	c, err := f.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	it, err := prog.New(p, prog.Config{Backend: c.Backend(), Coder: coder})
	if err != nil {
		t.Fatal(err)
	}
	res, err := it.Run([]byte{0xEE})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FinishRequest(c, res.Crashed()); err != nil {
		t.Fatal(err)
	}
	f.Release(c)

	st := f.Stats()
	if st.Requests != 1 {
		t.Errorf("Requests=%d, want 1", st.Requests)
	}
	if st.Crashes != uint64(boolToU64(res.Crashed())) {
		t.Errorf("Crashes=%d, crashed=%v", st.Crashes, res.Crashed())
	}
	if st.Resets != 1 {
		t.Errorf("Resets=%d, want 1", st.Resets)
	}
	if st.Defense.PatchedAllocs != 1 {
		t.Errorf("merged PatchedAllocs=%d, want 1", st.Defense.PatchedAllocs)
	}
}

func boolToU64(b bool) int {
	if b {
		return 1
	}
	return 0
}
