package fleet

import (
	"bytes"
	"reflect"
	"testing"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

// runOnEngine is runOn with an explicit engine: one request on a
// context, snapshotted.
func runOnEngine(t *testing.T, engine prog.Engine, ctx *Context, p *prog.Program, coder *encoding.Coder, input []byte) snapshot {
	t.Helper()
	it, err := prog.NewExec(p, prog.Config{Backend: ctx.Backend(), Coder: coder, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	res, err := it.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	return snap(t, res, ctx.Defender())
}

// TestFleetVMBitIdenticalAcrossReset: requests served by the bytecode
// VM on a RECYCLED context must be bit-identical to the same requests
// served by the tree interpreter on FRESH contexts — the strongest
// cross-product of the two equivalence claims (engine identity and
// recycling identity), over both allocators, including the guard-page
// crash requests.
func TestFleetVMBitIdenticalAcrossReset(t *testing.T) {
	uaf := uafProgram()
	uafCoder, uafPatches := analyzeUAF(t, uaf)
	ovf := overflowProgram()
	ovfCoder, ovfPatches := overflowSetup(t, ovf)

	cases := []struct {
		name    string
		p       *prog.Program
		coder   *encoding.Coder
		patches *patch.Set
		inputs  [][]byte
	}{
		{"uaf", uaf, uafCoder, uafPatches, [][]byte{{0x00}, {0xEE}, {0x00}, {0xEE}}},
		{"guard-crash", ovf, ovfCoder, ovfPatches, [][]byte{{0}, {1}, {0}, {1}}},
	}
	for _, kind := range []AllocKind{AllocBoundaryTag, AllocPool} {
		for _, c := range cases {
			t.Run(kind.String()+"/"+c.name, func(t *testing.T) {
				cfg := Config{Workers: 1, Defended: true, Patches: c.patches, Alloc: kind}

				// VM over one recycled context.
				vmFleet := New(cfg)
				ctx, err := vmFleet.newContext()
				if err != nil {
					t.Fatal(err)
				}
				var vmSnaps []snapshot
				for _, in := range c.inputs {
					vmSnaps = append(vmSnaps, runOnEngine(t, prog.EngineVM, ctx, c.p, c.coder, in))
					if err := ctx.Reset(); err != nil {
						t.Fatal(err)
					}
				}

				// Tree over fresh contexts.
				freshFleet := New(cfg)
				for i, in := range c.inputs {
					fresh, err := freshFleet.newContext()
					if err != nil {
						t.Fatal(err)
					}
					want := runOn(t, fresh, c.p, c.coder, in)
					if vmSnaps[i] != want {
						t.Errorf("request %d (%x): recycled VM diverges from fresh tree\nvm:   %+v\ntree: %+v",
							i, in, vmSnaps[i], want)
					}
				}
			})
		}
	}
}

// TestFleetVMReusedInstanceAcrossReset pins the inline-cache
// invalidation contract: ONE VM instance kept alive across
// Context.Reset must observe the rebuilt patch table (the defender
// bumps its generation on Reset) and still produce bit-identical
// snapshots to fresh tree-interpreter contexts. A stale verdict cache
// would surface as diverging PatchedAllocs or defense stats.
func TestFleetVMReusedInstanceAcrossReset(t *testing.T) {
	p := uafProgram()
	coder, patches := analyzeUAF(t, p)
	cfg := Config{Workers: 1, Defended: true, Patches: patches}

	f := New(cfg)
	ctx, err := f.newContext()
	if err != nil {
		t.Fatal(err)
	}
	vm, err := prog.NewExec(p, prog.Config{Backend: ctx.Backend(), Coder: coder, Engine: prog.EngineVM})
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{{0x00}, {0xEE}, {0x00}, {0xEE}, {0xEE}}
	var vmSnaps []snapshot
	for _, in := range inputs {
		res, err := vm.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		vmSnaps = append(vmSnaps, snap(t, res, ctx.Defender()))
		if err := ctx.Reset(); err != nil {
			t.Fatal(err)
		}
	}

	freshFleet := New(cfg)
	for i, in := range inputs {
		fresh, err := freshFleet.newContext()
		if err != nil {
			t.Fatal(err)
		}
		want := runOn(t, fresh, p, coder, in)
		if vmSnaps[i] != want {
			t.Errorf("request %d: reused VM across Reset diverges from fresh tree\nvm:   %+v\ntree: %+v",
				i, vmSnaps[i], want)
		}
	}
}

// TestFleetServeEngines: full parallel Serve must return the same
// per-request results and merged fleet statistics under all three
// engines. The compiled serve uses a tier-up threshold in the middle
// of the per-worker request count, so workers promote functions while
// the corpus is in flight and later requests run on closure code the
// earlier ones compiled — through the shared fleet-wide cache.
func TestFleetServeEngines(t *testing.T) {
	p := uafProgram()
	coder, patches := analyzeUAF(t, p)

	inputs := make([][]byte, 24)
	for i := range inputs {
		if i%3 == 0 {
			inputs[i] = []byte{0xEE}
		} else {
			inputs[i] = []byte{0x00}
		}
	}
	serve := func(engine prog.Engine, tierUp uint64) ([]*prog.Result, Stats) {
		f := New(Config{Workers: 4, Defended: true, Patches: patches, Engine: engine, TierUp: tierUp})
		res, err := f.Serve(p, coder, inputs)
		if err != nil {
			t.Fatal(err)
		}
		return res, f.Stats()
	}
	tres, tstats := serve(prog.EngineTree, 0)
	for _, c := range []struct {
		name   string
		engine prog.Engine
		tierUp uint64
	}{
		{"vm", prog.EngineVM, 0},
		{"compiled-mid-corpus", prog.EngineCompiled, 3},
		{"compiled-immediate", prog.EngineCompiled, 1},
	} {
		vres, vstats := serve(c.engine, c.tierUp)
		for i := range tres {
			if !bytes.Equal(tres[i].Output, vres[i].Output) ||
				tres[i].Steps != vres[i].Steps ||
				tres[i].Cycles != vres[i].Cycles ||
				tres[i].Crashed() != vres[i].Crashed() {
				t.Errorf("request %d diverges across engines\ntree: %+v\n%s:   %+v", i, tres[i], c.name, vres[i])
			}
		}
		// ContextsBuilt depends on pool behavior, not the engine
		// contract; everything else must match exactly.
		ts, vs := tstats, vstats
		ts.ContextsBuilt, vs.ContextsBuilt = 0, 0
		if !reflect.DeepEqual(ts, vs) {
			t.Errorf("fleet stats diverge\ntree: %+v\n%s:   %+v", ts, c.name, vs)
		}
	}
}
