package serve

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"heaptherapy/internal/defense"
	"heaptherapy/internal/workload"
)

// TestServePolicyShadowBoundContainsFirstCrash: under the ShadowBound
// policy the crash request — a spatial overread — is contained by the
// bounds check on the VERY FIRST hit, with no patches, no capture, no
// rollout: the family defends every allocation instead of waiting for
// the crash→analyze→swap loop.
func TestServePolicyShadowBoundContainsFirstCrash(t *testing.T) {
	s, ts, svc := newNginxServer(t, func(c *Config) {
		c.Family = defense.FamilyShadowBound
	})

	resp, _ := post(t, ts, "/request", svc.CrashRequest())
	if got := resp.Header.Get("X-HTP-Outcome"); got != OutcomeContained {
		t.Fatalf("first attack outcome %q, want %q (bounds check needs no rollout)", got, OutcomeContained)
	}
	st := s.Stats()
	if st.Wild != 0 || st.Contained == 0 {
		t.Errorf("stats wild=%d contained=%d, want 0 wild", st.Wild, st.Contained)
	}
	if st.Rollouts != 0 || st.RolloutFails != 0 {
		t.Errorf("contained crash still entered the rollout path: %+v", st)
	}

	// Benign traffic is untouched by the per-access checking.
	resp, _ = post(t, ts, "/request", svc.BenignRequest())
	if resp.StatusCode != http.StatusOK {
		t.Errorf("benign request: %d", resp.StatusCode)
	}
}

// TestServePolicyBenignEquivalence: benign responses are byte-for-byte
// identical whichever policy the server runs — the families differ in
// what they do to attacks, never to correct traffic.
func TestServePolicyBenignEquivalence(t *testing.T) {
	svc := workload.Nginx()
	body := func(fam defense.Family) []byte {
		_, ts, _ := newNginxServer(t, func(c *Config) { c.Family = fam })
		resp, out := post(t, ts, "/request", svc.BenignRequest())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%v benign request: %d", fam, resp.StatusCode)
		}
		return out
	}
	want := body(defense.FamilyHT)
	for _, fam := range []defense.Family{defense.FamilyShadowBound, defense.FamilyMESH} {
		if got := body(fam); string(got) != string(want) {
			t.Errorf("%v benign response diverged from HT", fam)
		}
	}
}

// TestServePolicyNoGoroutineLeak mirrors TestServeNoGoroutineLeak for
// the non-default policies: a full lifecycle — traffic, a crash, drain
// — returns the goroutine count to its baseline under each family.
func TestServePolicyNoGoroutineLeak(t *testing.T) {
	for _, fam := range []defense.Family{defense.FamilyShadowBound, defense.FamilyMESH} {
		fam := fam
		t.Run(fam.String(), func(t *testing.T) {
			before := runtime.NumGoroutine()

			svc := workload.Nginx()
			p, err := svc.VulnerableProgram()
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(Config{Program: p, BenignSample: svc.BenignRequest(), Workers: 3, Family: fam})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())

			for i := 0; i < 5; i++ {
				resp, _ := post(t, ts, "/request", svc.BenignRequest())
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("benign request %d: %d", i, resp.StatusCode)
				}
			}
			post(t, ts, "/request", svc.CrashRequest())

			if got := drainAndCount(t, s, ts, before); got > before {
				t.Errorf("%v: goroutines %d after drain, want <= %d", fam, got, before)
			}
		})
	}
}
