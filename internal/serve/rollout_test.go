package serve

import (
	"bytes"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"heaptherapy/internal/prog"
)

// TestLiveRolloutE2E is the acceptance test for the headline
// mechanism, end to end under live concurrent traffic:
//
//  1. a seeded attack crashes a defended-but-unpatched tenant (wild
//     fault, 500);
//  2. the server re-analyzes the crashing input off the request path,
//     builds a patch table, and swaps it in atomically — no restart;
//  3. replaying the attack is now CONTAINED (guard page, 502) and the
//     patch's hits show up in /metrics;
//  4. benign traffic hammering the server through all of it never
//     fails a single request.
//
// Run under -race this also proves the swap publication is clean.
func TestLiveRolloutE2E(t *testing.T) {
	for _, engine := range []prog.Engine{prog.EngineTree, prog.EngineVM} {
		t.Run(engine.String(), func(t *testing.T) {
			s, ts, svc := newNginxServer(t, func(c *Config) {
				c.Workers = 4
				c.MaxInFlight = 64
				c.Engine = engine
			})

			// Benign traffic, continuous through the whole incident.
			stop := make(chan struct{})
			var benignOK, benignFail atomic.Uint64
			var wg sync.WaitGroup
			for c := 0; c < 3; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						resp, out := post(t, ts, "/request", svc.BenignRequest())
						if resp.StatusCode == http.StatusOK && !bytes.Contains(out, svc.Secret()) {
							benignOK.Add(1)
						} else {
							benignFail.Add(1)
						}
					}
				}()
			}

			// The attack. Unpatched, it escapes the defense: wild fault.
			resp, _ := post(t, ts, "/request?tenant=attacker", svc.CrashRequest())
			if resp.StatusCode != http.StatusInternalServerError {
				t.Fatalf("unpatched attack: %d, want 500", resp.StatusCode)
			}
			if got := resp.Header.Get("X-HTP-Outcome"); got != OutcomeWild {
				t.Fatalf("unpatched attack outcome %q, want %q", got, OutcomeWild)
			}

			// The server patches itself from the trapped crash.
			waitFor(t, "live rollout", func() bool { return s.Stats().Rollouts >= 1 })
			if s.fleet.Swaps() == 0 {
				t.Fatal("rollout reported but no table swap")
			}

			// Replay: the same attack is now contained by the guard
			// page. The first worker to pick it up has already synced
			// (sync happens before each request), so this is immediate,
			// not eventual.
			resp, _ = post(t, ts, "/request?tenant=attacker", svc.CrashRequest())
			if got := resp.Header.Get("X-HTP-Outcome"); got != OutcomeContained {
				t.Fatalf("patched attack outcome %q, want %q (status %d)", got, OutcomeContained, resp.StatusCode)
			}
			if resp.StatusCode != http.StatusBadGateway {
				t.Errorf("patched attack status %d, want 502", resp.StatusCode)
			}

			// The patch is live: benign traffic's allocations hit it.
			waitFor(t, "patch hits in metrics", func() bool {
				m := s.Metrics()
				return m.TableSwaps >= 1 && len(m.PatchHits) > 0
			})

			close(stop)
			wg.Wait()
			if benignFail.Load() != 0 {
				t.Fatalf("%d benign requests failed during the incident (%d ok)", benignFail.Load(), benignOK.Load())
			}
			if benignOK.Load() == 0 {
				t.Fatal("no benign traffic flowed during the incident")
			}

			st := s.Stats()
			if st.Wild == 0 || st.Contained == 0 {
				t.Errorf("wild=%d contained=%d, want both nonzero", st.Wild, st.Contained)
			}
		})
	}
}
