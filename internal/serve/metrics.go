package serve

import (
	"encoding/json"
	"net/http"
	"sort"

	"heaptherapy/internal/defense"
	"heaptherapy/internal/telemetry"
)

// PatchHit is one sealed-table entry's lookup tally, flattened for
// JSON (the fleet reports hits keyed by {FUN, CCID} structs).
type PatchHit struct {
	Fn   string `json:"fn"`
	CCID uint64 `json:"ccid"`
	Hits uint64 `json:"hits"`
}

// Metrics is the /metrics document: the front-end's own counters, the
// fleet's merged request/defense statistics, the current table's
// per-patch hit tallies, and the raw telemetry snapshot when a
// collector is attached.
type Metrics struct {
	Program    string              `json:"program"`
	Workers    int                 `json:"workers"`
	Front      Stats               `json:"front"`
	Requests   uint64              `json:"requests"`
	Crashes    uint64              `json:"crashes"`
	TableSwaps uint64              `json:"table_swaps"`
	Patches    int                 `json:"patches"`
	Defense    defense.Stats       `json:"defense"`
	PatchHits  []PatchHit          `json:"patch_hits,omitempty"`
	Telemetry  *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// Metrics builds the /metrics document (also used by the CLI's
// shutdown summary).
func (s *Server) Metrics() Metrics {
	fs := s.fleet.Stats()
	s.patchMu.Lock()
	npatches := s.patches.Len()
	s.patchMu.Unlock()
	m := Metrics{
		Program:    s.cfg.Program.Name,
		Workers:    s.cfg.Workers,
		Front:      s.Stats(),
		Requests:   fs.Requests,
		Crashes:    fs.Crashes,
		TableSwaps: fs.TableSwaps,
		Patches:    npatches,
		Defense:    fs.Defense,
		Telemetry:  fs.Telemetry,
	}
	for k, n := range fs.PatchHits {
		if n == 0 {
			continue
		}
		m.PatchHits = append(m.PatchHits, PatchHit{Fn: k.Fn.String(), CCID: k.CCID, Hits: n})
	}
	sort.Slice(m.PatchHits, func(i, j int) bool {
		a, b := m.PatchHits[i], m.PatchHits[j]
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		return a.CCID < b.CCID
	})
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Metrics()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
