package serve

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"heaptherapy/internal/defense"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/workload"
)

// TestRolloutAnalyzeFailure: when shadow re-analysis fails, the server
// counts the failure, keeps serving on the old table, and benign
// traffic never notices. Degraded, not down.
func TestRolloutAnalyzeFailure(t *testing.T) {
	s, ts, svc := newNginxServer(t, func(c *Config) {
		c.Analyze = func(p *prog.Program, attack []byte) (*patch.Set, error) {
			return nil, errors.New("injected: shadow workbench unavailable")
		}
	})

	resp, _ := post(t, ts, "/request", svc.CrashRequest())
	if got := resp.Header.Get("X-HTP-Outcome"); got != OutcomeWild {
		t.Fatalf("attack outcome %q, want wild", got)
	}
	waitFor(t, "rollout failure", func() bool { return s.Stats().RolloutFails >= 1 })

	if s.fleet.Swaps() != 0 {
		t.Error("failed analysis still swapped a table")
	}
	// Old table keeps serving: the attack stays wild, benign stays OK.
	resp, _ = post(t, ts, "/request", svc.CrashRequest())
	if got := resp.Header.Get("X-HTP-Outcome"); got != OutcomeWild {
		t.Errorf("post-failure attack outcome %q, want wild", got)
	}
	resp, _ = post(t, ts, "/request", svc.BenignRequest())
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-failure benign request: %d", resp.StatusCode)
	}
}

// TestRolloutSwapFailure: a failure building/installing the new table
// (injected through the swap seam) degrades the same way — counted,
// old table serving.
func TestRolloutSwapFailure(t *testing.T) {
	s, ts, svc := newNginxServer(t, nil)
	s.swapFn = func(*patch.Set) (*defense.SealedTable, error) {
		return nil, errors.New("injected: table build failed")
	}

	post(t, ts, "/request", svc.CrashRequest())
	waitFor(t, "rollout failure", func() bool { return s.Stats().RolloutFails >= 1 })
	if s.Stats().Rollouts != 0 || s.fleet.Swaps() != 0 {
		t.Error("failed swap recorded as a rollout")
	}
	resp, _ := post(t, ts, "/request", svc.BenignRequest())
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-failure benign request: %d", resp.StatusCode)
	}
}

// TestRolloutEmptyAnalysis: an analysis that returns no patches is a
// rollout failure, not a swap to an empty table.
func TestRolloutEmptyAnalysis(t *testing.T) {
	s, ts, svc := newNginxServer(t, func(c *Config) {
		c.Analyze = func(p *prog.Program, attack []byte) (*patch.Set, error) {
			return patch.NewSet(), nil
		}
	})
	post(t, ts, "/request", svc.CrashRequest())
	waitFor(t, "rollout failure", func() bool { return s.Stats().RolloutFails >= 1 })
	if s.fleet.Swaps() != 0 {
		t.Error("empty analysis swapped a table")
	}
}

// TestSwapRacingDrain: a rollout in flight when Drain begins completes
// cleanly — the drain waits for it, the swap lands on the (now idle)
// fleet, and nothing deadlocks or leaks.
func TestSwapRacingDrain(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	s, ts, svc := newNginxServer(t, func(c *Config) {
		c.Analyze = func(p *prog.Program, attack []byte) (*patch.Set, error) {
			close(entered)
			<-release
			return patch.NewSet(patch.Patch{Fn: heapsim.FnMalloc, CCID: 0x1, Types: patch.TypeOverflow}), nil
		}
	})

	post(t, ts, "/request", svc.CrashRequest())
	<-entered // re-analysis is mid-flight

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("Drain returned while a rollout was still re-analyzing")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain deadlocked against the in-flight rollout")
	}
	if s.Stats().Rollouts != 1 || s.fleet.Swaps() != 1 {
		t.Errorf("rollout racing drain: rollouts=%d swaps=%d, want 1/1",
			s.Stats().Rollouts, s.fleet.Swaps())
	}
	_ = ts
}

// TestServeNoGoroutineLeak: a full serve lifecycle — traffic, a crash,
// a live rollout, drain — returns the goroutine count to its baseline.
func TestServeNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	svc := workload.Nginx()
	p, err := svc.VulnerableProgram()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Program: p, BenignSample: svc.BenignRequest(), Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	for i := 0; i < 5; i++ {
		resp, _ := post(t, ts, "/request", svc.BenignRequest())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("benign request %d: %d", i, resp.StatusCode)
		}
	}
	post(t, ts, "/request", svc.CrashRequest())
	waitFor(t, "rollout", func() bool {
		st := s.Stats()
		return st.Rollouts+st.RolloutFails >= 1
	})

	if got := drainAndCount(t, s, ts, before); got > before {
		t.Errorf("goroutines %d after drain, want <= %d", got, before)
	}
}

var _ = fmt.Sprint
