// Package serve is the live-traffic front-end over the fleet runtime:
// an HTTP server that maps each request onto a pooled defended tenant
// context, executes the service program, and — the point of the
// exercise — rolls out code-less heap patches under load with zero
// downtime. When a defended tenant traps a wild heap fault, the
// offending request is packaged as a forensic bundle (the campaign
// interchange format), re-executed on a shadow-analyzed workbench off
// the request path, and the patches that emerge are sealed into a new
// table and swapped in atomically. In-flight requests finish on the
// table they started with (sealed tables are immutable, so the old one
// stays valid forever); the next checkout of every pooled context
// re-points it and bumps its Defender's table generation, invalidating
// every engine verdict cache. No restart, no dropped requests — the
// paper's "patching without restarting" claim (Section I), made
// operational.
//
// The front-end also carries the unglamorous production machinery:
// admission control (a bounded in-flight semaphore), backpressure
// (429 + Retry-After once saturated), per-tenant quotas, a /metrics
// endpoint backed by the telemetry collector, and graceful drain.
package serve

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"heaptherapy/internal/analysis"
	"heaptherapy/internal/campaign"
	"heaptherapy/internal/defense"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/fleet"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/telemetry"
)

// Request outcomes, stamped into the X-HTP-Outcome response header.
const (
	// OutcomeOK is a request that completed normally.
	OutcomeOK = "ok"
	// OutcomeContained is a request that faulted on a guard page: the
	// defense converted an exploit into a clean per-request crash.
	OutcomeContained = "contained"
	// OutcomeWild is a request that faulted off any guard page — an
	// unpatched vulnerability. It triggers a live patch rollout.
	OutcomeWild = "wild"
)

// maxRequestBytes bounds a request body read.
const maxRequestBytes = 1 << 20

// Config configures a Server.
type Config struct {
	// Program is the linked service program; each request is one run
	// with the request body as input. Required.
	Program *prog.Program
	// Coder is the calling-context coder; built from the program's
	// graph (incremental scheme, PCC encoder) when nil.
	Coder *encoding.Coder
	// BenignSample is a known-good request recorded into forensic
	// bundles for differential replay. Optional.
	BenignSample []byte
	// Workers is the number of worker goroutines, each owning one
	// defended tenant context for its lifetime (0 = 4).
	Workers int
	// MaxInFlight bounds admitted-but-unfinished requests; beyond it
	// the server sheds load with 429 + Retry-After (0 = 4*Workers).
	MaxInFlight int
	// TenantQuota bounds one tenant's share of MaxInFlight
	// (0 = MaxInFlight: no per-tenant isolation).
	TenantQuota int
	// Patches is the initial patch configuration (nil = none: the
	// server starts unpatched and patches itself from live crashes).
	Patches *patch.Set
	// Engine selects the execution substrate (tree, vm, compiled).
	Engine prog.Engine
	// TierUp is the compiled engine's promotion threshold.
	TierUp uint64
	// MaxSteps bounds each request's execution (0 = engine default).
	MaxSteps uint64
	// Space configures each tenant's address space.
	Space mem.Config
	// Alloc selects the allocator under each tenant's defense layer.
	Alloc fleet.AllocKind
	// Family selects the defense policy family every tenant runs
	// (default defense.FamilyHT). Live patch rollout still swaps the
	// shared table under non-HT families (the seam is policy-agnostic),
	// though only HT consults its contents.
	Family defense.Family
	// Telemetry collects per-tenant counters and events; /metrics
	// serves its JSON snapshot. Optional.
	Telemetry *telemetry.Collector
	// Analyze is the shadow re-analysis seam: given the program and a
	// crashing input, return the patches to roll out. Nil uses the
	// offline analyzer (shadow memory + red zones) in-process. Tests
	// inject failures here.
	Analyze func(p *prog.Program, attack []byte) (*patch.Set, error)
	// RolloutQueue bounds crash bundles waiting for re-analysis;
	// further crashes drop their bundles (counted, not fatal) until
	// the queue drains (0 = 16).
	RolloutQueue int
}

// Stats is a point-in-time snapshot of front-end activity.
type Stats struct {
	// Admitted counts requests that passed admission control.
	Admitted uint64 `json:"admitted"`
	// Rejected counts 429s from the in-flight bound.
	Rejected uint64 `json:"rejected"`
	// QuotaRejected counts 429s from per-tenant quotas.
	QuotaRejected uint64 `json:"quota_rejected"`
	// Contained counts requests ended by a guard-page fault.
	Contained uint64 `json:"contained"`
	// Wild counts requests ended by a wild fault.
	Wild uint64 `json:"wild"`
	// Rollouts counts successful live patch rollouts (table swaps).
	Rollouts uint64 `json:"rollouts"`
	// RolloutFails counts rollout attempts that failed and left the
	// previous table serving.
	RolloutFails uint64 `json:"rollout_fails"`
	// BundleDrops counts crash bundles dropped on a full rollout
	// queue.
	BundleDrops uint64 `json:"bundle_drops"`
	// Draining reports that the server has begun graceful drain.
	Draining bool `json:"draining"`
}

// job is one admitted request on its way to a worker.
type job struct {
	input []byte
	resp  chan jobResult
}

// jobResult is what a worker hands back to the HTTP handler.
type jobResult struct {
	output  []byte
	outcome string
	epoch   uint64 // fleet table-swap count when the request ran
	err     error
}

// tenantState is one tenant's admission bookkeeping.
type tenantState struct {
	inflight atomic.Int64
}

// Server is the live-traffic front-end. Construct with New, wire
// Handler into an http.Server (or httptest), and Drain before exit.
type Server struct {
	cfg   Config
	fleet *fleet.Fleet
	coder *encoding.Coder
	tel   *telemetry.Scope // front-end's own scope (rollout counters)

	jobs    chan *job
	bundles chan *campaign.Bundle

	inflight chan struct{} // admission tokens

	tenantMu sync.Mutex
	tenants  map[string]*tenantState

	// swapFn installs a merged patch set as the fleet's new sealed
	// table. It is a seam so fault-injection tests can fail the
	// install step; production is fleet.SwapTable.
	swapFn  func(*patch.Set) (*defense.SealedTable, error)
	analyze func(p *prog.Program, attack []byte) (*patch.Set, error)

	// patchMu serializes rollouts: the cumulative patch set and the
	// swap that publishes it move together.
	patchMu sync.Mutex
	patches *patch.Set

	drainMu  sync.Mutex
	draining bool
	handlers sync.WaitGroup // HTTP handlers holding jobs in flight
	workers  sync.WaitGroup
	rollout  sync.WaitGroup

	admitted      atomic.Uint64
	rejected      atomic.Uint64
	quotaRejected atomic.Uint64
	contained     atomic.Uint64
	wild          atomic.Uint64
	rollouts      atomic.Uint64
	rolloutFails  atomic.Uint64
	bundleDrops   atomic.Uint64
}

// New builds the front-end: a defended fleet, one worker goroutine per
// tenant context (each holding a persistent executor, so engine
// verdict caches live long enough for generation invalidation to
// matter), and the off-path rollout worker.
func New(cfg Config) (*Server, error) {
	if cfg.Program == nil {
		return nil, fmt.Errorf("serve: Config.Program is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4 * cfg.Workers
	}
	if cfg.TenantQuota <= 0 || cfg.TenantQuota > cfg.MaxInFlight {
		cfg.TenantQuota = cfg.MaxInFlight
	}
	if cfg.RolloutQueue <= 0 {
		cfg.RolloutQueue = 16
	}
	coder := cfg.Coder
	if coder == nil {
		p := cfg.Program
		plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
		if err != nil {
			return nil, fmt.Errorf("serve: encoding plan: %w", err)
		}
		if coder, err = encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan); err != nil {
			return nil, fmt.Errorf("serve: coder: %w", err)
		}
	}
	patches := patch.NewSet()
	if cfg.Patches != nil {
		patches.Merge(cfg.Patches)
	}

	f := fleet.New(fleet.Config{
		Workers:   cfg.Workers,
		Defended:  true,
		Patches:   patches,
		Alloc:     cfg.Alloc,
		Family:    cfg.Family,
		Space:     cfg.Space,
		Engine:    cfg.Engine,
		TierUp:    cfg.TierUp,
		Telemetry: cfg.Telemetry,
	})

	s := &Server{
		cfg:      cfg,
		fleet:    f,
		coder:    coder,
		jobs:     make(chan *job),
		bundles:  make(chan *campaign.Bundle, cfg.RolloutQueue),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		tenants:  make(map[string]*tenantState),
		patches:  patches,
	}
	if cfg.Telemetry != nil {
		s.tel = cfg.Telemetry.Scope()
	}
	s.swapFn = f.SwapTable
	s.analyze = cfg.Analyze
	if s.analyze == nil {
		s.analyze = func(p *prog.Program, attack []byte) (*patch.Set, error) {
			a := &analysis.Analyzer{Coder: coder, MaxSteps: cfg.MaxSteps}
			rep, err := a.Analyze(p, attack)
			if err != nil {
				return nil, err
			}
			if rep.Patches.Len() == 0 {
				return nil, fmt.Errorf("serve: re-analysis produced no patches (warnings: %d)", len(rep.Warnings))
			}
			return rep.Patches, nil
		}
	}

	// Compile once for the bytecode engines; every worker shares the
	// immutable artifact (and, for the compiled engine, one closure
	// cache — the fleet's one-reader-many-writers shape again).
	var compiled *prog.Compiled
	var closures *prog.ClosureCache
	switch cfg.Engine {
	case prog.EngineTree:
	case prog.EngineVM, prog.EngineCompiled:
		var err error
		if compiled, err = prog.Compile(cfg.Program, coder); err != nil {
			return nil, fmt.Errorf("serve: compiling program: %w", err)
		}
		if cfg.Engine == prog.EngineCompiled {
			closures = prog.NewClosureCache(compiled)
		}
	default:
		return nil, fmt.Errorf("serve: unknown engine %v", cfg.Engine)
	}

	// Build every worker synchronously so New fails cleanly instead of
	// leaking goroutines on a bad config.
	for i := 0; i < cfg.Workers; i++ {
		ctx, err := f.Acquire()
		if err != nil {
			return nil, fmt.Errorf("serve: tenant context: %w", err)
		}
		var it prog.Exec
		pcfg := prog.Config{Backend: ctx.Backend(), Coder: coder, MaxSteps: cfg.MaxSteps}
		switch {
		case closures != nil:
			pcfg.TierUp = cfg.TierUp
			pcfg.Closures = closures
			it, err = prog.NewMachine(compiled, pcfg)
		case compiled != nil:
			it, err = prog.NewVM(compiled, pcfg)
		default:
			it, err = prog.New(cfg.Program, pcfg)
		}
		if err != nil {
			return nil, fmt.Errorf("serve: executor: %w", err)
		}
		s.workers.Add(1)
		go s.worker(ctx, it)
	}

	s.rollout.Add(1)
	go s.rolloutWorker()
	return s, nil
}

// worker is one tenant's request loop: it owns its context and
// executor for the server's lifetime, re-points at the current sealed
// table before each request (the rollout pickup), and recycles the
// context after each one.
func (s *Server) worker(ctx *fleet.Context, it prog.Exec) {
	defer s.workers.Done()
	for j := range s.jobs {
		// Pick up any rolled-out table. The generation bump inside
		// invalidates the executor's patch-verdict inline caches.
		ctx.SyncTable(s.fleet)
		epoch := s.fleet.Swaps()

		res, err := it.Run(j.input)
		if err != nil {
			// Engine-level failure, not a guest crash: recycle and
			// surface the error.
			if rerr := s.fleet.FinishRequest(ctx, false); rerr != nil {
				err = fmt.Errorf("%w (recycle: %v)", err, rerr)
			}
			j.resp <- jobResult{err: err, epoch: epoch}
			continue
		}

		r := jobResult{output: res.Output, outcome: OutcomeOK, epoch: epoch}
		if res.Crashed() {
			r.outcome = s.classify(ctx, res.Fault)
			if r.outcome == OutcomeWild {
				s.captureBundle(j.input, res.Fault)
			}
		}
		if err := s.fleet.FinishRequest(ctx, res.Crashed()); err != nil {
			r.err = err
		}
		j.resp <- r
	}
	s.fleet.Release(ctx)
}

// classify decides whether a faulted request was contained by the
// defense — a deliberate policy rejection (bounds check, double-free
// abort) or a guard-page hit (the fault landed on ProtNone) — or
// escaped wild (off the mapping, or an unprotected page).
func (s *Server) classify(ctx *fleet.Context, fault error) string {
	if defense.IsContainmentFault(fault) {
		s.contained.Add(1)
		return OutcomeContained
	}
	if f, ok := mem.AsFault(fault); ok {
		if prot, err := ctx.Space().ProtAt(f.Addr); err == nil && prot == mem.ProtNone {
			s.contained.Add(1)
			return OutcomeContained
		}
	}
	s.wild.Add(1)
	return OutcomeWild
}

// captureBundle packages a wild crash for off-path re-analysis. The
// enqueue never blocks the request path: a full rollout queue drops
// the bundle (the next identical crash will re-capture it).
func (s *Server) captureBundle(input []byte, fault error) {
	b := campaign.LiveBundle(s.cfg.Program.Name, s.cfg.BenignSample, input, fault.Error(), nil)
	select {
	case s.bundles <- b:
	default:
		s.bundleDrops.Add(1)
	}
}

// rolloutWorker drains crash bundles: each one is re-analyzed under
// shadow memory and, when patches emerge, merged into the cumulative
// set and sealed into a new table that SwapTable publishes atomically.
// Every failure path leaves the previous table serving.
func (s *Server) rolloutWorker() {
	defer s.rollout.Done()
	for b := range s.bundles {
		s.runRollout(b)
	}
}

func (s *Server) runRollout(b *campaign.Bundle) {
	attack, err := b.AttackInput()
	if err != nil {
		s.noteRolloutFail()
		return
	}
	set, err := s.analyze(s.cfg.Program, attack)
	if err != nil || set == nil || set.Len() == 0 {
		s.noteRolloutFail()
		return
	}
	s.patchMu.Lock()
	s.patches.Merge(set)
	_, err = s.swapFn(s.patches)
	s.patchMu.Unlock()
	if err != nil {
		s.noteRolloutFail()
		return
	}
	s.rollouts.Add(1)
	s.tel.Inc(telemetry.CtrRollouts)
}

func (s *Server) noteRolloutFail() {
	s.rolloutFails.Add(1)
	s.tel.Inc(telemetry.CtrRolloutFails)
}

// Stats snapshots front-end counters.
func (s *Server) Stats() Stats {
	s.drainMu.Lock()
	draining := s.draining
	s.drainMu.Unlock()
	return Stats{
		Admitted:      s.admitted.Load(),
		Rejected:      s.rejected.Load(),
		QuotaRejected: s.quotaRejected.Load(),
		Contained:     s.contained.Load(),
		Wild:          s.wild.Load(),
		Rollouts:      s.rollouts.Load(),
		RolloutFails:  s.rolloutFails.Load(),
		BundleDrops:   s.bundleDrops.Load(),
		Draining:      draining,
	}
}

// Fleet exposes the underlying fleet (tests and the CLI read its
// stats; production code should not reach around the front-end).
func (s *Server) Fleet() *fleet.Fleet { return s.fleet }

// Drain performs graceful shutdown: new requests get 503, in-flight
// requests run to completion on whichever table they started with,
// workers and the rollout worker exit, and the context pool is
// released. Drain returns when everything has stopped; it is safe to
// call once. The HTTP listener itself is the caller's to close
// (http.Server.Shutdown), in either order.
func (s *Server) Drain() {
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		return
	}
	s.draining = true
	s.drainMu.Unlock()

	// In-flight handlers finish (their jobs complete on old tables)...
	s.handlers.Wait()
	// ...then workers exit and release their contexts...
	close(s.jobs)
	s.workers.Wait()
	// ...then the rollout queue drains: a swap racing drain is allowed
	// to complete — the table install is atomic and tableless workers
	// are already gone, so it merely becomes the table a restarted
	// fleet would inherit.
	close(s.bundles)
	s.rollout.Wait()
	s.fleet.DrainPool()
}

// tenant returns the per-tenant admission state, creating it on first
// sight.
func (s *Server) tenant(name string) *tenantState {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	t := s.tenants[name]
	if t == nil {
		t = &tenantState{}
		s.tenants[name] = t
	}
	return t
}

// Handler returns the HTTP front-end:
//
//	POST /request?tenant=NAME  body = service input, reply = service output
//	GET  /metrics              JSON: fleet + front-end + telemetry
//	GET  /healthz              "ok"
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /request", s.handleRequest)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

func (s *Server) handleRequest(w http.ResponseWriter, r *http.Request) {
	// Drain gate: registering with the handler group must be atomic
	// with the draining check, or Drain could close s.jobs under us.
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	s.handlers.Add(1)
	s.drainMu.Unlock()
	defer s.handlers.Done()

	// Admission: a token per in-flight request, shed load when out.
	select {
	case s.inflight <- struct{}{}:
	default:
		s.rejected.Add(1)
		s.tel.Inc(telemetry.CtrRejected)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "saturated", http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.inflight }()

	// Per-tenant quota inside the global bound.
	name := r.URL.Query().Get("tenant")
	if name == "" {
		name = "default"
	}
	t := s.tenant(name)
	if n := t.inflight.Add(1); int(n) > s.cfg.TenantQuota {
		t.inflight.Add(-1)
		s.quotaRejected.Add(1)
		s.tel.Inc(telemetry.CtrRejected)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "tenant quota exceeded", http.StatusTooManyRequests)
		return
	}
	defer t.inflight.Add(-1)

	input, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
	if err != nil {
		http.Error(w, "reading request", http.StatusBadRequest)
		return
	}

	j := &job{input: input, resp: make(chan jobResult, 1)}
	s.admitted.Add(1)
	s.jobs <- j
	res := <-j.resp

	w.Header().Set("X-HTP-Epoch", fmt.Sprint(res.epoch))
	if res.err != nil {
		http.Error(w, res.err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("X-HTP-Outcome", res.outcome)
	switch res.outcome {
	case OutcomeOK:
		w.WriteHeader(http.StatusOK)
		w.Write(res.output)
	case OutcomeContained:
		// The tenant crashed cleanly; the request is lost, the server
		// is not.
		http.Error(w, "request contained by defense", http.StatusBadGateway)
	default:
		http.Error(w, "request crashed", http.StatusInternalServerError)
	}
}

// RetryAfter is how long a shed client should back off. Exported so
// load generators agree with the server.
const RetryAfter = time.Second
