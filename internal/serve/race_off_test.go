//go:build !race

package serve

// Test scaling without the race detector: full-size soak and a slow
// request long enough (~1s) to be reliably in flight while admission
// is probed.
const (
	slowRequestN = 10000 // compute units of the deterministic slow request
	soakClients  = 8
	soakRequests = 60 // per client
	soakSwaps    = 25
)
