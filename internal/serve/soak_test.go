package serve

import (
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"heaptherapy/internal/analysis"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

// TestHotSwapSoak is the concurrency soak for zero-downtime rollout:
// soakClients goroutines hammer benign traffic while a swapper
// replaces the sealed table soakSwaps times mid-flight. The contract
// under proof (run it with -race):
//
//   - zero failed, zero dropped requests — every response is a clean
//     200 with the right body;
//   - requests that started before a swap finish on their old table
//     (the epoch header never exceeds the swaps performed when the
//     request ran);
//   - post-swap requests observe the patched table: the final metrics
//     show hits on the rolled-out patch under the final epoch.
func TestHotSwapSoak(t *testing.T) {
	s, ts, svc := newNginxServer(t, func(c *Config) {
		c.Workers = 4
		c.MaxInFlight = 256
		c.Engine = prog.EngineVM
	})

	// The rolled-out patch set is the real one: re-analysis of the
	// crashing request, exactly what a live rollout would install.
	a := &analysis.Analyzer{Coder: s.coder}
	rep, err := a.Analyze(s.cfg.Program, svc.CrashRequest())
	if err != nil || rep.Patches.Len() == 0 {
		t.Fatalf("analysis: %v (patches %d)", err, rep.Patches.Len())
	}

	var wg sync.WaitGroup
	var fails, maxEpoch atomic.Uint64
	for c := 0; c < soakClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := "/request?tenant=t" + strconv.Itoa(c)
			for i := 0; i < soakRequests; i++ {
				resp, out := post(t, ts, tenant, svc.BenignRequest())
				if resp.StatusCode != http.StatusOK || uint64(len(out)) != svc.BufSize {
					fails.Add(1)
					continue
				}
				epoch, err := strconv.ParseUint(resp.Header.Get("X-HTP-Epoch"), 10, 64)
				if err != nil {
					fails.Add(1)
					continue
				}
				for {
					cur := maxEpoch.Load()
					if epoch <= cur || maxEpoch.CompareAndSwap(cur, epoch) {
						break
					}
				}
			}
		}(c)
	}

	// The swapper: repeated live rollouts under full traffic. Odd
	// swaps add a decoy patch so consecutive tables really differ.
	wg.Add(1)
	var swapErr error
	go func() {
		defer wg.Done()
		for i := 0; i < soakSwaps; i++ {
			set := patch.NewSet()
			set.Merge(rep.Patches)
			if i%2 == 1 {
				set.Add(patch.Patch{Fn: heapsim.FnMalloc, CCID: uint64(0xDEC0 + i), Types: patch.TypeUseAfterFree})
			}
			if _, err := s.fleet.SwapTable(set); err != nil {
				swapErr = err
				return
			}
		}
	}()
	wg.Wait()

	if swapErr != nil {
		t.Fatalf("swap under load: %v", swapErr)
	}
	if n := fails.Load(); n != 0 {
		t.Fatalf("%d requests failed or were dropped across %d swaps", n, soakSwaps)
	}
	fs := s.fleet.Stats()
	if fs.TableSwaps != uint64(soakSwaps) {
		t.Errorf("TableSwaps=%d, want %d", fs.TableSwaps, soakSwaps)
	}
	want := uint64(soakClients * soakRequests)
	if fs.Requests != want {
		t.Errorf("Requests=%d, want %d", fs.Requests, want)
	}
	if fs.Crashes != 0 {
		t.Errorf("Crashes=%d, want 0 (benign-only soak)", fs.Crashes)
	}
	// An in-flight request never observed a table from its future;
	// the epoch ceiling is the swap count.
	if maxEpoch.Load() > uint64(soakSwaps) {
		t.Errorf("a request reported epoch %d > %d swaps", maxEpoch.Load(), soakSwaps)
	}

	// Post-swap traffic ran against the rolled-out patch: the CURRENT
	// table's hit tally for the reply-buffer patch is nonzero. (Each
	// swap installs a fresh table with fresh counters, so hits here
	// prove traffic AFTER the last swap still probed the patch.)
	resp, out := post(t, ts, "/request", svc.BenignRequest())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-soak benign request: %d", resp.StatusCode)
	}
	_ = out
	m := s.Metrics()
	if len(m.PatchHits) == 0 {
		t.Error("no patch hits on the final table after post-swap traffic")
	}
}
