//go:build race

package serve

// Race-trimmed test scaling: the detector slows execution ~10x, so the
// soak and the deterministic slow request shrink to keep `make race`
// fast while still crossing every swap/drain interleaving.
const (
	slowRequestN = 1500
	soakClients  = 4
	soakRequests = 15
	soakSwaps    = 8
)
