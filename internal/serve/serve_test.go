package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"heaptherapy/internal/prog"
	"heaptherapy/internal/telemetry"
	"heaptherapy/internal/workload"
)

// newNginxServer builds a front-end over the vulnerable nginx stand-in
// plus an httptest listener. mut tweaks the config before New.
func newNginxServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server, *workload.Service) {
	t.Helper()
	svc := workload.Nginx()
	p, err := svc.VulnerableProgram()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Program:      p,
		BenignSample: svc.BenignRequest(),
		Workers:      2,
		MaxInFlight:  32,
		Telemetry:    telemetry.New(telemetry.Config{}),
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts, svc
}

// post sends one service request and returns the response.
func post(t *testing.T, ts *httptest.Server, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// slowProgram's request latency is attacker^Wtest-controlled: the
// 2-byte length field drives a compute loop, so a test can hold a
// worker busy deterministically while it probes admission control.
func slowProgram() *prog.Program {
	return prog.MustLink(&prog.Program{
		Name: "slow-service",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.ReadInput{Dst: "n", N: prog.C(2)},
				prog.Alloc{Dst: "buf", Size: prog.C(64)},
				prog.Assign{Dst: "w", E: prog.C(0)},
				prog.While{Cond: prog.Lt(prog.V("w"), prog.Mul(prog.V("n"), prog.C(500))), Body: []prog.Stmt{
					prog.Assign{Dst: "w", E: prog.Add(prog.V("w"), prog.C(1))},
				}},
				prog.Store{Base: prog.V("buf"), Src: prog.V("w"), N: prog.C(8)},
				prog.Load{Dst: "back", Base: prog.V("buf"), N: prog.C(8)},
				prog.FreeStmt{Ptr: prog.V("buf")},
				prog.OutputVar{Src: "back"},
			}},
		},
	})
}

func TestServeBenign(t *testing.T) {
	s, ts, svc := newNginxServer(t, nil)
	resp, out := post(t, ts, "/request", svc.BenignRequest())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("benign request: %d %s", resp.StatusCode, out)
	}
	if resp.Header.Get("X-HTP-Outcome") != OutcomeOK {
		t.Errorf("outcome header %q", resp.Header.Get("X-HTP-Outcome"))
	}
	if uint64(len(out)) != svc.BufSize {
		t.Errorf("reply %d bytes, want %d", len(out), svc.BufSize)
	}
	if bytes.Contains(out, svc.Secret()) {
		t.Error("benign reply leaked the secret")
	}
	if st := s.Stats(); st.Admitted != 1 || st.Rejected != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestServeHealthz(t *testing.T) {
	_, ts, _ := newNginxServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
}

// TestServeBackpressure: with one worker and MaxInFlight 1, a slow
// request in flight forces the next request into a 429 with
// Retry-After — load shedding, not queueing without bound.
func TestServeBackpressure(t *testing.T) {
	s, ts, _ := newNginxServer(t, func(c *Config) {
		c.Program = slowProgram()
		c.BenignSample = workload.Request(1)
		c.Workers = 1
		c.MaxInFlight = 1
	})

	done := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts, "/request", workload.Request(slowRequestN)) // ~10M statements
		done <- resp.StatusCode
	}()
	waitFor(t, "slow request admission", func() bool { return s.Stats().Admitted >= 1 })

	resp, _ := post(t, ts, "/request", workload.Request(1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("slow request: %d", code)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Errorf("Rejected=%d, want 1", st.Rejected)
	}
}

// TestServeTenantQuota: one tenant saturating its quota is shed while
// other tenants keep flowing.
func TestServeTenantQuota(t *testing.T) {
	s, ts, _ := newNginxServer(t, func(c *Config) {
		c.Program = slowProgram()
		c.BenignSample = workload.Request(1)
		c.Workers = 2
		c.MaxInFlight = 8
		c.TenantQuota = 1
	})

	done := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts, "/request?tenant=greedy", workload.Request(slowRequestN))
		done <- resp.StatusCode
	}()
	waitFor(t, "slow request admission", func() bool { return s.Stats().Admitted >= 1 })

	resp, _ := post(t, ts, "/request?tenant=greedy", workload.Request(1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota request: %d, want 429", resp.StatusCode)
	}
	resp, _ = post(t, ts, "/request?tenant=modest", workload.Request(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: %d, want 200", resp.StatusCode)
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("slow request: %d", code)
	}
	if st := s.Stats(); st.QuotaRejected != 1 {
		t.Errorf("QuotaRejected=%d, want 1", st.QuotaRejected)
	}
}

// TestServeMetrics: /metrics is a JSON document carrying front-end,
// fleet, and telemetry state.
func TestServeMetrics(t *testing.T) {
	_, ts, svc := newNginxServer(t, nil)
	for i := 0; i < 3; i++ {
		post(t, ts, "/request", svc.BenignRequest())
	}
	resp, body := post0(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decoding metrics: %v\n%s", err, body)
	}
	if m.Program != "nginx-vulnerable" {
		t.Errorf("program %q", m.Program)
	}
	if m.Requests != 3 || m.Crashes != 0 {
		t.Errorf("requests/crashes = %d/%d", m.Requests, m.Crashes)
	}
	if m.Telemetry == nil || m.Telemetry.Counters["requests"] != 3 {
		t.Errorf("telemetry snapshot missing or wrong: %+v", m.Telemetry)
	}
	if m.Defense.Allocs == 0 {
		t.Error("defense stats empty")
	}
}

// post0 GETs a path.
func post0(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestServeDrain: drain lets in-flight requests finish, rejects new
// ones with 503, and is idempotent.
func TestServeDrain(t *testing.T) {
	s, ts, svc := newNginxServer(t, nil)
	if resp, _ := post(t, ts, "/request", svc.BenignRequest()); resp.StatusCode != http.StatusOK {
		t.Fatal("pre-drain request failed")
	}
	s.Drain()
	s.Drain() // idempotent
	resp, _ := post(t, ts, "/request", svc.BenignRequest())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: %d, want 503", resp.StatusCode)
	}
	if !s.Stats().Draining {
		t.Error("Stats does not report draining")
	}
}

// TestServeDrainCompletesInFlight: a request racing Drain finishes
// normally — zero dropped requests is the drain contract.
func TestServeDrainCompletesInFlight(t *testing.T) {
	s, ts, _ := newNginxServer(t, func(c *Config) {
		c.Program = slowProgram()
		c.BenignSample = workload.Request(1)
		c.Workers = 1
	})
	done := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts, "/request", workload.Request(slowRequestN))
		done <- resp.StatusCode
	}()
	waitFor(t, "slow request admission", func() bool { return s.Stats().Admitted >= 1 })
	s.Drain()
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight request during drain: %d, want 200", code)
	}
}

// drainAndCount drains s, closes ts, and waits for the goroutine count
// to settle back to want (see prog's countGoroutines for why retries).
func drainAndCount(t *testing.T, s *Server, ts *httptest.Server, want int) int {
	t.Helper()
	s.Drain()
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > want && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

var _ = fmt.Sprint // keep fmt for debug edits
