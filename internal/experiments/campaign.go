package experiments

import (
	"fmt"
	"runtime"
	"time"

	"heaptherapy/internal/campaign"
)

// CampaignRow is one worker-count measurement of the sharded campaign
// runtime.
type CampaignRow struct {
	// Workers is the campaign's worker count (pooled workbenches).
	Workers int
	// SeedsPerSec is wall-clock campaign throughput (one seed = one
	// generated case through the full differential matrix).
	SeedsPerSec float64
	// Speedup is throughput relative to the fresh-construction
	// sequential baseline (Oracle.Check in a plain loop).
	Speedup float64
}

// CampaignThroughputResult is the campaign scaling experiment: the
// sharded parallel runtime with pooled oracle workbenches versus the
// sequential fresh-construction oracle it replaced. The speedup has
// two stacked sources — substrate pooling and compile-once (visible
// already at 1 worker) and shard parallelism on top (visible as
// GOMAXPROCS allows) — so the result records both the baseline and the
// per-worker-count rows. Wall-clock numbers; meaningful only alongside
// the recorded GOMAXPROCS.
type CampaignThroughputResult struct {
	// GOMAXPROCS is the parallelism available during the measurement.
	GOMAXPROCS int
	// Seeds is the campaign size per measurement.
	Seeds uint64
	// SequentialSeedsPerSec is the baseline: fresh construction of all
	// 30 matrix cells per seed, one seed at a time. Each row's Speedup
	// divides by the baseline slice measured immediately before that
	// row (paired, to cancel host drift); this field is the mean of
	// those paired baselines.
	SequentialSeedsPerSec float64
	Rows                  []CampaignRow
}

// CampaignThroughput measures campaign throughput at increasing worker
// counts against the fresh-construction sequential baseline. The full
// matrix runs in every configuration (the experiment's point is the
// runtime, not a trimmed oracle), so cfg.Engine is not consulted.
func CampaignThroughput(cfg Config) (*CampaignThroughputResult, error) {
	// 192 seeds keeps each worker's one-time workbench construction
	// (~one fresh seed's worth of work) amortized over enough seeds
	// that the 8-worker row reflects steady state even on small hosts.
	workerCounts := []int{1, 2, 4, 8}
	seeds := uint64(192)
	if cfg.Quick {
		workerCounts = []int{1, 2, 4}
		seeds = 24
	}

	// Wall-clock on a shared (and possibly stolen-from) host drifts
	// over a sustained full-CPU experiment, so each row is measured
	// PAIRED with its own fresh-construction baseline slice taken
	// immediately before it: a host slowdown then hits numerator and
	// denominator together and the speedup stays meaningful. The
	// reported SequentialSeedsPerSec is the mean of the paired
	// baselines.
	baseSeeds := seeds / 4
	if baseSeeds < 12 {
		baseSeeds = 12
	}

	out := &CampaignThroughputResult{GOMAXPROCS: runtime.GOMAXPROCS(0), Seeds: seeds}

	oracle := campaign.Oracle{}
	measureSequential := func() (float64, error) {
		start := time.Now()
		for seed := uint64(0); seed < baseSeeds; seed++ {
			g, err := campaign.Generate(seed, campaign.GenConfig{})
			if err != nil {
				return 0, fmt.Errorf("experiments: campaign seed %d: %w", seed, err)
			}
			if rep := oracle.Check(g); !rep.OK() {
				return 0, fmt.Errorf("experiments: campaign seed %d fails the oracle: %+v", seed, rep.Failures)
			}
		}
		elapsed := time.Since(start)
		if elapsed <= 0 {
			elapsed = time.Nanosecond
		}
		return float64(baseSeeds) / elapsed.Seconds(), nil
	}

	var baseSum float64
	for _, w := range workerCounts {
		runtime.GC()
		base, err := measureSequential()
		if err != nil {
			return nil, err
		}
		baseSum += base
		rep, err := campaign.Run(campaign.RunConfig{Seeds: seeds, Workers: w})
		if err != nil {
			return nil, fmt.Errorf("experiments: campaign w=%d: %w", w, err)
		}
		if rep.FailingSeeds != 0 {
			return nil, fmt.Errorf("experiments: campaign w=%d: %d failing seeds: %+v", w, rep.FailingSeeds, rep.Failures)
		}
		out.Rows = append(out.Rows, CampaignRow{
			Workers:     w,
			SeedsPerSec: rep.SeedsPerSec,
			Speedup:     rep.SeedsPerSec / base,
		})
	}
	out.SequentialSeedsPerSec = baseSum / float64(len(workerCounts))
	return out, nil
}

// Render prints the scaling table.
func (r *CampaignThroughputResult) Render() string {
	header := []string{"Workers", "seeds/sec", "vs sequential"}
	rows := [][]string{{
		"seq (fresh)",
		fmt.Sprintf("%.1f", r.SequentialSeedsPerSec),
		"1.00x",
	}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Workers),
			fmt.Sprintf("%.1f", row.SeedsPerSec),
			fmt.Sprintf("%.2fx", row.Speedup),
		})
	}
	return fmt.Sprintf(
		"Campaign throughput (sharded runtime with pooled workbenches vs fresh-construction sequential oracle; wall-clock, GOMAXPROCS=%d, %d seeds)\n",
		r.GOMAXPROCS, r.Seeds) + table(header, rows)
}
