package experiments

import (
	"fmt"
	"sync"

	"heaptherapy/internal/callgraph"
	"heaptherapy/internal/defense"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/workload"
)

// This file is the experiment harness's interning layer. Programs,
// call graphs, plans, coders, and compiled bytecode are all immutable
// once constructed, so experiments share one instance per logical
// identity instead of rebuilding them for every measured run: a
// benchmark sweep that used to plan, number, and compile the same
// (program, scheme, encoder) triple eight times now does it once.
// Sharing cannot perturb measurements — execution over these
// artifacts is deterministic on the virtual-cycle axis, which
// TestExperimentsEngineIndependent locks in even across engines.

type progFlavor uint8

const (
	flavorSpec progFlavor = iota
	flavorLiveHeap
)

type progKey struct {
	name   string
	scale  uint64
	flavor progFlavor
}

type planKey struct {
	g      *callgraph.Graph
	scheme encoding.Scheme
}

type coderKey struct {
	g      *callgraph.Graph
	scheme encoding.Scheme
	kind   encoding.EncoderKind
}

type compiledKey struct {
	p     *prog.Program
	coder *encoding.Coder
}

type graphEntry struct {
	g       *callgraph.Graph
	targets []callgraph.NodeID
}

// intern holds the process-wide caches. Only benchmark-derived
// artifacts are interned (they are few and reused heavily); ad-hoc
// programs built by other callers keep the uncached paths so the
// caches cannot grow without bound.
var intern = struct {
	mu       sync.Mutex
	planner  *encoding.Planner
	programs map[progKey]*prog.Program
	progSet  map[*prog.Program]bool
	graphs   map[string]graphEntry
	plans    map[planKey]*encoding.Plan
	coders   map[coderKey]*encoding.Coder
	compiled map[compiledKey]*prog.Compiled
}{
	planner:  encoding.NewPlanner(),
	programs: make(map[progKey]*prog.Program),
	progSet:  make(map[*prog.Program]bool),
	graphs:   make(map[string]graphEntry),
	plans:    make(map[planKey]*encoding.Plan),
	coders:   make(map[coderKey]*encoding.Coder),
	compiled: make(map[compiledKey]*prog.Compiled),
}

// internedProgram returns the shared program for (benchmark, scale,
// flavor), generating it on first use.
func internedProgram(b *workload.Benchmark, cfg Config, flavor progFlavor) (*prog.Program, error) {
	key := progKey{name: b.Name, scale: cfg.Scale, flavor: flavor}
	intern.mu.Lock()
	defer intern.mu.Unlock()
	if p, ok := intern.programs[key]; ok {
		return p, nil
	}
	var (
		p   *prog.Program
		err error
	)
	if flavor == flavorLiveHeap {
		p, err = b.LiveHeapProgram(cfg.programConfig())
	} else {
		p, _, err = b.Program(cfg.programConfig())
	}
	if err != nil {
		return nil, err
	}
	intern.programs[key] = p
	intern.progSet[p] = true
	return p, nil
}

// internedGraph returns the shared synthetic call graph for a
// benchmark (the static-analysis experiments plan over it directly).
func internedGraph(b *workload.Benchmark) (*callgraph.Graph, []callgraph.NodeID, error) {
	intern.mu.Lock()
	defer intern.mu.Unlock()
	if e, ok := intern.graphs[b.Name]; ok {
		return e.g, e.targets, nil
	}
	g, targets, err := b.Graph()
	if err != nil {
		return nil, nil, err
	}
	intern.graphs[b.Name] = graphEntry{g: g, targets: targets}
	return g, targets, nil
}

// internedPlan returns the shared plan for (graph, scheme). targets
// must be the graph's canonical target set (the one its owner —
// program or benchmark — reports); the cache key omits it because a
// graph has exactly one.
func internedPlan(g *callgraph.Graph, targets []callgraph.NodeID, scheme encoding.Scheme) (*encoding.Plan, error) {
	intern.mu.Lock()
	defer intern.mu.Unlock()
	return internedPlanLocked(g, targets, scheme)
}

func internedPlanLocked(g *callgraph.Graph, targets []callgraph.NodeID, scheme encoding.Scheme) (*encoding.Plan, error) {
	key := planKey{g: g, scheme: scheme}
	if pl, ok := intern.plans[key]; ok {
		return pl, nil
	}
	pl, err := intern.planner.Plan(scheme, g, targets)
	if err != nil {
		return nil, err
	}
	intern.plans[key] = pl
	return pl, nil
}

// internedCoder returns the shared coder for (graph, scheme, encoder),
// planning and numbering on first use.
func internedCoder(g *callgraph.Graph, targets []callgraph.NodeID, scheme encoding.Scheme, kind encoding.EncoderKind) (*encoding.Coder, error) {
	intern.mu.Lock()
	defer intern.mu.Unlock()
	key := coderKey{g: g, scheme: scheme, kind: kind}
	if c, ok := intern.coders[key]; ok {
		return c, nil
	}
	pl, err := internedPlanLocked(g, targets, scheme)
	if err != nil {
		return nil, err
	}
	c, err := encoding.NewCoder(kind, g, pl)
	if err != nil {
		return nil, err
	}
	intern.coders[key] = c
	return c, nil
}

// internedCompiled returns bytecode for (program, coder), cached when
// the program is itself interned; ad-hoc programs compile fresh so the
// cache holds only the benchmark set.
func internedCompiled(p *prog.Program, coder *encoding.Coder) (*prog.Compiled, error) {
	key := compiledKey{p: p, coder: coder}
	intern.mu.Lock()
	cached := intern.progSet[p]
	if cached {
		if c, ok := intern.compiled[key]; ok {
			intern.mu.Unlock()
			return c, nil
		}
	}
	intern.mu.Unlock()
	c, err := prog.Compile(p, coder)
	if err != nil {
		return nil, err
	}
	if cached {
		intern.mu.Lock()
		intern.compiled[key] = c
		intern.mu.Unlock()
	}
	return c, nil
}

// execFor builds an executor like prog.NewExec but routes the bytecode
// engines through the compiled-bytecode cache, so repeated runs of the
// same (program, coder) pair compile once. The tier-up machine uses
// the default promotion threshold; experiments that sweep thresholds
// construct their machines directly.
func execFor(engine prog.Engine, p *prog.Program, coder *encoding.Coder, backend prog.HeapBackend) (prog.Exec, error) {
	switch engine {
	case prog.EngineTree:
		return prog.New(p, prog.Config{Backend: backend, Coder: coder})
	case prog.EngineVM, prog.EngineCompiled:
		c, err := internedCompiled(p, coder)
		if err != nil {
			return nil, err
		}
		if engine == prog.EngineCompiled {
			return prog.NewMachine(c, prog.Config{Backend: backend, Coder: coder})
		}
		return prog.NewVM(c, prog.Config{Backend: backend, Coder: coder})
	default:
		return nil, fmt.Errorf("experiments: unknown engine %v", engine)
	}
}

// workbench recycles the mutable execution substrate — address
// spaces, backends, and per-coder executors — across the measured
// runs of one benchmark. The Reset contracts (mem.Space, the native
// and defense backends) guarantee a recycled substrate behaves
// bit-identically to a fresh one, so only construction cost is
// eliminated, never measurement.
type workbench struct {
	engine prog.Engine
	p      *prog.Program

	space  *mem.Space
	native *prog.NativeBackend
	execs  map[*encoding.Coder]prog.Exec

	dspace *mem.Space
}

func newWorkbench(engine prog.Engine, p *prog.Program) *workbench {
	return &workbench{engine: engine, p: p, execs: make(map[*encoding.Coder]prog.Exec)}
}

// nativeBackend returns the recycled native backend, reset and ready
// for one execution.
func (w *workbench) nativeBackend() (*prog.NativeBackend, error) {
	if w.native == nil {
		space, err := mem.NewSpace(mem.Config{})
		if err != nil {
			return nil, fmt.Errorf("experiments: creating space: %w", err)
		}
		nb, err := prog.NewNativeBackend(space)
		if err != nil {
			return nil, err
		}
		w.space, w.native = space, nb
		return nb, nil
	}
	w.space.Reset()
	if err := w.native.Reset(); err != nil {
		return nil, err
	}
	return w.native, nil
}

// runNative executes the program natively (instrumented when coder is
// non-nil), reusing the space, backend, and the per-coder executor.
func (w *workbench) runNative(coder *encoding.Coder) (*measured, error) {
	nb, err := w.nativeBackend()
	if err != nil {
		return nil, err
	}
	it, ok := w.execs[coder]
	if !ok {
		it, err = execFor(w.engine, w.p, coder, nb)
		if err != nil {
			return nil, err
		}
		w.execs[coder] = it
	}
	res, err := it.Run(nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: running %s: %w", w.p.Name, err)
	}
	if res.Crashed() {
		return nil, fmt.Errorf("experiments: %s crashed: %v", w.p.Name, res.Fault)
	}
	return &measured{res: res, heap: nb.Heap()}, nil
}

// runDefended executes the program over a defense backend built on the
// recycled defense space. The backend itself is rebuilt per run — its
// configuration (mode, patch set) varies — but spaces and bytecode are
// shared.
func (w *workbench) runDefended(coder *encoding.Coder, mode defense.Mode, patches *patch.Set) (*measured, error) {
	if w.dspace == nil {
		space, err := mem.NewSpace(mem.Config{})
		if err != nil {
			return nil, fmt.Errorf("experiments: creating space: %w", err)
		}
		w.dspace = space
	} else {
		w.dspace.Reset()
	}
	db, err := defense.NewBackend(w.dspace, defense.Config{Mode: mode, Patches: patches})
	if err != nil {
		return nil, err
	}
	it, err := execFor(w.engine, w.p, coder, db)
	if err != nil {
		return nil, err
	}
	res, err := it.Run(nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: running %s: %w", w.p.Name, err)
	}
	if res.Crashed() {
		return nil, fmt.Errorf("experiments: %s crashed: %v", w.p.Name, res.Fault)
	}
	return &measured{res: res, heap: db.Defender().Heap(), stats: db.Defender().Stats()}, nil
}

// profile runs one CCID-profiling execution over the recycled native
// substrate and returns the ranked allocation contexts.
func (w *workbench) profile(coder *encoding.Coder) ([]rankedCCID, error) {
	nb, err := w.nativeBackend()
	if err != nil {
		return nil, err
	}
	return profileCCIDs(w.engine, w.p, coder, nb)
}
