package experiments

import (
	"fmt"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/workload"
)

// StackOffsetRow is one benchmark's comparison of the stack-offset
// technique against calling-context encoding.
type StackOffsetRow struct {
	Benchmark string
	Contexts  int
	// AmbiguousPct and FailurePct are the stack-offset technique's
	// weaknesses; encoding-based CCIDs have zero of both (PCCE exactly,
	// PCC up to 64-bit hash collisions).
	AmbiguousPct float64
	FailurePct   float64
}

// StackOffsetResult reproduces the paper's related-work comparison:
// the profiling/stack-offset approach of [51] "fails if the calling
// context of interest does not appear in the profiling runs; its
// reported decoding failure rate is as high as 27%".
type StackOffsetResult struct {
	Rows []StackOffsetRow
	// Coverage is the profiling coverage modeled.
	Coverage float64
}

// StackOffsetBaseline evaluates the technique on every benchmark graph
// at 80% profiling coverage (generous: real profiling sees far less of
// rare contexts).
func StackOffsetBaseline(cfg Config) (*StackOffsetResult, error) {
	const coverage = 0.8
	benches := workload.SpecBenchmarks()
	if cfg.Quick {
		benches = benches[:4]
	}
	out := &StackOffsetResult{Coverage: coverage}
	for _, b := range benches {
		g, targets, err := b.Graph()
		if err != nil {
			return nil, err
		}
		st := encoding.StackOffsetBaseline(g, targets, 20000, coverage, 1)
		out.Rows = append(out.Rows, StackOffsetRow{
			Benchmark:    b.Name,
			Contexts:     st.Contexts,
			AmbiguousPct: 100 * st.AmbiguityRate(),
			FailurePct:   100 * st.FailureRate(),
		})
	}
	return out, nil
}

// Render prints the comparison.
func (r *StackOffsetResult) Render() string {
	header := []string{"Benchmark", "contexts", "ambiguous(%)", "decode failures(%)"}
	var rows [][]string
	var sum float64
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Benchmark,
			fmt.Sprintf("%d", row.Contexts),
			fmt.Sprintf("%.1f", row.AmbiguousPct),
			fmt.Sprintf("%.1f", row.FailurePct),
		})
		sum += row.FailurePct
	}
	rows = append(rows, []string{"AVERAGE", "", "", fmt.Sprintf("%.1f", sum/float64(len(r.Rows)))})
	return fmt.Sprintf("Stack-offset baseline at %.0f%% profiling coverage (paper cites up to 27%% decode failure; CC encoding: 0%%)\n",
		100*r.Coverage) + table(header, rows)
}
