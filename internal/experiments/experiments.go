// Package experiments regenerates every table and figure of the
// paper's evaluation (Section VIII). Each experiment returns a typed
// result with a Render method that prints rows in the paper's shape;
// cmd/htp-bench drives them all and bench_test.go exposes each as a
// testing.B benchmark.
//
// Overheads are reported on the deterministic virtual-cycle axis (see
// the cost model in internal/prog): wall-clock timing of a Go
// interpreter is dominated by interpretation overhead itself, which
// would drown the few-percent native-execution effects the paper
// measures. The cycle model assigns calibrated relative costs to
// compute, calls, allocator work, encoding updates, and defense
// mechanisms, so overhead ratios are meaningful and reproducible.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"heaptherapy/internal/defense"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/workload"
)

// Config tunes experiment cost; the defaults match the committed
// EXPERIMENTS.md numbers.
type Config struct {
	// Scale divides the paper's Table IV allocation counts
	// (0 = workload default, 10000).
	Scale uint64
	// Quick trims parameter sweeps for fast runs.
	Quick bool
	// Engine selects the execution substrate (tree interpreter,
	// bytecode VM, or tier-up compiled machine). All three produce
	// bit-identical measurements — locked in by
	// TestExperimentsEngineIndependent — so the choice only affects
	// wall-clock time of the experiment harness itself.
	Engine prog.Engine
	// TierUp is the compiled engine's promotion threshold (calls before
	// a function is lowered to closure code); 0 means prog.DefaultTierUp.
	// Only the tierup experiment and EngineCompiled runs consult it.
	TierUp uint64
}

func (c Config) programConfig() workload.ProgramConfig {
	return workload.ProgramConfig{Scale: c.Scale}
}

// backendKind selects the execution substrate for a measured run.
type backendKind uint8

const (
	backendNative backendKind = iota + 1
	backendInterpose
	backendFull
)

// measured is one measured execution.
type measured struct {
	res   *prog.Result
	heap  *heapsim.Heap
	stats defense.Stats
}

// runOnce executes p on input with the given substrate and optional
// coder, on a fresh address space.
func runOnce(engine prog.Engine, p *prog.Program, coder *encoding.Coder, kind backendKind, patches *patch.Set, input []byte) (*measured, error) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return nil, fmt.Errorf("experiments: creating space: %w", err)
	}
	var (
		backend prog.HeapBackend
		heap    *heapsim.Heap
		statsFn func() defense.Stats
	)
	switch kind {
	case backendNative:
		nb, err := prog.NewNativeBackend(space)
		if err != nil {
			return nil, err
		}
		backend, heap = nb, nb.Heap()
	case backendInterpose, backendFull:
		mode := defense.ModeFull
		if kind == backendInterpose {
			mode = defense.ModeInterpose
		}
		db, err := defense.NewBackend(space, defense.Config{Mode: mode, Patches: patches})
		if err != nil {
			return nil, err
		}
		backend, heap = db, db.Defender().Heap()
		statsFn = db.Defender().Stats
	default:
		return nil, fmt.Errorf("experiments: unknown backend kind %d", kind)
	}
	it, err := execFor(engine, p, coder, backend)
	if err != nil {
		return nil, err
	}
	res, err := it.Run(input)
	if err != nil {
		return nil, fmt.Errorf("experiments: running %s: %w", p.Name, err)
	}
	if res.Crashed() {
		return nil, fmt.Errorf("experiments: %s crashed: %v", p.Name, res.Fault)
	}
	m := &measured{res: res, heap: heap}
	if statsFn != nil {
		m.stats = statsFn()
	}
	return m, nil
}

// coderFor builds a coder for p under the given scheme with PCC
// arithmetic (the paper's deployed encoder).
func coderFor(p *prog.Program, scheme encoding.Scheme) (*encoding.Coder, error) {
	plan, err := encoding.NewPlan(scheme, p.Graph(), p.Targets())
	if err != nil {
		return nil, err
	}
	return encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
}

// overheadPct converts a baseline/measured cycle pair to percent.
func overheadPct(base, got uint64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (float64(got) - float64(base)) / float64(base)
}

// ccidRecorder wraps a backend and counts allocation CCIDs, used to
// pick the paper's "median frequency" hypothesized-vulnerable contexts
// (Section VIII-B2's patch-selection protocol).
type ccidRecorder struct {
	prog.HeapBackend
	counts map[patch.Key]uint64
}

func (r *ccidRecorder) Alloc(fn heapsim.AllocFn, ccid, n, size, align uint64) (uint64, error) {
	r.counts[patch.Key{Fn: fn, CCID: ccid}]++
	return r.HeapBackend.Alloc(fn, ccid, n, size, align)
}

func (r *ccidRecorder) Realloc(ccid, ptr, size uint64) (uint64, error) {
	r.counts[patch.Key{Fn: heapsim.FnRealloc, CCID: ccid}]++
	return r.HeapBackend.Realloc(ccid, ptr, size)
}

// rankedCCID is one allocation context with its observed frequency.
type rankedCCID struct {
	key   patch.Key
	count uint64
}

// profileCCIDs runs one profiling execution of p over backend and
// returns its allocation contexts ranked by (count, CCID) ascending —
// the ordering the paper's median-frequency patch-selection protocol
// indexes into. Profiling is deterministic, so one ranking serves
// every deployment level of an experiment.
func profileCCIDs(engine prog.Engine, p *prog.Program, coder *encoding.Coder, backend prog.HeapBackend) ([]rankedCCID, error) {
	rec := &ccidRecorder{HeapBackend: backend, counts: make(map[patch.Key]uint64)}
	it, err := execFor(engine, p, coder, rec)
	if err != nil {
		return nil, err
	}
	if _, err := it.Run(nil); err != nil {
		return nil, fmt.Errorf("experiments: profiling %s: %w", p.Name, err)
	}
	ranked := make([]rankedCCID, 0, len(rec.counts))
	for k, c := range rec.counts {
		ranked = append(ranked, rankedCCID{key: k, count: c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count < ranked[j].count
		}
		return ranked[i].key.CCID < ranked[j].key.CCID
	})
	return ranked, nil
}

// selectMedianPatches picks n overflow patches centered on the
// median-frequency contexts of a ranked profile, per the paper's
// protocol ("we pick the CCIDs with median frequencies as the
// hypothesized vulnerable ones" — overflow being the most expensive
// type to treat).
func selectMedianPatches(ranked []rankedCCID, n int) *patch.Set {
	set := patch.NewSet()
	if len(ranked) == 0 {
		return set
	}
	mid := len(ranked) / 2
	lo := mid - n/2
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < len(ranked) && set.Len() < n; i++ {
		set.Add(patch.Patch{
			Fn:    ranked[i].key.Fn,
			CCID:  ranked[i].key.CCID,
			Types: patch.TypeOverflow,
		})
	}
	return set
}

// medianCCIDPatches profiles p on a fresh native substrate and selects
// n median-frequency patches (profileCCIDs + selectMedianPatches).
func medianCCIDPatches(engine prog.Engine, p *prog.Program, coder *encoding.Coder, n int) (*patch.Set, error) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return nil, err
	}
	nb, err := prog.NewNativeBackend(space)
	if err != nil {
		return nil, err
	}
	ranked, err := profileCCIDs(engine, p, coder, nb)
	if err != nil {
		return nil, err
	}
	return selectMedianPatches(ranked, n), nil
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	line(header)
	for i, w := range width {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}
