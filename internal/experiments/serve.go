package experiments

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"heaptherapy/internal/analysis"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/serve"
	"heaptherapy/internal/workload"
)

// ServeRow is one worker-count measurement of the HTTP front-end.
type ServeRow struct {
	// Workers is the front-end's tenant-context count.
	Workers int
	// ReqPerSec is end-to-end HTTP request throughput (admission,
	// dispatch, defended execution, response).
	ReqPerSec float64
	// Swaps is how many live table swaps landed during this row's
	// measurement window.
	Swaps int
}

// ServeThroughputResult measures the live-traffic front-end: benign
// HTTP throughput at increasing worker counts while a swapper performs
// live patch rollouts throughout, plus the latency distribution of the
// SwapTable operation itself (seal + atomic publish) under that load.
// Like the fleet experiment this is a wall-clock property of the host,
// meaningful only alongside the recorded GOMAXPROCS.
type ServeThroughputResult struct {
	// GOMAXPROCS is the parallelism available during the measurement.
	GOMAXPROCS int
	// Requests is the number of HTTP requests per measurement row.
	Requests int
	Rows     []ServeRow
	// SwapP50, SwapP99, and SwapMax summarize SwapTable latency across
	// every live rollout performed under load; SwapCount is the sample
	// size.
	SwapP50, SwapP99, SwapMax time.Duration
	SwapCount                 int
}

// ServeThroughput measures the serve front-end over the vulnerable
// nginx stand-in: real HTTP clients, defended tenant contexts, and a
// swapper rolling out a fresh sealed table every few milliseconds —
// the zero-downtime claim as a benchmark. Every request must succeed;
// a single failed request fails the experiment.
func ServeThroughput(cfg Config) (*ServeThroughputResult, error) {
	workerCounts := []int{1, 2, 4, 8}
	requests := 256
	if cfg.Quick {
		workerCounts = []int{1, 2, 4}
		requests = 64
	}

	svc := workload.Nginx()
	p, err := svc.VulnerableProgram()
	if err != nil {
		return nil, err
	}
	coder, err := coderFor(p, encoding.SchemeIncremental)
	if err != nil {
		return nil, err
	}
	// The rolled-out patches are the real thing: offline analysis of
	// the crashing request, exactly what a live rollout installs.
	a := &analysis.Analyzer{Coder: coder}
	rep, err := a.Analyze(p, svc.CrashRequest())
	if err != nil {
		return nil, fmt.Errorf("experiments: serve analysis: %w", err)
	}
	if rep.Patches.Len() == 0 {
		return nil, fmt.Errorf("experiments: serve analysis produced no patches")
	}

	out := &ServeThroughputResult{GOMAXPROCS: runtime.GOMAXPROCS(0), Requests: requests}
	var swapLat []time.Duration

	for _, w := range workerCounts {
		s, err := serve.New(serve.Config{
			Program:      p,
			Coder:        coder,
			BenignSample: svc.BenignRequest(),
			Workers:      w,
			MaxInFlight:  4 * w,
			Engine:       cfg.Engine,
			TierUp:       cfg.TierUp,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: serve w=%d: %w", w, err)
		}
		ts := httptest.NewServer(s.Handler())

		run := func() (time.Duration, error) {
			clients := w
			perClient := requests / clients
			errc := make(chan error, clients)
			var wg sync.WaitGroup
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						resp, err := http.Post(ts.URL+"/request", "application/octet-stream",
							bytes.NewReader(svc.BenignRequest()))
						if err != nil {
							errc <- err
							return
						}
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							errc <- fmt.Errorf("request failed: HTTP %d", resp.StatusCode)
							return
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			select {
			case err := <-errc:
				return 0, err
			default:
			}
			if elapsed <= 0 {
				elapsed = time.Nanosecond
			}
			return elapsed, nil
		}

		// Warm pass: pools, executors, inline caches.
		if _, err := run(); err != nil {
			ts.Close()
			s.Drain()
			return nil, fmt.Errorf("experiments: serve warmup w=%d: %w", w, err)
		}

		// Timed pass with the swapper rolling out tables throughout.
		stop := make(chan struct{})
		swapped := make(chan int, 1)
		go func() {
			n := 0
			for i := 0; ; i++ {
				select {
				case <-stop:
					swapped <- n
					return
				default:
				}
				set := patch.NewSet()
				set.Merge(rep.Patches)
				if i%2 == 1 {
					set.Add(patch.Patch{Fn: heapsim.FnMalloc, CCID: uint64(0xDEC0 + i), Types: patch.TypeUseAfterFree})
				}
				t0 := time.Now()
				if _, err := s.Fleet().SwapTable(set); err == nil {
					swapLat = append(swapLat, time.Since(t0))
					n++
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
		elapsed, err := run()
		close(stop)
		nswaps := <-swapped
		ts.Close()
		s.Drain()
		if err != nil {
			return nil, fmt.Errorf("experiments: serve w=%d: %w", w, err)
		}

		perClient := requests / w
		out.Rows = append(out.Rows, ServeRow{
			Workers:   w,
			ReqPerSec: float64(perClient*w) / elapsed.Seconds(),
			Swaps:     nswaps,
		})
	}

	sort.Slice(swapLat, func(i, j int) bool { return swapLat[i] < swapLat[j] })
	out.SwapCount = len(swapLat)
	if n := len(swapLat); n > 0 {
		out.SwapP50 = swapLat[n/2]
		out.SwapP99 = swapLat[min(n-1, n*99/100)]
		out.SwapMax = swapLat[n-1]
	}
	return out, nil
}

// Render prints the throughput table and the swap-latency summary.
func (r *ServeThroughputResult) Render() string {
	header := []string{"Workers", "req/s", "swaps in window"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Workers),
			fmt.Sprintf("%.0f", row.ReqPerSec),
			fmt.Sprintf("%d", row.Swaps),
		})
	}
	return fmt.Sprintf(
		"Serve front-end (HTTP req/s under continuous live patch rollout; wall-clock, GOMAXPROCS=%d, %d requests/row)\n",
		r.GOMAXPROCS, r.Requests) +
		table(header, rows) +
		fmt.Sprintf("SwapTable latency under load: p50=%s p99=%s max=%s (%d swaps)\n",
			r.SwapP50, r.SwapP99, r.SwapMax, r.SwapCount)
}
