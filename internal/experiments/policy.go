package experiments

import (
	"bytes"
	"fmt"
	"sort"

	"heaptherapy/internal/campaign"
	"heaptherapy/internal/core"
	"heaptherapy/internal/defense"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

// PolicyKindCell is one (family, kind) cell of the policy matrix: the
// family's documented claim next to the observed attack outcome.
type PolicyKindCell struct {
	Kind string
	// Claimed is the family's Containment matrix entry.
	Claimed bool
	// Contained is the observed outcome over the cell's seeds: no
	// secret exfiltration, no sentinel clobber surviving to output,
	// double frees rejected, and no allocator panic — a deliberate
	// fault (bounds check, double-free abort, guard page) counts as
	// containment by termination.
	Contained bool
}

// PolicyRow aggregates one family across every vulnerability kind.
type PolicyRow struct {
	Family string
	Kinds  []PolicyKindCell
	// ClaimedRate and ObservedRate are the fractions of the seven
	// kinds the family claims, respectively demonstrably contains.
	ClaimedRate  float64
	ObservedRate float64
	// BenignCycles is the mean virtual-cycle cost of a benign defended
	// run; OverheadPct relates it to the native baseline — the
	// throughput axis of the head-to-head.
	BenignCycles uint64
	OverheadPct  float64
	// MemBytes is the mean address-space footprint after a benign
	// defended run; MemOverheadPct relates it to the native baseline.
	MemBytes       uint64
	MemOverheadPct float64
}

// PolicyMatrixResult is the cross-family head-to-head: HeapTherapy+
// against the alternative policy backends over identical workloads.
type PolicyMatrixResult struct {
	NativeCycles uint64
	NativeMem    uint64
	SeedsPerKind int
	Rows         []PolicyRow
}

// policyCase is one generated program plus its analysis artifacts,
// shared by every family's measurement so the comparison is paired.
type policyCase struct {
	g       *campaign.Generated
	sys     *core.System
	patches *patch.Set
}

// PolicyMatrix runs the defense-policy head-to-head: for every
// vulnerability kind, a few generated campaign programs run benign and
// attack inputs under each policy family (and natively for the
// baseline), measuring virtual-cycle throughput, address-space
// footprint, and observed containment. Patches come from the same
// shadow analysis HT deploys, so HT cells are armed exactly as in the
// paper's pipeline; the other families ignore the patch table by
// design and defend every allocation instead.
func PolicyMatrix(cfg Config) (*PolicyMatrixResult, error) {
	seedsPerKind := 3
	if cfg.Quick {
		seedsPerKind = 1
	}

	// Generate the paired corpus: seedsPerKind cases of every kind,
	// each with its analysis-generated patches.
	var cases []*policyCase
	for _, kind := range campaign.AllKinds() {
		found := 0
		for seed := uint64(1); found < seedsPerKind && seed < 10000; seed++ {
			if campaign.PlannedKind(seed, campaign.GenConfig{}) != kind {
				continue
			}
			found++
			g, err := campaign.Generate(seed, campaign.GenConfig{})
			if err != nil {
				return nil, fmt.Errorf("experiments: policy seed %d: %w", seed, err)
			}
			sys, err := core.NewSystem(g.Program, core.Options{Engine: cfg.Engine, TierUp: cfg.TierUp})
			if err != nil {
				return nil, fmt.Errorf("experiments: policy seed %d: %w", seed, err)
			}
			rep, err := sys.GeneratePatches(g.Attack)
			if err != nil {
				return nil, fmt.Errorf("experiments: policy seed %d analysis: %w", seed, err)
			}
			cases = append(cases, &policyCase{g: g, sys: sys, patches: rep.Patches})
		}
		if found < seedsPerKind {
			return nil, fmt.Errorf("experiments: found only %d/%d seeds for %v", found, seedsPerKind, kind)
		}
	}

	out := &PolicyMatrixResult{SeedsPerKind: seedsPerKind}

	// Native baseline: benign cycles and footprint, averaged across
	// the whole corpus.
	var natCycles, natMem, n uint64
	for _, pc := range cases {
		cycles, size, _, err := policyRun(pc, defense.FamilyHT, nil, false, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: native baseline: %w", err)
		}
		natCycles += cycles
		natMem += size
		n++
	}
	out.NativeCycles = natCycles / n
	out.NativeMem = natMem / n

	for _, fam := range defense.AllFamilies() {
		row := PolicyRow{Family: fam.String()}
		byKind := map[string]*PolicyKindCell{}
		var cycles, memBytes uint64
		for _, pc := range cases {
			// Throughput and footprint: the benign defended run.
			c, size, _, err := policyRun(pc, fam, pc.patches, false, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: %v benign: %w", fam, err)
			}
			cycles += c
			memBytes += size

			// Containment: the attack run.
			_, _, contained, err := policyRun(pc, fam, pc.patches, true, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: %v attack: %w", fam, err)
			}
			kind := pc.g.Kind.String()
			cell, ok := byKind[kind]
			if !ok {
				cell = &PolicyKindCell{Kind: kind, Claimed: policyClaims(fam, pc.g.Kind), Contained: true}
				byKind[kind] = cell
			}
			if !contained {
				cell.Contained = false
			}
		}
		row.BenignCycles = cycles / n
		row.MemBytes = memBytes / n
		row.OverheadPct = overheadPct(out.NativeCycles, row.BenignCycles)
		row.MemOverheadPct = overheadPct(out.NativeMem, row.MemBytes)

		kinds := make([]string, 0, len(byKind))
		for k := range byKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		claimed, observed := 0, 0
		for _, k := range kinds {
			cell := byKind[k]
			row.Kinds = append(row.Kinds, *cell)
			if cell.Claimed {
				claimed++
			}
			if cell.Contained {
				observed++
			}
		}
		row.ClaimedRate = float64(claimed) / float64(len(kinds))
		row.ObservedRate = float64(observed) / float64(len(kinds))
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// policyClaims maps a campaign kind onto the family's Containment
// matrix (the campaign package keeps the same mapping for its oracle).
func policyClaims(f defense.Family, k campaign.VulnKind) bool {
	c := f.Containment()
	switch k {
	case campaign.OverflowRead:
		return c.OverflowRead
	case campaign.OverflowWrite:
		return c.OverflowWrite
	case campaign.UnderflowRead:
		return c.UnderflowRead
	case campaign.UAFRead:
		return c.UAFRead
	case campaign.UAFWrite:
		return c.UAFWrite
	case campaign.DoubleFree:
		return c.DoubleFree
	case campaign.UninitRead:
		return c.UninitRead
	default:
		return false
	}
}

// policyRun executes one case input over a fresh space: natively when
// patches is nil, else defended under fam. It returns the run's
// virtual cycles, the space's final footprint, and — for attack runs —
// whether the attack was observably contained.
func policyRun(pc *policyCase, fam defense.Family, patches *patch.Set, attack bool, cfg Config) (cycles, size uint64, contained bool, err error) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return 0, 0, false, err
	}
	var backend prog.HeapBackend
	if patches == nil {
		nb, nerr := prog.NewNativeBackend(space)
		if nerr != nil {
			return 0, 0, false, nerr
		}
		backend = nb
	} else {
		db, derr := defense.NewBackend(space, defense.Config{Patches: patches, Family: fam})
		if derr != nil {
			return 0, 0, false, derr
		}
		backend = db
	}
	ex, err := prog.NewExec(pc.g.Program, prog.Config{
		Backend:  backend,
		Coder:    pc.sys.Coder(),
		MaxSteps: 1 << 20,
		Engine:   cfg.Engine,
		TierUp:   cfg.TierUp,
	})
	if err != nil {
		return 0, 0, false, err
	}
	input := pc.g.Benign
	if attack {
		input = pc.g.Attack
	}
	var res *prog.Result
	panicked := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
			}
		}()
		res, err = ex.Run(input)
	}()
	if panicked {
		// Allocator state clobbered hard enough to trip a load guard:
		// unambiguously not contained. Only attack runs may land here.
		return 0, space.Size(), false, nil
	}
	if err != nil {
		if attack {
			// Step exhaustion or an engine-level error under attack is
			// recorded as a miss, not an experiment failure.
			return 0, space.Size(), false, nil
		}
		return 0, 0, false, err
	}
	contained = true
	g := pc.g
	if g.Kind.Leaky() && bytes.Contains(res.Output, g.Secret) {
		contained = false
	}
	if g.Kind.Clobbering() && res.Fault == nil && !bytes.Contains(res.Output, g.Sentinel) {
		contained = false
	}
	if g.Kind == campaign.DoubleFree && res.Fault == nil {
		contained = false
	}
	return res.Cycles, space.Size(), contained, nil
}

// Render prints the policy matrix: one row per family with per-kind
// containment cells, then the throughput and memory head-to-head.
func (r *PolicyMatrixResult) Render() string {
	header := []string{"Policy"}
	if len(r.Rows) > 0 {
		for _, cell := range r.Rows[0].Kinds {
			header = append(header, cell.Kind)
		}
	}
	header = append(header, "contained", "cycles (benign)", "overhead", "mem", "mem ovh")
	var rows [][]string
	for _, row := range r.Rows {
		cols := []string{row.Family}
		for _, cell := range row.Kinds {
			switch {
			case cell.Claimed && cell.Contained:
				cols = append(cols, "yes")
			case cell.Claimed && !cell.Contained:
				cols = append(cols, "CLAIMED-MISS(!)")
			case !cell.Claimed && cell.Contained:
				cols = append(cols, "(yes)")
			default:
				cols = append(cols, "miss*")
			}
		}
		cols = append(cols,
			fmt.Sprintf("%.0f%%", row.ObservedRate*100),
			fmt.Sprintf("%d", row.BenignCycles),
			fmt.Sprintf("+%.1f%%", row.OverheadPct),
			fmt.Sprintf("%d KiB", row.MemBytes/1024),
			fmt.Sprintf("+%.1f%%", row.MemOverheadPct),
		)
		rows = append(rows, cols)
	}
	return fmt.Sprintf("Policy matrix: defense families head-to-head (%d seeds/kind; native baseline %d cycles, %d KiB)\n",
		r.SeedsPerKind, r.NativeCycles, r.NativeMem/1024) +
		table(header, rows) +
		"  miss* = documented expected miss (Family.Containment); (yes) = contained beyond the family's claims\n"
}
