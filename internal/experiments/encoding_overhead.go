package experiments

import (
	"fmt"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/workload"
)

// EncodingOverheadResult reproduces the Section VIII-B1 comparison:
// runtime overhead of each calling-context-encoding scheme on the
// SPEC-like workloads (paper: FCS 2.4%, TCS 0.6%, Slim 0.5%,
// Incremental 0.4%).
type EncodingOverheadResult struct {
	// PerBench maps benchmark -> scheme -> overhead percent over the
	// uninstrumented run.
	PerBench map[string]map[encoding.Scheme]float64
	// Average is the cross-benchmark mean per scheme.
	Average map[encoding.Scheme]float64
	// Updates is the per-scheme total of executed encoding updates,
	// explaining the overhead mechanically.
	Updates map[encoding.Scheme]uint64
	// PerEncoder is the encoder-axis comparison: mean overhead of each
	// update arithmetic under the Incremental plan.
	PerEncoder map[encoding.EncoderKind]float64
}

// EncodingOverhead measures each scheme's runtime cost, plus an
// encoder-axis comparison (PCC vs PCCE vs DeltaPath arithmetic) under
// the Incremental plan.
func EncodingOverhead(cfg Config) (*EncodingOverheadResult, error) {
	benches := workload.SpecBenchmarks()
	if cfg.Quick {
		benches = benches[:4]
	}
	out := &EncodingOverheadResult{
		PerBench:   make(map[string]map[encoding.Scheme]float64, len(benches)),
		Average:    make(map[encoding.Scheme]float64, 4),
		Updates:    make(map[encoding.Scheme]uint64, 4),
		PerEncoder: make(map[encoding.EncoderKind]float64, 3),
	}
	encoderSums := make(map[encoding.EncoderKind]float64, 3)
	for _, b := range benches {
		p, err := internedProgram(b, cfg, flavorSpec)
		if err != nil {
			return nil, err
		}
		w := newWorkbench(cfg.Engine, p)
		base, err := w.runNative(nil)
		if err != nil {
			return nil, err
		}
		row := make(map[encoding.Scheme]float64, 4)
		for _, scheme := range encoding.AllSchemes() {
			coder, err := internedCoder(p.Graph(), p.Targets(), scheme, encoding.EncoderPCC)
			if err != nil {
				return nil, err
			}
			m, err := w.runNative(coder)
			if err != nil {
				return nil, err
			}
			row[scheme] = overheadPct(base.res.Cycles, m.res.Cycles)
			out.Updates[scheme] += m.res.EncUpdates
		}
		out.PerBench[b.Name] = row

		// Encoder axis: same (Incremental) plan, different arithmetic.
		// The PCC entry is the interned Incremental-scheme coder already
		// measured above; execution is deterministic, so its overhead is
		// reused rather than re-run.
		for _, kind := range encoding.AllEncoders() {
			if kind == encoding.EncoderPCC {
				encoderSums[kind] += row[encoding.SchemeIncremental]
				continue
			}
			coder, err := internedCoder(p.Graph(), p.Targets(), encoding.SchemeIncremental, kind)
			if err != nil {
				return nil, err
			}
			m, err := w.runNative(coder)
			if err != nil {
				return nil, err
			}
			encoderSums[kind] += overheadPct(base.res.Cycles, m.res.Cycles)
		}
	}
	for _, scheme := range encoding.AllSchemes() {
		var sum float64
		for _, row := range out.PerBench {
			sum += row[scheme]
		}
		out.Average[scheme] = sum / float64(len(out.PerBench))
	}
	for _, kind := range encoding.AllEncoders() {
		out.PerEncoder[kind] = encoderSums[kind] / float64(len(out.PerBench))
	}
	return out, nil
}

// Render prints the comparison in the paper's shape.
func (r *EncodingOverheadResult) Render() string {
	header := []string{"Benchmark"}
	for _, s := range encoding.AllSchemes() {
		header = append(header, s.String()+"(%)")
	}
	var rows [][]string
	for _, b := range workload.SpecBenchmarks() {
		row, ok := r.PerBench[b.Name]
		if !ok {
			continue
		}
		cells := []string{b.Name}
		for _, s := range encoding.AllSchemes() {
			cells = append(cells, fmt.Sprintf("%.3f", row[s]))
		}
		rows = append(rows, cells)
	}
	avg := []string{"AVERAGE"}
	for _, s := range encoding.AllSchemes() {
		avg = append(avg, fmt.Sprintf("%.3f", r.Average[s]))
	}
	rows = append(rows, avg)
	out := "Encoding runtime overhead vs uninstrumented (Section VIII-B1; paper: FCS 2.4%, TCS 0.6%, Slim 0.5%, Incremental 0.4%)\n" +
		table(header, rows)
	if len(r.PerEncoder) > 0 {
		var encRows [][]string
		for _, k := range encoding.AllEncoders() {
			encRows = append(encRows, []string{k.String(), fmt.Sprintf("%.3f", r.PerEncoder[k])})
		}
		out += "\nEncoder arithmetic under the Incremental plan (the optimizations apply to all of PCC/PCCE/DeltaPath)\n" +
			table([]string{"Encoder", "overhead (%)"}, encRows)
	}
	return out
}

// TableIIIResult reproduces Table III: binary size increase per
// encoding scheme per benchmark.
type TableIIIResult struct {
	// Rows maps benchmark -> scheme -> size increase percent.
	Rows map[string]map[encoding.Scheme]float64
	// Sites maps benchmark -> scheme -> instrumented site count.
	Sites map[string]map[encoding.Scheme]int
}

// TableIII computes the static size-increase comparison.
func TableIII(cfg Config) (*TableIIIResult, error) {
	out := &TableIIIResult{
		Rows:  make(map[string]map[encoding.Scheme]float64),
		Sites: make(map[string]map[encoding.Scheme]int),
	}
	for _, b := range workload.SpecBenchmarks() {
		g, targets, err := internedGraph(b)
		if err != nil {
			return nil, err
		}
		row := make(map[encoding.Scheme]float64, 4)
		sites := make(map[encoding.Scheme]int, 4)
		for _, scheme := range encoding.AllSchemes() {
			plan, err := internedPlan(g, targets, scheme)
			if err != nil {
				return nil, err
			}
			rep := encoding.Cost(g, plan, encoding.EncoderPCC, b.FuncSize())
			row[scheme] = rep.SizeIncreasePercent()
			sites[scheme] = rep.InstrumentedSites
		}
		out.Rows[b.Name] = row
		out.Sites[b.Name] = sites
	}
	return out, nil
}

// Render prints Table III.
func (r *TableIIIResult) Render() string {
	header := []string{"Benchmark"}
	for _, s := range encoding.AllSchemes() {
		header = append(header, s.String()+"(%)")
	}
	var rows [][]string
	for _, b := range workload.SpecBenchmarks() {
		row, ok := r.Rows[b.Name]
		if !ok {
			continue
		}
		cells := []string{b.Name}
		for _, s := range encoding.AllSchemes() {
			cells = append(cells, fmt.Sprintf("%.2f", row[s]))
		}
		rows = append(rows, cells)
	}
	return "Table III: binary size increase per encoding scheme (%)\n" + table(header, rows)
}
