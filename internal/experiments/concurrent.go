package experiments

import (
	"fmt"

	"heaptherapy/internal/defense"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/workload"
)

// ConcurrentRow is one multithreaded service measurement.
type ConcurrentRow struct {
	Service     string
	Threads     int
	OverheadPct float64
}

// ConcurrentServicesResult measures the defended system under true
// multithreaded execution: N request-handler threads share one heap
// (native or defended), with per-thread thread-local V, matching how
// the paper's shared library serves a real multithreaded Nginx/MySQL.
type ConcurrentServicesResult struct {
	Rows []ConcurrentRow
}

// ConcurrentServices runs the service workloads across thread counts.
func ConcurrentServices(cfg Config) (*ConcurrentServicesResult, error) {
	threadCounts := []int{2, 4, 8}
	requests := 300
	if cfg.Quick {
		threadCounts = []int{4}
		requests = 100
	}
	out := &ConcurrentServicesResult{}
	for _, svc := range []*workload.Service{workload.Nginx(), workload.MySQL()} {
		// One thread handles `requests` requests; every thread runs the
		// same program with its own input.
		p, err := svc.Program(requests, 1)
		if err != nil {
			return nil, err
		}
		coder, err := coderFor(p, encoding.SchemeIncremental)
		if err != nil {
			return nil, err
		}
		for _, n := range threadCounts {
			inputs := make([][]byte, n)
			for i := range inputs {
				inputs[i] = []byte{byte(i)}
			}

			nat, err := runThreadsTotal(cfg.Engine, p, nil, false, inputs)
			if err != nil {
				return nil, err
			}
			def, err := runThreadsTotal(cfg.Engine, p, coder, true, inputs)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, ConcurrentRow{
				Service:     svc.Name,
				Threads:     n,
				OverheadPct: overheadPct(nat, def),
			})
		}
	}
	return out, nil
}

// runThreadsTotal executes the program on n threads over one shared
// backend and returns the aggregate cycle cost (per-thread interpreter
// cycles plus the shared backend's total).
func runThreadsTotal(engine prog.Engine, p *prog.Program, coder *encoding.Coder, defended bool, inputs [][]byte) (uint64, error) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return 0, err
	}
	var backend prog.HeapBackend
	if defended {
		db, err := defense.NewBackend(space, defense.Config{})
		if err != nil {
			return 0, err
		}
		backend = db
	} else {
		nb, err := prog.NewNativeBackend(space)
		if err != nil {
			return 0, err
		}
		backend = nb
	}
	results, err := prog.RunThreads(p, prog.Config{Backend: backend, Coder: coder, Engine: engine}, inputs, prog.DefaultQuantum)
	if err != nil {
		return 0, err
	}
	var total uint64
	for i, r := range results {
		if r.Crashed() {
			return 0, fmt.Errorf("experiments: thread %d crashed: %v", i, r.Fault)
		}
		total += r.InterpCycles
	}
	return total + backend.Cycles(), nil
}

// Render prints the measurements.
func (r *ConcurrentServicesResult) Render() string {
	header := []string{"Service", "Threads", "Throughput overhead (%)"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Service, fmt.Sprintf("%d", row.Threads), fmt.Sprintf("%.2f", row.OverheadPct)})
	}
	return "Concurrent services: defended vs native, shared heap, thread-local V\n" + table(header, rows)
}
