package experiments

import (
	"fmt"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/workload"
)

// TableIVResult reproduces Table IV: per-benchmark heap-allocation
// statistics, both the paper's native counts (embedded from the paper)
// and the scaled counts the simulation actually executes.
type TableIVResult struct {
	// Scale is the divisor applied to the paper's counts.
	Scale uint64
	// Executed maps benchmark -> [malloc, calloc, realloc] executed.
	Executed map[string][3]uint64
}

// TableIV runs every workload and reports executed allocation counts.
func TableIV(cfg Config) (*TableIVResult, error) {
	pc := cfg.programConfig()
	benches := workload.SpecBenchmarks()
	if cfg.Quick {
		benches = benches[:4]
	}
	out := &TableIVResult{Scale: 10_000, Executed: make(map[string][3]uint64, len(benches))}
	if cfg.Scale != 0 {
		out.Scale = cfg.Scale
	}
	for _, b := range benches {
		p, _, err := b.Program(pc)
		if err != nil {
			return nil, err
		}
		m, err := runOnce(cfg.Engine, p, nil, backendNative, nil, nil)
		if err != nil {
			return nil, err
		}
		out.Executed[b.Name] = [3]uint64{
			m.res.AllocsByFn[heapsim.FnMalloc],
			m.res.AllocsByFn[heapsim.FnCalloc],
			m.res.AllocsByFn[heapsim.FnRealloc],
		}
	}
	return out, nil
}

// Render prints Table IV: the paper's counts next to the executed
// scaled counts.
func (r *TableIVResult) Render() string {
	header := []string{"Benchmark", "malloc(paper)", "calloc(paper)", "realloc(paper)", "malloc(run)", "calloc(run)", "realloc(run)"}
	var rows [][]string
	for _, b := range workload.SpecBenchmarks() {
		run, ok := r.Executed[b.Name]
		if !ok {
			continue
		}
		rows = append(rows, []string{
			b.Name,
			fmt.Sprintf("%d", b.Mallocs), fmt.Sprintf("%d", b.Callocs), fmt.Sprintf("%d", b.Reallocs),
			fmt.Sprintf("%d", run[0]), fmt.Sprintf("%d", run[1]), fmt.Sprintf("%d", run[2]),
		})
	}
	return fmt.Sprintf("Table IV: heap allocation statistics (paper counts vs executed at 1/%d scale)\n", r.Scale) +
		table(header, rows)
}

// ServiceRow is one service-throughput measurement.
type ServiceRow struct {
	// Service and Concurrency identify the configuration.
	Service     string
	Concurrency int
	// OverheadPct is the throughput overhead vs native execution.
	OverheadPct float64
}

// ServicesResult reproduces the Section VIII-B2 service measurements
// (paper: Nginx 4.2% average throughput overhead over 20-200
// concurrent requests; MySQL no observable overhead).
type ServicesResult struct {
	Rows []ServiceRow
	// Average maps service -> mean overhead.
	Average map[string]float64
}

// Services measures defended service throughput. Throughput is
// requests per cycle, so throughput overhead equals cycle overhead on
// a fixed request count.
func Services(cfg Config) (*ServicesResult, error) {
	concurrencies := []int{20, 50, 100, 150, 200}
	requests := 2000
	if cfg.Quick {
		concurrencies = []int{20, 200}
		requests = 500
	}
	out := &ServicesResult{Average: make(map[string]float64, 2)}
	for _, svc := range []*workload.Service{workload.Nginx(), workload.MySQL()} {
		var sum float64
		for _, conc := range concurrencies {
			p, err := svc.Program(requests, conc)
			if err != nil {
				return nil, err
			}
			coder, err := coderFor(p, encoding.SchemeIncremental)
			if err != nil {
				return nil, err
			}
			base, err := runOnce(cfg.Engine, p, nil, backendNative, nil, nil)
			if err != nil {
				return nil, err
			}
			m, err := runOnce(cfg.Engine, p, coder, backendFull, nil, nil)
			if err != nil {
				return nil, err
			}
			oh := overheadPct(base.res.Cycles, m.res.Cycles)
			out.Rows = append(out.Rows, ServiceRow{Service: svc.Name, Concurrency: conc, OverheadPct: oh})
			sum += oh
		}
		out.Average[svc.Name] = sum / float64(len(concurrencies))
	}
	return out, nil
}

// Render prints the service measurements.
func (r *ServicesResult) Render() string {
	header := []string{"Service", "Concurrency", "Throughput overhead (%)"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Service, fmt.Sprintf("%d", row.Concurrency), fmt.Sprintf("%.2f", row.OverheadPct)})
	}
	for svc, avg := range r.Average {
		rows = append(rows, []string{svc, "AVERAGE", fmt.Sprintf("%.2f", avg)})
	}
	return "Service throughput overhead (Section VIII-B2; paper: nginx 4.2% avg, mysql negligible)\n" +
		table(header, rows)
}

// AblationResult measures the quota ablation called out in DESIGN.md:
// deferred-free queue quota vs how long freed blocks stay unreusable.
type AblationResult struct {
	// Rows: quota bytes -> evictions and max queue occupancy observed
	// on a UAF-heavy churn.
	Rows []AblationRow
}

// AblationRow is one quota setting's outcome.
type AblationRow struct {
	Quota      uint64
	Evictions  uint64
	QueueBytes uint64
}

// Render prints the ablation.
func (r *AblationResult) Render() string {
	header := []string{"Queue quota (B)", "Evictions", "Final queue bytes"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Quota),
			fmt.Sprintf("%d", row.Evictions),
			fmt.Sprintf("%d", row.QueueBytes),
		})
	}
	return "Ablation: deferred-free queue quota (Section IX discussion)\n" + table(header, rows)
}
