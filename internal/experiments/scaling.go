package experiments

import (
	"fmt"

	"heaptherapy/internal/defense"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
)

// ScalingRow is one patch-count measurement.
type ScalingRow struct {
	// Patches is the number of loaded (non-matching) patches.
	Patches int
	// CyclesPerPair is the defense cost of one malloc/free pair.
	CyclesPerPair float64
}

// PatchScalingResult verifies the paper's O(1) claim: "it takes only
// O(1) time to determine whether a new buffer is vulnerable". The
// allocation-path cost must stay flat as the loaded patch count grows
// by orders of magnitude (none of the loaded patches match the
// workload's contexts, so the measurement isolates pure lookup).
type PatchScalingResult struct {
	Rows []ScalingRow
}

// PatchScaling measures defended allocation cost against table size.
func PatchScaling(cfg Config) (*PatchScalingResult, error) {
	counts := []int{0, 10, 100, 1000, 10000}
	if cfg.Quick {
		counts = []int{0, 100, 10000}
	}
	const (
		rounds   = 2000
		workCCID = 0x50
	)
	out := &PatchScalingResult{}
	for _, n := range counts {
		set := patch.NewSet()
		for i := 0; i < n; i++ {
			set.Add(patch.Patch{
				Fn:    heapsim.FnMalloc,
				CCID:  0x100000 + uint64(i), // never matches the workload
				Types: patch.TypeOverflow,
			})
		}
		space, err := mem.NewSpace(mem.Config{})
		if err != nil {
			return nil, err
		}
		d, err := defense.New(space, defense.Config{Patches: set})
		if err != nil {
			return nil, err
		}
		start := d.Cycles()
		for i := 0; i < rounds; i++ {
			p, err := d.Malloc(workCCID, 128)
			if err != nil {
				return nil, err
			}
			if err := d.Free(p); err != nil {
				return nil, err
			}
		}
		out.Rows = append(out.Rows, ScalingRow{
			Patches:       n,
			CyclesPerPair: float64(d.Cycles()-start) / rounds,
		})
	}
	return out, nil
}

// Render prints the scaling table.
func (r *PatchScalingResult) Render() string {
	header := []string{"Loaded patches", "cycles per malloc/free pair"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Patches),
			fmt.Sprintf("%.1f", row.CyclesPerPair),
		})
	}
	return "Patch-table scaling (Section VI: O(1) lookup per allocation)\n" + table(header, rows)
}
