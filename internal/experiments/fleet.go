package experiments

import (
	"fmt"
	"runtime"
	"time"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/fleet"
	"heaptherapy/internal/workload"
)

// FleetRow is one worker-count measurement of the parallel serving
// runtime.
type FleetRow struct {
	// Workers is the fleet's goroutine count.
	Workers int
	// NativeReqPerSec and DefendedReqPerSec are wall-clock request
	// throughput (one request = one full service-program execution).
	NativeReqPerSec   float64
	DefendedReqPerSec float64
	// OverheadPct is the defended throughput loss versus native at the
	// same worker count.
	OverheadPct float64
	// DefendedSpeedup is defended throughput relative to the 1-worker
	// defended baseline; EfficiencyPct divides it by the worker count.
	DefendedSpeedup float64
	EfficiencyPct   float64
}

// FleetResult is the scaling experiment over the parallel fleet
// runtime: M defended tenants sharing one sealed patch table across
// real goroutines. Unlike the other experiments, which report on the
// deterministic virtual-cycle axis, scaling across OS threads is a
// wall-clock property — so these numbers vary with the host and are
// only meaningful alongside the recorded GOMAXPROCS.
type FleetResult struct {
	// GOMAXPROCS is the parallelism available during the measurement.
	GOMAXPROCS int
	// Requests is the number of service-program executions per
	// measurement.
	Requests int
	Rows     []FleetRow
}

// Fleet measures native and defended request throughput at increasing
// worker counts over the nginx stand-in, each request recycling a
// pooled worker context.
func Fleet(cfg Config) (*FleetResult, error) {
	workerCounts := []int{1, 2, 4, 8}
	requests := 256
	if cfg.Quick {
		workerCounts = []int{1, 2, 4}
		requests = 64
	}

	// Each fleet request executes a short nginx connection burst:
	// allocation churn, compute, and teardown per handled request.
	p, err := workload.Nginx().Program(8, 2)
	if err != nil {
		return nil, err
	}
	coder, err := coderFor(p, encoding.SchemeIncremental)
	if err != nil {
		return nil, err
	}
	patches, err := medianCCIDPatches(cfg.Engine, p, coder, 4)
	if err != nil {
		return nil, err
	}

	inputs := make([][]byte, requests)
	out := &FleetResult{GOMAXPROCS: runtime.GOMAXPROCS(0), Requests: requests}

	measure := func(f *fleet.Fleet) (float64, error) {
		// One warm pass populates the context pool; the timed pass
		// measures steady-state serving.
		if _, err := f.Serve(p, coder, inputs); err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := f.Serve(p, coder, inputs); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		if elapsed <= 0 {
			elapsed = time.Nanosecond
		}
		return float64(requests) / elapsed.Seconds(), nil
	}

	var defendedBase float64
	for _, w := range workerCounts {
		native, err := measure(fleet.New(fleet.Config{Workers: w, Engine: cfg.Engine}))
		if err != nil {
			return nil, fmt.Errorf("experiments: fleet native w=%d: %w", w, err)
		}
		defended, err := measure(fleet.New(fleet.Config{
			Workers:  w,
			Defended: true,
			Patches:  patches,
			Engine:   cfg.Engine,
		}))
		if err != nil {
			return nil, fmt.Errorf("experiments: fleet defended w=%d: %w", w, err)
		}
		if w == workerCounts[0] {
			defendedBase = defended
		}
		row := FleetRow{
			Workers:           w,
			NativeReqPerSec:   native,
			DefendedReqPerSec: defended,
			OverheadPct:       100 * (native - defended) / native,
			DefendedSpeedup:   defended / defendedBase,
		}
		row.EfficiencyPct = 100 * row.DefendedSpeedup / float64(w)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the scaling table.
func (r *FleetResult) Render() string {
	header := []string{"Workers", "native req/s", "defended req/s", "overhead", "speedup", "efficiency"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Workers),
			fmt.Sprintf("%.0f", row.NativeReqPerSec),
			fmt.Sprintf("%.0f", row.DefendedReqPerSec),
			fmt.Sprintf("%+.1f%%", row.OverheadPct),
			fmt.Sprintf("%.2fx", row.DefendedSpeedup),
			fmt.Sprintf("%.0f%%", row.EfficiencyPct),
		})
	}
	return fmt.Sprintf(
		"Fleet scaling (parallel defended tenants over one sealed patch table; wall-clock, GOMAXPROCS=%d, %d requests)\n",
		r.GOMAXPROCS, r.Requests) + table(header, rows)
}
