package experiments

import (
	"fmt"
	"math"
	"testing"
	"time"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
)

// TierUpRow is one benchmark's three-engine comparison.
type TierUpRow struct {
	Bench string
	// Per-run wall-clock nanoseconds on each engine, measured at steady
	// state (the compiled machine is warmed past its promotion threshold
	// before timing, so the row reports the closure tier, not compilation).
	TreeNsOp     float64
	VMNsOp       float64
	CompiledNsOp float64
	// SpeedupVsTree / SpeedupVsVM are the compiled engine's ratios.
	SpeedupVsTree float64
	SpeedupVsVM   float64
	// Promotions is how many functions the machine lowered to closures.
	Promotions uint64
	// Cycles is the engine-independent virtual-cycle cost of one run;
	// the harness asserts all three engines report exactly this value.
	Cycles uint64
}

// TierUpComparisonResult reports the tier-up compiled engine's
// wall-clock advantage over the bytecode VM and the tree-walker on
// encoded-call-heavy workloads: programs whose inner loops are
// dominated by instrumented call dispatch (every call pays a
// SiteUpdate) with the simulated allocator kept cold, so the spread
// between engines is pure interpretation overhead — the dimension the
// closure tier is built to compress.
type TierUpComparisonResult struct {
	Rows []TierUpRow
	// GeomeanVsVM / GeomeanVsTree are geometric-mean compiled-engine
	// speedups across benchmarks. The committed baseline requires
	// GeomeanVsVM >= 1.5 on this suite.
	GeomeanVsVM   float64
	GeomeanVsTree float64
	// Threshold is the promotion threshold the machines ran with.
	Threshold uint64
	// SteadyStateAllocs is testing.AllocsPerRun for Machine.RunReuse on
	// the first benchmark once fully promoted. The committed baseline
	// pins 0: the closure tier allocates nothing per run.
	SteadyStateAllocs float64
}

// denseCallees builds n leaf functions that statically reach malloc
// (so the Incremental plan instruments every call site) behind a
// branch the loop counter never satisfies, keeping the allocator cold.
func denseCallees(n int) map[string]*prog.Func {
	never := prog.Bin{Op: prog.OpGt, A: prog.V("x"), B: prog.C(1 << 40)}
	funcs := make(map[string]*prog.Func, n)
	for i := 0; i < n; i++ {
		mul := uint64(2*i + 3)
		funcs[fmt.Sprintf("mix%d", i)] = &prog.Func{
			Params: []string{"a", "x"},
			Body: []prog.Stmt{
				prog.If{Cond: never, Then: []prog.Stmt{
					prog.Alloc{Dst: "p", Size: prog.C(16)},
					prog.FreeStmt{Ptr: prog.V("p")},
				}},
				prog.Return{E: prog.Bin{Op: prog.OpXor,
					A: prog.Bin{Op: prog.OpMul, A: prog.V("a"), B: prog.C(mul)},
					B: prog.V("x")}},
			},
		}
	}
	return funcs
}

// tierUpBenchmarks are the encoded-call-heavy programs: wide call fans
// (every iteration calls k instrumented sites), a deep chain (each
// call pushes another encoded frame), and a branchy callee (exercising
// the compare-and-branch superinstructions around the call sites).
func tierUpBenchmarks(quick bool) []struct {
	name string
	p    *prog.Program
} {
	iters := uint64(512)
	if quick {
		iters = 128
	}

	loop := func(body []prog.Stmt) []prog.Stmt {
		return append([]prog.Stmt{
			prog.Assign{Dst: "i", E: prog.C(0)},
			prog.Assign{Dst: "acc", E: prog.C(0)},
			prog.While{Cond: prog.Bin{Op: prog.OpLt, A: prog.V("i"), B: prog.C(iters)}, Body: append(body,
				prog.Assign{Dst: "i", E: prog.Bin{Op: prog.OpAdd, A: prog.V("i"), B: prog.C(1)}})},
		}, prog.Return{E: prog.V("acc")})
	}

	fan := func(name string, k int) struct {
		name string
		p    *prog.Program
	} {
		funcs := denseCallees(k)
		var body []prog.Stmt
		for i := 0; i < k; i++ {
			body = append(body, prog.Call{Dst: "acc", Callee: fmt.Sprintf("mix%d", i),
				Args: []prog.Expr{prog.V("acc"), prog.V("i")}})
		}
		funcs["main"] = &prog.Func{Body: loop(body)}
		return struct {
			name string
			p    *prog.Program
		}{name, prog.MustLink(&prog.Program{Name: name, Funcs: funcs})}
	}

	// chain: main fans to two hops and each hop fans to two leaves, so
	// every iteration crosses two encoded call edges per hop and every
	// function is a branching node (the Incremental plan instruments
	// only those) — a two-deep instrumented call tree.
	chainFuncs := denseCallees(2)
	for i := 0; i < 2; i++ {
		chainFuncs[fmt.Sprintf("hop%d", i)] = &prog.Func{Params: []string{"a", "x"}, Body: []prog.Stmt{
			prog.Call{Dst: "r", Callee: "mix0", Args: []prog.Expr{prog.V("a"), prog.V("x")}},
			prog.Call{Dst: "r", Callee: "mix1", Args: []prog.Expr{prog.V("r"), prog.V("x")}},
			prog.Return{E: prog.Bin{Op: prog.OpAdd, A: prog.V("r"), B: prog.C(uint64(i + 1))}},
		}}
	}
	chainFuncs["main"] = &prog.Func{Body: loop([]prog.Stmt{
		prog.Call{Dst: "acc", Callee: "hop0", Args: []prog.Expr{prog.V("acc"), prog.V("i")}},
		prog.Call{Dst: "acc", Callee: "hop1", Args: []prog.Expr{prog.V("acc"), prog.V("i")}},
	})}
	chain := prog.MustLink(&prog.Program{Name: "dense-chain", Funcs: chainFuncs})

	// branchy: the callee result steers a taken-both-ways branch in the
	// loop, keeping the fused compare-and-branch closures on the hot path.
	brFuncs := denseCallees(2)
	brFuncs["main"] = &prog.Func{Body: loop([]prog.Stmt{
		prog.Call{Dst: "v", Callee: "mix0", Args: []prog.Expr{prog.V("acc"), prog.V("i")}},
		prog.If{Cond: prog.Bin{Op: prog.OpAnd, A: prog.V("v"), B: prog.C(1)},
			Then: []prog.Stmt{prog.Assign{Dst: "acc", E: prog.Bin{Op: prog.OpAdd, A: prog.V("acc"), B: prog.V("v")}}},
			Else: []prog.Stmt{prog.Call{Dst: "acc", Callee: "mix1", Args: []prog.Expr{prog.V("v"), prog.V("i")}}}},
	})}
	branchy := prog.MustLink(&prog.Program{Name: "dense-branchy", Funcs: brFuncs})

	out := []struct {
		name string
		p    *prog.Program
	}{
		fan("dense-fan2", 2),
		fan("dense-fan4", 4),
		{"dense-chain", chain},
		{"dense-branchy", branchy},
	}
	if quick {
		out = out[:2]
	}
	return out
}

// tierUpCoder instruments p with the Incremental plan and PCC encoder
// — the configuration whose SiteUpdates the compiled tier bakes into
// integer arithmetic.
func tierUpCoder(p *prog.Program) (*encoding.Coder, error) {
	plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
	if err != nil {
		return nil, err
	}
	if plan.NumSites() == 0 {
		return nil, fmt.Errorf("experiments: %s has no instrumented sites", p.Name)
	}
	return encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
}

func tierUpBackend() (*prog.NativeBackend, error) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return nil, err
	}
	return prog.NewNativeBackend(space)
}

// TierUpComparison times all three engines on the encoded-call suite
// at steady state and cross-checks their virtual-cycle accounts.
func TierUpComparison(cfg Config) (*TierUpComparisonResult, error) {
	threshold := cfg.TierUp
	if threshold == 0 {
		threshold = prog.DefaultTierUp
	}
	reps := 30
	if cfg.Quick {
		reps = 5
	}
	out := &TierUpComparisonResult{Threshold: threshold}
	logVM, logTree, n := 0.0, 0.0, 0
	for _, b := range tierUpBenchmarks(cfg.Quick) {
		coder, err := tierUpCoder(b.p)
		if err != nil {
			return nil, err
		}
		compiled, err := prog.Compile(b.p, coder)
		if err != nil {
			return nil, err
		}

		// One executor per engine, one warmup run (past the promotion
		// threshold for the machine), then timed steady-state reps.
		type timedRun struct {
			run func(*prog.Result) error
		}
		newEngine := func(engine prog.Engine) (timedRun, *prog.Machine, error) {
			backend, err := tierUpBackend()
			if err != nil {
				return timedRun{}, nil, err
			}
			pcfg := prog.Config{Backend: backend, Coder: coder, TierUp: threshold}
			switch engine {
			case prog.EngineTree:
				it, err := prog.New(b.p, pcfg)
				if err != nil {
					return timedRun{}, nil, err
				}
				return timedRun{func(res *prog.Result) error {
					r, err := it.Run(nil)
					if err == nil {
						*res = *r
					}
					return err
				}}, nil, nil
			case prog.EngineVM:
				vm, err := prog.NewVM(compiled, pcfg)
				if err != nil {
					return timedRun{}, nil, err
				}
				return timedRun{func(res *prog.Result) error { return vm.RunReuse(res, nil) }}, nil, nil
			default:
				m, err := prog.NewMachine(compiled, pcfg)
				if err != nil {
					return timedRun{}, nil, err
				}
				return timedRun{func(res *prog.Result) error { return m.RunReuse(res, nil) }}, m, nil
			}
		}

		time1 := func(engine prog.Engine) (float64, uint64, uint64, error) {
			tr, m, err := newEngine(engine)
			if err != nil {
				return 0, 0, 0, err
			}
			var res prog.Result
			warmups := 1 + int(threshold)
			for w := 0; w < warmups; w++ {
				if err := tr.run(&res); err != nil {
					return 0, 0, 0, err
				}
				if res.Crashed() {
					return 0, 0, 0, fmt.Errorf("experiments: %s crashed on %v: %v", b.name, engine, res.Fault)
				}
			}
			if m != nil && m.Promotions() == 0 {
				return 0, 0, 0, fmt.Errorf("experiments: %s never promoted at threshold %d", b.name, threshold)
			}
			start := time.Now()
			for r := 0; r < reps; r++ {
				if err := tr.run(&res); err != nil {
					return 0, 0, 0, err
				}
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(reps)
			var promos uint64
			if m != nil {
				promos = m.Promotions()
			}
			return ns, res.Cycles, promos, nil
		}

		treeNs, treeCyc, _, err := time1(prog.EngineTree)
		if err != nil {
			return nil, err
		}
		vmNs, vmCyc, _, err := time1(prog.EngineVM)
		if err != nil {
			return nil, err
		}
		compNs, compCyc, promos, err := time1(prog.EngineCompiled)
		if err != nil {
			return nil, err
		}
		if treeCyc != vmCyc || treeCyc != compCyc {
			return nil, fmt.Errorf("experiments: %s: engines disagree on cycles (tree %d, vm %d, compiled %d)",
				b.name, treeCyc, vmCyc, compCyc)
		}
		row := TierUpRow{Bench: b.name, TreeNsOp: treeNs, VMNsOp: vmNs, CompiledNsOp: compNs,
			Promotions: promos, Cycles: treeCyc}
		if compNs > 0 {
			row.SpeedupVsTree = treeNs / compNs
			row.SpeedupVsVM = vmNs / compNs
			logTree += math.Log(row.SpeedupVsTree)
			logVM += math.Log(row.SpeedupVsVM)
			n++
		}
		out.Rows = append(out.Rows, row)
	}
	if n > 0 {
		out.GeomeanVsVM = math.Exp(logVM / float64(n))
		out.GeomeanVsTree = math.Exp(logTree / float64(n))
	}
	allocs, err := tierUpSteadyStateAllocs(threshold)
	if err != nil {
		return nil, fmt.Errorf("experiments: compiled steady-state pin: %w", err)
	}
	out.SteadyStateAllocs = allocs
	return out, nil
}

// tierUpSteadyStateAllocs measures Go allocations per fully-promoted
// machine run on the first suite benchmark.
func tierUpSteadyStateAllocs(threshold uint64) (float64, error) {
	b := tierUpBenchmarks(true)[0]
	coder, err := tierUpCoder(b.p)
	if err != nil {
		return 0, err
	}
	c, err := prog.Compile(b.p, coder)
	if err != nil {
		return 0, err
	}
	backend, err := tierUpBackend()
	if err != nil {
		return 0, err
	}
	m, err := prog.NewMachine(c, prog.Config{Backend: backend, Coder: coder, TierUp: threshold})
	if err != nil {
		return 0, err
	}
	var res prog.Result
	for w := 0; w < 1+int(threshold); w++ {
		if err := m.RunReuse(&res, nil); err != nil {
			return 0, err
		}
	}
	if m.Promotions() == 0 {
		return 0, fmt.Errorf("pin workload never promoted at threshold %d", threshold)
	}
	var runErr error
	n := testing.AllocsPerRun(20, func() {
		if err := m.RunReuse(&res, nil); err != nil {
			runErr = err
		}
	})
	return n, runErr
}

// Render prints the comparison.
func (r *TierUpComparisonResult) Render() string {
	header := []string{"Benchmark", "tree ns/op", "vm ns/op", "compiled ns/op", "vs vm", "vs tree", "promoted", "cycles (equal)"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Bench,
			fmt.Sprintf("%.0f", row.TreeNsOp),
			fmt.Sprintf("%.0f", row.VMNsOp),
			fmt.Sprintf("%.0f", row.CompiledNsOp),
			fmt.Sprintf("%.2fx", row.SpeedupVsVM),
			fmt.Sprintf("%.2fx", row.SpeedupVsTree),
			fmt.Sprintf("%d", row.Promotions),
			fmt.Sprintf("%d", row.Cycles),
		})
	}
	return fmt.Sprintf("Tier-up compiled engine on encoded-call-heavy workloads (threshold %d; geomean %.2fx vs vm, %.2fx vs tree; virtual cycles verified equal; steady-state compiled allocs/run %.0f)\n",
		r.Threshold, r.GeomeanVsVM, r.GeomeanVsTree, r.SteadyStateAllocs) + table(header, rows)
}
