package experiments

import (
	"fmt"
	"sort"
	"time"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/fleet"
	"heaptherapy/internal/telemetry"
	"heaptherapy/internal/workload"
)

// TelemetryResult is the telemetry-layer overhead experiment: the same
// defended fleet workload served with the collector absent and present.
// Virtual-cycle results are bit-identical by construction (telemetry
// never touches the cost model), so the interesting axes are wall-clock
// cost and what the enabled run actually captured.
type TelemetryResult struct {
	// Requests per measured pass and passes per configuration.
	Requests int
	Passes   int
	// DisabledReqPerSec and EnabledReqPerSec are best-of-passes
	// wall-clock throughput without and with a live collector.
	DisabledReqPerSec float64
	EnabledReqPerSec  float64
	// OverheadPct is the throughput loss from enabling telemetry.
	OverheadPct float64
	// Workers is the fleet's parallelism during the measurement.
	Workers int
	// Snapshot is the merged fleet snapshot from the enabled run.
	Snapshot *telemetry.Snapshot
	// PatchHitKeys counts distinct patches that took sealed-table hits.
	PatchHitKeys int
	// PatchHitTotal sums hits across those patches.
	PatchHitTotal uint64
}

// TelemetryOverhead serves the nginx stand-in through a defended fleet
// twice — collector off, then on — and reports throughput plus the
// enabled run's merged snapshot. Best-of-N passes on each side damps
// scheduler noise; the request stream is identical in both.
func TelemetryOverhead(cfg Config) (*TelemetryResult, error) {
	requests, passes, workers := 256, 5, 4
	if cfg.Quick {
		requests, passes = 64, 3
	}

	p, err := workload.Nginx().Program(8, 2)
	if err != nil {
		return nil, err
	}
	coder, err := coderFor(p, encoding.SchemeIncremental)
	if err != nil {
		return nil, err
	}
	patches, err := medianCCIDPatches(cfg.Engine, p, coder, 4)
	if err != nil {
		return nil, err
	}
	inputs := make([][]byte, requests)

	measure := func(f *fleet.Fleet) (float64, error) {
		// Warm pass to populate the context pool, then best-of-N timed.
		if _, err := f.Serve(p, coder, inputs); err != nil {
			return 0, err
		}
		best := 0.0
		for i := 0; i < passes; i++ {
			start := time.Now()
			if _, err := f.Serve(p, coder, inputs); err != nil {
				return 0, err
			}
			elapsed := time.Since(start)
			if elapsed <= 0 {
				elapsed = time.Nanosecond
			}
			if rps := float64(requests) / elapsed.Seconds(); rps > best {
				best = rps
			}
		}
		return best, nil
	}

	base := fleet.Config{Workers: workers, Defended: true, Patches: patches, Engine: cfg.Engine}
	disabled, err := measure(fleet.New(base))
	if err != nil {
		return nil, fmt.Errorf("experiments: telemetry disabled pass: %w", err)
	}

	enabledCfg := base
	enabledCfg.Telemetry = telemetry.New(telemetry.Config{})
	ef := fleet.New(enabledCfg)
	enabled, err := measure(ef)
	if err != nil {
		return nil, fmt.Errorf("experiments: telemetry enabled pass: %w", err)
	}
	stats := ef.Stats()

	out := &TelemetryResult{
		Requests:          requests,
		Passes:            passes,
		Workers:           workers,
		DisabledReqPerSec: disabled,
		EnabledReqPerSec:  enabled,
		OverheadPct:       100 * (disabled - enabled) / disabled,
		Snapshot:          stats.Telemetry,
		PatchHitKeys:      len(stats.PatchHits),
	}
	for _, n := range stats.PatchHits {
		out.PatchHitTotal += n
	}
	return out, nil
}

// Render prints the throughput pair and a counter summary of what the
// enabled run recorded.
func (r *TelemetryResult) Render() string {
	s := fmt.Sprintf(
		"Telemetry layer overhead (defended fleet, %d workers, %d requests, best of %d passes; wall-clock)\n"+
			"  collector disabled:  %.0f req/s\n"+
			"  collector enabled:   %.0f req/s\n"+
			"  overhead:            %+.1f%%\n",
		r.Workers, r.Requests, r.Passes,
		r.DisabledReqPerSec, r.EnabledReqPerSec, r.OverheadPct)
	if r.Snapshot != nil {
		s += fmt.Sprintf("  sealed-table hits:   %d across %d patch(es)\n",
			r.PatchHitTotal, r.PatchHitKeys)
		s += fmt.Sprintf("  enabled run recorded %d tenant(s), %d event(s):\n",
			r.Snapshot.Tenants, r.Snapshot.EventsTotal)
		names := make([]string, 0, len(r.Snapshot.Counters))
		for name := range r.Snapshot.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s += fmt.Sprintf("    %-22s %12d\n", name, r.Snapshot.Counters[name])
		}
	}
	return s
}
