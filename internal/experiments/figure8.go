package experiments

import (
	"fmt"
	"sort"

	"heaptherapy/internal/defense"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/workload"
)

// Figure8Configs are the measured configurations of Figure 8, in
// paper order.
var Figure8Configs = []string{"interpose", "patch0", "patch1", "patch5"}

// Figure8Result reproduces Figure 8: normalized execution-time
// overhead of the full system on SPEC-like workloads under increasing
// deployment levels (paper averages: interposition only 1.9%, zero
// patches 4.3%, one patch 4.7%, five patches 5.2%).
type Figure8Result struct {
	// PerBench maps benchmark -> config -> overhead percent vs native.
	PerBench map[string]map[string]float64
	// Average is the cross-benchmark mean per config.
	Average map[string]float64
}

// Figure8 measures deployment overhead. Following the paper's
// protocol, patches are planted on median-frequency allocation-time
// CCIDs with the overflow type (the most expensive defense).
func Figure8(cfg Config) (*Figure8Result, error) {
	benches := workload.SpecBenchmarks()
	if cfg.Quick {
		benches = benches[:4]
	}
	out := &Figure8Result{
		PerBench: make(map[string]map[string]float64, len(benches)),
		Average:  make(map[string]float64, len(Figure8Configs)),
	}
	for _, b := range benches {
		p, err := internedProgram(b, cfg, flavorSpec)
		if err != nil {
			return nil, err
		}
		coder, err := internedCoder(p.Graph(), p.Targets(), encoding.SchemeIncremental, encoding.EncoderPCC)
		if err != nil {
			return nil, err
		}
		w := newWorkbench(cfg.Engine, p)
		base, err := w.runNative(nil)
		if err != nil {
			return nil, err
		}
		row := make(map[string]float64, len(Figure8Configs))

		// Interposition only.
		m, err := w.runDefended(coder, defense.ModeInterpose, nil)
		if err != nil {
			return nil, err
		}
		row["interpose"] = overheadPct(base.res.Cycles, m.res.Cycles)

		// One profiling run ranks the allocation contexts; every
		// deployment level derives its median-centered patch window from
		// that same ranking (profiling is deterministic, so re-profiling
		// per level would reproduce it bit-for-bit).
		ranked, err := w.profile(coder)
		if err != nil {
			return nil, err
		}
		for _, n := range []int{0, 1, 5} {
			patches := selectMedianPatches(ranked, n)
			m, err := w.runDefended(coder, defense.ModeFull, patches)
			if err != nil {
				return nil, err
			}
			row[fmt.Sprintf("patch%d", n)] = overheadPct(base.res.Cycles, m.res.Cycles)
		}
		out.PerBench[b.Name] = row
	}
	for _, c := range Figure8Configs {
		var sum float64
		for _, row := range out.PerBench {
			sum += row[c]
		}
		out.Average[c] = sum / float64(len(out.PerBench))
	}
	return out, nil
}

// Render prints Figure 8 as a table.
func (r *Figure8Result) Render() string {
	header := append([]string{"Benchmark"}, Figure8Configs...)
	var rows [][]string
	names := make([]string, 0, len(r.PerBench))
	for _, b := range workload.SpecBenchmarks() {
		if _, ok := r.PerBench[b.Name]; ok {
			names = append(names, b.Name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		cells := []string{name}
		for _, c := range Figure8Configs {
			cells = append(cells, fmt.Sprintf("%.2f", r.PerBench[name][c]))
		}
		rows = append(rows, cells)
	}
	avg := []string{"AVERAGE"}
	for _, c := range Figure8Configs {
		avg = append(avg, fmt.Sprintf("%.2f", r.Average[c]))
	}
	rows = append(rows, avg)
	return "Figure 8: execution-time overhead vs native (%; paper averages: interpose 1.9, 0 patches 4.3, 1 patch 4.7, 5 patches 5.2)\n" +
		table(header, rows)
}

// Figure9Result reproduces Figure 9: memory (RSS-proxy) overhead of
// the running system (paper average: 4.3%, proportional to live
// buffers, guard pages excluded as they are virtual pages). The paper
// samples VmRSS 30 times per second and averages the readings; this
// reproduction samples the live heap footprint at every allocation
// event and averages, and reports the peak-based ratio alongside.
type Figure9Result struct {
	// PerBench maps benchmark -> sampled-average overhead percent.
	PerBench map[string]float64
	// PerBenchPeak maps benchmark -> peak-footprint overhead percent.
	PerBenchPeak map[string]float64
	// Average is the cross-benchmark mean of the sampled overheads.
	Average float64
}

// rssSampler wraps a backend and samples the heap footprint at every
// allocation boundary, the simulation's substitute for the paper's
// 30 Hz /proc/[pid]/status VmRSS poller.
type rssSampler struct {
	prog.HeapBackend
	heap    *heapsim.Heap
	sum     uint64
	samples uint64
}

func (r *rssSampler) sample() {
	r.sum += r.heap.Stats().InUseBytes
	r.samples++
}

func (r *rssSampler) Alloc(fn heapsim.AllocFn, ccid, n, size, align uint64) (uint64, error) {
	p, err := r.HeapBackend.Alloc(fn, ccid, n, size, align)
	r.sample()
	return p, err
}

func (r *rssSampler) Free(ptr, ccid uint64) error {
	err := r.HeapBackend.Free(ptr, ccid)
	r.sample()
	return err
}

func (r *rssSampler) average() uint64 {
	if r.samples == 0 {
		return 0
	}
	return r.sum / r.samples
}

// Figure9 measures the footprint of the live-heap workloads under the
// full defense (zero patches: the paper's memory overhead is the
// per-buffer metadata, and guard pages do not consume RSS).
func Figure9(cfg Config) (*Figure9Result, error) {
	benches := workload.SpecBenchmarks()
	if cfg.Quick {
		benches = benches[:4]
	}
	out := &Figure9Result{
		PerBench:     make(map[string]float64, len(benches)),
		PerBenchPeak: make(map[string]float64, len(benches)),
	}
	for _, b := range benches {
		p, err := internedProgram(b, cfg, flavorLiveHeap)
		if err != nil {
			return nil, err
		}
		coder, err := internedCoder(p.Graph(), p.Targets(), encoding.SchemeIncremental, encoding.EncoderPCC)
		if err != nil {
			return nil, err
		}
		natAvg, natPeak, err := runSampled(cfg.Engine, p, nil, backendNative)
		if err != nil {
			return nil, err
		}
		defAvg, defPeak, err := runSampled(cfg.Engine, p, coder, backendFull)
		if err != nil {
			return nil, err
		}
		out.PerBench[b.Name] = overheadPct(natAvg, defAvg)
		out.PerBenchPeak[b.Name] = overheadPct(natPeak, defPeak)
	}
	var sum float64
	for _, v := range out.PerBench {
		sum += v
	}
	out.Average = sum / float64(len(out.PerBench))
	return out, nil
}

// runSampled executes p with footprint sampling and returns the
// average and peak live-heap bytes.
func runSampled(engine prog.Engine, p *prog.Program, coder *encoding.Coder, kind backendKind) (avg, peak uint64, err error) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return 0, 0, err
	}
	var (
		inner prog.HeapBackend
		heap  *heapsim.Heap
	)
	if kind == backendNative {
		nb, err := prog.NewNativeBackend(space)
		if err != nil {
			return 0, 0, err
		}
		inner, heap = nb, nb.Heap()
	} else {
		db, err := defense.NewBackend(space, defense.Config{Mode: defense.ModeFull})
		if err != nil {
			return 0, 0, err
		}
		inner, heap = db, db.Defender().Heap()
	}
	sampler := &rssSampler{HeapBackend: inner, heap: heap}
	it, err := execFor(engine, p, coder, sampler)
	if err != nil {
		return 0, 0, err
	}
	res, err := it.Run(nil)
	if err != nil {
		return 0, 0, err
	}
	if res.Crashed() {
		return 0, 0, fmt.Errorf("experiments: %s crashed: %v", p.Name, res.Fault)
	}
	return sampler.average(), heap.Stats().PeakInUseBytes, nil
}

// Render prints Figure 9 as a table.
func (r *Figure9Result) Render() string {
	header := []string{"Benchmark", "sampled avg (%)", "peak (%)"}
	var rows [][]string
	for _, b := range workload.SpecBenchmarks() {
		v, ok := r.PerBench[b.Name]
		if !ok {
			continue
		}
		rows = append(rows, []string{
			b.Name, fmt.Sprintf("%.2f", v), fmt.Sprintf("%.2f", r.PerBenchPeak[b.Name]),
		})
	}
	rows = append(rows, []string{"AVERAGE", fmt.Sprintf("%.2f", r.Average), ""})
	return "Figure 9: memory overhead vs native (%; sampled like the paper's 30 Hz RSS poller; paper average 4.3)\n" +
		table(header, rows)
}

// Figure8PatchSelection exposes the median-CCID patch-selection
// protocol for external harnesses (bench_test.go).
func Figure8PatchSelection(p *prog.Program, coder *encoding.Coder, n int) (*patch.Set, error) {
	return medianCCIDPatches(prog.EngineTree, p, coder, n)
}
