package experiments

import (
	"heaptherapy/internal/defense"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
)

// Ablation sweeps the deferred-free queue quota on a UAF-heavy churn
// and reports eviction pressure: the memory-vs-reuse-distance tradeoff
// the paper's Section IX discusses (replaying with 1/N CCID subspaces
// when the quota drains).
func Ablation(cfg Config) (*AblationResult, error) {
	quotas := []uint64{4 << 10, 64 << 10, 1 << 20, 8 << 20}
	if cfg.Quick {
		quotas = []uint64{4 << 10, 1 << 20}
	}
	const (
		ccid    = 0x0DD
		blocks  = 2000
		blockSz = 512
	)
	out := &AblationResult{}
	for _, quota := range quotas {
		space, err := mem.NewSpace(mem.Config{})
		if err != nil {
			return nil, err
		}
		d, err := defense.New(space, defense.Config{
			QueueQuota: quota,
			Patches: patch.NewSet(patch.Patch{
				Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeUseAfterFree,
			}),
		})
		if err != nil {
			return nil, err
		}
		for i := 0; i < blocks; i++ {
			p, err := d.Malloc(ccid, blockSz)
			if err != nil {
				return nil, err
			}
			if err := d.Free(p); err != nil {
				return nil, err
			}
		}
		st := d.Stats()
		out.Rows = append(out.Rows, AblationRow{
			Quota:      quota,
			Evictions:  st.QueueEvictions,
			QueueBytes: st.QueueBytes,
		})
	}
	return out, nil
}

// GlobalGuardBaseline compares the paper's motivation claim: guard
// pages on EVERY buffer (Electric Fence style) versus guard pages only
// on patched buffers. It returns (globalPct, targetedPct): cycle
// overhead of each policy against native on an allocation-heavy churn.
func GlobalGuardBaseline(cfg Config) (global, targeted float64, err error) {
	const (
		vulnCCID = 0x77
		rounds   = 3000
	)
	run := func(patches *patch.Set) (uint64, error) {
		space, err := mem.NewSpace(mem.Config{})
		if err != nil {
			return 0, err
		}
		d, err := defense.New(space, defense.Config{Patches: patches})
		if err != nil {
			return 0, err
		}
		for i := 0; i < rounds; i++ {
			// 7 "application" contexts plus 1 vulnerable one.
			for c := uint64(0); c < 8; c++ {
				ccid := 0x100 + c
				if c == 7 {
					ccid = vulnCCID
				}
				p, err := d.Malloc(ccid, 128)
				if err != nil {
					return 0, err
				}
				if err := d.Free(p); err != nil {
					return 0, err
				}
			}
		}
		return d.Cycles(), nil
	}

	base, err := run(patch.NewSet())
	if err != nil {
		return 0, 0, err
	}
	// Targeted: only the vulnerable context gets a guard page.
	tgt, err := run(patch.NewSet(patch.Patch{
		Fn: heapsim.FnMalloc, CCID: vulnCCID, Types: patch.TypeOverflow,
	}))
	if err != nil {
		return 0, 0, err
	}
	// Global: every context guarded.
	all := patch.NewSet()
	for c := uint64(0); c < 8; c++ {
		ccid := 0x100 + c
		if c == 7 {
			ccid = vulnCCID
		}
		all.Add(patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeOverflow})
	}
	glob, err := run(all)
	if err != nil {
		return 0, 0, err
	}
	return overheadPct(base, glob), overheadPct(base, tgt), nil
}
