package experiments

import (
	"fmt"

	"heaptherapy/internal/core"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/vuln"
)

// TableIIRow is one effectiveness result.
type TableIIRow struct {
	// Name and Ref identify the program (Table II's first columns).
	Name, Ref string
	// Expected is the vulnerability class from the corpus definition.
	Expected patch.TypeMask
	// Detected is the union of patch types the offline analysis found.
	Detected patch.TypeMask
	// Patches is the number of patches generated.
	Patches int
	// AttackNative reports whether the attack succeeded undefended.
	AttackNative bool
	// AttackDefended reports whether the attack still succeeded with
	// patches deployed (must be false).
	AttackDefended bool
	// BenignOK reports whether benign inputs behaved identically under
	// the defense.
	BenignOK bool
}

// Defeated reports whether the pipeline handled this case end to end.
func (r TableIIRow) Defeated() bool {
	return r.AttackNative && !r.AttackDefended && r.Patches > 0 && r.BenignOK
}

// TableIIResult reproduces Table II over the whole corpus.
type TableIIResult struct {
	Rows []TableIIRow
}

// TableII runs the effectiveness evaluation: patch generation and
// online defense for every corpus program.
func TableII(cfg Config) (*TableIIResult, error) {
	cases := vuln.AllCases()
	if cfg.Quick {
		cases = vuln.Named()
	}
	out := &TableIIResult{}
	for _, c := range cases {
		sys, err := core.NewSystem(c.Program, core.Options{Engine: cfg.Engine})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", c.Name, err)
		}
		row := TableIIRow{Name: c.Name, Ref: c.Ref, Expected: c.Types, BenignOK: true}

		nat, err := sys.RunNative(c.Attack)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s native: %w", c.Name, err)
		}
		row.AttackNative = c.Success(nat)

		rep, err := sys.GeneratePatches(c.Attack)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s analysis: %w", c.Name, err)
		}
		row.Patches = rep.Patches.Len()
		for _, p := range rep.Patches.Patches() {
			row.Detected |= p.Types
		}

		def, err := sys.RunDefended(c.Attack, rep.Patches)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s defended: %w", c.Name, err)
		}
		row.AttackDefended = c.Success(def.Result)

		for _, in := range c.Benign {
			n, err := sys.RunNative(in)
			if err != nil {
				return nil, err
			}
			d, err := sys.RunDefended(in, rep.Patches)
			if err != nil {
				return nil, err
			}
			if d.Result.Crashed() || string(n.Output) != string(d.Result.Output) {
				row.BenignOK = false
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints Table II.
func (r *TableIIResult) Render() string {
	header := []string{"Program", "Reference", "Type found", "Patches", "Attack native", "Attack defended", "Benign OK"}
	var rows [][]string
	defeated := 0
	for _, row := range r.Rows {
		if row.Defeated() {
			defeated++
		}
		rows = append(rows, []string{
			row.Name, row.Ref, row.Detected.String(),
			fmt.Sprintf("%d", row.Patches),
			verdict(row.AttackNative, "succeeds", "fails"),
			verdict(row.AttackDefended, "SUCCEEDS(!)", "defeated"),
			verdict(row.BenignOK, "yes", "NO(!)"),
		})
	}
	return fmt.Sprintf("Table II: effectiveness (%d/%d attacks defeated with auto-generated patches)\n",
		defeated, len(r.Rows)) + table(header, rows)
}

func verdict(b bool, yes, no string) string {
	if b {
		return yes
	}
	return no
}
