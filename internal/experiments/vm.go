package experiments

import (
	"fmt"
	"math"
	"testing"
	"time"

	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/progtext"
	"heaptherapy/internal/workload"
)

// VMRow is one benchmark's tree-vs-VM comparison.
type VMRow struct {
	Bench string
	// TreeNsOp / VMNsOp are wall-clock nanoseconds per full program
	// execution on each engine.
	TreeNsOp float64
	VMNsOp   float64
	// Speedup is TreeNsOp / VMNsOp.
	Speedup float64
	// Cycles is the (engine-independent) virtual-cycle cost of one run;
	// the harness asserts both engines report exactly this value.
	Cycles uint64
}

// VMComparisonResult reports the bytecode VM's wall-clock advantage
// over the tree-walking interpreter on the corpus workloads. Unlike
// the paper-reproduction experiments, which measure on the
// virtual-cycle axis (identical across engines by construction — and
// verified here on every run), this one measures the harness itself:
// how fast the simulation executes programs.
type VMComparisonResult struct {
	Rows []VMRow
	// GeomeanSpeedup is the geometric-mean speedup across benchmarks.
	GeomeanSpeedup float64
	// SteadyStateAllocs is testing.AllocsPerRun for VM.RunReuse on a
	// heap-quiescent loop workload. The committed baseline pins 0: the
	// VM allocates nothing per run once warmed up.
	SteadyStateAllocs float64
}

// steadySrc is the heap-quiescent pin workload: pure register/loop
// work, so any Go allocation observed per run belongs to VM dispatch,
// not to the simulated allocator.
const steadySrc = `func main {
 let i = 0
 let acc = 0
 while (i < 512) {
  let acc = ((acc * 31) ^ i)
  let i = (i + 1)
 }
 outputvar acc
}
`

// steadyStateAllocs measures Go allocations per warmed-up VM run.
func steadyStateAllocs() (float64, error) {
	p, err := progtext.Parse(steadySrc)
	if err != nil {
		return 0, err
	}
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return 0, err
	}
	backend, err := prog.NewNativeBackend(space)
	if err != nil {
		return 0, err
	}
	c, err := prog.Compile(p, nil)
	if err != nil {
		return 0, err
	}
	vm, err := prog.NewVM(c, prog.Config{Backend: backend})
	if err != nil {
		return 0, err
	}
	var res prog.Result
	if err := vm.RunReuse(&res, nil); err != nil { // warm the result buffers
		return 0, err
	}
	var runErr error
	n := testing.AllocsPerRun(20, func() {
		if err := vm.RunReuse(&res, nil); err != nil {
			runErr = err
		}
	})
	return n, runErr
}

// VMComparison times both engines on the Table IV workloads and
// cross-checks their virtual-cycle accounts for equality.
func VMComparison(cfg Config) (*VMComparisonResult, error) {
	benches := workload.SpecBenchmarks()
	reps := 3
	if cfg.Quick {
		benches = benches[:4]
		reps = 1
	}
	out := &VMComparisonResult{}
	logSum, n := 0.0, 0
	for _, b := range benches {
		p, _, err := b.Program(cfg.programConfig())
		if err != nil {
			return nil, err
		}

		timeEngine := func(engine prog.Engine) (float64, uint64, error) {
			var cycles uint64
			start := time.Now()
			for r := 0; r < reps; r++ {
				space, err := mem.NewSpace(mem.Config{})
				if err != nil {
					return 0, 0, err
				}
				backend, err := prog.NewNativeBackend(space)
				if err != nil {
					return 0, 0, err
				}
				it, err := prog.NewExec(p, prog.Config{Backend: backend, Engine: engine})
				if err != nil {
					return 0, 0, err
				}
				res, err := it.Run(nil)
				if err != nil {
					return 0, 0, err
				}
				if res.Crashed() {
					return 0, 0, fmt.Errorf("experiments: %s crashed on %v: %v", p.Name, engine, res.Fault)
				}
				cycles = res.Cycles
			}
			return float64(time.Since(start).Nanoseconds()) / float64(reps), cycles, nil
		}

		treeNs, treeCyc, err := timeEngine(prog.EngineTree)
		if err != nil {
			return nil, err
		}
		vmNs, vmCyc, err := timeEngine(prog.EngineVM)
		if err != nil {
			return nil, err
		}
		if treeCyc != vmCyc {
			return nil, fmt.Errorf("experiments: %s: engines disagree on cycles (tree %d, vm %d)", p.Name, treeCyc, vmCyc)
		}
		row := VMRow{Bench: b.Name, TreeNsOp: treeNs, VMNsOp: vmNs, Cycles: treeCyc}
		if vmNs > 0 {
			row.Speedup = treeNs / vmNs
			logSum += math.Log(row.Speedup)
			n++
		}
		out.Rows = append(out.Rows, row)
	}
	if n > 0 {
		out.GeomeanSpeedup = math.Exp(logSum / float64(n))
	}
	allocs, err := steadyStateAllocs()
	if err != nil {
		return nil, fmt.Errorf("experiments: steady-state pin: %w", err)
	}
	out.SteadyStateAllocs = allocs
	return out, nil
}

// Render prints the comparison.
func (r *VMComparisonResult) Render() string {
	header := []string{"Benchmark", "tree ns/op", "vm ns/op", "speedup", "cycles (equal)"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Bench,
			fmt.Sprintf("%.0f", row.TreeNsOp),
			fmt.Sprintf("%.0f", row.VMNsOp),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%d", row.Cycles),
		})
	}
	return fmt.Sprintf("Interpreter engines: tree-walker vs bytecode VM (wall-clock; geomean speedup %.2fx; virtual cycles verified equal; steady-state VM allocs/run %.0f)\n",
		r.GeomeanSpeedup, r.SteadyStateAllocs) + table(header, rows)
}
