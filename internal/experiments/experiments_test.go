package experiments

import (
	"strings"
	"testing"

	"heaptherapy/internal/encoding"
)

var quick = Config{Quick: true, Scale: 100_000}

func TestEncodingOverheadShape(t *testing.T) {
	r, err := EncodingOverhead(quick)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's ordering: FCS costs the most, each optimization
	// reduces it, and all overheads are small positive percentages.
	fcs := r.Average[encoding.SchemeFCS]
	tcs := r.Average[encoding.SchemeTCS]
	slim := r.Average[encoding.SchemeSlim]
	incr := r.Average[encoding.SchemeIncremental]
	t.Logf("encoding overhead: FCS=%.3f%% TCS=%.3f%% Slim=%.3f%% Incr=%.3f%%", fcs, tcs, slim, incr)
	if !(fcs >= tcs && tcs >= slim && slim >= incr) {
		t.Errorf("ordering violated: FCS=%.3f TCS=%.3f Slim=%.3f Incr=%.3f", fcs, tcs, slim, incr)
	}
	if fcs <= 0 {
		t.Errorf("FCS overhead %.3f%%, want > 0", fcs)
	}
	if incr < 0 {
		t.Errorf("Incremental overhead %.3f%%, want >= 0", incr)
	}
	if r.Updates[encoding.SchemeFCS] < r.Updates[encoding.SchemeIncremental] {
		t.Error("FCS executed fewer updates than Incremental")
	}
	if !strings.Contains(r.Render(), "AVERAGE") {
		t.Error("render missing average row")
	}
}

func TestTableIIIShape(t *testing.T) {
	r, err := TableIII(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(r.Rows))
	}
	for name, row := range r.Rows {
		if row[encoding.SchemeFCS] < row[encoding.SchemeTCS] ||
			row[encoding.SchemeTCS] < row[encoding.SchemeSlim] ||
			row[encoding.SchemeSlim] < row[encoding.SchemeIncremental] {
			t.Errorf("%s: ordering violated: %v", name, row)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "400.perlbench") {
		t.Error("render missing benchmark row")
	}
}

func TestFigure8Shape(t *testing.T) {
	r, err := Figure8(quick)
	if err != nil {
		t.Fatal(err)
	}
	ip := r.Average["interpose"]
	p0 := r.Average["patch0"]
	p1 := r.Average["patch1"]
	p5 := r.Average["patch5"]
	t.Logf("figure 8: interpose=%.2f%% patch0=%.2f%% patch1=%.2f%% patch5=%.2f%%", ip, p0, p1, p5)
	if !(ip <= p0 && p0 <= p1 && p1 <= p5) {
		t.Errorf("deployment overheads out of order: %.2f %.2f %.2f %.2f", ip, p0, p1, p5)
	}
	if ip <= 0 {
		t.Errorf("interposition overhead %.2f%%, want > 0", ip)
	}
	if p5 > 30 {
		t.Errorf("five-patch overhead %.2f%%, want small (paper: 5.2%%)", p5)
	}
}

func TestFigure9Shape(t *testing.T) {
	r, err := Figure9(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("figure 9: average memory overhead %.2f%%", r.Average)
	if r.Average <= 0 {
		t.Errorf("memory overhead %.2f%%, want > 0 (metadata costs something)", r.Average)
	}
	if r.Average > 40 {
		t.Errorf("memory overhead %.2f%%, want modest (paper: 4.3%%)", r.Average)
	}
}

func TestTableIIAllDefeated(t *testing.T) {
	r, err := TableII(Config{}) // full corpus
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 30 {
		t.Fatalf("rows = %d, want 30", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.Defeated() {
			t.Errorf("%s: not fully handled: %+v", row.Name, row)
		}
		if !row.Detected.Has(row.Expected) {
			t.Errorf("%s: detected %v, want >= %v", row.Name, row.Detected, row.Expected)
		}
	}
	if !strings.Contains(r.Render(), "30/30") {
		t.Errorf("render does not report 30/30:\n%s", r.Render())
	}
}

func TestTableIVCounts(t *testing.T) {
	r, err := TableIV(quick)
	if err != nil {
		t.Fatal(err)
	}
	// bzip2's tiny counts are preserved unscaled.
	if got := r.Executed["401.bzip2"]; got[1] != 0 || got[2] != 0 {
		t.Errorf("bzip2 executed calloc/realloc = %d/%d, want 0/0", got[1], got[2])
	}
	perl := r.Executed["400.perlbench"]
	if perl[0] == 0 || perl[2] == 0 {
		t.Errorf("perlbench executed malloc/realloc = %v, want both nonzero", perl)
	}
	if perl[1] != 0 {
		t.Errorf("perlbench executed calloc = %d, want 0 per Table IV", perl[1])
	}
}

func TestServicesShape(t *testing.T) {
	r, err := Services(quick)
	if err != nil {
		t.Fatal(err)
	}
	nginx := r.Average["nginx"]
	mysql := r.Average["mysql"]
	t.Logf("services: nginx=%.2f%% mysql=%.2f%%", nginx, mysql)
	if nginx <= 0 {
		t.Errorf("nginx overhead %.2f%%, want > 0", nginx)
	}
	if mysql >= nginx {
		t.Errorf("mysql overhead %.2f%% >= nginx %.2f%%; paper finds mysql negligible", mysql, nginx)
	}
	if nginx > 25 {
		t.Errorf("nginx overhead %.2f%%, want low single digits (paper: 4.2%%)", nginx)
	}
}

func TestAblationMonotonic(t *testing.T) {
	r, err := Ablation(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatal("too few quota rows")
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Evictions > r.Rows[i-1].Evictions {
			t.Errorf("larger quota evicted more: %+v then %+v", r.Rows[i-1], r.Rows[i])
		}
	}
}

func TestGlobalGuardBaseline(t *testing.T) {
	global, targeted, err := GlobalGuardBaseline(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("guard-page policy: global=%.1f%% targeted=%.1f%%", global, targeted)
	if targeted >= global {
		t.Errorf("targeted guarding (%.1f%%) not cheaper than global (%.1f%%)", targeted, global)
	}
	if global < 5*targeted {
		t.Errorf("global guarding only %.1fx targeted; paper calls it prohibitively expensive",
			global/targeted)
	}
}

func TestMedianCCIDPatchesCount(t *testing.T) {
	b := quick
	_ = b
	r, err := Figure8(Config{Quick: true, Scale: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	// patch5 must differ from patch0 on at least one benchmark (the
	// patches actually match allocations).
	same := true
	for name := range r.PerBench {
		if r.PerBench[name]["patch5"] != r.PerBench[name]["patch0"] {
			same = false
		}
	}
	if same {
		t.Error("five patches changed nothing on any benchmark; median-CCID selection broken?")
	}
}

func TestConcurrentServicesShape(t *testing.T) {
	r, err := ConcurrentServices(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (quick: one thread count per service)", len(r.Rows))
	}
	var nginx, mysql float64
	for _, row := range r.Rows {
		if row.OverheadPct < 0 {
			t.Errorf("%s x%d overhead %.2f%%, want >= 0", row.Service, row.Threads, row.OverheadPct)
		}
		switch row.Service {
		case "nginx":
			nginx = row.OverheadPct
		case "mysql":
			mysql = row.OverheadPct
		}
	}
	t.Logf("concurrent services: nginx=%.2f%% mysql=%.2f%%", nginx, mysql)
	if mysql >= nginx {
		t.Errorf("mysql overhead %.2f%% >= nginx %.2f%% under threads", mysql, nginx)
	}
}

func TestStackOffsetBaselineFails(t *testing.T) {
	r, err := StackOffsetBaseline(quick)
	if err != nil {
		t.Fatal(err)
	}
	// On realistic graphs the stack-offset technique must show a
	// substantial failure rate somewhere (the paper cites 27%), while
	// the encodings in this package are verified collision-free.
	var worst float64
	for _, row := range r.Rows {
		if row.FailurePct > worst {
			worst = row.FailurePct
		}
		if row.FailurePct < 0 || row.FailurePct > 100 {
			t.Errorf("%s: failure %.1f%% out of range", row.Benchmark, row.FailurePct)
		}
	}
	t.Logf("stack-offset worst-case decode failure: %.1f%%", worst)
	if worst < 10 {
		t.Errorf("worst failure rate %.1f%%, expected double digits on dense graphs", worst)
	}
	if !strings.Contains(r.Render(), "AVERAGE") {
		t.Error("render missing average")
	}
}

func TestPatchScalingIsFlat(t *testing.T) {
	r, err := PatchScaling(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatal("too few rows")
	}
	base := r.Rows[0].CyclesPerPair
	for _, row := range r.Rows {
		// Open addressing at load factor <= 0.5 occasionally probes a
		// second slot, so allow 15%; O(n) behaviour would blow far past
		// that across four orders of magnitude.
		if row.CyclesPerPair > base*1.15 || row.CyclesPerPair < base*0.85 {
			t.Errorf("cost at %d patches = %.1f cycles, base %.1f: lookup is not O(1)",
				row.Patches, row.CyclesPerPair, base)
		}
	}
	t.Logf("patch scaling: %v", r.Rows)
}

// TestTierUpComparisonShape runs the encoded-call suite in quick mode
// and pins the structural contracts: every row promoted at least one
// function, all three engines agreed on cycles (TierUpComparison
// errors otherwise), the threshold is recorded, and the fully-promoted
// closure tier allocates nothing per run.
func TestTierUpComparisonShape(t *testing.T) {
	r, err := TierUpComparison(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range r.Rows {
		if row.Promotions == 0 {
			t.Errorf("%s: machine never promoted", row.Bench)
		}
		if row.Cycles == 0 {
			t.Errorf("%s: zero cycles recorded", row.Bench)
		}
		if row.CompiledNsOp <= 0 || row.VMNsOp <= 0 || row.TreeNsOp <= 0 {
			t.Errorf("%s: non-positive timing: %+v", row.Bench, row)
		}
	}
	if r.Threshold == 0 {
		t.Error("threshold not recorded")
	}
	if r.SteadyStateAllocs != 0 {
		t.Errorf("steady-state compiled allocs/run = %.1f, want 0", r.SteadyStateAllocs)
	}
	if !strings.Contains(r.Render(), "geomean") {
		t.Error("render missing geomean headline")
	}
}

func TestServeThroughputShape(t *testing.T) {
	r, err := ServeThroughput(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("quick run has %d rows, want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ReqPerSec <= 0 {
			t.Errorf("w=%d: req/s %.0f, want > 0", row.Workers, row.ReqPerSec)
		}
	}
	// The swapper ran live rollouts during every measurement window and
	// none of them failed a request (ServeThroughput errors otherwise).
	if r.SwapCount == 0 {
		t.Error("no table swaps landed during the measurement")
	}
	if r.SwapP50 <= 0 || r.SwapMax < r.SwapP99 || r.SwapP99 < r.SwapP50 {
		t.Errorf("swap latency percentiles inconsistent: p50=%v p99=%v max=%v",
			r.SwapP50, r.SwapP99, r.SwapMax)
	}
	if !strings.Contains(r.Render(), "SwapTable latency") {
		t.Error("Render missing the swap-latency summary")
	}
}
