package experiments

import (
	"testing"

	"heaptherapy/internal/prog"
)

// TestExperimentsEngineIndependent locks in the claim the Config.Engine
// doc makes: every deterministic (cycle-axis) experiment renders a
// bit-identical report whether the programs execute on the tree
// interpreter, the bytecode VM, or the tier-up compiled machine.
// Wall-clock experiments (vm, tierup, and the throughput columns of
// fleet/concurrent) are excluded by design.
func TestExperimentsEngineIndependent(t *testing.T) {
	cases := []struct {
		name string
		run  func(Config) (string, error)
	}{
		{"table2", func(cfg Config) (string, error) {
			r, err := TableII(cfg)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"table3", func(cfg Config) (string, error) {
			r, err := TableIII(cfg)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig9", func(cfg Config) (string, error) {
			r, err := Figure9(cfg)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"scaling", func(cfg Config) (string, error) {
			r, err := PatchScaling(cfg)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tree, err := c.run(Config{Quick: true, Engine: prog.EngineTree})
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range []prog.Engine{prog.EngineVM, prog.EngineCompiled} {
				got, err := c.run(Config{Quick: true, Engine: e})
				if err != nil {
					t.Fatal(err)
				}
				if tree != got {
					t.Errorf("render differs across engines\n--- tree ---\n%s\n--- %v ---\n%s", tree, e, got)
				}
			}
		})
	}
}
