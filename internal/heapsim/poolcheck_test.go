package heapsim

import (
	"strings"
	"testing"

	"heaptherapy/internal/mem"
)

func newCheckedPool(t *testing.T) *PoolAllocator {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(space)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPoolCheckIntegrityHealthy drives the pool through every
// operation class and asserts the walker stays quiet at each step.
func TestPoolCheckIntegrityHealthy(t *testing.T) {
	p := newCheckedPool(t)
	check := func(stage string) {
		t.Helper()
		if err := p.CheckIntegrity(); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
	}
	check("fresh")
	var ptrs []uint64
	for _, size := range []uint64{1, 32, 33, 500, 4096, 70000} {
		ptr, err := p.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, ptr)
		check("after malloc")
	}
	c, err := p.Calloc(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	check("after calloc")
	m, err := p.Memalign(256, 100)
	if err != nil {
		t.Fatal(err)
	}
	check("after memalign")
	r, err := p.Realloc(ptrs[1], 1000)
	if err != nil {
		t.Fatal(err)
	}
	ptrs[1] = r
	check("after realloc")
	for _, ptr := range append(ptrs, c, m) {
		if err := p.Free(ptr); err != nil {
			t.Fatal(err)
		}
		check("after free")
	}
	p.Reset()
	check("after Reset")
}

// TestPoolCheckIntegrityViolations corrupts pool metadata in each way
// the walker guards against and asserts detection. Every mutation is
// undone so the cases stay independent.
func TestPoolCheckIntegrityViolations(t *testing.T) {
	p := newCheckedPool(t)
	ptr, err := p.Malloc(48) // class 64
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckIntegrity(); err != nil {
		t.Fatalf("healthy pool: %v", err)
	}
	class := classFor(48)

	t.Run("duplicate free entry", func(t *testing.T) {
		list := p.freeLists[class]
		p.freeLists[class] = append(list, list[0])
		defer func() { p.freeLists[class] = list }()
		if err := p.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "twice") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("free and live", func(t *testing.T) {
		list := p.freeLists[class]
		p.freeLists[class] = append(list, ptr)
		defer func() { p.freeLists[class] = list }()
		if err := p.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "both free and live") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("free block outside space", func(t *testing.T) {
		list := p.freeLists[class]
		p.freeLists[class] = append(list, 1<<40)
		p.stats.FreeBytes += poolClassSizes[class]
		defer func() {
			p.freeLists[class] = list
			p.stats.FreeBytes -= poolClassSizes[class]
		}()
		if err := p.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "outside the mapped space") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("overlapping blocks", func(t *testing.T) {
		blk := p.live[ptr]
		p.live[ptr+8] = blk
		p.stats.InUseChunks++
		p.stats.InUseBytes += blk.size
		defer func() {
			delete(p.live, ptr+8)
			p.stats.InUseChunks--
			p.stats.InUseBytes -= blk.size
		}()
		if err := p.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "overlap") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("pointer outside block", func(t *testing.T) {
		blk := p.live[ptr]
		bad := blk
		bad.base = ptr + blk.size
		p.live[ptr] = bad
		defer func() { p.live[ptr] = blk }()
		if err := p.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "outside its block") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("class size mismatch", func(t *testing.T) {
		blk := p.live[ptr]
		bad := blk
		bad.size = 24
		p.live[ptr] = bad
		p.stats.InUseBytes -= blk.size - 24
		defer func() {
			p.live[ptr] = blk
			p.stats.InUseBytes += blk.size - 24
		}()
		if err := p.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "class size") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("stats chunk skew", func(t *testing.T) {
		p.stats.InUseChunks++
		defer func() { p.stats.InUseChunks-- }()
		if err := p.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "InUseChunks") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("stats byte skew", func(t *testing.T) {
		p.stats.InUseBytes++
		defer func() { p.stats.InUseBytes-- }()
		if err := p.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "InUseBytes") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("stats free-byte skew", func(t *testing.T) {
		p.stats.FreeBytes++
		defer func() { p.stats.FreeBytes-- }()
		if err := p.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "FreeBytes") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("arena under-accounted", func(t *testing.T) {
		save := p.stats.ArenaBytes
		p.stats.ArenaBytes = 1
		defer func() { p.stats.ArenaBytes = save }()
		if err := p.CheckIntegrity(); err == nil || !strings.Contains(err.Error(), "arena") {
			t.Fatalf("got %v", err)
		}
	})
	// The corruption cases above must all have been undone.
	if err := p.CheckIntegrity(); err != nil {
		t.Fatalf("pool left corrupt by test: %v", err)
	}
}
