package heapsim

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"heaptherapy/internal/mem"
)

func newTestHeap(t *testing.T) *Heap {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	h, err := New(space)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return h
}

func checkIntegrity(t *testing.T, h *Heap) {
	t.Helper()
	if err := h.CheckIntegrity(); err != nil {
		t.Fatalf("heap integrity: %v", err)
	}
}

func TestMallocBasic(t *testing.T) {
	h := newTestHeap(t)
	p, err := h.Malloc(100)
	if err != nil {
		t.Fatalf("Malloc: %v", err)
	}
	if p == 0 {
		t.Fatal("Malloc returned nil pointer")
	}
	if p%16 != 0 {
		t.Errorf("payload %#x not 16-aligned", p)
	}
	usable, err := h.UsableSize(p)
	if err != nil {
		t.Fatalf("UsableSize: %v", err)
	}
	if usable < 100 {
		t.Errorf("UsableSize = %d, want >= 100", usable)
	}
	checkIntegrity(t, h)
}

func TestMallocZeroSize(t *testing.T) {
	h := newTestHeap(t)
	p, err := h.Malloc(0)
	if err != nil {
		t.Fatalf("Malloc(0): %v", err)
	}
	if p == 0 {
		t.Fatal("Malloc(0) returned nil; want unique pointer like glibc")
	}
	if err := h.Free(p); err != nil {
		t.Fatalf("Free: %v", err)
	}
	checkIntegrity(t, h)
}

func TestMallocDistinctPointers(t *testing.T) {
	h := newTestHeap(t)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		p, err := h.Malloc(uint64(8 + i))
		if err != nil {
			t.Fatalf("Malloc #%d: %v", i, err)
		}
		if seen[p] {
			t.Fatalf("Malloc returned duplicate pointer %#x", p)
		}
		seen[p] = true
	}
	checkIntegrity(t, h)
}

func TestWriteDoesNotOverlapNeighbor(t *testing.T) {
	h := newTestHeap(t)
	a, _ := h.Malloc(64)
	b, _ := h.Malloc(64)
	ua, _ := h.UsableSize(a)
	if err := h.Space().Write(a, make([]byte, ua)); err != nil {
		t.Fatalf("Write a: %v", err)
	}
	marker := []byte{0xEE}
	if err := h.Space().Write(b, marker); err != nil {
		t.Fatalf("Write b: %v", err)
	}
	got, _ := h.Space().Read(b, 1)
	if got[0] != 0xEE {
		t.Error("writing a's full usable size corrupted b")
	}
	checkIntegrity(t, h)
}

func TestFreeAndReuse(t *testing.T) {
	h := newTestHeap(t)
	p, err := h.Malloc(128)
	if err != nil {
		t.Fatalf("Malloc: %v", err)
	}
	if err := h.Free(p); err != nil {
		t.Fatalf("Free: %v", err)
	}
	// LIFO bin reuse: an identical request gets the same block back.
	// This is exactly the behavior use-after-free exploits depend on.
	q, err := h.Malloc(128)
	if err != nil {
		t.Fatalf("Malloc after free: %v", err)
	}
	if q != p {
		t.Errorf("Malloc after free = %#x, want reused %#x", q, p)
	}
	checkIntegrity(t, h)
}

func TestDoubleFreeDetected(t *testing.T) {
	h := newTestHeap(t)
	p, _ := h.Malloc(64)
	if err := h.Free(p); err != nil {
		t.Fatalf("first Free: %v", err)
	}
	if err := h.Free(p); !errors.Is(err, ErrInvalidPointer) {
		t.Errorf("double Free err = %v, want ErrInvalidPointer", err)
	}
}

func TestFreeInvalidPointer(t *testing.T) {
	h := newTestHeap(t)
	if err := h.Free(0xDEAD); !errors.Is(err, ErrInvalidPointer) {
		t.Errorf("Free(bogus) err = %v, want ErrInvalidPointer", err)
	}
	if err := h.Free(0); err != nil {
		t.Errorf("Free(0) err = %v, want nil (no-op)", err)
	}
}

func TestCallocZeroes(t *testing.T) {
	h := newTestHeap(t)
	// Dirty a block, free it, then calloc the same size: memory must be
	// zeroed even though the allocator reuses the dirty block.
	p, _ := h.Malloc(256)
	if err := h.Space().Memset(p, 0xFF, 256); err != nil {
		t.Fatalf("Memset: %v", err)
	}
	if err := h.Free(p); err != nil {
		t.Fatalf("Free: %v", err)
	}
	q, err := h.Calloc(16, 16)
	if err != nil {
		t.Fatalf("Calloc: %v", err)
	}
	if q != p {
		t.Logf("calloc did not reuse the block (got %#x, had %#x); still checking zeroing", q, p)
	}
	data, _ := h.Space().Read(q, 256)
	for i, b := range data {
		if b != 0 {
			t.Fatalf("calloc byte %d = %#x, want 0", i, b)
		}
	}
	checkIntegrity(t, h)
}

func TestCallocOverflow(t *testing.T) {
	h := newTestHeap(t)
	if _, err := h.Calloc(1<<33, 1<<33); !errors.Is(err, ErrBadSize) {
		t.Errorf("Calloc overflow err = %v, want ErrBadSize", err)
	}
}

func TestCoalescing(t *testing.T) {
	h := newTestHeap(t)
	a, _ := h.Malloc(64)
	b, _ := h.Malloc(64)
	c, _ := h.Malloc(64)
	_, _ = h.Malloc(64) // pin so c does not merge into top

	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(c); err != nil {
		t.Fatal(err)
	}
	checkIntegrity(t, h)
	before := h.Stats().Coalesces
	if err := h.Free(b); err != nil {
		t.Fatal(err)
	}
	if got := h.Stats().Coalesces - before; got != 2 {
		t.Errorf("freeing middle chunk coalesced %d times, want 2", got)
	}
	checkIntegrity(t, h)

	// The merged region services a request no single original chunk fits.
	p, err := h.Malloc(180)
	if err != nil {
		t.Fatalf("Malloc from merged region: %v", err)
	}
	if p != a {
		t.Errorf("merged allocation at %#x, want reuse of first chunk %#x", p, a)
	}
	checkIntegrity(t, h)
}

func TestSplitLargeChunk(t *testing.T) {
	h := newTestHeap(t)
	p, _ := h.Malloc(1024)
	_, _ = h.Malloc(16) // pin
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	before := h.Stats().Splits
	q, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("small alloc = %#x, want split from freed %#x", q, p)
	}
	if h.Stats().Splits != before+1 {
		t.Errorf("Splits = %d, want %d", h.Stats().Splits, before+1)
	}
	checkIntegrity(t, h)
}

func TestMemalign(t *testing.T) {
	h := newTestHeap(t)
	for _, align := range []uint64{16, 32, 64, 256, 4096} {
		p, err := h.Memalign(align, 100)
		if err != nil {
			t.Fatalf("Memalign(%d): %v", align, err)
		}
		if p%align != 0 {
			t.Errorf("Memalign(%d) = %#x, not aligned", align, p)
		}
		usable, err := h.UsableSize(p)
		if err != nil {
			t.Fatalf("UsableSize: %v", err)
		}
		if usable < 100 {
			t.Errorf("Memalign(%d) usable = %d, want >= 100", align, usable)
		}
		checkIntegrity(t, h)
	}
}

func TestMemalignBadAlignment(t *testing.T) {
	h := newTestHeap(t)
	for _, align := range []uint64{0, 3, 24, 100} {
		if _, err := h.Memalign(align, 64); !errors.Is(err, ErrBadAlignment) {
			t.Errorf("Memalign(%d) err = %v, want ErrBadAlignment", align, err)
		}
	}
}

func TestMemalignFreeRoundTrip(t *testing.T) {
	h := newTestHeap(t)
	p, err := h.Memalign(512, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatalf("Free of memaligned buffer: %v", err)
	}
	checkIntegrity(t, h)
}

func TestReallocGrowAndShrink(t *testing.T) {
	h := newTestHeap(t)
	p, _ := h.Malloc(64)
	payload := []byte("context-sensitive patches")
	if err := h.Space().Write(p, payload); err != nil {
		t.Fatal(err)
	}

	q, err := h.Realloc(p, 4096)
	if err != nil {
		t.Fatalf("Realloc grow: %v", err)
	}
	got, _ := h.Space().Read(q, uint64(len(payload)))
	if string(got) != string(payload) {
		t.Errorf("after grow, data = %q, want %q", got, payload)
	}
	checkIntegrity(t, h)

	r, err := h.Realloc(q, 16)
	if err != nil {
		t.Fatalf("Realloc shrink: %v", err)
	}
	if r != q {
		t.Errorf("shrinking realloc moved the buffer from %#x to %#x", q, r)
	}
	got, _ = h.Space().Read(r, 16)
	if string(got) != string(payload[:16]) {
		t.Errorf("after shrink, data = %q, want %q", got, payload[:16])
	}
	checkIntegrity(t, h)
}

func TestReallocNilIsMalloc(t *testing.T) {
	h := newTestHeap(t)
	p, err := h.Realloc(0, 64)
	if err != nil {
		t.Fatalf("Realloc(0, 64): %v", err)
	}
	if p == 0 {
		t.Fatal("Realloc(0, 64) returned nil")
	}
}

func TestReallocInvalid(t *testing.T) {
	h := newTestHeap(t)
	if _, err := h.Realloc(0xBAD, 64); !errors.Is(err, ErrInvalidPointer) {
		t.Errorf("Realloc(bogus) err = %v, want ErrInvalidPointer", err)
	}
}

func TestReallocExpandsIntoFreeNeighbor(t *testing.T) {
	h := newTestHeap(t)
	a, _ := h.Malloc(64)
	b, _ := h.Malloc(256)
	_, _ = h.Malloc(16) // pin
	if err := h.Free(b); err != nil {
		t.Fatal(err)
	}
	q, err := h.Realloc(a, 200)
	if err != nil {
		t.Fatalf("Realloc: %v", err)
	}
	if q != a {
		t.Errorf("realloc moved to %#x despite free neighbor; want in-place at %#x", q, a)
	}
	checkIntegrity(t, h)
}

func TestStatsAccounting(t *testing.T) {
	h := newTestHeap(t)
	p1, _ := h.Malloc(100)
	p2, _ := h.Calloc(10, 10)
	st := h.Stats()
	if st.Mallocs != 1 || st.Callocs != 1 {
		t.Errorf("Mallocs, Callocs = %d, %d; want 1, 1", st.Mallocs, st.Callocs)
	}
	if st.InUseChunks != 2 {
		t.Errorf("InUseChunks = %d, want 2", st.InUseChunks)
	}
	if st.InUseBytes < 200 {
		t.Errorf("InUseBytes = %d, want >= 200", st.InUseBytes)
	}
	_ = h.Free(p1)
	_ = h.Free(p2)
	st = h.Stats()
	if st.InUseChunks != 0 || st.InUseBytes != 0 {
		t.Errorf("after frees InUseChunks, InUseBytes = %d, %d; want 0, 0", st.InUseChunks, st.InUseBytes)
	}
	if st.PeakInUseBytes < 200 {
		t.Errorf("PeakInUseBytes = %d, want >= 200", st.PeakInUseBytes)
	}
}

func TestArenaGrowth(t *testing.T) {
	h := newTestHeap(t)
	var ptrs []uint64
	for i := 0; i < 100; i++ {
		p, err := h.Malloc(64 * 1024)
		if err != nil {
			t.Fatalf("Malloc 64K #%d: %v", i, err)
		}
		ptrs = append(ptrs, p)
	}
	if h.Stats().ArenaBytes < 100*64*1024 {
		t.Errorf("ArenaBytes = %d, want >= %d", h.Stats().ArenaBytes, 100*64*1024)
	}
	for _, p := range ptrs {
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	checkIntegrity(t, h)
}

func TestAllocFnString(t *testing.T) {
	cases := map[AllocFn]string{
		FnMalloc:       "malloc",
		FnCalloc:       "calloc",
		FnRealloc:      "realloc",
		FnMemalign:     "memalign",
		FnAlignedAlloc: "aligned_alloc",
	}
	for fn, want := range cases {
		if got := fn.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", fn, got, want)
		}
		parsed, err := ParseAllocFn(want)
		if err != nil || parsed != fn {
			t.Errorf("ParseAllocFn(%q) = %v, %v; want %v", want, parsed, err, fn)
		}
	}
	if _, err := ParseAllocFn("mmap"); err == nil {
		t.Error("ParseAllocFn(mmap) succeeded, want error")
	}
}

// TestRandomizedWorkload drives a long random alloc/free/realloc
// sequence, verifying integrity and payload preservation throughout.
func TestRandomizedWorkload(t *testing.T) {
	h := newTestHeap(t)
	rng := rand.New(rand.NewSource(42))
	type block struct {
		ptr  uint64
		size uint64
		tag  byte
	}
	var blocks []block

	writeTag := func(b block) {
		if err := h.Space().Memset(b.ptr, b.tag, b.size); err != nil {
			t.Fatalf("Memset: %v", err)
		}
	}
	verifyTag := func(b block) {
		data, err := h.Space().Read(b.ptr, b.size)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		for i, v := range data {
			if v != b.tag {
				t.Fatalf("block %#x byte %d = %#x, want %#x (neighbor corruption)", b.ptr, i, v, b.tag)
			}
		}
	}

	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 4 || len(blocks) == 0: // malloc
			size := uint64(1 + rng.Intn(2000))
			var p uint64
			var err error
			switch rng.Intn(3) {
			case 0:
				p, err = h.Malloc(size)
			case 1:
				p, err = h.Calloc(size/8+1, 8)
				size = (size/8 + 1) * 8
			default:
				align := uint64(16 << rng.Intn(5))
				p, err = h.Memalign(align, size)
				if err == nil && p%align != 0 {
					t.Fatalf("step %d: memalign %d returned unaligned %#x", step, align, p)
				}
			}
			if err != nil {
				t.Fatalf("step %d: alloc: %v", step, err)
			}
			b := block{ptr: p, size: size, tag: byte(step)}
			writeTag(b)
			blocks = append(blocks, b)
		case op < 7: // free
			i := rng.Intn(len(blocks))
			verifyTag(blocks[i])
			if err := h.Free(blocks[i].ptr); err != nil {
				t.Fatalf("step %d: free: %v", step, err)
			}
			blocks[i] = blocks[len(blocks)-1]
			blocks = blocks[:len(blocks)-1]
		default: // realloc
			i := rng.Intn(len(blocks))
			verifyTag(blocks[i])
			newSize := uint64(1 + rng.Intn(3000))
			p, err := h.Realloc(blocks[i].ptr, newSize)
			if err != nil {
				t.Fatalf("step %d: realloc: %v", step, err)
			}
			keep := blocks[i].size
			if newSize < keep {
				keep = newSize
			}
			data, err := h.Space().Read(p, keep)
			if err != nil {
				t.Fatalf("step %d: read after realloc: %v", step, err)
			}
			for j, v := range data {
				if v != blocks[i].tag {
					t.Fatalf("step %d: realloc lost byte %d (%#x != %#x)", step, j, v, blocks[i].tag)
				}
			}
			blocks[i].ptr = p
			blocks[i].size = newSize
			writeTag(blocks[i])
		}
		if step%250 == 0 {
			checkIntegrity(t, h)
		}
	}
	for _, b := range blocks {
		verifyTag(b)
		if err := h.Free(b.ptr); err != nil {
			t.Fatal(err)
		}
	}
	checkIntegrity(t, h)
	if h.LiveCount() != 0 {
		t.Errorf("LiveCount = %d after freeing everything, want 0", h.LiveCount())
	}
}

// TestQuickMallocAligned property-tests payload alignment and usable
// size across arbitrary request sizes.
func TestQuickMallocAligned(t *testing.T) {
	h := newTestHeap(t)
	f := func(sz uint16) bool {
		p, err := h.Malloc(uint64(sz))
		if err != nil {
			return false
		}
		usable, err := h.UsableSize(p)
		if err != nil || usable < uint64(sz) {
			return false
		}
		if p%16 != 0 {
			return false
		}
		return h.Free(p) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	checkIntegrity(t, h)
}

// TestQuickFreeListRoundTrip property-tests that interleaved allocation
// batches always free cleanly and integrity holds.
func TestQuickFreeListRoundTrip(t *testing.T) {
	h := newTestHeap(t)
	f := func(sizes []uint16) bool {
		ptrs := make([]uint64, 0, len(sizes))
		for _, s := range sizes {
			p, err := h.Malloc(uint64(s) + 1)
			if err != nil {
				return false
			}
			ptrs = append(ptrs, p)
		}
		// Free in alternating order to exercise coalescing patterns.
		for i := 0; i < len(ptrs); i += 2 {
			if h.Free(ptrs[i]) != nil {
				return false
			}
		}
		for i := 1; i < len(ptrs); i += 2 {
			if h.Free(ptrs[i]) != nil {
				return false
			}
		}
		return h.CheckIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestArenaDiscontiguityDetected: if another segment claims the break
// between arena growths, the allocator must fail loudly rather than
// treat foreign pages as its own.
func TestArenaDiscontiguityDetected(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(space)
	if err != nil {
		t.Fatal(err)
	}
	// A foreign mapping (like a late-constructed table) steals the break.
	if _, err := space.Sbrk(mem.PageSize); err != nil {
		t.Fatal(err)
	}
	// Force the arena to grow past its initial page.
	_, err = h.Malloc(64 * 1024)
	if err == nil || !strings.Contains(err.Error(), "discontiguous") {
		t.Errorf("Malloc after foreign sbrk err = %v, want discontiguity error", err)
	}
}
