package heapsim

import (
	"fmt"

	"heaptherapy/internal/mem"
	"heaptherapy/internal/telemetry"
)

// PoolAllocator is a second, structurally different allocator: a
// slab-style segregated-pool design (fixed-size classes carved from
// page runs, per-class FIFO free lists, dedicated runs for large
// blocks). It exists to demonstrate the paper's property (5): the
// online defense is transparent to the underlying allocator, so the
// identical defense layer must work over this allocator exactly as it
// does over the boundary-tag Heap — locked in by tests that run the
// whole corpus pipeline over both.
//
// Reuse order is FIFO per class (glibc's tcache is LIFO, many pool
// allocators are FIFO), which also exercises the defense against a
// different use-after-free reuse discipline.
type PoolAllocator struct {
	space *mem.Space

	// freeLists[i] serves blocks of size poolClassSizes[i].
	freeLists [][]uint64 // FIFO queues of free block addresses
	live      map[uint64]poolBlock

	stats Stats

	// tel mirrors Heap.tel: physical block grants and releases plus the
	// allocation-size histogram.
	tel *telemetry.Scope
}

// poolBlock records a live allocation.
type poolBlock struct {
	base  uint64 // block start handed out by the pool
	class int    // -1 for large dedicated runs
	size  uint64 // block capacity
}

var _ Allocator = (*PoolAllocator)(nil)

// poolClassSizes are the slab classes; larger requests get dedicated
// page runs.
var poolClassSizes = []uint64{32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}

// NewPool creates a pool allocator on space.
func NewPool(space *mem.Space) (*PoolAllocator, error) {
	return &PoolAllocator{
		space:     space,
		freeLists: make([][]uint64, len(poolClassSizes)),
		live:      make(map[uint64]poolBlock),
	}, nil
}

// Space returns the backing address space.
func (p *PoolAllocator) Space() *mem.Space { return p.space }

// Reset clears all pool state after the backing space has been Reset:
// every carved run is gone with the space, so the free lists are
// emptied (keeping their capacity) and the live table and statistics
// are cleared. Like Heap.Reset, the steady-state path allocates
// nothing.
func (p *PoolAllocator) Reset() {
	for i := range p.freeLists {
		p.freeLists[i] = p.freeLists[i][:0]
	}
	clear(p.live)
	p.stats = Stats{}
}

// Stats returns a snapshot of allocator statistics.
func (p *PoolAllocator) Stats() Stats { return p.stats }

// SetTelemetry attaches a telemetry scope; nil detaches.
func (p *PoolAllocator) SetTelemetry(tel *telemetry.Scope) { p.tel = tel }

// classFor returns the class index for a size, or -1 for large.
func classFor(size uint64) int {
	for i, c := range poolClassSizes {
		if size <= c {
			return i
		}
	}
	return -1
}

// carve refills a class's free list with one page run of blocks.
func (p *PoolAllocator) carve(class int) error {
	bs := poolClassSizes[class]
	run := mem.RoundUpPage(bs * 16)
	base, err := p.space.Sbrk(run)
	if err != nil {
		return fmt.Errorf("%w: pool carve: %v", ErrOutOfMemory, err)
	}
	p.stats.ArenaBytes += run
	for off := uint64(0); off+bs <= run; off += bs {
		p.freeLists[class] = append(p.freeLists[class], base+off)
		p.stats.FreeBytes += bs
	}
	return nil
}

// alloc grabs a block of at least size bytes.
func (p *PoolAllocator) alloc(size uint64) (uint64, error) {
	if size > maxRequest {
		return 0, fmt.Errorf("%w: %d", ErrBadSize, size)
	}
	if size == 0 {
		size = 1
	}
	class := classFor(size)
	if class < 0 {
		run := mem.RoundUpPage(size)
		base, err := p.space.Sbrk(run)
		if err != nil {
			return 0, fmt.Errorf("%w: pool large alloc: %v", ErrOutOfMemory, err)
		}
		p.stats.ArenaBytes += run
		p.live[base] = poolBlock{base: base, class: -1, size: run}
		p.bump(run)
		return base, nil
	}
	if len(p.freeLists[class]) == 0 {
		if err := p.carve(class); err != nil {
			return 0, err
		}
	}
	// FIFO: pop from the front.
	base := p.freeLists[class][0]
	p.freeLists[class] = p.freeLists[class][1:]
	bs := poolClassSizes[class]
	p.stats.FreeBytes -= bs
	p.live[base] = poolBlock{base: base, class: class, size: bs}
	p.bump(bs)
	return base, nil
}

func (p *PoolAllocator) bump(userBytes uint64) {
	if p.tel != nil {
		p.tel.Inc(telemetry.CtrAllocs)
		p.tel.Observe(telemetry.HistAllocSize, userBytes)
	}
	p.stats.InUseBytes += userBytes
	p.stats.InUseChunks++
	if p.stats.InUseBytes > p.stats.PeakInUseBytes {
		p.stats.PeakInUseBytes = p.stats.InUseBytes
	}
}

// Malloc implements Allocator.
func (p *PoolAllocator) Malloc(size uint64) (uint64, error) {
	p.stats.Mallocs++
	return p.alloc(size)
}

// Calloc implements Allocator.
func (p *PoolAllocator) Calloc(n, size uint64) (uint64, error) {
	if size != 0 && n > maxRequest/size {
		return 0, fmt.Errorf("%w: calloc(%d, %d)", ErrBadSize, n, size)
	}
	p.stats.Callocs++
	total := n * size
	addr, err := p.alloc(total)
	if err != nil {
		return 0, err
	}
	if err := p.space.RawMemset(addr, 0, total); err != nil {
		return 0, fmt.Errorf("heapsim: pool calloc zeroing: %w", err)
	}
	return addr, nil
}

// Memalign implements Allocator. Blocks are class-size aligned only by
// accident, so over-allocate and hand out an aligned address inside
// the block, remembering the mapping for Free.
func (p *PoolAllocator) Memalign(align, size uint64) (uint64, error) {
	if align == 0 || align&(align-1) != 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadAlignment, align)
	}
	p.stats.Memaligns++
	base, err := p.alloc(size + align)
	if err != nil {
		return 0, err
	}
	aligned := (base + align - 1) &^ (align - 1)
	if aligned != base {
		blk := p.live[base]
		delete(p.live, base)
		p.live[aligned] = blk
	}
	return aligned, nil
}

// Realloc implements Allocator.
func (p *PoolAllocator) Realloc(ptr, size uint64) (uint64, error) {
	if ptr == 0 {
		return p.Malloc(size)
	}
	blk, ok := p.live[ptr]
	if !ok {
		return 0, fmt.Errorf("%w: pool realloc of %#x", ErrInvalidPointer, ptr)
	}
	p.stats.Reallocs++
	avail := blk.size - (ptr - blk.base)
	if size <= avail {
		return ptr, nil // fits in place
	}
	newPtr, err := p.alloc(size)
	if err != nil {
		return 0, err
	}
	data, err := p.space.RawRead(ptr, avail)
	if err != nil {
		return 0, fmt.Errorf("heapsim: pool realloc copy: %w", err)
	}
	if err := p.space.RawWrite(newPtr, data); err != nil {
		return 0, fmt.Errorf("heapsim: pool realloc copy: %w", err)
	}
	if err := p.Free(ptr); err != nil {
		return 0, err
	}
	p.stats.Frees--
	return newPtr, nil
}

// Free implements Allocator.
func (p *PoolAllocator) Free(ptr uint64) error {
	if ptr == 0 {
		return nil
	}
	blk, ok := p.live[ptr]
	if !ok {
		return fmt.Errorf("%w: pool free of %#x", ErrInvalidPointer, ptr)
	}
	delete(p.live, ptr)
	if p.tel != nil {
		p.tel.Inc(telemetry.CtrFrees)
	}
	p.stats.Frees++
	p.stats.InUseBytes -= blk.size
	p.stats.InUseChunks--
	if blk.class >= 0 {
		// FIFO: push to the back.
		p.freeLists[blk.class] = append(p.freeLists[blk.class], blk.base)
		p.stats.FreeBytes += blk.size
	}
	// Large runs are returned to the space conceptually; the simulated
	// break cannot shrink, so they are simply dropped (matching munmap
	// of a dedicated mapping, minus address reuse).
	return nil
}

// UsableSize implements Allocator.
func (p *PoolAllocator) UsableSize(ptr uint64) (uint64, error) {
	blk, ok := p.live[ptr]
	if !ok {
		return 0, fmt.Errorf("%w: pool usable_size of %#x", ErrInvalidPointer, ptr)
	}
	return blk.size - (ptr - blk.base), nil
}

// LiveCount returns the number of live allocations.
func (p *PoolAllocator) LiveCount() int { return len(p.live) }
