package heapsim

import (
	"fmt"
	"sort"
)

// CheckIntegrity walks the pool allocator's metadata and verifies the
// invariants a healthy slab heap maintains: free-list entries are
// unique, class-sized, inside the mapped space, and never live; live
// blocks are class-consistent and contain the pointer they were handed
// out as; no two blocks (free or live) overlap; and the statistics
// counters agree with the tables they summarize. It is the pool-side
// counterpart of Heap.CheckIntegrity, used by the campaign invariant
// walker between interpreter quanta. The walk never mutates the pool.
func (p *PoolAllocator) CheckIntegrity() error {
	type interval struct {
		start, end uint64
		what       string
	}
	intervals := make([]interval, 0, len(p.live)+16)
	seen := make(map[uint64]bool, 16)
	var freeBytes uint64
	for class, list := range p.freeLists {
		bs := poolClassSizes[class]
		for _, addr := range list {
			if seen[addr] {
				return fmt.Errorf("heapsim: pool free block %#x appears on a free list twice", addr)
			}
			seen[addr] = true
			if _, live := p.live[addr]; live {
				return fmt.Errorf("heapsim: pool block %#x is both free and live", addr)
			}
			if !p.space.Contains(addr, bs) {
				return fmt.Errorf("heapsim: pool free block [%#x,%#x) outside the mapped space", addr, addr+bs)
			}
			intervals = append(intervals, interval{addr, addr + bs, "free"})
			freeBytes += bs
		}
	}
	var inUseBytes uint64
	for ptr, blk := range p.live {
		if ptr < blk.base || ptr >= blk.base+blk.size {
			return fmt.Errorf("heapsim: pool live pointer %#x outside its block [%#x,%#x)", ptr, blk.base, blk.base+blk.size)
		}
		if blk.class >= 0 && blk.size != poolClassSizes[blk.class] {
			return fmt.Errorf("heapsim: pool live block %#x has size %d, class size %d", ptr, blk.size, poolClassSizes[blk.class])
		}
		if !p.space.Contains(blk.base, blk.size) {
			return fmt.Errorf("heapsim: pool live block [%#x,%#x) outside the mapped space", blk.base, blk.base+blk.size)
		}
		intervals = append(intervals, interval{blk.base, blk.base + blk.size, "live"})
		inUseBytes += blk.size
	}
	sort.Slice(intervals, func(i, j int) bool { return intervals[i].start < intervals[j].start })
	for i := 1; i < len(intervals); i++ {
		a, b := intervals[i-1], intervals[i]
		if b.start < a.end {
			return fmt.Errorf("heapsim: pool blocks overlap: %s [%#x,%#x) and %s [%#x,%#x)",
				a.what, a.start, a.end, b.what, b.start, b.end)
		}
	}
	if got := uint64(len(p.live)); p.stats.InUseChunks != got {
		return fmt.Errorf("heapsim: pool stats InUseChunks = %d, live table holds %d", p.stats.InUseChunks, got)
	}
	if p.stats.InUseBytes != inUseBytes {
		return fmt.Errorf("heapsim: pool stats InUseBytes = %d, live blocks total %d", p.stats.InUseBytes, inUseBytes)
	}
	if p.stats.FreeBytes != freeBytes {
		return fmt.Errorf("heapsim: pool stats FreeBytes = %d, free lists total %d", p.stats.FreeBytes, freeBytes)
	}
	if freeBytes+inUseBytes > p.stats.ArenaBytes {
		return fmt.Errorf("heapsim: pool accounts for %d bytes, arena only %d", freeBytes+inUseBytes, p.stats.ArenaBytes)
	}
	return nil
}
