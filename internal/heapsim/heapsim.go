// Package heapsim implements a C-style heap allocator over the simulated
// address space of package mem.
//
// HeapTherapy+'s online defense is explicitly allocator-agnostic: it
// interposes the allocation API and forwards real allocation work to the
// underlying libc allocator without depending on its internals
// (Section VI of the paper). To reproduce that separation in Go — where
// the runtime heap cannot be interposed — this package provides the
// "underlying allocator": a boundary-tag allocator with segregated free
// lists, chunk splitting and coalescing, in the style of dlmalloc. The
// defense layer in package defense wraps the Allocator interface exactly
// as the paper's shared library wraps malloc/free.
//
// Keeping a faithful free-list allocator (rather than a map of fake
// addresses) matters for fidelity: heap exploits depend on allocation
// adjacency (overflow corrupts the next chunk) and on reuse order
// (use-after-free requires the freed block to be handed back), and both
// behaviours emerge from this implementation.
package heapsim

import (
	"errors"
	"fmt"

	"heaptherapy/internal/mem"
	"heaptherapy/internal/telemetry"
)

// AllocFn identifies the allocation API used to request a buffer. The
// paper's patches are keyed by {FUN, CCID}, where FUN is one of the
// allocation functions (Section V).
type AllocFn uint8

// Allocation API family.
const (
	// FnMalloc is malloc(size).
	FnMalloc AllocFn = iota + 1
	// FnCalloc is calloc(n, size).
	FnCalloc
	// FnRealloc is realloc(ptr, size).
	FnRealloc
	// FnMemalign is memalign(align, size).
	FnMemalign
	// FnAlignedAlloc is aligned_alloc(align, size).
	FnAlignedAlloc
)

func (f AllocFn) String() string {
	switch f {
	case FnMalloc:
		return "malloc"
	case FnCalloc:
		return "calloc"
	case FnRealloc:
		return "realloc"
	case FnMemalign:
		return "memalign"
	case FnAlignedAlloc:
		return "aligned_alloc"
	default:
		return fmt.Sprintf("AllocFn(%d)", uint8(f))
	}
}

// ParseAllocFn parses the textual name of an allocation function.
func ParseAllocFn(s string) (AllocFn, error) {
	switch s {
	case "malloc":
		return FnMalloc, nil
	case "calloc":
		return FnCalloc, nil
	case "realloc":
		return FnRealloc, nil
	case "memalign":
		return FnMemalign, nil
	case "aligned_alloc":
		return FnAlignedAlloc, nil
	default:
		return 0, fmt.Errorf("heapsim: unknown allocation function %q", s)
	}
}

// Allocator is the allocation API every layer of the system consumes:
// the raw heap, the shadow-memory analysis heap, and the online defended
// heap all implement it.
type Allocator interface {
	// Malloc allocates size bytes and returns the payload address.
	Malloc(size uint64) (uint64, error)
	// Calloc allocates n*size zeroed bytes.
	Calloc(n, size uint64) (uint64, error)
	// Realloc resizes the buffer at ptr to size bytes, moving it if
	// necessary. Realloc(0, size) behaves as Malloc(size).
	Realloc(ptr, size uint64) (uint64, error)
	// Memalign allocates size bytes aligned to align (a power of two).
	Memalign(align, size uint64) (uint64, error)
	// Free releases the buffer at ptr. Free(0) is a no-op.
	Free(ptr uint64) error
	// UsableSize reports the usable payload size of the buffer at ptr.
	UsableSize(ptr uint64) (uint64, error)
}

// Allocation errors.
var (
	// ErrOutOfMemory is returned when the arena cannot grow further.
	ErrOutOfMemory = errors.New("heapsim: out of memory")
	// ErrInvalidPointer is returned for frees of addresses that are not
	// live allocations (including double frees).
	ErrInvalidPointer = errors.New("heapsim: invalid pointer")
	// ErrBadAlignment is returned for non-power-of-two alignments.
	ErrBadAlignment = errors.New("heapsim: alignment is not a power of two")
	// ErrBadSize is returned for oversized or overflowing requests.
	ErrBadSize = errors.New("heapsim: invalid allocation size")
)

// Chunk layout constants. A chunk is [header(8)][payload...]; free
// chunks additionally hold fd/bk list links in the first 16 payload
// bytes and a size footer in the last 8 bytes, dlmalloc style.
const (
	headerSize = 8
	// minChunk holds header + fd + bk + footer.
	minChunk = 32
	// chunkAlign keeps all chunk sizes 16-byte multiples so payloads
	// stay 16-aligned, matching glibc on 64-bit platforms.
	chunkAlign = 16

	flagInUse     = 1 << 0
	flagPrevInUse = 1 << 1
	flagMask      = chunkAlign - 1

	// maxRequest caps a single allocation; requests above it report
	// ErrBadSize before any arithmetic can overflow.
	maxRequest = 1 << 40
)

const (
	numSmallBins  = 64 // exact classes: 32, 48, ..., 32+16*63
	numLargeBins  = 32 // power-of-two ranges above smallBinMax
	smallBinMax   = minChunk + chunkAlign*(numSmallBins-1)
	largeBinShift = 10 // first large bin covers [1040, 2048)
)

// Stats reports allocator activity and footprint.
type Stats struct {
	// Mallocs counts Malloc calls (including the allocating half of
	// Realloc and the Calloc fast path).
	Mallocs uint64
	// Callocs counts Calloc calls.
	Callocs uint64
	// Reallocs counts Realloc calls.
	Reallocs uint64
	// Memaligns counts Memalign/AlignedAlloc calls.
	Memaligns uint64
	// Frees counts Free calls on live pointers.
	Frees uint64
	// InUseBytes is the total payload bytes currently allocated.
	InUseBytes uint64
	// InUseChunks is the number of live allocations.
	InUseChunks uint64
	// PeakInUseBytes is the high-water mark of InUseBytes.
	PeakInUseBytes uint64
	// ArenaBytes is the total arena size obtained from the space.
	ArenaBytes uint64
	// FreeBytes is the total bytes held in free lists (excluding top).
	FreeBytes uint64
	// Splits counts chunk splits.
	Splits uint64
	// Coalesces counts chunk merges.
	Coalesces uint64
}

// Heap is the boundary-tag allocator. It implements Allocator.
type Heap struct {
	space *mem.Space

	arenaStart uint64 // first byte of the arena
	top        uint64 // start of the wilderness chunk
	arenaEnd   uint64 // one past the last arena byte

	smallBins [numSmallBins]uint64 // heads of exact-size lists
	largeBins [numLargeBins]uint64 // heads of ranged, size-sorted lists

	live map[uint64]uint64 // payload addr -> chunk addr, for validation

	stats Stats

	// tel, when non-nil, counts physical chunk registrations and
	// releases (so a moving realloc counts as one alloc and one free,
	// unlike Stats which nets those out) plus an allocation-size
	// histogram.
	tel *telemetry.Scope
}

var _ Allocator = (*Heap)(nil)

// New creates a heap arena at the current break of space.
func New(space *mem.Space) (*Heap, error) {
	start, err := space.Sbrk(mem.PageSize)
	if err != nil {
		return nil, fmt.Errorf("heapsim: reserving arena: %w", err)
	}
	h := &Heap{
		space:      space,
		arenaStart: start,
		// Chunks start at ≡8 (mod 16) so payloads are 16-aligned.
		top:      start + headerSize,
		arenaEnd: start + mem.PageSize,
		live:     make(map[uint64]uint64),
	}
	h.stats.ArenaBytes = mem.PageSize
	return h, nil
}

// Space returns the address space backing this heap.
func (h *Heap) Space() *mem.Space { return h.space }

// Reset re-initializes the heap over its space after the space itself
// has been Reset (or is otherwise back at the break where this heap's
// arena began): the arena page is re-reserved and all allocator state
// — bins, live table, statistics — is cleared. The live map's buckets
// are reused, so a steady-state reset allocates nothing. Pointers from
// before the Reset are invalid.
func (h *Heap) Reset() error {
	start, err := h.space.Sbrk(mem.PageSize)
	if err != nil {
		return fmt.Errorf("heapsim: re-reserving arena: %w", err)
	}
	h.arenaStart = start
	h.top = start + headerSize
	h.arenaEnd = start + mem.PageSize
	h.smallBins = [numSmallBins]uint64{}
	h.largeBins = [numLargeBins]uint64{}
	clear(h.live)
	h.stats = Stats{ArenaBytes: mem.PageSize}
	return nil
}

// Stats returns a snapshot of allocator statistics.
func (h *Heap) Stats() Stats { return h.stats }

// SetTelemetry attaches a telemetry scope; nil detaches.
func (h *Heap) SetTelemetry(tel *telemetry.Scope) { h.tel = tel }

// --- chunk header helpers -------------------------------------------------

func (h *Heap) header(c uint64) uint64 {
	v, err := h.space.RawLoad64(c)
	if err != nil {
		// The allocator only dereferences chunk addresses it created;
		// an unmapped one indicates internal corruption.
		panic(fmt.Sprintf("heapsim: corrupt chunk address %#x: %v", c, err))
	}
	return v
}

func (h *Heap) setHeader(c, v uint64) {
	if err := h.space.RawStore64(c, v); err != nil {
		panic(fmt.Sprintf("heapsim: corrupt chunk address %#x: %v", c, err))
	}
}

func (h *Heap) chunkSize(c uint64) uint64  { return h.header(c) &^ uint64(flagMask) }
func (h *Heap) inUse(c uint64) bool        { return h.header(c)&flagInUse != 0 }
func (h *Heap) prevInUse(c uint64) bool    { return h.header(c)&flagPrevInUse != 0 }
func (h *Heap) nextChunk(c uint64) uint64  { return c + h.chunkSize(c) }
func payload(c uint64) uint64              { return c + headerSize }
func chunkOf(p uint64) uint64              { return p - headerSize }
func (h *Heap) footerAddr(c uint64) uint64 { return c + h.chunkSize(c) - 8 }

func (h *Heap) setSizeFlags(c, size uint64, inUse, prevInUse bool) {
	v := size
	if inUse {
		v |= flagInUse
	}
	if prevInUse {
		v |= flagPrevInUse
	}
	h.setHeader(c, v)
}

func (h *Heap) setFooter(c uint64) {
	if err := h.space.RawStore64(h.footerAddr(c), h.chunkSize(c)); err != nil {
		panic(fmt.Sprintf("heapsim: footer store at %#x: %v", h.footerAddr(c), err))
	}
}

func (h *Heap) prevChunk(c uint64) uint64 {
	prevSize, err := h.space.RawLoad64(c - 8)
	if err != nil {
		panic(fmt.Sprintf("heapsim: prev footer load at %#x: %v", c-8, err))
	}
	return c - prevSize
}

func (h *Heap) setPrevInUseOf(c uint64, prevInUse bool) {
	v := h.header(c)
	if prevInUse {
		v |= flagPrevInUse
	} else {
		v &^= uint64(flagPrevInUse)
	}
	h.setHeader(c, v)
}

// --- free list management -------------------------------------------------

// fd/bk links live in the free chunk's payload.
func (h *Heap) fd(c uint64) uint64 { return h.mustLoad(c + 8) }
func (h *Heap) bk(c uint64) uint64 { return h.mustLoad(c + 16) }

func (h *Heap) setFd(c, v uint64) { h.mustStore(c+8, v) }
func (h *Heap) setBk(c, v uint64) { h.mustStore(c+16, v) }

func (h *Heap) mustLoad(addr uint64) uint64 {
	v, err := h.space.RawLoad64(addr)
	if err != nil {
		panic(fmt.Sprintf("heapsim: free-list load at %#x: %v", addr, err))
	}
	return v
}

func (h *Heap) mustStore(addr, v uint64) {
	if err := h.space.RawStore64(addr, v); err != nil {
		panic(fmt.Sprintf("heapsim: free-list store at %#x: %v", addr, err))
	}
}

// binIndex maps a chunk size to (small, index).
func binIndex(size uint64) (small bool, idx int) {
	if size <= smallBinMax {
		return true, int((size - minChunk) / chunkAlign)
	}
	// Large bins: one per power-of-two band.
	idx = 0
	s := size >> largeBinShift
	for s > 1 && idx < numLargeBins-1 {
		s >>= 1
		idx++
	}
	return false, idx
}

func (h *Heap) binHead(small bool, idx int) uint64 {
	if small {
		return h.smallBins[idx]
	}
	return h.largeBins[idx]
}

func (h *Heap) setBinHead(small bool, idx int, c uint64) {
	if small {
		h.smallBins[idx] = c
	} else {
		h.largeBins[idx] = c
	}
}

// insertFree links a free chunk into its bin. Large bins are kept sorted
// ascending by size so first-fit is best-fit within the bin.
func (h *Heap) insertFree(c uint64) {
	size := h.chunkSize(c)
	h.stats.FreeBytes += size
	small, idx := binIndex(size)
	head := h.binHead(small, idx)
	if small || head == 0 {
		// LIFO push. LIFO reuse order is what makes use-after-free
		// exploitation easy on real allocators, so it is preserved here.
		h.setFd(c, head)
		h.setBk(c, 0)
		if head != 0 {
			h.setBk(head, c)
		}
		h.setBinHead(small, idx, c)
		return
	}
	// Sorted insert for large bins.
	var prev uint64
	cur := head
	for cur != 0 && h.chunkSize(cur) < size {
		prev = cur
		cur = h.fd(cur)
	}
	h.setFd(c, cur)
	h.setBk(c, prev)
	if cur != 0 {
		h.setBk(cur, c)
	}
	if prev == 0 {
		h.setBinHead(small, idx, c)
	} else {
		h.setFd(prev, c)
	}
}

// removeFree unlinks a free chunk from its bin.
func (h *Heap) removeFree(c uint64) {
	size := h.chunkSize(c)
	h.stats.FreeBytes -= size
	small, idx := binIndex(size)
	fd, bk := h.fd(c), h.bk(c)
	if bk == 0 {
		h.setBinHead(small, idx, fd)
	} else {
		h.setFd(bk, fd)
	}
	if fd != 0 {
		h.setBk(fd, bk)
	}
}

// --- allocation -----------------------------------------------------------

// chunkSizeFor converts a user request into a chunk size.
func chunkSizeFor(req uint64) (uint64, error) {
	if req > maxRequest {
		return 0, fmt.Errorf("%w: %d", ErrBadSize, req)
	}
	size := req + headerSize
	if size < minChunk {
		size = minChunk
	}
	size = (size + chunkAlign - 1) &^ uint64(chunkAlign-1)
	return size, nil
}

// Malloc implements Allocator.
func (h *Heap) Malloc(size uint64) (uint64, error) {
	c, err := h.allocChunk(size)
	if err != nil {
		return 0, err
	}
	h.stats.Mallocs++
	return h.finishAlloc(c), nil
}

// finishAlloc registers a freshly carved in-use chunk and returns its
// payload address.
func (h *Heap) finishAlloc(c uint64) uint64 {
	p := payload(c)
	h.live[p] = c
	userBytes := h.chunkSize(c) - headerSize
	if h.tel != nil {
		h.tel.Inc(telemetry.CtrAllocs)
		h.tel.Observe(telemetry.HistAllocSize, userBytes)
	}
	h.stats.InUseBytes += userBytes
	h.stats.InUseChunks++
	if h.stats.InUseBytes > h.stats.PeakInUseBytes {
		h.stats.PeakInUseBytes = h.stats.InUseBytes
	}
	return p
}

// allocChunk finds or carves an in-use chunk whose payload fits size
// bytes. The returned chunk has its header fully set.
func (h *Heap) allocChunk(size uint64) (uint64, error) {
	need, err := chunkSizeFor(size)
	if err != nil {
		return 0, err
	}

	// Exact small bin.
	if small, idx := binIndex(need); small {
		if c := h.smallBins[idx]; c != 0 && h.chunkSize(c) == need {
			h.removeFree(c)
			h.markInUse(c)
			return c, nil
		}
		// Scan the remaining small bins and large bins for a fit.
		for i := idx + 1; i < numSmallBins; i++ {
			if c := h.smallBins[i]; c != 0 {
				h.removeFree(c)
				return h.splitAndUse(c, need), nil
			}
		}
		for i := 0; i < numLargeBins; i++ {
			if c := h.firstFitLarge(i, need); c != 0 {
				h.removeFree(c)
				return h.splitAndUse(c, need), nil
			}
		}
	} else {
		_, idx := binIndex(need)
		for i := idx; i < numLargeBins; i++ {
			if c := h.firstFitLarge(i, need); c != 0 {
				h.removeFree(c)
				return h.splitAndUse(c, need), nil
			}
		}
	}

	// Fall back to the top (wilderness) chunk.
	return h.allocFromTop(need)
}

// firstFitLarge returns the first chunk in large bin i of at least need
// bytes, or 0. Large bins are sorted ascending, so this is best fit.
func (h *Heap) firstFitLarge(i int, need uint64) uint64 {
	for c := h.largeBins[i]; c != 0; c = h.fd(c) {
		if h.chunkSize(c) >= need {
			return c
		}
	}
	return 0
}

// markInUse flags chunk c as allocated and updates its successor.
func (h *Heap) markInUse(c uint64) {
	size := h.chunkSize(c)
	h.setSizeFlags(c, size, true, h.prevInUse(c))
	if next := c + size; next < h.top {
		h.setPrevInUseOf(next, true)
	}
}

// splitAndUse carves `need` bytes from free chunk c, returning the
// now-in-use chunk and freeing any viable remainder.
func (h *Heap) splitAndUse(c, need uint64) uint64 {
	size := h.chunkSize(c)
	if size >= need+minChunk {
		h.stats.Splits++
		rem := c + need
		h.setSizeFlags(c, need, true, h.prevInUse(c))
		h.setSizeFlags(rem, size-need, false, true)
		h.setFooter(rem)
		if next := rem + (size - need); next < h.top {
			h.setPrevInUseOf(next, false)
		}
		h.insertFree(rem)
		return c
	}
	h.markInUse(c)
	return c
}

// allocFromTop carves from the wilderness, growing the arena on demand.
func (h *Heap) allocFromTop(need uint64) (uint64, error) {
	avail := h.arenaEnd - h.top
	// Keep one header's room so the top chunk start stays addressable.
	for avail < need+headerSize {
		grow := need + headerSize - avail
		got, err := h.space.Sbrk(grow)
		if err != nil {
			return 0, fmt.Errorf("%w: arena limit reached growing by %d", ErrOutOfMemory, grow)
		}
		if got != h.arenaEnd {
			// Another segment (e.g. a table mapping) claimed the break;
			// the arena must stay contiguous.
			return 0, fmt.Errorf("heapsim: arena discontiguous: sbrk returned %#x, want %#x", got, h.arenaEnd)
		}
		grown := mem.RoundUpPage(grow)
		h.arenaEnd += grown
		h.stats.ArenaBytes += grown
		avail = h.arenaEnd - h.top
	}
	c := h.top
	prevInUse := true // invariant: the chunk below top is never free
	h.setSizeFlags(c, need, true, prevInUse)
	h.top = c + need
	return c, nil
}

// Calloc implements Allocator.
func (h *Heap) Calloc(n, size uint64) (uint64, error) {
	if size != 0 && n > maxRequest/size {
		return 0, fmt.Errorf("%w: calloc(%d, %d) overflows", ErrBadSize, n, size)
	}
	total := n * size
	c, err := h.allocChunk(total)
	if err != nil {
		return 0, err
	}
	h.stats.Callocs++
	p := h.finishAlloc(c)
	if err := h.space.RawMemset(p, 0, total); err != nil {
		return 0, fmt.Errorf("heapsim: zeroing calloc payload: %w", err)
	}
	return p, nil
}

// Memalign implements Allocator.
func (h *Heap) Memalign(align, size uint64) (uint64, error) {
	if align == 0 || align&(align-1) != 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadAlignment, align)
	}
	h.stats.Memaligns++
	if align <= chunkAlign {
		// Natural alignment already satisfies the request.
		c, err := h.allocChunk(size)
		if err != nil {
			return 0, err
		}
		return h.finishAlloc(c), nil
	}
	// Over-allocate, then carve an aligned chunk out of the middle.
	c, err := h.allocChunk(size + align + minChunk)
	if err != nil {
		return 0, err
	}
	p := payload(c)
	if p%align == 0 {
		return h.finishAlloc(c), nil
	}
	alignedP := (p + align - 1) &^ (align - 1)
	if alignedP-p < minChunk {
		alignedP += align
	}
	alignedC := chunkOf(alignedP)
	chunkEnd := c + h.chunkSize(c)
	// Shrink the original chunk into a free prefix, coalescing backward
	// if the neighbor below is already free.
	if !h.prevInUse(c) {
		prev := h.prevChunk(c)
		h.stats.Coalesces++
		h.removeFree(prev)
		c = prev
	}
	h.setSizeFlags(c, alignedC-c, false, true)
	h.setFooter(c)
	h.setSizeFlags(alignedC, chunkEnd-alignedC, true, false)
	h.insertFree(c)
	// Trim the tail if oversized.
	need, err := chunkSizeFor(size)
	if err != nil {
		return 0, err
	}
	h.trimTail(alignedC, need)
	return h.finishAlloc(alignedC), nil
}

// trimTail splits an in-use chunk down to need bytes, freeing the rest.
func (h *Heap) trimTail(c, need uint64) {
	size := h.chunkSize(c)
	if size < need+minChunk {
		return
	}
	h.stats.Splits++
	rem := c + need
	remSize := size - need
	h.setSizeFlags(c, need, true, h.prevInUse(c))
	next := rem + remSize
	if next == h.top {
		// Merge the remainder straight into the wilderness.
		h.top = rem
		h.stats.Splits-- // not an observable split
		return
	}
	// Coalesce forward so the remainder never sits next to a free chunk.
	if !h.inUse(next) {
		h.stats.Coalesces++
		h.removeFree(next)
		remSize += h.chunkSize(next)
		if rem+remSize == h.top {
			h.top = rem
			return
		}
	}
	h.setSizeFlags(rem, remSize, false, true)
	h.setFooter(rem)
	h.setPrevInUseOf(rem+remSize, false)
	h.insertFree(rem)
}

// Realloc implements Allocator.
func (h *Heap) Realloc(ptr, size uint64) (uint64, error) {
	if ptr == 0 {
		return h.Malloc(size)
	}
	c, ok := h.live[ptr]
	if !ok {
		return 0, fmt.Errorf("%w: realloc of %#x", ErrInvalidPointer, ptr)
	}
	h.stats.Reallocs++
	oldUser := h.chunkSize(c) - headerSize
	need, err := chunkSizeFor(size)
	if err != nil {
		return 0, err
	}
	cur := h.chunkSize(c)
	switch {
	case need <= cur:
		// Shrink in place.
		h.stats.InUseBytes -= oldUser
		h.trimTail(c, need)
		h.stats.InUseBytes += h.chunkSize(c) - headerSize
		return ptr, nil
	case c+cur == h.top:
		// Expand into the wilderness.
		extra := need - cur
		avail := h.arenaEnd - h.top
		for avail < extra+headerSize {
			grow := extra + headerSize - avail
			got, err := h.space.Sbrk(grow)
			if err != nil {
				return 0, fmt.Errorf("%w: arena limit reached", ErrOutOfMemory)
			}
			if got != h.arenaEnd {
				return 0, fmt.Errorf("heapsim: arena discontiguous: sbrk returned %#x, want %#x", got, h.arenaEnd)
			}
			grown := mem.RoundUpPage(grow)
			h.arenaEnd += grown
			h.stats.ArenaBytes += grown
			avail = h.arenaEnd - h.top
		}
		h.setSizeFlags(c, need, true, h.prevInUse(c))
		h.top = c + need
		h.stats.InUseBytes += (need - cur)
		if h.stats.InUseBytes > h.stats.PeakInUseBytes {
			h.stats.PeakInUseBytes = h.stats.InUseBytes
		}
		return ptr, nil
	default:
		next := c + cur
		if next < h.top && !h.inUse(next) && cur+h.chunkSize(next) >= need {
			// Absorb the free neighbor.
			h.stats.Coalesces++
			h.removeFree(next)
			merged := cur + h.chunkSize(next)
			h.setSizeFlags(c, merged, true, h.prevInUse(c))
			if n2 := c + merged; n2 < h.top {
				h.setPrevInUseOf(n2, true)
			}
			h.stats.InUseBytes -= oldUser
			h.trimTail(c, need)
			h.stats.InUseBytes += h.chunkSize(c) - headerSize
			if h.stats.InUseBytes > h.stats.PeakInUseBytes {
				h.stats.PeakInUseBytes = h.stats.InUseBytes
			}
			return ptr, nil
		}
		// Move: allocate, copy, free.
		newP, err := h.Malloc(size)
		if err != nil {
			return 0, err
		}
		h.stats.Mallocs-- // counted as a realloc, not a malloc
		copyLen := oldUser
		if size < copyLen {
			copyLen = size
		}
		data, err := h.space.RawRead(ptr, copyLen)
		if err != nil {
			return 0, fmt.Errorf("heapsim: realloc copy: %w", err)
		}
		if err := h.space.RawWrite(newP, data); err != nil {
			return 0, fmt.Errorf("heapsim: realloc copy: %w", err)
		}
		if err := h.Free(ptr); err != nil {
			return 0, fmt.Errorf("heapsim: realloc free: %w", err)
		}
		h.stats.Frees-- // internal free, not a user-visible one
		return newP, nil
	}
}

// Free implements Allocator.
func (h *Heap) Free(ptr uint64) error {
	if ptr == 0 {
		return nil
	}
	c, ok := h.live[ptr]
	if !ok {
		return fmt.Errorf("%w: free of %#x", ErrInvalidPointer, ptr)
	}
	delete(h.live, ptr)
	if h.tel != nil {
		h.tel.Inc(telemetry.CtrFrees)
	}
	h.stats.Frees++
	h.stats.InUseBytes -= h.chunkSize(c) - headerSize
	h.stats.InUseChunks--

	size := h.chunkSize(c)

	// Coalesce backward.
	if !h.prevInUse(c) {
		prev := h.prevChunk(c)
		h.stats.Coalesces++
		h.removeFree(prev)
		size += h.chunkSize(prev)
		c = prev
	}
	// Coalesce forward, or merge into top.
	next := c + size
	if next == h.top {
		h.top = c
		// The chunk below the new top must be in-use (invariant), so no
		// footer bookkeeping is needed.
		return nil
	}
	if next < h.top && !h.inUse(next) {
		h.stats.Coalesces++
		h.removeFree(next)
		size += h.chunkSize(next)
		if c+size == h.top {
			h.top = c
			return nil
		}
	}
	h.setSizeFlags(c, size, false, true)
	h.setFooter(c)
	h.setPrevInUseOf(c+size, false)
	h.insertFree(c)
	return nil
}

// UsableSize implements Allocator.
func (h *Heap) UsableSize(ptr uint64) (uint64, error) {
	c, ok := h.live[ptr]
	if !ok {
		return 0, fmt.Errorf("%w: usable_size of %#x", ErrInvalidPointer, ptr)
	}
	return h.chunkSize(c) - headerSize, nil
}

// IsLive reports whether ptr is a live allocation payload.
func (h *Heap) IsLive(ptr uint64) bool {
	_, ok := h.live[ptr]
	return ok
}

// LiveCount returns the number of live allocations.
func (h *Heap) LiveCount() int { return len(h.live) }

// CheckIntegrity walks the whole arena validating chunk invariants:
// sizes aligned, headers/footers consistent, no two adjacent free
// chunks, and free-list membership matching header flags. It is used by
// tests and by property-based fuzzing of allocation sequences.
func (h *Heap) CheckIntegrity() error {
	free := make(map[uint64]bool)
	for i := 0; i < numSmallBins; i++ {
		if err := h.walkBin(h.smallBins[i], free); err != nil {
			return err
		}
	}
	for i := 0; i < numLargeBins; i++ {
		if err := h.walkBin(h.largeBins[i], free); err != nil {
			return err
		}
	}

	c := h.arenaStart + headerSize
	prevFree := false
	prevInUse := true
	for c < h.top {
		size := h.chunkSize(c)
		if size < minChunk || size%chunkAlign != 0 {
			return fmt.Errorf("heapsim: chunk %#x has bad size %d", c, size)
		}
		if h.prevInUse(c) != prevInUse {
			return fmt.Errorf("heapsim: chunk %#x prev-in-use flag %v, want %v", c, h.prevInUse(c), prevInUse)
		}
		if h.inUse(c) {
			if _, ok := h.live[payload(c)]; !ok {
				return fmt.Errorf("heapsim: in-use chunk %#x not in live table", c)
			}
			prevFree = false
		} else {
			if prevFree {
				return fmt.Errorf("heapsim: adjacent free chunks at %#x", c)
			}
			if !free[c] {
				return fmt.Errorf("heapsim: free chunk %#x not in any bin", c)
			}
			footer := h.mustLoad(h.footerAddr(c))
			if footer != size {
				return fmt.Errorf("heapsim: chunk %#x footer %d != size %d", c, footer, size)
			}
			prevFree = true
		}
		prevInUse = h.inUse(c)
		c += size
	}
	if c != h.top {
		return fmt.Errorf("heapsim: arena walk ended at %#x, want top %#x", c, h.top)
	}
	if prevFree {
		return errors.New("heapsim: free chunk adjacent to top (should have merged)")
	}
	return nil
}

func (h *Heap) walkBin(head uint64, free map[uint64]bool) error {
	prev := uint64(0)
	for c := head; c != 0; c = h.fd(c) {
		if h.inUse(c) {
			return fmt.Errorf("heapsim: in-use chunk %#x on free list", c)
		}
		if free[c] {
			return fmt.Errorf("heapsim: chunk %#x on free list twice", c)
		}
		if h.bk(c) != prev {
			return fmt.Errorf("heapsim: chunk %#x bk link %#x, want %#x", c, h.bk(c), prev)
		}
		free[c] = true
		prev = c
	}
	return nil
}
