package heapsim

import (
	"testing"

	"heaptherapy/internal/mem"
)

// churn runs a deterministic allocation workload and returns the
// addresses handed out, exercising splits, coalescing, and realloc.
func churn(t *testing.T, a Allocator) []uint64 {
	t.Helper()
	var addrs []uint64
	var live []uint64
	for i := 0; i < 200; i++ {
		size := uint64(16 + (i*37)%700)
		p, err := a.Malloc(size)
		if err != nil {
			t.Fatalf("malloc %d: %v", size, err)
		}
		addrs = append(addrs, p)
		live = append(live, p)
		if i%3 == 2 {
			victim := live[0]
			live = live[1:]
			if err := a.Free(victim); err != nil {
				t.Fatalf("free %#x: %v", victim, err)
			}
		}
		if i%17 == 16 {
			np, err := a.Realloc(live[len(live)-1], size*2)
			if err != nil {
				t.Fatalf("realloc: %v", err)
			}
			live[len(live)-1] = np
			addrs = append(addrs, np)
		}
	}
	for _, p := range live {
		if err := a.Free(p); err != nil {
			t.Fatalf("teardown free %#x: %v", p, err)
		}
	}
	return addrs
}

// TestHeapResetDeterministic: a Reset heap must hand out the exact
// address sequence a fresh heap does — the property the fleet's
// differential tests build on.
func TestHeapResetDeterministic(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(space)
	if err != nil {
		t.Fatal(err)
	}
	first := churn(t, h)
	space.Reset()
	if err := h.Reset(); err != nil {
		t.Fatal(err)
	}
	second := churn(t, h)
	if len(first) != len(second) {
		t.Fatalf("address counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("address %d differs after Reset: %#x vs %#x", i, first[i], second[i])
		}
	}
	if err := h.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after reset churn: %v", err)
	}
	if h.LiveCount() != 0 {
		t.Errorf("live count %d after teardown", h.LiveCount())
	}
}

// TestPoolResetDeterministic mirrors the heap test for the slab pool.
func TestPoolResetDeterministic(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(space)
	if err != nil {
		t.Fatal(err)
	}
	first := churn(t, p)
	space.Reset()
	p.Reset()
	second := churn(t, p)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("pool address %d differs after Reset: %#x vs %#x", i, first[i], second[i])
		}
	}
	if p.LiveCount() != 0 {
		t.Errorf("pool live count %d after teardown", p.LiveCount())
	}
}

// TestHeapResetAllocFree: after one warm epoch, the reset-and-churn
// cycle must not grow the Go heap (map buckets, bins, and space
// capacity are all reused).
func TestHeapResetAllocFree(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(space)
	if err != nil {
		t.Fatal(err)
	}
	cycle := func() {
		var live []uint64
		for i := 0; i < 32; i++ {
			p, err := h.Malloc(uint64(32 + i*16))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		}
		for _, p := range live {
			if err := h.Free(p); err != nil {
				t.Fatal(err)
			}
		}
		space.Reset()
		if err := h.Reset(); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm capacity and map buckets
	avg := testing.AllocsPerRun(50, func() {
		var live [32]uint64
		for i := 0; i < 32; i++ {
			p, err := h.Malloc(uint64(32 + i*16))
			if err != nil {
				t.Fatal(err)
			}
			live[i] = p
		}
		for _, p := range live {
			if err := h.Free(p); err != nil {
				t.Fatal(err)
			}
		}
		space.Reset()
		if err := h.Reset(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("heap reset cycle allocates %.1f per run, want 0", avg)
	}
}
