package heapsim

import (
	"errors"
	"testing"
	"testing/quick"

	"heaptherapy/internal/mem"
)

func newTestPool(t *testing.T) *PoolAllocator {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(space)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolMallocFree(t *testing.T) {
	p := newTestPool(t)
	a, err := p.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	usable, err := p.UsableSize(a)
	if err != nil {
		t.Fatal(err)
	}
	if usable < 100 {
		t.Errorf("usable = %d, want >= 100", usable)
	}
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	if p.LiveCount() != 0 {
		t.Errorf("LiveCount = %d", p.LiveCount())
	}
}

func TestPoolFIFOReuse(t *testing.T) {
	p := newTestPool(t)
	// Drain the 128-class (one carve = one page = 32 blocks) so the
	// free list is empty, then free two blocks and watch them come back
	// in FIFO order.
	var blocks []uint64
	for i := 0; i < 32; i++ {
		b, err := p.Malloc(100)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
	}
	if err := p.Free(blocks[3]); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(blocks[7]); err != nil {
		t.Fatal(err)
	}
	first, err := p.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if first != blocks[3] || second != blocks[7] {
		t.Errorf("reuse order = %#x, %#x; want FIFO %#x, %#x", first, second, blocks[3], blocks[7])
	}
}

func TestPoolCallocZeroes(t *testing.T) {
	p := newTestPool(t)
	a, _ := p.Malloc(256)
	_ = p.Space().RawMemset(a, 0xEE, 256)
	_ = p.Free(a)
	// Burn through the class so the dirty block comes back.
	for i := 0; i < 20; i++ {
		b, err := p.Calloc(16, 16)
		if err != nil {
			t.Fatal(err)
		}
		data, err := p.Space().Read(b, 256)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range data {
			if v != 0 {
				t.Fatalf("calloc byte %d = %#x", j, v)
			}
		}
	}
}

func TestPoolMemalign(t *testing.T) {
	p := newTestPool(t)
	for _, align := range []uint64{16, 64, 256, 4096} {
		a, err := p.Memalign(align, 100)
		if err != nil {
			t.Fatalf("Memalign(%d): %v", align, err)
		}
		if a%align != 0 {
			t.Errorf("Memalign(%d) = %#x unaligned", align, a)
		}
		if err := p.Free(a); err != nil {
			t.Fatalf("Free of aligned: %v", err)
		}
	}
	if _, err := p.Memalign(3, 10); !errors.Is(err, ErrBadAlignment) {
		t.Error("bad alignment accepted")
	}
}

func TestPoolRealloc(t *testing.T) {
	p := newTestPool(t)
	a, _ := p.Malloc(64)
	if err := p.Space().Write(a, []byte("pooldata")); err != nil {
		t.Fatal(err)
	}
	b, err := p.Realloc(a, 4000)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := p.Space().Read(b, 8)
	if string(data) != "pooldata" {
		t.Errorf("realloc lost data: %q", data)
	}
	// Shrinking realloc stays in place.
	c, err := p.Realloc(b, 10)
	if err != nil || c != b {
		t.Errorf("shrink moved: %#x vs %#x (%v)", c, b, err)
	}
}

func TestPoolLargeAllocation(t *testing.T) {
	p := newTestPool(t)
	a, err := p.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Space().Memset(a, 1, 1<<20); err != nil {
		t.Fatalf("large block not usable: %v", err)
	}
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
}

func TestPoolErrors(t *testing.T) {
	p := newTestPool(t)
	if err := p.Free(0xBAD); !errors.Is(err, ErrInvalidPointer) {
		t.Error("bogus free accepted")
	}
	if err := p.Free(0); err != nil {
		t.Error("free(nil) errored")
	}
	a, _ := p.Malloc(64)
	_ = p.Free(a)
	if err := p.Free(a); !errors.Is(err, ErrInvalidPointer) {
		t.Error("double free accepted")
	}
	if _, err := p.Calloc(1<<33, 1<<33); !errors.Is(err, ErrBadSize) {
		t.Error("calloc overflow accepted")
	}
}

// TestQuickPoolRoundTrip property-tests alloc/free cycles.
func TestQuickPoolRoundTrip(t *testing.T) {
	p := newTestPool(t)
	f := func(sizes []uint16) bool {
		var ptrs []uint64
		for _, s := range sizes {
			a, err := p.Malloc(uint64(s) + 1)
			if err != nil {
				return false
			}
			ptrs = append(ptrs, a)
		}
		for _, a := range ptrs {
			if p.Free(a) != nil {
				return false
			}
		}
		return p.LiveCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
