// Package defense implements HeapTherapy+'s Online Defense Generator
// (Section VI of the paper): the interposition layer that recognizes
// vulnerable buffers by their allocation-time {FUN, CCID} and enhances
// exactly those buffers.
//
// The paper ships this as an LD_PRELOAD shared library whose
// constructor loads the patch configuration into a read-only hash
// table and whose malloc/free definitions shadow libc's. Here the same
// logic wraps the heapsim.Heap allocator behind the prog.HeapBackend
// interface; as in the paper, the layer maintains all metadata itself
// (in a word preceding each user buffer, Figure 6) and never touches
// allocator internals.
//
// Buffer structures (Figure 6):
//
//	S1 plain:          [meta][user...]
//	S2 guarded:        [meta][user...][pad][guard page]
//	S3 aligned:        [...pad][meta][user (aligned)...]
//	S4 aligned+guard:  [...pad][meta][user (aligned)...][pad][guard page]
//
// The 64-bit metadata word packs, from bit 0: a 4-bit buffer-type field
// (OVERFLOW, UAF, UNINIT-READ, ALIGNED); then either the 48-bit user
// size (S1/S3) or the 36-bit guard-page frame number (S2/S4, with the
// user size stored in the guard page's first word instead); aligned
// buffers add 6 bits of lg(alignment). Freeing follows Figure 7:
// unprotect the guard if present, recover the underlying pointer from
// the alignment info, then either defer the block through the FIFO
// queue (UAF) or forward to the real free.
package defense

import (
	"errors"
	"fmt"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/telemetry"
)

// Metadata word field layout.
const (
	typeBits  = 4
	typeMask  = (1 << typeBits) - 1
	guardBits = 36 // 48-bit VA space minus 12 page bits
	sizeBits  = 48
	alignBits = 6

	// Type-field bits, mirroring patch.TypeMask plus the aligned flag.
	bitOverflow = 1 << 0
	bitUAF      = 1 << 1
	bitUninit   = 1 << 2
	bitAligned  = 1 << 3

	// freedSentinel marks the metadata word of a block parked in the
	// deferred-free queue, so double frees are detected.
	freedSentinel = uint64(0xFEED) << 48

	metaSize = 8
)

// DefaultQueueQuota bounds the deferred-free FIFO (paper default: 2 GiB,
// scaled to the simulation).
const DefaultQueueQuota = 8 << 20

// Mode selects how much of the defense pipeline runs; the evaluation's
// Figure 8 separates these costs.
type Mode uint8

// Modes.
const (
	// ModeInterpose only forwards calls through the interposition
	// layer: the "interposition only" bar of Figure 8.
	ModeInterpose Mode = iota + 1
	// ModeFull maintains per-buffer metadata and consults the patch
	// table on every allocation: the deployed configuration.
	ModeFull
)

func (m Mode) String() string {
	switch m {
	case ModeInterpose:
		return "interpose"
	case ModeFull:
		return "full"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Config configures the defense layer.
type Config struct {
	// Mode selects interposition-only or full metadata+patch operation
	// (default ModeFull). Interposition-only measurement is exclusive
	// to the (default) HT family.
	Mode Mode
	// Family selects the defense policy (default FamilyHT: the
	// HeapTherapy+ patch-table defense). See family.go for the policy
	// table and the per-family containment matrix.
	Family Family
	// Patches is the loaded configuration (nil = no patches). Ignored
	// when SharedTable is set.
	Patches *patch.Set
	// SharedTable, when non-nil, makes the Defender probe an immutable
	// table shared with other Defenders (the fleet runtime's
	// configuration) instead of materializing a private table in its
	// own space. Shared lookups are lock-free and must be the ONLY
	// cross-goroutine touch point between Defenders (see the Defender
	// concurrency contract).
	SharedTable *SealedTable
	// QueueQuota bounds the deferred-free FIFO in bytes
	// (0 = DefaultQueueQuota).
	QueueQuota uint64
	// Telemetry, when non-nil, receives defense counters (patch hits,
	// guard pages, zero fills, deferred frees, quota evictions, double
	// frees), a patch-lookup cost histogram, and trace events for
	// defense-relevant incidents. Nil (the default) disables telemetry
	// at the cost of one predictable branch per instrumentation point.
	Telemetry *telemetry.Scope
}

// Stats counts defense activity.
type Stats struct {
	// Allocs is the number of allocation calls intercepted.
	Allocs uint64
	// Lookups is the number of patch-table probes (one per allocation
	// in ModeFull).
	Lookups uint64
	// LookupFaults counts patch-table lookups that faulted (corrupted
	// or remapped table). Such a lookup aborts the allocation rather
	// than silently proceeding unpatched.
	LookupFaults uint64
	// PatchedAllocs is the number of allocations recognized as
	// vulnerable.
	PatchedAllocs uint64
	// GuardPages is the number of guard pages installed.
	GuardPages uint64
	// ZeroFills is the number of buffers zero-initialized.
	ZeroFills uint64
	// DeferredFrees counts blocks parked in the FIFO queue.
	DeferredFrees uint64
	// QueueEvictions counts blocks released to the allocator when the
	// quota forced them out.
	QueueEvictions uint64
	// QueueBytes is the current queue occupancy.
	QueueBytes uint64
	// Frees counts free() calls intercepted.
	Frees uint64
}

// Errors.
var (
	// ErrDoubleFree reports a free of a block already in the deferred
	// queue; the defense aborts like a hardened allocator would.
	ErrDoubleFree = errors.New("defense: double free of deferred block")
)

// queued is one deferred-free entry.
type queued struct {
	base uint64 // underlying pointer to hand to the real free
	user uint64
	size uint64
}

// Defender is the online defense layer over an underlying allocator.
//
// Concurrency contract: a Defender (and the Backend wrapping it) owns
// mutable state — Stats counters, the cycle accumulator, the deferred-
// free queue, its space, and its allocator — with NO synchronization,
// exactly as each simulated process owns its heap. One goroutine per
// Defender, enforced by the race-detector regression tests. The only
// state that may be shared between Defenders on different goroutines
// is an immutable SealedTable (Config.SharedTable), whose lookups are
// read-only. This is the sharing model of the paper's deployment: the
// patch table is process-wide and read-only, everything else is
// per-thread or protected by the allocator's own locks — which this
// simulation replaces with strict per-worker ownership.
type Defender struct {
	under  heapsim.Allocator
	heap   *heapsim.Heap // set when the default allocator backs `under`
	space  *mem.Space
	cfg    Config
	ops    *policyOps   // the selected family's hook table
	table  *patchTable  // private in-space table (nil when shared is set)
	shared *SealedTable // immutable cross-worker table (fleet runtime)

	queue      []queued
	queueBytes uint64

	// bounds is the ShadowBound policy's live-object index, sorted by
	// user address; empty for every other family.
	bounds []boundsEntry

	stats  Stats
	cycles uint64

	// gen counts patch-table (re)establishments; see TableGeneration.
	gen uint64

	// tel is Config.Telemetry; nil disables instrumentation.
	tel *telemetry.Scope
	// patchHits counts allocations per installed patch key, maintained
	// only when telemetry is attached (patched allocations are rare, so
	// the map write is off the common path).
	patchHits map[patch.Key]uint64
}

// New creates a defense layer over a fresh heap in space. Loading the
// patch set corresponds to the shared library's constructor reading
// the configuration file; after construction the table is never
// mutated, mirroring the paper's read-only remapping of its pages.
// The table is mapped BEFORE the heap arena so the arena remains the
// space's only growing segment (as a real constructor runs before any
// application allocation).
func New(space *mem.Space, cfg Config) (*Defender, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	d := &Defender{space: space, cfg: cfg, ops: &policies[cfg.Family], tel: cfg.Telemetry}
	if err := d.initTable(); err != nil {
		return nil, err
	}
	h, err := heapsim.New(space)
	if err != nil {
		return nil, fmt.Errorf("defense: creating heap: %w", err)
	}
	// The owned heap reports into the same scope, giving allocator-level
	// counts alongside the defense-level ones. Callers of
	// NewWithAllocator attach telemetry to their allocator themselves.
	h.SetTelemetry(cfg.Telemetry)
	d.heap = h
	d.under = h
	return d, nil
}

// initTable installs the patch table per the configuration: the shared
// immutable table when provided (no space mapping at all), otherwise a
// private table materialized and sealed read-only in the Defender's
// own space.
func (d *Defender) initTable() error {
	// Any (re)establishment of the table — construction or Reset —
	// starts a new verdict generation, even when the re-established
	// table carries the same patches: staleness is decided by epoch, not
	// by content comparison.
	d.gen++
	if d.cfg.Mode != ModeFull {
		return nil
	}
	if d.cfg.SharedTable != nil {
		d.shared = d.cfg.SharedTable
		return nil
	}
	set := d.cfg.Patches
	if set == nil {
		set = patch.NewSet()
	}
	table, err := newPatchTable(d.space, set)
	if err != nil {
		return err
	}
	d.table = table
	return nil
}

// NewWithAllocator creates a defense layer over a caller-supplied
// underlying allocator — property (5) of the paper: the defense is
// transparent to the allocator beneath it and never touches its
// internals. The allocator must be backed by the same space (for guard
// pages and the patch table).
func NewWithAllocator(space *mem.Space, under heapsim.Allocator, cfg Config) (*Defender, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	d := &Defender{space: space, cfg: cfg, ops: &policies[cfg.Family], under: under, tel: cfg.Telemetry}
	if err := d.initTable(); err != nil {
		return nil, err
	}
	return d, nil
}

// withDefaults resolves the configuration and validates the family
// selection.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Mode == 0 {
		cfg.Mode = ModeFull
	}
	if cfg.QueueQuota == 0 {
		cfg.QueueQuota = DefaultQueueQuota
	}
	if cfg.Family >= numFamilies {
		return cfg, fmt.Errorf("defense: unknown policy family %d", cfg.Family)
	}
	if cfg.Family != FamilyHT && cfg.Mode == ModeInterpose {
		return cfg, fmt.Errorf("defense: interposition-only mode is exclusive to the %v policy (got %v)", FamilyHT, cfg.Family)
	}
	return cfg, nil
}

// PatchTableWritable reports whether the loaded patch table's pages
// are writable; after construction this must be false (the paper's
// read-only remapping).
func (d *Defender) PatchTableWritable() bool {
	return d.table != nil && d.table.writable()
}

// Heap exposes the default underlying allocator for statistics; nil
// when the Defender was built over a custom allocator.
func (d *Defender) Heap() *heapsim.Heap { return d.heap }

// Underlying exposes the allocator beneath the defense.
func (d *Defender) Underlying() heapsim.Allocator { return d.under }

// Stats returns a snapshot of defense statistics.
func (d *Defender) Stats() Stats {
	s := d.stats
	s.QueueBytes = d.queueBytes
	return s
}

// Telemetry returns the attached telemetry scope (nil when disabled).
func (d *Defender) Telemetry() *telemetry.Scope { return d.tel }

// Family returns the defense policy family this Defender runs.
func (d *Defender) Family() Family { return d.cfg.Family }

// PatchHits returns this Defender's per-patch allocation hit counts:
// how many allocations matched each installed {FUN, CCID} key. It is
// populated only while telemetry is attached and returns nil otherwise.
// With a shared sealed table these are still per-Defender counts;
// fleet-wide totals come from SealedTable hit counting.
func (d *Defender) PatchHits() map[patch.Key]uint64 { return d.patchHits }

// noteAccessFault classifies a memory-access error from a defended
// execution: a fault on a ProtNone page is a guard-page hit — the
// defense's overflow containment firing — and is counted and traced
// with the access's calling context. Other faults (wild pointers,
// unmapped addresses) are left to the space's own fault telemetry.
func (d *Defender) noteAccessFault(err error, ccid uint64) {
	if d.tel == nil || err == nil {
		return
	}
	fe, ok := mem.AsFault(err)
	if !ok {
		return
	}
	if p, perr := d.space.ProtAt(fe.Addr); perr == nil && p == mem.ProtNone {
		d.tel.Inc(telemetry.CtrGuardFaults)
		d.tel.Event(telemetry.EvGuardFault, ccid, fe.Addr, fe.Len)
	}
}

// Malloc allocates size bytes under calling context ccid.
func (d *Defender) Malloc(ccid, size uint64) (uint64, error) {
	return d.allocate(heapsim.FnMalloc, ccid, size, 0, false)
}

// Calloc allocates n*size zeroed bytes under ccid.
func (d *Defender) Calloc(ccid, n, size uint64) (uint64, error) {
	if size != 0 && n > (1<<sizeBits)/size {
		return 0, fmt.Errorf("%w: calloc(%d, %d)", heapsim.ErrBadSize, n, size)
	}
	p, err := d.allocate(heapsim.FnCalloc, ccid, n*size, 0, false)
	if err != nil {
		return 0, err
	}
	if d.cfg.Mode == ModeFull {
		// The zero fill may already have happened via a patch; calloc
		// semantics demand it regardless.
		if err := d.space.RawMemset(p, 0, n*size); err != nil {
			return 0, fmt.Errorf("defense: calloc zero fill: %w", err)
		}
	}
	return p, nil
}

// Memalign allocates size bytes aligned to align under ccid.
func (d *Defender) Memalign(ccid, align, size uint64) (uint64, error) {
	if align == 0 || align&(align-1) != 0 {
		return 0, fmt.Errorf("%w: %d", heapsim.ErrBadAlignment, align)
	}
	return d.allocate(heapsim.FnMemalign, ccid, size, align, false)
}

// allocate is the interposition entry point for all allocation APIs:
// the bookkeeping every family shares (statistics, the underlying
// allocator's base cost, the interposition hop, the size ceiling),
// then the selected policy's allocation hook.
func (d *Defender) allocate(fn heapsim.AllocFn, ccid, size, align uint64, isRealloc bool) (uint64, error) {
	d.stats.Allocs++
	// The underlying allocator's own work plus the interposition hop.
	d.cycles += cycUnderlyingAlloc + cycInterpose

	if d.cfg.Mode == ModeInterpose {
		// Forward-only: measure pure interposition cost (HT-only; the
		// other families reject this mode at construction).
		switch fn {
		case heapsim.FnCalloc:
			return d.under.Calloc(1, size)
		case heapsim.FnMemalign, heapsim.FnAlignedAlloc:
			return d.under.Memalign(align, size)
		default:
			return d.under.Malloc(size)
		}
	}

	if size >= 1<<sizeBits {
		return 0, fmt.Errorf("%w: %d", heapsim.ErrBadSize, size)
	}
	return d.ops.allocate(d, fn, ccid, size, align, isRealloc)
}

// htAllocate is the HeapTherapy+ allocation hook: patch-table lookup
// on every allocation, then the S1–S4 structure the patch verdict
// selects.
func htAllocate(d *Defender, fn heapsim.AllocFn, ccid, size, align uint64, isRealloc bool) (uint64, error) {
	// O(1) patch lookup on every allocation.
	lookupFn := fn
	if isRealloc {
		lookupFn = heapsim.FnRealloc
	}
	d.stats.Lookups++
	var (
		types  patch.TypeMask
		probes int
		lerr   error
	)
	if d.shared != nil {
		types, probes = d.shared.Lookup(patch.Key{Fn: lookupFn, CCID: ccid})
	} else {
		types, probes, lerr = d.table.lookup(patch.Key{Fn: lookupFn, CCID: ccid})
	}
	d.cycles += cycLookup * uint64(probes)
	if d.tel != nil {
		d.tel.Observe(telemetry.HistLookupCycles, cycLookup*uint64(probes))
	}
	if lerr != nil {
		// A faulting table read means the defense configuration is gone
		// or tampered with; treating it as "no patch installed" would
		// disable the defense without a trace.
		d.stats.LookupFaults++
		return 0, fmt.Errorf("defense: patch lookup for CCID %#x: %w", ccid, lerr)
	}
	if types != 0 {
		d.stats.PatchedAllocs++
		if d.tel != nil {
			d.tel.Inc(telemetry.CtrPatchHits)
			site := telemetry.PackSite(uint8(lookupFn), ccid)
			d.tel.Event(telemetry.EvPatchHit, ccid, site, size)
			if d.patchHits == nil {
				d.patchHits = make(map[patch.Key]uint64)
			}
			d.patchHits[patch.Key{Fn: lookupFn, CCID: ccid}]++
		}
	}

	d.cycles += cycMetadata
	aligned := align > metaSize
	var p uint64
	var err error
	switch {
	case !aligned && !types.Has(patch.TypeOverflow):
		p, err = d.allocS1(fn, size)
	case !aligned && types.Has(patch.TypeOverflow):
		p, err = d.allocS2(fn, size)
	case aligned && !types.Has(patch.TypeOverflow):
		p, err = d.allocS3(fn, size, align)
	default:
		p, err = d.allocS4(fn, size, align)
	}
	if err != nil {
		return 0, err
	}

	// Record the remaining type bits into the metadata word.
	if err := d.orTypeBits(p, typeFieldBits(types, aligned)); err != nil {
		return 0, err
	}

	if types.Has(patch.TypeUninitRead) {
		d.stats.ZeroFills++
		d.tel.Inc(telemetry.CtrZeroFills)
		d.cycles += size / prog0CycBytesPerCycle
		if err := d.space.RawMemset(p, 0, size); err != nil {
			return 0, fmt.Errorf("defense: zero fill: %w", err)
		}
	}
	return p, nil
}

// typeFieldBits converts a patch mask (+ alignment) to metadata bits.
func typeFieldBits(types patch.TypeMask, aligned bool) uint64 {
	var b uint64
	if types.Has(patch.TypeOverflow) {
		b |= bitOverflow
	}
	if types.Has(patch.TypeUseAfterFree) {
		b |= bitUAF
	}
	if types.Has(patch.TypeUninitRead) {
		b |= bitUninit
	}
	if aligned {
		b |= bitAligned
	}
	return b
}

// orTypeBits merges type bits into an existing metadata word.
func (d *Defender) orTypeBits(user uint64, bits uint64) error {
	meta, err := d.space.RawLoad64(user - metaSize)
	if err != nil {
		return fmt.Errorf("defense: metadata read: %w", err)
	}
	return d.space.RawStore64(user-metaSize, meta|bits)
}

// allocS1 builds Structure 1: [meta][user], size in the metadata word.
func (d *Defender) allocS1(fn heapsim.AllocFn, size uint64) (uint64, error) {
	base, err := d.underlying(fn, metaSize+size, 0)
	if err != nil {
		return 0, err
	}
	user := base + metaSize
	meta := size << typeBits
	if err := d.space.RawStore64(base, meta); err != nil {
		return 0, fmt.Errorf("defense: metadata store: %w", err)
	}
	return user, nil
}

// allocS2 builds Structure 2: [meta][user][pad][guard]; the guard-page
// frame lives in the metadata word and the user size in the guard
// page's first word.
func (d *Defender) allocS2(fn heapsim.AllocFn, size uint64) (uint64, error) {
	need := metaSize + size + (mem.PageSize - 1) + mem.PageSize
	base, err := d.underlying(fn, need, 0)
	if err != nil {
		return 0, err
	}
	user := base + metaSize
	guard := mem.PageAlignUp(user + size)
	if err := d.installGuard(user, guard, size); err != nil {
		return 0, err
	}
	return user, nil
}

// allocS3 builds Structure 3: [pad][meta][user aligned]; lg(align) and
// the size live in the metadata word.
func (d *Defender) allocS3(fn heapsim.AllocFn, size, align uint64) (uint64, error) {
	base, err := d.underlying(fn, align+size, align)
	if err != nil {
		return 0, err
	}
	user := base + align
	meta := size<<typeBits | lg(align)<<(typeBits+sizeBits)
	if err := d.space.RawStore64(user-metaSize, meta); err != nil {
		return 0, fmt.Errorf("defense: metadata store: %w", err)
	}
	return user, nil
}

// allocS4 builds Structure 4: [pad][meta][user aligned][pad][guard].
func (d *Defender) allocS4(fn heapsim.AllocFn, size, align uint64) (uint64, error) {
	need := align + size + (mem.PageSize - 1) + mem.PageSize
	base, err := d.underlying(fn, need, align)
	if err != nil {
		return 0, err
	}
	user := base + align
	guard := mem.PageAlignUp(user + size)
	if err := d.installGuard(user, guard, size); err != nil {
		return 0, err
	}
	if err := d.orTypeBits(user, lg(align)<<(typeBits+guardBits)); err != nil {
		return 0, err
	}
	return user, nil
}

// installGuard writes the guard-style metadata word, stashes the user
// size in the guard page's first word, and protects the page.
func (d *Defender) installGuard(user, guard, size uint64) error {
	meta := (guard >> mem.PageShift) << typeBits
	if err := d.space.RawStore64(user-metaSize, meta); err != nil {
		return fmt.Errorf("defense: metadata store: %w", err)
	}
	if err := d.space.RawStore64(guard, size); err != nil {
		return fmt.Errorf("defense: guard size store: %w", err)
	}
	if err := d.space.Mprotect(guard, mem.PageSize, mem.ProtNone); err != nil {
		return fmt.Errorf("defense: protecting guard page: %w", err)
	}
	d.stats.GuardPages++
	d.tel.Inc(telemetry.CtrGuardPages)
	d.cycles += cycMprotect
	return nil
}

// underlying forwards the enlarged request to the real allocator.
func (d *Defender) underlying(fn heapsim.AllocFn, size, align uint64) (uint64, error) {
	if align > 0 {
		return d.under.Memalign(align, size)
	}
	switch fn {
	case heapsim.FnCalloc:
		// The defense zeroes the user region itself when required;
		// requesting raw memory here avoids double zeroing of the
		// metadata slack.
		return d.under.Malloc(size)
	default:
		return d.under.Malloc(size)
	}
}

// meta describes a decoded metadata word.
type metaInfo struct {
	types   uint64 // 4-bit type field
	size    uint64
	base    uint64 // underlying pointer (pi in Figure 7)
	guard   uint64 // guard page address, 0 if none
	aligned bool
}

// decodeMeta reconstructs buffer facts from the metadata word,
// unprotecting the guard page if one exists (step 1 of Figure 7).
func (d *Defender) decodeMeta(user uint64) (metaInfo, error) {
	word, err := d.space.RawLoad64(user - metaSize)
	if err != nil {
		return metaInfo{}, fmt.Errorf("defense: metadata read at %#x: %w", user-metaSize, err)
	}
	if word&freedSentinel == freedSentinel && word>>typeBits != 0 {
		return metaInfo{}, fmt.Errorf("%w: %#x", ErrDoubleFree, user)
	}
	mi := metaInfo{types: word & typeMask}
	mi.aligned = mi.types&bitAligned != 0

	if mi.types&bitOverflow != 0 {
		frame := (word >> typeBits) & ((1 << guardBits) - 1)
		mi.guard = frame << mem.PageShift
		if err := d.space.Mprotect(mi.guard, mem.PageSize, mem.ProtRW); err != nil {
			return metaInfo{}, fmt.Errorf("defense: unprotecting guard: %w", err)
		}
		d.cycles += cycMprotect
		sz, err := d.space.RawLoad64(mi.guard)
		if err != nil {
			return metaInfo{}, fmt.Errorf("defense: guard size read: %w", err)
		}
		mi.size = sz
		if mi.aligned {
			la := (word >> (typeBits + guardBits)) & ((1 << alignBits) - 1)
			mi.base = user - (uint64(1) << la)
		} else {
			mi.base = user - metaSize
		}
		return mi, nil
	}

	mi.size = (word >> typeBits) & ((1 << sizeBits) - 1)
	if mi.aligned {
		la := (word >> (typeBits + sizeBits)) & ((1 << alignBits) - 1)
		mi.base = user - (uint64(1) << la)
	} else {
		mi.base = user - metaSize
	}
	return mi, nil
}

// Free releases a buffer following the Figure 7 protocol.
func (d *Defender) Free(user uint64) error { return d.FreeCtx(user, 0) }

// FreeCtx is Free carrying the calling context of the free() call, so
// telemetry can attribute double-free rejections and quota evictions to
// the context that triggered them. The defense logic itself never uses
// the CCID — patches are keyed by allocation context, not free context.
func (d *Defender) FreeCtx(user, ccid uint64) error {
	if user == 0 {
		return nil
	}
	d.stats.Frees++
	d.cycles += cycUnderlyingFree + cycInterpose
	if d.cfg.Mode == ModeInterpose {
		return d.under.Free(user)
	}
	return d.ops.free(d, user, ccid)
}

// htFree is the HeapTherapy+ free hook, following the Figure 7
// protocol: decode the metadata word (unprotecting any guard), then
// defer UAF-patched blocks through the quarantine or forward to the
// real free.
func htFree(d *Defender, user, ccid uint64) error {
	d.cycles += cycMetadata // decode the metadata word, recover pi
	mi, err := d.decodeMeta(user)
	if err != nil {
		if d.tel != nil && errors.Is(err, ErrDoubleFree) {
			d.tel.Inc(telemetry.CtrDoubleFrees)
			d.tel.Event(telemetry.EvDoubleFree, ccid, user, 0)
		}
		return err
	}
	if mi.types&bitUAF != 0 {
		return d.deferFree(mi, user, ccid)
	}
	return d.under.Free(mi.base)
}

// deferFree parks a decoded block in the FIFO quarantine: the metadata
// word is marked so a double free is caught while the block is held,
// and the quota evicts the oldest entries back to the real allocator.
// Shared by HT (UAF-patched buffers only) and MESH (every free).
func (d *Defender) deferFree(mi metaInfo, user, ccid uint64) error {
	if err := d.space.RawStore64(user-metaSize, freedSentinel|mi.types); err != nil {
		return fmt.Errorf("defense: marking deferred block: %w", err)
	}
	d.queue = append(d.queue, queued{base: mi.base, user: user, size: mi.size})
	d.queueBytes += mi.size
	d.stats.DeferredFrees++
	d.tel.Inc(telemetry.CtrDeferredFrees)
	d.cycles += cycQueue
	for d.queueBytes > d.cfg.QueueQuota && len(d.queue) > 0 {
		old := d.queue[0]
		d.queue = d.queue[1:]
		d.queueBytes -= old.size
		d.stats.QueueEvictions++
		if d.tel != nil {
			// The quota forced this block back into circulation: the
			// quarantine refused to keep holding it.
			d.tel.Inc(telemetry.CtrQuarantineRefusals)
			d.tel.Event(telemetry.EvQuarantineRefusal, ccid, old.user, old.size)
		}
		if err := d.under.Free(old.base); err != nil {
			return fmt.Errorf("defense: releasing deferred block: %w", err)
		}
	}
	return nil
}

// Realloc resizes a defended buffer. Per Section V, the buffer's CCID
// is updated to the realloc call's context, so the patch lookup uses
// {realloc, ccid}; metadata bookkeeping forces the allocate-copy-free
// path, as the paper's self-contained metadata design does.
func (d *Defender) Realloc(ccid, user, size uint64) (uint64, error) {
	if user == 0 {
		return d.allocate(heapsim.FnRealloc, ccid, size, 0, true)
	}
	if d.cfg.Mode == ModeInterpose {
		d.stats.Allocs++
		d.cycles += cycUnderlyingAlloc + cycInterpose
		return d.under.Realloc(user, size)
	}
	return d.ops.realloc(d, ccid, user, size)
}

// htRealloc is the HeapTherapy+ realloc hook: metadata bookkeeping
// forces the allocate-copy-free path, restoring guard protection
// before the old buffer is freed.
func htRealloc(d *Defender, ccid, user, size uint64) (uint64, error) {
	mi, err := d.decodeMeta(user)
	if err != nil {
		return 0, err
	}
	newUser, err := d.allocate(heapsim.FnMalloc, ccid, size, 0, true)
	if err != nil {
		return 0, err
	}
	n := mi.size
	if size < n {
		n = size
	}
	data, err := d.space.RawRead(user, n)
	if err != nil {
		return 0, fmt.Errorf("defense: realloc copy: %w", err)
	}
	if err := d.space.RawWrite(newUser, data); err != nil {
		return 0, fmt.Errorf("defense: realloc copy: %w", err)
	}
	// Re-protect path: decodeMeta unprotected the guard; Free will
	// decode again, so restore the sentinel-free word first.
	if mi.guard != 0 {
		if err := d.space.Mprotect(mi.guard, mem.PageSize, mem.ProtNone); err != nil {
			return 0, fmt.Errorf("defense: realloc reprotect: %w", err)
		}
	}
	if err := d.Free(user); err != nil {
		return 0, fmt.Errorf("defense: realloc free: %w", err)
	}
	d.stats.Frees-- // internal bookkeeping, not a user free
	return newUser, nil
}

// UsableSize reports the user size of a defended buffer.
func (d *Defender) UsableSize(user uint64) (uint64, error) {
	if d.cfg.Mode == ModeInterpose {
		return d.under.UsableSize(user)
	}
	return d.ops.usable(d, user)
}

// htUsableSize decodes the metadata word (re-protecting any guard the
// decode unprotected). Also serves MESH, whose buffers use the same
// guard-free metadata layout.
func htUsableSize(d *Defender, user uint64) (uint64, error) {
	mi, err := d.decodeMeta(user)
	if err != nil {
		return 0, err
	}
	if mi.guard != 0 {
		// decodeMeta unprotected the guard to read the size; restore.
		if err := d.space.Mprotect(mi.guard, mem.PageSize, mem.ProtNone); err != nil {
			return 0, fmt.Errorf("defense: reprotecting guard: %w", err)
		}
	}
	return mi.size, nil
}

// Cycles returns accumulated virtual-cycle cost of defense work.
func (d *Defender) Cycles() uint64 { return d.cycles }

// TableGeneration returns the patch-table epoch: a counter that changes
// whenever the table is (re)established — at construction and on every
// Reset. A cached per-{FUN, CCID} verdict is valid exactly as long as
// the generation it was probed under; consumers (the bytecode VM's
// per-site inline caches) re-probe when the epoch moves. The count is
// bumped even when a Reset re-materializes identical patches: epoch
// comparison is O(1) and never wrong, content comparison is neither.
func (d *Defender) TableGeneration() uint64 { return d.gen }

// SharedTable returns the immutable cross-worker table this Defender
// probes, nil when it materialized a private in-space table instead.
func (d *Defender) SharedTable() *SealedTable { return d.shared }

// SwapSharedTable re-points a shared-table Defender at a new sealed
// table — the code-less patch rollout primitive. The old table is
// untouched (other workers may still be probing it) and the swap bumps
// the table generation, so every generation-keyed verdict cache (the
// VM's and the compiled engine's per-site inline caches) revalidates
// against the new table on its next probe.
//
// Contract: only the owning goroutine may call this (the swap mutates
// unsynchronized Defender state, like every other mutation), and only
// on a Defender constructed with Config.SharedTable — a private
// in-space table cannot be swapped because its pages live inside the
// worker's own space. The configuration is updated too, so a later
// Reset re-establishes the NEW table, not the one the Defender was
// built with.
func (d *Defender) SwapSharedTable(t *SealedTable) error {
	if d.cfg.SharedTable == nil {
		return fmt.Errorf("defense: SwapSharedTable on a Defender without a shared table")
	}
	if t == nil {
		return fmt.Errorf("defense: SwapSharedTable with nil table")
	}
	d.cfg.SharedTable = t
	d.shared = t
	d.gen++
	return nil
}

// ProbePatched reports whether an allocation through fn at ccid would
// hit an installed patch. Unlike the lookup on the allocation path it
// is completely side-effect-free — no statistics, no cycle charges — so
// profiling layers can classify sites without perturbing the defended
// execution they observe. Interposition-only mode has no table and
// probes false.
func (d *Defender) ProbePatched(fn heapsim.AllocFn, ccid uint64) bool {
	if d.cfg.Mode != ModeFull || d.cfg.Family != FamilyHT {
		// Only the HT policy acts on patches; the other families keep
		// the table seams (swap, generation) for rollout plumbing but
		// never consult the contents.
		return false
	}
	key := patch.Key{Fn: fn, CCID: ccid}
	if d.shared != nil {
		return d.shared.Probe(key) != 0
	}
	if d.table == nil {
		return false
	}
	types, _, err := d.table.lookup(key)
	return err == nil && types != 0
}

// Reset returns the Defender to its freshly constructed state over a
// space that has itself just been Reset: statistics, cycle accounting,
// and the deferred-free queue are cleared (reusing the queue's
// capacity), the patch table is re-established, and the default heap
// (if this Defender owns one) is re-initialized. With a shared sealed
// table the table step is free — nothing is re-materialized — which is
// what makes a fleet worker's recycle O(touched state) instead of
// O(configuration). A Defender built over a caller-supplied allocator
// (NewWithAllocator) does not reset that allocator; the caller must,
// after this returns (construction order: table pages map below the
// allocator's memory, and Reset preserves it).
func (d *Defender) Reset() error {
	d.queue = d.queue[:0]
	d.queueBytes = 0
	d.stats = Stats{}
	d.cycles = 0
	clear(d.patchHits)
	if d.ops.reset != nil {
		d.ops.reset(d)
	}
	if err := d.initTable(); err != nil {
		return fmt.Errorf("defense: reset: %w", err)
	}
	if d.heap != nil {
		if err := d.heap.Reset(); err != nil {
			return fmt.Errorf("defense: reset: %w", err)
		}
	}
	return nil
}

// ResetPatches is Reset with a patch-set swap: the Defender re-arms
// over a different configuration, as the campaign's pooled workbench
// does per seed (each generated case carries its own analysis-derived
// patches). Because Reset re-materializes the private table from
// d.cfg.Patches in the same construction order a fresh Defender uses
// (table pages below the arena), a recycled Defender with swapped
// patches is bit-identical to one built fresh with them. Only valid on
// a private table: a shared sealed table is immutable by contract and
// owned by the fleet that sealed it.
func (d *Defender) ResetPatches(set *patch.Set) error {
	if d.cfg.SharedTable != nil {
		return fmt.Errorf("defense: ResetPatches on a shared sealed table")
	}
	d.cfg.Patches = set
	return d.Reset()
}

// lg returns floor(log2(x)) for x > 0.
func lg(x uint64) uint64 {
	var n uint64
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// Virtual-cycle costs of defense mechanisms. cycUnderlyingAlloc and
// cycUnderlyingFree mirror prog.CycAlloc/CycFree: the real allocator's
// work happens beneath the interposition layer either way, so defended
// and native executions charge the same base and differ only by the
// defense's additions — exactly how the paper decomposes Figure 8.
const (
	cycUnderlyingAlloc    = 60
	cycUnderlyingFree     = 40
	cycInterpose          = 2
	cycLookup             = 3
	cycMetadata           = 3
	cycMprotect           = 300
	cycQueue              = 8
	prog0CycBytesPerCycle = 16 // zero-fill bandwidth, matches prog.CycBytesPerCycle
)
