package defense

import (
	"errors"
	"testing"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/telemetry"
)

// telDefender builds a defender with a one-shard collector attached and
// returns both.
func telDefender(t *testing.T, cfg Config) (*Defender, *telemetry.Collector) {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New(telemetry.Config{Shards: 1})
	cfg.Telemetry = col.Scope()
	d, err := New(space, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, col
}

// TestTelemetryPatchHit pins the allocation-path instrumentation: a
// patched allocation must record the counter, the per-patch tally, and
// an event whose packed site carries the {FUN, CCID} patch key.
func TestTelemetryPatchHit(t *testing.T) {
	const ccid = 0x42
	d, col := telDefender(t, Config{Patches: patches(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeOverflow},
	)})
	if _, err := d.Malloc(ccid, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Malloc(0x99, 64); err != nil { // unpatched
		t.Fatal(err)
	}

	snap := col.Snapshot()
	if got := snap.Counter(telemetry.CtrPatchHits); got != 1 {
		t.Errorf("patch_hits = %d, want 1", got)
	}
	if got := snap.Counter(telemetry.CtrGuardPages); got != 1 {
		t.Errorf("guard_pages = %d, want 1", got)
	}
	if got := snap.Counter(telemetry.CtrAllocs); got != 2 {
		t.Errorf("allocs = %d, want 2 (internal heap inherits the scope)", got)
	}
	hits := snap.EventsOfKind(telemetry.EvPatchHit)
	if len(hits) != 1 {
		t.Fatalf("patch-hit events = %d, want 1", len(hits))
	}
	wantSite := telemetry.PackSite(uint8(heapsim.FnMalloc), ccid)
	if hits[0].Site != wantSite || hits[0].CCID != ccid || hits[0].Arg != 64 {
		t.Errorf("event = %+v, want site %#x ccid %#x size 64", hits[0], wantSite, ccid)
	}

	// Per-defender tally mirrors the counter, keyed by patch key.
	ph := d.PatchHits()
	if len(ph) != 1 || ph[patch.Key{Fn: heapsim.FnMalloc, CCID: ccid}] != 1 {
		t.Errorf("PatchHits() = %v", ph)
	}
	// Lookup cost lands in the histogram for every allocation.
	found := false
	for _, h := range snap.Histograms {
		if h.Name == telemetry.HistLookupCycles.String() && h.Count == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("lookup_cycles histogram missing 2 observations: %+v", snap.Histograms)
	}
}

// TestTelemetryZeroFillAndDeferredFree covers the uninit-read and UAF
// treatment counters plus the double-free rejection event.
func TestTelemetryZeroFillAndDeferredFree(t *testing.T) {
	const uninitCCID, uafCCID = 0x7, 0x8
	d, col := telDefender(t, Config{Patches: patches(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: uninitCCID, Types: patch.TypeUninitRead},
		patch.Patch{Fn: heapsim.FnMalloc, CCID: uafCCID, Types: patch.TypeUseAfterFree},
	)})
	if _, err := d.Malloc(uninitCCID, 32); err != nil {
		t.Fatal(err)
	}
	p, err := d.Malloc(uafCCID, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.FreeCtx(p, 0xF1); err != nil {
		t.Fatal(err)
	}
	// Second free of the deferred block: rejected, attributed to the
	// freeing context.
	if err := d.FreeCtx(p, 0xF2); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free err = %v", err)
	}

	snap := col.Snapshot()
	if got := snap.Counter(telemetry.CtrZeroFills); got != 1 {
		t.Errorf("zero_fills = %d, want 1", got)
	}
	if got := snap.Counter(telemetry.CtrDeferredFrees); got != 1 {
		t.Errorf("deferred_frees = %d, want 1", got)
	}
	if got := snap.Counter(telemetry.CtrDoubleFrees); got != 1 {
		t.Errorf("double_frees = %d, want 1", got)
	}
	dfs := snap.EventsOfKind(telemetry.EvDoubleFree)
	if len(dfs) != 1 || dfs[0].CCID != 0xF2 || dfs[0].Site != p {
		t.Errorf("double-free events = %+v, want ccid 0xF2 addr %#x", dfs, p)
	}
}

// TestTelemetryQuarantineRefusal forces the deferred-free queue over
// quota and checks the eviction is traced as a quarantine refusal.
func TestTelemetryQuarantineRefusal(t *testing.T) {
	const ccid = 0x9
	d, col := telDefender(t, Config{
		QueueQuota: 64,
		Patches: patches(
			patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeUseAfterFree},
		),
	})
	var ptrs []uint64
	for i := 0; i < 3; i++ {
		p, err := d.Malloc(ccid, 48)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := d.FreeCtx(p, 0xAB); err != nil {
			t.Fatal(err)
		}
	}
	snap := col.Snapshot()
	if got := snap.Counter(telemetry.CtrQuarantineRefusals); got == 0 {
		t.Fatal("no quarantine refusals despite quota pressure")
	}
	evs := snap.EventsOfKind(telemetry.EvQuarantineRefusal)
	if len(evs) == 0 {
		t.Fatal("no quarantine-refusal events retained")
	}
	if evs[0].Site != ptrs[0] || evs[0].Arg != 48 || evs[0].CCID != 0xAB {
		t.Errorf("refusal event = %+v, want oldest block %#x size 48 ccid 0xAB", evs[0], ptrs[0])
	}
}

// TestBackendGuardFaultTelemetry drives the interpreter-facing Backend
// API end to end: a guarded overflow access through every access path
// must classify as a guard fault (the page is ProtNone), while a wild
// unmapped access must not.
func TestBackendGuardFaultTelemetry(t *testing.T) {
	const ccid = 0x42
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New(telemetry.Config{Shards: 1})
	b, err := NewBackend(space, Config{
		Telemetry: col.Scope(),
		Patches: patches(
			patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeOverflow},
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Alloc(heapsim.FnMalloc, ccid, 1, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	guard := mem.PageAlignUp(p + 64)
	span := guard - p + 1

	if _, err := b.Load(p, span, 0xA1); !mem.IsFault(err) {
		t.Fatalf("guarded overread err = %v", err)
	}
	var v prog.Value
	if err := b.LoadInto(&v, p, span, 0xA2); !mem.IsFault(err) {
		t.Fatalf("guarded LoadInto err = %v", err)
	}
	if err := b.Store(p, prog.Value{Bytes: make([]byte, span)}, 0xA3); !mem.IsFault(err) {
		t.Fatalf("guarded overwrite err = %v", err)
	}
	if err := b.Memset(p, 0xFF, span, 0xA4); !mem.IsFault(err) {
		t.Fatalf("guarded memset err = %v", err)
	}
	if err := b.Memcpy(guard, p, 8, 0xA5); !mem.IsFault(err) {
		t.Fatalf("guarded memcpy err = %v", err)
	}
	// In-bounds traffic is clean and uncounted.
	if err := b.Store(p, prog.Value{Bytes: make([]byte, 64)}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Load(p, 64, 0); err != nil {
		t.Fatal(err)
	}
	// A wild fault far outside any mapping is not a guard fault.
	if _, err := b.Load(1<<40, 8, 0xA6); !mem.IsFault(err) {
		t.Fatal("wild load did not fault")
	}

	snap := col.Snapshot()
	if got := snap.Counter(telemetry.CtrGuardFaults); got != 5 {
		t.Errorf("guard_faults = %d, want 5", got)
	}
	evs := snap.EventsOfKind(telemetry.EvGuardFault)
	if len(evs) != 5 {
		t.Fatalf("guard-fault events = %d, want 5", len(evs))
	}
	wantCCIDs := []uint64{0xA1, 0xA2, 0xA3, 0xA4, 0xA5}
	for i, e := range evs {
		if e.CCID != wantCCIDs[i] {
			t.Errorf("event %d ccid = %#x, want %#x", i, e.CCID, wantCCIDs[i])
		}
		if e.Site < guard || e.Site >= guard+mem.PageSize {
			t.Errorf("event %d fault addr %#x outside guard page [%#x,%#x)", i, e.Site, guard, guard+mem.PageSize)
		}
	}
}

// TestBackendAPISurface covers the remaining HeapBackend adapter
// methods over a caller-supplied allocator.
func TestBackendAPISurface(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	under, err := heapsim.New(space)
	if err != nil {
		t.Fatal(err)
	}
	const ccid = 0x21
	b, err := NewBackendWithAllocator(space, under, Config{Patches: patches(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeUseAfterFree},
	)})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Defender().Underlying(); got != under {
		t.Error("Underlying() does not expose the supplied allocator")
	}
	if b.Defender().Heap() != nil {
		t.Error("Heap() non-nil for a custom allocator")
	}

	// Every allocation entry point of the adapter.
	for _, fn := range []heapsim.AllocFn{heapsim.FnMalloc, heapsim.FnCalloc, heapsim.FnMemalign, heapsim.FnAlignedAlloc} {
		p, err := b.Alloc(fn, 0x5, 2, 32, 64)
		if err != nil {
			t.Fatalf("Alloc(%v): %v", fn, err)
		}
		if err := b.Free(p, 0); err != nil {
			t.Fatalf("Free(%v): %v", fn, err)
		}
	}
	if _, err := b.Alloc(heapsim.FnRealloc, 0, 1, 8, 0); err == nil {
		t.Error("Alloc with realloc fn accepted")
	}

	// Realloc grows and preserves.
	p, err := b.Alloc(heapsim.FnMalloc, 0x5, 1, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Store(p, prog.Value{Bytes: []byte("abcdefgh")}, 0); err != nil {
		t.Fatal(err)
	}
	np, err := b.Realloc(0x5, p, 64)
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.Load(np, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Bytes) != "abcdefgh" {
		t.Errorf("realloc lost data: %q", v.Bytes)
	}

	// Use-point hooks are no-ops online.
	b.CheckUse(prog.Value{}, prog.UseKind(0), 0)
	if b.ObservesUse() {
		t.Error("defended backend observes use points")
	}

	// Patch probing is side-effect-free and epoch-stable.
	gen := b.PatchTableGeneration()
	if !b.ProbePatched(heapsim.FnMalloc, ccid) {
		t.Error("ProbePatched misses installed patch")
	}
	if b.ProbePatched(heapsim.FnMalloc, 0x5) {
		t.Error("ProbePatched hits uninstalled key")
	}
	before := b.Defender().Stats()
	if b.PatchTableGeneration() != gen {
		t.Error("probe moved the table generation")
	}
	if after := b.Defender().Stats(); after.Lookups != before.Lookups {
		t.Error("ProbePatched charged a lookup")
	}

	if b.Cycles() == 0 {
		t.Error("no cycles accounted")
	}
	space.Reset()
	if err := b.Reset(); err != nil {
		t.Fatal(err)
	}
	if b.PatchTableGeneration() == gen {
		t.Error("Reset did not advance the table generation")
	}
}

// TestDefenderTelemetryAccessors pins the disabled defaults: no scope,
// no per-patch tally.
func TestDefenderTelemetryAccessors(t *testing.T) {
	d := newDefender(t, Config{Patches: patches(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: 0x1, Types: patch.TypeOverflow},
	)})
	if d.Telemetry() != nil {
		t.Error("Telemetry() non-nil by default")
	}
	if _, err := d.Malloc(0x1, 16); err != nil {
		t.Fatal(err)
	}
	if d.PatchHits() != nil {
		t.Error("PatchHits() tallied without telemetry")
	}
}

// TestSealedTableHitCounts exercises the shared table's tally plane.
func TestSealedTableHitCounts(t *testing.T) {
	set := patches(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: 0x11, Types: patch.TypeOverflow},
		patch.Patch{Fn: heapsim.FnCalloc, CCID: 0x22, Types: patch.TypeUseAfterFree},
	)
	st := SealTable(set)
	if st.Entries() != 2 {
		t.Fatalf("Entries = %d, want 2", st.Entries())
	}
	// Lookups before enabling leave no tally.
	if types, _ := st.Lookup(patch.Key{Fn: heapsim.FnMalloc, CCID: 0x11}); types == 0 {
		t.Fatal("sealed lookup missed installed key")
	}
	if st.HitCounts() != nil {
		t.Fatal("HitCounts non-nil before enabling")
	}
	st.EnableHitCounts()
	st.EnableHitCounts() // idempotent
	for i := 0; i < 3; i++ {
		st.Lookup(patch.Key{Fn: heapsim.FnMalloc, CCID: 0x11})
	}
	st.Lookup(patch.Key{Fn: heapsim.FnCalloc, CCID: 0x22})
	st.Lookup(patch.Key{Fn: heapsim.FnMalloc, CCID: 0x77}) // miss: untallied
	hc := st.HitCounts()
	if hc[patch.Key{Fn: heapsim.FnMalloc, CCID: 0x11}] != 3 {
		t.Errorf("hit counts = %v, want 3 for malloc@0x11", hc)
	}
	if hc[patch.Key{Fn: heapsim.FnCalloc, CCID: 0x22}] != 1 {
		t.Errorf("hit counts = %v, want 1 for calloc@0x22", hc)
	}
	if len(hc) != 2 {
		t.Errorf("hit counts carry %d keys, want 2: %v", len(hc), hc)
	}
}

// TestDefendedHotPathZeroAlloc pins the telemetry overhead contract on
// the defense layer: with no collector attached, the malloc/free cycle
// and the defended load path perform zero Go allocations per operation
// (the nil-scope checks must not box, escape, or allocate).
func TestDefendedHotPathZeroAlloc(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(space, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		p, err := b.Alloc(heapsim.FnMalloc, 0x3, 1, 64, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Free(p, 0x3); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("defended malloc/free with telemetry disabled: %.1f allocs/op, want 0", avg)
	}

	p, err := b.Alloc(heapsim.FnMalloc, 0x3, 1, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	var v prog.Value
	if avg := testing.AllocsPerRun(200, func() {
		if err := b.LoadInto(&v, p, 64, 0x3); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("defended LoadInto with telemetry disabled: %.1f allocs/op, want 0", avg)
	}
}
