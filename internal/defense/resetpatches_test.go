package defense

import (
	"testing"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
)

// TestResetPatchesMatchesFresh pins the pooled defended cell's
// recycling contract: a defender Reset under a NEW patch set must be
// indistinguishable from a fresh defender built with that set — same
// patched-allocation decisions, same addresses, same stats — because
// ResetPatches replays the construction order (table mapped first,
// then the heap arena) inside the rewound space.
func TestResetPatchesMatchesFresh(t *testing.T) {
	setA := patches(patch.Patch{Fn: heapsim.FnMalloc, CCID: 0x42, Types: patch.TypeOverflow})
	setB := patches(patch.Patch{Fn: heapsim.FnMalloc, CCID: 0x99, Types: patch.TypeUninitRead})

	workload := func(d *Defender) ([2]uint64, Stats) {
		a, err := d.Malloc(0x42, 64)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Malloc(0x99, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Free(a); err != nil {
			t.Fatal(err)
		}
		if err := d.Free(b); err != nil {
			t.Fatal(err)
		}
		return [2]uint64{a, b}, d.Stats()
	}

	freshB := newDefender(t, Config{Patches: setB})
	wantAddrs, wantStats := workload(freshB)

	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(space, Config{Patches: setA})
	if err != nil {
		t.Fatal(err)
	}
	if _, st := workload(d); st.PatchedAllocs != 1 {
		t.Fatalf("set A workload: %+v", st)
	}
	genA := d.TableGeneration()

	space.Reset()
	if err := d.ResetPatches(setB); err != nil {
		t.Fatal(err)
	}
	if d.TableGeneration() <= genA {
		t.Errorf("table generation did not advance: %d -> %d", genA, d.TableGeneration())
	}
	if d.ProbePatched(heapsim.FnMalloc, 0x42) {
		t.Error("old set's patch survives ResetPatches")
	}
	if !d.ProbePatched(heapsim.FnMalloc, 0x99) {
		t.Error("new set's patch not loaded")
	}
	gotAddrs, gotStats := workload(d)
	if gotAddrs != wantAddrs {
		t.Errorf("addresses diverge from fresh: got %#x want %#x", gotAddrs, wantAddrs)
	}
	if gotStats != wantStats {
		t.Errorf("stats diverge from fresh:\n got:  %+v\n want: %+v", gotStats, wantStats)
	}
}

// TestResetPatchesSharedTableRefuses: a sealed shared table is
// immutable by contract; swapping patch sets under it must be an
// error, not a silent divergence between tenants.
func TestResetPatchesSharedTableRefuses(t *testing.T) {
	set := patches(patch.Patch{Fn: heapsim.FnMalloc, CCID: 0x1, Types: patch.TypeOverflow})
	d := newDefender(t, Config{SharedTable: SealTable(set)})
	if err := d.ResetPatches(patches()); err == nil {
		t.Fatal("ResetPatches on a shared sealed table succeeded")
	}
}
