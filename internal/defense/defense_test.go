package defense

import (
	"errors"
	"testing"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
)

func newDefender(t *testing.T, cfg Config) *Defender {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(space, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func patches(ps ...patch.Patch) *patch.Set { return patch.NewSet(ps...) }

func TestUnpatchedAllocationWorks(t *testing.T) {
	d := newDefender(t, Config{})
	p, err := d.Malloc(0x1, 100)
	if err != nil {
		t.Fatalf("Malloc: %v", err)
	}
	size, err := d.UsableSize(p)
	if err != nil {
		t.Fatalf("UsableSize: %v", err)
	}
	if size != 100 {
		t.Errorf("UsableSize = %d, want 100 (defense stores exact size)", size)
	}
	if err := d.Free(p); err != nil {
		t.Fatalf("Free: %v", err)
	}
	st := d.Stats()
	if st.Allocs != 1 || st.Frees != 1 || st.Lookups != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.PatchedAllocs != 0 || st.GuardPages != 0 || st.ZeroFills != 0 {
		t.Errorf("unpatched alloc triggered enhancements: %+v", st)
	}
}

func TestGuardPageStopsOverflow(t *testing.T) {
	const ccid = 0x42
	d := newDefender(t, Config{Patches: patches(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeOverflow},
	)})
	p, err := d.Malloc(ccid, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats().GuardPages != 1 {
		t.Fatal("no guard page installed for patched allocation")
	}

	space := d.Heap().Space()
	// Writing within bounds works.
	if err := space.Write(p, make([]byte, 64)); err != nil {
		t.Fatalf("in-bounds write: %v", err)
	}
	// A contiguous overflow reaches the guard page and faults.
	guard := mem.PageAlignUp(p + 64)
	if err := space.Write(p, make([]byte, guard-p+1)); !mem.IsFault(err) {
		t.Errorf("overflow into guard err = %v, want fault", err)
	}
	// Overread faults too.
	if _, err := space.Read(p, guard-p+1); !mem.IsFault(err) {
		t.Errorf("overread into guard err = %v, want fault", err)
	}

	// Freeing unprotects and releases.
	if err := d.Free(p); err != nil {
		t.Fatalf("Free of guarded buffer: %v", err)
	}
	if err := d.Heap().CheckIntegrity(); err != nil {
		t.Fatalf("heap integrity after guarded free: %v", err)
	}
}

func TestUnpatchedContextNoGuard(t *testing.T) {
	d := newDefender(t, Config{Patches: patches(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: 0x42, Types: patch.TypeOverflow},
	)})
	// Different CCID: no enhancement (precise targeting).
	if _, err := d.Malloc(0x43, 64); err != nil {
		t.Fatal(err)
	}
	// Different function, same CCID: no enhancement.
	if _, err := d.Calloc(0x42, 4, 16); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().PatchedAllocs; got != 0 {
		t.Errorf("PatchedAllocs = %d, want 0", got)
	}
}

func TestZeroFillForUninitRead(t *testing.T) {
	const ccid = 0x7
	d := newDefender(t, Config{Patches: patches(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeUninitRead},
	)})
	space := d.Heap().Space()

	// Pollute the heap with a secret, then free it so the next
	// allocation reuses the block.
	s, err := d.Malloc(0x1, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := space.Write(s, []byte("TOP-SECRET-KEY-MATERIAL")); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(s); err != nil {
		t.Fatal(err)
	}

	p, err := d.Malloc(ccid, 128)
	if err != nil {
		t.Fatal(err)
	}
	data, err := space.Read(p, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range data {
		if b != 0 {
			t.Fatalf("byte %d = %#x; zero-fill defense leaked stale data", i, b)
		}
	}
	if d.Stats().ZeroFills != 1 {
		t.Errorf("ZeroFills = %d, want 1", d.Stats().ZeroFills)
	}
}

func TestUAFDeferredReuse(t *testing.T) {
	const ccid = 0x9
	d := newDefender(t, Config{Patches: patches(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeUseAfterFree},
	)})
	p, err := d.Malloc(ccid, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Free(p); err != nil {
		t.Fatal(err)
	}
	if d.Stats().DeferredFrees != 1 {
		t.Fatalf("DeferredFrees = %d, want 1", d.Stats().DeferredFrees)
	}
	// An attacker grooming the heap with same-size allocations must
	// not receive the deferred block.
	for i := 0; i < 16; i++ {
		q, err := d.Malloc(0x1, 256)
		if err != nil {
			t.Fatal(err)
		}
		if q == p {
			t.Fatal("deferred block was reused immediately")
		}
	}
}

func TestUnpatchedFreeReusesNormally(t *testing.T) {
	d := newDefender(t, Config{})
	p, err := d.Malloc(0x1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Free(p); err != nil {
		t.Fatal(err)
	}
	q, err := d.Malloc(0x1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("unpatched allocation did not reuse freed block (%#x vs %#x)", q, p)
	}
}

func TestQueueQuotaEviction(t *testing.T) {
	const ccid = 0x5
	d := newDefender(t, Config{
		QueueQuota: 512,
		Patches: patches(
			patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeUseAfterFree},
		),
	})
	for i := 0; i < 10; i++ {
		p, err := d.Malloc(ccid, 200)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.QueueBytes > 512 {
		t.Errorf("QueueBytes = %d > quota", st.QueueBytes)
	}
	if st.QueueEvictions == 0 {
		t.Error("no evictions despite quota pressure")
	}
	if err := d.Heap().CheckIntegrity(); err != nil {
		t.Fatalf("heap integrity after evictions: %v", err)
	}
}

func TestDoubleFreeOfDeferredBlockDetected(t *testing.T) {
	const ccid = 0x6
	d := newDefender(t, Config{Patches: patches(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeUseAfterFree},
	)})
	p, _ := d.Malloc(ccid, 64)
	if err := d.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(p); !errors.Is(err, ErrDoubleFree) {
		t.Errorf("double free err = %v, want ErrDoubleFree", err)
	}
}

// TestTableIStructures locks in Table I: which buffer structure serves
// each vulnerability-type combination.
func TestTableIStructures(t *testing.T) {
	cases := []struct {
		name      string
		types     patch.TypeMask
		aligned   bool
		wantGuard bool
	}{
		{"none-unaligned", 0, false, false},                                         // S1
		{"uaf", patch.TypeUseAfterFree, false, false},                               // S1
		{"uninit", patch.TypeUninitRead, false, false},                              // S1
		{"uaf+uninit", patch.TypeUseAfterFree | patch.TypeUninitRead, false, false}, // S1
		{"overflow", patch.TypeOverflow, false, true},                               // S2
		{"overflow+uaf", patch.TypeOverflow | patch.TypeUseAfterFree, false, true},  // S2
		{"all", patch.AllTypes, false, true},                                        // S2
		{"none-aligned", 0, true, false},                                            // S3
		{"uaf-aligned", patch.TypeUseAfterFree, true, false},                        // S3
		{"overflow-aligned", patch.TypeOverflow, true, true},                        // S4
		{"all-aligned", patch.AllTypes, true, true},                                 // S4
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			const ccid = 0x77
			fn := heapsim.FnMalloc
			if c.aligned {
				fn = heapsim.FnMemalign
			}
			var ps *patch.Set
			if c.types != 0 {
				ps = patches(patch.Patch{Fn: fn, CCID: ccid, Types: c.types})
			}
			d := newDefender(t, Config{Patches: ps})

			var p uint64
			var err error
			if c.aligned {
				p, err = d.Memalign(ccid, 64, 100)
			} else {
				p, err = d.Malloc(ccid, 100)
			}
			if err != nil {
				t.Fatal(err)
			}
			if c.aligned && p%64 != 0 {
				t.Errorf("aligned allocation at %#x not 64-aligned", p)
			}
			hasGuard := d.Stats().GuardPages > 0
			if hasGuard != c.wantGuard {
				t.Errorf("guard page = %v, want %v", hasGuard, c.wantGuard)
			}
			// Size must round-trip through the metadata regardless of
			// structure.
			size, err := d.UsableSize(p)
			if err != nil {
				t.Fatal(err)
			}
			if size != 100 {
				t.Errorf("UsableSize = %d, want 100", size)
			}
			// And the buffer must free cleanly.
			if err := d.Free(p); err != nil {
				t.Fatalf("Free: %v", err)
			}
			if err := d.Heap().CheckIntegrity(); err != nil {
				t.Fatalf("heap integrity: %v", err)
			}
		})
	}
}

func TestAlignedGuardedOverflowFaults(t *testing.T) {
	const ccid = 0x88
	d := newDefender(t, Config{Patches: patches(
		patch.Patch{Fn: heapsim.FnMemalign, CCID: ccid, Types: patch.TypeOverflow},
	)})
	p, err := d.Memalign(ccid, 256, 300)
	if err != nil {
		t.Fatal(err)
	}
	space := d.Heap().Space()
	guard := mem.PageAlignUp(p + 300)
	if err := space.Write(p, make([]byte, guard-p+8)); !mem.IsFault(err) {
		t.Errorf("aligned overflow err = %v, want fault", err)
	}
	if err := d.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestReallocPreservesDataAndRekeys(t *testing.T) {
	const oldCCID, newCCID = 0x11, 0x22
	d := newDefender(t, Config{Patches: patches(
		// Only the realloc context is patched for zero-fill.
		patch.Patch{Fn: heapsim.FnRealloc, CCID: newCCID, Types: patch.TypeUninitRead},
	)})
	space := d.Heap().Space()

	p, err := d.Malloc(oldCCID, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := space.Write(p, []byte("keepme__")); err != nil {
		t.Fatal(err)
	}
	q, err := d.Realloc(newCCID, p, 128)
	if err != nil {
		t.Fatal(err)
	}
	data, err := space.Read(q, 128)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:8]) != "keepme__" {
		t.Errorf("realloc lost data: %q", data[:8])
	}
	// Patched realloc context: the grown region must be zero.
	for i := 8; i < 128; i++ {
		if data[i] != 0 {
			t.Fatalf("grown byte %d = %#x, want 0 (zero-fill patch)", i, data[i])
		}
	}
	if d.Stats().PatchedAllocs != 1 {
		t.Errorf("PatchedAllocs = %d, want 1 (realloc matched)", d.Stats().PatchedAllocs)
	}
}

func TestReallocGuardedBuffer(t *testing.T) {
	const ccid = 0x33
	d := newDefender(t, Config{Patches: patches(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeOverflow},
	)})
	p, err := d.Malloc(ccid, 64)
	if err != nil {
		t.Fatal(err)
	}
	space := d.Heap().Space()
	if err := space.Write(p, []byte("guarded!")); err != nil {
		t.Fatal(err)
	}
	q, err := d.Realloc(0x99, p, 256)
	if err != nil {
		t.Fatalf("Realloc of guarded buffer: %v", err)
	}
	data, _ := space.Read(q, 8)
	if string(data) != "guarded!" {
		t.Errorf("data after realloc = %q", data)
	}
	if err := d.Heap().CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}

func TestReallocNilAllocates(t *testing.T) {
	d := newDefender(t, Config{})
	p, err := d.Realloc(0x1, 0, 64)
	if err != nil || p == 0 {
		t.Fatalf("Realloc(nil) = %#x, %v", p, err)
	}
}

func TestInterposeModeForwards(t *testing.T) {
	space, _ := mem.NewSpace(mem.Config{})
	d, err := New(space, Config{Mode: ModeInterpose})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Malloc(0x1, 100)
	if err != nil {
		t.Fatal(err)
	}
	// No metadata in interpose mode: usable size comes from the
	// allocator and reflects rounding, not the exact request.
	size, err := d.UsableSize(p)
	if err != nil {
		t.Fatal(err)
	}
	if size < 100 {
		t.Errorf("UsableSize = %d, want >= 100", size)
	}
	if err := d.Free(p); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Lookups != 0 {
		t.Errorf("interpose mode performed %d lookups, want 0", st.Lookups)
	}
}

func TestCallocZeroesInFullMode(t *testing.T) {
	d := newDefender(t, Config{})
	space := d.Heap().Space()
	s, _ := d.Malloc(0x1, 64)
	_ = space.Memset(s, 0xAB, 64)
	_ = d.Free(s)
	p, err := d.Calloc(0x2, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := space.Read(p, 64)
	for i, b := range data {
		if b != 0 {
			t.Fatalf("calloc byte %d = %#x", i, b)
		}
	}
}

// TestCombinedOverflowAndUninit is Heartbleed's case: the same buffer
// is vulnerable to both uninitialized read and overflow (Section VI
// challenge 1), so it must get the zero fill AND the guard page.
func TestCombinedOverflowAndUninit(t *testing.T) {
	const ccid = 0xAB
	d := newDefender(t, Config{Patches: patches(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeOverflow | patch.TypeUninitRead},
	)})
	space := d.Heap().Space()
	// Dirty then free a block to be reused.
	s, _ := d.Malloc(0x1, 4096)
	_ = space.Memset(s, 0x5A, 4096)
	_ = d.Free(s)

	p, err := d.Malloc(ccid, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-filled...
	data, _ := space.Read(p, 1000)
	for i, b := range data {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
	// ...and guarded.
	guard := mem.PageAlignUp(p + 1000)
	if _, err := space.Read(p, guard-p+1); !mem.IsFault(err) {
		t.Error("overread did not fault despite combined patch")
	}
	if err := d.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestStatsSnapshot(t *testing.T) {
	d := newDefender(t, Config{Patches: patches(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: 1, Types: patch.TypeUseAfterFree},
	)})
	p, _ := d.Malloc(1, 64)
	_ = d.Free(p)
	st := d.Stats()
	if st.QueueBytes != 64 {
		t.Errorf("QueueBytes = %d, want 64", st.QueueBytes)
	}
	if st.DeferredFrees != 1 {
		t.Errorf("DeferredFrees = %d", st.DeferredFrees)
	}
}

func TestModeString(t *testing.T) {
	if ModeInterpose.String() != "interpose" || ModeFull.String() != "full" {
		t.Error("Mode.String mismatch")
	}
}

// TestReallocOfUAFBufferDefersOldBlock: realloc of a UAF-patched
// buffer must defer the OLD block through the queue (its lifetime
// protection survives the resize).
func TestReallocOfUAFBufferDefersOldBlock(t *testing.T) {
	const ccid = 0x66
	d := newDefender(t, Config{Patches: patches(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeUseAfterFree},
	)})
	p, err := d.Malloc(ccid, 64)
	if err != nil {
		t.Fatal(err)
	}
	q, err := d.Realloc(0x99, p, 256)
	if err != nil {
		t.Fatal(err)
	}
	if q == p {
		t.Fatal("defended realloc returned the same user pointer; expected move")
	}
	if d.Stats().DeferredFrees != 1 {
		t.Errorf("DeferredFrees = %d, want 1 (old block deferred)", d.Stats().DeferredFrees)
	}
	// The old block must not be recycled while parked.
	for i := 0; i < 8; i++ {
		r, err := d.Malloc(0x1, 64)
		if err != nil {
			t.Fatal(err)
		}
		if r == p {
			t.Fatal("old block recycled despite deferral")
		}
	}
}
