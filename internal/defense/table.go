package defense

import (
	"encoding/binary"
	"fmt"

	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
)

// patchTable is the online defense's hash table, held in simulated
// memory and remapped read-only once initialization completes —
// exactly as the paper's constructor does ("once the hash table is
// initialized, its memory pages are set as read only", Section VI).
// Keeping the table in the protected address space means a heap attack
// running in the same space cannot silently flip a patch off: any
// write to the table faults.
//
// Layout: open addressing with linear probing. Each slot is two
// 64-bit words: [key][value], where key packs the CCID's low 56 bits
// with the allocation function in the high byte (the {FUN, CCID} pair
// of the paper), and value holds the type mask. Empty slots are
// all-zero; a zero key is represented by a reserved sentinel.
type patchTable struct {
	space *mem.Space
	base  uint64
	slots uint64 // power of two
	pages uint64
}

const (
	slotBytes = 16
	// tableKeySentinel stands in for a genuinely zero key so that the
	// all-zero slot can mean "empty".
	tableKeySentinel = ^uint64(0)
)

// packKey folds {FUN, CCID} into one word: FUN in the top byte, the
// CCID's low 56 bits below. CCIDs are hash-like (PCC) or small
// (additive), so truncation to 56 bits keeps the same collision
// characteristics the paper accepts for PCC.
func packKey(k patch.Key) uint64 {
	key := uint64(k.Fn)<<56 | k.CCID&(1<<56-1)
	if key == 0 {
		key = tableKeySentinel
	}
	return key
}

// newPatchTable materializes the patch set into protected memory.
func newPatchTable(space *mem.Space, set *patch.Set) (*patchTable, error) {
	n := uint64(1)
	for n < uint64(set.Len())*2+1 {
		n <<= 1
	}
	if n < 64 {
		n = 64
	}
	bytes := mem.RoundUpPage(n * slotBytes)
	base, err := space.Sbrk(bytes)
	if err != nil {
		return nil, fmt.Errorf("defense: mapping patch table: %w", err)
	}
	t := &patchTable{space: space, base: base, slots: n, pages: bytes}
	for _, p := range set.Patches() {
		if err := t.insert(packKey(p.Key()), uint64(p.Types)); err != nil {
			return nil, err
		}
	}
	// The constructor's final act: the table becomes read-only.
	if err := space.Mprotect(base, bytes, mem.ProtRead); err != nil {
		return nil, fmt.Errorf("defense: protecting patch table: %w", err)
	}
	return t, nil
}

func (t *patchTable) slotAddr(i uint64) uint64 { return t.base + (i%t.slots)*slotBytes }

func (t *patchTable) insert(key, value uint64) error {
	for i := mix(key); ; i++ {
		addr := t.slotAddr(i)
		cur, err := t.space.RawLoad64(addr)
		if err != nil {
			return fmt.Errorf("defense: patch table insert: %w", err)
		}
		if cur == 0 {
			if err := t.space.RawStore64(addr, key); err != nil {
				return err
			}
			return t.space.RawStore64(addr+8, value)
		}
		if cur == key {
			old, err := t.space.RawLoad64(addr + 8)
			if err != nil {
				return err
			}
			return t.space.RawStore64(addr+8, old|value)
		}
	}
}

// lookup probes for {FUN, CCID} and reports how many slots it touched
// (so cost accounting reflects real probe work). One protection check
// validates the whole sealed read-only table per lookup; the probes
// then fetch both slot words from the borrowed view without further
// per-word validation. A faulting table read — a corrupted or remapped
// table — is surfaced as an error so the defense cannot be silently
// disabled; the caller counts it.
func (t *patchTable) lookup(k patch.Key) (patch.TypeMask, int, error) {
	key := packKey(k)
	view, err := t.view()
	if err != nil {
		return 0, 1, err
	}
	probes := 0
	for i := mix(key); ; i++ {
		probes++
		off := (i % t.slots) * slotBytes
		cur := binary.LittleEndian.Uint64(view[off : off+8])
		if cur == 0 {
			return 0, probes, nil
		}
		if cur == key {
			return patch.TypeMask(binary.LittleEndian.Uint64(view[off+8 : off+16])), probes, nil
		}
	}
}

// view checks readability of the table's pages once (reads are
// permitted on the read-only pages) and returns a borrowed slice over
// the whole table.
func (t *patchTable) view() ([]byte, error) {
	if err := t.space.CheckRead(t.base, t.pages); err != nil {
		return nil, fmt.Errorf("defense: patch table unreadable: %w", err)
	}
	return t.space.RawView(t.base, t.pages)
}

// refLookup is the naive predecessor of lookup: two independently
// checked word loads per probe. Kept for differential testing.
func (t *patchTable) refLookup(k patch.Key) (patch.TypeMask, int, error) {
	key := packKey(k)
	probes := 0
	for i := mix(key); ; i++ {
		probes++
		addr := t.slotAddr(i)
		cur, err := t.space.Load64(addr)
		if err != nil {
			return 0, probes, fmt.Errorf("defense: patch table unreadable: %w", err)
		}
		if cur == 0 {
			return 0, probes, nil
		}
		if cur == key {
			v, err := t.space.Load64(addr + 8)
			if err != nil {
				return 0, probes, fmt.Errorf("defense: patch table unreadable: %w", err)
			}
			return patch.TypeMask(v), probes, nil
		}
	}
}

// mix is a Fibonacci-style initial probe index.
func mix(key uint64) uint64 { return key * 0x9E3779B97F4A7C15 >> 6 }

// writable reports whether the table pages can be written (test hook:
// must be false after construction).
func (t *patchTable) writable() bool {
	p, err := t.space.ProtAt(t.base)
	return err == nil && p&mem.ProtWrite != 0
}

// entryCountForTest walks the table counting populated slots.
func (t *patchTable) entryCountForTest() int {
	n := 0
	for i := uint64(0); i < t.slots; i++ {
		if v, err := t.space.RawLoad64(t.base + i*slotBytes); err == nil && v != 0 {
			n++
		}
	}
	return n
}
