package defense

import (
	"testing"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
)

func newBackend(t *testing.T, cfg Config) *Backend {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(space, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSwapSharedTable pins the code-less rollout primitive: re-pointing
// a shared-table Defender at a new sealed table must take effect on the
// very next allocation, bump the table generation (the verdict-cache
// invalidation signal), and survive a later Reset — the swapped table
// is the new configuration, not a transient.
func TestSwapSharedTable(t *testing.T) {
	oldSet := patches(patch.Patch{Fn: heapsim.FnMalloc, CCID: 0x42, Types: patch.TypeOverflow})
	newSet := patches(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: 0x42, Types: patch.TypeOverflow},
		patch.Patch{Fn: heapsim.FnMalloc, CCID: 0x99, Types: patch.TypeUseAfterFree},
	)
	oldTable, newTable := SealTable(oldSet), SealTable(newSet)

	d := newDefender(t, Config{SharedTable: oldTable})
	if d.SharedTable() != oldTable {
		t.Fatal("SharedTable does not return the configured table")
	}
	if d.ProbePatched(heapsim.FnMalloc, 0x99) {
		t.Fatal("new set's patch visible before the swap")
	}
	gen := d.TableGeneration()

	if err := d.SwapSharedTable(newTable); err != nil {
		t.Fatal(err)
	}
	if d.SharedTable() != newTable {
		t.Error("SharedTable still returns the old table after the swap")
	}
	if d.TableGeneration() <= gen {
		t.Errorf("swap did not advance the table generation: %d -> %d", gen, d.TableGeneration())
	}
	if !d.ProbePatched(heapsim.FnMalloc, 0x99) {
		t.Error("new set's patch not probed after the swap")
	}
	if !d.ProbePatched(heapsim.FnMalloc, 0x42) {
		t.Error("patch shared by both sets lost in the swap")
	}

	// A patched allocation now follows the new table.
	if _, err := d.Malloc(0x99, 64); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.PatchedAllocs != 1 {
		t.Errorf("allocation after swap not patched: %+v", st)
	}

	// Reset re-establishes the SWAPPED table (it is the configuration
	// now), with another generation bump.
	genSwapped := d.TableGeneration()
	d.space.Reset()
	if err := d.Reset(); err != nil {
		t.Fatal(err)
	}
	if d.TableGeneration() <= genSwapped {
		t.Error("Reset after swap did not advance the generation")
	}
	if d.SharedTable() != newTable {
		t.Error("Reset reverted the swap to the construction-time table")
	}
}

// TestSwapSharedTableContract: only shared-table Defenders can swap,
// and never to nil.
func TestSwapSharedTableContract(t *testing.T) {
	set := patches(patch.Patch{Fn: heapsim.FnMalloc, CCID: 0x1, Types: patch.TypeOverflow})

	private := newDefender(t, Config{Patches: set})
	if err := private.SwapSharedTable(SealTable(set)); err == nil {
		t.Error("SwapSharedTable on a private-table Defender succeeded")
	}

	shared := newDefender(t, Config{SharedTable: SealTable(set)})
	if err := shared.SwapSharedTable(nil); err == nil {
		t.Error("SwapSharedTable(nil) succeeded")
	}

	// The Backend passthrough follows the same contract.
	b := newBackend(t, Config{SharedTable: SealTable(set)})
	gen := b.PatchTableGeneration()
	if err := b.SwapSharedTable(SealTable(set)); err != nil {
		t.Fatal(err)
	}
	if b.PatchTableGeneration() <= gen {
		t.Error("Backend swap did not advance the generation")
	}
}
