package defense

import (
	"testing"
	"testing/quick"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
)

func newTestTable(t *testing.T, set *patch.Set) (*patchTable, *mem.Space) {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	table, err := newPatchTable(space, set)
	if err != nil {
		t.Fatal(err)
	}
	return table, space
}

func TestPatchTableLookup(t *testing.T) {
	set := patch.NewSet(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: 0xABCDEF, Types: patch.TypeOverflow},
		patch.Patch{Fn: heapsim.FnCalloc, CCID: 0xABCDEF, Types: patch.TypeUninitRead},
		patch.Patch{Fn: heapsim.FnMemalign, CCID: 7, Types: patch.AllTypes},
	)
	table, _ := newTestTable(t, set)
	cases := []struct {
		key  patch.Key
		want patch.TypeMask
	}{
		{patch.Key{Fn: heapsim.FnMalloc, CCID: 0xABCDEF}, patch.TypeOverflow},
		{patch.Key{Fn: heapsim.FnCalloc, CCID: 0xABCDEF}, patch.TypeUninitRead},
		{patch.Key{Fn: heapsim.FnMemalign, CCID: 7}, patch.AllTypes},
		{patch.Key{Fn: heapsim.FnMalloc, CCID: 0xABCDE0}, 0},
		{patch.Key{Fn: heapsim.FnRealloc, CCID: 7}, 0},
	}
	for _, c := range cases {
		got, probes, err := table.lookup(c.key)
		if err != nil {
			t.Fatalf("lookup(%v@%#x): %v", c.key.Fn, c.key.CCID, err)
		}
		if got != c.want {
			t.Errorf("lookup(%v@%#x) = %v, want %v", c.key.Fn, c.key.CCID, got, c.want)
		}
		if probes < 1 {
			t.Errorf("lookup reported %d probes", probes)
		}
	}
	if table.entryCountForTest() != 3 {
		t.Errorf("entries = %d, want 3", table.entryCountForTest())
	}
}

func TestPatchTableReadOnly(t *testing.T) {
	set := patch.NewSet(patch.Patch{Fn: heapsim.FnMalloc, CCID: 1, Types: patch.TypeOverflow})
	table, space := newTestTable(t, set)
	if table.writable() {
		t.Fatal("patch table pages are writable after construction")
	}
	// An in-space write to the table — as a heap attack might attempt —
	// faults.
	if err := space.Write(table.base, []byte{0}); !mem.IsFault(err) {
		t.Errorf("write to patch table err = %v, want fault", err)
	}
	// Reads still work.
	if _, err := space.Read(table.base, 16); err != nil {
		t.Errorf("read of patch table: %v", err)
	}
}

func TestPatchTableZeroCCID(t *testing.T) {
	// CCID 0 with Fn 0 would pack to the empty-slot marker; the
	// sentinel must keep it distinguishable. (Fn 0 never occurs in
	// real patches, but the table must not corrupt on it.)
	set := patch.NewSet(patch.Patch{Fn: 0, CCID: 0, Types: patch.TypeOverflow})
	table, _ := newTestTable(t, set)
	if got, _, err := table.lookup(patch.Key{Fn: 0, CCID: 0}); err != nil || got != patch.TypeOverflow {
		t.Errorf("zero-key lookup = %v, want OVERFLOW", got)
	}
}

func TestPatchTableEmpty(t *testing.T) {
	table, _ := newTestTable(t, patch.NewSet())
	if got, _, err := table.lookup(patch.Key{Fn: heapsim.FnMalloc, CCID: 42}); err != nil || got != 0 {
		t.Errorf("empty table lookup = %v, want 0", got)
	}
}

// TestPatchTableManyEntries fills a table well past one page and
// verifies every entry (probing across page boundaries, growth
// sizing).
func TestPatchTableManyEntries(t *testing.T) {
	set := patch.NewSet()
	for i := uint64(0); i < 2000; i++ {
		set.Add(patch.Patch{
			Fn:    heapsim.FnMalloc,
			CCID:  0x1000 + i*7919,
			Types: patch.TypeMask(1 << (i % 3)),
		})
	}
	table, _ := newTestTable(t, set)
	maxProbes := 0
	for _, p := range set.Patches() {
		got, probes, err := table.lookup(p.Key())
		if err != nil {
			t.Fatalf("lookup(%#x): %v", p.CCID, err)
		}
		if got != p.Types {
			t.Fatalf("lookup(%#x) = %v, want %v", p.CCID, got, p.Types)
		}
		if probes > maxProbes {
			maxProbes = probes
		}
	}
	// Load factor <= 0.5 keeps probe chains short.
	if maxProbes > 32 {
		t.Errorf("max probe chain = %d; table too dense", maxProbes)
	}
}

// TestQuickPatchTableAgainstMap property-tests the in-memory table
// against the reference map implementation.
func TestQuickPatchTableAgainstMap(t *testing.T) {
	f := func(ccids []uint64, probe uint64) bool {
		set := patch.NewSet()
		for i, c := range ccids {
			set.Add(patch.Patch{
				Fn:    heapsim.FnMalloc,
				CCID:  c,
				Types: patch.TypeMask(1<<(i%3)) & patch.AllTypes,
			})
		}
		// Patches with zero type mask collapse; ensure nonzero.
		space, err := mem.NewSpace(mem.Config{})
		if err != nil {
			return false
		}
		table, err := newPatchTable(space, set)
		if err != nil {
			return false
		}
		for _, p := range set.Patches() {
			if got, _, err := table.lookup(p.Key()); err != nil || got != set.Lookup(p.Key()) {
				return false
			}
		}
		probeKey := patch.Key{Fn: heapsim.FnMalloc, CCID: probe}
		got, _, err := table.lookup(probeKey)
		return err == nil && got == set.Lookup(probeKey)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDefenderExposesTableProtection(t *testing.T) {
	d := newDefender(t, Config{Patches: patches(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: 9, Types: patch.TypeOverflow},
	)})
	if d.PatchTableWritable() {
		t.Error("defender's patch table is writable")
	}
}
