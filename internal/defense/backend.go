package defense

import (
	"fmt"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

// Backend adapts the Defender to the interpreter's HeapBackend
// interface: allocation traffic flows through the defense layer, and
// ordinary loads and stores run against the protected address space,
// where a guard-page hit faults exactly like SIGSEGV under the real
// system.
//
// Concurrency contract (see Defender): Backend's cycle accumulator —
// like every other piece of its state — is unsynchronized mutable
// state, so a Backend must be owned by exactly one goroutine at a
// time. Sharing a Backend between interpreter threads is fine only
// under the cooperative single-OS-thread scheduler (prog.RunThreads);
// true parallelism requires one Backend per goroutine, with an
// immutable SealedTable as the only shared structure — the fleet
// runtime's layout, locked in by TestSealedTableCrossWorkerRace.
type Backend struct {
	def    *Defender
	space  *mem.Space
	cycles uint64
	// check is the policy's per-access hook (ShadowBound's bounds
	// check), bound once at construction; nil for families without one
	// — the HT fast path pays a single nil comparison.
	check func(d *Defender, addr, n, ccid uint64) error
}

var (
	_ prog.HeapBackend = (*Backend)(nil)
	_ prog.BulkLoader  = (*Backend)(nil)
)

// NewBackend builds a defended execution backend in space.
func NewBackend(space *mem.Space, cfg Config) (*Backend, error) {
	d, err := New(space, cfg)
	if err != nil {
		return nil, err
	}
	return &Backend{def: d, space: space, check: d.ops.access}, nil
}

// Defender exposes the defense layer (for statistics).
func (b *Backend) Defender() *Defender { return b.def }

// Alloc implements prog.HeapBackend.
func (b *Backend) Alloc(fn heapsim.AllocFn, ccid, n, size, align uint64) (uint64, error) {
	switch fn {
	case heapsim.FnMalloc:
		return b.def.Malloc(ccid, size)
	case heapsim.FnCalloc:
		return b.def.Calloc(ccid, n, size)
	case heapsim.FnMemalign, heapsim.FnAlignedAlloc:
		return b.def.Memalign(ccid, align, size)
	default:
		return 0, fmt.Errorf("defense: Alloc with unsupported function %v", fn)
	}
}

// Realloc implements prog.HeapBackend.
func (b *Backend) Realloc(ccid, ptr, size uint64) (uint64, error) {
	return b.def.Realloc(ccid, ptr, size)
}

// Free implements prog.HeapBackend; the free's CCID flows to telemetry
// so double-free rejections are attributed to the freeing context.
func (b *Backend) Free(ptr, ccid uint64) error {
	return b.def.FreeCtx(ptr, ccid)
}

// Load implements prog.HeapBackend; guard pages fault here, and the
// policy's access hook (when the family has one) rejects out-of-bounds
// ranges before the space is touched.
func (b *Backend) Load(addr, n, ccid uint64) (prog.Value, error) {
	b.cycles += prog.CycMemOp + n/prog.CycBytesPerCycle
	if b.check != nil {
		if err := b.check(b.def, addr, n, ccid); err != nil {
			return prog.Value{}, err
		}
	}
	data, err := b.space.Read(addr, n)
	if err != nil {
		b.def.noteAccessFault(err, ccid)
		return prog.Value{}, err
	}
	return prog.Value{Bytes: data}, nil
}

// LoadInto implements prog.BulkLoader, reusing dst's byte capacity;
// guard pages fault here exactly as in Load.
func (b *Backend) LoadInto(dst *prog.Value, addr, n, ccid uint64) error {
	b.cycles += prog.CycMemOp + n/prog.CycBytesPerCycle
	if b.check != nil {
		if err := b.check(b.def, addr, n, ccid); err != nil {
			return err
		}
	}
	if uint64(cap(dst.Bytes)) >= n {
		dst.Bytes = dst.Bytes[:n]
	} else {
		dst.Bytes = make([]byte, n)
	}
	dst.Valid = nil // defended loads carry no shadow
	dst.Origin = nil
	err := b.space.ReadInto(addr, dst.Bytes)
	b.def.noteAccessFault(err, ccid)
	return err
}

// Store implements prog.HeapBackend; guard pages fault here.
func (b *Backend) Store(addr uint64, v prog.Value, ccid uint64) error {
	b.cycles += prog.CycMemOp + uint64(len(v.Bytes))/prog.CycBytesPerCycle
	if b.check != nil {
		if err := b.check(b.def, addr, uint64(len(v.Bytes)), ccid); err != nil {
			return err
		}
	}
	err := b.space.Write(addr, v.Bytes)
	b.def.noteAccessFault(err, ccid)
	return err
}

// Memcpy implements prog.HeapBackend.
func (b *Backend) Memcpy(dst, src, n, ccid uint64) error {
	b.cycles += prog.CycMemOp + n/prog.CycBytesPerCycle
	if b.check != nil {
		if err := b.check(b.def, src, n, ccid); err != nil {
			return err
		}
		if err := b.check(b.def, dst, n, ccid); err != nil {
			return err
		}
	}
	err := b.space.Memmove(dst, src, n)
	b.def.noteAccessFault(err, ccid)
	return err
}

// Memset implements prog.HeapBackend.
func (b *Backend) Memset(addr uint64, c byte, n, ccid uint64) error {
	b.cycles += prog.CycMemOp + n/prog.CycBytesPerCycle
	if b.check != nil {
		if err := b.check(b.def, addr, n, ccid); err != nil {
			return err
		}
	}
	err := b.space.Memset(addr, c, n)
	b.def.noteAccessFault(err, ccid)
	return err
}

// CheckUse implements prog.HeapBackend: online execution performs no
// V-bit checking (that is offline analysis work).
func (b *Backend) CheckUse(prog.Value, prog.UseKind, uint64) {}

// ObservesUse implements prog.UseObserver: defended execution ignores
// use points, so engines may elide CheckUse calls entirely.
func (b *Backend) ObservesUse() bool { return false }

// PatchTableGeneration implements prog.PatchProber (see
// Defender.TableGeneration).
func (b *Backend) PatchTableGeneration() uint64 { return b.def.TableGeneration() }

// ProbePatched implements prog.PatchProber (see Defender.ProbePatched).
func (b *Backend) ProbePatched(fn heapsim.AllocFn, ccid uint64) bool {
	return b.def.ProbePatched(fn, ccid)
}

// Cycles implements prog.HeapBackend.
func (b *Backend) Cycles() uint64 { return b.cycles + b.def.Cycles() }

// Reset recycles the backend for a new execution after its space has
// been Reset: cycle accounting is cleared and the Defender is reset
// (see Defender.Reset for what that entails and for the caller's
// obligations around custom allocators).
func (b *Backend) Reset() error {
	b.cycles = 0
	return b.def.Reset()
}

// ResetPatches recycles the backend for a new execution under a new
// patch set (see Defender.ResetPatches).
func (b *Backend) ResetPatches(set *patch.Set) error {
	b.cycles = 0
	return b.def.ResetPatches(set)
}

// SwapSharedTable re-points the backend's Defender at a new sealed
// table (see Defender.SwapSharedTable for the contract).
func (b *Backend) SwapSharedTable(t *SealedTable) error {
	return b.def.SwapSharedTable(t)
}

// NewBackendWithAllocator builds a defended execution backend over a
// caller-supplied underlying allocator (see NewWithAllocator).
func NewBackendWithAllocator(space *mem.Space, under heapsim.Allocator, cfg Config) (*Backend, error) {
	d, err := NewWithAllocator(space, under, cfg)
	if err != nil {
		return nil, err
	}
	return &Backend{def: d, space: space, check: d.ops.access}, nil
}
