package defense

import (
	"math/rand"
	"testing"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
)

// randomPatchSet builds a patch set with rng-chosen keys and type masks,
// returning the set plus its key list for positive probes.
func randomPatchSet(rng *rand.Rand, n int) (*patch.Set, []patch.Key) {
	var patches []patch.Patch
	var keys []patch.Key
	fns := []heapsim.AllocFn{heapsim.FnMalloc, heapsim.FnCalloc, heapsim.FnRealloc, heapsim.FnMemalign}
	types := []patch.TypeMask{patch.TypeOverflow, patch.TypeUseAfterFree, patch.TypeUninitRead, patch.AllTypes}
	for i := 0; i < n; i++ {
		p := patch.Patch{
			Fn:    fns[rng.Intn(len(fns))],
			CCID:  rng.Uint64(),
			Types: types[rng.Intn(len(types))],
		}
		if rng.Intn(8) == 0 {
			p.CCID = uint64(rng.Intn(4)) // force key collisions and CCID 0
		}
		patches = append(patches, p)
		keys = append(keys, p.Key())
	}
	return patch.NewSet(patches...), keys
}

// TestDifferentialPatchLookup drives the single-validation lookup and
// the per-word-checked refLookup over random patch sets with a mix of
// present and absent keys, asserting identical type masks, probe
// counts, and error outcomes.
func TestDifferentialPatchLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		set, keys := randomPatchSet(rng, 1+rng.Intn(200))
		table, _ := newTestTable(t, set)
		for q := 0; q < 500; q++ {
			var k patch.Key
			if len(keys) > 0 && rng.Intn(2) == 0 {
				k = keys[rng.Intn(len(keys))]
			} else {
				k = patch.Key{
					Fn:   heapsim.AllocFn(rng.Intn(8)),
					CCID: rng.Uint64(),
				}
			}
			ft, fp, ferr := table.lookup(k)
			rt, rp, rerr := table.refLookup(k)
			if (ferr == nil) != (rerr == nil) {
				t.Fatalf("lookup(%v@%#x) err = %v, refLookup err = %v", k.Fn, k.CCID, ferr, rerr)
			}
			if ft != rt || fp != rp {
				t.Fatalf("lookup(%v@%#x) = (%v, %d), refLookup = (%v, %d)",
					k.Fn, k.CCID, ft, fp, rt, rp)
			}
		}
	}
}

// TestDifferentialLookupRevokedTable proves both lookup paths surface a
// revoked (PROT_NONE) table as an error rather than returning a silent
// "no patch" result.
func TestDifferentialLookupRevokedTable(t *testing.T) {
	set := patch.NewSet(patch.Patch{Fn: heapsim.FnMalloc, CCID: 0x42, Types: patch.TypeOverflow})
	table, space := newTestTable(t, set)
	if err := space.Mprotect(table.base, table.pages, mem.ProtNone); err != nil {
		t.Fatal(err)
	}
	k := patch.Key{Fn: heapsim.FnMalloc, CCID: 0x42}
	if _, _, err := table.lookup(k); !mem.IsFault(err) {
		t.Errorf("lookup on revoked table err = %v, want fault", err)
	}
	if _, _, err := table.refLookup(k); !mem.IsFault(err) {
		t.Errorf("refLookup on revoked table err = %v, want fault", err)
	}
}

// TestLookupFaultCounted proves the bugfix end to end: a Defender whose
// table pages were revoked reports the allocation as failed and counts
// the fault in Stats, instead of silently allocating unpatched.
func TestLookupFaultCounted(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(space, Config{
		Patches: patch.NewSet(patch.Patch{Fn: heapsim.FnMalloc, CCID: 1, Types: patch.TypeOverflow}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Malloc(1, 64); err != nil {
		t.Fatalf("healthy-table Malloc: %v", err)
	}
	if err := space.Mprotect(d.table.base, d.table.pages, mem.ProtNone); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Malloc(1, 64); err == nil {
		t.Fatal("Malloc with revoked patch table succeeded; defense silently disabled")
	}
	if got := d.Stats().LookupFaults; got != 1 {
		t.Errorf("Stats().LookupFaults = %d, want 1", got)
	}
}

// TestLookupAllocs pins the zero-allocation guarantee on the patch
// lookup hot path.
func TestLookupAllocs(t *testing.T) {
	set, keys := randomPatchSet(rand.New(rand.NewSource(11)), 64)
	table, _ := newTestTable(t, set)
	miss := patch.Key{Fn: heapsim.FnMalloc, CCID: 0xDEAD_BEEF_F00D}
	if avg := testing.AllocsPerRun(200, func() {
		if _, _, err := table.lookup(keys[0]); err != nil {
			t.Fatal(err)
		}
		if _, _, err := table.lookup(miss); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("lookup allocates %.1f per op, want 0", avg)
	}
}

// BenchmarkPatchLookup measures hit and miss probes against a
// realistically loaded table.
func BenchmarkPatchLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	set, keys := randomPatchSet(rng, 256)
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		b.Fatal(err)
	}
	table, err := newPatchTable(space, set)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := table.lookup(keys[i%len(keys)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := patch.Key{Fn: heapsim.FnMalloc, CCID: uint64(i) * 0x9E37_79B9}
			if _, _, err := table.lookup(k); err != nil {
				b.Fatal(err)
			}
		}
	})
}
