package defense

import (
	"testing"
	"testing/quick"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
)

// TestQuickMetadataRoundTrip property-tests the Figure 6 metadata word
// across random sizes, alignments, and vulnerability masks: the size
// and alignment must round-trip through allocation, UsableSize, and
// free, for every structure S1-S4.
func TestQuickMetadataRoundTrip(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// One defender per property run is too slow; share one with a
	// patch for every mask at distinct CCIDs.
	set := patch.NewSet()
	for m := patch.TypeMask(1); m <= patch.AllTypes; m++ {
		set.Add(patch.Patch{Fn: heapsim.FnMalloc, CCID: uint64(m), Types: m})
		set.Add(patch.Patch{Fn: heapsim.FnMemalign, CCID: uint64(m), Types: m})
	}
	d, err := New(space, Config{Patches: set})
	if err != nil {
		t.Fatal(err)
	}

	f := func(sizeSeed uint16, alignPow uint8, mask uint8) bool {
		size := uint64(sizeSeed)%8000 + 1
		m := patch.TypeMask(mask) & patch.AllTypes
		ccid := uint64(m) // matches the planted patch (0 = unpatched)

		aligned := alignPow%2 == 1
		var (
			p   uint64
			err error
		)
		if aligned {
			align := uint64(16) << (alignPow % 6) // 16..512
			p, err = d.Memalign(ccid, align, size)
			if err != nil {
				return false
			}
			if p%align != 0 {
				return false
			}
		} else {
			p, err = d.Malloc(ccid, size)
			if err != nil {
				return false
			}
		}
		got, err := d.UsableSize(p)
		if err != nil || got != size {
			return false
		}
		if err := d.Free(p); err != nil {
			return false
		}
		return d.Heap().CheckIntegrity() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestMetadataWordBitLayout pins the exact Figure 6 bit layout so the
// format cannot drift silently.
func TestMetadataWordBitLayout(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const ccid = 0x31
	d, err := New(space, Config{Patches: patch.NewSet(
		patch.Patch{Fn: heapsim.FnMemalign, CCID: ccid, Types: patch.TypeUseAfterFree | patch.TypeUninitRead},
	)})
	if err != nil {
		t.Fatal(err)
	}

	// Structure 3: aligned, no guard. size in bits 4..51, lg(align) in
	// bits 52..57, type field bits 0..3.
	const size, align = 1234, 128
	p, err := d.Memalign(ccid, align, size)
	if err != nil {
		t.Fatal(err)
	}
	word, err := space.RawLoad64(p - 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := word & 0xF; got != bitUAF|bitUninit|bitAligned {
		t.Errorf("type field = %#x, want UAF|UNINIT|ALIGNED", got)
	}
	if got := (word >> 4) & (1<<48 - 1); got != size {
		t.Errorf("size field = %d, want %d", got, size)
	}
	if got := (word >> 52) & 0x3F; got != 7 { // lg(128)
		t.Errorf("lg(align) field = %d, want 7", got)
	}

	// Structure 2: guard, unaligned. guard frame in bits 4..39; the
	// user size lives in the guard page's first word.
	d2, err := New(space, Config{Patches: patch.NewSet(
		patch.Patch{Fn: heapsim.FnMalloc, CCID: ccid, Types: patch.TypeOverflow},
	)})
	if err != nil {
		t.Fatal(err)
	}
	q, err := d2.Malloc(ccid, 777)
	if err != nil {
		t.Fatal(err)
	}
	word2, err := space.RawLoad64(q - 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := word2 & 0xF; got != bitOverflow {
		t.Errorf("type field = %#x, want OVERFLOW", got)
	}
	frame := (word2 >> 4) & (1<<36 - 1)
	guard := frame << mem.PageShift
	if guard != mem.PageAlignUp(q+777) {
		t.Errorf("guard frame -> %#x, want %#x", guard, mem.PageAlignUp(q+777))
	}
	sz, err := space.RawLoad64(guard)
	if err != nil {
		t.Fatal(err)
	}
	if sz != 777 {
		t.Errorf("guard-page size word = %d, want 777", sz)
	}
	// The guard page itself must be inaccessible.
	if _, rerr := space.Read(guard, 1); !mem.IsFault(rerr) {
		t.Error("guard page is readable")
	}
}

// TestFreeRecoversUnderlyingPointer pins the Figure 7 pi computation:
// pi = p - sizeof(void*) for plain buffers and pi = p - A for aligned
// ones, by confirming the underlying allocator accepts the free (it
// validates exact payload addresses).
func TestFreeRecoversUnderlyingPointer(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(space, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Malloc(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	q, err := d.Memalign(2, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Free(p); err != nil {
		t.Errorf("free of plain buffer: %v", err)
	}
	if err := d.Free(q); err != nil {
		t.Errorf("free of aligned buffer: %v", err)
	}
	if got := d.Heap().LiveCount(); got != 0 {
		t.Errorf("live underlying allocations = %d, want 0", got)
	}
}
