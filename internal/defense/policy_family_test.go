package defense

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

// --- Family plumbing: parsing, validation, seam behavior -------------

func TestParseFamily(t *testing.T) {
	cases := []struct {
		in   string
		want Family
	}{
		{"", FamilyHT},
		{"ht", FamilyHT},
		{"HT", FamilyHT},
		{"heaptherapy", FamilyHT},
		{"heaptherapy+", FamilyHT},
		{" ht ", FamilyHT},
		{"shadowbound", FamilyShadowBound},
		{"sb", FamilyShadowBound},
		{"bounds", FamilyShadowBound},
		{"mesh", FamilyMESH},
		{"MESH", FamilyMESH},
	}
	for _, c := range cases {
		got, err := ParseFamily(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseFamily(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseFamily("camp"); err == nil {
		t.Error("ParseFamily accepted an unknown family")
	}
	if _, err := ParseFamily("all"); err == nil {
		t.Error("ParseFamily accepted the list-only value \"all\"")
	}
}

func TestFamilyString(t *testing.T) {
	for _, f := range AllFamilies() {
		if s := f.String(); s == "" || s == fmt.Sprintf("Family(%d)", uint8(f)) {
			t.Errorf("family %d has no name", uint8(f))
		}
	}
	if got := Family(250).String(); got != "Family(250)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestConfigRejectsUnknownFamily(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(space, Config{Family: numFamilies}); err == nil {
		t.Error("New accepted an out-of-range family")
	}
}

func TestInterposeExclusiveToHT(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Family{FamilyShadowBound, FamilyMESH} {
		if _, err := New(space, Config{Family: f, Mode: ModeInterpose}); err == nil {
			t.Errorf("%v accepted interposition-only mode", f)
		}
	}
	if _, err := New(space, Config{Family: FamilyHT, Mode: ModeInterpose}); err != nil {
		t.Errorf("HT rejected interposition-only mode: %v", err)
	}
}

func TestIsContainmentFault(t *testing.T) {
	if !IsContainmentFault(fmt.Errorf("wrapped: %w", ErrOutOfBounds)) {
		t.Error("ErrOutOfBounds not recognized")
	}
	if !IsContainmentFault(fmt.Errorf("wrapped: %w", ErrDoubleFree)) {
		t.Error("ErrDoubleFree not recognized")
	}
	if IsContainmentFault(errors.New("segfault")) || IsContainmentFault(nil) {
		t.Error("wild fault classified as containment")
	}
}

func TestContainmentMatrixShape(t *testing.T) {
	// HT claims everything; the alternatives each disclaim something —
	// the matrix must never silently drift to "everyone contains all".
	if ht := FamilyHT.Containment(); ht != (Containment{true, true, true, true, true, true, true}) {
		t.Errorf("HT containment = %+v, want all true", ht)
	}
	for _, f := range []Family{FamilyShadowBound, FamilyMESH} {
		if f.Containment() == (Containment{true, true, true, true, true, true, true}) {
			t.Errorf("%v claims full containment; its documented misses vanished", f)
		}
	}
}

func TestProbePatchedFalseForNonHT(t *testing.T) {
	set := patches(patch.Patch{Fn: heapsim.FnMalloc, CCID: 0x42, Types: patch.TypeOverflow})
	for _, f := range []Family{FamilyShadowBound, FamilyMESH} {
		d := newDefender(t, Config{Family: f, Patches: set})
		if d.ProbePatched(heapsim.FnMalloc, 0x42) {
			t.Errorf("%v reports patch-targeted allocation; only HT consults the table", f)
		}
	}
	d := newDefender(t, Config{Family: FamilyHT, Patches: set})
	if !d.ProbePatched(heapsim.FnMalloc, 0x42) {
		t.Error("HT lost patch probing")
	}
}

func TestNonHTKeepsSharedTableSeams(t *testing.T) {
	// The fleet/serve runtimes swap sealed tables on every rollout
	// regardless of policy; non-HT families must keep the seam alive
	// (generation bump, no error) even though they ignore the contents.
	sealed := SealTable(patches(patch.Patch{Fn: heapsim.FnMalloc, CCID: 1, Types: patch.TypeOverflow}))
	for _, f := range AllFamilies() {
		d := newDefender(t, Config{Family: f, SharedTable: sealed})
		gen := d.TableGeneration()
		next := SealTable(patches(patch.Patch{Fn: heapsim.FnMalloc, CCID: 2, Types: patch.TypeOverflow}))
		if err := d.SwapSharedTable(next); err != nil {
			t.Fatalf("%v: SwapSharedTable: %v", f, err)
		}
		if d.TableGeneration() != gen+1 {
			t.Errorf("%v: generation %d after swap, want %d", f, d.TableGeneration(), gen+1)
		}
		if _, err := d.Malloc(2, 32); err != nil {
			t.Errorf("%v: allocation after swap: %v", f, err)
		}
	}
}

// --- ShadowBound policy ----------------------------------------------

func newPolicyBackend(t *testing.T, f Family) *Backend {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(space, Config{Family: f})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestShadowBoundAccessBounds(t *testing.T) {
	b := newPolicyBackend(t, FamilyShadowBound)
	p, err := b.Alloc(heapsim.FnMalloc, 0x1, 1, 64, 0)
	if err != nil {
		t.Fatal(err)
	}

	// The whole object is readable and writable.
	if err := b.Store(p, prog.Value{Bytes: make([]byte, 64)}, 0); err != nil {
		t.Fatalf("in-bounds store: %v", err)
	}
	if _, err := b.Load(p, 64, 0); err != nil {
		t.Fatalf("in-bounds load: %v", err)
	}
	if _, err := b.Load(p+63, 1, 0); err != nil {
		t.Fatalf("last-byte load: %v", err)
	}

	// One byte past the end faults — read and write alike.
	if _, err := b.Load(p+64, 1, 0); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("overflow load err = %v, want ErrOutOfBounds", err)
	}
	if err := b.Store(p+64, prog.Value{Bytes: []byte{0xAA}}, 0); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("overflow store err = %v, want ErrOutOfBounds", err)
	}
	// A range that starts inside but runs off the end faults too.
	if _, err := b.Load(p+32, 33, 0); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("straddling load err = %v, want ErrOutOfBounds", err)
	}
	// The metadata word ahead of the pointer is off limits.
	if _, err := b.Load(p-8, 8, 0); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("underflow load err = %v, want ErrOutOfBounds", err)
	}
	// So is unowned memory far from any object.
	if _, err := b.Load(p+1<<20, 4, 0); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("wild load err = %v, want ErrOutOfBounds", err)
	}
	// Zero-length accesses are vacuously fine.
	if err := b.Memset(p+64, 0, 0, 0); err != nil {
		t.Errorf("zero-length memset err = %v", err)
	}
}

func TestShadowBoundBlocksOOBWriteBeforeItLands(t *testing.T) {
	// The check runs BEFORE the space is touched: a rejected overflow
	// write must leave the neighboring object's bytes intact.
	b := newPolicyBackend(t, FamilyShadowBound)
	p1, err := b.Alloc(heapsim.FnMalloc, 0x1, 1, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.Alloc(heapsim.FnMalloc, 0x1, 1, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	canary := bytes.Repeat([]byte{0x5A}, 32)
	if err := b.Store(p2, prog.Value{Bytes: canary}, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Memset(p1, 0xFF, p2-p1+8, 0); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("overflow memset err = %v, want ErrOutOfBounds", err)
	}
	got, err := b.Load(p2, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes, canary) {
		t.Error("rejected overflow write still mutated the neighbor")
	}
}

func TestShadowBoundMemcpyChecksBothSides(t *testing.T) {
	b := newPolicyBackend(t, FamilyShadowBound)
	p, err := b.Alloc(heapsim.FnMalloc, 0x1, 1, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := b.Alloc(heapsim.FnMalloc, 0x1, 1, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Memcpy(q, p, 64, 0); err != nil {
		t.Fatalf("in-bounds memcpy: %v", err)
	}
	if err := b.Memcpy(q, p+32, 64, 0); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("OOB source err = %v, want ErrOutOfBounds", err)
	}
	if err := b.Memcpy(q+32, p, 64, 0); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("OOB destination err = %v, want ErrOutOfBounds", err)
	}
}

func TestShadowBoundDoubleFree(t *testing.T) {
	d := newDefender(t, Config{Family: FamilyShadowBound})
	p, err := d.Malloc(0x1, 48)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Free(p); err != nil {
		t.Fatalf("first free: %v", err)
	}
	err = d.Free(p)
	if !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("second free err = %v, want ErrDoubleFree", err)
	}
	if !IsContainmentFault(err) {
		t.Error("double-free abort not classified as containment")
	}
	// A wild free of a pointer that was never allocated aborts the
	// same way: no live bounds.
	if err := d.Free(0xDEAD000); !errors.Is(err, ErrDoubleFree) {
		t.Errorf("wild free err = %v, want ErrDoubleFree", err)
	}
}

func TestShadowBoundUsableSizeUnknownPointer(t *testing.T) {
	d := newDefender(t, Config{Family: FamilyShadowBound})
	p, err := d.Malloc(0x1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := d.UsableSize(p); err != nil || got != 40 {
		t.Fatalf("UsableSize(live) = %d, %v; want 40", got, err)
	}
	if _, err := d.UsableSize(p + 4); err == nil {
		t.Error("UsableSize of an interior pointer succeeded")
	}
	if err := d.Free(p); err != nil {
		t.Fatal(err)
	}
	if _, err := d.UsableSize(p); err == nil {
		t.Error("UsableSize of a freed pointer succeeded")
	}
}

func TestBoundsIndexInsertRemove(t *testing.T) {
	d := newDefender(t, Config{Family: FamilyShadowBound})
	// Insert out of address order; the index must stay sorted.
	for _, e := range []boundsEntry{{0x3000, 8}, {0x1000, 16}, {0x2000, 24}} {
		d.boundsInsert(e.user, e.size)
	}
	want := []boundsEntry{{0x1000, 16}, {0x2000, 24}, {0x3000, 8}}
	if len(d.bounds) != len(want) {
		t.Fatalf("index length %d, want %d", len(d.bounds), len(want))
	}
	for i, e := range want {
		if d.bounds[i] != e {
			t.Errorf("bounds[%d] = %+v, want %+v", i, d.bounds[i], e)
		}
	}
	if _, ok := d.boundsRemove(0x1500); ok {
		t.Error("removed a pointer that was never inserted")
	}
	if e, ok := d.boundsRemove(0x2000); !ok || e.size != 24 {
		t.Errorf("boundsRemove(0x2000) = %+v, %v", e, ok)
	}
	if len(d.bounds) != 2 || d.bounds[0].user != 0x1000 || d.bounds[1].user != 0x3000 {
		t.Errorf("index after removal: %+v", d.bounds)
	}
}

func TestShadowBoundResetClearsIndex(t *testing.T) {
	b := newPolicyBackend(t, FamilyShadowBound)
	p, err := b.Alloc(heapsim.FnMalloc, 0x1, 1, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Reset(); err != nil {
		t.Fatal(err)
	}
	if n := len(b.Defender().bounds); n != 0 {
		t.Fatalf("bounds index holds %d stale entries after Reset", n)
	}
	// The stale pointer is dead: accesses fault instead of consulting
	// pre-Reset bounds.
	if _, err := b.Load(p, 8, 0); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("stale-pointer load err = %v, want ErrOutOfBounds", err)
	}
	// And the recycled Defender serves fresh allocations normally.
	q, err := b.Alloc(heapsim.FnMalloc, 0x1, 1, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Load(q, 64, 0); err != nil {
		t.Errorf("post-Reset allocation unusable: %v", err)
	}
}

// --- MESH policy ------------------------------------------------------

func TestMeshRound(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 16}, {1, 16}, {16, 16}, {17, 32}, {100, 128},
		{4096, 4096}, {65536, 65536}, {65537, mem.PageAlignUp(65537)},
	}
	for _, c := range cases {
		if got := meshRound(c.in); got != c.want {
			t.Errorf("meshRound(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMeshUsableSizeReportsRequested(t *testing.T) {
	d := newDefender(t, Config{Family: FamilyMESH})
	p, err := d.Malloc(0x1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := d.UsableSize(p); err != nil || got != 100 {
		t.Errorf("UsableSize = %d, %v; want the requested 100, not the 128 class", got, err)
	}
}

func TestMeshZeroFillsRecycledMemory(t *testing.T) {
	d := newDefender(t, Config{Family: FamilyMESH, QueueQuota: 1})
	space := d.Heap().Space()
	secret := []byte("TOP-SECRET-KEY-MATERIAL")

	s, err := d.Malloc(0x1, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := space.Write(s, secret); err != nil {
		t.Fatal(err)
	}
	// QueueQuota 1 evicts immediately, so the block really recycles.
	if err := d.Free(s); err != nil {
		t.Fatal(err)
	}
	p, err := d.Malloc(0x2, 128)
	if err != nil {
		t.Fatal(err)
	}
	got, err := space.Read(p, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 128)) {
		t.Error("recycled MESH allocation not zero-filled")
	}
	if d.Stats().ZeroFills != 2 {
		t.Errorf("ZeroFills = %d, want one per allocation", d.Stats().ZeroFills)
	}
}

func TestMeshDoubleFreeWhileQuarantined(t *testing.T) {
	d := newDefender(t, Config{Family: FamilyMESH})
	p, err := d.Malloc(0x1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Free(p); err != nil {
		t.Fatalf("first free: %v", err)
	}
	if err := d.Free(p); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("quarantined double free err = %v, want ErrDoubleFree", err)
	}
}

func TestMeshQuarantineDelaysReuse(t *testing.T) {
	d := newDefender(t, Config{Family: FamilyMESH})
	p, err := d.Malloc(0x1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Free(p); err != nil {
		t.Fatal(err)
	}
	// Under the default quota nothing evicts, so the same class
	// allocation must NOT recycle the quarantined block — the delayed
	// reuse that keeps dangling pointers pointing at dead memory.
	q, err := d.Malloc(0x2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if q == p {
		t.Error("quarantined block recycled immediately")
	}
	st := d.Stats()
	if st.DeferredFrees != 1 || st.QueueEvictions != 0 {
		t.Errorf("stats = %+v, want 1 deferred, 0 evictions", st)
	}
}

func TestMeshQuotaEvictionBoundsQueue(t *testing.T) {
	// A tight quota forces evictions; occupancy stays at or under the
	// quota, and the lapse is visible in the stats (the documented
	// limit of delayed reuse — after eviction the allocator owns the
	// block again).
	const quota = 2048
	d := newDefender(t, Config{Family: FamilyMESH, QueueQuota: quota})
	for i := 0; i < 32; i++ {
		p, err := d.Malloc(0x1, 256)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Free(p); err != nil {
			t.Fatal(err)
		}
		if got := d.Stats().QueueBytes; got > quota {
			t.Fatalf("queue occupancy %d exceeds quota %d", got, quota)
		}
	}
	st := d.Stats()
	if st.QueueEvictions == 0 {
		t.Errorf("no evictions under quota pressure: %+v", st)
	}
	if st.DeferredFrees != 32 {
		t.Errorf("DeferredFrees = %d, want 32 (every free quarantined)", st.DeferredFrees)
	}
}

func TestMeshHasNoAccessHook(t *testing.T) {
	// MESH (like HT) must not tax the load/store fast path: an
	// out-of-class access is serviced by the space, not pre-checked.
	b := newPolicyBackend(t, FamilyMESH)
	p, err := b.Alloc(heapsim.FnMalloc, 0x1, 1, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reading past the requested size but inside the heap succeeds —
	// the documented spatial miss.
	if _, err := b.Load(p+32, 8, 0); err != nil {
		t.Errorf("MESH pre-checked an access: %v", err)
	}
}

// --- genericRealloc (shared by SB and MESH) ---------------------------

func TestPolicyReallocPreservesData(t *testing.T) {
	for _, f := range []Family{FamilyShadowBound, FamilyMESH} {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			d := newDefender(t, Config{Family: f})
			space := d.Heap().Space()
			p, err := d.Malloc(0x1, 40)
			if err != nil {
				t.Fatal(err)
			}
			pattern := bytes.Repeat([]byte{0xC3}, 40)
			if err := space.Write(p, pattern); err != nil {
				t.Fatal(err)
			}

			// Grow: contents move intact.
			q, err := d.Realloc(0x1, p, 200)
			if err != nil {
				t.Fatalf("grow: %v", err)
			}
			got, err := space.Read(q, 40)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, pattern) {
				t.Error("grown realloc lost contents")
			}
			if size, err := d.UsableSize(q); err != nil || size != 200 {
				t.Errorf("UsableSize after grow = %d, %v; want 200", size, err)
			}

			// Shrink: the prefix survives.
			r, err := d.Realloc(0x1, q, 16)
			if err != nil {
				t.Fatalf("shrink: %v", err)
			}
			got, err = space.Read(r, 16)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, pattern[:16]) {
				t.Error("shrunk realloc lost prefix")
			}

			// Realloc of an unknown pointer errors instead of fabricating
			// bounds.
			if _, err := d.Realloc(0x1, 0xBAD000, 64); err == nil {
				t.Error("realloc of an unknown pointer succeeded")
			}
		})
	}
}

func TestShadowBoundReallocRetiresOldBounds(t *testing.T) {
	b := newPolicyBackend(t, FamilyShadowBound)
	p, err := b.Alloc(heapsim.FnMalloc, 0x1, 1, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := b.Realloc(0x1, p, 256)
	if err != nil {
		t.Fatal(err)
	}
	if q == p {
		t.Fatal("realloc did not move (metadata cannot grow in place)")
	}
	// The old pointer's bounds are gone; the new object is fully live.
	if _, err := b.Load(p, 8, 0); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("stale realloc source load err = %v, want ErrOutOfBounds", err)
	}
	if _, err := b.Load(q, 256, 0); err != nil {
		t.Errorf("reallocated object load: %v", err)
	}
}
