// Policy families: the defense layer is organized as a table of
// function hooks — one entry per defense family — so alternative heap
// defenses from the literature run over the same mem/heapsim substrate
// and through the same Defender/Backend seams (Reset, SwapSharedTable,
// telemetry, cycle accounting) as the HeapTherapy+ patch-table policy.
//
// The table mirrors the gosb BackendConfig idiom: a compact enum
// indexes a fixed array of per-family function pointers, selected once
// at construction; the hot paths pay one pointer-indirect call (and,
// for families without a hook, nothing at all — the access hook is nil
// for HT, keeping its load/store fast path untouched).
//
// Families:
//
//   - FamilyHT (default): HeapTherapy+'s targeted code-less patches —
//     {FUN, CCID} patch-table lookup on every allocation, S1–S4 buffer
//     structures, guard pages, deferred free, zero-fill. Only buffers
//     named by a patch pay for enhancement.
//   - FamilyShadowBound: per-object bounds metadata ahead of every
//     pointer plus a live-interval index consulted on every memory
//     access (ShadowBound-style). Spatial violations fault at the
//     first out-of-bounds byte; no guard pages, no patch consulting.
//   - FamilyMESH: memory-efficient safe layout (MESH-style) —
//     segregated size classes, zero-fill on every allocation, and
//     delayed reuse of every freed block through the FIFO quarantine.
//     Temporal violations are survived, not faulted; no guard pages.
package defense

import (
	"errors"
	"fmt"
	"strings"

	"heaptherapy/internal/heapsim"
)

// Family selects the defense policy a Defender runs. The zero value is
// FamilyHT, so existing construction sites keep HeapTherapy+ behavior
// without change.
type Family uint8

// Families.
const (
	// FamilyHT is HeapTherapy+'s patch-table defense (the default).
	FamilyHT Family = iota
	// FamilyShadowBound checks per-object bounds on every access.
	FamilyShadowBound
	// FamilyMESH segregates size classes and delays all reuse.
	FamilyMESH

	numFamilies
)

func (f Family) String() string {
	switch f {
	case FamilyHT:
		return "ht"
	case FamilyShadowBound:
		return "shadowbound"
	case FamilyMESH:
		return "mesh"
	default:
		return fmt.Sprintf("Family(%d)", uint8(f))
	}
}

// AllFamilies lists every policy family in declaration order.
func AllFamilies() []Family {
	return []Family{FamilyHT, FamilyShadowBound, FamilyMESH}
}

// ParseFamily resolves a -policy flag value. "all" is rejected here —
// callers that accept family lists (htp-fuzz) handle it themselves.
func ParseFamily(s string) (Family, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "ht", "heaptherapy", "heaptherapy+":
		return FamilyHT, nil
	case "shadowbound", "sb", "bounds":
		return FamilyShadowBound, nil
	case "mesh":
		return FamilyMESH, nil
	default:
		return 0, fmt.Errorf("defense: unknown policy family %q (ht, shadowbound, or mesh)", s)
	}
}

// ErrOutOfBounds reports an access rejected by a per-object bounds
// check: the ShadowBound policy's spatial containment firing. Engines
// surface it as Result.Fault exactly like a guard-page SIGSEGV.
var ErrOutOfBounds = errors.New("defense: out-of-bounds access")

// IsContainmentFault reports whether err is a fault the defense raised
// DELIBERATELY to stop an attack — a bounds-check rejection or a
// double-free abort — as opposed to a wild fault that escaped it.
// Guard-page hits are not classified here: they are ordinary mem
// faults whose address must be checked against the space's protection
// (see the serve front-end's classifier).
func IsContainmentFault(err error) bool {
	return errors.Is(err, ErrOutOfBounds) || errors.Is(err, ErrDoubleFree)
}

// Containment is one family's documented per-vulnerability guarantee
// matrix: true means the family contains that campaign kind (no secret
// leak, no sentinel clobber — by fault or by construction), false is a
// documented expected miss (the campaign runs those cells record-only,
// never silently skipped). Field names match the campaign's VulnKind
// declaration order.
type Containment struct {
	OverflowRead  bool
	OverflowWrite bool
	UnderflowRead bool
	UAFRead       bool
	UAFWrite      bool
	DoubleFree    bool
	UninitRead    bool
}

// Containment returns the family's guarantee matrix. The arguments,
// cell by cell, live in DESIGN.md §16; the campaign's cross-family
// differential suite asserts every `true` and documents every `false`.
//
//   - HT contains all seven kinds, but only for allocation sites named
//     by a patch (the campaign loads the analysis-generated patches, so
//     all cells are armed).
//   - ShadowBound contains every spatial kind by faulting at the first
//     out-of-bounds byte, and double free via its live-object index. It
//     misses temporal kinds whose dangling pointer lands inside a
//     recycled live object (the campaign's UAF gadgets re-allocate the
//     same block), and uninitialized reads (in-bounds by definition).
//   - MESH contains temporal kinds (quarantined blocks are never
//     recycled into new objects, so dangling accesses see dead memory),
//     double free (the quarantined block's marked metadata survives
//     until eviction), uninitialized reads (every allocation is
//     zero-filled), and shallow underflow (absorbed by the metadata
//     word). It has no spatial defense: overflow cells are expected
//     misses that may corrupt neighboring heap state.
func (f Family) Containment() Containment {
	switch f {
	case FamilyShadowBound:
		return Containment{
			OverflowRead:  true,
			OverflowWrite: true,
			UnderflowRead: true,
			DoubleFree:    true,
		}
	case FamilyMESH:
		return Containment{
			UnderflowRead: true,
			UAFRead:       true,
			UAFWrite:      true,
			DoubleFree:    true,
			UninitRead:    true,
		}
	default:
		return Containment{
			OverflowRead:  true,
			OverflowWrite: true,
			UnderflowRead: true,
			UAFRead:       true,
			UAFWrite:      true,
			DoubleFree:    true,
			UninitRead:    true,
		}
	}
}

// policyOps is one family's hook table. Every hook receives the
// Defender, whose shared machinery (underlying allocator, space, cycle
// accumulator, statistics, telemetry, deferred-free queue, patch
// table) the hooks compose differently per family.
type policyOps struct {
	// allocate services malloc/calloc/memalign (and the allocating
	// half of realloc) after the shared entry bookkeeping.
	allocate func(d *Defender, fn heapsim.AllocFn, ccid, size, align uint64, isRealloc bool) (uint64, error)
	// free services free() after the nil-pointer check.
	free func(d *Defender, user, ccid uint64) error
	// realloc services a non-nil realloc.
	realloc func(d *Defender, ccid, user, size uint64) (uint64, error)
	// usable reports a live buffer's user size.
	usable func(d *Defender, user uint64) (uint64, error)
	// access validates one memory access before it reaches the space;
	// nil disables per-access checking entirely (the Backend's
	// load/store fast path stays one nil-check away from undefended).
	access func(d *Defender, addr, n, ccid uint64) error
	// reset clears family-private state on Defender.Reset; nil when
	// the family keeps none beyond the shared queue.
	reset func(d *Defender)
}

// policies is the family table, indexed by Family.
var policies = [numFamilies]policyOps{
	FamilyHT: {
		allocate: htAllocate,
		free:     htFree,
		realloc:  htRealloc,
		usable:   htUsableSize,
	},
	FamilyShadowBound: {
		allocate: sbAllocate,
		free:     sbFree,
		realloc:  genericRealloc,
		usable:   sbUsableSize,
		access:   sbAccess,
		reset:    sbReset,
	},
	FamilyMESH: {
		allocate: meshAllocate,
		free:     meshFree,
		realloc:  genericRealloc,
		usable:   htUsableSize, // same guard-free metadata layout
	},
}

// genericRealloc is the allocate-copy-free path shared by the policies
// whose metadata does not support in-place growth (all of them; HT has
// its own variant that additionally re-protects guard pages).
func genericRealloc(d *Defender, ccid, user, size uint64) (uint64, error) {
	old, err := d.ops.usable(d, user)
	if err != nil {
		return 0, err
	}
	newUser, err := d.allocate(heapsim.FnMalloc, ccid, size, 0, true)
	if err != nil {
		return 0, err
	}
	n := old
	if size < n {
		n = size
	}
	data, err := d.space.RawRead(user, n)
	if err != nil {
		return 0, fmt.Errorf("defense: realloc copy: %w", err)
	}
	if err := d.space.RawWrite(newUser, data); err != nil {
		return 0, fmt.Errorf("defense: realloc copy: %w", err)
	}
	if err := d.FreeCtx(user, ccid); err != nil {
		return 0, fmt.Errorf("defense: realloc free: %w", err)
	}
	d.stats.Frees-- // internal bookkeeping, not a user free
	return newUser, nil
}

// Additional virtual-cycle costs of the non-HT policies, in the same
// scale as the HT constants (defense.go): the bounds index pays a
// binary search per access and an ordered insert per allocation; the
// segregated-class policy pays a table round-up per allocation plus
// the zero-fill bandwidth it forces on every buffer.
const (
	cycBoundsCheck  = 2
	cycBoundsInsert = 6
	cycClassRound   = 1
)
