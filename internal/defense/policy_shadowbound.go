// The ShadowBound-style policy: per-object bounds metadata stored in
// the word ahead of every pointer (the same S1/S3 layout HT uses for
// unpatched buffers), plus a live-object interval index consulted on
// every memory access through the Backend. A load, store, memcpy, or
// memset whose byte range is not fully inside one live object faults
// at the first offending access — before the space is touched, so an
// out-of-bounds write never lands.
//
// Unlike HT, nothing is targeted: every allocation is indexed and
// every access checked, which is the family's overhead/containment
// trade-off (spatial violations always fault; no patch table, no
// guard pages). Temporal safety is out of scope by design: a dangling
// pointer into a recycled live object passes the bounds check (see
// Family.Containment for the documented misses).
package defense

import (
	"fmt"
	"sort"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/telemetry"
)

// boundsEntry is one live object in the index: its user pointer and
// user size, kept sorted by user address.
type boundsEntry struct {
	user uint64
	size uint64
}

// sbAllocate places [meta][user...] (or the aligned S3 variant),
// records the user size in the metadata word, and inserts the object
// into the live-interval index.
func sbAllocate(d *Defender, fn heapsim.AllocFn, ccid, size, align uint64, isRealloc bool) (uint64, error) {
	d.cycles += cycMetadata + cycBoundsInsert
	aligned := align > metaSize
	var (
		base, user, meta uint64
		err              error
	)
	if aligned {
		base, err = d.under.Memalign(align, align+size)
		user = base + align
		meta = size<<typeBits | lg(align)<<(typeBits+sizeBits) | bitAligned
	} else {
		base, err = d.under.Malloc(metaSize + size)
		user = base + metaSize
		meta = size << typeBits
	}
	if err != nil {
		return 0, err
	}
	if err := d.space.RawStore64(user-metaSize, meta); err != nil {
		return 0, fmt.Errorf("defense: metadata store: %w", err)
	}
	d.boundsInsert(user, size)
	return user, nil
}

// sbFree validates the pointer against the live index FIRST — the
// underlying allocator recycles freed chunks' leading words for its
// free-list links, so the metadata word of a freed block is not
// trustworthy. A pointer with no live bounds is a double (or wild)
// free and aborts like a hardened allocator.
func sbFree(d *Defender, user, ccid uint64) error {
	d.cycles += cycMetadata + cycBoundsInsert
	if _, ok := d.boundsRemove(user); !ok {
		d.tel.Inc(telemetry.CtrDoubleFrees)
		d.tel.Event(telemetry.EvDoubleFree, ccid, user, 0)
		return fmt.Errorf("%w: %#x has no live bounds", ErrDoubleFree, user)
	}
	mi, err := d.decodeMeta(user)
	if err != nil {
		return err
	}
	return d.under.Free(mi.base)
}

// sbUsableSize reads the size from the live index (an exact-pointer
// probe, so a stale pointer errors instead of decoding garbage).
func sbUsableSize(d *Defender, user uint64) (uint64, error) {
	i := sort.Search(len(d.bounds), func(i int) bool { return d.bounds[i].user >= user })
	if i < len(d.bounds) && d.bounds[i].user == user {
		return d.bounds[i].size, nil
	}
	return 0, fmt.Errorf("defense: usable size of pointer %#x with no live bounds", user)
}

// sbAccess is the per-access hook: the byte range [addr, addr+n) must
// fall entirely inside the one live object whose user pointer is the
// greatest at or below addr. Everything else — overflow past an
// object's end, underflow into its metadata word, the gaps between
// chunks, unmapped memory — faults before the space is touched.
func sbAccess(d *Defender, addr, n, ccid uint64) error {
	if n == 0 {
		return nil
	}
	d.cycles += cycBoundsCheck
	i := sort.Search(len(d.bounds), func(i int) bool { return d.bounds[i].user > addr }) - 1
	if i >= 0 {
		if e := d.bounds[i]; addr-e.user+n <= e.size {
			return nil
		}
	}
	d.tel.Inc(telemetry.CtrBoundsFaults)
	d.tel.Event(telemetry.EvBoundsFault, ccid, addr, n)
	return fmt.Errorf("%w: [%#x, +%d) is not inside a live object", ErrOutOfBounds, addr, n)
}

// sbReset clears the live index, reusing its capacity (the Reset-seam
// contract every policy honors for pooled recycling).
func sbReset(d *Defender) {
	d.bounds = d.bounds[:0]
}

// boundsInsert adds one live object, keeping the index sorted by user
// address.
func (d *Defender) boundsInsert(user, size uint64) {
	i := sort.Search(len(d.bounds), func(i int) bool { return d.bounds[i].user >= user })
	d.bounds = append(d.bounds, boundsEntry{})
	copy(d.bounds[i+1:], d.bounds[i:])
	d.bounds[i] = boundsEntry{user: user, size: size}
}

// boundsRemove deletes the entry with exactly this user pointer.
func (d *Defender) boundsRemove(user uint64) (boundsEntry, bool) {
	i := sort.Search(len(d.bounds), func(i int) bool { return d.bounds[i].user >= user })
	if i >= len(d.bounds) || d.bounds[i].user != user {
		return boundsEntry{}, false
	}
	e := d.bounds[i]
	d.bounds = append(d.bounds[:i], d.bounds[i+1:]...)
	return e, true
}
