// The MESH-style policy: memory-efficient safe heap layout without
// guard pages. Three mechanisms, applied to EVERY allocation rather
// than only patched ones:
//
//   - segregated size classes: requests round up to a fixed class, so
//     objects of a class share geometry and freed slots are
//     interchangeable without fine-grained splitting;
//   - zero-fill on allocation: every buffer starts zeroed, closing
//     uninitialized-read leaks unconditionally;
//   - delayed reuse: every free is parked in the FIFO quarantine (the
//     same queue machinery HT uses for UAF-patched buffers) and only
//     returned to the allocator under quota pressure, so dangling
//     pointers see dead, stable memory instead of a recycled object —
//     and the marked metadata word catches double frees for as long
//     as the block is quarantined.
//
// The family has no spatial defense: overflow past a buffer's
// rounded class is a documented expected miss (Family.Containment).
package defense

import (
	"errors"
	"fmt"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/telemetry"
)

// meshClasses are the segregated allocation classes; larger requests
// round up to whole pages.
var meshClasses = [...]uint64{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}

// meshRound returns the class a request lands in.
func meshRound(size uint64) uint64 {
	for _, c := range meshClasses {
		if size <= c {
			return c
		}
	}
	return mem.PageAlignUp(size)
}

// meshAllocate places [meta][user(rounded)...] (or the aligned S3
// variant), stores the REQUESTED size in the metadata word (UsableSize
// reports what the caller asked for), and zero-fills the whole class
// slot.
func meshAllocate(d *Defender, fn heapsim.AllocFn, ccid, size, align uint64, isRealloc bool) (uint64, error) {
	d.cycles += cycMetadata + cycClassRound
	rounded := meshRound(size)
	aligned := align > metaSize
	var (
		base, user, meta uint64
		err              error
	)
	if aligned {
		base, err = d.under.Memalign(align, align+rounded)
		user = base + align
		meta = size<<typeBits | lg(align)<<(typeBits+sizeBits) | bitAligned
	} else {
		base, err = d.under.Malloc(metaSize + rounded)
		user = base + metaSize
		meta = size << typeBits
	}
	if err != nil {
		return 0, err
	}
	if err := d.space.RawStore64(user-metaSize, meta); err != nil {
		return 0, fmt.Errorf("defense: metadata store: %w", err)
	}
	// Safe layout: every buffer starts zeroed, whatever its history.
	d.stats.ZeroFills++
	d.tel.Inc(telemetry.CtrZeroFills)
	d.cycles += rounded / prog0CycBytesPerCycle
	if err := d.space.RawMemset(user, 0, rounded); err != nil {
		return 0, fmt.Errorf("defense: zero fill: %w", err)
	}
	return user, nil
}

// meshFree quarantines every block: decode the metadata word (the
// freed sentinel of a still-quarantined block surfaces here as a
// double free), then park it in the FIFO. The quota evicts the oldest
// blocks to the real allocator; after eviction the block's metadata
// belongs to the allocator again and double-free detection for it
// lapses — the documented quota limit of delayed reuse.
func meshFree(d *Defender, user, ccid uint64) error {
	d.cycles += cycMetadata
	mi, err := d.decodeMeta(user)
	if err != nil {
		if d.tel != nil && errors.Is(err, ErrDoubleFree) {
			d.tel.Inc(telemetry.CtrDoubleFrees)
			d.tel.Event(telemetry.EvDoubleFree, ccid, user, 0)
		}
		return err
	}
	return d.deferFree(mi, user, ccid)
}
