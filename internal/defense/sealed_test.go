package defense

import (
	"math/rand"
	"testing"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
)

// randomSet builds a patch set with n pseudo-random entries.
func randomSet(rng *rand.Rand, n int) *patch.Set {
	set := patch.NewSet()
	fns := []heapsim.AllocFn{heapsim.FnMalloc, heapsim.FnCalloc, heapsim.FnRealloc, heapsim.FnMemalign}
	for i := 0; i < n; i++ {
		set.Add(patch.Patch{
			Fn:    fns[rng.Intn(len(fns))],
			CCID:  rng.Uint64() >> uint(rng.Intn(40)),
			Types: patch.TypeMask(1 + rng.Intn(7)),
		})
	}
	return set
}

// TestSealedTableMatchesInSpaceTable: the shared sealed table must
// agree with the in-space table — type mask AND probe count — for
// present keys, absent keys, and near-miss keys, across table sizes.
func TestSealedTableMatchesInSpaceTable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 13, 200, 3000} {
		set := randomSet(rng, n)
		space, err := mem.NewSpace(mem.Config{Limit: 1 << 28})
		if err != nil {
			t.Fatal(err)
		}
		inSpace, err := newPatchTable(space, set)
		if err != nil {
			t.Fatal(err)
		}
		sealed := SealTable(set)

		probe := func(k patch.Key) {
			wantTypes, wantProbes, err := inSpace.lookup(k)
			if err != nil {
				t.Fatalf("in-space lookup: %v", err)
			}
			gotTypes, gotProbes := sealed.Lookup(k)
			if gotTypes != wantTypes || gotProbes != wantProbes {
				t.Fatalf("n=%d key=%+v: sealed (%v, %d probes) != in-space (%v, %d probes)",
					n, k, gotTypes, gotProbes, wantTypes, wantProbes)
			}
		}
		for _, p := range set.Patches() {
			probe(p.Key())
		}
		for i := 0; i < 500; i++ {
			probe(patch.Key{
				Fn:   heapsim.AllocFn(1 + rng.Intn(5)),
				CCID: rng.Uint64() >> uint(rng.Intn(40)),
			})
		}
	}
}

// TestDefenderSharedTableBehaviour: a Defender over a shared table must
// behave identically to one with a private in-space table: same
// patched-allocation decisions, same addresses, same stats.
func TestDefenderSharedTableBehaviour(t *testing.T) {
	set := patch.NewSet()
	set.Add(patch.Patch{Fn: heapsim.FnMalloc, CCID: 0xC0FFEE, Types: patch.TypeOverflow | patch.TypeUseAfterFree})
	set.Add(patch.Patch{Fn: heapsim.FnMalloc, CCID: 0xF00D, Types: patch.TypeUninitRead})

	runDefender := func(d *Defender) ([]uint64, Stats) {
		var addrs []uint64
		for _, ccid := range []uint64{0xC0FFEE, 0xF00D, 0x1234, 0xC0FFEE} {
			p, err := d.Malloc(ccid, 256)
			if err != nil {
				t.Fatalf("malloc ccid %#x: %v", ccid, err)
			}
			addrs = append(addrs, p)
		}
		for _, p := range addrs {
			if err := d.Free(p); err != nil {
				t.Fatalf("free %#x: %v", p, err)
			}
		}
		return addrs, d.Stats()
	}

	spaceA, _ := mem.NewSpace(mem.Config{})
	private, err := New(spaceA, Config{Patches: set})
	if err != nil {
		t.Fatal(err)
	}
	privAddrs, privStats := runDefender(private)

	spaceB, _ := mem.NewSpace(mem.Config{})
	shared, err := New(spaceB, Config{SharedTable: SealTable(set)})
	if err != nil {
		t.Fatal(err)
	}
	sharedStats := func() Stats { return shared.Stats() }
	_ = sharedStats
	sharedAddrs, shStats := runDefender(shared)

	if privStats != shStats {
		t.Errorf("stats diverge: private %+v shared %+v", privStats, shStats)
	}
	if privStats.PatchedAllocs != 3 {
		t.Errorf("PatchedAllocs = %d, want 3", privStats.PatchedAllocs)
	}
	// The shared-table space maps no table pages, so absolute addresses
	// shift by the table size — but the address DELTAS (heap layout
	// decisions) must match exactly.
	for i := 1; i < len(privAddrs); i++ {
		dp := privAddrs[i] - privAddrs[0]
		ds := sharedAddrs[i] - sharedAddrs[0]
		if dp != ds {
			t.Errorf("allocation layout diverges at %d: delta %#x vs %#x", i, dp, ds)
		}
	}
	if shared.PatchTableWritable() {
		t.Error("shared-table Defender reports a writable table")
	}
}

// TestDefenderResetPrivateTable: a standalone Defender (private
// in-space table) must rebuild its sealed table on Reset and behave
// exactly like a fresh one.
func TestDefenderResetPrivateTable(t *testing.T) {
	set := patch.NewSet()
	set.Add(patch.Patch{Fn: heapsim.FnMalloc, CCID: 0xBEEF, Types: patch.AllTypes})

	space, _ := mem.NewSpace(mem.Config{})
	d, err := New(space, Config{Patches: set})
	if err != nil {
		t.Fatal(err)
	}
	exercise := func() (uint64, Stats) {
		p, err := d.Malloc(0xBEEF, 100)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Free(p); err != nil {
			t.Fatal(err)
		}
		q, err := d.Malloc(0x999, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Free(q); err != nil {
			t.Fatal(err)
		}
		return p, d.Stats()
	}
	p1, s1 := exercise()

	space.Reset()
	if err := d.Reset(); err != nil {
		t.Fatal(err)
	}
	if d.PatchTableWritable() {
		t.Error("rebuilt patch table is writable")
	}
	p2, s2 := exercise()
	if p1 != p2 {
		t.Errorf("patched allocation at %#x after Reset, want %#x", p2, p1)
	}
	if s1 != s2 {
		t.Errorf("stats after Reset %+v, want %+v", s2, s1)
	}
	if s2.PatchedAllocs != 1 || s2.GuardPages != 1 || s2.DeferredFrees != 1 {
		t.Errorf("patched path not fully exercised after Reset: %+v", s2)
	}
}

// TestDefenderResetSharedTableAllocFree: with a shared table, the
// whole malloc/free + space/defender reset cycle must be free of Go
// allocations in steady state — the fleet's per-request recycle pin.
func TestDefenderResetSharedTableAllocFree(t *testing.T) {
	set := patch.NewSet()
	set.Add(patch.Patch{Fn: heapsim.FnMalloc, CCID: 0xBEEF, Types: patch.TypeUninitRead})
	table := SealTable(set)
	space, _ := mem.NewSpace(mem.Config{})
	d, err := New(space, Config{SharedTable: table})
	if err != nil {
		t.Fatal(err)
	}
	cycle := func() {
		p, err := d.Malloc(0xBEEF, 128)
		if err != nil {
			t.Fatal(err)
		}
		q, err := d.Malloc(0x77, 512)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Free(p); err != nil {
			t.Fatal(err)
		}
		if err := d.Free(q); err != nil {
			t.Fatal(err)
		}
		space.Reset()
		if err := d.Reset(); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm
	if avg := testing.AllocsPerRun(100, cycle); avg > 0 {
		t.Errorf("shared-table defender recycle allocates %.1f per run, want 0", avg)
	}
}
