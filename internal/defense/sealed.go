package defense

import (
	"sync/atomic"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/patch"
)

// SealedTable is the patch hash table in its cross-worker shared form:
// the same open-addressing layout as the in-space patchTable, built
// once from a patch.Set and immutable thereafter. Where the in-space
// table gets its integrity from read-only page protection (a write
// faults), the sealed table gets it from Go immutability: no slot is
// ever written after SealTable returns, so any number of goroutines
// may probe it concurrently with plain loads and no synchronization —
// the lock-free shared read plane of the fleet runtime. This mirrors
// the paper's deployment, where every thread of the defended process
// reads one read-only table mapped at startup.
//
// A SealedTable lives outside any mem.Space, so recycling a worker's
// space (mem.Space.Reset) never touches it and a Defender using one
// reconstructs in O(1) instead of re-materializing the table.
type SealedTable struct {
	slots   []uint64 // interleaved [key, value] pairs; len = 2 * nslots
	mask    uint64   // nslots - 1 (nslots is a power of two)
	entries int

	// hits, when enabled, counts key matches per slot across every
	// worker probing this table — the fleet-wide per-patch hit tally.
	// The atomic add sits inside the key-match branch only, so the
	// (overwhelmingly common) miss path is unchanged. The slice itself
	// is set before the table is shared and never reassigned, keeping
	// the structure immutable in layout even though the counters mutate.
	hits []atomic.Uint64
}

// SealTable builds the immutable shared table from a patch set, using
// the identical sizing, key packing, and probe sequence as the
// in-space table so the two are behaviorally interchangeable.
func SealTable(set *patch.Set) *SealedTable {
	if set == nil {
		set = patch.NewSet()
	}
	n := uint64(1)
	for n < uint64(set.Len())*2+1 {
		n <<= 1
	}
	if n < 64 {
		n = 64
	}
	t := &SealedTable{slots: make([]uint64, 2*n), mask: n - 1}
	for _, p := range set.Patches() {
		t.insert(packKey(p.Key()), uint64(p.Types))
	}
	t.entries = set.Len()
	return t
}

func (t *SealedTable) insert(key, value uint64) {
	for i := mix(key); ; i++ {
		off := (i & t.mask) * 2
		switch t.slots[off] {
		case 0:
			t.slots[off] = key
			t.slots[off+1] = value
			return
		case key:
			t.slots[off+1] |= value
			return
		}
	}
}

// Lookup probes for {FUN, CCID} and reports the probe count (for the
// same per-probe cycle accounting the in-space table uses). It cannot
// fault: the table is not addressable from any simulated space, so
// unlike patchTable.lookup there is no corrupted-table error path.
func (t *SealedTable) Lookup(k patch.Key) (patch.TypeMask, int) {
	key := packKey(k)
	probes := 0
	for i := mix(key); ; i++ {
		probes++
		off := (i & t.mask) * 2
		cur := t.slots[off]
		if cur == 0 {
			return 0, probes
		}
		if cur == key {
			if t.hits != nil {
				t.hits[i&t.mask].Add(1)
			}
			return patch.TypeMask(t.slots[off+1]), probes
		}
	}
}

// Probe is Lookup minus the per-slot hit tally: the side-effect-free
// variant backing Defender.ProbePatched. Verdict-cache revalidation in
// the VM and compiled engines probes the table once per generation
// bump; counting those probes in the fleet-wide per-patch hit tally
// would make the tally engine-dependent (it must count defended
// allocations, which only the allocation-path Lookup performs).
func (t *SealedTable) Probe(k patch.Key) patch.TypeMask {
	key := packKey(k)
	for i := mix(key); ; i++ {
		off := (i & t.mask) * 2
		cur := t.slots[off]
		if cur == 0 {
			return 0
		}
		if cur == key {
			return patch.TypeMask(t.slots[off+1])
		}
	}
}

// Entries reports the number of patches sealed into the table.
func (t *SealedTable) Entries() int { return t.entries }

// EnableHitCounts allocates the per-slot hit counters. It must be
// called before the table is shared across goroutines (typically right
// after SealTable); calling it again is a no-op.
func (t *SealedTable) EnableHitCounts() {
	if t.hits == nil {
		t.hits = make([]atomic.Uint64, len(t.slots)/2)
	}
}

// HitCounts reports the fleet-wide lookup hits per installed patch key,
// or nil when hit counting was never enabled. It may be called while
// workers are still probing; each count is read atomically.
func (t *SealedTable) HitCounts() map[patch.Key]uint64 {
	if t.hits == nil {
		return nil
	}
	out := make(map[patch.Key]uint64, t.entries)
	for slot := range t.hits {
		n := t.hits[slot].Load()
		if n == 0 {
			continue
		}
		key := t.slots[slot*2]
		if key == tableKeySentinel {
			key = 0
		}
		out[patch.Key{Fn: heapsim.AllocFn(key >> 56), CCID: key & (1<<56 - 1)}] = n
	}
	return out
}
