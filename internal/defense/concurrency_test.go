package defense

import (
	"testing"

	"heaptherapy/internal/analysis"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
)

// mtProgram is a request handler with a use-after-free on its error
// path: the freed object is regroomed by an attacker allocation and
// then dereferenced.
func mtProgram() *prog.Program {
	const good, evil = 0x5AFE, 0xBAD
	return prog.MustLink(&prog.Program{
		Name: "mt-defended",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Call{Callee: "serve"},
			}},
			"serve": {Body: []prog.Stmt{
				prog.ReadInput{Dst: "kind", N: prog.C(1)},
				prog.Alloc{Dst: "obj", Size: prog.C(96)},
				prog.Store{Base: prog.V("obj"), Src: prog.C(good), N: prog.C(8)},
				prog.If{Cond: prog.Eq(prog.And(prog.V("kind"), prog.C(0xFF)), prog.C(0xEE)), Then: []prog.Stmt{
					// The bug: free, regroom, stale dereference.
					prog.FreeStmt{Ptr: prog.V("obj")},
					prog.Alloc{Dst: "groom", Size: prog.C(96)},
					prog.Store{Base: prog.V("groom"), Src: prog.C(evil), N: prog.C(8)},
					prog.Load{Dst: "h", Base: prog.V("obj"), N: prog.C(8)},
					prog.FreeStmt{Ptr: prog.V("groom")},
					prog.OutputVar{Src: "h"},
					prog.Return{},
				}},
				prog.Load{Dst: "h", Base: prog.V("obj"), N: prog.C(8)},
				prog.FreeStmt{Ptr: prog.V("obj")},
				prog.OutputVar{Src: "h"},
			}},
		},
	})
}

// TestDefenseUnderConcurrency runs a multithreaded server over ONE
// defended heap: benign threads plus one whose request drives the
// use-after-free, with the vulnerable context patched. The defense
// must recognize the patched context in whichever thread it fires,
// defer the block, and keep every other thread's behaviour intact —
// the paper's Nginx/MySQL deployment scenario with thread-local V.
func TestDefenseUnderConcurrency(t *testing.T) {
	p := mtProgram()
	plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}

	// Offline: patch generation from the single-threaded replay.
	a := &analysis.Analyzer{Coder: coder}
	rep, err := a.Analyze(p, []byte{0xEE})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Patches.Len() == 0 {
		t.Fatalf("no patches from attack replay; warnings: %v", rep.Warnings)
	}

	// Sanity: undefended, the attack thread reads the groomed value.
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	nat, err := prog.NewNativeBackend(space)
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{{0x00}, {0xEE}, {0x00}, {0x00}}
	natRes, err := prog.RunThreads(p, prog.Config{Backend: nat, Coder: coder}, inputs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := (prog.Value{Bytes: natRes[1].Output}).Uint(); got != 0xBAD {
		t.Fatalf("undefended attack thread read %#x, want groomed 0xBAD", got)
	}

	// Online: defended, multithreaded, same patches.
	dspace, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewBackend(dspace, Config{Patches: rep.Patches})
	if err != nil {
		t.Fatal(err)
	}
	defRes, err := prog.RunThreads(p, prog.Config{Backend: db, Coder: coder}, inputs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range defRes {
		if res.Crashed() {
			t.Fatalf("thread %d crashed under defense: %v", i, res.Fault)
		}
	}
	// The attack thread now reads the stale (safe) value, not EVIL.
	if got := (prog.Value{Bytes: defRes[1].Output}).Uint(); got != 0x5AFE {
		t.Errorf("defended attack thread read %#x, want stale 0x5AFE", got)
	}
	// Benign threads unchanged.
	for _, i := range []int{0, 2, 3} {
		if got := (prog.Value{Bytes: defRes[i].Output}).Uint(); got != 0x5AFE {
			t.Errorf("benign thread %d read %#x, want 0x5AFE", i, got)
		}
	}
	st := db.Defender().Stats()
	// The patched allocation context fires in EVERY thread (same code
	// path, same CCID thanks to thread-local V), so all four obj
	// buffers are deferred; the groom buffer's context stays unpatched.
	if st.DeferredFrees != 4 {
		t.Errorf("DeferredFrees = %d, want 4 (one per thread's patched-context buffer)", st.DeferredFrees)
	}
	if st.PatchedAllocs != 4 {
		t.Errorf("PatchedAllocs = %d, want 4", st.PatchedAllocs)
	}
	if err := db.Defender().Heap().CheckIntegrity(); err != nil {
		t.Fatalf("defended shared heap integrity: %v", err)
	}
}
