package defense

import (
	"sync"
	"testing"

	"heaptherapy/internal/analysis"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
)

// mtProgram is a request handler with a use-after-free on its error
// path: the freed object is regroomed by an attacker allocation and
// then dereferenced.
func mtProgram() *prog.Program {
	const good, evil = 0x5AFE, 0xBAD
	return prog.MustLink(&prog.Program{
		Name: "mt-defended",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Call{Callee: "serve"},
			}},
			"serve": {Body: []prog.Stmt{
				prog.ReadInput{Dst: "kind", N: prog.C(1)},
				prog.Alloc{Dst: "obj", Size: prog.C(96)},
				prog.Store{Base: prog.V("obj"), Src: prog.C(good), N: prog.C(8)},
				prog.If{Cond: prog.Eq(prog.And(prog.V("kind"), prog.C(0xFF)), prog.C(0xEE)), Then: []prog.Stmt{
					// The bug: free, regroom, stale dereference.
					prog.FreeStmt{Ptr: prog.V("obj")},
					prog.Alloc{Dst: "groom", Size: prog.C(96)},
					prog.Store{Base: prog.V("groom"), Src: prog.C(evil), N: prog.C(8)},
					prog.Load{Dst: "h", Base: prog.V("obj"), N: prog.C(8)},
					prog.FreeStmt{Ptr: prog.V("groom")},
					prog.OutputVar{Src: "h"},
					prog.Return{},
				}},
				prog.Load{Dst: "h", Base: prog.V("obj"), N: prog.C(8)},
				prog.FreeStmt{Ptr: prog.V("obj")},
				prog.OutputVar{Src: "h"},
			}},
		},
	})
}

// TestDefenseUnderConcurrency runs a multithreaded server over ONE
// defended heap: benign threads plus one whose request drives the
// use-after-free, with the vulnerable context patched. The defense
// must recognize the patched context in whichever thread it fires,
// defer the block, and keep every other thread's behaviour intact —
// the paper's Nginx/MySQL deployment scenario with thread-local V.
func TestDefenseUnderConcurrency(t *testing.T) {
	p := mtProgram()
	plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}

	// Offline: patch generation from the single-threaded replay.
	a := &analysis.Analyzer{Coder: coder}
	rep, err := a.Analyze(p, []byte{0xEE})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Patches.Len() == 0 {
		t.Fatalf("no patches from attack replay; warnings: %v", rep.Warnings)
	}

	// Sanity: undefended, the attack thread reads the groomed value.
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	nat, err := prog.NewNativeBackend(space)
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{{0x00}, {0xEE}, {0x00}, {0x00}}
	natRes, err := prog.RunThreads(p, prog.Config{Backend: nat, Coder: coder}, inputs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := (prog.Value{Bytes: natRes[1].Output}).Uint(); got != 0xBAD {
		t.Fatalf("undefended attack thread read %#x, want groomed 0xBAD", got)
	}

	// Online: defended, multithreaded, same patches.
	dspace, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewBackend(dspace, Config{Patches: rep.Patches})
	if err != nil {
		t.Fatal(err)
	}
	defRes, err := prog.RunThreads(p, prog.Config{Backend: db, Coder: coder}, inputs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range defRes {
		if res.Crashed() {
			t.Fatalf("thread %d crashed under defense: %v", i, res.Fault)
		}
	}
	// The attack thread now reads the stale (safe) value, not EVIL.
	if got := (prog.Value{Bytes: defRes[1].Output}).Uint(); got != 0x5AFE {
		t.Errorf("defended attack thread read %#x, want stale 0x5AFE", got)
	}
	// Benign threads unchanged.
	for _, i := range []int{0, 2, 3} {
		if got := (prog.Value{Bytes: defRes[i].Output}).Uint(); got != 0x5AFE {
			t.Errorf("benign thread %d read %#x, want 0x5AFE", i, got)
		}
	}
	st := db.Defender().Stats()
	// The patched allocation context fires in EVERY thread (same code
	// path, same CCID thanks to thread-local V), so all four obj
	// buffers are deferred; the groom buffer's context stays unpatched.
	if st.DeferredFrees != 4 {
		t.Errorf("DeferredFrees = %d, want 4 (one per thread's patched-context buffer)", st.DeferredFrees)
	}
	if st.PatchedAllocs != 4 {
		t.Errorf("PatchedAllocs = %d, want 4", st.PatchedAllocs)
	}
	if err := db.Defender().Heap().CheckIntegrity(); err != nil {
		t.Fatalf("defended shared heap integrity: %v", err)
	}
}

// TestSealedTableCrossWorkerRace locks in the fleet sharing model
// under the race detector: N goroutines, each owning a private
// mem.Space + Backend, all probing ONE SealedTable concurrently —
// the one-backend-per-goroutine contract documented on Backend. Run
// with -race, any write to the sealed table or accidental cross-worker
// state would be reported.
func TestSealedTableCrossWorkerRace(t *testing.T) {
	p := mtProgram()
	plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}
	a := &analysis.Analyzer{Coder: coder}
	rep, err := a.Analyze(p, []byte{0xEE})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Patches.Len() == 0 {
		t.Fatal("no patches from attack replay")
	}
	table := SealTable(rep.Patches)

	const workers = 8
	const rounds = 16
	var wg sync.WaitGroup
	outputs := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			space, err := mem.NewSpace(mem.Config{})
			if err != nil {
				t.Error(err)
				return
			}
			b, err := NewBackend(space, Config{SharedTable: table})
			if err != nil {
				t.Error(err)
				return
			}
			it, err := prog.New(p, prog.Config{Backend: b, Coder: coder})
			if err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < rounds; r++ {
				// Odd workers replay the attack (patched context fires),
				// even workers serve benign requests — both probe the
				// shared table on every allocation.
				in := []byte{0x00}
				if w%2 == 1 {
					in = []byte{0xEE}
				}
				res, err := it.Run(in)
				if err != nil {
					t.Errorf("worker %d round %d: %v", w, r, err)
					return
				}
				if res.Crashed() {
					t.Errorf("worker %d round %d crashed under defense: %v", w, r, res.Fault)
					return
				}
				outputs[w] = append(outputs[w], (prog.Value{Bytes: res.Output}).Uint())
				space.Reset()
				if err := b.Reset(); err != nil {
					t.Errorf("worker %d reset: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		for r, got := range outputs[w] {
			if got != 0x5AFE {
				t.Errorf("worker %d round %d read %#x, want 0x5AFE", w, r, got)
			}
		}
	}
}
