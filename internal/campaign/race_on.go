//go:build race

package campaign

// raceEnabled lets tests scale their seed counts down under the race
// detector, whose 5-20x slowdown would otherwise push the full matrix
// past CI timeouts on small runners. Every code path still runs raced
// — only the repetition count shrinks.
const raceEnabled = true
