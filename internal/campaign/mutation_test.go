package campaign

import (
	"testing"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
)

// shortHeap is the deliberately injected allocator bug: it silently
// under-allocates by 8 bytes, so a caller's full-size write tramples
// the next chunk's header. The arena is established lazily (first
// allocation) so the defended cells' patch table can map first, the
// same discipline a real constructor-ordered library follows.
type shortHeap struct {
	space *mem.Space
	heap  *heapsim.Heap
}

func (s *shortHeap) lazy() (*heapsim.Heap, error) {
	if s.heap == nil {
		h, err := heapsim.New(s.space)
		if err != nil {
			return nil, err
		}
		s.heap = h
	}
	return s.heap, nil
}

func (s *shortHeap) mangle(size uint64) uint64 {
	if size >= 24 {
		return size - 8
	}
	return size
}

func (s *shortHeap) Malloc(size uint64) (uint64, error) {
	h, err := s.lazy()
	if err != nil {
		return 0, err
	}
	return h.Malloc(s.mangle(size))
}

func (s *shortHeap) Calloc(n, size uint64) (uint64, error) {
	h, err := s.lazy()
	if err != nil {
		return 0, err
	}
	return h.Calloc(1, s.mangle(n*size))
}

func (s *shortHeap) Realloc(ptr, size uint64) (uint64, error) {
	h, err := s.lazy()
	if err != nil {
		return 0, err
	}
	return h.Realloc(ptr, s.mangle(size))
}

func (s *shortHeap) Memalign(align, size uint64) (uint64, error) {
	h, err := s.lazy()
	if err != nil {
		return 0, err
	}
	return h.Memalign(align, s.mangle(size))
}

func (s *shortHeap) Free(ptr uint64) error {
	h, err := s.lazy()
	if err != nil {
		return err
	}
	return h.Free(ptr)
}

func (s *shortHeap) UsableSize(ptr uint64) (uint64, error) {
	h, err := s.lazy()
	if err != nil {
		return 0, err
	}
	return h.UsableSize(ptr)
}

// CheckIntegrity exposes the real heap's walker so the campaign
// walker audits the genuine metadata.
func (s *shortHeap) CheckIntegrity() error {
	if s.heap == nil {
		return nil
	}
	return s.heap.CheckIntegrity()
}

// failsUnderShortHeap runs p over the buggy allocator with the
// invariant walker attached and reports whether the bug manifested
// (walker violation or allocator panic).
func failsUnderShortHeap(p *prog.Program, input []byte) bool {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return false
	}
	sh := &shortHeap{space: space}
	backend, err := prog.NewNativeBackendWithAllocator(space, sh)
	if err != nil {
		return false
	}
	ex, err := prog.NewExec(p, prog.Config{Backend: backend, MaxSteps: 1 << 20})
	if err != nil {
		return false
	}
	w := NewWalker(space, sh)
	w.Attach(ex, 16)
	panicked := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
			}
		}()
		ex.Run(input)
	}()
	w.Check()
	return panicked || w.Violation() != nil
}

// TestMutationCaughtByOracle slides the buggy allocator under the
// full matrix: the rig must flag the corruption it causes. This is
// the harness's own acceptance test — if a silently under-allocating
// heap survives the oracle, the oracle is decorative.
func TestMutationCaughtByOracle(t *testing.T) {
	o := Oracle{
		AllocatorFor: func(kind AllocKind, space *mem.Space) (heapsim.Allocator, error) {
			if kind == AllocHeap {
				return &shortHeap{space: space}, nil
			}
			return heapsim.NewPool(space)
		},
	}
	caught := false
	for seed := uint64(0); seed < 50 && !caught; seed++ {
		g, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		caught = !o.Check(g).OK()
	}
	if !caught {
		t.Fatal("oracle passed 50 seeds over an under-allocating heap")
	}
}

// TestMutationCaughtAndReduced: the walker alone must catch the bug on
// a generated program, and the reducer must shrink the witness to a
// handful of statements while the walker still fires on it.
func TestMutationCaughtAndReduced(t *testing.T) {
	if raceEnabled {
		// The scan+reduce loop is strictly single-goroutine, so the
		// race detector adds minutes of slowdown and zero coverage.
		t.Skip("single-goroutine reduction loop; skipped under -race")
	}
	var g *Generated
	for seed := uint64(0); seed < 50; seed++ {
		c, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if failsUnderShortHeap(c.Program, c.Benign) {
			g = c
			break
		}
	}
	if g == nil {
		t.Fatal("walker never fired over the buggy allocator in 50 seeds")
	}
	fails := func(p *prog.Program) bool { return failsUnderShortHeap(p, g.Benign) }
	reduced := Reduce(g.Program, fails, 0)
	n := CountStatements(reduced)
	if !fails(reduced) {
		t.Fatal("reduced witness no longer trips the walker")
	}
	if n > 15 {
		t.Fatalf("reduced witness has %d statements, want <= 15 (seed %d)", n, g.Seed)
	}
	t.Logf("seed %d: reduced to %d statements", g.Seed, n)
}
