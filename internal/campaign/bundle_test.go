package campaign

import (
	"bytes"
	"strings"
	"testing"

	"heaptherapy/internal/telemetry"
)

// TestBundleRoundTrip: a live-captured bundle survives the JSON
// round trip with its inputs intact.
func TestBundleRoundTrip(t *testing.T) {
	benign, attack := []byte{0, 4}, []byte{0xFF, 0xFF}
	b := LiveBundle("nginx-vulnerable", benign, attack, "wild fault at 0x203000",
		[]telemetry.Event{{Kind: telemetry.EvFault, CCID: 1, Site: 0x203000, Arg: 65535}})

	var buf bytes.Buffer
	if err := b.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindLiveCrash || got.Source != "nginx-vulnerable" {
		t.Errorf("kind/source = %q/%q", got.Kind, got.Source)
	}
	in, err := got.AttackInput()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, attack) {
		t.Errorf("attack input %x, want %x", in, attack)
	}
	in, err = got.BenignInput()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, benign) {
		t.Errorf("benign input %x, want %x", in, benign)
	}
	if len(got.Failures) != 1 || got.Failures[0].Class != FailDefenseCrash {
		t.Errorf("failures = %+v", got.Failures)
	}
	if len(got.Traces) != 1 || len(got.Traces[0].Events) != 1 {
		t.Errorf("traces = %+v", got.Traces)
	}
}

// TestDecodeBundleRejects: garbage JSON and non-hex inputs fail.
func TestDecodeBundleRejects(t *testing.T) {
	if _, err := DecodeBundle(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := DecodeBundle(strings.NewReader(`{"attack":"zz"}`)); err == nil {
		t.Error("non-hex attack input accepted")
	}
	if _, err := DecodeBundle(strings.NewReader(`{"attack":"00","benign":"zz"}`)); err == nil {
		t.Error("non-hex benign input accepted")
	}
}

// TestCampaignBundleIngest: a bundle produced by the campaign's own
// encoder (buildBundle) decodes back to the generator's exact inputs —
// the interchange format is self-contained across encode and ingest.
func TestCampaignBundleIngest(t *testing.T) {
	g, err := Generate(7, GenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{Seed: g.Seed, Kind: g.Kind.String()}
	rep.fail(FailDefenseCrash, "defended/heap/tree/attack", "synthetic")
	b := buildBundle(g, rep, nil)

	var buf bytes.Buffer
	if err := b.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != g.Seed || got.Kind != g.Kind.String() {
		t.Errorf("seed/kind = %d/%q, want %d/%q", got.Seed, got.Kind, g.Seed, g.Kind)
	}
	in, err := got.AttackInput()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, g.Attack) {
		t.Errorf("bundle attack %x, regenerated %x", in, g.Attack)
	}
	if len(got.Failures) != 1 || got.Failures[0].Class != FailDefenseCrash {
		t.Errorf("failures = %+v", got.Failures)
	}
}
