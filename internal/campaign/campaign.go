// Package campaign is the repo's standing correctness rig: a seeded
// random program generator that injects heap vulnerabilities with
// known ground truth, a heap-invariant walker that audits allocator
// and page-table state between interpreter quanta, a differential
// oracle that runs every generated program across the full execution
// matrix (tree-walker vs VM engine, boundary-tag heap vs pool
// allocator, native vs shadow-analyzed vs defended-with-generated-
// patches), and a minimizing reducer that shrinks failing programs
// while preserving the failure signature.
//
// The paper's central claim — allocator-agnostic, calling-context-
// keyed defenses neutralize (almost) all heap vulnerabilities — is a
// universally quantified statement, so the rig checks it over an
// unbounded family of adversarial programs rather than a fixed
// corpus: every seed yields a new program, a benign input, an attack
// input, and a machine-checkable expectation per matrix cell.
package campaign

import (
	"fmt"

	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

// VulnKind is the class of vulnerability a generated program carries.
type VulnKind uint8

// Vulnerability kinds. Each maps to a ground-truth patch type the
// offline analysis must discover (GroundTruth) and a defense outcome
// the oracle asserts (see oracle.go).
const (
	// OverflowRead leaks an adjacent buffer through an attacker-sized
	// over-read (Heartbleed's shape).
	OverflowRead VulnKind = iota
	// OverflowWrite clobbers an adjacent buffer (and, natively, chunk
	// metadata) through an attacker-bounded write loop.
	OverflowWrite
	// UnderflowRead reads before the buffer start; the paper's guard
	// page sits after the buffer, so this is one of the "(almost)"
	// cases: detected offline, not neutralized online.
	UnderflowRead
	// UAFRead reads a dangling pointer whose chunk has been reused.
	UAFRead
	// UAFWrite writes through a dangling pointer into reused memory.
	UAFWrite
	// DoubleFree frees the same pointer twice.
	DoubleFree
	// UninitRead outputs never-written heap bytes that natively still
	// hold a previous allocation's secrets.
	UninitRead

	numKinds
)

// AllKinds lists every vulnerability kind in declaration order.
func AllKinds() []VulnKind {
	ks := make([]VulnKind, 0, numKinds)
	for k := VulnKind(0); k < numKinds; k++ {
		ks = append(ks, k)
	}
	return ks
}

func (k VulnKind) String() string {
	switch k {
	case OverflowRead:
		return "overflow-read"
	case OverflowWrite:
		return "overflow-write"
	case UnderflowRead:
		return "underflow-read"
	case UAFRead:
		return "uaf-read"
	case UAFWrite:
		return "uaf-write"
	case DoubleFree:
		return "double-free"
	case UninitRead:
		return "uninit-read"
	default:
		return fmt.Sprintf("VulnKind(%d)", uint8(k))
	}
}

// ParseKind parses a kind name as printed by String.
func ParseKind(s string) (VulnKind, error) {
	for _, k := range AllKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("campaign: unknown vulnerability kind %q", s)
}

// GroundTruth is the patch type the offline analysis must attribute
// to the injected site. Underflows are red-zone "before" hits, which
// shadow analysis classifies as overflow; double frees are
// use-after-free of the chunk's identity.
func (k VulnKind) GroundTruth() patch.TypeMask {
	switch k {
	case OverflowRead, OverflowWrite, UnderflowRead:
		return patch.TypeOverflow
	case UAFRead, UAFWrite, DoubleFree:
		return patch.TypeUseAfterFree
	case UninitRead:
		return patch.TypeUninitRead
	default:
		return 0
	}
}

// Leaky reports whether the kind's attack exfiltrates secret bytes
// (the oracle then asserts the secret never appears in defended
// output).
func (k VulnKind) Leaky() bool {
	return k == OverflowRead || k == UAFRead || k == UninitRead
}

// Clobbering reports whether the kind's attack overwrites a sentinel
// that defense must preserve.
func (k VulnKind) Clobbering() bool {
	return k == OverflowWrite || k == UAFWrite
}

// Generated is one generated campaign case: a linked program (built
// from AST, round-tripped through the progtext printer and parser so
// Source is always an exact textual twin), its two inputs, and the
// injected ground truth.
type Generated struct {
	// Seed reproduces the case bit-for-bit via Generate.
	Seed uint64
	// Kind is the injected vulnerability class.
	Kind VulnKind
	// Program is the linked program (parsed back from Source).
	Program *prog.Program
	// Source is the progtext rendering of the program.
	Source string
	// Benign keeps every access in bounds; Attack drives the injected
	// site out of bounds (or down the premature-free path).
	Benign []byte
	Attack []byte
	// Secret is planted where leak attacks can reach it natively; it
	// must never appear in shadow-clean or defended output (leak
	// kinds only).
	Secret []byte
	// Sentinel must survive in output unless the attack clobbers it
	// natively (clobbering kinds only).
	Sentinel []byte
}
