package campaign

import (
	"bytes"
	"fmt"

	"heaptherapy/internal/analysis"
	"heaptherapy/internal/core"
	"heaptherapy/internal/defense"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/shadow"
	"heaptherapy/internal/telemetry"
)

// Workbench is the pooled oracle: it runs the same differential matrix
// as Oracle.Check, but over recycled substrate. Oracle.Check rebuilds
// every space, allocator, backend, telemetry collector, and executor
// for each of the 30 cells of every seed — ~114 MB and ~6700
// allocations per seed, almost all of it construction. The workbench
// keeps one substrate instance per cell class alive across seeds and
// recycles it through the proven Reset contracts (mem.Space's
// dirty-page reset, the shadow backend's plane watermark, the
// Defender's table re-establishment, the allocators' arena resets) —
// the fleet runtime's pooled-context idiom applied to the whole oracle
// matrix. The program also compiles once per seed, with the immutable
// Compiled shared by every VM and tier-up cell.
//
// A Workbench is NOT safe for concurrent use; the sharded campaign
// runtime (shard.go) gives each worker goroutine its own.
//
// TestWorkbenchBitIdentical proves Check's reports byte-identical to
// Oracle.Check's fresh-construction path over a corpus of seeds.
type Workbench struct {
	oracle Oracle

	// Shadow substrate, shared by every shadow cell of a seed and reset
	// between cells.
	shadowSpace *mem.Space
	shadowBack  *shadow.Backend

	// Native substrate, one per allocator kind; defended substrate,
	// one per (allocator kind, policy family) pair — a family's
	// Defender carries family-private state (the bounds index, the
	// blanket quarantine), so benches are never shared across policies.
	native   [2]*nativeBench
	defended map[defendedKey]*defendedBench
}

// defendedKey identifies one defended bench class.
type defendedKey struct {
	alloc  AllocKind
	policy defense.Family
}

// nativeBench is the pooled substrate of one native cell class.
type nativeBench struct {
	space   *mem.Space
	under   heapsim.Allocator
	backend *prog.NativeBackend
}

// defendedBench is the pooled substrate of one defended cell class:
// the space, the telemetry collector whose snapshot joins the cell's
// divergence signature, the defense backend, and (for the pool class)
// the pool allocator beneath it.
type defendedBench struct {
	space *mem.Space
	tcol  *telemetry.Collector
	tel   *telemetry.Scope
	back  *defense.Backend
	under heapsim.Allocator
	pool  *heapsim.PoolAllocator
}

// NewWorkbench builds a pooled oracle for o. Substrate is constructed
// lazily on first use, so a workbench for a trimmed matrix (fewer
// engines or allocators) only ever materializes what it runs.
func NewWorkbench(o Oracle) *Workbench {
	return &Workbench{oracle: o.withDefaults(), defended: map[defendedKey]*defendedBench{}}
}

// Check runs the full matrix for one generated case, producing a
// Report bit-identical to Oracle.Check's but with construction
// amortized across seeds. When the oracle carries an AllocatorFor
// override, the workbench cannot recycle the caller's allocators and
// delegates to Oracle.Check — mutation rigs still work, just unpooled.
func (w *Workbench) Check(g *Generated) *Report {
	o := w.oracle
	if o.AllocatorFor != nil {
		return o.Check(g)
	}
	rep := &Report{Seed: g.Seed, Kind: g.Kind.String()}

	sys, err := core.NewSystem(g.Program, core.Options{MaxSteps: o.MaxSteps})
	if err != nil {
		rep.fail(FailRunError, "", fmt.Sprintf("building system: %v", err))
		return rep
	}
	coder := sys.Coder()

	// One compile per seed, shared by every bytecode-engine cell. A
	// program the system accepted but the compiler rejects is outside
	// the pooled fast path; the fresh oracle reports it cell by cell.
	var compiled *prog.Compiled
	for _, e := range o.Engines {
		if e == prog.EngineVM || e == prog.EngineCompiled {
			c, cerr := prog.Compile(g.Program, coder)
			if cerr != nil {
				return o.Check(g)
			}
			compiled = c
			break
		}
	}

	var attackRep *analysis.Report
	for _, e := range o.Engines {
		for _, attack := range []bool{false, true} {
			out, r := w.runShadowCell(g, coder, compiled, e, attack)
			if attack && attackRep == nil && r != nil {
				attackRep = r
			}
			rep.Outcomes = append(rep.Outcomes, out)
		}
	}

	var patches *patch.Set
	if attackRep != nil {
		patches = attackRep.Patches
	}

	for _, alloc := range o.Allocators {
		for _, e := range o.Engines {
			for _, attack := range []bool{false, true} {
				cell := Cell{Mode: ModeNative, Alloc: alloc, Engine: e, Attack: attack}
				rep.Outcomes = append(rep.Outcomes, w.runPooledCell(g, coder, compiled, cell, nil))
				if patches != nil {
					cell.Mode = ModeDefended
					for _, pol := range o.Policies {
						cell.Policy = pol
						rep.Outcomes = append(rep.Outcomes, w.runPooledCell(g, coder, compiled, cell, patches))
					}
				}
			}
		}
	}

	o.assertEngines(rep)
	o.assertBenign(rep)
	o.assertShadow(rep, g, attackRep)
	o.assertNativeAttack(rep, g)
	o.assertDefendedAttack(rep, g)
	return rep
}

// execOn builds the cell's executor: the tree interpreter from the
// AST, the VM and tier-up machine from the seed's shared Compiled.
func execOn(p *prog.Program, compiled *prog.Compiled, cfg prog.Config) (prog.Exec, error) {
	switch cfg.Engine {
	case prog.EngineVM:
		return prog.NewVM(compiled, cfg)
	case prog.EngineCompiled:
		return prog.NewMachine(compiled, cfg)
	default:
		return prog.NewExec(p, cfg)
	}
}

// runShadowCell is the pooled counterpart of the shadow-cell body in
// Oracle.Check: same analyzer, same report distillation, but over the
// recycled shadow substrate and shared Compiled. The error strings
// mirror analysis.Analyze's wrapping so error outcomes stay
// signature-identical too.
func (w *Workbench) runShadowCell(g *Generated, coder *encoding.Coder, compiled *prog.Compiled, e prog.Engine, attack bool) (*Outcome, *analysis.Report) {
	o := w.oracle
	out := &Outcome{Cell: Cell{Mode: ModeShadow, Engine: e, Attack: attack}}
	if w.shadowBack == nil {
		space, err := mem.NewSpace(mem.Config{})
		if err != nil {
			out.RunErr = fmt.Sprintf("analysis: creating space: %v", err)
			return out, nil
		}
		back, err := shadow.New(space, shadow.Config{})
		if err != nil {
			out.RunErr = fmt.Sprintf("analysis: creating shadow heap: %v", err)
			return out, nil
		}
		w.shadowSpace, w.shadowBack = space, back
	} else {
		w.shadowSpace.Reset()
		if err := w.shadowBack.Reset(); err != nil {
			out.RunErr = err.Error()
			return out, nil
		}
	}
	ex, err := execOn(g.Program, compiled, prog.Config{
		Backend:  w.shadowBack,
		Coder:    coder,
		MaxSteps: o.MaxSteps,
		Engine:   e,
	})
	if err != nil {
		out.RunErr = fmt.Sprintf("analysis: building interpreter: %v", err)
		return out, nil
	}
	az := &analysis.Analyzer{Coder: coder, MaxSteps: o.MaxSteps, Engine: e}
	r, err := az.AnalyzeWith(g.Program, g.input(attack), w.shadowBack, ex)
	if err != nil {
		out.RunErr = err.Error()
		return out, nil
	}
	out.Result = r.Result
	for _, warn := range r.Warnings {
		out.Warnings = append(out.Warnings, warn.String())
	}
	var buf bytes.Buffer
	if err := r.Patches.WriteConfig(&buf); err != nil {
		out.RunErr = err.Error()
	}
	out.PatchText = buf.String()
	return out, r
}

// runPooledCell is the pooled counterpart of Oracle.runCell: identical
// cell semantics (walker attachment, panic recovery, stats and
// telemetry capture) over recycled substrate.
func (w *Workbench) runPooledCell(g *Generated, coder *encoding.Coder, compiled *prog.Compiled, cell Cell, patches *patch.Set) *Outcome {
	o := w.oracle
	out := &Outcome{Cell: cell}
	fail := func(err error) *Outcome { out.RunErr = err.Error(); return out }

	var (
		space   *mem.Space
		under   heapsim.Allocator
		backend prog.HeapBackend
		dback   *defense.Backend
		tcol    *telemetry.Collector
	)
	if cell.Mode == ModeDefended {
		db, err := w.defendedFor(cell.Alloc, cell.Policy, patches)
		if err != nil {
			return fail(err)
		}
		space, under, dback, backend, tcol = db.space, db.under, db.back, db.back, db.tcol
	} else {
		nb, err := w.nativeFor(cell.Alloc)
		if err != nil {
			return fail(err)
		}
		space, under, backend = nb.space, nb.under, nb.backend
	}

	ex, err := execOn(g.Program, compiled, prog.Config{
		Backend:  backend,
		Coder:    coder,
		MaxSteps: o.MaxSteps,
		Engine:   cell.Engine,
	})
	if err != nil {
		return fail(err)
	}
	wk := NewWalker(space, under)
	wk.Attach(ex, o.InvariantEvery)

	func() {
		defer func() {
			if r := recover(); r != nil {
				out.Panic = fmt.Sprint(r)
			}
		}()
		res, err := ex.Run(g.input(cell.Attack))
		if err != nil {
			out.RunErr = err.Error()
			return
		}
		out.Result = res
	}()

	wk.Check() // final audit after the run settles
	if v := wk.Violation(); v != nil {
		out.Invariant = v.Error()
	}
	out.Checks = wk.Checks()
	if dback != nil {
		st := dback.Defender().Stats()
		out.DefenseStats = &st
	}
	if tcol != nil {
		out.Telemetry = tcol.Snapshot()
	}
	return out
}

// nativeFor returns the native substrate for alloc, recycled (or
// constructed on first use).
func (w *Workbench) nativeFor(alloc AllocKind) (*nativeBench, error) {
	if nb := w.native[alloc]; nb != nil {
		nb.space.Reset()
		if err := nb.backend.Reset(); err != nil {
			return nil, err
		}
		return nb, nil
	}
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return nil, err
	}
	var under heapsim.Allocator
	if alloc == AllocHeap {
		under, err = heapsim.New(space)
	} else {
		under, err = heapsim.NewPool(space)
	}
	if err != nil {
		return nil, err
	}
	backend, err := prog.NewNativeBackendWithAllocator(space, under)
	if err != nil {
		return nil, err
	}
	nb := &nativeBench{space: space, under: under, backend: backend}
	w.native[alloc] = nb
	return nb, nil
}

// defendedFor returns the defended substrate for (alloc, policy) armed
// with this seed's patches. Construction order matches Oracle.runCell:
// on the boundary-tag heap the defender maps its patch table before
// the heap arena, and on the pool the table still maps first because
// the pool carves runs lazily. ResetPatches replays exactly that order
// after every space reset — and runs the policy's own reset hook — so
// pooled addresses and whole-cell signatures stay bit-identical to
// fresh construction even though each seed loads a different patch
// set.
func (w *Workbench) defendedFor(alloc AllocKind, policy defense.Family, patches *patch.Set) (*defendedBench, error) {
	key := defendedKey{alloc: alloc, policy: policy}
	if db := w.defended[key]; db != nil {
		db.space.Reset()
		db.tcol.Reset()
		if err := db.back.ResetPatches(patches); err != nil {
			return nil, err
		}
		if db.pool != nil {
			db.pool.Reset()
		}
		return db, nil
	}
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return nil, err
	}
	tcol := telemetry.New(telemetry.Config{Shards: 1, RingSize: 256})
	tel := tcol.Scope()
	space.SetTelemetry(tel)
	db := &defendedBench{space: space, tcol: tcol, tel: tel}
	if alloc == AllocHeap {
		back, err := defense.NewBackend(space, defense.Config{Patches: patches, Family: policy, Telemetry: tel})
		if err != nil {
			return nil, err
		}
		db.back, db.under = back, back.Defender().Heap()
	} else {
		pool, err := heapsim.NewPool(space)
		if err != nil {
			return nil, err
		}
		pool.SetTelemetry(tel)
		back, err := defense.NewBackendWithAllocator(space, pool, defense.Config{Patches: patches, Family: policy, Telemetry: tel})
		if err != nil {
			return nil, err
		}
		db.back, db.under, db.pool = back, pool, pool
	}
	w.defended[key] = db
	return db, nil
}
