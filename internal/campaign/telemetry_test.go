package campaign

import (
	"testing"

	"heaptherapy/internal/core"
	"heaptherapy/internal/telemetry"
)

// TestDefendedAttackRecordsPatchHit closes the loop between the
// generator's ground truth and the telemetry layer: for every
// vulnerability kind, the defended attack cells must record at least
// one patch-hit event, and every recorded hit's packed site must be
// one of the {FUN, CCID} keys the offline analysis actually emitted.
// A site mismatch would mean the defense fired on the wrong allocation
// context — a patch-table keying bug no coarse counter would catch.
func TestDefendedAttackRecordsPatchHit(t *testing.T) {
	for _, kind := range AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			g, err := Generate(7, GenConfig{Kinds: []VulnKind{kind}})
			if err != nil {
				t.Fatal(err)
			}
			rep := Oracle{}.Check(g)
			if !rep.OK() {
				t.Fatalf("oracle failures: %+v", rep.Failures)
			}

			// Ground truth: regenerate the patch set the oracle deployed
			// (same default options, hence the same coder and CCIDs).
			sys, err := core.NewSystem(g.Program, core.Options{MaxSteps: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			arep, err := sys.GeneratePatches(g.Attack)
			if err != nil {
				t.Fatal(err)
			}
			truth := map[uint64]bool{}
			for _, p := range arep.Patches.Patches() {
				truth[telemetry.PackSite(uint8(p.Fn), p.CCID)] = true
			}
			if len(truth) == 0 {
				t.Fatal("analysis produced no patches")
			}

			attacked := 0
			for _, out := range rep.Outcomes {
				if out.Cell.Mode != ModeDefended {
					continue
				}
				if out.Telemetry == nil {
					t.Fatalf("%s: defended cell has no telemetry snapshot", out.Cell)
				}
				if !out.Cell.Attack {
					continue
				}
				attacked++
				if n := out.Telemetry.Counter(telemetry.CtrPatchHits); n == 0 {
					t.Errorf("%s: defended attack recorded no patch hits", out.Cell)
				}
				hits := out.Telemetry.EventsOfKind(telemetry.EvPatchHit)
				if len(hits) == 0 {
					t.Errorf("%s: no patch-hit events retained", out.Cell)
				}
				for _, e := range hits {
					if !truth[e.Site] {
						t.Errorf("%s: patch hit at site %#x not among ground-truth patch keys %v",
							out.Cell, e.Site, truth)
					}
					// Site keeps the low 56 CCID bits (the top byte is the
					// allocation function); it must agree with the event's
					// full CCID on those bits.
					if telemetry.SiteCCID(e.Site) != e.CCID&(1<<56-1) {
						t.Errorf("%s: event CCID %#x disagrees with site %#x", out.Cell, e.CCID, e.Site)
					}
				}
			}
			if attacked == 0 {
				t.Fatal("matrix ran no defended attack cells")
			}
		})
	}
}
