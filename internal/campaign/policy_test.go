package campaign

import (
	"bytes"
	"strings"
	"testing"

	"heaptherapy/internal/defense"
)

// seedsForKind scans the deterministic seed space for n seeds whose
// planned vulnerability is kind, so every kind's containment claims
// are exercised no matter how the generator's kind choice falls.
func seedsForKind(t *testing.T, kind VulnKind, n int) []uint64 {
	t.Helper()
	var seeds []uint64
	for seed := uint64(1); len(seeds) < n && seed < 10000; seed++ {
		if PlannedKind(seed, GenConfig{}) == kind {
			seeds = append(seeds, seed)
		}
	}
	if len(seeds) < n {
		t.Fatalf("found only %d/%d seeds for %v", len(seeds), n, kind)
	}
	return seeds
}

// TestPolicyContainmentMatrix is the cross-family differential suite:
// every vulnerability kind runs through the full oracle matrix under
// every policy family at once. The oracle asserts each family's
// documented Containment guarantees (and only those — expected-miss
// cells run record-only), plus cross-policy bit-identity of every
// benign cell's output and step count. A policy that faults where it
// promises survival, survives where it promises a fault, or perturbs
// benign execution fails here.
func TestPolicyContainmentMatrix(t *testing.T) {
	for _, kind := range AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			o := Oracle{Policies: defense.AllFamilies()}
			wb := NewWorkbench(o)
			for _, seed := range seedsForKind(t, kind, 3) {
				g, err := Generate(seed, GenConfig{})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				rep := wb.Check(g)
				for _, f := range rep.Failures {
					t.Errorf("seed %d: [%s] %s: %s", seed, f.Class, f.Cell, f.Detail)
				}
			}
		})
	}
}

// TestPolicyExpectedMissesAreReal pins the documented expected-miss
// cells to observable attack consequences, so the Containment matrix's
// `false` entries stay honest documentation rather than silent skips:
// if a family one day starts containing a kind it disclaims, this test
// flags the matrix as stale.
func TestPolicyExpectedMissesAreReal(t *testing.T) {
	find := func(rep *Report, policy defense.Family) *Outcome {
		for _, out := range rep.Outcomes {
			c := out.Cell
			if c.Mode == ModeDefended && c.Attack && c.Policy == policy &&
				c.Alloc == AllocHeap && c.Engine == 0 {
				return out
			}
		}
		return nil
	}
	check := func(t *testing.T, kind VulnKind, policy defense.Family, miss func(*Generated, *Outcome) bool) {
		t.Helper()
		seed := seedsForKind(t, kind, 1)[0]
		g, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatal(err)
		}
		rep := Oracle{Policies: []defense.Family{policy}}.Check(g)
		out := find(rep, policy)
		if out == nil {
			t.Fatalf("no defended %v attack cell for seed %d", policy, seed)
		}
		if !miss(g, out) {
			t.Errorf("%v/%v: documented miss did not manifest (cell %s)", policy, kind, out.Cell)
		}
	}

	t.Run("shadowbound-uaf-read-leaks", func(t *testing.T) {
		// The UAF gadget's dangling pointer lands inside the recycled
		// live object, so the bounds check passes and the secret leaks.
		check(t, UAFRead, defense.FamilyShadowBound, func(g *Generated, out *Outcome) bool {
			return out.Result != nil && bytes.Contains(out.Result.Output, g.Secret)
		})
	})
	t.Run("shadowbound-uninit-read-leaks", func(t *testing.T) {
		// An uninitialized read is in-bounds by definition.
		check(t, UninitRead, defense.FamilyShadowBound, func(g *Generated, out *Outcome) bool {
			return out.Result != nil && bytes.Contains(out.Result.Output, g.Secret)
		})
	})
	t.Run("mesh-overflow-read-leaks", func(t *testing.T) {
		// No spatial defense: the over-read crosses into the neighbor.
		check(t, OverflowRead, defense.FamilyMESH, func(g *Generated, out *Outcome) bool {
			return out.Result != nil && bytes.Contains(out.Result.Output, g.Secret)
		})
	})
	t.Run("mesh-overflow-write-corrupts", func(t *testing.T) {
		// The overflow write tramples the neighbor's metadata: the
		// sentinel is clobbered, or the heap corruption surfaces as a
		// fault, panic, or walker violation.
		check(t, OverflowWrite, defense.FamilyMESH, func(g *Generated, out *Outcome) bool {
			if out.Panic != "" || out.Invariant != "" || out.RunErr != "" {
				return true
			}
			return out.Result != nil &&
				(out.Result.Fault != nil || !bytes.Contains(out.Result.Output, g.Sentinel))
		})
	})
}

// TestPolicyCellNames pins the policy suffix convention: HT cells keep
// their historical names, non-HT cells append the family.
func TestPolicyCellNames(t *testing.T) {
	ht := Cell{Mode: ModeDefended, Alloc: AllocHeap, Attack: true}
	if got := ht.String(); strings.Contains(got, "ht") {
		t.Errorf("HT cell name %q should not carry a policy suffix", got)
	}
	sb := Cell{Mode: ModeDefended, Alloc: AllocHeap, Attack: true, Policy: defense.FamilyShadowBound}
	if got := sb.String(); !strings.HasSuffix(got, "/shadowbound") {
		t.Errorf("ShadowBound cell name %q lacks the policy suffix", got)
	}
}
