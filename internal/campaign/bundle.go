package campaign

// Bundle ingest: the half of the forensic-bundle story that runs
// OUTSIDE a campaign. A live front-end that traps a crash packages the
// offending request as a bundle (LiveBundle); anything holding a
// bundle — the front-end's rollout worker, a developer with a
// campaign's JSON report — decodes it back to replayable inputs
// (DecodeBundle, AttackInput/BenignInput) and feeds the attack to the
// offline analyzer. The encode side lives in shard.go (buildBundle).

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"heaptherapy/internal/telemetry"
)

// KindLiveCrash marks a bundle captured from live traffic rather than
// a generated campaign case.
const KindLiveCrash = "live-crash"

// LiveBundle packages a crash trapped on a live tenant as a forensic
// bundle in the campaign's interchange format. source names the
// service program, attack is the request that faulted, benign is a
// known-good request for differential replay, detail describes the
// fault, and events is the tenant's telemetry flight-recorder tail
// (may be nil).
func LiveBundle(source string, benign, attack []byte, detail string, events []telemetry.Event) *Bundle {
	b := &Bundle{
		Kind:   KindLiveCrash,
		Source: source,
		Benign: hex.EncodeToString(benign),
		Attack: hex.EncodeToString(attack),
		Failures: []Failure{{
			Kind:   KindLiveCrash,
			Class:  FailDefenseCrash,
			Detail: detail,
		}},
	}
	if len(events) > 0 {
		b.Traces = []CellTrace{{Cell: "live", Events: events}}
	}
	return b
}

// EncodeJSON writes the bundle as one JSON document.
func (b *Bundle) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// DecodeBundle parses a JSON bundle document and validates that its
// inputs decode.
func DecodeBundle(r io.Reader) (*Bundle, error) {
	var b Bundle
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("campaign: decoding bundle: %w", err)
	}
	if _, err := b.AttackInput(); err != nil {
		return nil, err
	}
	if _, err := b.BenignInput(); err != nil {
		return nil, err
	}
	return &b, nil
}

// AttackInput decodes the bundle's attack request bytes.
func (b *Bundle) AttackInput() ([]byte, error) {
	in, err := hex.DecodeString(b.Attack)
	if err != nil {
		return nil, fmt.Errorf("campaign: bundle attack input: %w", err)
	}
	return in, nil
}

// BenignInput decodes the bundle's benign request bytes.
func (b *Bundle) BenignInput() ([]byte, error) {
	in, err := hex.DecodeString(b.Benign)
	if err != nil {
		return nil, fmt.Errorf("campaign: bundle benign input: %w", err)
	}
	return in, nil
}
