package campaign

import (
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"heaptherapy/internal/prog"
	"heaptherapy/internal/progtext"
	"heaptherapy/internal/telemetry"
)

// RunConfig configures a sharded campaign run (see Run).
type RunConfig struct {
	// Start is the first seed; Seeds is how many to campaign over.
	Start uint64
	Seeds uint64
	// Gen tunes generation, Oracle the differential matrix.
	Gen    GenConfig
	Oracle Oracle
	// Workers is the number of worker goroutines, each owning one
	// pooled Workbench (0 = GOMAXPROCS).
	Workers int
	// ShardSize is the seeds-per-shard work unit (0 = auto: enough
	// shards for ~8 steals per worker, clamped to [16, 4096]).
	ShardSize int
	// MaxFailingSeeds stops the campaign promptly once this many seeds
	// have failed the oracle (0 = never stop). A seed with several
	// assertion failures counts once.
	MaxFailingSeeds int
	// Guided biases shard scheduling toward vulnerability-kind regions
	// that have already produced failures (divergence guidance). It
	// changes execution order only: a run to completion produces the
	// same merged report either way.
	Guided bool
	// Reduce minimizes each failing program to a class-preserving
	// witness (using the worker's pooled oracle for the predicate).
	Reduce bool
	// OnSeed, when set, observes every checked seed. It is called
	// concurrently from worker goroutines and must be safe for that.
	OnSeed func(seed uint64, kind VulnKind, rep *Report)
}

// WorkerStat is one worker's share of a run.
type WorkerStat struct {
	Worker int    `json:"worker"`
	Seeds  uint64 `json:"seeds"`
	Shards int    `json:"shards"`
	BusyMs int64  `json:"busy_ms"`
}

// ReducedCase is a minimized failing witness.
type ReducedCase struct {
	Seed       uint64 `json:"seed"`
	Kind       string `json:"kind"`
	Class      string `json:"class"`
	Statements int    `json:"statements"`
	Source     string `json:"source"`
}

// CellTrace is the telemetry event-ring trace of one defended cell:
// the most recent {allocation function, CCID, site} events the cell's
// flight recorder retained.
type CellTrace struct {
	Cell   string            `json:"cell"`
	Events []telemetry.Event `json:"events"`
}

// Bundle is the replayable forensic record of one failing seed:
// everything needed to reproduce the failure outside the campaign
// (source, both inputs, the planted ground truth) plus the assertion
// failures, the minimized witness when reduction ran, and the defended
// cells' event-ring traces.
type Bundle struct {
	Seed     uint64       `json:"seed"`
	Kind     string       `json:"kind"`
	Source   string       `json:"source"`
	Benign   string       `json:"benign"`
	Attack   string       `json:"attack"`
	Secret   string       `json:"secret,omitempty"`
	Sentinel string       `json:"sentinel,omitempty"`
	Failures []Failure    `json:"failures"`
	Reduced  *ReducedCase `json:"reduced,omitempty"`
	Traces   []CellTrace  `json:"traces,omitempty"`
}

// RunReport is the merged verdict of a sharded campaign run. Merging
// is deterministic: shards are contiguous ascending seed ranges and
// per-shard accumulators are concatenated in shard order, so a run to
// completion yields the same report at any worker count and in either
// scheduling mode — only the timing fields (Elapsed, SeedsPerSec,
// WorkerStats) vary.
type RunReport struct {
	Start     uint64 `json:"start"`
	Seeds     uint64 `json:"seeds"`
	Workers   int    `json:"workers"`
	ShardSize int    `json:"shard_size"`
	Guided    bool   `json:"guided"`

	Cases        int            `json:"cases"`
	ByKind       map[string]int `json:"by_kind"`
	FailingSeeds int            `json:"failing_seeds"`
	Failures     []Failure      `json:"failures,omitempty"`
	Reduced      []ReducedCase  `json:"reduced,omitempty"`
	Bundles      []*Bundle      `json:"bundles,omitempty"`
	// Stopped reports that MaxFailingSeeds cut the run short; Cases
	// then counts only the seeds actually checked.
	Stopped bool `json:"stopped,omitempty"`

	WorkerStats []WorkerStat  `json:"per_worker"`
	Elapsed     time.Duration `json:"-"`
	ElapsedMs   int64         `json:"duration_ms"`
	SeedsPerSec float64       `json:"seeds_per_sec"`
}

// shardSpan is one work unit: the seed range [lo, hi) plus the lazily
// profiled vulnerability-kind histogram guided scheduling scores.
type shardSpan struct {
	lo, hi uint64
	hist   []uint32 // computed under scheduler.mu, nil until needed
}

// scheduler hands out shards. Unguided it is a single atomic cursor
// over the shard list (natural order, work-stealing by exhaustion);
// guided it claims the unclaimed shard whose kind mix best matches the
// kinds that have produced failures so far, falling back to natural
// order while no failure has been seen.
type scheduler struct {
	shards []shardSpan
	gen    GenConfig

	cursor atomic.Uint64 // unguided claim cursor

	guided    bool
	mu        sync.Mutex
	claimed   []bool
	kindScore [numKinds]atomic.Uint64
}

func newScheduler(shards []shardSpan, gen GenConfig, guided bool) *scheduler {
	s := &scheduler{shards: shards, gen: gen, guided: guided}
	if guided {
		s.claimed = make([]bool, len(shards))
	}
	return s
}

// noteFailure biases future guided claims toward the failing kind.
func (s *scheduler) noteFailure(kind VulnKind) {
	if s.guided {
		s.kindScore[kind].Add(1)
	}
}

// next claims the next shard, or returns -1 when none remain.
func (s *scheduler) next() int {
	if !s.guided {
		i := int(s.cursor.Add(1) - 1)
		if i >= len(s.shards) {
			return -1
		}
		return i
	}

	var score [numKinds]uint64
	hot := false
	for k := range score {
		if score[k] = s.kindScore[k].Load(); score[k] > 0 {
			hot = true
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	best, bestScore := -1, uint64(0)
	for i := range s.shards {
		if s.claimed[i] {
			continue
		}
		if !hot {
			// No divergence observed yet: natural order, and no money
			// spent profiling shards.
			best = i
			break
		}
		sc := s.score(i, &score)
		if best == -1 || sc > bestScore {
			best, bestScore = i, sc
		}
	}
	if best >= 0 {
		s.claimed[best] = true
	}
	return best
}

// score weighs shard i's kind histogram by the failure scores,
// profiling the shard on first demand. PlannedKind replays only the
// generator's first RNG draw, so profiling a shard costs microseconds,
// and each shard is profiled at most once per run.
func (s *scheduler) score(i int, kindScore *[numKinds]uint64) uint64 {
	sh := &s.shards[i]
	if sh.hist == nil {
		sh.hist = make([]uint32, numKinds)
		for seed := sh.lo; seed < sh.hi; seed++ {
			sh.hist[PlannedKind(seed, s.gen)]++
		}
	}
	var total uint64
	for k, n := range sh.hist {
		total += uint64(n) * kindScore[k]
	}
	return total
}

// shardResult is one shard's accumulator, merged in shard order.
type shardResult struct {
	cases   int
	byKind  map[string]int
	failing int
	fails   []Failure
	reduced []ReducedCase
	bundles []*Bundle
}

// Run executes the campaign over [Start, Start+Seeds) on a pool of
// workers, each owning one pooled Workbench, and merges the per-shard
// verdicts deterministically. See RunConfig for the knobs and
// RunReport for the determinism contract; TestParallelMatchesSequential
// and TestWorkbenchBitIdentical pin both.
//
// Generation errors are fatal: the run stops promptly and Run returns
// the error (generated programs failing to build means the campaign
// itself is broken, not the system under test).
func Run(cfg RunConfig) (*RunReport, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shardSize := uint64(cfg.ShardSize)
	if shardSize == 0 {
		shardSize = cfg.Seeds / (8 * uint64(workers))
		if shardSize < 16 {
			shardSize = 16
		} else if shardSize > 4096 {
			shardSize = 4096
		}
	}

	var shards []shardSpan
	for lo := cfg.Start; lo < cfg.Start+cfg.Seeds; lo += shardSize {
		hi := lo + shardSize
		if hi > cfg.Start+cfg.Seeds {
			hi = cfg.Start + cfg.Seeds
		}
		shards = append(shards, shardSpan{lo: lo, hi: hi})
	}
	sched := newScheduler(shards, cfg.Gen, cfg.Guided)

	var (
		stop    atomic.Bool  // prompt cross-worker cancellation
		failing atomic.Int64 // failing seeds, one per seed
		genMu   sync.Mutex
		genErr  error
	)
	results := make([]*shardResult, len(shards))
	stats := make([]WorkerStat, workers)

	began := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wb := NewWorkbench(cfg.Oracle)
			st := &stats[worker]
			st.Worker = worker
			for !stop.Load() {
				idx := sched.next()
				if idx < 0 {
					return
				}
				sh := &sched.shards[idx]
				st.Shards++
				shardBegan := time.Now()
				acc := &shardResult{byKind: map[string]int{}}
				results[idx] = acc
				for seed := sh.lo; seed < sh.hi && !stop.Load(); seed++ {
					g, err := Generate(seed, cfg.Gen)
					if err != nil {
						genMu.Lock()
						if genErr == nil {
							genErr = fmt.Errorf("campaign: seed %d: %w", seed, err)
						}
						genMu.Unlock()
						stop.Store(true)
						break
					}
					rep := wb.Check(g)
					acc.cases++
					acc.byKind[g.Kind.String()]++
					st.Seeds++
					if cfg.OnSeed != nil {
						cfg.OnSeed(seed, g.Kind, rep)
					}
					if rep.OK() {
						continue
					}
					acc.failing++
					acc.fails = append(acc.fails, rep.Failures...)
					sched.noteFailure(g.Kind)
					var reduced *ReducedCase
					if cfg.Reduce {
						rc := MinimizeFailure(g, rep, wb.Check)
						acc.reduced = append(acc.reduced, rc)
						reduced = &rc
					}
					acc.bundles = append(acc.bundles, buildBundle(g, rep, reduced))
					if n := failing.Add(1); cfg.MaxFailingSeeds > 0 && n >= int64(cfg.MaxFailingSeeds) {
						stop.Store(true)
					}
				}
				st.BusyMs += time.Since(shardBegan).Milliseconds()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(began)

	if genErr != nil {
		return nil, genErr
	}

	rep := &RunReport{
		Start:     cfg.Start,
		Seeds:     cfg.Seeds,
		Workers:   workers,
		ShardSize: int(shardSize),
		Guided:    cfg.Guided,
		ByKind:    map[string]int{},
		Stopped:   stop.Load(),
	}
	for _, acc := range results {
		if acc == nil {
			continue // shard never claimed (early stop)
		}
		rep.Cases += acc.cases
		for k, n := range acc.byKind {
			rep.ByKind[k] += n
		}
		rep.FailingSeeds += acc.failing
		rep.Failures = append(rep.Failures, acc.fails...)
		rep.Reduced = append(rep.Reduced, acc.reduced...)
		rep.Bundles = append(rep.Bundles, acc.bundles...)
	}
	rep.WorkerStats = stats
	rep.Elapsed = elapsed
	rep.ElapsedMs = elapsed.Milliseconds()
	if s := elapsed.Seconds(); s > 0 {
		rep.SeedsPerSec = float64(rep.Cases) / s
	}
	return rep, nil
}

// MinimizeFailure shrinks a failing case to a minimal witness whose
// verdict keeps the same leading failure class. check is the oracle
// predicate — Oracle.Check, or a pooled Workbench.Check when the
// reduction loop should not pay construction costs.
func MinimizeFailure(g *Generated, res *Report, check func(*Generated) *Report) ReducedCase {
	class := res.Failures[0].Class
	stillFails := func(p *prog.Program) bool {
		cand := *g
		cand.Program = p
		r := check(&cand)
		for _, f := range r.Failures {
			if f.Class == class {
				return true
			}
		}
		return false
	}
	reduced := Reduce(g.Program, stillFails, 0)
	return ReducedCase{
		Seed:       g.Seed,
		Kind:       g.Kind.String(),
		Class:      class,
		Statements: CountStatements(reduced),
		Source:     progtext.Print(reduced),
	}
}

// buildBundle packages one failing seed's forensic record from the
// report the oracle already produced — no rerun. Traces come from the
// defended cells named in the failures, plus the first defended attack
// cell per allocator (engines are signature-identical, so one trace
// per allocator represents them all).
func buildBundle(g *Generated, rep *Report, reduced *ReducedCase) *Bundle {
	b := &Bundle{
		Seed:     g.Seed,
		Kind:     g.Kind.String(),
		Source:   g.Source,
		Benign:   hex.EncodeToString(g.Benign),
		Attack:   hex.EncodeToString(g.Attack),
		Secret:   hex.EncodeToString(g.Secret),
		Sentinel: hex.EncodeToString(g.Sentinel),
		Failures: rep.Failures,
		Reduced:  reduced,
	}
	inFailures := map[string]bool{}
	for _, f := range rep.Failures {
		if f.Cell != "" {
			inFailures[f.Cell] = true
		}
	}
	seen := map[string]bool{}
	var firstAttack [2]bool
	for _, out := range rep.Outcomes {
		if out.Cell.Mode != ModeDefended || out.Telemetry == nil {
			continue
		}
		name := out.Cell.String()
		want := inFailures[name]
		if out.Cell.Attack && !firstAttack[out.Cell.Alloc] {
			firstAttack[out.Cell.Alloc] = true
			want = true
		}
		if !want || seen[name] {
			continue
		}
		seen[name] = true
		b.Traces = append(b.Traces, CellTrace{Cell: name, Events: out.Telemetry.Events})
	}
	return b
}
