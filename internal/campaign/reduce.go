package campaign

import (
	"heaptherapy/internal/prog"
)

// Reduce shrinks a failing program while preserving its failure
// signature: stillFails must return true iff the candidate still
// exhibits the failure being minimized (it receives a freshly linked
// program and must not retain it). Reduction is greedy
// delta-debugging over single statements — remove a statement, or
// unwrap an If/While into its body — iterated to a fixpoint or
// maxRounds (0 = until fixpoint).
//
// The input program is never mutated; the returned program is a
// linked deep copy. If the input does not fail under stillFails it is
// returned (as a copy) unchanged.
func Reduce(p *prog.Program, stillFails func(*prog.Program) bool, maxRounds int) *prog.Program {
	best := cloneProgram(p)
	if err := prog.Link(best); err != nil {
		return best
	}
	if !stillFails(best) {
		return best
	}
	for round := 0; maxRounds == 0 || round < maxRounds; round++ {
		shrunk := false
		// Enumerate edits fresh each pass, in reverse program order so
		// applying one keeps the remaining (earlier) paths valid.
		for _, e := range reverseEdits(best) {
			cand := cloneProgram(best)
			if !applyEdit(cand, e) {
				continue
			}
			if err := prog.Link(cand); err != nil {
				continue // edit broke the program structurally; skip
			}
			if stillFails(cand) {
				best = cand
				shrunk = true
			}
		}
		if !shrunk {
			break
		}
	}
	return best
}

// CountStatements counts statements recursively across all functions.
func CountStatements(p *prog.Program) int {
	n := 0
	for _, f := range p.Funcs {
		n += countBlock(f.Body)
	}
	return n
}

func countBlock(b []prog.Stmt) int {
	n := 0
	for _, s := range b {
		n++
		switch s := s.(type) {
		case prog.If:
			n += countBlock(s.Then) + countBlock(s.Else)
		case prog.While:
			n += countBlock(s.Body)
		}
	}
	return n
}

// edit addresses one statement by function name and index path into
// nested blocks (even path elements index statements; on If nodes the
// branch is encoded by the next element's block selector).
type edit struct {
	fn   string
	path []blockStep
	kind editKind
}

type editKind uint8

const (
	editRemove editKind = iota
	editUnwrap          // replace If/While with its (Then/Body) block
)

// blockStep is one hop: the statement index in the current block,
// and — when further steps follow — which sub-block of that statement
// to descend into (0 = If.Then or While.Body, 1 = If.Else).
type blockStep struct {
	idx int
	sel int
}

// reverseEdits enumerates candidate edits deepest-and-last first, so
// greedy application within one pass never invalidates a later
// (earlier-positioned) edit's path prefix... except when an ancestor
// is removed first, which applyEdit detects and skips via bounds
// checks.
func reverseEdits(p *prog.Program) []edit {
	var out []edit
	for name, f := range p.Funcs {
		collectEdits(name, f.Body, nil, &out)
	}
	// collectEdits appends children before parents and later indices
	// before earlier ones, per function; cross-function order does not
	// matter for validity.
	return out
}

func collectEdits(fn string, b []prog.Stmt, prefix []blockStep, out *[]edit) {
	for i := len(b) - 1; i >= 0; i-- {
		path := append(append([]blockStep{}, prefix...), blockStep{idx: i})
		withSel := func(sel int) []blockStep {
			p := append([]blockStep{}, path...)
			p[len(p)-1].sel = sel
			return p
		}
		switch s := b[i].(type) {
		case prog.If:
			collectEdits(fn, s.Then, withSel(0), out)
			collectEdits(fn, s.Else, withSel(1), out)
			*out = append(*out, edit{fn: fn, path: path, kind: editUnwrap})
		case prog.While:
			collectEdits(fn, s.Body, withSel(0), out)
			*out = append(*out, edit{fn: fn, path: path, kind: editUnwrap})
		case prog.Return:
			// Keep returns: removing one rarely shrinks meaningfully and
			// often just shifts the failure to "fell off function end".
			continue
		}
		*out = append(*out, edit{fn: fn, path: path, kind: editRemove})
	}
}

// applyEdit performs the edit on a fresh clone. Returns false if the
// path no longer resolves (an enclosing statement was already edited
// away) or the edit is a no-op.
func applyEdit(p *prog.Program, e edit) bool {
	f, ok := p.Funcs[e.fn]
	if !ok {
		return false
	}
	newBody, ok := editBlock(f.Body, e.path, e.kind)
	if !ok {
		return false
	}
	f.Body = newBody
	return true
}

func editBlock(b []prog.Stmt, path []blockStep, kind editKind) ([]prog.Stmt, bool) {
	step := path[0]
	if step.idx < 0 || step.idx >= len(b) {
		return nil, false
	}
	if len(path) == 1 {
		switch kind {
		case editRemove:
			out := append(append([]prog.Stmt{}, b[:step.idx]...), b[step.idx+1:]...)
			return out, true
		case editUnwrap:
			var inner []prog.Stmt
			switch s := b[step.idx].(type) {
			case prog.If:
				inner = s.Then
			case prog.While:
				inner = s.Body
			default:
				return nil, false
			}
			out := append(append([]prog.Stmt{}, b[:step.idx]...), inner...)
			out = append(out, b[step.idx+1:]...)
			return out, true
		}
		return nil, false
	}
	// Descend into the selected sub-block of the statement at idx.
	switch s := b[step.idx].(type) {
	case prog.If:
		if step.sel == 0 {
			nb, ok := editBlock(s.Then, path[1:], kind)
			if !ok {
				return nil, false
			}
			s.Then = nb
			b[step.idx] = s
		} else {
			nb, ok := editBlock(s.Else, path[1:], kind)
			if !ok {
				return nil, false
			}
			s.Else = nb
			b[step.idx] = s
		}
		return b, true
	case prog.While:
		nb, ok := editBlock(s.Body, path[1:], kind)
		if !ok {
			return nil, false
		}
		s.Body = nb
		b[step.idx] = s
		return b, true
	default:
		return nil, false
	}
}

// cloneProgram deep-copies the program's statement structure.
// Expressions and byte payloads are immutable in practice and shared.
func cloneProgram(p *prog.Program) *prog.Program {
	out := &prog.Program{Name: p.Name, Entry: p.Entry, Funcs: map[string]*prog.Func{}}
	for name, f := range p.Funcs {
		out.Funcs[name] = &prog.Func{
			Name:   f.Name,
			Params: append([]string{}, f.Params...),
			Body:   cloneBlock(f.Body),
		}
	}
	return out
}

func cloneBlock(b []prog.Stmt) []prog.Stmt {
	out := make([]prog.Stmt, len(b))
	for i, s := range b {
		switch s := s.(type) {
		case prog.If:
			s.Then = cloneBlock(s.Then)
			s.Else = cloneBlock(s.Else)
			out[i] = s
		case prog.While:
			s.Body = cloneBlock(s.Body)
			out[i] = s
		default:
			out[i] = s
		}
	}
	return out
}
