package campaign

import (
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"heaptherapy/internal/progtext"
)

const corpusDir = "../../testdata/campaign"

// corpusEntry mirrors the htp-fuzz manifest schema.
type corpusEntry struct {
	Seed     uint64 `json:"seed"`
	Kind     string `json:"kind"`
	File     string `json:"file"`
	Benign   string `json:"benign"`
	Attack   string `json:"attack"`
	Secret   string `json:"secret"`
	Sentinel string `json:"sentinel"`
}

func loadCorpus(t *testing.T) []corpusEntry {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(corpusDir, "manifest.json"))
	if err != nil {
		t.Fatalf("reading corpus manifest (regenerate with `make corpus`): %v", err)
	}
	var entries []corpusEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) < 15 {
		t.Fatalf("corpus has only %d entries", len(entries))
	}
	return entries
}

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		return nil
	}
	return b
}

// TestCorpusMatchesGenerator: the checked-in corpus must be exactly
// what the current generator emits — any intentional generator change
// must be accompanied by `make corpus`, making drift reviewable.
func TestCorpusMatchesGenerator(t *testing.T) {
	for _, e := range loadCorpus(t) {
		src, err := os.ReadFile(filepath.Join(corpusDir, e.File))
		if err != nil {
			t.Fatal(err)
		}
		g, err := Generate(e.Seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", e.Seed, err)
		}
		if g.Source != string(src) {
			t.Errorf("seed %d: generator drifted from checked-in corpus (run `make corpus` if intentional)", e.Seed)
		}
		if g.Kind.String() != e.Kind {
			t.Errorf("seed %d: kind %v, manifest says %s", e.Seed, g.Kind, e.Kind)
		}
		if hex.EncodeToString(g.Benign) != e.Benign || hex.EncodeToString(g.Attack) != e.Attack {
			t.Errorf("seed %d: inputs drifted from manifest", e.Seed)
		}
	}
}

// TestCorpusReplay rebuilds each case purely from disk — source,
// inputs, and ground truth out of the manifest, no generator involved
// — and replays it through the full differential oracle.
func TestCorpusReplay(t *testing.T) {
	o := Oracle{}
	entries := loadCorpus(t)
	if raceEnabled && len(entries) > 6 {
		entries = entries[:6]
	}
	for _, e := range entries {
		src, err := os.ReadFile(filepath.Join(corpusDir, e.File))
		if err != nil {
			t.Fatal(err)
		}
		p, err := progtext.Parse(string(src))
		if err != nil {
			t.Fatalf("seed %d: %v", e.Seed, err)
		}
		kind, err := ParseKind(e.Kind)
		if err != nil {
			t.Fatalf("seed %d: %v", e.Seed, err)
		}
		g := &Generated{
			Seed:     e.Seed,
			Kind:     kind,
			Program:  p,
			Source:   string(src),
			Benign:   unhex(t, e.Benign),
			Attack:   unhex(t, e.Attack),
			Secret:   unhex(t, e.Secret),
			Sentinel: unhex(t, e.Sentinel),
		}
		rep := o.Check(g)
		for _, f := range rep.Failures {
			t.Errorf("seed %d (%s) [%s @ %s]: %s", e.Seed, e.Kind, f.Class, f.Cell, f.Detail)
		}
	}
}
