package campaign

import (
	"errors"
	"strings"
	"testing"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
)

// brokenChecker always reports (or panics with) a fixed failure.
type brokenChecker struct {
	err      error
	panicMsg string
}

func (b brokenChecker) Malloc(uint64) (uint64, error)           { return 0, nil }
func (b brokenChecker) Calloc(uint64, uint64) (uint64, error)   { return 0, nil }
func (b brokenChecker) Realloc(uint64, uint64) (uint64, error)  { return 0, nil }
func (b brokenChecker) Memalign(uint64, uint64) (uint64, error) { return 0, nil }
func (b brokenChecker) Free(uint64) error                       { return nil }
func (b brokenChecker) UsableSize(uint64) (uint64, error)       { return 0, nil }
func (b brokenChecker) CheckIntegrity() error {
	if b.panicMsg != "" {
		panic(b.panicMsg)
	}
	return b.err
}

func TestWalkerCleanHeap(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := heapsim.New(space)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Malloc(64); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(space, h)
	w.Check()
	w.Check()
	if v := w.Violation(); v != nil {
		t.Fatalf("clean heap: %v", v)
	}
	if w.Checks() != 2 {
		t.Fatalf("Checks() = %d, want 2", w.Checks())
	}
}

// TestWalkerLatchesFirstViolation: the first violation sticks even if
// later audits would report something else (or nothing).
func TestWalkerLatchesFirstViolation(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	first := errors.New("first corruption")
	w := NewWalker(space, brokenChecker{err: first})
	w.Check()
	w.under = brokenChecker{err: errors.New("second corruption")}
	w.Check()
	if v := w.Violation(); v != first {
		t.Fatalf("Violation() = %v, want the first", v)
	}
	if w.Checks() != 2 {
		t.Fatalf("Checks() = %d, want 2", w.Checks())
	}
}

// TestWalkerRecoversCheckerPanic: a panic inside the integrity checker
// (clobbered metadata tripping a load guard) becomes a violation.
func TestWalkerRecoversCheckerPanic(t *testing.T) {
	w := NewWalker(nil, brokenChecker{panicMsg: "heapsim: load beyond break"})
	w.Check()
	v := w.Violation()
	if v == nil || !strings.Contains(v.Error(), "load beyond break") {
		t.Fatalf("Violation() = %v, want recovered panic", v)
	}
}

// TestWalkerNilAllocator: page-state auditing alone still works.
func TestWalkerNilAllocator(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(space, nil)
	w.Check()
	if v := w.Violation(); v != nil {
		t.Fatalf("fresh space: %v", v)
	}
}
