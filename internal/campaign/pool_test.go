package campaign

import (
	"reflect"
	"testing"

	"heaptherapy/internal/defense"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
)

// TestWorkbenchBitIdentical is the pooled oracle's license to exist:
// one Workbench reused across a corpus of seeds must produce, for
// every seed, a report whose outcomes are signature-identical (and
// whose failures are deeply equal) to the fresh-construction
// Oracle.Check path. The signature folds output bytes, faults, step
// and cycle counts, allocator stats, defense stats, telemetry
// snapshots, warnings, and patch text — so this is bit-identity of
// everything the differential oracle can observe.
func TestWorkbenchBitIdentical(t *testing.T) {
	o := Oracle{}
	wb := NewWorkbench(o)
	seeds := uint64(24)
	if raceEnabled {
		seeds = 4
	}
	for seed := uint64(0); seed < seeds; seed++ {
		g, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fresh := o.Check(g)
		pooled := wb.Check(g)
		diffReports(t, seed, fresh, pooled)
		if t.Failed() {
			t.Fatalf("seed %d source:\n%s", seed, g.Source)
		}
	}
}

// TestWorkbenchPerKind drives one case of every vulnerability kind
// through a single recycled workbench, so each gadget shape (and each
// patch-set shape the defended cells reload) crosses the pooled path.
func TestWorkbenchPerKind(t *testing.T) {
	o := Oracle{}
	wb := NewWorkbench(o)
	for _, kind := range AllKinds() {
		g, err := Generate(7, GenConfig{Kinds: []VulnKind{kind}})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		fresh := o.Check(g)
		pooled := wb.Check(g)
		diffReports(t, g.Seed, fresh, pooled)
		if t.Failed() {
			t.Fatalf("kind %v source:\n%s", kind, g.Source)
		}
	}
}

// TestWorkbenchDelegatesAllocatorFor pins the escape hatch: an oracle
// carrying an allocator override cannot be pooled, so the workbench
// must hand the seed to Oracle.Check untouched.
func TestWorkbenchDelegatesAllocatorFor(t *testing.T) {
	o := Oracle{
		AllocatorFor: func(kind AllocKind, space *mem.Space) (heapsim.Allocator, error) {
			if kind == AllocHeap {
				return heapsim.New(space)
			}
			return heapsim.NewPool(space)
		},
	}
	g, err := Generate(3, GenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fresh := o.Check(g)
	pooled := NewWorkbench(o).Check(g)
	diffReports(t, g.Seed, fresh, pooled)
}

func diffReports(t *testing.T, seed uint64, fresh, pooled *Report) {
	t.Helper()
	if len(fresh.Outcomes) != len(pooled.Outcomes) {
		t.Errorf("seed %d: outcome count fresh=%d pooled=%d", seed, len(fresh.Outcomes), len(pooled.Outcomes))
		return
	}
	for i := range fresh.Outcomes {
		f, p := fresh.Outcomes[i], pooled.Outcomes[i]
		if f.Cell != p.Cell {
			t.Errorf("seed %d outcome %d: cell fresh=%v pooled=%v", seed, i, f.Cell, p.Cell)
			continue
		}
		if fs, ps := f.signature(), p.signature(); fs != ps {
			t.Errorf("seed %d cell %v:\n fresh:  %s\n pooled: %s", seed, f.Cell, fs, ps)
		}
	}
	if !reflect.DeepEqual(fresh.Failures, pooled.Failures) {
		t.Errorf("seed %d: failures diverge\n fresh:  %+v\n pooled: %+v", seed, fresh.Failures, pooled.Failures)
	}
}

// TestPooledSetupAllocs pins the whole point of the workbench: once
// warm, recycling a cell's substrate for the next seed costs (almost)
// no allocations — versus ~6700 per seed for fresh construction. The
// shadow and native substrates reset entirely in place; the defended
// substrate re-derives its patch table from the incoming set, which is
// allowed a small per-seed allowance for the table pages and defense
// bookkeeping.
func TestPooledSetupAllocs(t *testing.T) {
	wb := NewWorkbench(Oracle{})
	g, err := Generate(1, GenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := wb.Check(g); !rep.OK() {
		t.Fatalf("warmup failed: %+v", rep.Failures)
	}

	shadow := testing.AllocsPerRun(50, func() {
		wb.shadowSpace.Reset()
		if err := wb.shadowBack.Reset(); err != nil {
			t.Fatal(err)
		}
	})
	if shadow > 0 {
		t.Errorf("shadow substrate recycle allocates: %.1f allocs/reset (want 0)", shadow)
	}

	for _, alloc := range AllAllocators() {
		nb := wb.native[alloc]
		got := testing.AllocsPerRun(50, func() {
			nb.space.Reset()
			if err := nb.backend.Reset(); err != nil {
				t.Fatal(err)
			}
		})
		if got > 0 {
			t.Errorf("native/%v substrate recycle allocates: %.1f allocs/reset (want 0)", alloc, got)
		}
	}

	set := patch.NewSet()
	for _, alloc := range AllAllocators() {
		db := wb.defended[defendedKey{alloc: alloc, policy: defense.FamilyHT}]
		got := testing.AllocsPerRun(50, func() {
			db.space.Reset()
			db.tcol.Reset()
			if err := db.back.ResetPatches(set); err != nil {
				t.Fatal(err)
			}
			if db.pool != nil {
				db.pool.Reset()
			}
		})
		if got > 16 {
			t.Errorf("defended/%v substrate recycle allocates: %.1f allocs/reset (want <= 16)", alloc, got)
		}
	}
}
