package campaign

import (
	"testing"

	"heaptherapy/internal/prog"
	"heaptherapy/internal/progtext"
)

// FuzzGenerate drives the generator over arbitrary seeds: generation
// must always succeed, stay deterministic, and emit canonical
// progtext.
func FuzzGenerate(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		g, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if progtext.Print(g.Program) != g.Source {
			t.Fatalf("seed %d: generated source is not canonical", seed)
		}
		again, err := Generate(seed, GenConfig{})
		if err != nil || again.Source != g.Source {
			t.Fatalf("seed %d: regeneration diverged (%v)", seed, err)
		}
	})
}

// FuzzOracle runs the full differential matrix per fuzzed seed: any
// assertion failure on a healthy pipeline is a real bug in generator,
// engines, allocators, shadow analysis, or defense.
func FuzzOracle(f *testing.F) {
	for seed := uint64(0); seed < 4; seed++ {
		f.Add(seed)
	}
	o := Oracle{}
	f.Fuzz(func(t *testing.T, seed uint64) {
		g, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := o.Check(g)
		for _, fl := range rep.Failures {
			t.Errorf("seed %d (%v) [%s @ %s]: %s", seed, g.Kind, fl.Class, fl.Cell, fl.Detail)
		}
	})
}

// FuzzReduce checks the reducer's contract on arbitrary seeds: with a
// never-failing predicate the program comes back whole; with a
// size-based predicate reduction terminates and preserves it.
func FuzzReduce(f *testing.F) {
	for seed := uint64(0); seed < 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		g, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		before := CountStatements(g.Program)
		kept := Reduce(g.Program, func(*prog.Program) bool { return false }, 2)
		if CountStatements(kept) != before {
			t.Fatalf("seed %d: non-failing program shrank", seed)
		}
	})
}
