package campaign

import (
	"bytes"
	"testing"

	"heaptherapy/internal/defense"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/progtext"
)

// FuzzGenerate drives the generator over arbitrary seeds: generation
// must always succeed, stay deterministic, and emit canonical
// progtext.
func FuzzGenerate(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		g, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if progtext.Print(g.Program) != g.Source {
			t.Fatalf("seed %d: generated source is not canonical", seed)
		}
		again, err := Generate(seed, GenConfig{})
		if err != nil || again.Source != g.Source {
			t.Fatalf("seed %d: regeneration diverged (%v)", seed, err)
		}
	})
}

// FuzzOracle runs the full differential matrix per fuzzed seed: any
// assertion failure on a healthy pipeline is a real bug in generator,
// engines, allocators, shadow analysis, or defense.
func FuzzOracle(f *testing.F) {
	for seed := uint64(0); seed < 4; seed++ {
		f.Add(seed)
	}
	o := Oracle{}
	f.Fuzz(func(t *testing.T, seed uint64) {
		g, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := o.Check(g)
		for _, fl := range rep.Failures {
			t.Errorf("seed %d (%v) [%s @ %s]: %s", seed, g.Kind, fl.Class, fl.Cell, fl.Detail)
		}
	})
}

// FuzzPolicyEquivalence is the cross-family differential fuzz target:
// every fuzzed seed runs the full matrix under all three policy
// families at once. Two properties per seed:
//
//   - benign equivalence: every benign cell — any policy, any engine,
//     any allocator — is bit-identical in output and step count (the
//     oracle's assertBenign spans the whole policy axis);
//   - no false containment: under a policy whose Containment matrix
//     claims the seed's kind, the attack never exfiltrates the secret
//     or clobbers the sentinel (assertDefendedAttack per family).
//
// Any failure is a real policy bug: a family perturbing benign
// semantics, or claiming containment it does not deliver.
func FuzzPolicyEquivalence(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	wb := NewWorkbench(Oracle{Policies: defense.AllFamilies()})
	f.Fuzz(func(t *testing.T, seed uint64) {
		g, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := wb.Check(g)
		for _, fl := range rep.Failures {
			t.Errorf("seed %d (%v) [%s @ %s]: %s", seed, g.Kind, fl.Class, fl.Cell, fl.Detail)
		}
		// Belt and braces on top of the oracle's own assertions: walk
		// the outcomes directly so a regression in the oracle's
		// containment bookkeeping cannot silently weaken this target.
		for _, out := range rep.Outcomes {
			if out.Cell.Mode != ModeDefended || !out.Cell.Attack || out.Result == nil {
				continue
			}
			if !familyContains(out.Cell.Policy, g.Kind) {
				continue
			}
			if g.Kind.Leaky() && bytes.Contains(out.Result.Output, g.Secret) {
				t.Errorf("seed %d: %s leaked the secret under claimed containment", seed, out.Cell)
			}
		}
	})
}

// FuzzReduce checks the reducer's contract on arbitrary seeds: with a
// never-failing predicate the program comes back whole; with a
// size-based predicate reduction terminates and preserves it.
func FuzzReduce(f *testing.F) {
	for seed := uint64(0); seed < 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		g, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		before := CountStatements(g.Program)
		kept := Reduce(g.Program, func(*prog.Program) bool { return false }, 2)
		if CountStatements(kept) != before {
			t.Fatalf("seed %d: non-failing program shrank", seed)
		}
	})
}
