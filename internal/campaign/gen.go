package campaign

import (
	"fmt"
	"math/rand"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/progtext"
)

// GenConfig tunes the generator. The zero value is the campaign
// default.
type GenConfig struct {
	// Kinds restricts generation to the listed kinds (nil = all).
	Kinds []VulnKind
	// MaxFillerOps bounds the random statements emitted around the
	// vulnerable gadget on each side (0 = default 8).
	MaxFillerOps int
	// MaxCallDepth bounds the call-chain depth above the vulnerable
	// function (0 = default 3), so injected sites get nontrivial
	// calling contexts for the encoding to distinguish.
	MaxCallDepth int
}

func (c GenConfig) withDefaults() GenConfig {
	if len(c.Kinds) == 0 {
		c.Kinds = AllKinds()
	}
	if c.MaxFillerOps <= 0 {
		c.MaxFillerOps = 8
	}
	if c.MaxCallDepth <= 0 {
		c.MaxCallDepth = 3
	}
	return c
}

// PlannedKind reports which vulnerability kind Generate will inject
// for seed under cfg, without building the program. The kind is the
// generator's first RNG draw, so the answer is exact (not heuristic);
// the guided scheduler uses this to profile a shard's kind mix at
// negligible cost before paying for generation.
func PlannedKind(seed uint64, cfg GenConfig) VulnKind {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(int64(seed)))
	return cfg.Kinds[rng.Intn(len(cfg.Kinds))]
}

// Generate builds the campaign case for one seed, deterministically:
// the same seed and config always yield byte-identical source and
// inputs. The program is assembled as AST, rendered through the
// progtext printer, and re-parsed, so every generated case also
// exercises the full text round trip and Generated.Source is the
// authoritative form.
//
// The generator maintains discipline invariants that make the ground
// truth machine-checkable across every matrix cell:
//
//   - Benign control flow only reads initialized, in-bounds memory, so
//     benign output is identical across engines, allocators, and
//     defense modes, and shadow analysis of a benign run is silent.
//   - Until the vulnerable gadget has run, no memory is freed and no
//     allocation can recycle or split chunks (malloc/calloc only), so
//     the gadget's back-to-back allocations are physically adjacent on
//     the boundary-tag heap and its free/realloc reuse patterns are
//     deterministic.
//   - Only the gadget dereferences attacker-derived values; filler
//     statements never depend on the input header.
func Generate(seed uint64, cfg GenConfig) (*Generated, error) {
	cfg = cfg.withDefaults()
	b := &builder{
		rng:   rand.New(rand.NewSource(int64(seed))),
		funcs: map[string]*prog.Func{},
	}
	kind := cfg.Kinds[b.rng.Intn(len(cfg.Kinds))]
	secret := []byte(fmt.Sprintf("S3CR%016XLEAK", seed))
	sentinel := []byte(fmt.Sprintf("S%07X", seed&0xFFFFFFF))

	b.funcs["vuln"] = &prog.Func{Name: "vuln", Params: []string{"n"}, Body: b.gadgetBody(kind, secret, sentinel)}
	depth := b.rng.Intn(cfg.MaxCallDepth + 1)
	callee := "vuln"
	for i := depth; i >= 1; i-- {
		name := fmt.Sprintf("stage%d", i)
		var body []prog.Stmt
		if b.rng.Intn(2) == 0 {
			body = append(body, prog.Assign{Dst: "s", E: prog.Add(prog.V("n"), prog.C(uint64(i)))})
		}
		body = append(body, prog.Call{Callee: callee, Args: []prog.Expr{prog.V("n")}}, prog.Return{})
		b.funcs[name] = &prog.Func{Name: name, Params: []string{"n"}, Body: body}
		callee = name
	}

	main := []prog.Stmt{
		prog.ReadInput{Dst: "hdr", N: prog.C(1)},
		prog.Assign{Dst: "n", E: prog.V("hdr")},
	}
	// A guaranteed allocation before the gadget keeps the gadget's
	// buffers away from the very start of the address space (an
	// underflow read of a few bytes must hit mapped memory, not the
	// edge of the mapping).
	main = append(main, b.emitAlloc(false)...)
	for i, k := 0, 1+b.rng.Intn(cfg.MaxFillerOps); i < k; i++ {
		main = append(main, b.emitFiller(false)...)
	}
	if b.rng.Intn(2) == 0 {
		main = append(main, prog.ReadInput{Dst: "tail", N: prog.InputRemaining{}}, prog.OutputVar{Src: "tail"})
	}
	main = append(main, prog.Call{Callee: callee, Args: []prog.Expr{prog.V("n")}})
	for i, k := 0, 1+b.rng.Intn(cfg.MaxFillerOps); i < k; i++ {
		main = append(main, b.emitFiller(true)...)
	}
	// Epilogue: release every remaining filler buffer in random order
	// so benign runs leak nothing.
	b.rng.Shuffle(len(b.bufs), func(i, j int) { b.bufs[i], b.bufs[j] = b.bufs[j], b.bufs[i] })
	for _, buf := range b.bufs {
		main = append(main, prog.FreeStmt{Ptr: prog.V(buf.name)})
	}
	main = append(main, prog.Return{})
	b.funcs["main"] = &prog.Func{Name: "main", Body: main}

	ast := &prog.Program{Name: fmt.Sprintf("c%d", seed), Entry: "main", Funcs: b.funcs}
	src := progtext.Print(ast)
	parsed, err := progtext.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("campaign: seed %d: generated source does not parse: %w", seed, err)
	}

	benign, attack := b.inputs(kind)
	g := &Generated{
		Seed:    seed,
		Kind:    kind,
		Program: parsed,
		Source:  src,
		Benign:  benign,
		Attack:  attack,
	}
	if kind.Leaky() {
		g.Secret = secret
	}
	if kind.Clobbering() {
		g.Sentinel = sentinel
	}
	return g, nil
}

// builder accumulates generator state for one program.
type builder struct {
	rng     *rand.Rand
	nvars   int
	bufs    []genBuf // live, fully initialized filler buffers
	scalars []string // initialized scalar variables in main
	funcs   map[string]*prog.Func
	ndecoys int
}

type genBuf struct {
	name string
	size uint64
}

func (b *builder) fresh(prefix string) string {
	b.nvars++
	return fmt.Sprintf("%s%d", prefix, b.nvars)
}

func (b *builder) pickBuf() *genBuf {
	if len(b.bufs) == 0 {
		return nil
	}
	return &b.bufs[b.rng.Intn(len(b.bufs))]
}

var fillerSizes = []uint64{16, 24, 48, 56, 96, 144, 200, 256}

// emitAlloc allocates and fully initializes a filler buffer. Memalign
// is allowed only after the gadget has run: on the boundary-tag heap
// it trims its over-allocation back into the free bins, which would
// break the pre-gadget "bins are empty" adjacency guarantee.
func (b *builder) emitAlloc(postGadget bool) []prog.Stmt {
	size := fillerSizes[b.rng.Intn(len(fillerSizes))]
	name := b.fresh("buf")
	var alloc prog.Stmt
	choices := 2
	if postGadget {
		choices = 3
	}
	switch b.rng.Intn(choices) {
	case 0:
		alloc = prog.Alloc{Dst: name, Fn: heapsim.FnMalloc, Size: prog.C(size)}
	case 1:
		alloc = prog.Alloc{Dst: name, Fn: heapsim.FnCalloc, Size: prog.C(8), N: prog.C(size / 8)}
	default:
		align := uint64(32) << b.rng.Intn(2)
		alloc = prog.Alloc{Dst: name, Fn: heapsim.FnMemalign, Size: prog.C(size), Align: prog.C(align)}
	}
	b.bufs = append(b.bufs, genBuf{name: name, size: size})
	return []prog.Stmt{
		alloc,
		prog.Memset{Dst: prog.V(name), B: prog.C(uint64(b.rng.Intn(256))), N: prog.C(size)},
	}
}

func (b *builder) emitStore() []prog.Stmt {
	buf := b.pickBuf()
	if buf == nil {
		return b.emitArith()
	}
	w := uint64(1 + b.rng.Intn(8))
	off := uint64(b.rng.Intn(int(buf.size-w) + 1))
	return []prog.Stmt{prog.Store{Base: prog.V(buf.name), Off: prog.C(off), Src: prog.C(b.rng.Uint64()), N: prog.C(w)}}
}

func (b *builder) emitLoad() []prog.Stmt {
	buf := b.pickBuf()
	if buf == nil {
		return b.emitArith()
	}
	w := uint64(1 + b.rng.Intn(8))
	off := uint64(b.rng.Intn(int(buf.size-w) + 1))
	name := b.fresh("v")
	out := []prog.Stmt{prog.Load{Dst: name, Base: prog.V(buf.name), Off: prog.C(off), N: prog.C(w)}}
	b.scalars = append(b.scalars, name)
	if b.rng.Intn(2) == 0 {
		out = append(out, prog.OutputVar{Src: name})
	}
	return out
}

func (b *builder) randScalarExpr() prog.Expr {
	e := prog.Expr(prog.C(uint64(b.rng.Intn(1000))))
	if len(b.scalars) > 0 && b.rng.Intn(2) == 0 {
		e = prog.V(b.scalars[b.rng.Intn(len(b.scalars))])
	}
	switch b.rng.Intn(3) {
	case 0:
		return prog.Add(e, prog.C(uint64(b.rng.Intn(100))))
	case 1:
		return prog.Mul(e, prog.C(uint64(1+b.rng.Intn(16))))
	default:
		return prog.And(e, prog.C(0xFFFF))
	}
}

func (b *builder) emitArith() []prog.Stmt {
	// Build the expression before registering the destination: the
	// expression may only use already-defined scalars.
	e := b.randScalarExpr()
	name := b.fresh("v")
	b.scalars = append(b.scalars, name)
	return []prog.Stmt{prog.Assign{Dst: name, E: e}}
}

func (b *builder) emitGlobal() []prog.Stmt {
	e := b.randScalarExpr()
	gname := b.fresh("g")
	vname := b.fresh("v")
	b.scalars = append(b.scalars, vname)
	return []prog.Stmt{
		prog.SetGlobal{Dst: gname, E: e},
		prog.Assign{Dst: vname, E: prog.Global{Name: gname}},
	}
}

func (b *builder) emitOutput() []prog.Stmt {
	buf := b.pickBuf()
	if buf == nil {
		return b.emitArith()
	}
	w := uint64(1 + b.rng.Intn(16))
	if w > buf.size {
		w = buf.size
	}
	off := uint64(b.rng.Intn(int(buf.size-w) + 1))
	return []prog.Stmt{prog.Output{Base: prog.V(buf.name), Off: prog.C(off), N: prog.C(w)}}
}

func (b *builder) emitLoop() []prog.Stmt {
	buf := b.pickBuf()
	if buf == nil {
		return b.emitArith()
	}
	iters := uint64(2 + b.rng.Intn(6))
	if iters > buf.size {
		iters = buf.size
	}
	i := b.fresh("i")
	return []prog.Stmt{
		prog.Assign{Dst: i, E: prog.C(0)},
		prog.While{Cond: prog.Lt(prog.V(i), prog.C(iters)), Body: []prog.Stmt{
			prog.Store{Base: prog.V(buf.name), Off: prog.V(i), Src: prog.C(uint64(b.rng.Intn(256))), N: prog.C(1)},
			prog.Assign{Dst: i, E: prog.Add(prog.V(i), prog.C(1))},
		}},
	}
}

// emitIf branches on generator-chosen data (never the input header)
// and assigns the same variable on both arms so later uses are always
// initialized.
func (b *builder) emitIf() []prog.Stmt {
	cond := prog.Lt(b.randScalarExpr(), prog.C(uint64(b.rng.Intn(2000))))
	name := b.fresh("v")
	b.scalars = append(b.scalars, name)
	return []prog.Stmt{prog.If{
		Cond: cond,
		Then: []prog.Stmt{prog.Assign{Dst: name, E: prog.C(uint64(b.rng.Intn(100)))}},
		Else: []prog.Stmt{prog.Assign{Dst: name, E: prog.C(uint64(100 + b.rng.Intn(100)))}},
	}}
}

// emitDecoyCall adds call-graph breadth: decoy functions are pure
// arithmetic, so they widen the encoding space without touching the
// heap.
func (b *builder) emitDecoyCall() []prog.Stmt {
	if b.ndecoys == 0 || (b.ndecoys < 2 && b.rng.Intn(2) == 0) {
		b.ndecoys++
		dn := fmt.Sprintf("decoy%d", b.ndecoys)
		b.funcs[dn] = &prog.Func{Name: dn, Params: []string{"a"}, Body: []prog.Stmt{
			prog.Assign{Dst: "t", E: prog.Mul(prog.Add(prog.V("a"), prog.C(3)), prog.C(5))},
			prog.Return{E: prog.V("t")},
		}}
	}
	dn := fmt.Sprintf("decoy%d", 1+b.rng.Intn(b.ndecoys))
	r := b.fresh("v")
	b.scalars = append(b.scalars, r)
	return []prog.Stmt{prog.Call{Dst: r, Callee: dn, Args: []prog.Expr{prog.C(uint64(b.rng.Intn(50)))}}}
}

func (b *builder) emitFree() []prog.Stmt {
	if len(b.bufs) == 0 {
		return b.emitArith()
	}
	i := b.rng.Intn(len(b.bufs))
	buf := b.bufs[i]
	b.bufs = append(b.bufs[:i], b.bufs[i+1:]...)
	return []prog.Stmt{prog.FreeStmt{Ptr: prog.V(buf.name)}}
}

// emitRealloc grows a filler buffer in place (by name), then memsets
// the whole new extent so the realloc-grown bytes are initialized
// before any later read.
func (b *builder) emitRealloc() []prog.Stmt {
	if len(b.bufs) == 0 {
		return b.emitArith()
	}
	i := b.rng.Intn(len(b.bufs))
	b.bufs[i].size += uint64(8 + b.rng.Intn(64))
	name := b.bufs[i].name
	size := b.bufs[i].size
	return []prog.Stmt{
		prog.ReallocStmt{Dst: name, Ptr: prog.V(name), Size: prog.C(size)},
		prog.Memset{Dst: prog.V(name), B: prog.C(uint64(b.rng.Intn(256))), N: prog.C(size)},
	}
}

// emitFiller emits one random benign operation. Free and realloc are
// post-gadget only (see Generate's discipline invariants).
func (b *builder) emitFiller(postGadget bool) []prog.Stmt {
	type op func() []prog.Stmt
	ops := []op{
		func() []prog.Stmt { return b.emitAlloc(postGadget) },
		b.emitStore,
		b.emitStore,
		b.emitLoad,
		b.emitArith,
		b.emitGlobal,
		b.emitOutput,
		b.emitLoop,
		b.emitIf,
		b.emitDecoyCall,
	}
	if postGadget {
		ops = append(ops, b.emitFree, b.emitRealloc)
	}
	return ops[b.rng.Intn(len(ops))]()
}

// gadgetBody builds the vulnerable function. Parameter n is the
// attacker-controlled header byte: the benign input keeps every access
// in bounds, the attack input drives the injected site out of them.
func (b *builder) gadgetBody(kind VulnKind, secret, sentinel []byte) []prog.Stmt {
	switch kind {
	case OverflowRead:
		// Two adjacent mallocs; the output length is attacker-sized, so
		// n=96 reads across the chunk boundary into the secret.
		return []prog.Stmt{
			prog.Alloc{Dst: "vbuf", Fn: heapsim.FnMalloc, Size: prog.C(32)},
			prog.Memset{Dst: prog.V("vbuf"), B: prog.C(0x41), N: prog.C(32)},
			prog.Alloc{Dst: "vadj", Fn: heapsim.FnMalloc, Size: prog.C(32)},
			prog.Memset{Dst: prog.V("vadj"), B: prog.C(0), N: prog.C(32)},
			prog.StoreBytes{Base: prog.V("vadj"), Data: secret},
			prog.Output{Base: prog.V("vbuf"), N: prog.V("n")},
			prog.FreeStmt{Ptr: prog.V("vadj")},
			prog.FreeStmt{Ptr: prog.V("vbuf")},
		}
	case OverflowWrite:
		// Attacker-bounded byte-store loop; n=72 overwrites the
		// neighbor's metadata and its sentinel before it is output.
		return []prog.Stmt{
			prog.Alloc{Dst: "vbuf", Fn: heapsim.FnMalloc, Size: prog.C(32)},
			prog.Memset{Dst: prog.V("vbuf"), B: prog.C(0), N: prog.C(32)},
			prog.Alloc{Dst: "vadj", Fn: heapsim.FnMalloc, Size: prog.C(32)},
			prog.Memset{Dst: prog.V("vadj"), B: prog.C(0), N: prog.C(32)},
			prog.StoreBytes{Base: prog.V("vadj"), Data: sentinel},
			prog.Assign{Dst: "wi", E: prog.C(0)},
			prog.While{Cond: prog.Lt(prog.V("wi"), prog.V("n")), Body: []prog.Stmt{
				prog.Store{Base: prog.V("vbuf"), Off: prog.V("wi"), Src: prog.C(0x42), N: prog.C(1)},
				prog.Assign{Dst: "wi", E: prog.Add(prog.V("wi"), prog.C(1))},
			}},
			prog.Output{Base: prog.V("vadj"), N: prog.C(8)},
			prog.FreeStmt{Ptr: prog.V("vadj")},
			prog.FreeStmt{Ptr: prog.V("vbuf")},
		}
	case UnderflowRead:
		// off = 0-n wraps: n=8 reads the 8 bytes before the buffer.
		return []prog.Stmt{
			prog.Alloc{Dst: "vbuf", Fn: heapsim.FnMalloc, Size: prog.C(48)},
			prog.Memset{Dst: prog.V("vbuf"), B: prog.C(0x5A), N: prog.C(48)},
			prog.Assign{Dst: "voff", E: prog.Sub(prog.C(0), prog.V("n"))},
			prog.Output{Base: prog.V("vbuf"), Off: prog.V("voff"), N: prog.C(8)},
			prog.FreeStmt{Ptr: prog.V("vbuf")},
		}
	case UAFRead:
		// Premature free iff n!=0; the next same-size malloc reuses the
		// chunk (LIFO exact fit on the boundary-tag heap) and plants the
		// secret under the dangling pointer.
		return []prog.Stmt{
			prog.Alloc{Dst: "va", Fn: heapsim.FnMalloc, Size: prog.C(40)},
			prog.Memset{Dst: prog.V("va"), B: prog.C(0x61), N: prog.C(40)},
			prog.If{Cond: prog.Ne(prog.V("n"), prog.C(0)), Then: []prog.Stmt{prog.FreeStmt{Ptr: prog.V("va")}}},
			prog.Alloc{Dst: "vb", Fn: heapsim.FnMalloc, Size: prog.C(40)},
			prog.Memset{Dst: prog.V("vb"), B: prog.C(0), N: prog.C(40)},
			prog.StoreBytes{Base: prog.V("vb"), Data: secret},
			prog.Output{Base: prog.V("va"), N: prog.C(24)},
			prog.If{Cond: prog.Eq(prog.V("n"), prog.C(0)), Then: []prog.Stmt{prog.FreeStmt{Ptr: prog.V("va")}}},
			prog.FreeStmt{Ptr: prog.V("vb")},
		}
	case UAFWrite:
		// Same reuse setup, but the dangling pointer clobbers the new
		// owner's sentinel before it is output.
		return []prog.Stmt{
			prog.Alloc{Dst: "va", Fn: heapsim.FnMalloc, Size: prog.C(40)},
			prog.Memset{Dst: prog.V("va"), B: prog.C(0x61), N: prog.C(40)},
			prog.If{Cond: prog.Ne(prog.V("n"), prog.C(0)), Then: []prog.Stmt{prog.FreeStmt{Ptr: prog.V("va")}}},
			prog.Alloc{Dst: "vb", Fn: heapsim.FnMalloc, Size: prog.C(40)},
			prog.Memset{Dst: prog.V("vb"), B: prog.C(0), N: prog.C(40)},
			prog.StoreBytes{Base: prog.V("vb"), Data: sentinel},
			prog.Store{Base: prog.V("va"), Src: prog.C(0x4444444444444444), N: prog.C(8)},
			prog.Output{Base: prog.V("vb"), N: prog.C(8)},
			prog.If{Cond: prog.Eq(prog.V("n"), prog.C(0)), Then: []prog.Stmt{prog.FreeStmt{Ptr: prog.V("va")}}},
			prog.FreeStmt{Ptr: prog.V("vb")},
		}
	case DoubleFree:
		return []prog.Stmt{
			prog.Alloc{Dst: "va", Fn: heapsim.FnMalloc, Size: prog.C(40)},
			prog.Memset{Dst: prog.V("va"), B: prog.C(0x33), N: prog.C(40)},
			prog.Output{Base: prog.V("va"), N: prog.C(8)},
			prog.FreeStmt{Ptr: prog.V("va")},
			prog.If{Cond: prog.Ne(prog.V("n"), prog.C(0)), Then: []prog.Stmt{prog.FreeStmt{Ptr: prog.V("va")}}},
		}
	case UninitRead:
		// The secret sits at offset 16..40 of the freed chunk — past
		// the free-list link words the allocator writes into the
		// payload — so a native exact-fit reuse leaks it through the
		// uninitialized output window unless the benign path memsets.
		return []prog.Stmt{
			prog.Alloc{Dst: "vc", Fn: heapsim.FnMalloc, Size: prog.C(64)},
			prog.Memset{Dst: prog.V("vc"), B: prog.C(0), N: prog.C(64)},
			prog.StoreBytes{Base: prog.V("vc"), Off: prog.C(16), Data: secret},
			prog.FreeStmt{Ptr: prog.V("vc")},
			prog.Alloc{Dst: "vd", Fn: heapsim.FnMalloc, Size: prog.C(64)},
			prog.If{Cond: prog.Eq(prog.V("n"), prog.C(0)), Then: []prog.Stmt{
				prog.Memset{Dst: prog.V("vd"), B: prog.C(0x20), N: prog.C(48)},
			}},
			prog.Output{Base: prog.V("vd"), N: prog.C(48)},
			prog.FreeStmt{Ptr: prog.V("vd")},
		}
	default:
		panic(fmt.Sprintf("campaign: no gadget for %v", kind))
	}
}

// inputs derives the benign/attack input pair. Both share the same
// random tail so any echoed bytes compare equal within an input class.
func (b *builder) inputs(kind VulnKind) (benign, attack []byte) {
	var benByte, atkByte byte
	switch kind {
	case OverflowRead:
		benByte = byte(8 + b.rng.Intn(25)) // within the 32-byte buffer
		atkByte = 96                       // across the neighbor's payload
	case OverflowWrite:
		benByte = byte(8 + b.rng.Intn(25))
		atkByte = 72
	case UnderflowRead:
		benByte = 0 // offset 0-0 = in bounds
		atkByte = 8 // 8 bytes before the buffer
	default:
		// UAF / double-free / uninit kinds branch on n != 0.
		benByte = 0
		atkByte = byte(1 + b.rng.Intn(255))
	}
	extra := make([]byte, b.rng.Intn(5))
	b.rng.Read(extra)
	benign = append([]byte{benByte}, extra...)
	attack = append([]byte{atkByte}, extra...)
	return benign, attack
}
